// Package sprint is a Go reproduction of the SPRINT R package's parallel
// permutation testing function pmaxT, after Petrou et al., "Optimization of
// a parallel permutation testing function for the SPRINT R package"
// (HPDC/ECMLS 2010; Concurrency and Computation: Practice and Experience
// 23(17), 2011).
//
// The library computes Westfall–Young step-down maxT adjusted p-values for
// multiple hypothesis testing over a gene-expression matrix, by permutation
// of the sample class labels.  Two entry points mirror the paper's pair of
// functions:
//
//   - MaxT is the serial baseline, equivalent to mt.maxT from the
//     Bioconductor multtest package.
//   - PMaxT distributes the permutation count over goroutine "ranks"
//     communicating through an in-process MPI-style substrate, exactly as
//     pmaxT distributes it over MPI processes.  Its results are
//     bit-identical to MaxT for any process count, and its profile reports
//     the five timed sections of the paper's Tables I–V.
//
// Quick start:
//
//	data, _ := sprint.GenerateDataset(sprint.DatasetOptions{
//		Genes: 1000, Samples: 76, Classes: 2, DiffFraction: 0.05,
//		EffectSize: 1.5, Seed: 7,
//	})
//	opt := sprint.DefaultOptions()
//	opt.B = 10000
//	res, err := sprint.PMaxT(data.X, data.Labels, runtime.NumCPU(), opt)
//
// Beyond the library, NewServer exposes the same analyses as a long-lived
// JSON-over-HTTP job service (the cmd/pmaxtd daemon): an asynchronous
// bounded queue, a worker pool, a content-addressed result cache, and
// checkpoint-backed resume for cancelled or crashed jobs.
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-versus-reproduction
// measurements.
package sprint

import (
	"io"

	"sprint/internal/core"
	"sprint/internal/httpapi"
	"sprint/internal/jobs"
	"sprint/internal/matrix"
	"sprint/internal/microarray"
	"sprint/internal/pcor"
)

// Options configures MaxT and PMaxT, mirroring the R signature
// pmaxT(X, classlabel, test, side, fixed.seed.sampling, B, na, nonpara).
type Options = core.Options

// Result carries statistics, raw and adjusted p-values, the significance
// order, the effective permutation count and the section profile.
type Result = core.Result

// Profile holds the five timed sections reported in the paper's tables.
type Profile = core.Profile

// Dataset is an expression matrix with sample class labels and gene names.
type Dataset = microarray.Dataset

// DatasetOptions configures the synthetic microarray generator.
type DatasetOptions = microarray.GenOptions

// DefaultNA is the multtest missing-value code (.mt.naNUM).
const DefaultNA = core.DefaultNA

// Run modes for Options.Mode.  ModeExact is the historical fixed-B engine
// and the default; ModeSequential runs the adaptive early-stopping engine
// with anytime-valid confidence sequences (see Options.Mode in core).
const (
	ModeExact      = core.ModeExact
	ModeSequential = core.ModeSequential
)

// DefaultOptions returns the documented mt.maxT defaults: Welch t, absolute
// rejection region, on-the-fly sampling, B = 10000.
func DefaultOptions() Options { return core.DefaultOptions() }

// MaxT computes Westfall–Young step-down maxT adjusted p-values serially —
// the original mt.maxT behaviour.  x is the expression matrix (rows =
// genes, columns = samples); classlabel assigns each column a class as
// required by the chosen test.
func MaxT(x [][]float64, classlabel []int, opt Options) (*Result, error) {
	return core.MaxT(x, classlabel, opt)
}

// PMaxT computes the same result as MaxT using nprocs parallel ranks.  The
// permutation count is divided into equal contiguous chunks, each rank
// forwards its generator to its chunk (the observed labelling is handled
// only by the master), and partial exceedance counts are reduced on the
// master — the algorithm of Section 3.2 of the paper.
func PMaxT(x [][]float64, classlabel []int, nprocs int, opt Options) (*Result, error) {
	return core.PMaxT(x, classlabel, nprocs, opt)
}

// SetKernel selects the two-sample accumulation kernel by name — "auto",
// "generic", "sse2" or "avx2" — returning the name now active.  Meant for
// process startup (the pmaxt/pmaxtd -kernel flags); every kernel produces
// bitwise identical results, so this is purely a performance knob.
func SetKernel(name string) (string, error) { return core.SetKernel(name) }

// KernelName reports the active accumulation kernel.
func KernelName() string { return core.KernelName() }

// GenerateDataset synthesises a microarray-like dataset with known
// differential genes, suitable for validating analyses and for regenerating
// the paper's benchmark workloads.
func GenerateDataset(opt DatasetOptions) (*Dataset, error) {
	return microarray.Generate(opt)
}

// PaperDataset returns the generator options for the paper's primary
// benchmark matrix: 6102 genes × 76 samples, two classes of 38 samples.
func PaperDataset() DatasetOptions { return microarray.PaperDataset() }

// ReadDatasetCSV parses a dataset in the CSV layout written by
// Dataset.WriteCSV: a header of sample names with ".c<class>" suffixes,
// then one row per gene.
func ReadDatasetCSV(r io.Reader) (*Dataset, error) {
	return microarray.ReadCSV(r)
}

// ReadDatasetSPB parses a dataset in the binary spb format written by
// Dataset.WriteSPB (or cmd/datagen -format spb): the zero-copy columnar
// encoding the data plane serves from.  The stream must carry class
// labels; gene names are optional.
func ReadDatasetSPB(r io.Reader) (*Dataset, error) {
	return microarray.ReadSPB(r)
}

// FromColumnMajor converts a column-major flat matrix — R's native layout
// for a genes×samples matrix — into the row-per-gene form MaxT and PMaxT
// consume.  The conversion transposes in place (the paper's future-work
// item 2: no second matrix allocation); the input slice is consumed and
// backs the returned rows, which are views into one contiguous flat
// buffer — the engine's native layout.
func FromColumnMajor(flat []float64, genes, samples int) [][]float64 {
	return matrix.FromColumnMajor(flat, genes, samples).RowsView()
}

// Checkpoint is a resumable snapshot of a long serial permutation run —
// the paper's future-work item 1.  Obtain one from MaxTCheckpointed's save
// callback, persist it with Encode, and pass a decoded copy back as resume
// after a failure.
type Checkpoint = core.Checkpoint

// ErrCheckpointMismatch reports a checkpoint that does not belong to the
// analysis being resumed.
var ErrCheckpointMismatch = core.ErrCheckpointMismatch

// DecodeCheckpoint reads a checkpoint previously written with
// Checkpoint.Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	return core.DecodeCheckpoint(r)
}

// MaxTCheckpointed runs MaxT with periodic checkpoints: every `every`
// permutations the save callback receives a snapshot that a later call can
// resume from.  The final result is bit-identical to an uninterrupted run.
func MaxTCheckpointed(x [][]float64, classlabel []int, opt Options, resume *Checkpoint, every int64, save func(*Checkpoint) error) (*Result, error) {
	return core.MaxTCheckpointed(x, classlabel, opt, resume, every, save)
}

// Server is the pmaxtd job server: the permutation testing function behind
// an asynchronous JSON-over-HTTP API with a bounded FIFO queue, a worker
// pool, a content-addressed result cache and checkpoint-backed resume.
// Mount Handler on an http.Server (or use the cmd/pmaxtd daemon).
type Server = httpapi.Server

// ServerConfig configures NewServer: HTTP limits plus the embedded
// JobsConfig sizing the queue, workers, cache and checkpoint store.
type ServerConfig = httpapi.Config

// JobsConfig sizes the job manager inside a Server (workers, queue depth,
// default rank count, checkpoint window and directory, cache size).
type JobsConfig = jobs.Config

// JobStatus is a point-in-time snapshot of a submitted job.
type JobStatus = jobs.Status

// NewServer starts a job server (its worker pool starts immediately).
// Call Close to drain it; in-flight jobs stop at their next checkpoint
// window and resume on resubmission after a restart.
func NewServer(cfg ServerConfig) (*Server, error) {
	return httpapi.New(cfg)
}

// Run executes the permutation testing function under service control:
// cancellation via RunControl.Ctx, progress callbacks, checkpoint saves
// every RunControl.Every permutations, resume from a prior checkpoint, and
// an NProcs-way parallel kernel.  Results are bit-identical to MaxT for
// every control setting.
func Run(x [][]float64, classlabel []int, opt Options, ctl RunControl) (*Result, error) {
	return core.Run(x, classlabel, opt, ctl)
}

// RunControl carries the service hooks of a supervised Run.
type RunControl = core.RunControl

// Pcor computes the rows×rows Pearson correlation matrix of x on nprocs
// parallel ranks: SPRINT's original prototype function (Hill et al. 2008),
// reproduced here because the paper's framework hosts a library of such
// functions, not just pmaxT.  Matrix[i][j] is the correlation of rows i
// and j; zero-variance rows correlate as NaN.
func Pcor(x [][]float64, nprocs int) ([][]float64, error) {
	res, err := pcor.Pcor(x, nprocs)
	if err != nil {
		return nil, err
	}
	return res.Matrix, nil
}
