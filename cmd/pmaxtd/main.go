// Command pmaxtd is the SPRINT permutation-testing job server: a
// long-lived daemon that accepts analyses over a JSON HTTP API, queues
// them under a two-class weighted-fair discipline, runs them on a worker
// pool with per-job rank counts, caches results by content address, and
// checkpoints running jobs so that a cancelled job — or a killed daemon —
// resumes instead of restarting.
//
// Usage:
//
//	pmaxtd -addr :8080 -workers 2 -queue 64 -checkpoint-dir /var/lib/pmaxtd \
//	       -tenant-limits "rate=5,burst=10" -metrics-interval 60s
//
// Submit and poll with curl:
//
//	curl -s -X POST localhost:8080/v1/jobs -H 'X-Tenant: acme' -d '{
//	  "dataset": {"x": [[1,2,3,4],[5,4,3,2]], "labels": [0,0,1,1]},
//	  "options": {"b": 1000, "test": "t"}}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/v1/jobs/j000001/result
//	curl -s localhost:8080/metrics          # Prometheus text exposition
//
// Cluster mode shards the permutation space of large jobs across
// several daemons (the paper's multi-node Step 4), with results bitwise
// identical to a single node:
//
//	pmaxtd -role worker -addr :8081                       # on each worker host
//	pmaxtd -role coordinator -addr :8080 \
//	       -cluster-workers http://w1:8081,http://w2:8081 # front node
//
// Workers may also join a running coordinator dynamically with
// -join http://coord:8080 (heartbeat registration); -advertise overrides
// the URL the worker registers under.  Jobs are submitted to the
// coordinator exactly as in standalone mode — preferably by dataset_id,
// so no matrix bytes travel on the job path.
//
// Operational telemetry goes to stderr as JSON logs (log/slog): one line
// per HTTP request carrying the request id, tenant, route, status and
// duration, plus interval-flushed metrics snapshots.  The human-readable
// lifecycle lines stay on stdout.  SIGINT/SIGTERM shut the daemon down
// gracefully: a worker drains in-flight shards (finishing or shipping a
// checkpointed prefix) and deregisters from its coordinator, the HTTP
// listener drains, running jobs checkpoint and stop, a final metrics
// snapshot is flushed, and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof-addr serves the DefaultServeMux profiles
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sprint"
	"sprint/internal/cluster"
	"sprint/internal/faultinject"
	"sprint/internal/jobs"
	"sprint/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "pmaxtd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until stop closes or a termination
// signal arrives.  stop exists for tests; pass nil in production.
func run(args []string, stdout io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("pmaxtd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = half the CPUs)")
	queue := fs.Int("queue", 64, "job queue depth; a full queue sheds submissions with 429")
	nprocs := fs.Int("nprocs", 0, "default ranks per job (0 = all CPUs)")
	every := fs.Int64("every", 1000, "default checkpoint window (permutations)")
	cache := fs.Int("cache", 128, "result cache entries (negative disables)")
	ckptDir := fs.String("checkpoint-dir", "", "persist checkpoints here to survive restarts (empty = memory only)")
	journalDir := fs.String("journal-dir", "", "write-ahead job journal directory; on restart queued and running jobs replay to byte-identical results (empty = no journal). Defaults -checkpoint-dir and -dataset-dir to subdirectories when those are unset")
	dsCache := fs.Int("dataset-cache", 0, "in-memory dataset registry entries (0 = default 32, negative disables)")
	dsDir := fs.String("dataset-dir", "", "mirror registered datasets here as .spb files so they survive restarts (empty = memory only)")
	maxBody := fs.Int64("max-body", 256<<20, "maximum submission body bytes")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	kernel := fs.String("kernel", "auto", "accumulation kernel: auto, generic, sse2, avx2 (results are identical on all)")
	mode := fs.String("mode", "exact", "default run mode for submissions that set none: exact or sequential")
	seqAlpha := fs.Float64("seq-alpha", 0, "default sequential significance level for submissions that set none (0 = engine default 0.05)")
	seqTol := fs.Float64("seq-tolerance", 0, "default sequential p-value tolerance for submissions that set none (0 = engine default 0.02)")
	metricsInterval := fs.Duration("metrics-interval", 0, "flush a metrics snapshot to the log this often (0 = final snapshot only)")
	tenantLimits := fs.String("tenant-limits", "", `per-tenant token buckets: "rate=R,burst=N" defaults plus "tenant=R:N" overrides (empty or "off" = unlimited)`)
	queuePolicy := fs.String("queue-policy", "fair", "queue discipline: fair (interactive overtakes bulk) or fifo (arrival order)")
	interactiveB := fs.Int64("interactive-max-b", 10000, "sampled jobs with B at most this count as interactive")
	maxQueueWait := fs.Duration("max-queue-wait", 0, "shed submissions whose predicted queue wait exceeds this (0 = only shed on a full queue)")
	logDst := fs.String("log", "stderr", "structured JSON log destination: stderr, stdout or a file path")
	role := fs.String("role", "standalone", "cluster role: standalone, coordinator or worker")
	clusterWorkers := fs.String("cluster-workers", "", "coordinator: comma-separated worker base URLs (http://host:port)")
	join := fs.String("join", "", "worker: coordinator base URL to register with (heartbeat membership)")
	advertise := fs.String("advertise", "", "worker: base URL to register under (default http://<host>:<port> of -addr)")
	distMinB := fs.Int64("dist-min-b", 1000, "coordinator: run jobs with B under this locally instead of distributing")
	shardNProcs := fs.Int("shard-nprocs", 0, "coordinator: ranks each worker uses per shard (0 = worker default)")
	shardsPerWorker := fs.Int("shards-per-worker", 2, "coordinator: shards carved per live worker")
	lease := fs.Duration("lease", 0, "coordinator: shard compute lease renewed by heartbeat; a worker keeps an orphaned shard alive this long after its coordinator dies (0 = default 15s, negative disables)")
	retentionDir := fs.String("retention-dir", "", "worker: persist finished and parked shard results here for coordinator-restart re-delivery (default <journal-dir>/retained when -journal-dir is set; empty = memory only)")
	retained := fs.Int("retention", 0, "worker: retained shard results kept for re-delivery (0 = default 128, negative disables)")
	faults := fs.String("faults", os.Getenv("SPRINT_FAULTS"),
		"deterministic fault-injection spec for crash testing, e.g. \"seed=7;ckpt.write:torn:n=2\" (default $SPRINT_FAULTS; empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// A journal without its companion stores could replay a job whose
	// checkpoint or dataset evaporated with the process; default both
	// into the journal tree so one flag buys full crash safety.
	if *journalDir != "" {
		if *ckptDir == "" {
			*ckptDir = filepath.Join(*journalDir, "checkpoints")
		}
		if *dsDir == "" {
			*dsDir = filepath.Join(*journalDir, "datasets")
		}
	}
	faultsInj, err := faultinject.Setup(*faults)
	if err != nil {
		return err
	}
	active, err := sprint.SetKernel(*kernel)
	if err != nil {
		return err
	}
	limits, err := jobs.ParseTenantLimits(*tenantLimits)
	if err != nil {
		return err
	}
	switch *role {
	case "standalone", "coordinator", "worker":
	default:
		return fmt.Errorf("unknown -role %q (want standalone, coordinator or worker)", *role)
	}
	switch *mode {
	case "", sprint.ModeExact, sprint.ModeSequential:
	default:
		return fmt.Errorf("unknown -mode %q (want exact or sequential)", *mode)
	}
	if *role != "worker" && *join != "" {
		return errors.New("-join requires -role worker")
	}
	if *role != "coordinator" && *clusterWorkers != "" {
		return errors.New("-cluster-workers requires -role coordinator")
	}

	var logw io.Writer
	var logClose func() error
	switch *logDst {
	case "stderr":
		logw = os.Stderr
	case "stdout":
		// The human lifecycle lines also write stdout; interleaving whole
		// lines is safe, both writers are line-buffered.
		logw = stdout
	default:
		f, err := os.OpenFile(*logDst, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening log file: %w", err)
		}
		logw, logClose = f, f.Close
	}
	logger := slog.New(slog.NewJSONHandler(logw, nil))
	if logClose != nil {
		defer logClose()
	}

	fmt.Fprintf(stdout, "pmaxtd: kernel %s\n", active)
	// The fault plane is strictly for crash/chaos testing: the injected
	// schedule is deterministic per seed, and the cluster client below is
	// wrapped so transport faults fire too.  Say so loudly — a daemon
	// accidentally started with $SPRINT_FAULTS set should be obvious.
	var faultClient *http.Client
	if faultsInj != nil {
		fmt.Fprintf(stdout, "pmaxtd: FAULT INJECTION ACTIVE: %s\n", *faults)
		faultClient = &http.Client{Transport: &faultinject.Transport{}}
	}
	if *pprofAddr != "" {
		// The pprof handlers live on the DefaultServeMux, kept off the API
		// listener so profiling can stay on a private interface.  Only the
		// listener runs in the goroutine; stdout stays single-writer.
		fmt.Fprintf(stdout, "pmaxtd: pprof on %s\n", *pprofAddr)
		addr := *pprofAddr
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pmaxtd: pprof:", err)
			}
		}()
	}

	// One registry carries the whole plane: process/OS stats, the jobs
	// layer (queue, stages, shed decisions, dataset plane), the cluster
	// node and the per-route HTTP middleware all report here, and
	// GET /metrics serves it in the Prometheus text format.
	reg := metrics.New()
	metrics.RegisterProcessMetrics(reg)

	// The coordinator exists before the manager so it can be plugged in
	// as the manager's distributor; it holds no manager reference (shard
	// state rides each RunJob call), so the order is safe.
	var coord *cluster.Coordinator
	var dist jobs.Distributor
	if *role == "coordinator" {
		var staticWorkers []string
		for _, w := range strings.Split(*clusterWorkers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				staticWorkers = append(staticWorkers, w)
			}
		}
		coord = cluster.NewCoordinator(cluster.CoordinatorConfig{
			Workers:         staticWorkers,
			Client:          faultClient,
			ShardsPerWorker: *shardsPerWorker,
			MinDistB:        *distMinB,
			WorkerNProcs:    *shardNProcs,
			LeaseDuration:   *lease,
			Metrics:         reg,
			Logger:          logger,
		})
		dist = coord
	}

	srv, err := sprint.NewServer(sprint.ServerConfig{
		Jobs: sprint.JobsConfig{
			Workers:             *workers,
			QueueDepth:          *queue,
			DefaultNProcs:       *nprocs,
			DefaultEvery:        *every,
			DefaultMode:         *mode,
			DefaultSeqAlpha:     *seqAlpha,
			DefaultSeqTolerance: *seqTol,
			CacheSize:           *cache,
			CheckpointDir:       *ckptDir,
			JournalDir:          *journalDir,
			DatasetCacheSize:    *dsCache,
			DatasetDir:          *dsDir,
			Metrics:             reg,
			QueuePolicy:         *queuePolicy,
			InteractiveMaxB:     *interactiveB,
			TenantLimits:        limits,
			MaxQueueWait:        *maxQueueWait,
			Distributor:         dist,
		},
		MaxBodyBytes: *maxBody,
		Logger:       logger,
	})
	if err != nil {
		return err
	}

	var worker *cluster.Worker
	switch {
	case coord != nil:
		srv.AttachCluster(coord)
	case *role == "worker":
		// Retention rides the journal tree by default: one flag buys
		// coordinator-crash survival of delivered AND undelivered work.
		if *retentionDir == "" && *journalDir != "" {
			*retentionDir = filepath.Join(*journalDir, "retained")
		}
		worker = cluster.NewWorker(cluster.WorkerConfig{
			Source:       srv.Manager(),
			Client:       faultClient,
			NProcs:       *nprocs,
			Every:        *every,
			RetentionDir: *retentionDir,
			MaxRetained:  *retained,
			Metrics:      reg,
			Logger:       logger,
		})
		srv.AttachCluster(worker)
	}

	// The flusher snapshots the registry on the interval (when one is
	// set) and once more at shutdown — the final snapshot is emitted
	// through the same sink, so no samples are lost to the exit path.
	flusher := metrics.NewFlusher(reg, *metricsInterval, func(s *metrics.Snapshot) {
		logger.LogAttrs(context.Background(), slog.LevelInfo, "metrics_snapshot",
			slog.Time("at", s.At),
			slog.Int("samples", len(s.Samples)),
			slog.Int64("rss_bytes", s.Proc.RSSBytes),
			slog.Int("goroutines", s.Proc.Goroutines),
			slog.Float64("gc_pause_total_s", s.Proc.GCPauseTotalS),
			slog.Float64("cpu_user_s", s.Proc.CPUUserS),
			slog.Any("metrics", s.Samples),
		)
	})

	// Listen before serving so a worker knows its bound port — ":0"
	// works for ephemeral test clusters — and -advertise can default.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		flusher.Stop()
		return err
	}
	boundAddr := ln.Addr().String()

	// stdout stays single-writer (the test harness hands us a plain
	// bytes.Buffer): all prints happen on this goroutine.
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "pmaxtd: %s listening on %s\n", *role, boundAddr)
	logger.LogAttrs(context.Background(), slog.LevelInfo, "listening",
		slog.String("addr", boundAddr),
		slog.String("role", *role),
		slog.String("kernel", active),
		slog.String("queue_policy", *queuePolicy),
		slog.Bool("rate_limited", limits.Default.Rate > 0 || len(limits.Overrides) > 0),
	)
	errc := make(chan error, 1)
	go func() {
		errc <- hs.Serve(ln)
	}()

	var joinCancel context.CancelFunc
	advertiseURL := *advertise
	if worker != nil && *join != "" {
		if advertiseURL == "" {
			advertiseURL = "http://" + advertisableAddr(boundAddr)
		}
		fmt.Fprintf(stdout, "pmaxtd: joining %s as %s\n", *join, advertiseURL)
		var joinCtx context.Context
		joinCtx, joinCancel = context.WithCancel(context.Background())
		go worker.Join(joinCtx, *join, advertiseURL, 0)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		if joinCancel != nil {
			joinCancel()
		}
		srv.Close()
		flusher.Stop()
		return err
	case s := <-sigc:
		fmt.Fprintf(stdout, "pmaxtd: %v, shutting down\n", s)
	case <-stop:
		fmt.Fprintln(stdout, "pmaxtd: stop requested, shutting down")
	}

	// Worker drain runs before the listener shuts: in-flight shards stop
	// at their next window boundary and their responses — complete or
	// checkpointed prefix — still flow through the draining listener, so
	// the coordinator never loses finished permutations.
	if worker != nil {
		fmt.Fprintln(stdout, "pmaxtd: draining worker shards")
		worker.Drain()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := hs.Shutdown(ctx)
	if joinCancel != nil {
		joinCancel()
	}
	if worker != nil && *join != "" {
		worker.Deregister(*join, advertiseURL)
	}
	srv.Close() // cancels running jobs at their next checkpoint window
	// Drained and stopped: flush the final snapshot so every counter the
	// run accumulated reaches the log exactly once.
	final := flusher.Stop()
	fmt.Fprintf(stdout, "pmaxtd: final metrics snapshot: %d series\n", len(final.Samples))
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return shutdownErr
	}
	fmt.Fprintln(stdout, "pmaxtd: bye")
	return nil
}

// advertisableAddr rewrites a bound listen address into one another
// process can dial: wildcard hosts become the loopback address.
func advertisableAddr(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	switch host {
	case "", "0.0.0.0", "::", "[::]":
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}
