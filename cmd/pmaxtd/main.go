// Command pmaxtd is the SPRINT permutation-testing job server: a
// long-lived daemon that accepts analyses over a JSON HTTP API, queues
// them FIFO, runs them on a worker pool with per-job rank counts, caches
// results by content address, and checkpoints running jobs so that a
// cancelled job — or a killed daemon — resumes instead of restarting.
//
// Usage:
//
//	pmaxtd -addr :8080 -workers 2 -queue 64 -checkpoint-dir /var/lib/pmaxtd
//
// Submit and poll with curl:
//
//	curl -s -X POST localhost:8080/v1/jobs -d '{
//	  "dataset": {"x": [[1,2,3,4],[5,4,3,2]], "labels": [0,0,1,1]},
//	  "options": {"b": 1000, "test": "t"}}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/v1/jobs/j000001/result
//
// SIGINT/SIGTERM shut the daemon down gracefully: the HTTP listener
// drains, running jobs checkpoint and stop, and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof-addr serves the DefaultServeMux profiles
	"os"
	"os/signal"
	"syscall"
	"time"

	"sprint"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "pmaxtd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until stop closes or a termination
// signal arrives.  stop exists for tests; pass nil in production.
func run(args []string, stdout io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("pmaxtd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = half the CPUs)")
	queue := fs.Int("queue", 64, "job queue depth; a full queue rejects submissions")
	nprocs := fs.Int("nprocs", 0, "default ranks per job (0 = all CPUs)")
	every := fs.Int64("every", 1000, "default checkpoint window (permutations)")
	cache := fs.Int("cache", 128, "result cache entries (negative disables)")
	ckptDir := fs.String("checkpoint-dir", "", "persist checkpoints here to survive restarts (empty = memory only)")
	dsCache := fs.Int("dataset-cache", 0, "in-memory dataset registry entries (0 = default 32, negative disables)")
	dsDir := fs.String("dataset-dir", "", "mirror registered datasets here as .spb files so they survive restarts (empty = memory only)")
	maxBody := fs.Int64("max-body", 256<<20, "maximum submission body bytes")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	kernel := fs.String("kernel", "auto", "accumulation kernel: auto, generic, sse2, avx2 (results are identical on all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	active, err := sprint.SetKernel(*kernel)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pmaxtd: kernel %s\n", active)
	if *pprofAddr != "" {
		// The pprof handlers live on the DefaultServeMux, kept off the API
		// listener so profiling can stay on a private interface.  Only the
		// listener runs in the goroutine; stdout stays single-writer.
		fmt.Fprintf(stdout, "pmaxtd: pprof on %s\n", *pprofAddr)
		addr := *pprofAddr
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pmaxtd: pprof:", err)
			}
		}()
	}

	srv, err := sprint.NewServer(sprint.ServerConfig{
		Jobs: sprint.JobsConfig{
			Workers:          *workers,
			QueueDepth:       *queue,
			DefaultNProcs:    *nprocs,
			DefaultEvery:     *every,
			CacheSize:        *cache,
			CheckpointDir:    *ckptDir,
			DatasetCacheSize: *dsCache,
			DatasetDir:       *dsDir,
		},
		MaxBodyBytes: *maxBody,
	})
	if err != nil {
		return err
	}

	// stdout stays single-writer (the test harness hands us a plain
	// bytes.Buffer): all prints happen on this goroutine.
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	fmt.Fprintf(stdout, "pmaxtd: listening on %s\n", *addr)
	errc := make(chan error, 1)
	go func() {
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		srv.Close()
		return err
	case s := <-sigc:
		fmt.Fprintf(stdout, "pmaxtd: %v, shutting down\n", s)
	case <-stop:
		fmt.Fprintln(stdout, "pmaxtd: stop requested, shutting down")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := hs.Shutdown(ctx)
	srv.Close() // cancels running jobs at their next checkpoint window
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return shutdownErr
	}
	fmt.Fprintln(stdout, "pmaxtd: bye")
	return nil
}
