package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestStartAndGracefulStop(t *testing.T) {
	var out bytes.Buffer
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "4"}, &out, stop)
	}()
	time.Sleep(100 * time.Millisecond) // let the listener come up
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	for _, want := range []string{"listening on", "shutting down", "bye"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output %q missing %q", out.String(), want)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out, nil); err == nil {
		t.Fatal("bogus flag accepted")
	}
}
