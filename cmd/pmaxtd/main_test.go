package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

func TestStartAndGracefulStop(t *testing.T) {
	var out bytes.Buffer
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "4"}, &out, stop)
	}()
	time.Sleep(100 * time.Millisecond) // let the listener come up
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	for _, want := range []string{"listening on", "shutting down", "bye"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output %q missing %q", out.String(), want)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out, nil); err == nil {
		t.Fatal("bogus flag accepted")
	}
}

// TestShutdownFlushesFinalSnapshot: the exit path must emit exactly one
// final metrics snapshot through the structured log, after the drain.
func TestShutdownFlushesFinalSnapshot(t *testing.T) {
	logPath := t.TempDir() + "/pmaxtd.log"
	var out bytes.Buffer
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1",
			"-log", logPath, "-metrics-interval", "0"}, &out, stop)
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	if !strings.Contains(out.String(), "final metrics snapshot:") {
		t.Fatalf("stdout %q missing final snapshot line", out.String())
	}
	logText, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	snapshots := 0
	for _, line := range strings.Split(string(logText), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] != "metrics_snapshot" {
			continue
		}
		snapshots++
		// Process metrics register at boot, so even an idle daemon's
		// final snapshot carries samples — none may be dropped on exit.
		if n, ok := rec["samples"].(float64); !ok || n < 1 {
			t.Fatalf("final snapshot carries %v samples", rec["samples"])
		}
	}
	if snapshots != 1 {
		t.Fatalf("metrics_snapshot logged %d times, want exactly 1 (interval=0)", snapshots)
	}
}
