package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"sprint/internal/core"
	"sprint/internal/jobs"
	"sprint/internal/matrix"
	"sprint/internal/microarray"
)

// TestHelperPmaxtd is not a test: it is the child-process entry point
// for the SIGKILL test below, re-executing this test binary as a real
// pmaxtd daemon so the parent can kill -9 it mid-job.
func TestHelperPmaxtd(t *testing.T) {
	if os.Getenv("PMAXTD_HELPER") != "1" {
		t.Skip("helper process entry point, not a test")
	}
	var args []string
	if err := json.Unmarshal([]byte(os.Getenv("PMAXTD_ARGS")), &args); err != nil {
		fmt.Fprintln(os.Stderr, "helper: bad PMAXTD_ARGS:", err)
		os.Exit(2)
	}
	if err := run(args, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startDaemon launches a pmaxtd child process and returns it with the
// base URL parsed from its "listening on" line.
func startDaemon(t *testing.T, args []string) (*exec.Cmd, string) {
	t.Helper()
	argJSON, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperPmaxtd$", "-test.v=false")
	cmd.Env = append(os.Environ(), "PMAXTD_HELPER=1", "PMAXTD_ARGS="+string(argJSON))
	var stderr bytes.Buffer // daemon JSON logs, dumped only on failure
	cmd.Stderr = &stderr
	t.Cleanup(func() {
		if t.Failed() && stderr.Len() > 0 {
			t.Logf("daemon stderr:\n%s", stderr.String())
		}
	})
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				addrc <- strings.TrimSpace(rest)
			}
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never printed its listening line")
		return nil, ""
	}
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestSIGKILLRestartBitwiseIdentity is the crash-safety acceptance test
// at the process level: a real pmaxtd daemon is killed with SIGKILL
// (no drain, no checkpoint flush, no journal close) in the middle of a
// job, restarted over the same -journal-dir, and must finish the SAME
// job id with results bitwise identical to an uninterrupted in-process
// run of the same analysis.
func TestSIGKILLRestartBitwiseIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	data, err := microarray.Generate(microarray.GenOptions{
		Genes: 100, Samples: 20, Classes: 2,
		DiffFraction: 0.2, EffectSize: 2.0, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	const permB, seed, every = 100000, 5, 1000

	// Uninterrupted reference, computed in-process.
	ref := func() *core.Result {
		m, err := jobs.NewManager(jobs.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		x, err := matrix.FromRows(data.X)
		if err != nil {
			t.Fatal(err)
		}
		info, _, err := m.PutDataset(x)
		if err != nil {
			t.Fatal(err)
		}
		opt := core.DefaultOptions()
		opt.B = permB
		opt.Seed = seed
		st, err := m.Submit(jobs.Spec{DatasetID: info.ID, Labels: data.Labels, Opt: opt, NProcs: 1, Every: every})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			got, err := m.Get(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if got.State.Terminal() {
				if got.State != jobs.Done {
					t.Fatalf("reference job: %s: %s", got.State, got.Error)
				}
				res, _, err := m.Result(st.ID)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatal("reference job did not finish")
		return nil
	}()

	journalDir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-workers", "1",
		"-journal-dir", journalDir, "-metrics-interval", "0"}
	cmd1, base1 := startDaemon(t, args)

	// Submit over HTTP with the matrix inline, exactly as a client would.
	body, err := json.Marshal(map[string]any{
		"dataset":          map[string]any{"x": data.X, "labels": data.Labels},
		"options":          map[string]any{"b": permB, "seed": seed},
		"nprocs":           1,
		"checkpoint_every": every,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base1+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK || sub.ID == "" {
		t.Fatalf("submit: code %d id %q", resp.StatusCode, sub.ID)
	}

	// Wait for real progress (a passed checkpoint window), then kill -9.
	type status struct {
		State       string  `json:"state"`
		Done        int64   `json:"done"`
		ResumedFrom int64   `json:"resumed_from"`
		Error       string  `json:"error"`
		AdjP        []int64 `json:"-"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st status
		getJSON(t, base1+"/v1/jobs/"+sub.ID, &st)
		if st.State == "done" || st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("job finished (%s) before the crash; bump B", st.State)
		}
		if st.State == "running" && st.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd1.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	cmd1.Wait()

	// Restart over the same journal tree; wait until recovery completes
	// (readyz flips to 200) and the SAME job id reaches done.
	_, base2 := startDaemon(t, args)
	deadline = time.Now().Add(60 * time.Second)
	for getJSON(t, base2+"/v1/readyz", nil) != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready after restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var st status
	for {
		getJSON(t, base2+"/v1/jobs/"+sub.ID, &st)
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("replayed job %s: %s: %s", sub.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job %s did not finish (state %s)", sub.ID, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.ResumedFrom == 0 {
		t.Error("job restarted from scratch; expected a checkpoint resume")
	}

	var res struct {
		Stat []float64 `json:"stat"`
		RawP []float64 `json:"raw_p"`
		AdjP []float64 `json:"adj_p"`
	}
	if code := getJSON(t, base2+"/v1/jobs/"+sub.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: code %d", code)
	}
	for name, pair := range map[string][2][]float64{
		"Stat": {res.Stat, ref.Stat}, "RawP": {res.RawP, ref.RawP}, "AdjP": {res.AdjP, ref.AdjP},
	} {
		got, want := pair[0], pair[1]
		if len(got) != len(want) {
			t.Fatalf("%s: %d values, want %d", name, len(got), len(want))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s[%d]: %v != %v (bitwise) after SIGKILL restart", name, i, got[i], want[i])
			}
		}
	}
}
