package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"sprint/internal/core"
	"sprint/internal/jobs"
	"sprint/internal/matrix"
	"sprint/internal/microarray"
)

// scrapeMetric sums every sample of a Prometheus series on a live
// daemon's /metrics endpoint.  name may include a label selector prefix
// (`foo_total{kind="shard"}`) or be bare (`foo_total`, summing all label
// combinations).
func scrapeMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, "}") {
			continue // longer metric name sharing this prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		sum += v
	}
	return sum
}

// TestCoordinatorSIGKILLRestartBitwiseIdentity is the cluster
// crash-safety acceptance test at the process level: a real coordinator
// daemon is killed with SIGKILL mid-distributed-job, restarted over the
// same -journal-dir, and must finish the SAME job id bitwise identical
// to an uninterrupted run — with every delivery journaled before the
// kill replayed from the merge ledger (never re-dispatched: zero shard
// retries) and the window in flight at the kill re-delivered from the
// worker's retention instead of recomputed from scratch.
func TestCoordinatorSIGKILLRestartBitwiseIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	data, err := microarray.Generate(microarray.GenOptions{
		Genes: 150, Samples: 20, Classes: 2,
		DiffFraction: 0.2, EffectSize: 2.0, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	const permB, seed = 150000, 7

	// Uninterrupted reference, computed in-process.
	ref := func() *core.Result {
		m, err := jobs.NewManager(jobs.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		x, err := matrix.FromRows(data.X)
		if err != nil {
			t.Fatal(err)
		}
		info, _, err := m.PutDataset(x)
		if err != nil {
			t.Fatal(err)
		}
		opt := core.DefaultOptions()
		opt.B = permB
		opt.Seed = seed
		st, err := m.Submit(jobs.Spec{DatasetID: info.ID, Labels: data.Labels, Opt: opt, NProcs: 1, Every: 1000})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(120 * time.Second)
		for time.Now().Before(deadline) {
			got, err := m.Get(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if got.State.Terminal() {
				if got.State != jobs.Done {
					t.Fatalf("reference job: %s: %s", got.State, got.Error)
				}
				res, _, err := m.Result(st.ID)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatal("reference job did not finish")
		return nil
	}()

	// The worker outlives the coordinator crash; its shard leases are
	// what keep orphaned computes alive until the restart re-probes.
	wArgs := []string{"-addr", "127.0.0.1:0", "-workers", "1", "-role", "worker",
		"-retention-dir", t.TempDir(), "-metrics-interval", "0"}
	_, wBase := startDaemon(t, wArgs)

	journalDir := t.TempDir()
	cArgs := []string{"-addr", "127.0.0.1:0", "-workers", "1", "-role", "coordinator",
		"-cluster-workers", wBase, "-journal-dir", journalDir,
		"-shards-per-worker", "8", "-shard-nprocs", "1", "-dist-min-b", "1",
		"-lease", "60s", "-metrics-interval", "0"}
	cmd1, cBase1 := startDaemon(t, cArgs)

	body, err := json.Marshal(map[string]any{
		"dataset": map[string]any{"x": data.X, "labels": data.Labels},
		"options": map[string]any{"b": permB, "seed": seed},
		"nprocs":  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(cBase1+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK || sub.ID == "" {
		t.Fatalf("submit: code %d id %q", resp.StatusCode, sub.ID)
	}

	// Kill only when the crash exercises both recovery paths at once: at
	// least one delivery journaled in the merge ledger (replayed, never
	// recomputed) AND a shard mid-compute on the worker (whose leased
	// result the restarted coordinator collects from retention).
	type status struct {
		State string `json:"state"`
		Done  int64  `json:"done"`
		Error string `json:"error"`
	}
	type workerStats struct {
		Cluster struct {
			Worker struct {
				ShardsActive int `json:"shards_active"`
			} `json:"worker"`
		} `json:"cluster"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st status
		getJSON(t, cBase1+"/v1/jobs/"+sub.ID, &st)
		if st.State == "done" || st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("job finished (%s) before the crash; bump B", st.State)
		}
		var ws workerStats
		getJSON(t, wBase+"/v1/stats", &ws)
		journaled := scrapeMetric(t, cBase1, `cluster_ledger_records_total{kind="shard"}`)
		if st.Done > 0 && journaled >= 1 && ws.Cluster.Worker.ShardsActive > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never saw a journaled delivery with a shard in flight")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd1.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	cmd1.Wait()

	// Restart over the same journal tree; readyz gates on ledger replay.
	_, cBase2 := startDaemon(t, cArgs)
	deadline = time.Now().Add(120 * time.Second)
	for getJSON(t, cBase2+"/v1/readyz", nil) != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never became ready after restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var st status
	for {
		getJSON(t, cBase2+"/v1/jobs/"+sub.ID, &st)
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("replayed job %s: %s: %s", sub.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job %s did not finish (state %s)", sub.ID, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	var res struct {
		Stat []float64 `json:"stat"`
		RawP []float64 `json:"raw_p"`
		AdjP []float64 `json:"adj_p"`
	}
	if code := getJSON(t, cBase2+"/v1/jobs/"+sub.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: code %d", code)
	}
	for name, pair := range map[string][2][]float64{
		"Stat": {res.Stat, ref.Stat}, "RawP": {res.RawP, ref.RawP}, "AdjP": {res.AdjP, ref.AdjP},
	} {
		got, want := pair[0], pair[1]
		if len(got) != len(want) {
			t.Fatalf("%s: %d values, want %d", name, len(got), len(want))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s[%d]: %v != %v (bitwise) after coordinator SIGKILL", name, i, got[i], want[i])
			}
		}
	}

	// Zero recomputation of delivered shards: the journaled windows were
	// merged straight from the ledger (replay counters), nothing was
	// re-dispatched twice (no retries), and the worker re-delivered at
	// least one result from retention or an in-flight leased compute.
	if n := scrapeMetric(t, cBase2, "cluster_ledger_jobs_replayed_total"); n != 1 {
		t.Errorf("cluster_ledger_jobs_replayed_total = %v, want 1", n)
	}
	if n := scrapeMetric(t, cBase2, "cluster_ledger_windows_replayed_total"); n < 1 {
		t.Errorf("cluster_ledger_windows_replayed_total = %v, want >= 1", n)
	}
	if n := scrapeMetric(t, cBase2, "cluster_ledger_invalid_total"); n != 0 {
		t.Errorf("cluster_ledger_invalid_total = %v, want 0", n)
	}
	if n := scrapeMetric(t, cBase2, "cluster_shard_retries_total"); n != 0 {
		t.Errorf("cluster_shard_retries_total = %v after restart, want 0 (no window recomputed)", n)
	}
	reDelivered := scrapeMetric(t, wBase, "cluster_worker_retained_hits_total") +
		scrapeMetric(t, wBase, "cluster_worker_retained_resumes_total") +
		scrapeMetric(t, wBase, "cluster_worker_inflight_joins_total")
	if reDelivered < 1 {
		t.Errorf("worker re-delivered nothing from retention/in-flight after the restart")
	}
}
