// Command datagen generates synthetic microarray datasets in the CSV
// layout consumed by cmd/pmaxt.  It stands in for the pre-processed gene
// expression matrices of the paper's evaluation (6102×76 in Tables I–V,
// 36612×76 and 73224×76 in Table VI), which are not public.
//
// Usage:
//
//	datagen -genes 6102 -samples 76 -out paper.csv
//	datagen -paper -out paper.csv          # the Tables I–V dataset shape
//	datagen -paper -format spb -out paper.spb  # binary columnar (zero-copy ingest)
//	datagen -exon 6 -out exon36612.csv     # the small Table VI dataset
//	datagen -genes 100 -samples 12 -paired # a paired design on stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sprint/internal/microarray"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	genes := fs.Int("genes", 1000, "number of genes (rows)")
	samples := fs.Int("samples", 76, "number of samples (columns)")
	classes := fs.Int("classes", 2, "number of classes")
	diff := fs.Float64("diff", 0.05, "fraction of genes with a true class effect")
	effect := fs.Float64("effect", 1.5, "effect size in within-class standard deviations")
	missing := fs.Float64("missing", 0, "fraction of missing values")
	paired := fs.Bool("paired", false, "lay out samples as (0,1) pairs for the pairt test")
	blocked := fs.Bool("blocked", false, "lay out samples as treatment blocks for the blockf test")
	seed := fs.Uint64("seed", 1, "generator seed")
	paper := fs.Bool("paper", false, "generate the paper's 6102x76 benchmark dataset shape")
	exon := fs.Int("exon", 0, "generate a Table VI exon-array dataset (6 -> 36612 genes, 12 -> 73224)")
	out := fs.String("out", "", "output file (default stdout)")
	format := fs.String("format", "", "output format: csv or spb (default csv, or inferred from -out extension)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "":
		if strings.HasSuffix(*out, ".spb") {
			*format = "spb"
		} else {
			*format = "csv"
		}
	case "csv", "spb":
	default:
		return fmt.Errorf("unknown format %q (want csv or spb)", *format)
	}

	opt := microarray.GenOptions{
		Genes: *genes, Samples: *samples, Classes: *classes,
		DiffFraction: *diff, EffectSize: *effect, MissingRate: *missing,
		Paired: *paired, Blocked: *blocked, Seed: *seed,
	}
	if *paper {
		opt = microarray.PaperDataset()
		opt.Seed = *seed
	}
	if *exon > 0 {
		opt = microarray.ExonDataset(*exon)
		opt.Seed = *seed
	}
	d, err := microarray.Generate(opt)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *format == "spb" {
		err = d.WriteSPB(w)
	} else {
		err = d.WriteCSV(w)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d x %d dataset (%.2f MB, %d classes, seed %d, %s)\n",
		d.Rows(), d.Cols(), d.SizeMB(), opt.Classes, opt.Seed, *format)
	return nil
}
