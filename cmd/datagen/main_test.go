package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sprint/internal/microarray"
)

func TestRunWritesValidCSVToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-genes", "15", "-samples", "8", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	d, err := microarray.ReadCSV(&out)
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	if d.Rows() != 15 || d.Cols() != 8 {
		t.Errorf("dims %dx%d", d.Rows(), d.Cols())
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.csv")
	var out bytes.Buffer
	if err := run([]string{"-genes", "5", "-samples", "6", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := microarray.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 5 {
		t.Errorf("rows = %d", d.Rows())
	}
	if out.Len() != 0 {
		t.Error("wrote to stdout despite -out")
	}
}

func TestRunPaperShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "paper.csv")
	if err := run([]string{"-paper", "-out", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(path)
	defer f.Close()
	d, err := microarray.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 6102 || d.Cols() != 76 {
		t.Errorf("paper dataset %dx%d, want 6102x76", d.Rows(), d.Cols())
	}
}

func TestRunPairedDesign(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-genes", "4", "-samples", "6", "-paired"}, &out); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.Contains(header, ".c0") || !strings.Contains(header, ".c1") {
		t.Errorf("paired header missing classes: %s", header)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if err := run([]string{"-genes", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("genes=0 accepted")
	}
	if err := run([]string{"-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown flag accepted")
	}
}
