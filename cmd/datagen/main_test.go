package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sprint/internal/microarray"
)

func TestRunWritesValidCSVToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-genes", "15", "-samples", "8", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	d, err := microarray.ReadCSV(&out)
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	if d.Rows() != 15 || d.Cols() != 8 {
		t.Errorf("dims %dx%d", d.Rows(), d.Cols())
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.csv")
	var out bytes.Buffer
	if err := run([]string{"-genes", "5", "-samples", "6", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := microarray.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 5 {
		t.Errorf("rows = %d", d.Rows())
	}
	if out.Len() != 0 {
		t.Error("wrote to stdout despite -out")
	}
}

func TestRunPaperShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "paper.csv")
	if err := run([]string{"-paper", "-out", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(path)
	defer f.Close()
	d, err := microarray.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 6102 || d.Cols() != 76 {
		t.Errorf("paper dataset %dx%d, want 6102x76", d.Rows(), d.Cols())
	}
}

func TestRunPairedDesign(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-genes", "4", "-samples", "6", "-paired"}, &out); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.Contains(header, ".c0") || !strings.Contains(header, ".c1") {
		t.Errorf("paired header missing classes: %s", header)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if err := run([]string{"-genes", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("genes=0 accepted")
	}
	if err := run([]string{"-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestRunSPBRoundTrip: -format spb writes a binary dataset that reads
// back bitwise identical to the generator's output (the CSV format, by
// contrast, goes through decimal text).
func TestRunSPBRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.spb")
	if err := run([]string{"-genes", "20", "-samples", "8", "-seed", "5", "-missing", "0.1", "-out", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := microarray.ReadSPB(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := microarray.Generate(microarray.GenOptions{
		Genes: 20, Samples: 8, Classes: 2,
		DiffFraction: 0.05, EffectSize: 1.5, MissingRate: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("dims %dx%d, want %dx%d", got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := range want.X {
		for j := range want.X[i] {
			g, w := got.X[i][j], want.X[i][j]
			if math.IsNaN(w) {
				if !math.IsNaN(g) {
					t.Fatalf("cell %d,%d: got %v, want NaN", i, j, g)
				}
				continue
			}
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("cell %d,%d: %x != %x (spb round trip must be bitwise)", i, j,
					math.Float64bits(g), math.Float64bits(w))
			}
		}
	}
	for j, l := range want.Labels {
		if got.Labels[j] != l {
			t.Fatalf("label %d: %d != %d", j, got.Labels[j], l)
		}
	}
	for i, n := range want.GeneNames {
		if got.GeneNames[i] != n {
			t.Fatalf("name %d: %q != %q", i, got.GeneNames[i], n)
		}
	}
	for i, d := range want.Differential {
		if got.Differential[i] != d {
			t.Fatalf("differential flag %d lost in round trip", i)
		}
	}
}

// TestRunFormatValidation rejects unknown formats.
func TestRunFormatValidation(t *testing.T) {
	err := run([]string{"-genes", "5", "-samples", "4", "-format", "parquet"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("err = %v, want unknown format", err)
	}
}
