package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunStdin(t *testing.T) {
	good := "# TYPE up gauge\nup 1\n"
	if problems, err := run(nil, strings.NewReader(good)); err != nil || len(problems) != 0 {
		t.Fatalf("good exposition: %v, %v", problems, err)
	}
	bad := "up 1\nup 2\n"
	if problems, err := run(nil, strings.NewReader(bad)); err != nil || len(problems) == 0 {
		t.Fatalf("duplicate series accepted: %v, %v", problems, err)
	}
}

func TestRunFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.txt")
	if err := os.WriteFile(path, []byte("9bad 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := run([]string{path}, nil)
	if err != nil || len(problems) == 0 {
		t.Fatalf("bad file accepted: %v, %v", problems, err)
	}
	if !strings.HasPrefix(problems[0], path+": ") {
		t.Fatalf("problem not attributed to file: %q", problems[0])
	}
	if _, err := run([]string{filepath.Join(dir, "missing.txt")}, nil); err == nil {
		t.Fatal("missing file accepted")
	}
}
