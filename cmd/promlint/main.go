// Command promlint validates a Prometheus text exposition (format 0.0.4)
// read from stdin or the files named as arguments: metric-name and label
// syntax, parseable values, no duplicate series, and well-formed
// histograms (cumulative le buckets with a terminal +Inf equal to
// _count).  It exits non-zero when problems are found, one problem per
// line on stderr — the shape CI wants for scraping a booted daemon:
//
//	curl -fsS localhost:8080/metrics | promlint
package main

import (
	"fmt"
	"io"
	"os"

	"sprint/internal/metrics"
)

func main() {
	problems, err := run(os.Args[1:], os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "promlint:", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Println("promlint: exposition ok")
}

func run(args []string, stdin io.Reader) ([]string, error) {
	if len(args) == 0 {
		return metrics.Lint(stdin), nil
	}
	var problems []string
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		for _, p := range metrics.Lint(f) {
			problems = append(problems, path+": "+p)
		}
		f.Close()
	}
	return problems, nil
}
