// Command pmaxt runs the parallel permutation testing function on a CSV
// dataset: the command-line counterpart of calling pmaxT from an R script
// under mpiexec.  All flags mirror the R parameters.
//
// Usage:
//
//	datagen -paper -out paper.csv
//	pmaxt -data paper.csv -np 8 -B 150000 -test t -side abs
//	pmaxt -data paper.csv -np 4 -B 0          # complete enumeration
//	pmaxt -data paper.csv -serial -B 10000    # the mt.maxT baseline
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"sprint"
	"sprint/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmaxt:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pmaxt", flag.ContinueOnError)
	dataPath := fs.String("data", "", "input dataset: CSV, or binary .spb (required; see cmd/datagen)")
	np := fs.Int("np", 0, "number of parallel processes (goroutine ranks); 0 = all CPUs (GOMAXPROCS)")
	serial := fs.Bool("serial", false, "run the serial mt.maxT baseline instead of pmaxT")
	test := fs.String("test", "t", "statistic: t, t.equalvar, wilcoxon, f, pairt, blockf")
	side := fs.String("side", "abs", "rejection region: abs, upper, lower")
	b := fs.Int64("B", 10000, "permutation count (0 = complete enumeration)")
	fss := fs.String("fixed.seed.sampling", "y", "y = on-the-fly generator, n = store permutations in memory")
	nonpara := fs.String("nonpara", "n", "y = rank-transform the data first")
	na := fs.Float64("na", sprint.DefaultNA, "missing value code")
	seed := fs.Uint64("seed", 0, "permutation RNG seed")
	batch := fs.Int("batch", 0, "kernel permutation batch size (0 = auto; results are identical at any value)")
	kernel := fs.String("kernel", "auto", "accumulation kernel: auto, generic, sse2, avx2 (results are identical on all)")
	order := fs.String("order", "auto", "complete-enumeration order: auto, lex, door (results are identical on all)")
	mode := fs.String("mode", "exact", "run mode: exact (fixed B, bit-reproducible) or sequential (adaptive early stopping)")
	seqAlpha := fs.Float64("seq-alpha", 0, "sequential mode: significance level the stopping rule certifies decisions at (0 = default 0.05)")
	seqTol := fs.Float64("seq-tolerance", 0, "sequential mode: p-value half-width a row must reach before freezing (0 = default 0.02)")
	top := fs.Int("top", 20, "number of most significant genes to print")
	profile := fs.Bool("profile", true, "print the five-section time profile")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" {
		fs.Usage()
		return fmt.Errorf("missing -data")
	}
	if *mode == sprint.ModeSequential && *order == "door" {
		// Fail at the flag level with the flags named, before any data is
		// read: the door order exists only for complete enumeration, which
		// the sequential engine rejects anyway.
		return fmt.Errorf("-mode sequential does not support -order door (sequential runs sample permutations; door is a complete-enumeration order)")
	}
	if _, err := sprint.SetKernel(*kernel); err != nil {
		return err
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			mf, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmaxt: memprofile:", err)
				return
			}
			defer mf.Close()
			runtime.GC() // materialise final live-heap statistics
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "pmaxt: memprofile:", err)
			}
		}()
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var data *sprint.Dataset
	if strings.HasSuffix(*dataPath, ".spb") {
		data, err = sprint.ReadDatasetSPB(f)
	} else {
		data, err = sprint.ReadDatasetCSV(f)
	}
	if err != nil {
		return err
	}

	opt := sprint.Options{
		Test: *test, Side: *side, FixedSeedSampling: *fss,
		B: *b, NA: *na, Nonpara: *nonpara, Seed: *seed, BatchSize: *batch,
		PermOrder: *order,
		Mode:      *mode, SeqAlpha: *seqAlpha, SeqTolerance: *seqTol,
	}
	var res *sprint.Result
	switch {
	case *serial:
		res, err = sprint.MaxT(data.X, data.Labels, opt)
	case *mode == sprint.ModeSequential:
		// The MPI-style collective computes fixed shards; sequential runs
		// need the supervised window loop so the stopping rule can act
		// between windows.  Same parallel kernel, same rank chunking.
		res, err = sprint.Run(data.X, data.Labels, opt, sprint.RunControl{NProcs: *np})
	default:
		res, err = sprint.PMaxT(data.X, data.Labels, *np, opt)
	}
	if err != nil {
		return err
	}

	label := "pmaxT"
	if *serial {
		label = "mt.maxT (serial)"
	}
	fmt.Fprintf(stdout, "%s: %d x %d dataset, %d permutations (complete: %v), %d process(es), kernel %s\n",
		label, data.Rows(), data.Cols(), res.B, res.Complete, res.NProcs, sprint.KernelName())
	if res.Sequential() {
		fmt.Fprintf(stdout, "sequential: planned B %d, ran %d; %d of %d rows stopped early; %d row-permutation evaluations saved\n",
			res.PlannedB, res.B, res.SeqRowsStopped(), data.Rows(), res.SeqPermsSaved())
	}
	fmt.Fprintln(stdout)

	if err := report.PValueTable(stdout, data.GeneNames, res.Stat, res.RawP, res.AdjP, res.Order, *top); err != nil {
		return err
	}

	if *profile {
		p := res.Profile
		fmt.Fprintf(stdout, "\nprofile (master):\n")
		fmt.Fprintf(stdout, "  pre processing       %12.6fs\n", p.PreProcessing.Seconds())
		fmt.Fprintf(stdout, "  broadcast parameters %12.6fs\n", p.BroadcastParams.Seconds())
		fmt.Fprintf(stdout, "  create data          %12.6fs\n", p.CreateData.Seconds())
		fmt.Fprintf(stdout, "  main kernel          %12.6fs (max across ranks %.6fs)\n",
			p.MainKernel.Seconds(), res.KernelMax.Seconds())
		fmt.Fprintf(stdout, "  compute p-values     %12.6fs\n", p.ComputePValues.Seconds())
		fmt.Fprintf(stdout, "  total                %12.6fs\n", p.Total().Seconds())
	}
	return nil
}
