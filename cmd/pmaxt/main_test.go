package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sprint"
)

// writeDataset creates a small CSV dataset for CLI tests.
func writeDataset(t *testing.T) string {
	t.Helper()
	data, err := sprint.GenerateDataset(sprint.DatasetOptions{
		Genes: 50, Samples: 12, Classes: 2,
		DiffFraction: 0.1, EffectSize: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := data.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunParallelAnalysis(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	err := run([]string{"-data", path, "-np", "3", "-B", "500", "-seed", "2", "-top", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"pmaxT", "3 process(es)", "500 permutations", ".DE", "profile (master):", "main kernel"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSerialBaseline(t *testing.T) {
	path := writeDataset(t)
	var out bytes.Buffer
	if err := run([]string{"-data", path, "-serial", "-B", "200"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mt.maxT (serial)") {
		t.Errorf("serial header missing:\n%s", out.String())
	}
}

func TestSerialAndParallelCLIAgree(t *testing.T) {
	path := writeDataset(t)
	var serial, parallel bytes.Buffer
	if err := run([]string{"-data", path, "-serial", "-B", "400", "-seed", "7", "-profile=false"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", path, "-np", "4", "-B", "400", "-seed", "7", "-profile=false"}, &parallel); err != nil {
		t.Fatal(err)
	}
	// The ranked gene tables (everything after the header line) must be
	// identical: same genes, same statistics, same p-values.
	trim := func(s string) string {
		i := strings.Index(s, "#")
		return s[i:]
	}
	if trim(serial.String()) != trim(parallel.String()) {
		t.Errorf("serial and parallel CLI outputs differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestRunCompleteEnumerationFlag(t *testing.T) {
	// 12 samples, 6v6 -> C(12,6) = 924 complete permutations.
	path := writeDataset(t)
	var out bytes.Buffer
	if err := run([]string{"-data", path, "-B", "0", "-np", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "924 permutations (complete: true)") {
		t.Errorf("complete enumeration not reported:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("missing -data accepted")
	}
	if err := run([]string{"-data", "/does/not/exist.csv"}, &bytes.Buffer{}); err == nil {
		t.Error("nonexistent file accepted")
	}
	path := writeDataset(t)
	if err := run([]string{"-data", path, "-test", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("bogus test accepted")
	}
}

// TestRunSPBInput: pmaxt on a .spb dataset must produce exactly the
// analysis of the same dataset read from CSV.
func TestRunSPBInput(t *testing.T) {
	data, err := sprint.GenerateDataset(sprint.DatasetOptions{
		Genes: 40, Samples: 10, Classes: 2,
		DiffFraction: 0.1, EffectSize: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	spbPath := filepath.Join(dir, "data.spb")
	sf, err := os.Create(spbPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := data.WriteSPB(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	var out bytes.Buffer
	if err := run([]string{"-data", spbPath, "-serial", "-B", "400", "-seed", "3", "-top", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// 252 = C(10,5): the complete enumeration undercuts B=400 and wins,
	// exactly as it would for the CSV form of the same dataset.
	for _, want := range []string{"mt.maxT (serial)", "252 permutations (complete: true)", ".DE"} {
		if !strings.Contains(s, want) {
			t.Errorf("spb output missing %q:\n%s", want, s)
		}
	}
}
