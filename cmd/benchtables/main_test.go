package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableOutputsContainPaperAndModel(t *testing.T) {
	for i, marker := range map[int]string{
		1: "HECToR", 2: "ECDF", 3: "Amazon EC2", 4: "Ness", 5: "Quad-core",
	} {
		var out bytes.Buffer
		if err := run([]string{"-table", itoa(i)}, &out); err != nil {
			t.Fatalf("table %d: %v", i, err)
		}
		s := out.String()
		for _, want := range []string{marker, "[paper, measured]", "[model, this reproduction]", "[paper vs model]"} {
			if !strings.Contains(s, want) {
				t.Errorf("table %d missing %q", i, want)
			}
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestTableIValuesPresent(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	// The paper block must carry the published anchor cells.
	for _, cell := range []string{"795.600", "1.633", "313.09", "487.20"} {
		if !strings.Contains(out.String(), cell) {
			t.Errorf("table 1 missing paper cell %s", cell)
		}
	}
}

func TestTableVI(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Table VI", "36612 x 76", "73224 x 76", "73.18", "591.48"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 6 missing %q", want)
		}
	}
}

func TestFigure3(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Count(s, "Figure 3") != 2 {
		t.Errorf("expected paper and model figures:\n%s", s)
	}
	if !strings.Contains(s, "legend:") || !strings.Contains(s, "* optimal") {
		t.Error("figure missing legend")
	}
}

func TestMeasuredModeRunsRealParallel(t *testing.T) {
	var out bytes.Buffer
	// A tiny workload keeps the real sweep fast in CI.
	if err := run([]string{"-measure", "-genes", "60", "-perms", "200"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Measured on this machine") {
		t.Errorf("measured table missing:\n%s", s)
	}
	if !strings.Contains(s, "real goroutine-parallel pmaxT") {
		t.Error("measured table title missing workload description")
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestJSONDeltaEmitsKernelSections(t *testing.T) {
	var out bytes.Buffer
	// A tiny gene count keeps the micro-benchmarks fast in CI.
	if err := run([]string{"-json-delta", "-genes", "40"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		`"delta/wilcoxon/scalar"`, `"delta/wilcoxon/batch=64"`,
		`"delta/wilcoxon/delta=64"`, `"isa/t76/generic/batch=64"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("json-delta output missing %s", want)
		}
	}
}
