package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTableOutputsContainPaperAndModel(t *testing.T) {
	for i, marker := range map[int]string{
		1: "HECToR", 2: "ECDF", 3: "Amazon EC2", 4: "Ness", 5: "Quad-core",
	} {
		var out bytes.Buffer
		if err := run([]string{"-table", itoa(i)}, &out); err != nil {
			t.Fatalf("table %d: %v", i, err)
		}
		s := out.String()
		for _, want := range []string{marker, "[paper, measured]", "[model, this reproduction]", "[paper vs model]"} {
			if !strings.Contains(s, want) {
				t.Errorf("table %d missing %q", i, want)
			}
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestTableIValuesPresent(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	// The paper block must carry the published anchor cells.
	for _, cell := range []string{"795.600", "1.633", "313.09", "487.20"} {
		if !strings.Contains(out.String(), cell) {
			t.Errorf("table 1 missing paper cell %s", cell)
		}
	}
}

func TestTableVI(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Table VI", "36612 x 76", "73224 x 76", "73.18", "591.48"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 6 missing %q", want)
		}
	}
}

func TestFigure3(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Count(s, "Figure 3") != 2 {
		t.Errorf("expected paper and model figures:\n%s", s)
	}
	if !strings.Contains(s, "legend:") || !strings.Contains(s, "* optimal") {
		t.Error("figure missing legend")
	}
}

func TestMeasuredModeRunsRealParallel(t *testing.T) {
	var out bytes.Buffer
	// A tiny workload keeps the real sweep fast in CI.
	if err := run([]string{"-measure", "-genes", "60", "-perms", "200"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Measured on this machine") {
		t.Errorf("measured table missing:\n%s", s)
	}
	if !strings.Contains(s, "real goroutine-parallel pmaxT") {
		t.Error("measured table title missing workload description")
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestJSONDeltaEmitsKernelSections(t *testing.T) {
	var out bytes.Buffer
	// A tiny gene count keeps the micro-benchmarks fast in CI.
	if err := run([]string{"-json-delta", "-genes", "40"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		`"delta/wilcoxon/scalar"`, `"delta/wilcoxon/batch=64"`,
		`"delta/wilcoxon/delta=64"`, `"isa/t76/generic/batch=64"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("json-delta output missing %s", want)
		}
	}
}

func TestJSONServeEmitsSweep(t *testing.T) {
	var out bytes.Buffer
	// One tiny load level keeps the real serving sweep fast in CI.
	if err := run([]string{"-json-serve", "-genes", "60", "-serve-seconds", "0.2", "-serve-levels", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		CapacityPerS float64 `json:"capacity_jobs_per_s"`
		Levels       []struct {
			Multiplier float64 `json:"multiplier"`
			Offered    int64   `json:"offered"`
			Accepted   int64   `json:"accepted"`
			Shed       int64   `json:"shed_429"`
		} `json:"levels"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if doc.CapacityPerS <= 0 {
		t.Fatalf("capacity %g", doc.CapacityPerS)
	}
	if len(doc.Levels) != 1 || doc.Levels[0].Multiplier != 1 {
		t.Fatalf("levels %+v", doc.Levels)
	}
	if lvl := doc.Levels[0]; lvl.Offered == 0 || lvl.Accepted+lvl.Shed != lvl.Offered {
		t.Fatalf("offered %d != accepted %d + shed %d", lvl.Offered, lvl.Accepted, lvl.Shed)
	}
}

func TestParseServeLevels(t *testing.T) {
	got, err := parseServeLevels("1, 2,4")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("got %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "x"} {
		if _, err := parseServeLevels(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestJSONDistEmitsSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-json-dist", "-genes", "60", "-dist-perms", "800"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Perms  int64 `json:"perms"`
		Levels []struct {
			Workers          int  `json:"workers"`
			BitwiseIdentical bool `json:"bitwise_identical"`
		} `json:"levels"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("json-dist output is not JSON: %v", err)
	}
	if doc.Perms != 800 || len(doc.Levels) != 3 {
		t.Fatalf("perms=%d levels=%d, want 800/3", doc.Perms, len(doc.Levels))
	}
	for _, lv := range doc.Levels {
		if !lv.BitwiseIdentical {
			t.Errorf("%d-worker level not bitwise identical", lv.Workers)
		}
	}
}

func TestJSONRecoverEmitsSweep(t *testing.T) {
	var out bytes.Buffer
	// Moderate perms keep each interrupted job alive past the first
	// checkpoint window but finish the sweep quickly in CI.
	if err := run([]string{"-json-recover", "-genes", "100", "-recover-perms", "100000"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Perms  int64 `json:"perms"`
		Levels []struct {
			Jobs             int     `json:"jobs"`
			JournalBytes     int64   `json:"journal_bytes"`
			RecoveryS        float64 `json:"recovery_s"`
			JobsReplayed     int64   `json:"jobs_replayed"`
			BitwiseIdentical bool    `json:"bitwise_identical"`
		} `json:"levels"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("json-recover output is not JSON: %v", err)
	}
	if doc.Perms != 100000 || len(doc.Levels) != 3 {
		t.Fatalf("perms=%d levels=%d, want 100000/3", doc.Perms, len(doc.Levels))
	}
	for _, lv := range doc.Levels {
		if !lv.BitwiseIdentical {
			t.Errorf("%d-job level not bitwise identical", lv.Jobs)
		}
		if lv.JournalBytes == 0 {
			t.Errorf("%d-job level recorded an empty journal", lv.Jobs)
		}
		if lv.JobsReplayed < int64(lv.Jobs) {
			t.Errorf("%d-job level replayed only %d jobs", lv.Jobs, lv.JobsReplayed)
		}
	}
}
