package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"sprint"
	"sprint/internal/httpapi"
	"sprint/internal/jobs"
	"sprint/internal/matrix"
	"sprint/internal/rng"
)

// The -json-ingest mode emits the dataset-plane benchmark data CI tracks
// as an artifact (BENCH_ingest.json): how fast a paper-shaped matrix gets
// from wire bytes into the engine's layout (binary spb in both layouts
// versus streaming and buffered JSON), and what a submission costs end to
// end when the prepared state is cold versus served from the cross-job
// prep cache.

// ingestBenchJSON is one ingest micro-benchmark result.
type ingestBenchJSON struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type ingestDoc struct {
	GOOS         string            `json:"goos"`
	GOARCH       string            `json:"goarch"`
	CPUs         int               `json:"cpus"`
	Genes        int               `json:"genes"`
	Samples      int               `json:"samples"`
	MatrixBytes  int               `json:"matrix_bytes"`
	JSONBytes    int               `json:"json_body_bytes"`
	SPBBytes     int               `json:"spb_bytes"`
	Ingest       []ingestBenchJSON `json:"ingest"`
	Submit       []ingestBenchJSON `json:"submit"`
	PrepBuilds   int64             `json:"prep_builds"`
	PrepHits     int64             `json:"prep_hits"`
	SubmitRounds int               `json:"submit_rounds"`
}

// emitJSONIngest measures the ingest paths on a genes×76 workload and
// writes one JSON document.
func emitJSONIngest(w io.Writer, genes int) error {
	const samples = 76
	doc := ingestDoc{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Genes: genes, Samples: samples,
	}

	m := matrix.New(genes, samples)
	src := rng.New(20260727)
	for i := range m.Data {
		m.Data[i] = 8 + 2*src.NormFloat64()
	}
	labels := make([]int, samples)
	for j := samples / 2; j < samples; j++ {
		labels[j] = 1
	}
	doc.MatrixBytes = len(m.Data) * 8

	// ---- wire payloads -------------------------------------------------
	spbRow, err := matrix.EncodeBytes(m, nil, nil, matrix.RowMajor)
	if err != nil {
		return err
	}
	spbCol, err := matrix.EncodeBytes(m, nil, nil, matrix.ColMajor)
	if err != nil {
		return err
	}
	doc.SPBBytes = len(spbRow)
	flat := make([]float64, genes*samples)
	for j := 0; j < samples; j++ {
		for i := 0; i < genes; i++ {
			flat[j*genes+i] = m.At(i, j)
		}
	}
	body, err := json.Marshal(map[string]any{
		"dataset": map[string]any{
			"x_flat": httpapi.Floats(flat), "genes": genes, "samples": samples,
			"labels": labels,
		},
		"options": map[string]any{"b": 1000, "seed": 1},
	})
	if err != nil {
		return err
	}
	doc.JSONBytes = len(body)

	record := func(list *[]ingestBenchJSON, name string, payload int, r testing.BenchmarkResult) {
		row := ingestBenchJSON{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if payload > 0 && r.NsPerOp() > 0 {
			row.MBPerS = float64(payload) / (1 << 20) / (float64(r.NsPerOp()) / 1e9)
		}
		*list = append(*list, row)
	}

	// ---- ingest micro-benchmarks --------------------------------------
	work := make([]byte, len(spbRow))
	record(&doc.Ingest, "ingest/spb-rowmajor", len(spbRow), testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// DecodeBytes consumes its buffer, so each iteration pays one
			// refresh memcpy — as a real server does per request body.
			copy(work, spbRow)
			if _, err := matrix.DecodeBytes(work); err != nil {
				b.Fatal(err)
			}
		}
	}))
	workCol := make([]byte, len(spbCol))
	record(&doc.Ingest, "ingest/spb-colmajor", len(spbCol), testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(workCol, spbCol)
			if _, err := matrix.DecodeBytes(workCol); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record(&doc.Ingest, "ingest/json-stream", len(body), testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := httpapi.DecodeSubmit(bytes.NewReader(body)); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record(&doc.Ingest, "ingest/json-buffered", len(body), testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var req httpapi.SubmitRequest
			if err := json.Unmarshal(body, &req); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// ---- end-to-end submission latency --------------------------------
	// Tiny B isolates the serving overhead (ingest + key + prep) from the
	// permutation kernel; distinct seeds defeat the result cache so every
	// submission computes.
	mgr, err := jobs.NewManager(jobs.Config{Workers: 1, DefaultNProcs: 1, QueueDepth: 4096})
	if err != nil {
		return err
	}
	defer mgr.Close()
	opt := sprint.DefaultOptions()
	opt.B = 2
	seed := uint64(1)
	submitWait := func(spec jobs.Spec) error {
		st, err := mgr.Submit(spec)
		if err != nil {
			return err
		}
		for {
			cur, err := mgr.Get(st.ID)
			if err != nil {
				return err
			}
			if cur.State.Terminal() {
				if cur.State != jobs.Done {
					return fmt.Errorf("job %s finished %s: %s", st.ID, cur.State, cur.Error)
				}
				return nil
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	record(&doc.Submit, "submit/x_flat-cold-prep", 0, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := opt
			seed++
			o.Seed = seed
			if err := submitWait(jobs.Spec{XFlat: flat, Genes: genes, Samples: samples, Labels: labels, Opt: o}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	info, _, err := mgr.PutDataset(m.Clone())
	if err != nil {
		return err
	}
	// Warm the prep cache once, then measure hot submissions.
	o := opt
	seed++
	o.Seed = seed
	if err := submitWait(jobs.Spec{DatasetID: info.ID, Labels: labels, Opt: o}); err != nil {
		return err
	}
	hot := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := opt
			seed++
			o.Seed = seed
			if err := submitWait(jobs.Spec{DatasetID: info.ID, Labels: labels, Opt: o}); err != nil {
				b.Fatal(err)
			}
		}
	})
	record(&doc.Submit, "submit/dataset-id-hot-prep", 0, hot)
	doc.SubmitRounds = hot.N
	stats := mgr.StatsSnapshot()
	doc.PrepBuilds, doc.PrepHits = stats.PrepBuilds, stats.PrepHits

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
