package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"sprint"
	"sprint/internal/matrix"
	"sprint/internal/rng"
	"sprint/internal/stat"
)

// The -json mode emits the benchmark data CI tracks as an artifact
// (BENCH_kernel.json): the scalar-versus-batched kernel micro-benchmarks
// on the paper's Welch-t workload shape, and the measured five-section
// profile of real runs on this machine.  Everything is ns/op + allocs/op —
// machine-readable, so the bench trajectory can be plotted across commits.

// kernelBenchJSON is one kernel micro-benchmark result.  NsPerPerm
// normalises batched runs to single-permutation cost, directly comparable
// with the scalar row.
type kernelBenchJSON struct {
	Name        string  `json:"name"`
	Batch       int     `json:"batch"` // 1 = scalar Stats path
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerPerm   float64 `json:"ns_per_perm"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// sectionBenchJSON is one measured pmaxT profile row, in nanoseconds per
// section (the paper's five timed sections).
type sectionBenchJSON struct {
	Procs           int   `json:"procs"`
	PreProcessingNs int64 `json:"pre_processing_ns"`
	BroadcastNs     int64 `json:"broadcast_params_ns"`
	CreateDataNs    int64 `json:"create_data_ns"`
	MainKernelNs    int64 `json:"main_kernel_ns"`
	ComputePNs      int64 `json:"compute_p_values_ns"`
	TotalNs         int64 `json:"total_ns"`
}

type benchJSON struct {
	GOOS     string             `json:"goos"`
	GOARCH   string             `json:"goarch"`
	CPUs     int                `json:"cpus"`
	Genes    int                `json:"genes"`
	Samples  int                `json:"samples"`
	Perms    int64              `json:"perms"`
	Kernel   []kernelBenchJSON  `json:"kernel"`
	Sections []sectionBenchJSON `json:"sections"`
}

// emitJSON runs the kernel micro-benchmarks and the measured section
// profile and writes one JSON document.
func emitJSON(w io.Writer, genes int, perms int64) error {
	const samples = 76
	out := benchJSON{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Genes: genes, Samples: samples, Perms: perms,
	}

	// ---- kernel micro-benchmarks (Welch t, the paper's primary test) ----
	labels := make([]int, samples)
	for i := samples / 2; i < samples; i++ {
		labels[i] = 1
	}
	design, err := stat.NewDesign(stat.Welch, labels)
	if err != nil {
		return err
	}
	m := matrix.New(genes, samples)
	src := rng.New(12345)
	for i := range m.Data {
		m.Data[i] = src.NormFloat64()
	}
	kern, err := stat.NewKernel(design, m)
	if err != nil {
		return err
	}
	// Rotating pre-drawn labellings, as in BenchmarkKernel.
	labs := make([][]int, 32)
	for i := range labs {
		lab := append([]int(nil), labels...)
		src.Shuffle(len(lab), func(a, b int) { lab[a], lab[b] = lab[b], lab[a] })
		labs[i] = lab
	}

	scalar := testing.Benchmark(func(b *testing.B) {
		s := kern.NewScratch()
		res := make([]float64, genes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kern.Stats(labs[i%len(labs)], res, s)
		}
	})
	out.Kernel = append(out.Kernel, kernelBenchJSON{
		Name: "kernel/t/scalar", Batch: 1,
		NsPerOp: float64(scalar.NsPerOp()), NsPerPerm: float64(scalar.NsPerOp()),
		AllocsPerOp: scalar.AllocsPerOp(), BytesPerOp: scalar.AllocedBytesPerOp(),
	})

	bk := kern.(stat.BatchKernel)
	for _, bs := range []int{16, 64, 128} {
		bs := bs
		flat := make([]int, bs*samples)
		for p := 0; p < bs; p++ {
			copy(flat[p*samples:(p+1)*samples], labs[p%len(labs)])
		}
		outM := matrix.New(bs, genes)
		scr := bk.NewBatchScratch(bs)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bk.StatsBatch(flat, outM, scr)
			}
		})
		out.Kernel = append(out.Kernel, kernelBenchJSON{
			Name: fmt.Sprintf("kernel/t/batch=%d", bs), Batch: bs,
			NsPerOp: float64(r.NsPerOp()), NsPerPerm: float64(r.NsPerOp()) / float64(bs),
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		})
	}

	// ---- measured section profile (real runs on this machine) ----------
	opt := sprint.PaperDataset()
	opt.Genes = genes
	data, err := sprint.GenerateDataset(opt)
	if err != nil {
		return err
	}
	runOpt := sprint.DefaultOptions()
	runOpt.B = perms
	runOpt.Seed = 42
	for p := 1; p <= runtime.NumCPU(); p *= 2 {
		res, err := sprint.PMaxT(data.X, data.Labels, p, runOpt)
		if err != nil {
			return err
		}
		pr := res.Profile
		out.Sections = append(out.Sections, sectionBenchJSON{
			Procs:           p,
			PreProcessingNs: pr.PreProcessing.Nanoseconds(),
			BroadcastNs:     pr.BroadcastParams.Nanoseconds(),
			CreateDataNs:    pr.CreateData.Nanoseconds(),
			MainKernelNs:    pr.MainKernel.Nanoseconds(),
			ComputePNs:      pr.ComputePValues.Nanoseconds(),
			TotalNs:         pr.Total().Nanoseconds(),
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
