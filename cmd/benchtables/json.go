package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"sprint"
	"sprint/internal/matrix"
	"sprint/internal/perm"
	"sprint/internal/rng"
	"sprint/internal/stat"
)

// The -json mode emits the benchmark data CI tracks as an artifact
// (BENCH_kernel.json): the scalar-versus-batched kernel micro-benchmarks
// on the paper's Welch-t workload shape, and the measured five-section
// profile of real runs on this machine.  Everything is ns/op + allocs/op —
// machine-readable, so the bench trajectory can be plotted across commits.

// kernelBenchJSON is one kernel micro-benchmark result.  NsPerPerm
// normalises batched runs to single-permutation cost, directly comparable
// with the scalar row.
type kernelBenchJSON struct {
	Name        string  `json:"name"`
	Batch       int     `json:"batch"` // 1 = scalar Stats path
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerPerm   float64 `json:"ns_per_perm"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// sectionBenchJSON is one measured pmaxT profile row, in nanoseconds per
// section (the paper's five timed sections).
type sectionBenchJSON struct {
	Procs           int   `json:"procs"`
	PreProcessingNs int64 `json:"pre_processing_ns"`
	BroadcastNs     int64 `json:"broadcast_params_ns"`
	CreateDataNs    int64 `json:"create_data_ns"`
	MainKernelNs    int64 `json:"main_kernel_ns"`
	ComputePNs      int64 `json:"compute_p_values_ns"`
	TotalNs         int64 `json:"total_ns"`
}

type benchJSON struct {
	GOOS     string             `json:"goos"`
	GOARCH   string             `json:"goarch"`
	CPUs     int                `json:"cpus"`
	Genes    int                `json:"genes"`
	Samples  int                `json:"samples"`
	Perms    int64              `json:"perms"`
	Kernel   []kernelBenchJSON  `json:"kernel"`
	Sections []sectionBenchJSON `json:"sections"`
}

// emitJSON runs the kernel micro-benchmarks and the measured section
// profile and writes one JSON document.
func emitJSON(w io.Writer, genes int, perms int64) error {
	const samples = 76
	out := benchJSON{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Genes: genes, Samples: samples, Perms: perms,
	}

	// ---- kernel micro-benchmarks (Welch t, the paper's primary test) ----
	labels := make([]int, samples)
	for i := samples / 2; i < samples; i++ {
		labels[i] = 1
	}
	design, err := stat.NewDesign(stat.Welch, labels)
	if err != nil {
		return err
	}
	m := matrix.New(genes, samples)
	src := rng.New(12345)
	for i := range m.Data {
		m.Data[i] = src.NormFloat64()
	}
	kern, err := stat.NewKernel(design, m)
	if err != nil {
		return err
	}
	// Rotating pre-drawn labellings, as in BenchmarkKernel.
	labs := make([][]int, 32)
	for i := range labs {
		lab := append([]int(nil), labels...)
		src.Shuffle(len(lab), func(a, b int) { lab[a], lab[b] = lab[b], lab[a] })
		labs[i] = lab
	}

	scalar := testing.Benchmark(func(b *testing.B) {
		s := kern.NewScratch()
		res := make([]float64, genes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kern.Stats(labs[i%len(labs)], res, s)
		}
	})
	out.Kernel = append(out.Kernel, kernelBenchJSON{
		Name: "kernel/t/scalar", Batch: 1,
		NsPerOp: float64(scalar.NsPerOp()), NsPerPerm: float64(scalar.NsPerOp()),
		AllocsPerOp: scalar.AllocsPerOp(), BytesPerOp: scalar.AllocedBytesPerOp(),
	})

	bk := kern.(stat.BatchKernel)
	for _, bs := range []int{16, 64, 128} {
		bs := bs
		flat := make([]int, bs*samples)
		for p := 0; p < bs; p++ {
			copy(flat[p*samples:(p+1)*samples], labs[p%len(labs)])
		}
		outM := matrix.New(bs, genes)
		scr := bk.NewBatchScratch(bs)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bk.StatsBatch(flat, outM, scr)
			}
		})
		out.Kernel = append(out.Kernel, kernelBenchJSON{
			Name: fmt.Sprintf("kernel/t/batch=%d", bs), Batch: bs,
			NsPerOp: float64(r.NsPerOp()), NsPerPerm: float64(r.NsPerOp()) / float64(bs),
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		})
	}

	// ---- measured section profile (real runs on this machine) ----------
	opt := sprint.PaperDataset()
	opt.Genes = genes
	data, err := sprint.GenerateDataset(opt)
	if err != nil {
		return err
	}
	runOpt := sprint.DefaultOptions()
	runOpt.B = perms
	runOpt.Seed = 42
	for p := 1; p <= runtime.NumCPU(); p *= 2 {
		res, err := sprint.PMaxT(data.X, data.Labels, p, runOpt)
		if err != nil {
			return err
		}
		pr := res.Profile
		out.Sections = append(out.Sections, sectionBenchJSON{
			Procs:           p,
			PreProcessingNs: pr.PreProcessing.Nanoseconds(),
			BroadcastNs:     pr.BroadcastParams.Nanoseconds(),
			CreateDataNs:    pr.CreateData.Nanoseconds(),
			MainKernelNs:    pr.MainKernel.Nanoseconds(),
			ComputePNs:      pr.ComputePValues.Nanoseconds(),
			TotalNs:         pr.Total().Nanoseconds(),
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// emitJSONDelta runs the delta-engine and ISA-dispatch micro-benchmarks
// and writes one JSON document (CI uploads it as BENCH_delta.json): the
// revolving-door delta path versus the batch and scalar kernels on the
// nonpara complete-enumeration workload (genes × 24, 12 vs 12 — the
// design shape whose complete count fits the default cap), and the
// generic/SSE2/AVX2 accumulation kernels on the Welch-t genes×76
// workload.
func emitJSONDelta(w io.Writer, genes int) error {
	out := benchJSON{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Genes: genes, Samples: 24,
	}

	// ---- delta vs batch vs scalar (Wilcoxon on mid-ranks) --------------
	const cols = 24
	labels := make([]int, cols)
	for i := cols / 2; i < cols; i++ {
		labels[i] = 1
	}
	design, err := stat.NewDesign(stat.Wilcoxon, labels)
	if err != nil {
		return err
	}
	m := matrix.New(genes, cols)
	src := rng.New(98765)
	scratch := make([]int, cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float64(src.Uint64n(13)) // quantized: real tie structure
		}
		stat.Ranks(row, scratch)
	}
	kern, err := stat.NewKernel(design, m)
	if err != nil {
		return err
	}
	bk := kern.(stat.BatchKernel)
	dk := kern.(stat.DeltaKernel)
	if !dk.DeltaOK() {
		return fmt.Errorf("benchtables: delta path unavailable on rank data")
	}
	door, err := perm.NewRevolvingDoor(design)
	if err != nil {
		return err
	}
	const bs = 64
	lab0 := make([]int, cols)
	moves := make([]stat.Exchange, bs-1)
	door.LabelsDelta(1, bs, lab0, moves)
	flat := make([]int, bs*cols)
	door.Labels(1, bs, flat)
	outM := matrix.New(bs, genes)
	scr := bk.NewBatchScratch(bs)

	scalar := testing.Benchmark(func(b *testing.B) {
		ks := kern.NewScratch()
		z := make([]float64, genes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kern.Stats(flat[(i%bs)*cols:(i%bs+1)*cols], z, ks)
		}
	})
	out.Kernel = append(out.Kernel, kernelBenchJSON{
		Name: "delta/wilcoxon/scalar", Batch: 1,
		NsPerOp: float64(scalar.NsPerOp()), NsPerPerm: float64(scalar.NsPerOp()),
		AllocsPerOp: scalar.AllocsPerOp(), BytesPerOp: scalar.AllocedBytesPerOp(),
	})
	batch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bk.StatsBatch(flat, outM, scr)
		}
	})
	out.Kernel = append(out.Kernel, kernelBenchJSON{
		Name: "delta/wilcoxon/batch=64", Batch: bs,
		NsPerOp: float64(batch.NsPerOp()), NsPerPerm: float64(batch.NsPerOp()) / bs,
		AllocsPerOp: batch.AllocsPerOp(), BytesPerOp: batch.AllocedBytesPerOp(),
	})
	delta := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dk.StatsDelta(lab0, moves, outM, scr)
		}
	})
	out.Kernel = append(out.Kernel, kernelBenchJSON{
		Name: "delta/wilcoxon/delta=64", Batch: bs,
		NsPerOp: float64(delta.NsPerOp()), NsPerPerm: float64(delta.NsPerOp()) / bs,
		AllocsPerOp: delta.AllocsPerOp(), BytesPerOp: delta.AllocedBytesPerOp(),
	})

	// ---- ISA dispatch sweep (Welch t, genes×76) ------------------------
	prev := stat.ActiveKernelISA().String()
	defer func() { _, _ = stat.SetKernelISA(prev) }()
	const tcols = 76
	tlabels := make([]int, tcols)
	for i := tcols / 2; i < tcols; i++ {
		tlabels[i] = 1
	}
	tdesign, err := stat.NewDesign(stat.Welch, tlabels)
	if err != nil {
		return err
	}
	tm := matrix.New(genes, tcols)
	for i := range tm.Data {
		tm.Data[i] = src.NormFloat64()
	}
	tlabs := make([]int, bs*tcols)
	for p := 0; p < bs; p++ {
		lab := tlabs[p*tcols : (p+1)*tcols]
		copy(lab, tlabels)
		src.Shuffle(tcols, func(a, b int) { lab[a], lab[b] = lab[b], lab[a] })
	}
	tout := matrix.New(bs, genes)
	for _, isa := range stat.SupportedISAs() {
		if _, err := stat.SetKernelISA(isa); err != nil {
			return err
		}
		tk, err := stat.NewKernel(tdesign, tm) // captures the active ISA
		if err != nil {
			return err
		}
		tbk := tk.(stat.BatchKernel)
		tscr := tbk.NewBatchScratch(bs)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tbk.StatsBatch(tlabs, tout, tscr)
			}
		})
		// The row name carries the column count: the document-level
		// Samples field describes the delta section's 24-column workload,
		// not this 76-column one.
		out.Kernel = append(out.Kernel, kernelBenchJSON{
			Name: fmt.Sprintf("isa/t%d/%s/batch=%d", tcols, isa, bs), Batch: bs,
			NsPerOp: float64(r.NsPerOp()), NsPerPerm: float64(r.NsPerOp()) / bs,
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
