// Command benchtables regenerates every table and figure of the paper's
// evaluation section:
//
//	-table 1..5   per-platform pmaxT profiles (paper data, model, deltas)
//	-table 6      large-dataset elapsed times at 256 processes
//	-figure 3     the log-log total-speedup plot across all platforms
//	-measure      run the real Go implementation on this machine across
//	              1..NumCPU ranks (scaled workload) and print a measured
//	              profile table in the same layout
//	-all          everything above
//
// Platform times for Tables I–V come from the calibrated analytic model in
// internal/perfmodel (we do not own a Cray XT4); the -measure mode provides
// genuinely measured numbers for the machine this runs on, which plays the
// role of the paper's quad-core desktop.  See DESIGN.md for the
// substitution argument and EXPERIMENTS.md for recorded outputs.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"sprint"
	"sprint/internal/perfmodel"
	"sprint/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	table := fs.Int("table", 0, "regenerate one table (1-6)")
	figure := fs.Int("figure", 0, "regenerate one figure (3)")
	all := fs.Bool("all", false, "regenerate every table and figure")
	measure := fs.Bool("measure", false, "also run real measurements on this machine")
	genes := fs.Int("genes", 600, "measured workload: gene count (scaled from 6102)")
	perms := fs.Int64("perms", 3000, "measured workload: permutation count (scaled from 150000)")
	csvOut := fs.Bool("csv", false, "emit model profiles for all platforms as CSV and exit")
	jsonOut := fs.Bool("json", false, "run the kernel micro-benchmarks and measured profile, emit JSON, and exit")
	jsonDelta := fs.Bool("json-delta", false, "run the delta-engine and ISA-dispatch micro-benchmarks, emit JSON, and exit")
	jsonIngest := fs.Bool("json-ingest", false, "run the dataset-plane ingest benchmarks (spb vs JSON, cold vs hot prep), emit JSON, and exit")
	jsonServe := fs.Bool("json-serve", false, "run the serving-plane saturation sweep (admission control under 1x/2x/4x load), emit JSON, and exit")
	jsonDist := fs.Bool("json-dist", false, "run the distributed-scaling sweep (coordinator + 1/2/4 in-process workers, bitwise-checked), emit JSON, and exit")
	jsonRecover := fs.Bool("json-recover", false, "run the crash-recovery sweep (journal replay latency vs queue depth, bitwise-checked), emit JSON, and exit")
	jsonSeq := fs.Bool("json-seq", false, "run the exact-vs-sequential sweep on the paper workload, emit JSON, and exit")
	seqPerms := fs.String("seq-perms", "10000,100000,1000000", "sequential sweep: comma-separated planned permutation counts")
	distPerms := fs.Int64("dist-perms", 30000, "distributed sweep: permutation count")
	recoverPerms := fs.Int64("recover-perms", 100000, "recovery sweep: permutation count per interrupted job")
	serveSeconds := fs.Float64("serve-seconds", 2, "saturation sweep: offered-load duration per level, seconds")
	serveLevels := fs.String("serve-levels", "1,2,4", "saturation sweep: comma-separated capacity multipliers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvOut {
		return emitCSV(w)
	}
	if *jsonOut {
		return emitJSON(w, *genes, *perms)
	}
	if *jsonDelta {
		return emitJSONDelta(w, *genes)
	}
	if *jsonIngest {
		return emitJSONIngest(w, *genes)
	}
	if *jsonDist {
		return emitJSONDist(w, *genes, *distPerms)
	}
	if *jsonRecover {
		return emitJSONRecover(w, *genes, *recoverPerms)
	}
	if *jsonSeq {
		perms, err := parseSeqPerms(*seqPerms)
		if err != nil {
			return err
		}
		return emitJSONSeq(w, *genes, perms)
	}
	if *jsonServe {
		levels, err := parseServeLevels(*serveLevels)
		if err != nil {
			return err
		}
		return emitJSONServe(w, *genes, *serveSeconds, levels)
	}
	if !*all && *table == 0 && *figure == 0 && !*measure {
		*all = true
	}

	if *all || (*table >= 1 && *table <= 5) {
		platforms := perfmodel.All()
		for i, pl := range platforms {
			if !*all && *table != i+1 {
				continue
			}
			if err := emitPlatformTable(w, i+1, pl); err != nil {
				return err
			}
		}
	}
	if *all || *table == 6 {
		if err := emitTableVI(w); err != nil {
			return err
		}
	}
	if *all || *figure == 3 {
		if err := emitFigure3(w); err != nil {
			return err
		}
	}
	if *all || *measure {
		if err := emitMeasured(w, *genes, *perms); err != nil {
			return err
		}
	}
	return nil
}

// emitCSV writes the model profile of every platform at every paper
// process count as one CSV stream, for plotting.
func emitCSV(w io.Writer) error {
	first := true
	for _, pl := range perfmodel.All() {
		base := pl.Predict(1)
		var rows []report.ProfileRow
		for _, p := range pl.ProcCounts() {
			m := pl.Predict(p)
			rows = append(rows, report.ProfileRow{
				Procs: p, Pre: m.Pre, Bcast: m.Bcast, Data: m.Data,
				Kernel: m.Kernel, PVal: m.PVal,
				Speedup: base.Total() / m.Total(), SpeedupKernel: base.Kernel / m.Kernel,
			})
		}
		if !first {
			// Re-emitting the header per platform would break CSV
			// consumers; strip it by writing to a buffer after the first.
			var buf bytes.Buffer
			if err := report.TableCSV(&buf, pl.Name, rows); err != nil {
				return err
			}
			body := buf.String()
			if idx := strings.IndexByte(body, '\n'); idx >= 0 {
				body = body[idx+1:]
			}
			if _, err := io.WriteString(w, body); err != nil {
				return err
			}
			continue
		}
		if err := report.TableCSV(w, pl.Name, rows); err != nil {
			return err
		}
		first = false
	}
	return nil
}

// romanNumerals for the paper's table numbering.
var romanNumerals = []string{"", "I", "II", "III", "IV", "V", "VI"}

// emitPlatformTable prints the paper's measured rows, the model's rows and
// a cell-by-cell comparison for one platform.
func emitPlatformTable(w io.Writer, idx int, pl perfmodel.Platform) error {
	paper := perfmodel.PaperTable(pl.Name)
	title := fmt.Sprintf("Table %s: profile of pmaxT (%s) — %s", romanNumerals[idx], pl.Name, pl.Description)

	paperRows := make([]report.ProfileRow, len(paper))
	modelRows := make([]report.ProfileRow, len(paper))
	cmpRows := make([]report.ComparisonRow, len(paper))
	base := pl.Predict(1)
	for i, row := range paper {
		paperRows[i] = report.ProfileRow{
			Procs: row.Procs, Pre: row.Pre, Bcast: row.Bcast, Data: row.Data,
			Kernel: row.Kernel, PVal: row.PVal,
			Speedup: row.Speedup, SpeedupKernel: row.SpeedupKernel,
		}
		m := pl.Predict(row.Procs)
		modelRows[i] = report.ProfileRow{
			Procs: row.Procs, Pre: m.Pre, Bcast: m.Bcast, Data: m.Data,
			Kernel: m.Kernel, PVal: m.PVal,
			Speedup: base.Total() / m.Total(), SpeedupKernel: base.Kernel / m.Kernel,
		}
		cmpRows[i] = report.ComparisonRow{
			Procs:       row.Procs,
			PaperKernel: row.Kernel, ModelKernel: m.Kernel,
			PaperTotal: row.Profile().Total(), ModelTotal: m.Total(),
			PaperSpeedup: row.Speedup, ModelSpeedup: base.Total() / m.Total(),
		}
	}
	if err := report.Table(w, title+"\n[paper, measured]", paperRows); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := report.Table(w, "[model, this reproduction]", modelRows); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := report.Comparison(w, "[paper vs model]", cmpRows); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// emitTableVI prints the large-dataset comparison at 256 processes.
func emitTableVI(w io.Writer) error {
	h := perfmodel.HECToR()
	var rows []report.TableVIRow
	for _, r := range perfmodel.PaperTableVI() {
		m := h.PredictWorkload(r.Genes, r.Samples, r.Perms, perfmodel.TableVIProcs)
		rows = append(rows, report.TableVIRow{
			Genes: r.Genes, Samples: r.Samples, SizeMB: r.SizeMB, Perms: r.Perms,
			PaperTotal: r.TotalSec, ModelTotal: m.Total(),
			PaperSerial: r.SerialSec, ModelSerial: h.SerialApprox(r.Genes, r.Perms),
		})
	}
	err := report.TableVI(w, "Table VI: pmaxT on 256 HECToR processes vs serial approximation", rows)
	fmt.Fprintln(w)
	return err
}

// emitFigure3 prints the speedup plot twice: once from the paper's
// published speedup columns and once from the model.
func emitFigure3(w io.Writer) error {
	var paperSeries, modelSeries []report.Series
	for _, pl := range perfmodel.All() {
		paper := perfmodel.PaperTable(pl.Name)
		ps := report.Series{Name: pl.Name}
		ms := report.Series{Name: pl.Name}
		for _, row := range paper {
			ps.Procs = append(ps.Procs, row.Procs)
			ps.Values = append(ps.Values, row.Speedup)
			tot, _ := pl.Speedup(row.Procs)
			ms.Procs = append(ms.Procs, row.Procs)
			ms.Values = append(ms.Values, tot)
		}
		paperSeries = append(paperSeries, ps)
		modelSeries = append(modelSeries, ms)
	}
	if err := report.Figure(w, "Figure 3: pmaxT speed-up, total execution times [paper data]", paperSeries, 512); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := report.Figure(w, "Figure 3: pmaxT speed-up, total execution times [model]", modelSeries, 512); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// emitMeasured runs the real Go pmaxT on this machine across goroutine
// counts and prints a genuinely measured profile table: the reproduction's
// counterpart of Table V's desktop column.
func emitMeasured(w io.Writer, genes int, perms int64) error {
	opt := sprint.PaperDataset()
	opt.Genes = genes
	data, err := sprint.GenerateDataset(opt)
	if err != nil {
		return err
	}
	runOpt := sprint.DefaultOptions()
	runOpt.B = perms
	runOpt.Seed = 42

	maxProcs := runtime.NumCPU()
	var rows []report.ProfileRow
	var baseTotal, baseKernel time.Duration
	for p := 1; p <= maxProcs; p *= 2 {
		res, err := sprint.PMaxT(data.X, data.Labels, p, runOpt)
		if err != nil {
			return err
		}
		prof := res.Profile
		if p == 1 {
			baseTotal, baseKernel = prof.Total(), res.KernelMax
		}
		rows = append(rows, report.ProfileRow{
			Procs: p,
			Pre:   prof.PreProcessing.Seconds(), Bcast: prof.BroadcastParams.Seconds(),
			Data: prof.CreateData.Seconds(), Kernel: prof.MainKernel.Seconds(),
			PVal:          prof.ComputePValues.Seconds(),
			Speedup:       float64(baseTotal) / float64(prof.Total()),
			SpeedupKernel: float64(baseKernel) / float64(res.KernelMax),
		})
	}
	title := fmt.Sprintf(
		"Measured on this machine (%d CPUs): %d x %d genes, B = %d — real goroutine-parallel pmaxT",
		maxProcs, genes, data.Cols(), perms)
	err = report.Table(w, title, rows)
	fmt.Fprintln(w)
	return err
}
