package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"sprint/internal/core"
	"sprint/internal/jobs"
	"sprint/internal/microarray"
)

// The -json-recover mode emits the crash-recovery benchmark CI tracks
// as an artifact (BENCH_recover.json): a manager with an interrupted
// workload (one running job plus a queue of pending ones) is shut down
// and a fresh manager reopens the same journal tree.  Each level
// records the journal replay cost — restart to recovery complete,
// restart to the first replayed result, restart to a fully drained
// queue — against the journal's size in jobs and bytes, plus a bitwise
// check of one replayed result against an uninterrupted reference run.

// recoverLevelJSON is one queue-depth level of the sweep.
type recoverLevelJSON struct {
	Jobs             int     `json:"jobs"`
	JournalBytes     int64   `json:"journal_bytes"`
	RecoveryS        float64 `json:"recovery_s"`
	FirstResultS     float64 `json:"first_result_s"`
	AllDoneS         float64 `json:"all_done_s"`
	JobsReplayed     int64   `json:"jobs_replayed"`
	ReplayedPerS     float64 `json:"jobs_replayed_per_s"`
	BitwiseIdentical bool    `json:"bitwise_identical"`
}

type recoverDoc struct {
	GOOS    string             `json:"goos"`
	GOARCH  string             `json:"goarch"`
	CPUs    int                `json:"cpus"`
	Genes   int                `json:"genes"`
	Samples int                `json:"samples"`
	Perms   int64              `json:"perms"`
	Levels  []recoverLevelJSON `json:"levels"`
}

// recoverWait polls until job id is terminal on m, failing after 60s.
func recoverWait(m *jobs.Manager, id string) (jobs.Status, error) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if st, err := m.Get(id); err == nil && st.State.Terminal() {
			return st, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return jobs.Status{}, fmt.Errorf("job %s did not finish within 60s", id)
}

func emitJSONRecover(w io.Writer, genes int, perms int64) error {
	data, err := microarray.Generate(microarray.GenOptions{
		Genes: genes, Samples: 20, Classes: 2,
		DiffFraction: 0.2, EffectSize: 2.0, Seed: 11,
	})
	if err != nil {
		return err
	}
	spec := func(seed uint64) jobs.Spec {
		opt := core.DefaultOptions()
		opt.B = perms
		opt.Seed = seed
		return jobs.Spec{X: data.X, Labels: data.Labels, Opt: opt, NProcs: 1, Every: 1000}
	}

	// Uninterrupted reference for the bitwise check (seed 1, the job
	// every level interrupts mid-flight).
	rm, err := jobs.NewManager(jobs.Config{Workers: 1})
	if err != nil {
		return err
	}
	rst, err := rm.Submit(spec(1))
	if err != nil {
		rm.Close()
		return err
	}
	if _, err := recoverWait(rm, rst.ID); err != nil {
		rm.Close()
		return err
	}
	want, _, err := rm.Result(rst.ID)
	rm.Close()
	if err != nil {
		return err
	}

	doc := recoverDoc{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Genes: genes, Samples: len(data.Labels), Perms: perms,
	}

	for _, n := range []int{1, 4, 8} {
		dir, err := os.MkdirTemp("", "benchrecover")
		if err != nil {
			return err
		}
		cfg := jobs.Config{
			Workers:       1,
			JournalDir:    dir,
			CheckpointDir: filepath.Join(dir, "checkpoints"),
			DatasetDir:    filepath.Join(dir, "datasets"),
		}

		// Phase 1: build the interrupted workload — the first job runs
		// into its permutation loop, the rest stay queued.
		m1, err := jobs.NewManager(cfg)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		ids := make([]string, n)
		for i := 0; i < n; i++ {
			st, err := m1.Submit(spec(uint64(i + 1)))
			if err != nil {
				m1.Close()
				os.RemoveAll(dir)
				return err
			}
			ids[i] = st.ID
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			st, err := m1.Get(ids[0])
			if err != nil {
				m1.Close()
				os.RemoveAll(dir)
				return err
			}
			if st.State == jobs.Running && st.Done > 0 {
				break
			}
			if st.State.Terminal() {
				m1.Close()
				os.RemoveAll(dir)
				return fmt.Errorf("recover sweep: job finished before the interruption; raise -recover-perms")
			}
			if time.Now().After(deadline) {
				m1.Close()
				os.RemoveAll(dir)
				return fmt.Errorf("recover sweep: first job never started")
			}
			time.Sleep(time.Millisecond)
		}
		m1.Close() // shutdown cancel writes no terminal record: all n jobs replay

		var journalBytes int64
		if fi, err := os.Stat(filepath.Join(dir, "journal.log")); err == nil {
			journalBytes = fi.Size()
		}

		// Phase 2: reopen and time the recovery milestones.
		restart := time.Now()
		m2, err := jobs.NewManager(cfg)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		for m2.Recovering() {
			time.Sleep(time.Millisecond)
		}
		recoveryS := time.Since(restart).Seconds()

		first, err := recoverWait(m2, ids[0])
		if err != nil {
			m2.Close()
			os.RemoveAll(dir)
			return err
		}
		firstS := time.Since(restart).Seconds()
		if first.State != jobs.Done {
			m2.Close()
			os.RemoveAll(dir)
			return fmt.Errorf("recover sweep: replayed job %s: %s: %s", ids[0], first.State, first.Error)
		}
		for _, id := range ids[1:] {
			if st, err := recoverWait(m2, id); err != nil || st.State != jobs.Done {
				m2.Close()
				os.RemoveAll(dir)
				return fmt.Errorf("recover sweep: replayed job %s did not finish cleanly (%v)", id, err)
			}
		}
		allS := time.Since(restart).Seconds()

		got, _, err := m2.Result(ids[0])
		if err != nil {
			m2.Close()
			os.RemoveAll(dir)
			return err
		}
		same := len(got.AdjP) == len(want.AdjP)
		for i := 0; same && i < len(got.AdjP); i++ {
			same = math.Float64bits(got.AdjP[i]) == math.Float64bits(want.AdjP[i]) &&
				math.Float64bits(got.RawP[i]) == math.Float64bits(want.RawP[i])
		}
		if !same {
			m2.Close()
			os.RemoveAll(dir)
			return fmt.Errorf("recover sweep: %d-job replayed result is NOT bitwise identical to the uninterrupted run", n)
		}
		replayed := m2.StatsSnapshot().JournalReplayed
		m2.Close()
		os.RemoveAll(dir)

		level := recoverLevelJSON{
			Jobs: n, JournalBytes: journalBytes,
			RecoveryS: recoveryS, FirstResultS: firstS, AllDoneS: allS,
			JobsReplayed: replayed, BitwiseIdentical: same,
		}
		if recoveryS > 0 {
			level.ReplayedPerS = float64(replayed) / recoveryS
		}
		doc.Levels = append(doc.Levels, level)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
