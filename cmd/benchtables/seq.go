package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"sprint"
	"sprint/internal/core"
)

// The -json-seq mode emits the sequential-engine acceptance data CI
// tracks as BENCH_seq.json: for each planned B on the paper's Welch-t
// workload, one exact run and one sequential run of the same plan, with
// wall times, effective-permutation statistics and the worst p-value
// drift between the two.  The headline number is MedianSavingsX — the
// planned B over the median per-row effective count.

// seqRunJSON is one planned-B comparison row.
type seqRunJSON struct {
	B              int64   `json:"b"`
	ExactWallNs    int64   `json:"exact_wall_ns"`
	SeqWallNs      int64   `json:"seq_wall_ns"`
	SeqMergedB     int64   `json:"seq_b"` // permutations the sequential job ran
	RowsStopped    int     `json:"rows_stopped"`
	PermsSaved     int64   `json:"perms_saved"`
	MedianBEff     int64   `json:"median_b_eff"`
	MeanBEff       float64 `json:"mean_b_eff"`
	MedianSavingsX float64 `json:"median_savings_x"` // B / median bEff
	MaxAbsDeltaRaw float64 `json:"max_abs_delta_raw_p"`
	MaxAbsDeltaAdj float64 `json:"max_abs_delta_adj_p"`
}

type seqBenchJSON struct {
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	CPUs      int          `json:"cpus"`
	Genes     int          `json:"genes"`
	Samples   int          `json:"samples"`
	Test      string       `json:"test"`
	Alpha     float64      `json:"target_alpha"`
	Tolerance float64      `json:"p_tolerance"`
	Runs      []seqRunJSON `json:"runs"`
}

// emitJSONSeq runs the exact-versus-sequential sweep and writes one JSON
// document.
func emitJSONSeq(w io.Writer, genes int, perms []int64) error {
	opt := sprint.PaperDataset()
	opt.Genes = genes
	data, err := sprint.GenerateDataset(opt)
	if err != nil {
		return err
	}
	nprocs := runtime.NumCPU()
	out := seqBenchJSON{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Genes: genes, Samples: opt.Samples, Test: "t",
	}

	for _, b := range perms {
		exactOpt := sprint.DefaultOptions()
		exactOpt.B = b
		exactOpt.Seed = 42
		exactOpt.Mode = sprint.ModeExact
		t0 := time.Now()
		exact, err := sprint.Run(data.X, data.Labels, exactOpt, sprint.RunControl{NProcs: nprocs})
		if err != nil {
			return err
		}
		exactWall := time.Since(t0)

		seqOpt := exactOpt
		seqOpt.Mode = sprint.ModeSequential
		t0 = time.Now()
		seq, err := sprint.Run(data.X, data.Labels, seqOpt, sprint.RunControl{NProcs: nprocs})
		if err != nil {
			return err
		}
		seqWall := time.Since(t0)
		// The knobs the engine actually ran under (defaults fill at
		// canonicalisation).
		canon, err := core.CanonicalOptions(seqOpt)
		if err != nil {
			return err
		}
		out.Alpha, out.Tolerance = canon.SeqAlpha, canon.SeqTolerance

		var bEffs []int64
		var sum float64
		var maxRaw, maxAdj float64
		for i := range seq.RawP {
			if math.IsNaN(seq.Stat[i]) {
				continue
			}
			bEffs = append(bEffs, seq.BEff[i])
			sum += float64(seq.BEff[i])
			if d := math.Abs(seq.RawP[i] - exact.RawP[i]); d > maxRaw {
				maxRaw = d
			}
			if d := math.Abs(seq.AdjP[i] - exact.AdjP[i]); d > maxAdj {
				maxAdj = d
			}
		}
		sort.Slice(bEffs, func(a, c int) bool { return bEffs[a] < bEffs[c] })
		median := int64(0)
		if n := len(bEffs); n > 0 {
			median = bEffs[n/2]
		}
		row := seqRunJSON{
			B: b, ExactWallNs: exactWall.Nanoseconds(), SeqWallNs: seqWall.Nanoseconds(),
			SeqMergedB: seq.B, RowsStopped: seq.SeqRowsStopped(), PermsSaved: seq.SeqPermsSaved(),
			MedianBEff: median, MeanBEff: sum / float64(len(bEffs)),
			MaxAbsDeltaRaw: maxRaw, MaxAbsDeltaAdj: maxAdj,
		}
		if median > 0 {
			row.MedianSavingsX = float64(b) / float64(median)
		}
		out.Runs = append(out.Runs, row)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// parseSeqPerms parses the -seq-perms list ("10000,100000,1000000").
func parseSeqPerms(s string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("benchtables: bad -seq-perms entry %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchtables: -seq-perms is empty")
	}
	return out, nil
}
