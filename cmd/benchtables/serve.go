package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sprint/internal/httpapi"
	"sprint/internal/jobs"
	"sprint/internal/matrix"
	"sprint/internal/rng"
)

// The -json-serve mode emits the admission-control benchmark data CI
// tracks as an artifact (BENCH_serve.json): an open-loop saturation sweep
// against a real pmaxtd serving stack (HTTP handlers, middleware, fair
// queue, worker pool) at 1x, 2x and 4x of its measured capacity.  For
// each load level it records how much was admitted versus shed with 429,
// the Retry-After guidance the shed requests carried, and the per-class
// queue-wait tails — the numbers behind the claim that overload degrades
// into load shedding with a bounded interactive p99 rather than into
// collapse.

// serveLevelJSON is one load level of the sweep.
type serveLevelJSON struct {
	Multiplier  float64 `json:"multiplier"`
	OfferedPerS float64 `json:"offered_per_s"`
	Offered     int64   `json:"offered"`
	Accepted    int64   `json:"accepted"`
	Shed        int64   `json:"shed_429"`
	// Per-class admission outcome.
	InteractiveOffered  int64 `json:"interactive_offered"`
	InteractiveAccepted int64 `json:"interactive_accepted"`
	BulkOffered         int64 `json:"bulk_offered"`
	BulkAccepted        int64 `json:"bulk_accepted"`
	// Retry-After guidance observed on 429 responses (0 when none shed).
	RetryAfterMinS int64 `json:"retry_after_min_s"`
	RetryAfterMaxS int64 `json:"retry_after_max_s"`
	// Queue-wait tails per class, after the level fully drained.
	InteractiveWaitP50Ms float64 `json:"interactive_wait_p50_ms"`
	InteractiveWaitP99Ms float64 `json:"interactive_wait_p99_ms"`
	BulkWaitP50Ms        float64 `json:"bulk_wait_p50_ms"`
	BulkWaitP99Ms        float64 `json:"bulk_wait_p99_ms"`
	DrainRatePerS        float64 `json:"drain_rate_per_s"`
	ShedQueueFull        int64   `json:"shed_queue_full"`
}

type serveDoc struct {
	GOOS           string           `json:"goos"`
	GOARCH         string           `json:"goarch"`
	CPUs           int              `json:"cpus"`
	Workers        int              `json:"workers"`
	QueueDepth     int              `json:"queue_depth"`
	Genes          int              `json:"genes"`
	Samples        int              `json:"samples"`
	InteractiveB   int64            `json:"interactive_b"`
	BulkB          int64            `json:"bulk_b"`
	ServiceMeanMs  float64          `json:"service_mean_ms"`
	CapacityPerS   float64          `json:"capacity_jobs_per_s"`
	OfferedSeconds float64          `json:"offered_seconds"`
	Levels         []serveLevelJSON `json:"levels"`
}

// serveConfig fixes the serving stack under test: a small worker pool and
// queue so saturation is reachable in seconds, the fair policy under
// scrutiny, no tenant limits (the sweep measures queue shedding, not
// throttling).
const (
	serveWorkers    = 2
	serveQueueDepth = 32
	serveSamples    = 76
	serveBInt       = 500  // interactive permutation count
	serveBBulk      = 5000 // bulk permutation count
)

// emitJSONServe runs the saturation sweep and writes one JSON document.
func emitJSONServe(w io.Writer, genes int, seconds float64, levels []float64) error {
	doc := serveDoc{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Workers: serveWorkers, QueueDepth: serveQueueDepth,
		Genes: genes, Samples: serveSamples,
		InteractiveB: serveBInt, BulkB: serveBBulk,
		OfferedSeconds: seconds,
	}

	m := matrix.New(genes, serveSamples)
	src := rng.New(20260808)
	for i := range m.Data {
		m.Data[i] = 8 + 2*src.NormFloat64()
	}
	labels := make([]int, serveSamples)
	for j := serveSamples / 2; j < serveSamples; j++ {
		labels[j] = 1
	}

	// ---- calibration: sequential service time on one worker ------------
	mean, err := calibrateService(m, labels)
	if err != nil {
		return err
	}
	doc.ServiceMeanMs = mean.Seconds() * 1e3
	// Workers beyond the CPU count do not add throughput; clamp the
	// estimate so "1x capacity" means what it says on small machines.
	effWorkers := serveWorkers
	if n := runtime.NumCPU(); n < effWorkers {
		effWorkers = n
	}
	capacity := float64(effWorkers) / mean.Seconds()
	if capacity > 2000 {
		capacity = 2000 // keep the open loop generable on fast machines
	}
	doc.CapacityPerS = capacity

	// ---- the sweep: fresh serving stack per load level -----------------
	for _, mult := range levels {
		lvl, err := runServeLevel(m, labels, mult, capacity*mult, seconds)
		if err != nil {
			return err
		}
		doc.Levels = append(doc.Levels, *lvl)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// calibrateService measures the mean end-to-end service time of the
// interactive/bulk job mix on a single sequential worker.
func calibrateService(m matrix.Matrix, labels []int) (time.Duration, error) {
	srv, err := httpapi.New(httpapi.Config{Jobs: jobs.Config{
		Workers: 1, DefaultNProcs: 1, QueueDepth: serveQueueDepth, CacheSize: -1,
	}})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	info, _, err := srv.Manager().PutDataset(m.Clone())
	if err != nil {
		return 0, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const perClass = 4
	seed := uint64(1)
	start := time.Now()
	for i := 0; i < perClass; i++ {
		for _, class := range []string{"interactive", "bulk"} {
			seed++
			code, _, err := serveSubmit(ts.Client(), ts.URL, info.ID, labels, class, seed, true)
			if err != nil {
				return 0, err
			}
			if code != http.StatusAccepted {
				return 0, fmt.Errorf("calibration submit got %d", code)
			}
		}
	}
	return time.Since(start) / (2 * perClass), nil
}

// runServeLevel offers an open-loop Poisson-ish arrival stream (fixed
// interarrival) at rate jobs/s for the configured duration against a
// fresh serving stack, waits for the backlog to drain, and reports the
// admission outcome.
func runServeLevel(m matrix.Matrix, labels []int, mult, rate, seconds float64) (*serveLevelJSON, error) {
	srv, err := httpapi.New(httpapi.Config{Jobs: jobs.Config{
		Workers: serveWorkers, DefaultNProcs: 1, QueueDepth: serveQueueDepth,
		CacheSize: -1, QueuePolicy: "fair",
	}})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	info, _, err := srv.Manager().PutDataset(m.Clone())
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Timeout = 30 * time.Second

	lvl := &serveLevelJSON{Multiplier: mult, OfferedPerS: rate}
	var mu sync.Mutex // guards the Retry-After min/max
	var seed atomic.Uint64
	var wg sync.WaitGroup

	// Open loop on an absolute schedule: arrival n is due at start +
	// n/rate regardless of how long earlier arrivals took to launch, so
	// sleep overshoot shows up as a burst, not as a lower offered rate.
	start := time.Now()
	deadline := start.Add(time.Duration(seconds * float64(time.Second)))
	for n := int64(0); ; n++ {
		due := start.Add(time.Duration(float64(n) / rate * float64(time.Second)))
		if due.After(deadline) {
			break
		}
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		class := "interactive"
		if n%2 == 1 {
			class = "bulk"
		}
		atomic.AddInt64(&lvl.Offered, 1)
		if class == "interactive" {
			atomic.AddInt64(&lvl.InteractiveOffered, 1)
		} else {
			atomic.AddInt64(&lvl.BulkOffered, 1)
		}
		wg.Add(1)
		go func(class string) {
			defer wg.Done()
			code, retryAfter, err := serveSubmit(client, ts.URL, info.ID, labels, class, seed.Add(1), false)
			if err != nil {
				return // connection-level noise: count nothing
			}
			switch code {
			case http.StatusAccepted:
				atomic.AddInt64(&lvl.Accepted, 1)
				if class == "interactive" {
					atomic.AddInt64(&lvl.InteractiveAccepted, 1)
				} else {
					atomic.AddInt64(&lvl.BulkAccepted, 1)
				}
			case http.StatusTooManyRequests:
				atomic.AddInt64(&lvl.Shed, 1)
				mu.Lock()
				if lvl.RetryAfterMinS == 0 || retryAfter < lvl.RetryAfterMinS {
					lvl.RetryAfterMinS = retryAfter
				}
				if retryAfter > lvl.RetryAfterMaxS {
					lvl.RetryAfterMaxS = retryAfter
				}
				mu.Unlock()
			}
		}(class)
	}
	wg.Wait()

	// Drain: every admitted job must finish before the tails are read.
	drainDeadline := time.Now().Add(60 * time.Second)
	for {
		st := srv.Manager().StatsSnapshot()
		if st.Queued == 0 && st.Running == 0 {
			break
		}
		if time.Now().After(drainDeadline) {
			return nil, fmt.Errorf("level %gx did not drain", mult)
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := srv.Manager().StatsSnapshot()
	lvl.InteractiveWaitP50Ms = st.QueueWaitInteractive.P50Ms
	lvl.InteractiveWaitP99Ms = st.QueueWaitInteractive.P99Ms
	lvl.BulkWaitP50Ms = st.QueueWaitBulk.P50Ms
	lvl.BulkWaitP99Ms = st.QueueWaitBulk.P99Ms
	lvl.DrainRatePerS = st.DrainRatePerSec
	lvl.ShedQueueFull = st.ShedQueueFull
	return lvl, nil
}

// serveSubmit posts one dataset-id job of the given class and, when wait
// is set, polls it to completion.  Returns the HTTP status code and the
// Retry-After seconds when the submission was shed.
func serveSubmit(client *http.Client, base, datasetID string, labels []int, class string, seed uint64, wait bool) (int, int64, error) {
	b := int64(serveBInt)
	if class == "bulk" {
		b = serveBBulk
	}
	body, err := json.Marshal(map[string]any{
		"dataset": map[string]any{"dataset_id": datasetID, "labels": labels},
		"options": map[string]any{"b": b, "seed": seed},
		"class":   class,
	})
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var retryAfter int64
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		retryAfter, _ = strconv.ParseInt(ra, 10, 64)
	}
	if resp.StatusCode != http.StatusAccepted || !wait {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, retryAfter, nil
	}
	var st httpapi.StatusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return resp.StatusCode, retryAfter, err
	}
	for {
		r, err := client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return resp.StatusCode, retryAfter, err
		}
		var cur httpapi.StatusJSON
		err = json.NewDecoder(r.Body).Decode(&cur)
		r.Body.Close()
		if err != nil {
			return resp.StatusCode, retryAfter, err
		}
		switch cur.State {
		case "done":
			return resp.StatusCode, retryAfter, nil
		case "failed", "cancelled":
			return resp.StatusCode, retryAfter, fmt.Errorf("job %s finished %s: %s", st.ID, cur.State, cur.Error)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// parseServeLevels parses the -serve-levels list ("1,2,4") into capacity
// multipliers.
func parseServeLevels(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -serve-levels entry %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-serve-levels is empty")
	}
	return out, nil
}
