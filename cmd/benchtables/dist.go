package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"runtime"
	"time"

	"sprint/internal/cluster"
	"sprint/internal/core"
	"sprint/internal/httpapi"
	"sprint/internal/jobs"
	"sprint/internal/matrix"
	"sprint/internal/microarray"
)

// The -json-dist mode emits the distributed-scaling benchmark CI tracks
// as an artifact (BENCH_dist.json): one paper-shaped analysis run
// standalone, then through a coordinator fanning shards to 1, 2 and 4
// in-process worker daemons over real HTTP — the full cluster path
// (shard RPCs, content-addressed dataset resolution, merge ledger).
// Every level's result is compared bitwise against the standalone run;
// the emitted speedups are honest wall-clock ratios ON THIS HOST, so on
// a single-core container the levels mostly measure protocol overhead,
// while a multi-core runner shows real scaling (each worker pins one
// rank).  EXPERIMENTS.md records both readings.

// distLevelJSON is one worker-count level of the sweep.
type distLevelJSON struct {
	Workers          int     `json:"workers"`
	ElapsedS         float64 `json:"elapsed_s"`
	Speedup          float64 `json:"speedup_vs_standalone"`
	BitwiseIdentical bool    `json:"bitwise_identical"`
	ShardsDispatched int64   `json:"shards_dispatched"`
	ShardRetries     int64   `json:"shard_retries"`
	DatasetPushes    int64   `json:"dataset_pushes"`
	LocalShards      int64   `json:"local_shards"`
}

type distDoc struct {
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	CPUs        int             `json:"cpus"`
	Genes       int             `json:"genes"`
	Samples     int             `json:"samples"`
	Perms       int64           `json:"perms"`
	StandaloneS float64         `json:"standalone_s"`
	Levels      []distLevelJSON `json:"levels"`
}

// distWorker is one in-process worker daemon: the -role worker wiring
// behind a real HTTP listener.
type distWorker struct {
	srv *httpapi.Server
	ts  *httptest.Server
}

func (d *distWorker) close() {
	d.ts.Close()
	d.srv.Close()
}

func newDistWorker(x matrix.Matrix) (*distWorker, error) {
	srv, err := httpapi.New(httpapi.Config{Jobs: jobs.Config{Workers: 1}})
	if err != nil {
		return nil, err
	}
	w := cluster.NewWorker(cluster.WorkerConfig{Source: srv.Manager(), NProcs: 1, Every: 5000})
	srv.AttachCluster(w)
	if _, _, err := srv.Manager().PutDataset(x); err != nil {
		srv.Close()
		return nil, err
	}
	return &distWorker{srv: srv, ts: httptest.NewServer(srv.Handler())}, nil
}

// distRun submits the analysis by dataset id and waits for the result.
func distRun(m *jobs.Manager, id string, labels []int, opt core.Options) (*core.Result, time.Duration, error) {
	start := time.Now()
	st, err := m.Submit(jobs.Spec{DatasetID: id, Labels: labels, Opt: opt, NProcs: 1, Every: 5000})
	if err != nil {
		return nil, 0, err
	}
	for {
		got, err := m.Get(st.ID)
		if err != nil {
			return nil, 0, err
		}
		if got.State.Terminal() {
			if got.State != jobs.Done {
				return nil, 0, fmt.Errorf("job %s: %s: %s", st.ID, got.State, got.Error)
			}
			res, _, err := m.Result(st.ID)
			return res, time.Since(start), err
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// bitwiseSame compares everything the engine reports per gene.
func bitwiseSame(a, b *core.Result) bool {
	if a.B != b.B || a.Complete != b.Complete ||
		len(a.Stat) != len(b.Stat) || len(a.RawP) != len(b.RawP) || len(a.AdjP) != len(b.AdjP) {
		return false
	}
	for i := range a.Stat {
		if math.Float64bits(a.Stat[i]) != math.Float64bits(b.Stat[i]) ||
			math.Float64bits(a.RawP[i]) != math.Float64bits(b.RawP[i]) ||
			math.Float64bits(a.AdjP[i]) != math.Float64bits(b.AdjP[i]) ||
			a.Order[i] != b.Order[i] {
			return false
		}
	}
	return true
}

func emitJSONDist(w io.Writer, genes int, perms int64) error {
	gen := microarray.PaperDataset()
	gen.Genes = genes
	data, err := microarray.Generate(gen)
	if err != nil {
		return err
	}
	x, err := data.Matrix()
	if err != nil {
		return err
	}
	opt := core.DefaultOptions()
	opt.B = perms
	opt.Seed = 42
	opt.FixedSeedSampling = "y"

	// Standalone baseline: one manager, one rank, no distributor.
	sm, err := jobs.NewManager(jobs.Config{Workers: 1})
	if err != nil {
		return err
	}
	info, _, err := sm.PutDataset(x)
	if err != nil {
		sm.Close()
		return err
	}
	want, baseline, err := distRun(sm, info.ID, data.Labels, opt)
	sm.Close()
	if err != nil {
		return err
	}

	doc := distDoc{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Genes: genes, Samples: data.Cols(), Perms: int64(want.B),
		StandaloneS: baseline.Seconds(),
	}

	for _, n := range []int{1, 2, 4} {
		var workers []*distWorker
		var addrs []string
		for i := 0; i < n; i++ {
			dw, err := newDistWorker(x)
			if err != nil {
				return err
			}
			workers = append(workers, dw)
			addrs = append(addrs, dw.ts.URL)
		}
		coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Workers:      addrs,
			WorkerNProcs: 1,
		})
		cm, err := jobs.NewManager(jobs.Config{Workers: 1, Distributor: coord})
		if err != nil {
			return err
		}
		if _, _, err := cm.PutDataset(x); err != nil {
			cm.Close()
			return err
		}
		got, elapsed, err := distRun(cm, info.ID, data.Labels, opt)
		cm.Close()
		for _, dw := range workers {
			dw.close()
		}
		if err != nil {
			return err
		}
		same := bitwiseSame(got, want)
		if !same {
			return fmt.Errorf("dist sweep: %d-worker result is NOT bitwise identical to standalone", n)
		}
		ci := coord.Info().Coordinator
		doc.Levels = append(doc.Levels, distLevelJSON{
			Workers:          n,
			ElapsedS:         elapsed.Seconds(),
			Speedup:          baseline.Seconds() / elapsed.Seconds(),
			BitwiseIdentical: same,
			ShardsDispatched: ci.ShardsDispatched,
			ShardRetries:     ci.ShardRetries,
			DatasetPushes:    ci.DatasetPushes,
			LocalShards:      ci.LocalShards,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
