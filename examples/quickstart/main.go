// Quickstart: the smallest complete pmaxT analysis.
//
// Generates a synthetic two-class microarray dataset, runs the parallel
// permutation testing function on all CPUs, and prints the most significant
// genes with their Westfall–Young adjusted p-values.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"sprint"
	"sprint/internal/report"
)

func main() {
	// A 1000-gene, 40-sample experiment: 20 control vs 20 treated
	// samples, with 2% of genes truly differential.
	data, err := sprint.GenerateDataset(sprint.DatasetOptions{
		Genes: 1000, Samples: 40, Classes: 2,
		DiffFraction: 0.02, EffectSize: 2.0, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same call shape as R's pmaxT(X, classlabel, B=10000).
	opt := sprint.DefaultOptions()
	opt.B = 10000
	opt.Seed = 1

	nprocs := runtime.NumCPU()
	res, err := sprint.PMaxT(data.X, data.Labels, nprocs, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pmaxT: %d genes x %d samples, %d permutations on %d processes\n",
		data.Rows(), data.Cols(), res.B, res.NProcs)
	fmt.Printf("main kernel: %.3fs of %.3fs total\n\n",
		res.Profile.MainKernel.Seconds(), res.Profile.Total().Seconds())

	// The generator suffixes truly differential genes with ".DE", so the
	// top of this table should be all-.DE with small adjusted p-values.
	if err := report.PValueTable(os.Stdout, data.GeneNames,
		res.Stat, res.RawP, res.AdjP, res.Order, 15); err != nil {
		log.Fatal(err)
	}

	// Count discoveries at the 5% family-wise error level.
	hits := 0
	for _, p := range res.AdjP {
		if p <= 0.05 {
			hits++
		}
	}
	fmt.Printf("\ngenes significant at FWER 0.05: %d (dataset contains 20 true positives)\n", hits)
}
