// Checkpoint/restart: the paper's future-work item 1, demonstrated.
//
// "Better support for fault tolerance and checkpointing ... may be of
// increasing importance as life scientists wish to perform even more tests
// on ever larger datasets" (Section 6).  Long permutation runs lose
// everything on a node failure; the checkpointed runner snapshots the
// exceedance counts periodically so a crashed analysis resumes where it
// stopped — with a final result bit-identical to an uninterrupted run.
//
// This example simulates the failure: it starts an analysis, kills it
// after 40% of the permutations, persists the checkpoint to disk, resumes
// from the file, and verifies the resumed result against a reference run.
//
// Run with:
//
//	go run ./examples/checkpoint
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sprint"
)

func main() {
	data, err := sprint.GenerateDataset(sprint.DatasetOptions{
		Genes: 500, Samples: 24, Classes: 2,
		DiffFraction: 0.04, EffectSize: 2.5, Seed: 33,
	})
	if err != nil {
		log.Fatal(err)
	}
	opt := sprint.DefaultOptions()
	opt.B = 50000
	opt.Seed = 8

	ckptPath := filepath.Join(os.TempDir(), "pmaxt.ckpt")
	defer os.Remove(ckptPath)

	// Phase 1: run until the simulated crash at 40% progress, saving a
	// checkpoint every 5000 permutations.
	crash := errors.New("simulated node failure")
	_, err = sprint.MaxTCheckpointed(data.X, data.Labels, opt, nil, 5000,
		func(c *sprint.Checkpoint) error {
			if err := saveCheckpoint(ckptPath, c); err != nil {
				return err
			}
			fmt.Printf("checkpoint: %d/%d permutations done\n", c.Done, c.TotalB)
			if c.Next >= opt.B*2/5 {
				return crash
			}
			return nil
		})
	if !errors.Is(err, crash) {
		log.Fatalf("expected the simulated crash, got: %v", err)
	}
	fmt.Println("\n*** node failure! restarting from the last checkpoint ***")

	// Phase 2: load the checkpoint and finish the run.
	resume, err := loadCheckpoint(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resuming at permutation %d\n\n", resume.Next)
	resumed, err := sprint.MaxTCheckpointed(data.X, data.Labels, opt, resume, 5000,
		func(c *sprint.Checkpoint) error { return saveCheckpoint(ckptPath, c) })
	if err != nil {
		log.Fatal(err)
	}

	// Verify: the resumed run must equal an uninterrupted one exactly.
	reference, err := sprint.MaxT(data.X, data.Labels, opt)
	if err != nil {
		log.Fatal(err)
	}
	for i := range reference.RawP {
		if reference.RawP[i] != resumed.RawP[i] || reference.AdjP[i] != resumed.AdjP[i] {
			log.Fatalf("gene %d: resumed run differs from reference", i)
		}
	}
	fmt.Printf("resumed run is bit-identical to an uninterrupted run (%d genes, B = %d)\n",
		len(reference.RawP), reference.B)
	top := resumed.Order[0]
	fmt.Printf("top gene: %s (adjusted p = %.5f)\n", data.GeneNames[top], resumed.AdjP[top])
}

func saveCheckpoint(path string, c *sprint.Checkpoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Encode(f)
}

func loadCheckpoint(path string) (*sprint.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sprint.DecodeCheckpoint(f)
}
