// The server example runs the pmaxtd job service in-process and drives it
// as an HTTP client would: generate a dataset, submit it, poll the status
// until done, fetch the adjusted p-values, then submit the identical job
// again and observe the content-addressed cache answering instantly.
//
//	go run ./examples/server
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"sprint"
)

func main() {
	srv, err := sprint.NewServer(sprint.ServerConfig{
		Jobs: sprint.JobsConfig{Workers: 1, DefaultEvery: 200},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("pmaxtd serving at", ts.URL)

	data, err := sprint.GenerateDataset(sprint.DatasetOptions{
		Genes: 500, Samples: 24, Classes: 2,
		DiffFraction: 0.05, EffectSize: 2, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	body, _ := json.Marshal(map[string]any{
		"dataset": map[string]any{"x": data.X, "labels": data.Labels},
		"options": map[string]any{"b": 2000, "seed": 7},
		"nprocs":  4,
	})

	submit := func() map[string]any {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var st map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			log.Fatal(err)
		}
		return st
	}

	st := submit()
	id := st["id"].(string)
	fmt.Printf("submitted %s (state %s)\n", id, st["state"])

	for st["state"] == "queued" || st["state"] == "running" {
		time.Sleep(50 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			log.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		fmt.Printf("  %s: %.0f/%.0f permutations\n", st["state"], st["done"], st["total"])
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		log.Fatal(err)
	}
	var res struct {
		AdjP  []*float64 `json:"adj_p"`
		Order []int      `json:"order"`
		B     int64      `json:"b"`
	}
	json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	fmt.Printf("done: B=%d; top genes by adjusted p-value:\n", res.B)
	for i := 0; i < 5 && i < len(res.Order); i++ {
		g := res.Order[i]
		fmt.Printf("  %-10s adj_p=%.4g\n", data.GeneNames[g], *res.AdjP[g])
	}

	st2 := submit()
	fmt.Printf("resubmitted: %s is immediately %s (cache_hit=%v)\n",
		st2["id"], st2["state"], st2["cache_hit"] == true)
}
