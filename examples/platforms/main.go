// Platform advisor: the paper's core question, as a tool.
//
// "The speed-up in results across the benchmark systems offers a route for
// life scientists to scale up their analyses based on the infrastructure
// available to them" (Section 5).  Given an analysis size, this example
// asks the calibrated platform models: how long would this run take on my
// desktop, the department SMP, a cloud allocation, a university cluster,
// or the national supercomputer — and at what process count does each stop
// helping?
//
// Run with:
//
//	go run ./examples/platforms
package main

import (
	"fmt"

	"sprint/internal/perfmodel"
)

func main() {
	// The analysis a life scientist might actually need: an Affymetrix
	// exon-array sized matrix with a million permutations (Section 5
	// mentions feature counts of 280k-5M; Table VI benchmarks 1M
	// permutations on 36612 and 73224 genes).
	const genes, samples = 36612, 76
	const perms = 1_000_000

	fmt.Printf("workload: %d genes x %d samples, %d permutations\n\n", genes, samples, perms)
	fmt.Printf("%-20s %8s %14s %14s %10s\n",
		"platform", "procs", "elapsed", "vs 1 proc", "efficiency")

	for _, pl := range perfmodel.All() {
		t1 := pl.PredictWorkload(genes, samples, perms, 1).Total()
		for _, p := range pl.ProcCounts() {
			prof := pl.PredictWorkload(genes, samples, perms, p)
			total := prof.Total()
			speedup := t1 / total
			eff := speedup / float64(p)
			marker := ""
			if eff < 0.60 && p > 1 {
				marker = "  <- diminishing returns"
			}
			fmt.Printf("%-20s %8d %14s %13.1fx %9.0f%%%s\n",
				pl.Name, p, fmtDuration(total), speedup, eff*100, marker)
		}
		fmt.Println()
	}

	fmt.Println("suggested workflow (Section 5 of the paper):")
	fmt.Println("  refine the analysis at small B on the desktop, validate on the")
	fmt.Println("  department SMP or a small cloud allocation, then run the full")
	fmt.Println("  permutation count on the cluster or national service - the pmaxT")
	fmt.Println("  call and its results are identical everywhere.")
}

func fmtDuration(seconds float64) string {
	switch {
	case seconds >= 3600:
		return fmt.Sprintf("%.1f h", seconds/3600)
	case seconds >= 60:
		return fmt.Sprintf("%.1f min", seconds/60)
	default:
		return fmt.Sprintf("%.1f s", seconds)
	}
}
