// The cluster example runs the distributed pmaxtd topology in-process:
// two worker daemons behind real HTTP listeners, a coordinator that
// partitions the permutation space into rank windows and fans them out
// over the shard API, and a standalone run of the same analysis for
// comparison.  The point of the exercise is the last line: the merged
// N-worker result is bitwise identical to the single-node run.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"math"
	"net/http/httptest"
	"time"

	"sprint/internal/cluster"
	"sprint/internal/core"
	"sprint/internal/httpapi"
	"sprint/internal/jobs"
	"sprint/internal/matrix"
	"sprint/internal/microarray"
)

// workerDaemon is one pmaxtd -role worker, in-process.
type workerDaemon struct {
	srv *httpapi.Server
	ts  *httptest.Server
}

func newWorkerDaemon(x matrix.Matrix) (*workerDaemon, error) {
	srv, err := httpapi.New(httpapi.Config{Jobs: jobs.Config{Workers: 1}})
	if err != nil {
		return nil, err
	}
	w := cluster.NewWorker(cluster.WorkerConfig{
		Source: srv.Manager(), NProcs: 1, Every: 2000,
	})
	srv.AttachCluster(w)
	// Preload the dataset so no push is needed; with an empty registry
	// the coordinator would push the .spb once on the worker's 404.
	if _, _, err := srv.Manager().PutDataset(x); err != nil {
		srv.Close()
		return nil, err
	}
	return &workerDaemon{srv: srv, ts: httptest.NewServer(srv.Handler())}, nil
}

func (d *workerDaemon) close() {
	d.ts.Close()
	d.srv.Close()
}

// run submits one analysis by dataset id and waits for the result.
func run(m *jobs.Manager, id string, labels []int, opt core.Options) (*core.Result, time.Duration, error) {
	start := time.Now()
	st, err := m.Submit(jobs.Spec{DatasetID: id, Labels: labels, Opt: opt, NProcs: 1})
	if err != nil {
		return nil, 0, err
	}
	for {
		got, err := m.Get(st.ID)
		if err != nil {
			return nil, 0, err
		}
		if got.State.Terminal() {
			if got.State != jobs.Done {
				return nil, 0, fmt.Errorf("job %s: %s: %s", st.ID, got.State, got.Error)
			}
			res, _, err := m.Result(st.ID)
			return res, time.Since(start), err
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func bitwiseSame(a, b *core.Result) bool {
	if a.B != b.B || a.Complete != b.Complete || len(a.Stat) != len(b.Stat) {
		return false
	}
	for i := range a.Stat {
		if math.Float64bits(a.Stat[i]) != math.Float64bits(b.Stat[i]) ||
			math.Float64bits(a.RawP[i]) != math.Float64bits(b.RawP[i]) ||
			math.Float64bits(a.AdjP[i]) != math.Float64bits(b.AdjP[i]) ||
			a.Order[i] != b.Order[i] {
			return false
		}
	}
	return true
}

func main() {
	gen := microarray.PaperDataset()
	gen.Genes = 800
	data, err := microarray.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}
	x, err := data.Matrix()
	if err != nil {
		log.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.B = 20000
	opt.Seed = 42
	opt.FixedSeedSampling = "y"

	// Two worker daemons behind real HTTP listeners.
	var addrs []string
	for i := 0; i < 2; i++ {
		w, err := newWorkerDaemon(x)
		if err != nil {
			log.Fatal(err)
		}
		defer w.close()
		addrs = append(addrs, w.ts.URL)
		fmt.Println("worker listening at", w.ts.URL)
	}

	// The coordinator plugs into a job manager as its Distributor: jobs
	// big enough to distribute are sharded, the rest run locally.
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Workers: addrs, WorkerNProcs: 1,
	})
	cm, err := jobs.NewManager(jobs.Config{Workers: 1, Distributor: coord})
	if err != nil {
		log.Fatal(err)
	}
	defer cm.Close()
	info, _, err := cm.PutDataset(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s registered (%d genes x %d samples), B = %d\n",
		info.ID, x.Rows, x.Cols, opt.B)

	dist, dt, err := run(cm, info.ID, data.Labels, opt)
	if err != nil {
		log.Fatal(err)
	}
	ci := coord.Info().Coordinator
	fmt.Printf("distributed: %d shards on %d workers in %v (retries %d, pushes %d)\n",
		ci.ShardsDispatched, len(addrs), dt.Round(time.Millisecond),
		ci.ShardRetries, ci.DatasetPushes)

	// The same analysis on a plain single-node manager.
	sm, err := jobs.NewManager(jobs.Config{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer sm.Close()
	if _, _, err := sm.PutDataset(x); err != nil {
		log.Fatal(err)
	}
	solo, st, err := run(sm, info.ID, data.Labels, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standalone:  1 node in %v\n", st.Round(time.Millisecond))

	fmt.Println("bitwise identical:", bitwiseSame(dist, solo))
}
