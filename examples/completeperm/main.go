// Complete permutations: exact p-values for small designs (B = 0).
//
// For small sample counts the full permutation distribution is enumerable
// and the resulting p-values are exact rather than Monte-Carlo estimates.
// mt.maxT/pmaxT expose this via B = 0; the complete generators always run
// on the fly (Section 3.1: "for complete permutations, the function never
// stores the permutations in memory").
//
// This example exercises two exact designs:
//
//  1. a two-class comparison with 5 vs 5 samples — C(10,5) = 252 distinct
//     labellings;
//  2. a paired design with 10 pairs — 2^10 = 1024 sign flips (the pairt
//     complete generator);
//
// and shows the paper's guard rail: requesting complete permutations on
// the full 76-sample benchmark dataset is refused with a request for an
// explicit B, because C(76,38) overflows any practical limit.
//
// Run with:
//
//	go run ./examples/completeperm
package main

import (
	"fmt"
	"log"
	"os"

	"sprint"
	"sprint/internal/report"
)

func main() {
	twoClassExact()
	pairedExact()
	overflowGuard()
}

func twoClassExact() {
	data, err := sprint.GenerateDataset(sprint.DatasetOptions{
		Genes: 300, Samples: 10, Classes: 2,
		DiffFraction: 0.03, EffectSize: 3.5, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	opt := sprint.DefaultOptions()
	opt.B = 0 // complete enumeration
	res, err := sprint.PMaxT(data.X, data.Labels, 4, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-class 5v5: %d exact permutations (complete: %v)\n", res.B, res.Complete)
	fmt.Printf("smallest attainable raw p = 2/%d = %.5f (observed labelling and its mirror)\n\n",
		res.B, 2.0/float64(res.B))
	if err := report.PValueTable(os.Stdout, data.GeneNames,
		res.Stat, res.RawP, res.AdjP, res.Order, 5); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

func pairedExact() {
	data, err := sprint.GenerateDataset(sprint.DatasetOptions{
		Genes: 300, Samples: 20, Classes: 2, Paired: true,
		DiffFraction: 0.03, EffectSize: 2.5, Seed: 22,
	})
	if err != nil {
		log.Fatal(err)
	}
	opt := sprint.DefaultOptions()
	opt.Test = "pairt"
	opt.B = 0
	res, err := sprint.PMaxT(data.X, data.Labels, 4, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paired 10 pairs: %d exact sign-flip permutations (complete: %v)\n\n", res.B, res.Complete)
	if err := report.PValueTable(os.Stdout, data.GeneNames,
		res.Stat, res.RawP, res.AdjP, res.Order, 5); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

func overflowGuard() {
	data, err := sprint.GenerateDataset(sprint.PaperDataset())
	if err != nil {
		log.Fatal(err)
	}
	opt := sprint.DefaultOptions()
	opt.B = 0 // C(76,38) ~ 9e21: must be refused
	_, err = sprint.MaxT(data.X[:10], data.Labels, opt)
	fmt.Printf("B=0 on the 76-sample benchmark dataset -> %v\n", err)
}
