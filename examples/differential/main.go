// Differential expression study: why the paper's users want many
// permutations, and what the maxT adjustment buys them.
//
// The experiment runs the same analysis three times with increasing
// permutation counts and compares raw versus Westfall–Young adjusted
// p-values.  Two effects should be visible, both central to the paper's
// motivation:
//
//  1. Resolution: with B permutations no p-value can be below 1/B, so
//     small permutation counts cannot certify strong discoveries at all —
//     "these users wish to execute more permutations to better validate
//     their experimental results" (Section 3.2).
//  2. Error control: raw p-values produce false positives among thousands
//     of null genes, while the step-down maxT adjustment controls the
//     family-wise error rate.
//
// Run with:
//
//	go run ./examples/differential
package main

import (
	"fmt"
	"log"
	"runtime"

	"sprint"
)

func main() {
	const genes, trueDE = 3000, 15
	data, err := sprint.GenerateDataset(sprint.DatasetOptions{
		Genes: genes, Samples: 30, Classes: 2,
		DiffFraction: float64(trueDE) / genes, EffectSize: 2.2, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset: %d genes (%d truly differential), %d samples\n\n",
		genes, trueDE, data.Cols())
	fmt.Printf("%10s %12s %16s %16s %16s %14s\n",
		"B", "min adj p", "raw hits @0.05", "raw false pos", "adj hits @0.05", "adj false pos")

	for _, b := range []int64{100, 1000, 20000} {
		opt := sprint.DefaultOptions()
		opt.B = b
		opt.Seed = 4
		res, err := sprint.PMaxT(data.X, data.Labels, runtime.NumCPU(), opt)
		if err != nil {
			log.Fatal(err)
		}
		var rawHits, rawFP, adjHits, adjFP int
		minAdj := 1.0
		for i := range res.AdjP {
			if res.AdjP[i] < minAdj {
				minAdj = res.AdjP[i]
			}
			if res.RawP[i] <= 0.05 {
				rawHits++
				if !data.Differential[i] {
					rawFP++
				}
			}
			if res.AdjP[i] <= 0.05 {
				adjHits++
				if !data.Differential[i] {
					adjFP++
				}
			}
		}
		fmt.Printf("%10d %12.5f %16d %16d %16d %14d\n",
			res.B, minAdj, rawHits, rawFP, adjHits, adjFP)
	}

	fmt.Println(`
reading the table:
  - raw p-values at 0.05 admit ~5% of the ~3000 null genes as false
    positives regardless of B;
  - adjusted p-values keep false positives at zero (FWER control), and
    higher B lowers the attainable minimum so true effects separate from
    the 1/B floor — the reason pmaxT exists.`)
}
