module sprint

go 1.22
