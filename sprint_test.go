package sprint_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"sprint"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	data, err := sprint.GenerateDataset(sprint.DatasetOptions{
		Genes: 200, Samples: 20, Classes: 2,
		DiffFraction: 0.05, EffectSize: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := sprint.DefaultOptions()
	opt.B = 1000
	opt.Seed = 5

	serial, err := sprint.MaxT(data.X, data.Labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sprint.PMaxT(data.X, data.Labels, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.RawP {
		if serial.RawP[i] != parallel.RawP[i] || serial.AdjP[i] != parallel.AdjP[i] {
			t.Fatalf("row %d: serial and parallel p-values differ", i)
		}
	}
	// The ten spiked genes carry ".DE" names and must dominate the order.
	for i := 0; i < 10; i++ {
		r := parallel.Order[i]
		if !data.Differential[r] {
			t.Errorf("order[%d] = row %d, which is not differential", i, r)
		}
	}
}

func TestPublicAPIDatasetRoundTrip(t *testing.T) {
	data, err := sprint.GenerateDataset(sprint.DatasetOptions{Genes: 20, Samples: 8, Classes: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := sprint.ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != 20 || back.Cols() != 8 {
		t.Fatalf("round trip dims %dx%d", back.Rows(), back.Cols())
	}
}

func TestPaperDatasetDimensions(t *testing.T) {
	opt := sprint.PaperDataset()
	if opt.Genes != 6102 || opt.Samples != 76 {
		t.Errorf("paper dataset %dx%d, want 6102x76", opt.Genes, opt.Samples)
	}
}

func TestDefaultNAExported(t *testing.T) {
	if sprint.DefaultNA != -93074815.62 {
		t.Errorf("DefaultNA = %v", sprint.DefaultNA)
	}
}

func ExampleMaxT() {
	// Two genes over six samples, three per class; the first gene is
	// strongly differential.
	x := [][]float64{
		{9.1, 8.7, 9.3, 1.2, 1.0, 1.4},
		{5.1, 4.9, 5.0, 5.2, 4.8, 5.1},
	}
	labels := []int{0, 0, 0, 1, 1, 1}
	opt := sprint.DefaultOptions()
	opt.B = 0 // complete enumeration: C(6,3) = 20 permutations
	res, err := sprint.MaxT(x, labels, opt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("permutations: %d (complete: %v)\n", res.B, res.Complete)
	fmt.Printf("most significant row: %d\n", res.Order[0])
	fmt.Printf("raw p of row 0: %.2f\n", res.RawP[0])
	// The raw p of 0.10 is exact: of the 20 distinct labellings, only the
	// observed one and its mirror reach the observed |t|.

	// Output:
	// permutations: 20 (complete: true)
	// most significant row: 0
	// raw p of row 0: 0.10
}

func TestPcorPublicAPI(t *testing.T) {
	x := [][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8},
		{4, 3, 2, 1},
	}
	m, err := sprint.Pcor(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0][1]-1) > 1e-12 || math.Abs(m[0][2]+1) > 1e-12 {
		t.Errorf("correlations = %v", m)
	}
}

func TestProfileExposed(t *testing.T) {
	x := [][]float64{
		{9.1, 8.7, 9.3, 1.2, 1.0, 1.4},
		{5.1, 4.9, 5.0, 5.2, 4.8, 5.1},
	}
	res, err := sprint.PMaxT(x, []int{0, 0, 0, 1, 1, 1}, 2, sprint.Options{B: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.Total() <= 0 {
		t.Error("profile not populated")
	}
	if res.NProcs != 2 {
		t.Errorf("NProcs = %d", res.NProcs)
	}
	if math.IsNaN(res.Stat[0]) {
		t.Error("statistic missing")
	}
}
