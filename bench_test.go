// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index).
//
// Each platform benchmark runs the *real* Go pmaxT at every process count
// the paper's table reports, on a workload scaled down from 6102×76×150000
// by a fixed factor so a full sweep finishes in seconds.  Alongside the
// measured wall time, each sub-benchmark reports:
//
//	paper_total_s  the paper's measured total for that platform/procs
//	model_total_s  the calibrated analytic model's total (full workload)
//	speedup        the measured speedup of this run versus 1 process
//
// Absolute times differ from the paper (different hardware, scaled
// workload); the claim under test is the *shape* of the speedup series and
// the faithfulness of the model that regenerates the published cells.
// Run with:
//
//	go test -bench=. -benchmem
package sprint_test

import (
	"fmt"
	"sync"
	"testing"

	"sprint"
	"sprint/internal/perfmodel"
)

// Scaled reference workload: 1/32 of the genes, 1/100 of the permutations.
const (
	benchGenes = perfmodel.RefGenes / 32  // 190
	benchPerms = perfmodel.RefPerms / 100 // 1500
)

var benchData = sync.OnceValue(func() *sprint.Dataset {
	opt := sprint.PaperDataset()
	opt.Genes = benchGenes
	d, err := sprint.GenerateDataset(opt)
	if err != nil {
		panic(err)
	}
	return d
})

// baselineSerial measures the 1-process total once per benchmark binary,
// for the speedup metric.
var baselineSerial = sync.OnceValue(func() float64 {
	d := benchData()
	opt := sprint.DefaultOptions()
	opt.B = benchPerms
	opt.Seed = 42
	res, err := sprint.PMaxT(d.X, d.Labels, 1, opt)
	if err != nil {
		panic(err)
	}
	return res.Profile.Total().Seconds()
})

// benchPlatformTable is the shared body of the Table I–V benchmarks.
func benchPlatformTable(b *testing.B, pl perfmodel.Platform) {
	d := benchData()
	for _, row := range perfmodel.PaperTable(pl.Name) {
		row := row
		b.Run(fmt.Sprintf("procs=%d", row.Procs), func(b *testing.B) {
			opt := sprint.DefaultOptions()
			opt.B = benchPerms
			opt.Seed = 42
			var total float64
			for i := 0; i < b.N; i++ {
				res, err := sprint.PMaxT(d.X, d.Labels, row.Procs, opt)
				if err != nil {
					b.Fatal(err)
				}
				total = res.Profile.Total().Seconds()
			}
			b.ReportMetric(row.Profile().Total(), "paper_total_s")
			b.ReportMetric(pl.Predict(row.Procs).Total(), "model_total_s")
			if total > 0 {
				b.ReportMetric(baselineSerial()/total, "speedup")
			}
		})
	}
}

// BenchmarkTableI_HECToR regenerates Table I (Cray XT4, p = 1..512).
func BenchmarkTableI_HECToR(b *testing.B) { benchPlatformTable(b, perfmodel.HECToR()) }

// BenchmarkTableII_ECDF regenerates Table II (ECDF cluster, p = 1..128).
func BenchmarkTableII_ECDF(b *testing.B) { benchPlatformTable(b, perfmodel.ECDF()) }

// BenchmarkTableIII_EC2 regenerates Table III (Amazon EC2, p = 1..32).
func BenchmarkTableIII_EC2(b *testing.B) { benchPlatformTable(b, perfmodel.EC2()) }

// BenchmarkTableIV_Ness regenerates Table IV (Ness SMP, p = 1..16).
func BenchmarkTableIV_Ness(b *testing.B) { benchPlatformTable(b, perfmodel.Ness()) }

// BenchmarkTableV_QuadCore regenerates Table V (quad-core desktop,
// p = 1..4) — the one platform class we genuinely have.
func BenchmarkTableV_QuadCore(b *testing.B) { benchPlatformTable(b, perfmodel.QuadCore()) }

// BenchmarkFigure3_Speedup regenerates the Figure 3 speedup series: for
// every platform it reports the paper's total speedup at the platform's
// maximum process count, the model's, and the measured speedup of the real
// implementation at that count.
func BenchmarkFigure3_Speedup(b *testing.B) {
	d := benchData()
	for _, pl := range perfmodel.All() {
		pl := pl
		b.Run(pl.Name, func(b *testing.B) {
			rows := perfmodel.PaperTable(pl.Name)
			last := rows[len(rows)-1]
			opt := sprint.DefaultOptions()
			opt.B = benchPerms
			opt.Seed = 42
			var total float64
			for i := 0; i < b.N; i++ {
				res, err := sprint.PMaxT(d.X, d.Labels, last.Procs, opt)
				if err != nil {
					b.Fatal(err)
				}
				total = res.Profile.Total().Seconds()
			}
			modelTot, _ := pl.Speedup(last.Procs)
			b.ReportMetric(last.Speedup, "paper_speedup")
			b.ReportMetric(modelTot, "model_speedup")
			if total > 0 {
				b.ReportMetric(baselineSerial()/total, "measured_speedup")
			}
		})
	}
}

// BenchmarkTableVI_LargeDatasets regenerates Table VI: high permutation
// counts on exon-array sized matrices at 256 processes.  The real run
// scales the workload by 1/400 (rows and permutations together) so each
// row completes in well under a second; paper and model totals are
// reported unscaled.
func BenchmarkTableVI_LargeDatasets(b *testing.B) {
	h := perfmodel.HECToR()
	genData := sync.OnceValues(func() (*sprint.Dataset, error) {
		opt := sprint.PaperDataset()
		opt.Genes = 73224 / 20 // 3661 rows covers both scaled datasets
		return sprint.GenerateDataset(opt)
	})
	for _, row := range perfmodel.PaperTableVI() {
		row := row
		name := fmt.Sprintf("genes=%d/perms=%d", row.Genes, row.Perms)
		b.Run(name, func(b *testing.B) {
			d, err := genData()
			if err != nil {
				b.Fatal(err)
			}
			rows := d.X[:row.Genes/20]
			opt := sprint.DefaultOptions()
			opt.B = row.Perms / 2000
			opt.Seed = 42
			for i := 0; i < b.N; i++ {
				if _, err := sprint.PMaxT(rows, d.Labels, perfmodel.TableVIProcs, opt); err != nil {
					b.Fatal(err)
				}
			}
			m := h.PredictWorkload(row.Genes, row.Samples, row.Perms, perfmodel.TableVIProcs)
			b.ReportMetric(row.TotalSec, "paper_total_s")
			b.ReportMetric(m.Total(), "model_total_s")
			b.ReportMetric(row.SerialSec, "paper_serial_s")
			b.ReportMetric(h.SerialApprox(row.Genes, row.Perms), "model_serial_s")
		})
	}
}

// BenchmarkFigure2_SkipRule measures the cost of the generator forwarding
// that Figure 2's distribution relies on: jumping straight to a late chunk
// must not cost more than starting at the beginning (O(1) for the
// on-the-fly generator).
func BenchmarkFigure2_SkipRule(b *testing.B) {
	d := benchData()
	opt := sprint.DefaultOptions()
	opt.B = benchPerms
	opt.Seed = 42
	for _, procs := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sprint.PMaxT(d.X, d.Labels, procs, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
