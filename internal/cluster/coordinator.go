package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sprint/internal/core"
	"sprint/internal/jobs"
	"sprint/internal/matrix"
	"sprint/internal/maxt"
	"sprint/internal/metrics"
)

// CoordinatorConfig configures the cluster coordinator.
type CoordinatorConfig struct {
	// Workers lists static worker base URLs ("http://host:port");
	// further workers may join dynamically via the membership API.
	Workers []string
	// Client performs shard RPCs and dataset pushes; nil uses
	// http.DefaultClient.
	Client *http.Client
	// ShardsPerWorker is how many shards the range is split into per
	// live worker — more than 1 keeps a fast worker busy while a slow
	// one finishes, at slightly more merge traffic.  Defaults to 2.
	ShardsPerWorker int
	// MinDistB declines jobs whose planned B is under this bound
	// (ErrNotDistributed → the manager runs them locally); tiny jobs
	// are not worth a round trip.  Defaults to 0: distribute whenever a
	// worker is live.
	MinDistB int64
	// MaxAttempts bounds remote dispatch attempts per shard; beyond it
	// the shard is computed on the coordinator itself.  Defaults to 3.
	MaxAttempts int
	// StragglerAfter speculatively re-dispatches a shard in flight
	// longer than this once the queue is otherwise empty; the first
	// complete delivery wins (the merge ledger discards the loser).
	// Defaults to 5s; 0 keeps the default, negative disables.
	StragglerAfter time.Duration
	// HeartbeatTTL expires joined workers that stop heartbeating.
	// Defaults to 10s.
	HeartbeatTTL time.Duration
	// DownFor is how long a worker that failed a dispatch is skipped
	// before being tried again.  Defaults to 3s.
	DownFor time.Duration
	// DispatchTimeout bounds one shard RPC end to end, so a worker that
	// accepts a connection and then hangs (half-open TCP, wedged kernel)
	// surfaces as a retryable error instead of stalling the job forever.
	// It must comfortably exceed the slowest expected shard compute.
	// Defaults to 15m; negative disables.
	DispatchTimeout time.Duration
	// PushTimeout bounds one dataset push.  Defaults to 2m; negative
	// disables.
	PushTimeout time.Duration
	// WorkerNProcs is the rank count shard requests ask workers for
	// (0 = each worker's own default).
	WorkerNProcs int
	// LeaseDuration is the compute lease granted with each shard
	// dispatch and renewed by the coordinator's lease heartbeat: a
	// worker keeps computing an orphaned shard this long after its
	// coordinator vanishes (long enough to park useful work for a
	// restart, short enough not to burn CPU forever).  Defaults to 15s;
	// negative disables leases (shards die with their request).
	LeaseDuration time.Duration
	// Metrics receives the coordinator-side cluster series; nil gets a
	// private registry.
	Metrics *metrics.Registry
	// Logger receives dispatch lifecycle logs; nil discards.
	Logger *slog.Logger
	// Clock overrides time.Now in tests.
	Clock func() time.Time
}

// member is one worker as the coordinator tracks it.
type member struct {
	addr      string
	static    bool
	lastSeen  time.Time // joined workers: last heartbeat
	downUntil time.Time // dispatch-failure backoff
}

// Coordinator partitions jobs into shards, dispatches them to workers
// and merges the counts.  It implements jobs.Distributor (plugged into
// the manager) and Node (mounted on the HTTP mux).
type Coordinator struct {
	cfg    CoordinatorConfig
	client *http.Client

	mu      sync.Mutex
	members map[string]*member
	// active tracks running jobStates (guarded by mu) for the lease
	// heartbeat loop and for offering queued windows to workers that
	// join mid-job; leaseTicking marks the singleton lease loop.
	active       map[*jobState]struct{}
	leaseTicking bool

	inflight      atomic.Int64
	dispatched    atomic.Int64
	retries       atomic.Int64
	pushes        atomic.Int64
	jobsDist      atomic.Int64
	jobsDecl      atomic.Int64
	localDone     atomic.Int64
	seqStops      atomic.Int64
	ledgerRecords atomic.Int64
	ledgerJobs    atomic.Int64
	ledgerWindows atomic.Int64
	ledgerInvalid atomic.Int64
	leaseRenews   atomic.Int64

	metDispatched    *metrics.Counter
	metSeqStops      *metrics.Counter
	metRetries       map[string]*metrics.Counter
	metPushes        *metrics.Counter
	metJobsDist      *metrics.Counter
	metJobsDecl      *metrics.Counter
	metLocal         *metrics.Counter
	metRPC           *metrics.Histogram
	metTimeouts      map[string]*metrics.Counter // by call
	metShardCorrupt  *metrics.Counter
	metPushEcho      *metrics.Counter
	metLedgerRecords map[string]*metrics.Counter // by kind
	metLedgerJobs    *metrics.Counter
	metLedgerWindows *metrics.Counter
	metLedgerInvalid *metrics.Counter
	metLeaseRenewals *metrics.Counter
}

// Retry reasons, used as the metric label and in logs.
const (
	retryError     = "error"
	retryPartial   = "partial"
	retryStraggler = "straggler"
	retryCorrupt   = "corrupt"
)

// NewCoordinator builds a coordinator over the static worker set.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.ShardsPerWorker < 1 {
		cfg.ShardsPerWorker = 2
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 3
	}
	if cfg.StragglerAfter == 0 {
		cfg.StragglerAfter = 5 * time.Second
	}
	if cfg.HeartbeatTTL <= 0 {
		cfg.HeartbeatTTL = 10 * time.Second
	}
	if cfg.DownFor <= 0 {
		cfg.DownFor = 3 * time.Second
	}
	if cfg.DispatchTimeout == 0 {
		cfg.DispatchTimeout = 15 * time.Minute
	}
	if cfg.PushTimeout == 0 {
		cfg.PushTimeout = 2 * time.Minute
	}
	if cfg.LeaseDuration == 0 {
		cfg.LeaseDuration = 15 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	c := &Coordinator{cfg: cfg, client: cfg.Client, members: make(map[string]*member), active: make(map[*jobState]struct{})}
	for _, addr := range cfg.Workers {
		addr = strings.TrimRight(addr, "/")
		if addr == "" {
			continue
		}
		c.members[addr] = &member{addr: addr, static: true}
	}
	reg := cfg.Metrics
	reg.Help("cluster_shards_dispatched_total", "Shard RPCs dispatched to workers.")
	reg.Help("cluster_shard_retries_total", "Shard re-dispatches, by reason (error, partial, straggler).")
	reg.Help("cluster_dataset_pushes_total", "Datasets pushed to workers that answered 404 for a content address.")
	reg.Help("cluster_jobs_distributed_total", "Jobs run across the cluster.")
	reg.Help("cluster_jobs_declined_total", "Jobs declined back to the local path (no live workers or B under threshold).")
	reg.Help("cluster_local_shards_total", "Shards computed on the coordinator after worker loss or exhausted retries.")
	reg.Help("cluster_shard_rpc_seconds", "Wall time of one shard RPC, dispatch to decoded response.")
	reg.Help("cluster_workers_live", "Workers currently considered live.")
	reg.Help("cluster_shards_in_flight", "Shards currently dispatched and unresolved.")
	reg.Help("cluster_rpc_timeout_total", "Cluster RPCs that hit their deadline, by call.")
	reg.Help("integrity_shard_corrupt_total", "Shard deliveries rejected for a CRC mismatch and re-dispatched.")
	reg.Help("integrity_push_digest_mismatch_total", "Dataset pushes whose echoed content id disagreed with the local digest.")
	reg.Help("cluster_seq_early_stops_total", "Sequential jobs whose merged counts satisfied the stopping rule before every shard finished.")
	c.metDispatched = reg.Counter("cluster_shards_dispatched_total")
	c.metSeqStops = reg.Counter("cluster_seq_early_stops_total")
	c.metRetries = map[string]*metrics.Counter{
		retryError:     reg.Counter("cluster_shard_retries_total", "reason", retryError),
		retryPartial:   reg.Counter("cluster_shard_retries_total", "reason", retryPartial),
		retryStraggler: reg.Counter("cluster_shard_retries_total", "reason", retryStraggler),
		retryCorrupt:   reg.Counter("cluster_shard_retries_total", "reason", retryCorrupt),
	}
	c.metTimeouts = map[string]*metrics.Counter{
		"shard": reg.Counter("cluster_rpc_timeout_total", "call", "shard"),
		"push":  reg.Counter("cluster_rpc_timeout_total", "call", "push"),
	}
	c.metShardCorrupt = reg.Counter("integrity_shard_corrupt_total")
	reg.Help("cluster_ledger_records_total", "Durable merge-ledger records journaled, by kind (plan, shard, redispatch).")
	reg.Help("cluster_ledger_jobs_replayed_total", "Jobs whose journaled merge ledger was adopted after a coordinator restart.")
	reg.Help("cluster_ledger_windows_replayed_total", "Shard deliveries re-merged from the journal on restart — windows that were NOT recomputed.")
	reg.Help("cluster_ledger_invalid_total", "Replayed merge ledgers discarded after failing validation (plan drift, span gaps).")
	reg.Help("cluster_lease_renewals_total", "Shard-lease heartbeats delivered to workers.")
	c.metLedgerRecords = map[string]*metrics.Counter{
		"plan":       reg.Counter("cluster_ledger_records_total", "kind", "plan"),
		"shard":      reg.Counter("cluster_ledger_records_total", "kind", "shard"),
		"redispatch": reg.Counter("cluster_ledger_records_total", "kind", "redispatch"),
	}
	c.metLedgerJobs = reg.Counter("cluster_ledger_jobs_replayed_total")
	c.metLedgerWindows = reg.Counter("cluster_ledger_windows_replayed_total")
	c.metLedgerInvalid = reg.Counter("cluster_ledger_invalid_total")
	c.metLeaseRenewals = reg.Counter("cluster_lease_renewals_total")
	c.metPushEcho = reg.Counter("integrity_push_digest_mismatch_total")
	c.metPushes = reg.Counter("cluster_dataset_pushes_total")
	c.metJobsDist = reg.Counter("cluster_jobs_distributed_total")
	c.metJobsDecl = reg.Counter("cluster_jobs_declined_total")
	c.metLocal = reg.Counter("cluster_local_shards_total")
	c.metRPC = reg.Histogram("cluster_shard_rpc_seconds", metrics.DefLatencyBuckets)
	reg.GaugeFunc("cluster_workers_live", func() float64 {
		return float64(len(c.live(c.cfg.Clock())))
	})
	reg.GaugeFunc("cluster_shards_in_flight", func() float64 {
		return float64(c.inflight.Load())
	})
	return c
}

// Role implements Node.
func (c *Coordinator) Role() string { return "coordinator" }

// Routes implements Node: the worker membership API.
func (c *Coordinator) Routes() []Route {
	return []Route{
		{Method: "POST", Pattern: WorkersPath, Handler: c.handleJoin},
		{Method: "DELETE", Pattern: WorkersPath, Handler: c.handleLeave},
		{Method: "GET", Pattern: PingPath, Handler: c.handlePing},
	}
}

// Info implements Node.
func (c *Coordinator) Info() Info {
	now := c.cfg.Clock()
	c.mu.Lock()
	members := make([]MemberInfo, 0, len(c.members))
	live := 0
	for _, m := range c.members {
		alive := c.memberLive(m, now)
		if alive {
			live++
		}
		mi := MemberInfo{Addr: m.addr, Live: alive, Static: m.static}
		if !m.static {
			mi.LastSeen = m.lastSeen
		}
		members = append(members, mi)
	}
	c.mu.Unlock()
	return Info{
		Role: "coordinator",
		Coordinator: &CoordinatorInfo{
			Workers:          members,
			WorkersLive:      live,
			ShardsInFlight:   int(c.inflight.Load()),
			ShardsDispatched: c.dispatched.Load(),
			ShardRetries:     c.retries.Load(),
			DatasetPushes:    c.pushes.Load(),
			JobsDistributed:  c.jobsDist.Load(),
			JobsDeclined:     c.jobsDecl.Load(),
			LocalShards:      c.localDone.Load(),
			SeqEarlyStops:    c.seqStops.Load(),

			LedgerRecords:         c.ledgerRecords.Load(),
			LedgerJobsReplayed:    c.ledgerJobs.Load(),
			LedgerWindowsReplayed: c.ledgerWindows.Load(),
			LedgerInvalid:         c.ledgerInvalid.Load(),
			LeaseRenewals:         c.leaseRenews.Load(),
		},
	}
}

func (c *Coordinator) handlePing(w http.ResponseWriter, r *http.Request) {
	writeClusterJSON(w, http.StatusOK, map[string]any{"ok": true, "role": "coordinator"})
}

// handleJoin registers (or re-heartbeats) a worker.  A re-registering
// worker clears its failure backoff: it just proved it is alive.
func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var body joinBody
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&body); err != nil {
		writeClusterJSON(w, http.StatusBadRequest, errorBody{Error: "bad join request: " + err.Error()})
		return
	}
	addr := strings.TrimRight(body.Addr, "/")
	if u, err := url.Parse(addr); err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		writeClusterJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("join addr %q is not an http(s) base URL", body.Addr)})
		return
	}
	now := c.cfg.Clock()
	c.mu.Lock()
	m, ok := c.members[addr]
	if !ok {
		m = &member{addr: addr}
		c.members[addr] = m
	}
	m.lastSeen = now
	m.downUntil = time.Time{}
	c.mu.Unlock()
	if !ok {
		c.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "cluster_worker_joined", slog.String("addr", addr))
	}
	// A heartbeat is proof of life: put the worker on any job that still
	// has queued windows, right now — a worker re-joining mid-job used
	// to idle until another worker failed.
	c.offerActive(m)
	writeClusterJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleLeave deregisters a draining worker.  Static members are kept
// (they are configuration) but backed off, so dispatch stops
// immediately and resumes only if the worker comes back.
func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	addr := strings.TrimRight(r.URL.Query().Get("addr"), "/")
	now := c.cfg.Clock()
	c.mu.Lock()
	m, ok := c.members[addr]
	if ok {
		if m.static {
			m.downUntil = now.Add(c.cfg.DownFor)
		} else {
			delete(c.members, addr)
		}
	}
	c.mu.Unlock()
	if ok {
		c.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "cluster_worker_left", slog.String("addr", addr))
	}
	writeClusterJSON(w, http.StatusOK, map[string]any{"ok": ok})
}

// memberLive reports whether m is dispatchable at now.  Callers hold
// c.mu.
func (c *Coordinator) memberLive(m *member, now time.Time) bool {
	if now.Before(m.downUntil) {
		return false
	}
	if m.static {
		return true
	}
	return now.Sub(m.lastSeen) <= c.cfg.HeartbeatTTL
}

// live snapshots the dispatchable workers.
func (c *Coordinator) live(now time.Time) []*member {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		if c.memberLive(m, now) {
			out = append(out, m)
		}
	}
	return out
}

// markDown backs a worker off after a failed dispatch.  A joined worker
// returns on its next heartbeat; a static one after DownFor.
func (c *Coordinator) markDown(m *member) {
	now := c.cfg.Clock()
	c.mu.Lock()
	m.downUntil = now.Add(c.cfg.DownFor)
	if !m.static {
		// Heartbeats clear the backoff; push lastSeen back so a worker
		// that truly died expires rather than lingering live-but-down.
		m.lastSeen = now.Add(-c.cfg.HeartbeatTTL)
	}
	c.mu.Unlock()
}

// registerActive tracks a running jobState for the lease heartbeat and
// for mid-job worker join offers, starting the singleton lease loop on
// demand.
func (c *Coordinator) registerActive(st *jobState) {
	c.mu.Lock()
	c.active[st] = struct{}{}
	if !c.leaseTicking && c.cfg.LeaseDuration > 0 {
		c.leaseTicking = true
		go c.leaseLoop()
	}
	c.mu.Unlock()
}

func (c *Coordinator) deregisterActive(st *jobState) {
	c.mu.Lock()
	delete(c.active, st)
	c.mu.Unlock()
}

// leaseLoop renews the compute leases of every active job's shards on
// all live workers, at a third of the lease duration so two heartbeats
// can be lost before a lease lapses.  Each heartbeat is authoritative:
// it carries the coordinator's complete active fingerprint set, so
// workers disown (park, then cancel) shards from a previous coordinator
// life.  The loop exits when the active set drains and restarts with
// the next job.
func (c *Coordinator) leaseLoop() {
	interval := c.cfg.LeaseDuration / 3
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		c.mu.Lock()
		if len(c.active) == 0 {
			c.leaseTicking = false
			c.mu.Unlock()
			return
		}
		fps := make([]uint64, 0, len(c.active))
		for st := range c.active {
			fps = append(fps, st.plan.Fingerprint)
		}
		c.mu.Unlock()
		body := leaseBody{
			Fingerprints:  fps,
			LeaseMS:       int64(c.cfg.LeaseDuration / time.Millisecond),
			Authoritative: true,
		}
		for _, m := range c.live(c.cfg.Clock()) {
			c.postLease(m.addr, &body)
		}
	}
}

// postLease delivers one lease heartbeat; failures are ignored (the
// worker-side lease expiry is the backstop).
func (c *Coordinator) postLease(addr string, body *leaseBody) {
	payload, err := json.Marshal(body)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, "POST", addr+LeasesPath, bytes.NewReader(payload))
	if err != nil {
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(hresp.Body, 1<<12))
	hresp.Body.Close()
	c.leaseRenews.Add(1)
	c.metLeaseRenewals.Inc()
}

// offerActive offers every active job's remaining queue to a worker
// that just proved liveness, so a worker that (re)joins mid-job is put
// to work immediately instead of waiting out the next failure retry.
func (c *Coordinator) offerActive(m *member) {
	c.mu.Lock()
	sts := make([]*jobState, 0, len(c.active))
	for st := range c.active {
		sts = append(sts, st)
	}
	c.mu.Unlock()
	for _, st := range sts {
		st.offer(m)
	}
}

// offer starts a dispatch loop for m unless the job is over or m
// already runs one.
func (st *jobState) offer(m *member) {
	st.mu.Lock()
	if st.finished || st.err != nil || st.earlyStop || st.loops[m.addr] {
		st.mu.Unlock()
		return
	}
	st.loops[m.addr] = true
	st.remotes++
	st.mu.Unlock()
	go st.remoteLoop(m)
}

// partitionRange splits [lo, hi) into at most n contiguous windows
// following the paper's Figure-2 rank partitioning: deterministic,
// equal spans up to remainder, in index order.
func partitionRange(lo, hi int64, n int) [][2]int64 {
	span := hi - lo
	if span <= 0 {
		return nil
	}
	if int64(n) > span {
		n = int(span)
	}
	if n < 1 {
		n = 1
	}
	out := make([][2]int64, 0, n)
	for r := 0; r < n; r++ {
		a := lo + span*int64(r)/int64(n)
		b := lo + span*int64(r+1)/int64(n)
		if a < b {
			out = append(out, [2]int64{a, b})
		}
	}
	return out
}

// RunJob implements jobs.Distributor: plan, partition, dispatch, merge,
// finalize.  The returned result is bitwise identical to a local run of
// the same spec — the merge ledger guarantees each permutation index is
// counted exactly once, and int64 count merging is order-independent.
//
// The dispatch state doubles as a DURABLE merge ledger when the jobs
// layer hands over a JobLedger: the shard plan and every accepted
// delivery are journaled, so a coordinator killed mid-job replays the
// ledger on restart, re-merges the journaled deliveries (zero
// recomputation) and dispatches only the windows that never landed.
func (c *Coordinator) RunJob(ctx context.Context, req jobs.DistRequest) (*core.Result, error) {
	// Sequential jobs distribute as EXACT shards: a shard never holds the
	// global step-down prefix, so per-row freezing cannot apply remotely.
	// The coordinator validates the plan under the original sequential
	// options (rejecting complete enumerations), rewrites the shard
	// options to exact, applies the whole-job stopping rule to its merge
	// ledger as deliveries land, and finalizes every row at the merged
	// count.  A resume checkpoint that froze rows under local per-row
	// stopping pins those rows: their counts and effective B stay at the
	// checkpoint values (masked out of every merge) while the active rows
	// keep accumulating — the distributed continuation of exactly what
	// the local engine would do.
	seqOpt := req.Opt
	canon, err := core.CanonicalOptions(req.Opt)
	if err != nil {
		return nil, err
	}
	sequential := canon.Mode == core.ModeSequential
	var seqFingerprint uint64
	if sequential {
		seqPlan, err := core.PlanRun(req.Prepared, seqOpt)
		if err != nil {
			return nil, err
		}
		seqFingerprint = seqPlan.Fingerprint
		req.Opt.Mode = core.ModeExact
		req.Opt.SeqAlpha, req.Opt.SeqTolerance = 0, 0
	}
	plan, err := core.PlanRun(req.Prepared, req.Opt)
	if err != nil {
		return nil, err
	}

	merged := maxt.NewCounts(plan.Rows)
	start := int64(0)
	var frozen []int64
	// A valid prefix checkpoint is just a pre-merged shard covering
	// [0, Next): merge it and dispatch only the remainder.  An invalid
	// one (engine drift, different analysis) is ignored, not fatal —
	// the cluster recomputes from scratch.  Sequential jobs checkpoint
	// under the sequential fingerprint (mode + stopping parameters are
	// mixed in), so the prefix check compares against that.
	ckptFP := plan.Fingerprint
	if sequential {
		ckptFP = seqFingerprint
	}
	if r := req.Resume; r != nil &&
		r.Fingerprint == ckptFP && r.TotalB == plan.TotalB &&
		r.Complete == plan.Complete && r.Next == r.Done &&
		len(r.Raw) == plan.Rows && len(r.Adj) == plan.Rows && r.Next <= plan.TotalB {
		copy(merged.Raw, r.Raw)
		copy(merged.Adj, r.Adj)
		merged.B = r.Done
		start = r.Next
		if sequential {
			for _, b := range r.BEff {
				if b != 0 {
					frozen = append([]int64(nil), r.BEff...)
					break
				}
			}
		}
	}

	led := req.Ledger
	adopt := c.adoptLedger(led.Replayed(), plan, sequential, start, frozen)

	now := c.cfg.Clock()
	workers := c.live(now)
	// An adopted job is never declined: its journaled deliveries must be
	// honoured (the local path would recompute them), and the localLoop
	// covers the remainder even with zero live workers.
	if adopt == nil && (len(workers) == 0 || plan.TotalB < c.cfg.MinDistB) {
		c.jobsDecl.Add(1)
		c.metJobsDecl.Inc()
		return nil, jobs.ErrNotDistributed
	}
	c.jobsDist.Add(1)
	c.metJobsDist.Inc()

	seenObserved := start > 0
	var spans [][2]int64
	if adopt != nil {
		c.ledgerJobs.Add(1)
		c.metLedgerJobs.Inc()
		for i := range adopt.deliveries {
			d := &adopt.deliveries[i]
			mergeMasked(merged, d.Raw, d.Adj, d.B, frozen)
			if d.Lo == 0 {
				seenObserved = true
			}
		}
		c.ledgerWindows.Add(int64(len(adopt.deliveries)))
		c.metLedgerWindows.Add(int64(len(adopt.deliveries)))
		if req.OnProgress != nil && merged.B > 0 {
			req.OnProgress(merged.B, plan.TotalB)
		}
		spans = adopt.remaining
		c.cfg.Logger.LogAttrs(ctx, slog.LevelInfo, "cluster_ledger_adopted",
			slog.String("job", req.Key),
			slog.Int("deliveries", len(adopt.deliveries)),
			slog.Int("remaining", len(spans)),
			slog.Int64("merged_b", merged.B))
	} else if start < plan.TotalB {
		n := len(workers)
		if n < 1 {
			n = 1
		}
		spans = partitionRange(start, plan.TotalB, n*c.cfg.ShardsPerWorker)
		if led != nil {
			led.RecordPlan(&jobs.LedgerState{
				Fingerprint: plan.Fingerprint, TotalB: plan.TotalB,
				Complete: plan.Complete, Rows: plan.Rows,
				Start: start, Seq: sequential, BEff: frozen, Spans: spans,
			})
			c.ledgerRecords.Add(1)
			c.metLedgerRecords["plan"].Inc()
		}
	}

	// An adopted sequential merge may already satisfy the stopping rule;
	// do not dispatch what the rule says we do not need.
	if sequential && seenObserved && len(spans) > 0 {
		if settled, serr := core.SeqAllSettledFrozen(req.Prepared, seqOpt, merged, frozen); serr == nil && settled {
			spans = nil
			c.seqStops.Add(1)
			c.metSeqStops.Inc()
		}
	}

	if len(spans) > 0 {
		if err := c.runShards(ctx, runShardsParams{
			req: req, plan: plan, seq: sequential, seqOpt: seqOpt,
			seenObserved: seenObserved, frozen: frozen, led: led,
		}, merged, spans, workers); err != nil {
			return nil, err
		}
	}
	nprocs := len(workers)
	if nprocs == 0 {
		nprocs = 1
	}
	if sequential {
		res, err := core.FinalizeCountsSequentialFrozen(req.Prepared, seqOpt, merged, frozen)
		if err != nil {
			return nil, err
		}
		res.NProcs = nprocs
		return res, nil
	}
	res, err := core.FinalizeCounts(req.Prepared, req.Opt, merged)
	if err != nil {
		return nil, err
	}
	res.NProcs = nprocs
	return res, nil
}

// mergeMasked merges one delivery's counts, pinning rows a resumed
// sequential checkpoint froze: their exceedance counts stay at the
// checkpoint values (their denominators are the checkpoint's BEff, not
// the job's B), while B — the shared denominator of the active rows —
// always advances.
func mergeMasked(dst *maxt.Counts, raw, adj []int64, b int64, frozen []int64) {
	if frozen == nil {
		dst.Merge(&maxt.Counts{Raw: raw, Adj: adj, B: b})
		return
	}
	for i := range raw {
		if frozen[i] == 0 {
			dst.Raw[i] += raw[i]
			dst.Adj[i] += adj[i]
		}
	}
	dst.B += b
}

// adoption is the validated outcome of replaying a job's durable merge
// ledger: the journaled deliveries to re-merge and the windows still to
// dispatch (each original span advanced past its delivered prefix;
// fully-covered spans dropped).
type adoption struct {
	remaining  [][2]int64
	deliveries []jobs.LedgerDelivery
}

// adoptLedger validates a replayed ledger against the freshly planned
// job.  The plan identity (fingerprint, range, rows, resume prefix,
// frozen rows) must match exactly and the journaled spans must tile
// [start, TotalB) contiguously — anything else means the job changed
// under the journal (engine upgrade, different checkpoint) and the
// whole ledger is discarded: the job re-partitions from the resume
// prefix alone and writes a fresh plan record.  Within a valid plan,
// deliveries are adopted per span as a contiguous CRC-verified chain
// from the span's lo; a delivery that does not chain or fails its
// checksum drops together with the rest of its span's chain, and those
// windows simply recompute.  Correctness never rides on the journal —
// it can only save work, not corrupt the merge.
func (c *Coordinator) adoptLedger(rep *jobs.LedgerState, plan core.Plan, sequential bool, start int64, frozen []int64) *adoption {
	if rep == nil {
		return nil
	}
	invalid := func(why string) *adoption {
		c.ledgerInvalid.Add(1)
		c.metLedgerInvalid.Inc()
		c.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "cluster_ledger_invalid",
			slog.String("why", why))
		return nil
	}
	if rep.Fingerprint != plan.Fingerprint || rep.TotalB != plan.TotalB ||
		rep.Complete != plan.Complete || rep.Rows != plan.Rows ||
		rep.Seq != sequential || rep.Start != start {
		return invalid("plan identity drift")
	}
	if len(rep.BEff) != len(frozen) {
		return invalid("frozen-row drift")
	}
	for i := range frozen {
		if rep.BEff[i] != frozen[i] {
			return invalid("frozen-row drift")
		}
	}
	if len(rep.Spans) == 0 {
		return invalid("no spans")
	}
	at := start
	for _, sp := range rep.Spans {
		if sp[0] != at || sp[1] <= sp[0] {
			return invalid("span layout")
		}
		at = sp[1]
	}
	if at != plan.TotalB {
		return invalid("span coverage")
	}
	lo := make([]int64, len(rep.Spans))
	for i, sp := range rep.Spans {
		lo[i] = sp[0]
	}
	var adopted []jobs.LedgerDelivery
	// Deliveries were journaled in merge order, so one pass chains them.
	for _, d := range rep.Deliveries {
		idx := -1
		for i, sp := range rep.Spans {
			if d.Lo >= sp[0] && d.Hi == sp[1] {
				idx = i
				break
			}
		}
		if idx < 0 || d.Lo != lo[idx] || d.Next <= d.Lo || d.Next > d.Hi ||
			d.B != d.Next-d.Lo ||
			len(d.Raw) != plan.Rows || len(d.Adj) != plan.Rows {
			continue
		}
		if d.CRC64 != 0 {
			chk := ShardResponse{
				Lo: d.Lo, Next: d.Next, Hi: d.Hi, TotalB: plan.TotalB,
				Fingerprint: plan.Fingerprint, B: d.B, Raw: d.Raw, Adj: d.Adj,
			}
			if chk.CRC() != d.CRC64 {
				c.metShardCorrupt.Inc()
				continue
			}
		}
		lo[idx] = d.Next
		adopted = append(adopted, d)
	}
	ad := &adoption{deliveries: adopted}
	for i, sp := range rep.Spans {
		if lo[i] < sp[1] {
			ad.remaining = append(ad.remaining, [2]int64{lo[i], sp[1]})
		}
	}
	return ad
}

// shardRec is the coordinator's ledger entry for one window of the
// range.  lo advances as deliveries merge; the exactly-once rule is
// that a delivery is accepted iff its range starts at the record's
// CURRENT lo — duplicates (double dispatch, straggler losers) and
// stale deliveries start below it and are discarded whole.
type shardRec struct {
	lo, hi       int64
	attempts     int  // failed dispatch attempts (bounds remote retries)
	inflight     int  // outstanding dispatches (straggler dups allowed)
	queued       bool // sitting in the dispatch queue
	local        bool // exhausted remote attempts: coordinator computes it
	spec         bool // speculatively re-dispatched once already
	done         bool
	dispatchedAt time.Time // earliest outstanding dispatch, for straggler detection
}

// jobState is the per-job dispatch state machine.
type jobState struct {
	c    *Coordinator
	ctx  context.Context
	req  jobs.DistRequest
	plan core.Plan

	// Sequential whole-job stopping: seq marks the job, seqOpt carries
	// the original sequential options the stopping rule evaluates under,
	// seenObserved records that the merge covers permutation index 0 (the
	// observed labelling — the rule is meaningless before it lands), and
	// earlyStop is the coordinator's stop decision: dispatch loops drain,
	// in-flight shard RPCs are cancelled, and the merge finalizes as-is.
	seq          bool
	seqOpt       core.Options
	seenObserved bool
	earlyStop    bool

	// frozen pins rows a resumed sequential checkpoint already settled
	// (nil otherwise); led is the job's durable merge ledger (nil when
	// the manager has no journal).
	frozen []int64
	led    *jobs.JobLedger

	mu        sync.Mutex
	cond      *sync.Cond
	shards    []*shardRec
	queue     []*shardRec
	merged    *maxt.Counts
	remaining int
	remotes   int             // live remote dispatch loops
	loops     map[string]bool // worker addr -> has an active remote loop
	finished  bool
	err       error
}

// runShardsParams bundles the per-job constants of one dispatch run.
type runShardsParams struct {
	req          jobs.DistRequest
	plan         core.Plan
	seq          bool
	seqOpt       core.Options
	seenObserved bool // resume prefix already covers the observed labelling
	frozen       []int64
	led          *jobs.JobLedger
}

// runShards drives the dispatch loops until every span is merged — or,
// for sequential jobs, until the merged counts satisfy the whole-job
// stopping rule, whichever comes first.
func (c *Coordinator) runShards(ctx context.Context, p runShardsParams, merged *maxt.Counts, spans [][2]int64, workers []*member) error {
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := &jobState{
		c: c, ctx: jobCtx, req: p.req, plan: p.plan, merged: merged, remaining: len(spans),
		seq: p.seq, seqOpt: p.seqOpt, seenObserved: p.seenObserved,
		frozen: p.frozen, led: p.led, loops: make(map[string]bool),
	}
	st.cond = sync.NewCond(&st.mu)
	for _, sp := range spans {
		rec := &shardRec{lo: sp[0], hi: sp[1], queued: true}
		st.shards = append(st.shards, rec)
		st.queue = append(st.queue, rec)
	}
	st.remotes = len(workers)
	for _, m := range workers {
		st.loops[m.addr] = true
		go st.remoteLoop(m)
	}
	go st.localLoop()
	c.registerActive(st)
	defer c.deregisterActive(st)
	stopAbort := context.AfterFunc(ctx, func() {
		st.abort(fmt.Errorf("cluster: job aborted: %w", context.Cause(ctx)))
	})
	defer stopAbort()
	if d := c.cfg.StragglerAfter; d > 0 {
		stopTick := make(chan struct{})
		defer close(stopTick)
		go st.stragglerTicker(d, stopTick)
	}

	st.mu.Lock()
	for st.remaining > 0 && st.err == nil && !st.earlyStop {
		st.cond.Wait()
	}
	st.finished = true
	err := st.err
	st.mu.Unlock()
	st.cond.Broadcast()
	// cancel() (deferred) aborts any straggling RPCs and the local
	// loop; their late deliveries are discarded by the finished flag.
	// For a sequential early stop, this cancellation IS the cluster-wide
	// stop broadcast: every in-flight shard RPC is torn down and no
	// further spans dispatch.
	return err
}

// abort fails the job (context cancelled); loops drain out.
func (st *jobState) abort(err error) {
	st.mu.Lock()
	if st.err == nil && !st.finished {
		st.err = err
	}
	st.mu.Unlock()
	st.cond.Broadcast()
}

// next blocks until a shard is available for this loop kind and claims
// one dispatch of it, or returns nil when the job is over.  The local
// loop only takes shards flagged local — or anything, once no remote
// loop survives; remote loops take everything else.
func (st *jobState) next(localLoop bool) *shardRec {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.finished || st.err != nil || st.remaining == 0 || st.earlyStop {
			return nil
		}
		if rec := st.takeLocked(localLoop); rec != nil {
			if rec.inflight == 0 {
				rec.dispatchedAt = st.c.cfg.Clock()
			}
			rec.inflight++
			st.c.inflight.Add(1)
			return rec
		}
		st.cond.Wait()
	}
}

// takeLocked scans the queue for the first shard this loop kind may
// dispatch, dropping finished records on the way.  Callers hold st.mu.
func (st *jobState) takeLocked(localLoop bool) *shardRec {
	kept := st.queue[:0]
	var take *shardRec
	for _, rec := range st.queue {
		if rec.done {
			rec.queued = false
			continue
		}
		eligible := !rec.local
		if localLoop {
			eligible = rec.local || st.remotes == 0
		}
		if take == nil && eligible {
			take = rec
			rec.queued = false
			continue
		}
		kept = append(kept, rec)
	}
	st.queue = kept
	return take
}

// release drops one outstanding dispatch without requeueing.
func (st *jobState) release(rec *shardRec) {
	st.mu.Lock()
	rec.inflight--
	st.c.inflight.Add(-1)
	st.mu.Unlock()
}

// requeue returns a failed dispatch to the queue, flipping the shard to
// coordinator-local once its remote attempts are exhausted.  The
// re-dispatch decision is journaled as a ledger audit record.
func (st *jobState) requeue(rec *shardRec, reason, from string) {
	st.c.retries.Add(1)
	if m, ok := st.c.metRetries[reason]; ok {
		m.Inc()
	}
	requeued := false
	st.mu.Lock()
	rec.inflight--
	st.c.inflight.Add(-1)
	if !rec.done && st.err == nil && !st.finished {
		if reason == retryError {
			rec.attempts++
			if rec.attempts >= st.c.cfg.MaxAttempts {
				rec.local = true
			}
		}
		if !rec.queued {
			rec.queued = true
			st.queue = append(st.queue, rec)
			requeued = true
		}
	}
	lo, hi := rec.lo, rec.hi
	st.mu.Unlock()
	st.cond.Broadcast()
	if requeued && st.led != nil {
		st.led.RecordRedispatch(lo, hi, from, reason)
		st.c.ledgerRecords.Add(1)
		st.c.metLedgerRecords["redispatch"].Inc()
	}
}

// deliver merges one shard delivery under the exactly-once rule and
// advances the ledger.  Counts covering [lo, next) are accepted iff lo
// equals the record's current lo and the fingerprint matches the plan;
// anything else — duplicate, stale range, drifted node — is discarded
// whole.  A partial delivery (next < hi) merges its prefix and requeues
// the remainder.  from names the delivering worker ("local" for the
// coordinator's own loop) for the ledger record.
func (st *jobState) deliver(rec *shardRec, resp *ShardResponse, from string) {
	rows := st.plan.Rows
	st.mu.Lock()
	rec.inflight--
	st.c.inflight.Add(-1)
	if rec.inflight == 0 {
		rec.dispatchedAt = time.Time{}
	} else {
		rec.dispatchedAt = st.c.cfg.Clock()
	}
	ok := !rec.done && st.err == nil && !st.finished &&
		resp.Fingerprint == st.plan.Fingerprint &&
		resp.TotalB == st.plan.TotalB &&
		resp.Lo == rec.lo && resp.Next > rec.lo && resp.Next <= rec.hi &&
		resp.B == resp.Next-resp.Lo &&
		len(resp.Raw) == rows && len(resp.Adj) == rows
	var ledDel *jobs.LedgerDelivery
	if ok {
		mergeMasked(st.merged, resp.Raw, resp.Adj, resp.B, st.frozen)
		rec.lo = resp.Next
		if rec.lo == rec.hi {
			rec.done = true
			st.remaining--
		} else if !rec.queued {
			rec.queued = true
			st.queue = append(st.queue, rec)
		}
		if st.led != nil {
			ledDel = &jobs.LedgerDelivery{
				Lo: resp.Lo, Next: resp.Next, Hi: rec.hi, B: resp.B,
				Raw: resp.Raw, Adj: resp.Adj, CRC64: resp.CRC64, Worker: from,
			}
		}
		if st.req.OnProgress != nil {
			st.req.OnProgress(st.merged.B, st.plan.TotalB)
		}
		if st.seq {
			// Whole-job stopping on the merge ledger.  The rule only
			// makes sense once the observed labelling (permutation index
			// 0, always the first span's first index) is merged — every
			// count is conditioned on the observed statistics being in
			// the ledger.  Merged shards cover disjoint index ranges of
			// one iid sampled sequence, so any union is a valid sample.
			if resp.Lo == 0 {
				st.seenObserved = true
			}
			if st.seenObserved && st.remaining > 0 {
				if settled, serr := core.SeqAllSettledFrozen(st.req.Prepared, st.seqOpt, st.merged, st.frozen); serr == nil && settled {
					st.earlyStop = true
					st.c.seqStops.Add(1)
					st.c.metSeqStops.Inc()
				}
			}
		}
	}
	partial := ok && !rec.done
	st.mu.Unlock()
	st.cond.Broadcast()
	if ledDel != nil {
		// Journal OUTSIDE the dispatch lock: the append fsyncs, and that
		// latency must not serialize the merge.  The crash window this
		// opens is safe — a merged-but-unjournaled delivery re-dispatches
		// after restart and worker retention re-serves it from cache.
		st.led.RecordDelivery(ledDel)
		st.c.ledgerRecords.Add(1)
		st.c.metLedgerRecords["shard"].Inc()
	}
	if partial {
		st.c.retries.Add(1)
		st.c.metRetries[retryPartial].Inc()
	}
}

// remoteLoop pulls shards and dispatches them to one worker until the
// job finishes or the worker fails (it is then backed off and its
// queued work drains to the surviving loops).
func (st *jobState) remoteLoop(m *member) {
	defer func() {
		st.mu.Lock()
		st.remotes--
		delete(st.loops, m.addr)
		st.mu.Unlock()
		st.cond.Broadcast()
	}()
	pushed := false
	for {
		rec := st.next(false)
		if rec == nil {
			return
		}
		if !st.c.attempt(st, m, rec, &pushed) {
			return
		}
	}
}

// localLoop computes shards on the coordinator itself: the survivor of
// last resort.  It idles while remote loops are healthy and only picks
// up shards that exhausted their remote retries — or everything, once
// no remote loop remains.
func (st *jobState) localLoop() {
	scratch := &core.RunScratch{}
	for {
		rec := st.next(true)
		if rec == nil {
			return
		}
		st.mu.Lock()
		lo, hi, done := rec.lo, rec.hi, rec.done
		st.mu.Unlock()
		if done {
			st.release(rec)
			continue
		}
		sc, err := core.RunShard(st.req.Prepared, st.req.Opt, lo, hi, core.RunControl{
			Ctx:     st.ctx,
			NProcs:  st.req.NProcs,
			Every:   st.req.Every,
			Scratch: scratch,
		})
		if err != nil {
			st.release(rec)
			st.abort(err)
			return
		}
		st.c.localDone.Add(1)
		st.c.metLocal.Inc()
		resp := &ShardResponse{
			Lo: sc.Lo, Next: sc.Next, Hi: hi,
			TotalB: sc.Plan.TotalB, Complete: sc.Plan.Complete,
			Fingerprint: sc.Plan.Fingerprint,
			B:           sc.Counts.B, Raw: sc.Counts.Raw, Adj: sc.Counts.Adj,
		}
		resp.CRC64 = resp.CRC()
		st.deliver(rec, resp, "local")
	}
}

// stragglerTicker watches for a drained queue with long-inflight shards
// and speculatively re-dispatches each at most once; the merge ledger
// makes the duplicate harmless.
func (st *jobState) stragglerTicker(after time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(after / 4)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		now := st.c.cfg.Clock()
		var bumped [][2]int64
		st.mu.Lock()
		if len(st.queue) == 0 && st.remaining > 0 && st.err == nil && !st.finished {
			for _, rec := range st.shards {
				if rec.done || rec.queued || rec.spec || rec.inflight == 0 {
					continue
				}
				if now.Sub(rec.dispatchedAt) >= after {
					rec.spec, rec.queued = true, true
					st.queue = append(st.queue, rec)
					bumped = append(bumped, [2]int64{rec.lo, rec.hi})
					st.c.retries.Add(1)
					st.c.metRetries[retryStraggler].Inc()
				}
			}
		}
		st.mu.Unlock()
		if len(bumped) > 0 {
			st.cond.Broadcast()
			if st.led != nil {
				for _, w := range bumped {
					st.led.RecordRedispatch(w[0], w[1], "", retryStraggler)
					st.c.ledgerRecords.Add(1)
					st.c.metLedgerRecords["redispatch"].Inc()
				}
			}
		}
	}
}

// attempt dispatches one claimed shard to one worker.  It returns false
// when the worker should be abandoned for this job (transport failure,
// refusal) — the shard is already requeued for the survivors.
func (c *Coordinator) attempt(st *jobState, m *member, rec *shardRec, pushed *bool) bool {
	st.mu.Lock()
	lo, hi, done := rec.lo, rec.hi, rec.done
	st.mu.Unlock()
	if done {
		st.release(rec)
		return true
	}
	sreq := ShardRequest{
		JobKey:      st.req.Key,
		DatasetID:   st.req.DatasetID,
		Labels:      st.req.Labels,
		Options:     st.req.Opt,
		Lo:          lo,
		Hi:          hi,
		TotalB:      st.plan.TotalB,
		Fingerprint: st.plan.Fingerprint,
		NProcs:      c.cfg.WorkerNProcs,
	}
	if d := c.cfg.LeaseDuration; d > 0 {
		sreq.LeaseMS = int64(d / time.Millisecond)
	}
	for {
		c.dispatched.Add(1)
		c.metDispatched.Inc()
		rpcStart := time.Now()
		resp, status, reason, err := c.postShard(st.ctx, m.addr, &sreq)
		c.metRPC.ObserveDuration(time.Since(rpcStart))
		switch {
		case err != nil:
			c.cfg.Logger.LogAttrs(st.ctx, slog.LevelWarn, "cluster_shard_failed",
				slog.String("worker", m.addr), slog.Int64("lo", lo), slog.Int64("hi", hi),
				slog.String("error", err.Error()))
			c.markDown(m)
			st.requeue(rec, retryError, m.addr)
			return false
		case status == http.StatusNotFound && reason == reasonUnknownDataset && !*pushed:
			// First 404 from this worker: push the .spb once, then
			// retry the same shard on it.  This is the only path that
			// ever moves matrix bytes.
			*pushed = true
			if perr := c.pushDataset(st.ctx, m.addr, st.req.DatasetID, st.req.Matrix); perr != nil {
				c.cfg.Logger.LogAttrs(st.ctx, slog.LevelWarn, "cluster_dataset_push_failed",
					slog.String("worker", m.addr), slog.String("error", perr.Error()))
				c.markDown(m)
				st.requeue(rec, retryError, m.addr)
				return false
			}
			c.pushes.Add(1)
			c.metPushes.Inc()
			continue
		case status == http.StatusOK:
			// Corruption is detected HERE, not in deliver(): deliver
			// silently discards a bad body without requeueing (that is
			// its duplicate-suppression contract), which would leave the
			// shard waiting on a straggler tick that never comes.  A
			// rejected delivery re-dispatches immediately instead.
			if resp.CRC64 != 0 && resp.CRC64 != resp.CRC() {
				c.cfg.Logger.LogAttrs(st.ctx, slog.LevelWarn, "cluster_shard_corrupt",
					slog.String("worker", m.addr), slog.Int64("lo", lo), slog.Int64("hi", hi))
				c.metShardCorrupt.Inc()
				c.markDown(m)
				st.requeue(rec, retryCorrupt, m.addr)
				return false
			}
			st.deliver(rec, resp, m.addr)
			return true
		default:
			// Refused: draining (503), fingerprint drift (409), or a
			// deterministic 4xx.  This worker is no use for this job;
			// requeue for the survivors.
			c.cfg.Logger.LogAttrs(st.ctx, slog.LevelWarn, "cluster_shard_refused",
				slog.String("worker", m.addr), slog.Int("status", status), slog.String("reason", reason))
			c.markDown(m)
			st.requeue(rec, retryError, m.addr)
			return false
		}
	}
}

// callCtx derives the per-RPC deadline context and pairs it with the
// timeout accounting: if the call dies of THIS deadline (not the job's
// own cancellation), the named cluster_rpc_timeout_total series ticks.
func (c *Coordinator) callCtx(ctx context.Context, call string, d time.Duration) (context.Context, context.CancelFunc, func(error)) {
	if d <= 0 {
		return ctx, func() {}, func(error) {}
	}
	tctx, cancel := context.WithTimeout(ctx, d)
	note := func(err error) {
		if err != nil && errors.Is(tctx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
			if m, ok := c.metTimeouts[call]; ok {
				m.Inc()
			}
		}
	}
	return tctx, cancel, note
}

// postShard performs one shard RPC under DispatchTimeout.  A non-200
// answer is returned as (nil, status, reason, nil); transport-level
// problems (including the deadline) as err.
func (c *Coordinator) postShard(ctx context.Context, addr string, sreq *ShardRequest) (*ShardResponse, int, string, error) {
	body, err := json.Marshal(sreq)
	if err != nil {
		return nil, 0, "", err
	}
	ctx, cancel, noteTimeout := c.callCtx(ctx, "shard", c.cfg.DispatchTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, "POST", addr+ShardPath, bytes.NewReader(body))
	if err != nil {
		return nil, 0, "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		noteTimeout(err)
		return nil, 0, "", err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(io.LimitReader(hresp.Body, 1<<16)).Decode(&eb)
		return nil, hresp.StatusCode, eb.Reason, nil
	}
	var resp ShardResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		noteTimeout(err)
		return nil, 0, "", fmt.Errorf("decoding shard response: %w", err)
	}
	return &resp, http.StatusOK, "", nil
}

// pushDataset uploads the matrix to a worker's public dataset API as
// .spb bytes, under PushTimeout.  The worker recomputes the content
// address from the received bytes and echoes it in the response; the
// coordinator requires the echo to equal the id its shard requests will
// name (want) — a disagreement means the payload was damaged in flight
// or the nodes hash differently, and every shard sent there would 404
// or, worse, compute on the wrong matrix.
func (c *Coordinator) pushDataset(ctx context.Context, addr, want string, m matrix.Matrix) error {
	if m.IsEmpty() {
		return fmt.Errorf("no coordinator-resident matrix to push")
	}
	var buf bytes.Buffer
	if err := matrix.Encode(&buf, m, nil, nil, matrix.RowMajor); err != nil {
		return err
	}
	ctx, cancel, noteTimeout := c.callCtx(ctx, "push", c.cfg.PushTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, "PUT", addr+datasetsPath, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", spbContentType)
	hresp, err := c.client.Do(hreq)
	if err != nil {
		noteTimeout(err)
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK && hresp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(io.LimitReader(hresp.Body, 1<<12))
		return fmt.Errorf("dataset push: %s: %s", hresp.Status, strings.TrimSpace(string(b)))
	}
	var echo struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 1<<16)).Decode(&echo); err != nil {
		noteTimeout(err)
		return fmt.Errorf("dataset push: decoding response: %w", err)
	}
	if want != "" && echo.ID != want {
		c.metPushEcho.Inc()
		return fmt.Errorf("dataset push: worker registered %q, want %q", echo.ID, want)
	}
	return nil
}
