package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"sprint/internal/cluster"
	"sprint/internal/core"
	"sprint/internal/faultinject"
	"sprint/internal/httpapi"
	"sprint/internal/jobs"
	"sprint/internal/metrics"
)

// leaseWorkerNode is a worker with tiny compute windows (fine-grained
// cancellation boundaries) for the lease tests.
func leaseWorkerNode(t *testing.T) *workerNode {
	t.Helper()
	srv, err := httpapi.New(httpapi.Config{Jobs: jobs.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorker(cluster.WorkerConfig{Source: srv.Manager(), Every: 5, NProcs: 1})
	srv.AttachCluster(w)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &workerNode{srv: srv, w: w, ts: ts}
}

// shardFingerprint reproduces the plan identity the coordinator would
// stamp on a shard request for this spec.
func shardFingerprint(t *testing.T, n *workerNode, id string, lab []int, opt core.Options) (uint64, int64) {
	t.Helper()
	prep, release, err := n.srv.Manager().PreparedDataset(id, lab, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	plan, err := core.PlanRun(prep, opt)
	if err != nil {
		t.Fatal(err)
	}
	return plan.Fingerprint, plan.TotalB
}

// postShard sends one raw shard RPC and decodes whatever comes back.
func postShard(t *testing.T, url string, req *cluster.ShardRequest) (int, *cluster.ShardResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url+cluster.ShardPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode == http.StatusOK {
		var resp cluster.ShardResponse
		if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return hr.StatusCode, &resp, ""
	}
	var eb struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	_ = json.NewDecoder(hr.Body).Decode(&eb)
	return hr.StatusCode, nil, eb.Reason
}

// TestWorkerLeaseExpiryParksAndResumes pins the orphan-shard lease
// protocol, expiry side: a shard granted a lease that nobody renews is
// cancelled at a window boundary, its prefix parked in retention, and a
// later re-probe of the same window resumes from the parked prefix —
// the final counts bitwise identical to an uninterrupted compute.
func TestWorkerLeaseExpiryParksAndResumes(t *testing.T) {
	x := synthX(120, 20, 51)
	lab := make([]int, 20)
	for i := 10; i < 20; i++ {
		lab[i] = 1
	}
	opt := core.Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 60000, Seed: 17}

	n := leaseWorkerNode(t)
	info, _, err := n.srv.Manager().PutDataset(x)
	if err != nil {
		t.Fatal(err)
	}
	fp, totalB := shardFingerprint(t, n, info.ID, lab, opt)
	req := &cluster.ShardRequest{
		JobKey: "lease-expiry", DatasetID: info.ID, Labels: lab, Options: opt,
		Lo: 0, Hi: totalB, TotalB: totalB, Fingerprint: fp, NProcs: 1,
		LeaseMS: 40, // expires long before the ~60000-permutation window finishes
	}
	code, part, reason := postShard(t, n.ts.URL, req)
	if code != http.StatusOK || part == nil {
		// The lease can lapse before the first window boundary on a
		// heavily loaded host; then the worker refuses with the lease
		// reason instead of shipping a prefix.
		if reason != "lease_lapsed" {
			t.Fatalf("lapsed shard: status %d reason %q, want partial or lease_lapsed", code, reason)
		}
	} else if !part.Partial || part.Next <= part.Lo || part.Next >= totalB {
		t.Fatalf("lapsed shard returned Partial=%v [%d,%d) of %d, want a strict prefix",
			part.Partial, part.Lo, part.Next, totalB)
	}
	wi := n.w.Info().Worker
	if wi.LeaseExpired < 1 {
		t.Fatalf("lease_expired = %d, want >= 1", wi.LeaseExpired)
	}
	if part != nil && wi.ShardsRetained < 1 {
		t.Fatalf("shards_retained = %d after a parked partial, want >= 1", wi.ShardsRetained)
	}

	// Re-probe the identical window without a lease: the parked prefix
	// seeds the compute and only the remainder runs.
	req.LeaseMS = 0
	code, full, reason := postShard(t, n.ts.URL, req)
	if code != http.StatusOK || full == nil {
		t.Fatalf("re-probe: status %d reason %q", code, reason)
	}
	if full.Partial || full.Next != totalB || full.B != totalB {
		t.Fatalf("re-probe returned Partial=%v Next=%d B=%d, want the complete window", full.Partial, full.Next, full.B)
	}
	if part != nil && n.w.Info().Worker.RetainedResumes != 1 {
		t.Fatalf("retained_resumes = %d, want 1", n.w.Info().Worker.RetainedResumes)
	}

	// Bitwise identity vs an uninterrupted compute on a fresh worker.
	clean := leaseWorkerNode(t)
	if _, _, err := clean.srv.Manager().PutDataset(x); err != nil {
		t.Fatal(err)
	}
	req2 := *req
	req2.LeaseMS = 0
	code, want, reason := postShard(t, clean.ts.URL, &req2)
	if code != http.StatusOK || want == nil {
		t.Fatalf("clean compute: status %d reason %q", code, reason)
	}
	if full.CRC64 != want.CRC64 || full.B != want.B {
		t.Fatalf("resumed shard CRC %016x B %d != clean %016x B %d", full.CRC64, full.B, want.CRC64, want.B)
	}
	for i := range want.Raw {
		if full.Raw[i] != want.Raw[i] || full.Adj[i] != want.Adj[i] {
			t.Fatalf("count[%d] raw/adj (%d,%d) != clean (%d,%d)", i, full.Raw[i], full.Adj[i], want.Raw[i], want.Adj[i])
		}
	}
}

// TestWorkerAuthoritativeDisownParksAndRetains pins the disown side: an
// authoritative lease heartbeat that does NOT list an in-flight shard's
// fingerprint cancels the compute immediately — but never purges
// retention, because a parked prefix is exactly what a restarted
// coordinator comes back for.
func TestWorkerAuthoritativeDisownParksAndRetains(t *testing.T) {
	x := synthX(120, 20, 52)
	lab := make([]int, 20)
	for i := 10; i < 20; i++ {
		lab[i] = 1
	}
	opt := core.Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 60000, Seed: 19}

	n := leaseWorkerNode(t)
	info, _, err := n.srv.Manager().PutDataset(x)
	if err != nil {
		t.Fatal(err)
	}
	fp, totalB := shardFingerprint(t, n, info.ID, lab, opt)
	req := &cluster.ShardRequest{
		JobKey: "disown", DatasetID: info.ID, Labels: lab, Options: opt,
		Lo: 0, Hi: totalB, TotalB: totalB, Fingerprint: fp, NProcs: 1,
		LeaseMS: 60000, // generous: only the disown may stop this compute
	}
	type outcome struct {
		code   int
		resp   *cluster.ShardResponse
		reason string
	}
	done := make(chan outcome, 1)
	go func() {
		c, r, reason := postShard(t, n.ts.URL, req)
		done <- outcome{c, r, reason}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for n.w.Info().Worker.ShardsActive == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shard never started computing")
		}
		runtime.Gosched()
	}

	// The coordinator of record says: my complete active set is empty.
	ack := struct {
		Renewed  int `json:"renewed"`
		Disowned int `json:"disowned"`
	}{}
	hb := []byte(`{"fingerprints":[],"lease_ms":0,"authoritative":true}`)
	hr, err := http.Post(n.ts.URL+cluster.LeasesPath, "application/json", bytes.NewReader(hb))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hr.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if ack.Disowned != 1 {
		t.Fatalf("heartbeat ack disowned = %d, want 1", ack.Disowned)
	}

	out := <-done
	if out.code == http.StatusOK {
		if !out.resp.Partial {
			t.Fatal("disowned shard returned a complete window; the cancel never landed")
		}
	} else if out.reason != "lease_lapsed" {
		t.Fatalf("disowned shard: status %d reason %q", out.code, out.reason)
	}
	wi := n.w.Info().Worker
	if wi.LeaseDisowned != 1 {
		t.Fatalf("lease_disowned = %d, want 1", wi.LeaseDisowned)
	}
	if out.resp != nil && wi.ShardsRetained < 1 {
		t.Fatal("disown purged retention; parked results must survive a disown")
	}

	// The window is still recoverable: a re-probe completes it.
	req.LeaseMS = 0
	code, full, reason := postShard(t, n.ts.URL, req)
	if code != http.StatusOK || full == nil || full.Partial {
		t.Fatalf("post-disown re-probe: status %d reason %q", code, reason)
	}
	if full.B != totalB {
		t.Fatalf("post-disown window B = %d, want %d", full.B, totalB)
	}
}

// TestClusterCoordinatorRestartReplaysLedger is the in-process tentpole
// check: a coordinator manager killed mid-distributed-job is rebuilt
// over the same journal, replays the merge ledger, re-dispatches ONLY
// the undelivered windows, collects parked worker results, and finishes
// with a byte-for-byte identical answer — journaled deliveries are
// never recomputed.
func TestClusterCoordinatorRestartReplaysLedger(t *testing.T) {
	x := synthX(120, 20, 11)
	lab := make([]int, 20)
	for i := 10; i < 20; i++ {
		lab[i] = 1
	}
	opt := core.Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 150000, Seed: 13}
	want := standalone(t, x, lab, opt)

	// One worker: every re-dispatch re-probes the node holding the parked
	// results, so the retention path is exercised deterministically.
	w1 := newWorkerNode(t, nil)
	if _, _, err := w1.srv.Manager().PutDataset(x); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	jd := filepath.Join(dir, "journal")
	dd := filepath.Join(dir, "datasets")
	mkcfg := func(reg *metrics.Registry) cluster.CoordinatorConfig {
		return cluster.CoordinatorConfig{
			Workers:         []string{w1.ts.URL},
			ShardsPerWorker: 6,
			StragglerAfter:  -1, // any retry below must mean real recomputation
			Metrics:         reg,
		}
	}
	coord1 := cluster.NewCoordinator(mkcfg(metrics.New()))
	m1, err := jobs.NewManager(jobs.Config{Workers: 1, Distributor: coord1, JournalDir: jd, DatasetDir: dd})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m1.Close) // idempotent; normally closed mid-test below

	dsInfo, _, err := m1.PutDataset(x)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(jobs.Spec{DatasetID: dsInfo.ID, Labels: lab, Opt: opt, NProcs: 1, Every: 50})
	if err != nil {
		t.Fatal(err)
	}

	// Kill once the ledger holds the plan plus at least one delivery AND
	// a worker is mid-shard (so the restart exercises both the replayed
	// merge and the parked/in-flight collection paths).
	deadline := time.Now().Add(30 * time.Second)
	armed := false
	for time.Now().Before(deadline) {
		ci := coord1.Info().Coordinator
		active := w1.w.Info().Worker.ShardsActive
		if ci.LedgerRecords >= 2 && active > 0 {
			armed = true
			break
		}
		if got, err := m1.Get(st.ID); err == nil && got.State.Terminal() {
			t.Skip("job finished before the kill window opened")
		}
		runtime.Gosched()
	}
	if !armed {
		t.Fatal("ledger never reached plan+delivery with a shard in flight")
	}
	m1.Close() // the crash: running job aborted, its cancellation NOT journaled

	reg2 := metrics.New()
	coord2 := cluster.NewCoordinator(mkcfg(reg2))
	m2, err := jobs.NewManager(jobs.Config{Workers: 1, Distributor: coord2, JournalDir: jd, DatasetDir: dd})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.Close)

	// Same id, new life: recovery re-admits in the background, so Get
	// may briefly miss while replay runs.
	deadline = time.Now().Add(60 * time.Second)
	var fin jobs.Status
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished after restart", st.ID)
		}
		got, err := m2.Get(st.ID)
		if err == nil && got.State.Terminal() {
			fin = got
			break
		}
		time.Sleep(time.Millisecond)
	}
	if fin.State != jobs.Done {
		t.Fatalf("replayed job %s: state %s: %s", st.ID, fin.State, fin.Error)
	}
	res, _, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameRes(t, "coordinator-restart", res, want)

	ci := coord2.Info().Coordinator
	if ci.LedgerJobsReplayed != 1 {
		t.Errorf("ledger_jobs_replayed = %d, want 1", ci.LedgerJobsReplayed)
	}
	if ci.LedgerWindowsReplayed < 1 {
		t.Errorf("ledger_windows_replayed = %d, want >= 1 (journaled deliveries merged without dispatch)", ci.LedgerWindowsReplayed)
	}
	if ci.JobsDistributed != 1 || ci.JobsDeclined != 0 {
		t.Errorf("distributed=%d declined=%d, want 1/0", ci.JobsDistributed, ci.JobsDeclined)
	}
	// Zero recomputation of delivered shards: with stragglers disabled, a
	// retry would mean a delivered window went back to a worker.
	if ci.ShardRetries != 0 {
		t.Errorf("shard_retries = %d after restart, want 0 (no delivered window recomputed)", ci.ShardRetries)
	}
	if ci.LedgerInvalid != 0 {
		t.Errorf("ledger_invalid = %d, want 0", ci.LedgerInvalid)
	}
	wi := w1.w.Info().Worker
	if wi.RetainedHits+wi.RetainedResumes+wi.InflightJoins < 1 {
		t.Errorf("no retained hit, resume or in-flight join on the worker after restart (hits=%d resumes=%d joins=%d)",
			wi.RetainedHits, wi.RetainedResumes, wi.InflightJoins)
	}
}

// TestClusterJoinMidJobOfferedImmediately pins the rejoin fast path: a
// worker that registers while a distributed job still has queued
// windows is put to work by the join heartbeat itself, not left idle
// until some later retry tick.
func TestClusterJoinMidJobOfferedImmediately(t *testing.T) {
	x := synthX(120, 20, 71)
	lab := make([]int, 20)
	for i := 10; i < 20; i++ {
		lab[i] = 1
	}
	opt := core.Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 100000, Seed: 23}
	want := standalone(t, x, lab, opt)

	// One deliberately slow static worker so the job outlives the join.
	slow := leaseWorkerNode(t)
	late := newWorkerNode(t, nil)
	for _, n := range []*workerNode{slow, late} {
		if _, _, err := n.srv.Manager().PutDataset(x); err != nil {
			t.Fatal(err)
		}
	}
	coord, cm := coordManager(t, cluster.CoordinatorConfig{
		Workers:         []string{slow.ts.URL},
		ShardsPerWorker: 8,
	})
	// The coordinator's control API, as the daemon would mount it.
	mux := http.NewServeMux()
	for _, rt := range coord.Routes() {
		mux.HandleFunc(rt.Method+" "+rt.Pattern, rt.Handler)
	}
	cts := httptest.NewServer(mux)
	t.Cleanup(cts.Close)

	done := make(chan *core.Result, 1)
	go func() { done <- runOn(t, cm, x, lab, opt) }()

	deadline := time.Now().Add(30 * time.Second)
	for coord.Info().Coordinator.ShardsDispatched == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never dispatched a shard")
		}
		runtime.Gosched()
	}
	hb := []byte(fmt.Sprintf(`{"addr":%q}`, late.ts.URL))
	hr, err := http.Post(cts.URL+cluster.WorkersPath, "application/json", bytes.NewReader(hb))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK && hr.StatusCode != http.StatusNoContent {
		t.Fatalf("join: status %d", hr.StatusCode)
	}

	got := <-done
	sameRes(t, "join-mid-job", got, want)
	if n := late.w.Info().Worker.ShardsServed; n < 1 {
		t.Errorf("late-joining worker served %d shards; the join heartbeat should have offered queued windows", n)
	}
}

// TestClusterLedgerChaosSweep runs journaled distributed jobs under a
// deterministic fault storm — dropped and corrupted shard RPCs, failing
// lease heartbeats, failing journal appends — across several seeds.
// Whatever the storm does, the answer must stay bitwise identical to a
// clean standalone run; durability degrades before correctness does.
func TestClusterLedgerChaosSweep(t *testing.T) {
	x := synthX(25, 12, 61)
	lab := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	opt := core.Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 2000, Seed: 29}
	want := standalone(t, x, lab, opt)

	for _, seed := range []int{7, 19, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w1 := newWorkerNode(t, nil)
			w2 := newWorkerNode(t, nil)
			for _, n := range []*workerNode{w1, w2} {
				if _, _, err := n.srv.Manager().PutDataset(x); err != nil {
					t.Fatal(err)
				}
			}
			inj, err := faultinject.Parse(fmt.Sprintf(
				"seed=%d;rpc.shard:error:p=0.15;rpc.shard.resp:corrupt:p=0.05;rpc.lease:error:p=0.5;journal.append:error:n=2", seed))
			if err != nil {
				t.Fatal(err)
			}
			faultinject.Install(inj)
			defer faultinject.Disable()

			dir := t.TempDir()
			coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
				Workers:         []string{w1.ts.URL, w2.ts.URL},
				ShardsPerWorker: 4,
				DownFor:         50 * time.Millisecond,
				LeaseDuration:   time.Second,
				Client:          &http.Client{Transport: &faultinject.Transport{}},
				Metrics:         metrics.New(),
			})
			m, err := jobs.NewManager(jobs.Config{
				Workers: 1, Distributor: coord,
				JournalDir: filepath.Join(dir, "journal"),
				DatasetDir: filepath.Join(dir, "datasets"),
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(m.Close)

			got := runOn(t, m, x, lab, opt)
			sameRes(t, fmt.Sprintf("chaos seed=%d", seed), got, want)
			t.Logf("seed=%d: injector fired %v; coordinator %+v", seed, inj.Stats(), coord.Info().Coordinator)
		})
	}
}
