package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"testing"

	"sprint/internal/cluster"
	"sprint/internal/core"
	"sprint/internal/jobs"
	"sprint/internal/matrix"
)

// seqClusterCase builds a sequential submission whose merged counts are
// guaranteed to satisfy the whole-job stopping rule well before the
// planned B: 120 null rows at B=100000, where the empirical-Bernstein
// radius drops under the default 0.02 tolerance by ~25k merged
// permutations even for worst-case p̂ = 0.5.  20 samples (10v10) keeps
// C(20,10) = 184756 above B, so the plan stays a sampled run.
func seqClusterCase() (matrix.Matrix, []int, core.Options) {
	x := synthX(120, 20, 17)
	lab := make([]int, 20)
	for i := 10; i < 20; i++ {
		lab[i] = 1
	}
	opt := core.Options{
		Test: "t", Side: "abs", FixedSeedSampling: "y",
		B: 100000, Seed: 23,
		Mode: core.ModeSequential,
	}
	return x, lab, opt
}

// TestClusterSequentialEarlyStop drives a sequential job through a
// coordinator and two workers: shards run exact, the coordinator applies
// the stopping rule to its merge ledger, and the job finishes with fewer
// merged permutations than planned while every p-value stays within the
// tolerance of a full-length exact run.
func TestClusterSequentialEarlyStop(t *testing.T) {
	x, lab, opt := seqClusterCase()
	w1 := newWorkerNode(t, nil)
	w2 := newWorkerNode(t, nil)
	for _, w := range []*workerNode{w1, w2} {
		if _, _, err := w.srv.Manager().PutDataset(x); err != nil {
			t.Fatal(err)
		}
	}
	coord, cm := coordManager(t, cluster.CoordinatorConfig{Workers: []string{w1.ts.URL, w2.ts.URL}})

	got := runOn(t, cm, x, lab, opt)
	if !got.Sequential() || got.PlannedB != opt.B {
		t.Fatalf("cluster result not sequential: mode=%q plannedB=%d", got.Mode, got.PlannedB)
	}
	if got.B >= opt.B {
		t.Fatalf("merged %d of %d planned permutations — the stopping rule never fired", got.B, opt.B)
	}
	if got.SeqPermsSaved() <= 0 {
		t.Fatalf("SeqPermsSaved = %d on an early-stopped job", got.SeqPermsSaved())
	}
	// The coordinator finalizes every row at the uniform merged count.
	for i, be := range got.BEff {
		if math.IsNaN(got.Stat[i]) {
			if be != 0 {
				t.Fatalf("BEff[%d] = %d for an invalid row", i, be)
			}
			continue
		}
		if be != got.B {
			t.Fatalf("BEff[%d] = %d, want uniform merged count %d", i, be, got.B)
		}
	}
	info := coord.Info().Coordinator
	if info.SeqEarlyStops != 1 {
		t.Errorf("coordinator SeqEarlyStops = %d, want 1", info.SeqEarlyStops)
	}
	if info.JobsDistributed != 1 {
		t.Errorf("jobs distributed = %d, want 1", info.JobsDistributed)
	}

	// Accuracy contract: within the confidence-sequence tolerance of an
	// exact full-length run, with the order and statistics identical.
	exactOpt := opt
	exactOpt.Mode = core.ModeExact
	want := standalone(t, x, lab, exactOpt)
	const bound = 2 * 0.02
	for i := range want.RawP {
		if math.IsNaN(want.RawP[i]) {
			continue
		}
		if d := math.Abs(want.RawP[i] - got.RawP[i]); d > bound {
			t.Fatalf("RawP[%d]: cluster sequential %v vs exact %v (Δ=%v > %v)",
				i, got.RawP[i], want.RawP[i], d, bound)
		}
		if d := math.Abs(want.AdjP[i] - got.AdjP[i]); d > bound {
			t.Fatalf("AdjP[%d]: cluster sequential %v vs exact %v (Δ=%v > %v)",
				i, got.AdjP[i], want.AdjP[i], d, bound)
		}
		if math.Float64bits(want.Stat[i]) != math.Float64bits(got.Stat[i]) {
			t.Fatalf("Stat[%d] differs between modes", i)
		}
	}
	for i := range want.Order {
		if want.Order[i] != got.Order[i] {
			t.Fatalf("significance order diverged at %d", i)
		}
	}
}

// TestClusterSequentialWorkerKill slams one worker's connection on every
// shard RPC during a sequential job: the survivor and the local fallback
// absorb its spans, and the job still completes with valid sequential
// metadata (and, when the observed span lands before the last merge, an
// early stop).
func TestClusterSequentialWorkerKill(t *testing.T) {
	x, lab, opt := seqClusterCase()
	kill := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == "POST" && r.URL.Path == cluster.ShardPath {
				if hj, ok := w.(http.Hijacker); ok {
					if conn, _, err := hj.Hijack(); err == nil {
						conn.Close()
					}
				}
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	dead := newWorkerNode(t, kill)
	live := newWorkerNode(t, nil)
	for _, w := range []*workerNode{dead, live} {
		if _, _, err := w.srv.Manager().PutDataset(x); err != nil {
			t.Fatal(err)
		}
	}
	coord, cm := coordManager(t, cluster.CoordinatorConfig{
		Workers: []string{dead.ts.URL, live.ts.URL},
	})

	got := runOn(t, cm, x, lab, opt)
	if !got.Sequential() || got.PlannedB != opt.B || got.B > opt.B {
		t.Fatalf("result metadata: mode=%q B=%d plannedB=%d", got.Mode, got.B, got.PlannedB)
	}
	info := coord.Info().Coordinator
	if info.ShardRetries < 1 {
		t.Errorf("shard retries = %d, want >= 1 after a killed worker", info.ShardRetries)
	}
	if got.B == opt.B {
		// Requeue shuffling can land the observed span last, in which
		// case the rule has no merge left to stop; identity still holds.
		t.Log("observed span merged last: job ran to the full plan")
	} else if info.SeqEarlyStops != 1 {
		t.Errorf("early-stopped job but SeqEarlyStops = %d", info.SeqEarlyStops)
	}
	exactOpt := opt
	exactOpt.Mode = core.ModeExact
	want := standalone(t, x, lab, exactOpt)
	const bound = 2 * 0.02
	for i := range want.RawP {
		if math.IsNaN(want.RawP[i]) {
			continue
		}
		if math.Abs(want.RawP[i]-got.RawP[i]) > bound || math.Abs(want.AdjP[i]-got.AdjP[i]) > bound {
			t.Fatalf("row %d drifted beyond tolerance after failover: raw %v vs %v, adj %v vs %v",
				i, got.RawP[i], want.RawP[i], got.AdjP[i], want.AdjP[i])
		}
	}
}

// TestClusterSequentialResumeWithFrozenRowsDistributes pins the handoff
// contract: a checkpoint that already froze rows under local per-row
// stopping now distributes — the coordinator pins the frozen rows
// (counts and effective B stay at the checkpoint values, masked out of
// every merge) while the active rows keep accumulating across workers.
// Before this, any frozen row forced the whole resume back onto the
// local path.
func TestClusterSequentialResumeWithFrozenRowsDistributes(t *testing.T) {
	x, lab, opt := seqClusterCase()
	// Boost a few rows far from null so they freeze early in the local
	// prefix run (a near-zero p-value settles within a couple of
	// windows), giving the checkpoint genuinely frozen rows.
	for r := 0; r < 5; r++ {
		for j := 10; j < 20; j++ {
			x.Data[r*x.Cols+j] += 4
		}
	}
	canon, err := core.CanonicalOptions(opt)
	if err != nil {
		t.Fatal(err)
	}

	// Run the local sequential engine until per-row stopping has frozen
	// rows, then cancel: the captured checkpoint is the exact state a
	// crashed or migrated local job would hand the cluster.
	ctx, cancel := context.WithCancel(context.Background())
	var last *core.Checkpoint
	_, err = core.RunMatrix(x, lab, canon, core.RunControl{
		Ctx: ctx, NProcs: 1, Every: 2048,
		Save: func(c *core.Checkpoint) error {
			for _, b := range c.BEff {
				if b != 0 {
					last = c
					cancel()
					break
				}
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) || last == nil {
		t.Fatalf("prefix run: err=%v, frozen checkpoint captured=%v", err, last != nil)
	}
	if last.Next >= int64(opt.B) {
		t.Fatalf("checkpoint already complete: next=%d of %d", last.Next, opt.B)
	}
	frozenRows := 0
	for _, b := range last.BEff {
		if b != 0 {
			frozenRows++
		}
	}

	w1 := newWorkerNode(t, nil)
	w2 := newWorkerNode(t, nil)
	for _, w := range []*workerNode{w1, w2} {
		if _, _, err := w.srv.Manager().PutDataset(x); err != nil {
			t.Fatal(err)
		}
	}
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{Workers: []string{w1.ts.URL, w2.ts.URL}})
	p, err := core.Prepare(x, lab, canon)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.RunJob(context.Background(), jobs.DistRequest{
		Key: "k", DatasetID: jobs.DatasetDigest(x), Matrix: x,
		Labels: lab, Opt: canon, Prepared: p,
		Resume: last, NProcs: 1, Every: 50,
	})
	if err != nil {
		t.Fatalf("frozen-row resume declined or failed: %v", err)
	}
	info := coord.Info().Coordinator
	if info.JobsDistributed != 1 || info.JobsDeclined != 0 {
		t.Errorf("distributed=%d declined=%d, want 1/0", info.JobsDistributed, info.JobsDeclined)
	}

	// Frozen rows stay pinned at the checkpoint's effective counts; the
	// active rows finalize at the uniform merged count.
	if !got.Sequential() || got.B <= last.Done {
		t.Fatalf("result: mode=%q B=%d (checkpoint done=%d)", got.Mode, got.B, last.Done)
	}
	pinned := 0
	for i, be := range last.BEff {
		if be != 0 {
			if got.BEff[i] != be {
				t.Fatalf("BEff[%d] = %d, want pinned checkpoint value %d", i, got.BEff[i], be)
			}
			pinned++
		} else if !math.IsNaN(got.Stat[i]) && got.BEff[i] != got.B {
			t.Fatalf("BEff[%d] = %d on an active row, want uniform %d", i, got.BEff[i], got.B)
		}
	}
	if pinned != frozenRows || pinned == 0 {
		t.Fatalf("pinned %d rows, checkpoint froze %d", pinned, frozenRows)
	}

	// Accuracy: within the confidence-sequence tolerance of an exact
	// full-length run, statistics and order identical.
	exactOpt := opt
	exactOpt.Mode = core.ModeExact
	want := standalone(t, x, lab, exactOpt)
	const bound = 2 * 0.02
	for i := range want.RawP {
		if math.IsNaN(want.RawP[i]) {
			continue
		}
		if d := math.Abs(want.RawP[i] - got.RawP[i]); d > bound {
			t.Fatalf("RawP[%d]: frozen resume %v vs exact %v (Δ=%v > %v)",
				i, got.RawP[i], want.RawP[i], d, bound)
		}
		if math.Float64bits(want.Stat[i]) != math.Float64bits(got.Stat[i]) {
			t.Fatalf("Stat[%d] differs from exact", i)
		}
	}
}

// TestWorkerRefusesSequentialShard pins the worker-side guard: a shard
// request that still carries sequential mode (a buggy or stale
// coordinator) is a loud 400, not a confusing engine error.
func TestWorkerRefusesSequentialShard(t *testing.T) {
	w := newWorkerNode(t, nil)
	_, lab, opt := seqClusterCase()
	body, err := json.Marshal(cluster.ShardRequest{
		JobKey: "k", DatasetID: "missing", Labels: lab, Options: opt,
		Lo: 0, Hi: 1000, TotalB: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(w.ts.URL+cluster.ShardPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sequential shard request answered %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error == "" {
		t.Fatal("400 without an error message")
	}
}
