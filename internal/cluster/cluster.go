// Package cluster distributes the permutation space of pmaxT analyses
// across pmaxtd daemons: the service-level reproduction of the paper's
// MPI Step 4a/4b.  A coordinator partitions [0, B) into deterministic
// contiguous windows (the paper's Figure-2 rank chunks), fans the
// windows out to worker daemons over an internal HTTP shard API, and
// merges the per-shard max-T exceedance counts associatively, so the
// N-node result is bitwise identical to a 1-node run for every test,
// kernel and enumeration order.
//
// The design leans on three properties the engine already guarantees:
//
//   - Determinism of the slice: every permutation generator enumerates
//     one sequence fixed by (options, design), and any [lo, hi) slice
//     of it can be produced on any node (core.RunShard).  The plan
//     fingerprint — the same one checkpoints carry — is echoed through
//     every shard RPC, so two nodes can never merge counts from
//     different analyses or engine versions.
//   - Associative merge: exceedance counts are int64 sums over disjoint
//     index ranges; merging in any arrival order yields the same
//     vectors, provided each index is counted exactly once.  The
//     coordinator's shard ledger enforces exactly-once by construction
//     (duplicate and stale deliveries are discarded whole).
//   - Content-addressed data: no matrix bytes ride the shard path.
//     Workers resolve the dataset by its digest from their own registry
//     and share one preparation across all shards of all jobs on it;
//     only a worker that answers 404 gets the .spb pushed once.
//
// Failure model: a shard dispatch that errors is retried on another
// worker (bounded attempts); a worker that drains mid-shard returns a
// partial result — its counts over the completed window prefix, the
// same state a checkpoint would hold — which the coordinator merges
// before re-dispatching only the remainder; a straggling shard is
// speculatively re-dispatched and the first complete delivery wins.
// When every worker is gone the coordinator computes the remaining
// shards itself, so a job admitted to the cluster always converges to
// the bit-exact result unless cancelled.
package cluster

import (
	"encoding/binary"
	"hash/crc64"
	"net/http"
	"time"

	"sprint/internal/core"
)

// Internal API paths.  The shard and membership routes live under
// /cluster/v1 on the same instrumented mux as the public API; dataset
// pushes reuse the public /v1/datasets PUT.
const (
	ShardPath   = "/cluster/v1/shards"
	PingPath    = "/cluster/v1/ping"
	WorkersPath = "/cluster/v1/workers"
	LeasesPath  = "/cluster/v1/leases"

	datasetsPath   = "/v1/datasets"
	spbContentType = "application/x-sprint-spb"
)

// Route is one HTTP route a cluster node mounts on the daemon's mux.
type Route struct {
	Method  string
	Pattern string
	Handler http.HandlerFunc
}

// Node is the role-independent surface the HTTP layer mounts and
// reports: a Coordinator or a Worker.
type Node interface {
	// Role is "coordinator" or "worker".
	Role() string
	// Routes lists the node's internal API routes.
	Routes() []Route
	// Info snapshots the node's cluster state for /v1/stats and
	// /healthz.
	Info() Info
}

// Info is a cluster-state snapshot, additive to the existing stats.
type Info struct {
	Role        string           `json:"role"`
	Coordinator *CoordinatorInfo `json:"coordinator,omitempty"`
	Worker      *WorkerNodeInfo  `json:"worker,omitempty"`
}

// CoordinatorInfo reports the coordinator's membership and shard
// traffic.
type CoordinatorInfo struct {
	Workers          []MemberInfo `json:"workers"`
	WorkersLive      int          `json:"workers_live"`
	ShardsInFlight   int          `json:"shards_in_flight"`
	ShardsDispatched int64        `json:"shards_dispatched"`
	ShardRetries     int64        `json:"shard_retries"`
	DatasetPushes    int64        `json:"dataset_pushes"`
	JobsDistributed  int64        `json:"jobs_distributed"`
	JobsDeclined     int64        `json:"jobs_declined"`
	LocalShards      int64        `json:"local_shards"`
	SeqEarlyStops    int64        `json:"seq_early_stops,omitempty"`
	// Durable-ledger and lease traffic (omitted when idle).
	LedgerRecords         int64 `json:"ledger_records,omitempty"`
	LedgerJobsReplayed    int64 `json:"ledger_jobs_replayed,omitempty"`
	LedgerWindowsReplayed int64 `json:"ledger_windows_replayed,omitempty"`
	LedgerInvalid         int64 `json:"ledger_invalid,omitempty"`
	LeaseRenewals         int64 `json:"lease_renewals,omitempty"`
}

// MemberInfo is one worker as the coordinator sees it.
type MemberInfo struct {
	Addr     string    `json:"addr"`
	Live     bool      `json:"live"`
	Static   bool      `json:"static"`
	LastSeen time.Time `json:"last_seen,omitzero"`
}

// WorkerNodeInfo reports a worker's shard service state.
type WorkerNodeInfo struct {
	Coordinator   string `json:"coordinator,omitempty"`
	Draining      bool   `json:"draining"`
	ShardsActive  int    `json:"shards_active"`
	ShardsServed  int64  `json:"shards_served"`
	ShardsPartial int64  `json:"shards_partial"`
	ShardsRefused int64  `json:"shards_refused"`
	// Result retention and lease state (omitted when idle).
	ShardsRetained  int   `json:"shards_retained,omitempty"`
	RetainedHits    int64 `json:"retained_hits,omitempty"`
	RetainedResumes int64 `json:"retained_resumes,omitempty"`
	InflightJoins   int64 `json:"inflight_joins,omitempty"`
	LeaseRenewed    int64 `json:"lease_renewed,omitempty"`
	LeaseExpired    int64 `json:"lease_expired,omitempty"`
	LeaseDisowned   int64 `json:"lease_disowned,omitempty"`
}

// ShardRequest asks a worker to compute exceedance counts over the
// global permutation index range [Lo, Hi) of one analysis.  The dataset
// travels by content address only; Options is the canonical option set
// and Fingerprint the coordinator's plan fingerprint, which the worker
// must reproduce bit-for-bit before computing (engine or option drift
// across nodes fails loudly instead of merging wrong counts).
type ShardRequest struct {
	JobKey      string       `json:"job_key"`
	DatasetID   string       `json:"dataset_id"`
	Labels      []int        `json:"labels"`
	Options     core.Options `json:"options"`
	Lo          int64        `json:"lo"`
	Hi          int64        `json:"hi"`
	TotalB      int64        `json:"total_b"`
	Fingerprint uint64       `json:"fingerprint"`
	// NProcs caps the worker-side rank count for this shard; 0 uses the
	// worker's default.
	NProcs int `json:"nprocs,omitempty"`
	// LeaseMS grants the worker a compute lease: the shard may keep
	// computing for this many milliseconds after its requester vanishes,
	// on the expectation that a restarted coordinator will re-probe and
	// collect the result from retention.  Renewed via LeasesPath; 0 ties
	// the compute to the request context (pre-lease behavior).
	LeaseMS int64 `json:"lease_ms,omitempty"`
}

// ShardResponse carries a shard's counts back.  Counts cover [Lo, Next);
// Partial marks a drained worker's prefix hand-off (Next < Hi), whose
// remainder [Next, Hi) the coordinator re-dispatches.  CRC64 is the
// end-to-end integrity checksum over the count-bearing fields (see CRC):
// the worker stamps it after computing, the coordinator re-derives it
// after decoding, and a mismatch — a bit flipped anywhere between the
// worker's kernel and the coordinator's merge — rejects the delivery
// whole and re-dispatches the shard.  Zero means "no checksum" so
// pre-CRC nodes interoperate during a rolling upgrade.
type ShardResponse struct {
	Lo          int64   `json:"lo"`
	Next        int64   `json:"next"`
	Hi          int64   `json:"hi"`
	TotalB      int64   `json:"total_b"`
	Complete    bool    `json:"complete"`
	Fingerprint uint64  `json:"fingerprint"`
	Partial     bool    `json:"partial"`
	B           int64   `json:"b"`
	Raw         []int64 `json:"raw"`
	Adj         []int64 `json:"adj"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	CRC64       uint64  `json:"crc64,omitempty"`
}

// shardCRCTable is the CRC64 polynomial shared with the checkpoint and
// journal frames (ECMA).
var shardCRCTable = crc64.MakeTable(crc64.ECMA)

// CRC derives the response's integrity checksum: CRC64-ECMA over the
// little-endian encoding of every field that feeds the merge — the
// range, the plan identity and the count vectors (length-prefixed, so
// boundary shifts between Raw and Adj cannot cancel out).  ElapsedMS is
// excluded: it is telemetry, and a float would round-trip JSON less
// predictably than the integers.
func (r *ShardResponse) CRC() uint64 {
	h := crc64.New(shardCRCTable)
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(r.Lo))
	put(uint64(r.Next))
	put(uint64(r.Hi))
	put(uint64(r.TotalB))
	put(uint64(r.B))
	put(r.Fingerprint)
	put(uint64(len(r.Raw)))
	for _, v := range r.Raw {
		put(uint64(v))
	}
	put(uint64(len(r.Adj)))
	for _, v := range r.Adj {
		put(uint64(v))
	}
	return h.Sum64()
}

// errorBody is the JSON error payload of the internal API, with a
// machine-readable reason the coordinator switches on.
type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// Machine-readable error reasons.
const (
	reasonUnknownDataset = "unknown_dataset"
	reasonDraining       = "draining"
	reasonFingerprint    = "fingerprint_mismatch"
	reasonLease          = "lease_lapsed"
)

// joinBody is the worker registration payload.
type joinBody struct {
	Addr string `json:"addr"`
}

// leaseBody is the coordinator's lease heartbeat: every in-flight shard
// whose plan fingerprint appears in Fingerprints has its lease extended
// by LeaseMS.  Authoritative means the list is the coordinator's
// complete active set, so a shard fingerprint NOT listed is disowned —
// the worker cancels it, parks the partial prefix in retention, and
// frees the CPU.  Retention itself is never purged by a disown: a
// restarting coordinator renews leases before its ledger replay admits
// every job, and parked results are exactly what the replay collects.
type leaseBody struct {
	Fingerprints  []uint64 `json:"fingerprints"`
	LeaseMS       int64    `json:"lease_ms"`
	Authoritative bool     `json:"authoritative,omitempty"`
}

// leaseAck reports what a lease heartbeat did on the worker.
type leaseAck struct {
	Renewed  int `json:"renewed"`
	Disowned int `json:"disowned"`
}
