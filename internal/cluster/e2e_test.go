package cluster_test

import (
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"sprint/internal/cluster"
	"sprint/internal/core"
	"sprint/internal/httpapi"
	"sprint/internal/jobs"
	"sprint/internal/matrix"
)

// synthX builds a deterministic genes×samples matrix (splitmix-style
// fill), the cluster-side analogue of the core test fixtures.
func synthX(rows, cols int, seed uint64) matrix.Matrix {
	m := matrix.New(rows, cols)
	s := seed
	for i := range m.Data {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		m.Data[i] = float64(int64(z>>11))/float64(1<<52) - 1
	}
	return m
}

// workerNode is one in-process worker daemon: manager + HTTP API +
// mounted cluster worker, exactly the -role worker wiring.
type workerNode struct {
	srv *httpapi.Server
	w   *cluster.Worker
	ts  *httptest.Server
}

func newWorkerNode(t *testing.T, wrap func(http.Handler) http.Handler) *workerNode {
	t.Helper()
	srv, err := httpapi.New(httpapi.Config{Jobs: jobs.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorker(cluster.WorkerConfig{Source: srv.Manager(), Every: 50, NProcs: 1})
	srv.AttachCluster(w)
	var h http.Handler = srv.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &workerNode{srv: srv, w: w, ts: ts}
}

// runOn submits the analysis by dataset id on the manager and waits for
// the result.
func runOn(t *testing.T, m *jobs.Manager, x matrix.Matrix, labels []int, opt core.Options) *core.Result {
	t.Helper()
	info, _, err := m.PutDataset(x)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(jobs.Spec{DatasetID: info.ID, Labels: labels, Opt: opt, NProcs: 1, Every: 50})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		got, err := m.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State.Terminal() {
			if got.State != jobs.Done {
				t.Fatalf("job %s: state %s: %s", st.ID, got.State, got.Error)
			}
			res, _, err := m.Result(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s did not finish", st.ID)
	return nil
}

// sameRes asserts bitwise identity of everything the engine reports per
// gene, the cluster's central contract.
func sameRes(t *testing.T, name string, got, want *core.Result) {
	t.Helper()
	if got.B != want.B || got.Complete != want.Complete {
		t.Fatalf("%s: B/Complete (%d,%v), want (%d,%v)", name, got.B, got.Complete, want.B, want.Complete)
	}
	fields := []struct {
		f    string
		g, w []float64
	}{{"Stat", got.Stat, want.Stat}, {"RawP", got.RawP, want.RawP}, {"AdjP", got.AdjP, want.AdjP}}
	for _, fl := range fields {
		if len(fl.g) != len(fl.w) {
			t.Fatalf("%s %s: length %d != %d", name, fl.f, len(fl.g), len(fl.w))
		}
		for i := range fl.g {
			if math.Float64bits(fl.g[i]) != math.Float64bits(fl.w[i]) {
				t.Fatalf("%s %s[%d]: %v != %v (bitwise)", name, fl.f, i, fl.g[i], fl.w[i])
			}
		}
	}
	for i := range want.Order {
		if got.Order[i] != want.Order[i] {
			t.Fatalf("%s Order[%d]: %d != %d", name, i, got.Order[i], want.Order[i])
		}
	}
}

// coordManager builds a coordinator over the worker addrs plus a jobs
// manager that distributes through it — the -role coordinator wiring.
func coordManager(t *testing.T, cfg cluster.CoordinatorConfig) (*cluster.Coordinator, *jobs.Manager) {
	t.Helper()
	coord := cluster.NewCoordinator(cfg)
	m, err := jobs.NewManager(jobs.Config{Workers: 1, Distributor: coord})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return coord, m
}

// standalone runs the same spec on an undistributed manager.
func standalone(t *testing.T, x matrix.Matrix, labels []int, opt core.Options) *core.Result {
	t.Helper()
	m, err := jobs.NewManager(jobs.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return runOn(t, m, x, labels, opt)
}

// TestClusterBitwiseIdentitySweep is the tentpole acceptance check: a
// coordinator plus two workers produce results bitwise identical to a
// single standalone node for all six statistics, both generators, and
// both enumeration orders (lex and revolving-door, which exercises the
// delta-evaluation paths).
func TestClusterBitwiseIdentitySweep(t *testing.T) {
	lab := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	flab := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	plab := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	blab := []int{0, 1, 2, 1, 2, 0, 2, 0, 1, 0, 1, 2}
	cases := []struct {
		name string
		lab  []int
		opt  core.Options
	}{
		{"welch/otf", lab, core.Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 300, Seed: 1}},
		{"welch/stored", lab, core.Options{Test: "t", Side: "upper", FixedSeedSampling: "n", B: 300, Seed: 2}},
		{"equalvar/stored", lab, core.Options{Test: "t.equalvar", Side: "abs", FixedSeedSampling: "n", B: 200, Seed: 4}},
		{"wilcoxon/complete/lex", lab, core.Options{Test: "wilcoxon", Side: "abs", B: 0, PermOrder: "lex"}},
		{"wilcoxon/complete/door", lab, core.Options{Test: "wilcoxon", Side: "abs", B: 0, PermOrder: "door"}},
		{"f/otf", flab, core.Options{Test: "f", Side: "abs", FixedSeedSampling: "y", B: 200, Seed: 6}},
		{"pairt/complete", plab, core.Options{Test: "pairt", Side: "abs", B: 0, Seed: 7}},
		{"blockf/otf", blab, core.Options{Test: "blockf", Side: "abs", FixedSeedSampling: "y", B: 150, Seed: 9}},
	}
	w1 := newWorkerNode(t, nil)
	w2 := newWorkerNode(t, nil)
	// One matrix per case — perm order is canonicalised out of the
	// content key, so reusing a matrix would answer the door-order case
	// from the lex case's cache instead of distributing it.  Preload
	// every matrix on both workers (content address: same bytes, same id).
	xs := make([]matrix.Matrix, len(cases))
	for i := range cases {
		xs[i] = synthX(30, 12, 2024+uint64(i))
		if _, _, err := w1.srv.Manager().PutDataset(xs[i]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := w2.srv.Manager().PutDataset(xs[i]); err != nil {
			t.Fatal(err)
		}
	}
	coord, cm := coordManager(t, cluster.CoordinatorConfig{Workers: []string{w1.ts.URL, w2.ts.URL}})

	for i, tc := range cases {
		want := standalone(t, xs[i], tc.lab, tc.opt)
		got := runOn(t, cm, xs[i], tc.lab, tc.opt)
		sameRes(t, tc.name, got, want)
	}
	info := coord.Info()
	if info.Coordinator.JobsDistributed != int64(len(cases)) {
		t.Errorf("jobs distributed = %d, want %d", info.Coordinator.JobsDistributed, len(cases))
	}
	if info.Coordinator.DatasetPushes != 0 {
		t.Errorf("dataset pushes = %d on preloaded workers", info.Coordinator.DatasetPushes)
	}
	served := w1.w.Info().Worker.ShardsServed + w2.w.Info().Worker.ShardsServed
	if served == 0 {
		t.Error("no shards served by workers")
	}
}

// TestClusterPushOn404 starts workers with empty registries: the first
// shard answers 404 unknown_dataset, the coordinator pushes the .spb
// once per worker, and the job still converges bit-identically.
func TestClusterPushOn404(t *testing.T) {
	x := synthX(25, 12, 7)
	lab := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	opt := core.Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 400, Seed: 3}
	w1 := newWorkerNode(t, nil)
	w2 := newWorkerNode(t, nil)
	coord, cm := coordManager(t, cluster.CoordinatorConfig{Workers: []string{w1.ts.URL, w2.ts.URL}})

	want := standalone(t, x, lab, opt)
	got := runOn(t, cm, x, lab, opt)
	sameRes(t, "push-on-404", got, want)
	if p := coord.Info().Coordinator.DatasetPushes; p < 1 || p > 2 {
		t.Errorf("dataset pushes = %d, want 1..2 (once per worker that 404ed)", p)
	}
}

// TestClusterWorkerKillFailover kills one worker's transport for every
// shard RPC (connection slammed mid-request — the compute, if any, is
// lost); the survivor and the coordinator's local fallback absorb its
// windows and the result stays bitwise identical.
func TestClusterWorkerKillFailover(t *testing.T) {
	x := synthX(30, 12, 99)
	lab := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	opt := core.Options{Test: "wilcoxon", Side: "abs", FixedSeedSampling: "y", B: 600, Seed: 5}

	kill := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == "POST" && r.URL.Path == cluster.ShardPath {
				hj, ok := w.(http.Hijacker)
				if !ok {
					t.Error("response writer cannot hijack")
					return
				}
				conn, _, err := hj.Hijack()
				if err == nil {
					conn.Close()
				}
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	dead := newWorkerNode(t, kill)
	live := newWorkerNode(t, nil)
	x2 := x // same matrix on both; the dead worker never gets to use it
	if _, _, err := dead.srv.Manager().PutDataset(x2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := live.srv.Manager().PutDataset(x2); err != nil {
		t.Fatal(err)
	}
	coord, cm := coordManager(t, cluster.CoordinatorConfig{
		Workers: []string{dead.ts.URL, live.ts.URL},
	})

	want := standalone(t, x, lab, opt)
	got := runOn(t, cm, x, lab, opt)
	sameRes(t, "worker-kill", got, want)
	info := coord.Info().Coordinator
	if info.ShardRetries < 1 {
		t.Errorf("shard retries = %d, want >= 1 after a killed worker", info.ShardRetries)
	}
	if n := dead.w.Info().Worker.ShardsServed; n != 0 {
		t.Errorf("dead worker served %d shards", n)
	}
}

// TestClusterDrainPartialHandoff drains the only worker while its shard
// is computing: the worker ships the completed window prefix, the
// coordinator merges it and computes the remainder locally, and the
// result stays bitwise identical — no permutation lost or recounted.
func TestClusterDrainPartialHandoff(t *testing.T) {
	// 20 samples (10v10): C(20,10) = 184756 distinct labellings, so
	// B = 100000 stays a sampled run large enough to drain mid-shard.
	x := synthX(120, 20, 11)
	lab := make([]int, 20)
	for i := 10; i < 20; i++ {
		lab[i] = 1
	}
	opt := core.Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 100000, Seed: 13}

	srv, err := httpapi.New(httpapi.Config{Jobs: jobs.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny windows: the drain boundary is at most 5 permutations away.
	w := cluster.NewWorker(cluster.WorkerConfig{Source: srv.Manager(), Every: 5, NProcs: 1})
	srv.AttachCluster(w)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	if _, _, err := srv.Manager().PutDataset(x); err != nil {
		t.Fatal(err)
	}

	coord, cm := coordManager(t, cluster.CoordinatorConfig{
		Workers:         []string{ts.URL},
		ShardsPerWorker: 1, // one long shard: the drain must hand off a prefix
	})

	want := standalone(t, x, lab, opt)

	done := make(chan *core.Result, 1)
	go func() { done <- runOn(t, cm, x, lab, opt) }()

	// Wait until the shard is computing, then drain.
	deadline := time.Now().Add(30 * time.Second)
	drained := false
	for time.Now().Before(deadline) {
		if w.Info().Worker.ShardsActive > 0 {
			w.Drain()
			drained = true
			break
		}
		select {
		case got := <-done:
			// The job outran the poll: identity still holds, but the
			// partial path was not exercised this run.
			sameRes(t, "drain (job finished first)", got, want)
			t.Skip("job finished before the drain fired")
		default:
		}
		runtime.Gosched()
	}
	if !drained {
		t.Fatal("worker never started a shard")
	}
	got := <-done
	sameRes(t, "drain", got, want)

	wi := w.Info().Worker
	ci := coord.Info().Coordinator
	if !wi.Draining {
		t.Error("worker not draining after Drain")
	}
	if wi.ShardsPartial < 1 {
		t.Logf("note: shard completed before the drain boundary (partial=%d, served=%d)",
			wi.ShardsPartial, wi.ShardsServed)
	}
	if wi.ShardsPartial >= 1 && ci.LocalShards < 1 {
		t.Errorf("partial handed off but no local remainder computed (local=%d)", ci.LocalShards)
	}
}

// TestClusterDeclinesSmallJobs pins the MinDistB admission gate: tiny
// jobs fall back to the manager's local path (ErrNotDistributed) and
// still complete.
func TestClusterDeclinesSmallJobs(t *testing.T) {
	x := synthX(10, 12, 5)
	lab := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	opt := core.Options{Test: "t", B: 50, Seed: 2}
	w := newWorkerNode(t, nil)
	if _, _, err := w.srv.Manager().PutDataset(x); err != nil {
		t.Fatal(err)
	}
	coord, cm := coordManager(t, cluster.CoordinatorConfig{
		Workers:  []string{w.ts.URL},
		MinDistB: 1000,
	})
	want := standalone(t, x, lab, opt)
	got := runOn(t, cm, x, lab, opt)
	sameRes(t, "declined", got, want)
	info := coord.Info().Coordinator
	if info.JobsDeclined != 1 || info.JobsDistributed != 0 {
		t.Errorf("declined=%d distributed=%d, want 1/0", info.JobsDeclined, info.JobsDistributed)
	}
}
