package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sprint/internal/core"
	"sprint/internal/maxt"
)

// TestPartitionRange pins the Figure-2 partitioning: deterministic,
// contiguous, covering [lo, hi) exactly once, in index order.
func TestPartitionRange(t *testing.T) {
	cases := []struct {
		lo, hi int64
		n      int
	}{
		{0, 1000, 4}, {0, 7, 3}, {100, 103, 8}, {0, 1, 1},
		{5, 5, 4}, {0, 924, 5}, {3, 1000003, 16},
	}
	for _, tc := range cases {
		spans := partitionRange(tc.lo, tc.hi, tc.n)
		if tc.hi <= tc.lo {
			if spans != nil {
				t.Errorf("partitionRange(%d,%d,%d) = %v, want nil", tc.lo, tc.hi, tc.n, spans)
			}
			continue
		}
		next := tc.lo
		for _, sp := range spans {
			if sp[0] != next || sp[1] <= sp[0] {
				t.Fatalf("partitionRange(%d,%d,%d): span %v breaks contiguity at %d",
					tc.lo, tc.hi, tc.n, sp, next)
			}
			next = sp[1]
		}
		if next != tc.hi {
			t.Fatalf("partitionRange(%d,%d,%d): covers to %d", tc.lo, tc.hi, tc.n, next)
		}
		if len(spans) > tc.n {
			t.Fatalf("partitionRange(%d,%d,%d): %d spans", tc.lo, tc.hi, tc.n, len(spans))
		}
		// Deterministic: an identical call yields identical spans.
		again := partitionRange(tc.lo, tc.hi, tc.n)
		for i := range spans {
			if spans[i] != again[i] {
				t.Fatalf("partitionRange(%d,%d,%d) is not deterministic", tc.lo, tc.hi, tc.n)
			}
		}
	}
}

// newLedgerState builds a minimal jobState around one shard record for
// white-box delivery tests.
func newLedgerState(rows int, lo, hi int64) (*jobState, *shardRec) {
	c := NewCoordinator(CoordinatorConfig{})
	st := &jobState{
		c:      c,
		plan:   core.Plan{TotalB: hi, Rows: rows, Fingerprint: 0xfeed},
		merged: maxt.NewCounts(rows),

		remaining: 1,
	}
	st.cond = sync.NewCond(&st.mu)
	rec := &shardRec{lo: lo, hi: hi}
	st.shards = []*shardRec{rec}
	return st, rec
}

func resp(lo, next, hi int64, fp uint64, rows int, fill int64) *ShardResponse {
	raw := make([]int64, rows)
	adj := make([]int64, rows)
	for i := range raw {
		raw[i], adj[i] = fill, fill
	}
	return &ShardResponse{Lo: lo, Next: next, Hi: hi, TotalB: hi, Fingerprint: fp,
		B: next - lo, Raw: raw, Adj: adj}
}

// TestLedgerExactlyOnce is the double-dispatch idempotency property: of
// two identical deliveries for one shard (speculative re-dispatch, a
// retried RPC whose first answer arrived late) exactly one merges; the
// duplicate is discarded whole.
func TestLedgerExactlyOnce(t *testing.T) {
	const rows = 3
	st, rec := newLedgerState(rows, 0, 100)
	rec.inflight = 2
	st.c.inflight.Add(2)

	first := resp(0, 100, 100, 0xfeed, rows, 7)
	st.deliver(rec, first, "w")
	if st.merged.B != 100 || st.merged.Raw[0] != 7 {
		t.Fatalf("first delivery not merged: B=%d raw=%v", st.merged.B, st.merged.Raw)
	}
	if !rec.done || st.remaining != 0 {
		t.Fatalf("shard not closed: done=%v remaining=%d", rec.done, st.remaining)
	}

	// The duplicate (same window, same counts) must change nothing.
	st.deliver(rec, resp(0, 100, 100, 0xfeed, rows, 7), "w")
	if st.merged.B != 100 || st.merged.Raw[0] != 7 || st.merged.Adj[0] != 7 {
		t.Fatalf("duplicate delivery double-counted: B=%d raw=%v", st.merged.B, st.merged.Raw)
	}
}

// TestLedgerRejectsDrift pins the discard conditions: wrong fingerprint,
// wrong window start, wrong row count, inconsistent B.
func TestLedgerRejectsDrift(t *testing.T) {
	const rows = 2
	bad := []*ShardResponse{
		resp(0, 100, 100, 0xbad, rows, 1),   // fingerprint drift
		resp(10, 100, 100, 0xfeed, rows, 1), // does not start at rec.lo
		resp(0, 0, 100, 0xfeed, rows, 1),    // empty window
		resp(0, 101, 100, 0xfeed, rows, 1),  // beyond hi
		resp(0, 100, 100, 0xfeed, 5, 1),     // wrong row count
	}
	inconsistent := resp(0, 100, 100, 0xfeed, rows, 1)
	inconsistent.B = 42 // B != Next-Lo
	bad = append(bad, inconsistent)
	for i, r := range bad {
		st, rec := newLedgerState(rows, 0, 100)
		rec.inflight = 1
		st.c.inflight.Add(1)
		st.deliver(rec, r, "w")
		if st.merged.B != 0 || rec.done || st.remaining != 1 {
			t.Errorf("bad delivery %d accepted: B=%d done=%v", i, st.merged.B, rec.done)
		}
	}
}

// TestLedgerPartialAdvances pins the drain hand-off: a partial delivery
// merges its prefix, advances the record's lo, and requeues the
// remainder for re-dispatch.
func TestLedgerPartialAdvances(t *testing.T) {
	const rows = 2
	st, rec := newLedgerState(rows, 0, 100)
	rec.inflight = 1
	st.c.inflight.Add(1)
	st.deliver(rec, resp(0, 40, 100, 0xfeed, rows, 3), "w")
	if st.merged.B != 40 || rec.lo != 40 || rec.done || !rec.queued {
		t.Fatalf("partial not advanced: B=%d lo=%d done=%v queued=%v",
			st.merged.B, rec.lo, rec.done, rec.queued)
	}
	// A late duplicate of the ORIGINAL full window no longer starts at
	// the advanced lo and is discarded.
	rec.inflight = 1
	st.c.inflight.Add(1)
	st.deliver(rec, resp(0, 100, 100, 0xfeed, rows, 3), "w")
	if st.merged.B != 40 {
		t.Fatalf("stale full-window delivery merged over partial: B=%d", st.merged.B)
	}
	// The remainder completes the shard.
	rec.inflight = 1
	st.c.inflight.Add(1)
	st.deliver(rec, resp(40, 100, 100, 0xfeed, rows, 5), "w")
	if st.merged.B != 100 || !rec.done || st.remaining != 0 {
		t.Fatalf("remainder not merged: B=%d done=%v", st.merged.B, rec.done)
	}
	if st.merged.Raw[0] != 8 { // 3 + 5
		t.Fatalf("prefix+remainder Raw = %d, want 8", st.merged.Raw[0])
	}
}

// TestMembership covers join, heartbeat TTL expiry and leave through the
// coordinator's HTTP routes, with a fake clock.
func TestMembership(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c := NewCoordinator(CoordinatorConfig{
		Workers:      []string{"http://static:1"},
		HeartbeatTTL: 5 * time.Second,
		DownFor:      2 * time.Second,
		Clock:        clock,
	})
	mux := http.NewServeMux()
	for _, rt := range c.Routes() {
		mux.HandleFunc(rt.Method+" "+rt.Pattern, rt.Handler)
	}
	ts := httptest.NewServer(mux)
	defer ts.Close()

	join := func(addr string, wantCode int) {
		t.Helper()
		body, _ := json.Marshal(joinBody{Addr: addr})
		r, err := http.Post(ts.URL+WorkersPath, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != wantCode {
			t.Fatalf("join %q: status %d, want %d", addr, r.StatusCode, wantCode)
		}
	}

	if n := len(c.live(clock())); n != 1 {
		t.Fatalf("static members live = %d, want 1", n)
	}
	join("http://dyn:2", http.StatusOK)
	join("not a url", http.StatusBadRequest)
	if n := len(c.live(clock())); n != 2 {
		t.Fatalf("after join: live = %d, want 2", n)
	}

	// TTL expiry drops the joined worker but never the static one.
	advance(6 * time.Second)
	if n := len(c.live(clock())); n != 1 {
		t.Fatalf("after TTL: live = %d, want 1", n)
	}
	join("http://dyn:2", http.StatusOK) // heartbeat revives it
	if n := len(c.live(clock())); n != 2 {
		t.Fatalf("after re-join: live = %d, want 2", n)
	}

	// Leave deletes the joined worker immediately.
	req, _ := http.NewRequest("DELETE", ts.URL+WorkersPath+"?addr=http://dyn:2", nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if n := len(c.live(clock())); n != 1 {
		t.Fatalf("after leave: live = %d, want 1", n)
	}

	// A static member that leaves is backed off, then returns.
	req, _ = http.NewRequest("DELETE", ts.URL+WorkersPath+"?addr=http://static:1", nil)
	r, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if n := len(c.live(clock())); n != 0 {
		t.Fatalf("after static leave: live = %d, want 0", n)
	}
	advance(3 * time.Second)
	if n := len(c.live(clock())); n != 1 {
		t.Fatalf("static member did not return after backoff: live = %d", n)
	}

	info := c.Info()
	if info.Role != "coordinator" || info.Coordinator == nil {
		t.Fatalf("coordinator info: %+v", info)
	}
}
