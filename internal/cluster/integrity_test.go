package cluster_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"sprint/internal/cluster"
	"sprint/internal/core"
	"sprint/internal/faultinject"
	"sprint/internal/metrics"
)

// TestShardResponseCRC pins the checksum contract: the CRC covers every
// result-bearing field, and only those — timing metadata must not
// invalidate a response relayed through a cache or proxy.
func TestShardResponseCRC(t *testing.T) {
	base := cluster.ShardResponse{
		Lo: 10, Next: 20, Hi: 30, TotalB: 100, B: 10,
		Fingerprint: 0xabcdef, Raw: []int64{1, 2, 3}, Adj: []int64{3, 2, 1},
		ElapsedMS: 5,
	}
	want := base.CRC()
	if want == 0 {
		t.Fatal("CRC of a populated response is zero (zero means legacy/no checksum)")
	}
	if got := base.CRC(); got != want {
		t.Fatalf("CRC not stable: %x then %x", want, got)
	}

	mutations := []struct {
		name string
		mut  func(r *cluster.ShardResponse)
	}{
		{"Lo", func(r *cluster.ShardResponse) { r.Lo++ }},
		{"Next", func(r *cluster.ShardResponse) { r.Next++ }},
		{"Hi", func(r *cluster.ShardResponse) { r.Hi++ }},
		{"TotalB", func(r *cluster.ShardResponse) { r.TotalB++ }},
		{"B", func(r *cluster.ShardResponse) { r.B++ }},
		{"Fingerprint", func(r *cluster.ShardResponse) { r.Fingerprint++ }},
		{"Raw value", func(r *cluster.ShardResponse) { r.Raw[1]++ }},
		{"Adj value", func(r *cluster.ShardResponse) { r.Adj[0]++ }},
		{"Raw truncated", func(r *cluster.ShardResponse) { r.Raw = r.Raw[:2] }},
		{"Adj extended", func(r *cluster.ShardResponse) { r.Adj = append(r.Adj, 0) }},
	}
	for _, m := range mutations {
		r := base
		r.Raw = append([]int64(nil), base.Raw...)
		r.Adj = append([]int64(nil), base.Adj...)
		m.mut(&r)
		if r.CRC() == want {
			t.Errorf("%s: CRC unchanged after mutation", m.name)
		}
	}

	// Timing is metadata, not a result: excluded by design.
	r := base
	r.ElapsedMS = 99999
	if r.CRC() != want {
		t.Error("ElapsedMS changed the CRC; it must be excluded")
	}
}

// corruptOnce wraps a worker handler and flips one Raw count in the
// FIRST shard response while leaving the response's CRC64 stale — the
// wire-level silent corruption the coordinator's end-to-end check
// exists to catch.  Deterministic, unlike a random byte flip: the JSON
// stays valid, so only the CRC check can reject it.
func corruptOnce(done *atomic.Bool) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !strings.HasSuffix(r.URL.Path, "/cluster/v1/shards") || done.Load() {
				next.ServeHTTP(w, r)
				return
			}
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			var resp cluster.ShardResponse
			if rec.Code == http.StatusOK && json.Unmarshal(body, &resp) == nil && len(resp.Raw) > 0 && done.CompareAndSwap(false, true) {
				resp.Raw[0] += 7 // silent damage; CRC64 left describing the true counts
				body, _ = json.Marshal(&resp)
			}
			for k, vs := range rec.Header() {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.Header().Set("Content-Length", "")
			w.WriteHeader(rec.Code)
			w.Write(body)
		})
	}
}

// TestClusterCorruptShardRedispatch is the end-to-end integrity check:
// a worker whose first shard response carries silently damaged counts
// (valid JSON, stale CRC) must be caught by the coordinator, the shard
// re-dispatched, and the final result bitwise identical to a clean run.
func TestClusterCorruptShardRedispatch(t *testing.T) {
	x := synthX(25, 12, 31)
	lab := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	opt := core.Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 400, Seed: 5}
	want := standalone(t, x, lab, opt)

	var corrupted atomic.Bool
	w1 := newWorkerNode(t, corruptOnce(&corrupted))
	w2 := newWorkerNode(t, nil)
	for _, n := range []*workerNode{w1, w2} {
		if _, _, err := n.srv.Manager().PutDataset(x); err != nil {
			t.Fatal(err)
		}
	}
	reg := metrics.New()
	coord, cm := coordManager(t, cluster.CoordinatorConfig{
		Workers: []string{w1.ts.URL, w2.ts.URL},
		Metrics: reg,
	})

	got := runOn(t, cm, x, lab, opt)
	sameRes(t, "corrupt-shard", got, want)

	if !corrupted.Load() {
		t.Fatal("test harness never injected the corrupt response")
	}
	if n := reg.Counter("integrity_shard_corrupt_total").Value(); n == 0 {
		t.Error("corrupt shard not counted by integrity_shard_corrupt_total")
	}
	if n := reg.Counter("cluster_shard_retries_total", "reason", "corrupt").Value(); n == 0 {
		t.Error("corrupt shard not re-dispatched (no corrupt-reason retry)")
	}
	if coord.Info().Coordinator.ShardRetries == 0 {
		t.Error("ShardRetries not incremented")
	}
}

// TestClusterFaultInjectTransportCorrupt drives the same invariant
// through the faultinject transport (a random byte flip in the response
// body): whether the mangled body dies in the JSON decoder or at the
// CRC check, no damaged count may reach the result.
func TestClusterFaultInjectTransportCorrupt(t *testing.T) {
	x := synthX(25, 12, 32)
	lab := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	opt := core.Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 400, Seed: 6}
	want := standalone(t, x, lab, opt)

	w1 := newWorkerNode(t, nil)
	w2 := newWorkerNode(t, nil)
	for _, n := range []*workerNode{w1, w2} {
		if _, _, err := n.srv.Manager().PutDataset(x); err != nil {
			t.Fatal(err)
		}
	}
	inj, err := faultinject.Parse("seed=3;rpc.shard.resp:corrupt:n=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Install(inj)
	defer faultinject.Disable()

	reg := metrics.New()
	coord, cm := coordManager(t, cluster.CoordinatorConfig{
		Workers: []string{w1.ts.URL, w2.ts.URL},
		Metrics: reg,
		Client:  &http.Client{Transport: &faultinject.Transport{}},
	})

	got := runOn(t, cm, x, lab, opt)
	sameRes(t, "faultinject-corrupt", got, want)
	if st := inj.Stats(); st["rpc.shard.resp:corrupt"] != 1 {
		t.Fatalf("injector stats %v, want one rpc.shard.resp corrupt fire", st)
	}
	if coord.Info().Coordinator.ShardRetries == 0 {
		t.Error("corrupted response did not cause a re-dispatch")
	}
}

// TestClusterPushDigestEcho pins the dataset-push integrity check: a
// worker that echoes the WRONG content id for a pushed dataset is
// rejected (counted in integrity_push_digest_mismatch_total) and the
// job still converges through the remaining paths.
func TestClusterPushDigestEcho(t *testing.T) {
	x := synthX(25, 12, 33)
	lab := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	opt := core.Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 400, Seed: 7}
	want := standalone(t, x, lab, opt)

	// lyingEcho rewrites the id in every dataset-upload response.
	lyingEcho := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !strings.HasSuffix(r.URL.Path, "/v1/datasets") || r.Method != http.MethodPut {
				next.ServeHTTP(w, r)
				return
			}
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			var doc map[string]any
			body := rec.Body.Bytes()
			if json.Unmarshal(body, &doc) == nil {
				doc["id"] = "sha256:0000000000000000000000000000000000000000000000000000000000000000"
				body, _ = json.Marshal(doc)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(rec.Code)
			w.Write(body)
		})
	}

	// w1 starts empty and lies about what it registered; w2 is preloaded
	// and honest, so the job has a clean path to converge through.
	w1 := newWorkerNode(t, lyingEcho)
	w2 := newWorkerNode(t, nil)
	if _, _, err := w2.srv.Manager().PutDataset(x); err != nil {
		t.Fatal(err)
	}

	reg := metrics.New()
	_, cm := coordManager(t, cluster.CoordinatorConfig{
		Workers: []string{w1.ts.URL, w2.ts.URL},
		Metrics: reg,
	})

	got := runOn(t, cm, x, lab, opt)
	sameRes(t, "push-echo", got, want)
	if n := reg.Counter("integrity_push_digest_mismatch_total").Value(); n == 0 {
		t.Error("lying push echo not counted")
	}
}
