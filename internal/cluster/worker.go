package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"sprint/internal/core"
	"sprint/internal/jobs"
	"sprint/internal/metrics"
)

// PrepSource resolves a content-addressed dataset id to a shared
// preparation, pinning the dataset until the release function is
// called.  *jobs.Manager implements it: shards reuse the same registry,
// disk mirror and per-dataset prep cache as local jobs.
type PrepSource interface {
	PreparedDataset(id string, labels []int, opt core.Options) (*core.Prepared, func(), error)
}

// WorkerConfig configures a worker node's shard service.
type WorkerConfig struct {
	// Source resolves dataset ids to shared preparations; normally the
	// daemon's *jobs.Manager.
	Source PrepSource
	// Client performs the join/deregister control RPCs; nil uses a
	// private client with JoinTimeout.  Control calls must never hang:
	// a heartbeat stuck on a half-open coordinator connection would
	// stall the whole heartbeat loop and expire the membership.
	Client *http.Client
	// JoinTimeout bounds one registration or deregistration RPC.
	// Defaults to 5s.
	JoinTimeout time.Duration
	// NProcs is the default rank count per shard (0 = all CPUs); a
	// shard request carrying its own NProcs wins.
	NProcs int
	// Every is the window length of the shard compute loop, in
	// permutations — the drain granularity: a draining worker stops at
	// the next window boundary and ships the prefix.  Defaults to 1000.
	Every int64
	// MaxConcurrent bounds concurrently computing shards (further
	// requests queue on the semaphore).  Defaults to 2.
	MaxConcurrent int
	// RetentionDir, when set, disk-backs the retained-result cache so
	// shard results survive a worker restart too.  Empty keeps retention
	// in memory only.
	RetentionDir string
	// MaxRetained bounds the retained-result cache (LRU past it).
	// Defaults to 128; negative disables retention.
	MaxRetained int
	// Metrics receives the worker-side cluster series; nil gets a
	// private registry.
	Metrics *metrics.Registry
	// Logger receives shard lifecycle logs; nil discards.
	Logger *slog.Logger
}

// Worker serves shard compute requests on a daemon.  It is mounted on
// the daemon's instrumented mux via Routes and drained via Drain before
// shutdown.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	sem       chan struct{}
	draining  atomic.Bool
	drainCtx  context.Context
	drainStop context.CancelFunc

	scratch sync.Pool // *core.RunScratch, reused across shards

	mu          sync.Mutex
	coordinator string // joined coordinator base URL, for Info
	active      int
	// retain and tasks implement coordinator-crash tolerance: retained
	// results re-deliver without recomputation, and the task map
	// singleflights re-probes of a window that is still computing.
	// Both are guarded by mu.
	retain *retention
	tasks  map[retainKey]*shardTask

	served  atomic.Int64
	partial atomic.Int64
	refused atomic.Int64

	retainedHits    atomic.Int64
	retainedResumes atomic.Int64
	inflightJoins   atomic.Int64
	leaseRenewed    atomic.Int64
	leaseExpired    atomic.Int64
	leaseDisowned   atomic.Int64

	metServed          *metrics.Counter
	metPartial         *metrics.Counter
	metRefused         map[string]*metrics.Counter
	metCompute         *metrics.Histogram
	metJoinTime        *metrics.Counter
	metRetainedHits    *metrics.Counter
	metRetainedResumes *metrics.Counter
	metInflightJoins   *metrics.Counter
	metLeaseRenewed    *metrics.Counter
	metLeaseExpired    *metrics.Counter
	metLeaseDisowned   *metrics.Counter

	hb struct {
		sync.Mutex
		stop context.CancelFunc
		done chan struct{}
	}
}

// NewWorker builds a worker shard service over src.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Every < 1 {
		cfg.Every = 1000
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 2
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.JoinTimeout}
	}
	if cfg.MaxRetained == 0 {
		cfg.MaxRetained = 128
	} else if cfg.MaxRetained < 0 {
		cfg.MaxRetained = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{
		cfg:       cfg,
		client:    cfg.Client,
		sem:       make(chan struct{}, cfg.MaxConcurrent),
		drainCtx:  ctx,
		drainStop: cancel,
		tasks:     make(map[retainKey]*shardTask),
	}
	rt, err := newRetention(cfg.RetentionDir, cfg.MaxRetained)
	if err != nil {
		// A broken retention dir degrades to memory-only retention:
		// crash tolerance shrinks, shard service does not.
		cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "cluster_retention_disabled",
			slog.String("dir", cfg.RetentionDir), slog.String("error", err.Error()))
		rt, _ = newRetention("", cfg.MaxRetained)
	}
	w.retain = rt
	w.scratch.New = func() any { return &core.RunScratch{} }
	reg := cfg.Metrics
	reg.Help("cluster_worker_shards_served_total", "Shard requests answered with complete counts.")
	reg.Help("cluster_worker_shards_partial_total", "Shard requests answered with a drained partial prefix.")
	reg.Help("cluster_worker_shards_refused_total", "Shard requests refused, by reason.")
	reg.Help("cluster_worker_shard_compute_seconds", "Wall time computing one shard's counts.")
	reg.Help("cluster_rpc_timeout_total", "Cluster RPCs that hit their deadline, by call.")
	w.metJoinTime = reg.Counter("cluster_rpc_timeout_total", "call", "join")
	w.metServed = reg.Counter("cluster_worker_shards_served_total")
	w.metPartial = reg.Counter("cluster_worker_shards_partial_total")
	w.metRefused = map[string]*metrics.Counter{
		reasonDraining:       reg.Counter("cluster_worker_shards_refused_total", "reason", reasonDraining),
		reasonUnknownDataset: reg.Counter("cluster_worker_shards_refused_total", "reason", reasonUnknownDataset),
		reasonFingerprint:    reg.Counter("cluster_worker_shards_refused_total", "reason", reasonFingerprint),
		reasonLease:          reg.Counter("cluster_worker_shards_refused_total", "reason", reasonLease),
	}
	w.metCompute = reg.Histogram("cluster_worker_shard_compute_seconds", metrics.DefLatencyBuckets)
	reg.Help("cluster_worker_retained_hits_total", "Shard re-probes served whole from the retained-result cache, no recomputation.")
	reg.Help("cluster_worker_retained_resumes_total", "Shard computes resumed from a parked partial result.")
	reg.Help("cluster_worker_retained_results", "Shard results currently retained.")
	reg.Help("cluster_worker_inflight_joins_total", "Shard re-probes that attached to an identical in-flight compute.")
	reg.Help("cluster_lease_renewed_total", "Shard lease renewals applied on this worker.")
	reg.Help("cluster_lease_expired_total", "Shard computes cancelled by lease expiry and parked in retention.")
	reg.Help("cluster_lease_disowned_total", "Shard computes cancelled because an authoritative coordinator disowned them.")
	w.metRetainedHits = reg.Counter("cluster_worker_retained_hits_total")
	w.metRetainedResumes = reg.Counter("cluster_worker_retained_resumes_total")
	w.metInflightJoins = reg.Counter("cluster_worker_inflight_joins_total")
	w.metLeaseRenewed = reg.Counter("cluster_lease_renewed_total")
	w.metLeaseExpired = reg.Counter("cluster_lease_expired_total")
	w.metLeaseDisowned = reg.Counter("cluster_lease_disowned_total")
	reg.GaugeFunc("cluster_worker_retained_results", func() float64 {
		w.mu.Lock()
		defer w.mu.Unlock()
		return float64(w.retain.size())
	})
	return w
}

// Role implements Node.
func (w *Worker) Role() string { return "worker" }

// Routes implements Node: the shard compute endpoint and a liveness
// ping.
func (w *Worker) Routes() []Route {
	return []Route{
		{Method: "POST", Pattern: ShardPath, Handler: w.handleShard},
		{Method: "GET", Pattern: PingPath, Handler: w.handlePing},
		{Method: "POST", Pattern: LeasesPath, Handler: w.handleLeases},
	}
}

// Info implements Node.
func (w *Worker) Info() Info {
	w.mu.Lock()
	coord, active, retained := w.coordinator, w.active, w.retain.size()
	w.mu.Unlock()
	return Info{
		Role: "worker",
		Worker: &WorkerNodeInfo{
			Coordinator:     coord,
			Draining:        w.draining.Load(),
			ShardsActive:    active,
			ShardsServed:    w.served.Load(),
			ShardsPartial:   w.partial.Load(),
			ShardsRefused:   w.refused.Load(),
			ShardsRetained:  retained,
			RetainedHits:    w.retainedHits.Load(),
			RetainedResumes: w.retainedResumes.Load(),
			InflightJoins:   w.inflightJoins.Load(),
			LeaseRenewed:    w.leaseRenewed.Load(),
			LeaseExpired:    w.leaseExpired.Load(),
			LeaseDisowned:   w.leaseDisowned.Load(),
		},
	}
}

// Draining reports whether Drain has been called.
func (w *Worker) Draining() bool { return w.draining.Load() }

// Drain stops accepting new shards and cancels in-flight shard
// contexts; each in-flight shard stops at its next window boundary and
// its handler responds with the partial prefix, which the coordinator
// merges and re-dispatches around.  The HTTP server's own Shutdown then
// waits for those responses to flush.  Drain is idempotent.
func (w *Worker) Drain() {
	if w.draining.CompareAndSwap(false, true) {
		w.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "cluster_worker_draining")
		w.drainStop()
		w.stopHeartbeat()
	}
}

func (w *Worker) handlePing(rw http.ResponseWriter, r *http.Request) {
	writeClusterJSON(rw, http.StatusOK, map[string]any{"ok": !w.draining.Load(), "role": "worker"})
}

func (w *Worker) refuse(rw http.ResponseWriter, status int, reason, msg string) {
	w.refused.Add(1)
	if c, ok := w.metRefused[reason]; ok {
		c.Inc()
	}
	writeClusterJSON(rw, status, errorBody{Error: msg, Reason: reason})
}

// shardTask is one in-flight shard compute, shared by the original
// requester and any re-probe of the same window that attaches to it
// (a restarted coordinator re-dispatching while the compute still
// runs).  lease, disowned and cancel are guarded by the worker mutex;
// out is published before done closes and immutable afterwards.
type shardTask struct {
	fp       uint64
	done     chan struct{}
	out      *shardOutcome
	lease    time.Time // zero for unleased computes
	disowned bool
	cancel   context.CancelFunc // nil for unleased computes
}

// shardOutcome is a compute's result as it is delivered to every
// requester: a complete/partial response, or a status + error body.
type shardOutcome struct {
	status int
	resp   *ShardResponse
	body   errorBody
}

func writeOutcome(rw http.ResponseWriter, out *shardOutcome) {
	if out == nil {
		writeClusterJSON(rw, http.StatusServiceUnavailable, errorBody{Error: "shard abandoned before compute"})
		return
	}
	if out.resp != nil {
		writeClusterJSON(rw, out.status, out.resp)
		return
	}
	writeClusterJSON(rw, out.status, out.body)
}

// handleShard serves one shard window.  In order: a retained complete
// result is re-delivered without recomputation; a re-probe of a window
// that is already computing attaches to it (renewing its lease); and
// otherwise the window computes — resuming from a parked partial prefix
// when retention holds one — with the result parked in retention for
// the next re-probe.
func (w *Worker) handleShard(rw http.ResponseWriter, r *http.Request) {
	if w.draining.Load() {
		w.refuse(rw, http.StatusServiceUnavailable, reasonDraining, "worker draining")
		return
	}
	var req ShardRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		writeClusterJSON(rw, http.StatusBadRequest, errorBody{Error: "bad shard request: " + err.Error()})
		return
	}
	if req.Options.Mode == core.ModeSequential {
		// A coordinator rewrites sequential jobs to exact shards before
		// dispatch; a sequential shard request means a version-skewed or
		// misbehaving coordinator.  Refuse loudly rather than let
		// core.RunShard's rejection read as a generic shard failure.
		writeClusterJSON(rw, http.StatusBadRequest, errorBody{Error: "sequential mode never dispatches to workers: shards compute exact counts, the coordinator applies the stopping rule to the merge"})
		return
	}
	if req.Fingerprint == 0 {
		// No plan identity, no retention or singleflight to key on.
		writeOutcome(rw, w.computeShard(r, &req, nil))
		return
	}
	k := retainKey{req.Fingerprint, req.Lo, req.Hi}
	leaseD := time.Duration(req.LeaseMS) * time.Millisecond
	w.mu.Lock()
	if rs := w.retain.get(k); rs != nil && !rs.Partial {
		w.mu.Unlock()
		w.retainedHits.Add(1)
		w.metRetainedHits.Inc()
		w.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "cluster_shard_retained_hit",
			slog.Int64("lo", rs.Lo), slog.Int64("hi", rs.Hi))
		writeClusterJSON(rw, http.StatusOK, rs)
		return
	}
	if t := w.tasks[k]; t != nil {
		// Attach to the identical in-flight compute; the re-probe is
		// fresh evidence of coordinator interest, so it renews the lease.
		if leaseD > 0 {
			if nl := time.Now().Add(leaseD); nl.After(t.lease) {
				t.lease = nl
			}
		}
		w.mu.Unlock()
		w.inflightJoins.Add(1)
		w.metInflightJoins.Inc()
		select {
		case <-t.done:
			writeOutcome(rw, t.out)
		case <-r.Context().Done():
		}
		return
	}
	t := &shardTask{fp: req.Fingerprint, done: make(chan struct{})}
	if leaseD > 0 {
		t.lease = time.Now().Add(leaseD)
	}
	w.tasks[k] = t
	w.mu.Unlock()
	out := w.computeShard(r, &req, t)
	t.out = out
	w.mu.Lock()
	delete(w.tasks, k)
	w.mu.Unlock()
	close(t.done)
	writeOutcome(rw, out)
}

// computeShard runs the validate → compute → retain pipeline for one
// window and returns the outcome every requester of the window gets.
// task is nil for fingerprint-less requests (no retention); a leased
// task decouples the compute's lifetime from the requester: it is
// cancelled by drain, lease expiry or an authoritative disown — never
// by the requester's death — and a cancelled prefix parks in retention.
func (w *Worker) computeShard(r *http.Request, req *ShardRequest, task *shardTask) *shardOutcome {
	refusal := func(status int, reason, msg string) *shardOutcome {
		w.refused.Add(1)
		if c, ok := w.metRefused[reason]; ok {
			c.Inc()
		}
		return &shardOutcome{status: status, body: errorBody{Error: msg, Reason: reason}}
	}
	leased := task != nil && req.LeaseMS > 0

	var ctx context.Context
	var cancel context.CancelFunc
	if leased {
		ctx, cancel = context.WithCancel(w.drainCtx)
		w.mu.Lock()
		task.cancel = cancel
		w.mu.Unlock()
		go w.watchLease(task)
	} else {
		ctx, cancel = mergeDone(r.Context(), w.drainCtx)
	}
	defer cancel()

	select {
	case w.sem <- struct{}{}:
	case <-ctx.Done():
		if w.draining.Load() {
			return refusal(http.StatusServiceUnavailable, reasonDraining, "worker draining")
		}
		if leased {
			return refusal(http.StatusServiceUnavailable, reasonLease, "shard lease lapsed before compute started")
		}
		return nil // requester gone, nothing computed
	}
	defer func() { <-w.sem }()

	prep, release, err := w.cfg.Source.PreparedDataset(req.DatasetID, req.Labels, req.Options)
	if err != nil {
		if errors.Is(err, jobs.ErrUnknownDataset) {
			return refusal(http.StatusNotFound, reasonUnknownDataset, "unknown dataset "+req.DatasetID)
		}
		return &shardOutcome{status: http.StatusBadRequest, body: errorBody{Error: err.Error()}}
	}
	defer release()

	plan, err := core.PlanRun(prep, req.Options)
	if err != nil {
		return &shardOutcome{status: http.StatusBadRequest, body: errorBody{Error: err.Error()}}
	}
	// The fingerprint covers engine version, options, enumeration
	// order, labels and a data sample: if this node would enumerate a
	// different sequence than the coordinator planned, computing would
	// merge wrong counts — refuse instead.
	if req.Fingerprint != 0 && req.Fingerprint != plan.Fingerprint {
		return refusal(http.StatusConflict, reasonFingerprint,
			fmt.Sprintf("plan fingerprint %016x != coordinator %016x", plan.Fingerprint, req.Fingerprint))
	}
	if req.TotalB != 0 && req.TotalB != plan.TotalB {
		return refusal(http.StatusConflict, reasonFingerprint,
			fmt.Sprintf("plan B %d != coordinator %d", plan.TotalB, req.TotalB))
	}

	// A parked partial prefix of this exact window (lease lapsed or the
	// worker drained in a previous probe) seeds the compute: only the
	// remainder is recomputed, and the counts stay bitwise identical.
	var resume *core.Checkpoint
	if task != nil {
		w.mu.Lock()
		prev := w.retain.get(retainKey{req.Fingerprint, req.Lo, req.Hi})
		w.mu.Unlock()
		if prev != nil && prev.Partial && prev.Fingerprint == plan.Fingerprint &&
			prev.TotalB == plan.TotalB && prev.Lo == req.Lo &&
			prev.Next > req.Lo && prev.Next < req.Hi && len(prev.Raw) == plan.Rows {
			resume = &core.Checkpoint{
				Fingerprint: plan.Fingerprint,
				TotalB:      plan.TotalB,
				Complete:    plan.Complete,
				Next:        prev.Next,
				Done:        prev.B,
				Raw:         prev.Raw,
				Adj:         prev.Adj,
			}
			w.retainedResumes.Add(1)
			w.metRetainedResumes.Inc()
		}
	}

	nprocs := req.NProcs
	if nprocs < 1 {
		nprocs = w.cfg.NProcs
	}
	scratch := w.scratch.Get().(*core.RunScratch)
	defer w.scratch.Put(scratch)
	w.mu.Lock()
	w.active++
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.active--
		w.mu.Unlock()
	}()

	start := time.Now()
	sc, runErr := core.RunShard(prep, req.Options, req.Lo, req.Hi, core.RunControl{
		Ctx:     ctx,
		NProcs:  nprocs,
		Every:   w.cfg.Every,
		Resume:  resume,
		Scratch: scratch,
	})
	elapsed := time.Since(start)
	w.metCompute.ObserveDuration(elapsed)
	if runErr != nil && (sc == nil || sc.Next <= req.Lo) {
		// Nothing useful computed.  A drain-cancelled shard is refused
		// so the coordinator redispatches it whole; anything else is a
		// plain error.
		if w.draining.Load() {
			return refusal(http.StatusServiceUnavailable, reasonDraining, "worker draining")
		}
		if leased && w.leaseLapsed(task) {
			return refusal(http.StatusServiceUnavailable, reasonLease, "shard lease lapsed")
		}
		return &shardOutcome{status: http.StatusInternalServerError, body: errorBody{Error: runErr.Error()}}
	}
	resp := ShardResponse{
		Lo:          sc.Lo,
		Next:        sc.Next,
		Hi:          req.Hi,
		TotalB:      sc.Plan.TotalB,
		Complete:    sc.Plan.Complete,
		Fingerprint: sc.Plan.Fingerprint,
		Partial:     sc.Next < req.Hi,
		B:           sc.Counts.B,
		Raw:         sc.Counts.Raw,
		Adj:         sc.Counts.Adj,
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
	}
	resp.CRC64 = resp.CRC()
	// Park the result — complete or partial — for re-delivery: this is
	// what makes a coordinator restart recomputation-free.
	if task != nil {
		w.mu.Lock()
		w.retain.put(retainKey{req.Fingerprint, req.Lo, req.Hi}, &resp)
		w.mu.Unlock()
	}
	if resp.Partial {
		w.partial.Add(1)
		w.metPartial.Inc()
	} else {
		w.served.Add(1)
		w.metServed.Inc()
	}
	w.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "cluster_shard_served",
		slog.String("dataset", req.DatasetID),
		slog.Int64("lo", sc.Lo), slog.Int64("next", sc.Next), slog.Int64("hi", req.Hi),
		slog.Bool("partial", resp.Partial),
		slog.Bool("resumed", resume != nil),
		slog.Duration("elapsed", elapsed),
	)
	return &shardOutcome{status: http.StatusOK, resp: &resp}
}

// leaseLapsed reports whether the task's lease expired or was disowned.
func (w *Worker) leaseLapsed(t *shardTask) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return t.disowned || (!t.lease.IsZero() && time.Now().After(t.lease))
}

// watchLease cancels a leased compute when its lease — which re-probes
// and lease heartbeats keep pushing forward — finally lapses, so an
// orphaned shard parks its prefix instead of burning CPU forever for a
// coordinator that may never return.
func (w *Worker) watchLease(t *shardTask) {
	for {
		w.mu.Lock()
		d := time.Until(t.lease)
		w.mu.Unlock()
		if d <= 0 {
			w.leaseExpired.Add(1)
			w.metLeaseExpired.Inc()
			w.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "cluster_shard_lease_expired")
			t.cancel()
			return
		}
		select {
		case <-time.After(d):
		case <-t.done:
			return
		}
	}
}

// handleLeases applies a coordinator lease heartbeat: every in-flight
// leased compute whose plan fingerprint is listed gets its lease
// extended; when the body is authoritative, unlisted computes are
// disowned — cancelled now, their prefix parked by the compute path.
// Retention is never purged here (see retention.go for why).
func (w *Worker) handleLeases(rw http.ResponseWriter, r *http.Request) {
	var body leaseBody
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
		writeClusterJSON(rw, http.StatusBadRequest, errorBody{Error: "bad lease body: " + err.Error()})
		return
	}
	listed := make(map[uint64]bool, len(body.Fingerprints))
	for _, fp := range body.Fingerprints {
		listed[fp] = true
	}
	until := time.Now().Add(time.Duration(body.LeaseMS) * time.Millisecond)
	ack := leaseAck{}
	w.mu.Lock()
	for _, t := range w.tasks {
		if t.cancel == nil {
			continue // unleased compute: lifetime is its requester's
		}
		switch {
		case listed[t.fp] && body.LeaseMS > 0:
			if until.After(t.lease) {
				t.lease = until
			}
			ack.Renewed++
		case body.Authoritative && !listed[t.fp] && !t.disowned:
			t.disowned = true
			t.cancel()
			ack.Disowned++
		}
	}
	w.mu.Unlock()
	if ack.Renewed > 0 {
		w.leaseRenewed.Add(int64(ack.Renewed))
		w.metLeaseRenewed.Add(int64(ack.Renewed))
	}
	if ack.Disowned > 0 {
		w.leaseDisowned.Add(int64(ack.Disowned))
		w.metLeaseDisowned.Add(int64(ack.Disowned))
		w.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "cluster_shards_disowned",
			slog.Int("count", ack.Disowned))
	}
	writeClusterJSON(rw, http.StatusOK, ack)
}

// Join registers the worker with a coordinator and heartbeats until
// Drain (or ctx cancellation); advertise is this daemon's base URL as
// the coordinator should dial it.  Registration failures are retried on
// the heartbeat interval — a worker that boots before its coordinator
// joins as soon as the coordinator is up.
func (w *Worker) Join(ctx context.Context, coordinator, advertise string, interval time.Duration) {
	if interval <= 0 {
		interval = 3 * time.Second
	}
	w.mu.Lock()
	w.coordinator = coordinator
	w.mu.Unlock()
	hctx, cancel := context.WithCancel(ctx)
	w.hb.Lock()
	w.hb.stop = cancel
	done := make(chan struct{})
	w.hb.done = done
	w.hb.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			w.register(hctx, coordinator, advertise)
			select {
			case <-hctx.Done():
				return
			case <-t.C:
			}
		}
	}()
}

func (w *Worker) register(ctx context.Context, coordinator, advertise string) {
	body, _ := json.Marshal(joinBody{Addr: advertise})
	rctx, cancel := context.WithTimeout(ctx, w.cfg.JoinTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, "POST", coordinator+WorkersPath, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		if errors.Is(rctx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
			w.metJoinTime.Inc()
		}
		w.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "cluster_join_failed",
			slog.String("coordinator", coordinator), slog.String("error", err.Error()))
		return
	}
	resp.Body.Close()
}

func (w *Worker) stopHeartbeat() {
	w.hb.Lock()
	stop, done := w.hb.stop, w.hb.done
	w.hb.stop, w.hb.done = nil, nil
	w.hb.Unlock()
	if stop != nil {
		stop()
		<-done
	}
}

// Deregister removes the worker from the coordinator's membership — the
// drain path's final courtesy, so the coordinator stops dispatching to
// a departing node immediately instead of after the heartbeat TTL.
func (w *Worker) Deregister(coordinator, advertise string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "DELETE", coordinator+WorkersPath+"?addr="+url.QueryEscape(advertise), nil)
	if err != nil {
		return
	}
	if resp, err := w.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// mergeDone derives a context from a that also cancels when b does.
func mergeDone(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

func writeClusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
