package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"sprint/internal/core"
	"sprint/internal/jobs"
	"sprint/internal/metrics"
)

// PrepSource resolves a content-addressed dataset id to a shared
// preparation, pinning the dataset until the release function is
// called.  *jobs.Manager implements it: shards reuse the same registry,
// disk mirror and per-dataset prep cache as local jobs.
type PrepSource interface {
	PreparedDataset(id string, labels []int, opt core.Options) (*core.Prepared, func(), error)
}

// WorkerConfig configures a worker node's shard service.
type WorkerConfig struct {
	// Source resolves dataset ids to shared preparations; normally the
	// daemon's *jobs.Manager.
	Source PrepSource
	// Client performs the join/deregister control RPCs; nil uses a
	// private client with JoinTimeout.  Control calls must never hang:
	// a heartbeat stuck on a half-open coordinator connection would
	// stall the whole heartbeat loop and expire the membership.
	Client *http.Client
	// JoinTimeout bounds one registration or deregistration RPC.
	// Defaults to 5s.
	JoinTimeout time.Duration
	// NProcs is the default rank count per shard (0 = all CPUs); a
	// shard request carrying its own NProcs wins.
	NProcs int
	// Every is the window length of the shard compute loop, in
	// permutations — the drain granularity: a draining worker stops at
	// the next window boundary and ships the prefix.  Defaults to 1000.
	Every int64
	// MaxConcurrent bounds concurrently computing shards (further
	// requests queue on the semaphore).  Defaults to 2.
	MaxConcurrent int
	// Metrics receives the worker-side cluster series; nil gets a
	// private registry.
	Metrics *metrics.Registry
	// Logger receives shard lifecycle logs; nil discards.
	Logger *slog.Logger
}

// Worker serves shard compute requests on a daemon.  It is mounted on
// the daemon's instrumented mux via Routes and drained via Drain before
// shutdown.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	sem       chan struct{}
	draining  atomic.Bool
	drainCtx  context.Context
	drainStop context.CancelFunc

	scratch sync.Pool // *core.RunScratch, reused across shards

	mu          sync.Mutex
	coordinator string // joined coordinator base URL, for Info
	active      int

	served  atomic.Int64
	partial atomic.Int64
	refused atomic.Int64

	metServed   *metrics.Counter
	metPartial  *metrics.Counter
	metRefused  map[string]*metrics.Counter
	metCompute  *metrics.Histogram
	metJoinTime *metrics.Counter

	hb struct {
		sync.Mutex
		stop context.CancelFunc
		done chan struct{}
	}
}

// NewWorker builds a worker shard service over src.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Every < 1 {
		cfg.Every = 1000
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 2
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.JoinTimeout}
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{
		cfg:       cfg,
		client:    cfg.Client,
		sem:       make(chan struct{}, cfg.MaxConcurrent),
		drainCtx:  ctx,
		drainStop: cancel,
	}
	w.scratch.New = func() any { return &core.RunScratch{} }
	reg := cfg.Metrics
	reg.Help("cluster_worker_shards_served_total", "Shard requests answered with complete counts.")
	reg.Help("cluster_worker_shards_partial_total", "Shard requests answered with a drained partial prefix.")
	reg.Help("cluster_worker_shards_refused_total", "Shard requests refused, by reason.")
	reg.Help("cluster_worker_shard_compute_seconds", "Wall time computing one shard's counts.")
	reg.Help("cluster_rpc_timeout_total", "Cluster RPCs that hit their deadline, by call.")
	w.metJoinTime = reg.Counter("cluster_rpc_timeout_total", "call", "join")
	w.metServed = reg.Counter("cluster_worker_shards_served_total")
	w.metPartial = reg.Counter("cluster_worker_shards_partial_total")
	w.metRefused = map[string]*metrics.Counter{
		reasonDraining:       reg.Counter("cluster_worker_shards_refused_total", "reason", reasonDraining),
		reasonUnknownDataset: reg.Counter("cluster_worker_shards_refused_total", "reason", reasonUnknownDataset),
		reasonFingerprint:    reg.Counter("cluster_worker_shards_refused_total", "reason", reasonFingerprint),
	}
	w.metCompute = reg.Histogram("cluster_worker_shard_compute_seconds", metrics.DefLatencyBuckets)
	return w
}

// Role implements Node.
func (w *Worker) Role() string { return "worker" }

// Routes implements Node: the shard compute endpoint and a liveness
// ping.
func (w *Worker) Routes() []Route {
	return []Route{
		{Method: "POST", Pattern: ShardPath, Handler: w.handleShard},
		{Method: "GET", Pattern: PingPath, Handler: w.handlePing},
	}
}

// Info implements Node.
func (w *Worker) Info() Info {
	w.mu.Lock()
	coord, active := w.coordinator, w.active
	w.mu.Unlock()
	return Info{
		Role: "worker",
		Worker: &WorkerNodeInfo{
			Coordinator:   coord,
			Draining:      w.draining.Load(),
			ShardsActive:  active,
			ShardsServed:  w.served.Load(),
			ShardsPartial: w.partial.Load(),
			ShardsRefused: w.refused.Load(),
		},
	}
}

// Draining reports whether Drain has been called.
func (w *Worker) Draining() bool { return w.draining.Load() }

// Drain stops accepting new shards and cancels in-flight shard
// contexts; each in-flight shard stops at its next window boundary and
// its handler responds with the partial prefix, which the coordinator
// merges and re-dispatches around.  The HTTP server's own Shutdown then
// waits for those responses to flush.  Drain is idempotent.
func (w *Worker) Drain() {
	if w.draining.CompareAndSwap(false, true) {
		w.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "cluster_worker_draining")
		w.drainStop()
		w.stopHeartbeat()
	}
}

func (w *Worker) handlePing(rw http.ResponseWriter, r *http.Request) {
	writeClusterJSON(rw, http.StatusOK, map[string]any{"ok": !w.draining.Load(), "role": "worker"})
}

func (w *Worker) refuse(rw http.ResponseWriter, status int, reason, msg string) {
	w.refused.Add(1)
	if c, ok := w.metRefused[reason]; ok {
		c.Inc()
	}
	writeClusterJSON(rw, status, errorBody{Error: msg, Reason: reason})
}

// handleShard computes one shard: resolve the shared preparation by
// dataset id, verify the plan fingerprint against the coordinator's,
// run the [lo, hi) range, and return the counts.  The compute context
// is the request context (coordinator gone → stop) joined with the
// drain context (SIGTERM → stop at the window boundary and ship the
// prefix).
func (w *Worker) handleShard(rw http.ResponseWriter, r *http.Request) {
	if w.draining.Load() {
		w.refuse(rw, http.StatusServiceUnavailable, reasonDraining, "worker draining")
		return
	}
	var req ShardRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		writeClusterJSON(rw, http.StatusBadRequest, errorBody{Error: "bad shard request: " + err.Error()})
		return
	}
	if req.Options.Mode == core.ModeSequential {
		// A coordinator rewrites sequential jobs to exact shards before
		// dispatch; a sequential shard request means a version-skewed or
		// misbehaving coordinator.  Refuse loudly rather than let
		// core.RunShard's rejection read as a generic shard failure.
		writeClusterJSON(rw, http.StatusBadRequest, errorBody{Error: "sequential mode never dispatches to workers: shards compute exact counts, the coordinator applies the stopping rule to the merge"})
		return
	}
	select {
	case w.sem <- struct{}{}:
	case <-r.Context().Done():
		return
	case <-w.drainCtx.Done():
		w.refuse(rw, http.StatusServiceUnavailable, reasonDraining, "worker draining")
		return
	}
	defer func() { <-w.sem }()

	prep, release, err := w.cfg.Source.PreparedDataset(req.DatasetID, req.Labels, req.Options)
	if err != nil {
		if errors.Is(err, jobs.ErrUnknownDataset) {
			w.refuse(rw, http.StatusNotFound, reasonUnknownDataset, "unknown dataset "+req.DatasetID)
			return
		}
		writeClusterJSON(rw, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	defer release()

	plan, err := core.PlanRun(prep, req.Options)
	if err != nil {
		writeClusterJSON(rw, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// The fingerprint covers engine version, options, enumeration
	// order, labels and a data sample: if this node would enumerate a
	// different sequence than the coordinator planned, computing would
	// merge wrong counts — refuse instead.
	if req.Fingerprint != 0 && req.Fingerprint != plan.Fingerprint {
		w.refuse(rw, http.StatusConflict, reasonFingerprint,
			fmt.Sprintf("plan fingerprint %016x != coordinator %016x", plan.Fingerprint, req.Fingerprint))
		return
	}
	if req.TotalB != 0 && req.TotalB != plan.TotalB {
		w.refuse(rw, http.StatusConflict, reasonFingerprint,
			fmt.Sprintf("plan B %d != coordinator %d", plan.TotalB, req.TotalB))
		return
	}

	ctx, cancel := mergeDone(r.Context(), w.drainCtx)
	defer cancel()
	nprocs := req.NProcs
	if nprocs < 1 {
		nprocs = w.cfg.NProcs
	}
	scratch := w.scratch.Get().(*core.RunScratch)
	defer w.scratch.Put(scratch)
	w.mu.Lock()
	w.active++
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.active--
		w.mu.Unlock()
	}()

	start := time.Now()
	sc, runErr := core.RunShard(prep, req.Options, req.Lo, req.Hi, core.RunControl{
		Ctx:     ctx,
		NProcs:  nprocs,
		Every:   w.cfg.Every,
		Scratch: scratch,
	})
	elapsed := time.Since(start)
	w.metCompute.ObserveDuration(elapsed)
	if runErr != nil && (sc == nil || sc.Next <= req.Lo) {
		// Nothing useful computed.  A drain-cancelled shard is refused
		// so the coordinator redispatches it whole; anything else is a
		// plain error.
		if w.draining.Load() {
			w.refuse(rw, http.StatusServiceUnavailable, reasonDraining, "worker draining")
			return
		}
		writeClusterJSON(rw, http.StatusInternalServerError, errorBody{Error: runErr.Error()})
		return
	}
	resp := ShardResponse{
		Lo:          sc.Lo,
		Next:        sc.Next,
		Hi:          req.Hi,
		TotalB:      sc.Plan.TotalB,
		Complete:    sc.Plan.Complete,
		Fingerprint: sc.Plan.Fingerprint,
		Partial:     sc.Next < req.Hi,
		B:           sc.Counts.B,
		Raw:         sc.Counts.Raw,
		Adj:         sc.Counts.Adj,
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
	}
	resp.CRC64 = resp.CRC()
	if resp.Partial {
		w.partial.Add(1)
		w.metPartial.Inc()
	} else {
		w.served.Add(1)
		w.metServed.Inc()
	}
	w.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "cluster_shard_served",
		slog.String("dataset", req.DatasetID),
		slog.Int64("lo", sc.Lo), slog.Int64("next", sc.Next), slog.Int64("hi", req.Hi),
		slog.Bool("partial", resp.Partial),
		slog.Duration("elapsed", elapsed),
	)
	writeClusterJSON(rw, http.StatusOK, resp)
}

// Join registers the worker with a coordinator and heartbeats until
// Drain (or ctx cancellation); advertise is this daemon's base URL as
// the coordinator should dial it.  Registration failures are retried on
// the heartbeat interval — a worker that boots before its coordinator
// joins as soon as the coordinator is up.
func (w *Worker) Join(ctx context.Context, coordinator, advertise string, interval time.Duration) {
	if interval <= 0 {
		interval = 3 * time.Second
	}
	w.mu.Lock()
	w.coordinator = coordinator
	w.mu.Unlock()
	hctx, cancel := context.WithCancel(ctx)
	w.hb.Lock()
	w.hb.stop = cancel
	done := make(chan struct{})
	w.hb.done = done
	w.hb.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			w.register(hctx, coordinator, advertise)
			select {
			case <-hctx.Done():
				return
			case <-t.C:
			}
		}
	}()
}

func (w *Worker) register(ctx context.Context, coordinator, advertise string) {
	body, _ := json.Marshal(joinBody{Addr: advertise})
	rctx, cancel := context.WithTimeout(ctx, w.cfg.JoinTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, "POST", coordinator+WorkersPath, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		if errors.Is(rctx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
			w.metJoinTime.Inc()
		}
		w.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "cluster_join_failed",
			slog.String("coordinator", coordinator), slog.String("error", err.Error()))
		return
	}
	resp.Body.Close()
}

func (w *Worker) stopHeartbeat() {
	w.hb.Lock()
	stop, done := w.hb.stop, w.hb.done
	w.hb.stop, w.hb.done = nil, nil
	w.hb.Unlock()
	if stop != nil {
		stop()
		<-done
	}
}

// Deregister removes the worker from the coordinator's membership — the
// drain path's final courtesy, so the coordinator stops dispatching to
// a departing node immediately instead of after the heartbeat TTL.
func (w *Worker) Deregister(coordinator, advertise string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "DELETE", coordinator+WorkersPath+"?addr="+url.QueryEscape(advertise), nil)
	if err != nil {
		return
	}
	if resp, err := w.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// mergeDone derives a context from a that also cancels when b does.
func mergeDone(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

func writeClusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
