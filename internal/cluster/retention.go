package cluster

import (
	"container/list"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"

	"sprint/internal/durable"
)

// This file is the worker side of coordinator-crash tolerance: a
// bounded, optionally disk-backed cache of shard results keyed by
// (plan fingerprint, [lo, hi)).  A worker finishes — or parks, when its
// lease lapses — every leased shard into retention, so a coordinator
// that restarts and re-probes the same window gets the bytes back
// without recomputation: a complete entry is re-delivered as-is, a
// partial entry seeds the recompute as a resume prefix.
//
// Retention is deliberately never purged by a disown: a restarted
// coordinator's authoritative lease set cannot include jobs its ledger
// replay has not re-admitted yet, and the parked results are exactly
// what that replay will come back for.  Entries age out LRU instead.
//
// Disk entries reuse the journal's framing (u32-LE length, u64-LE
// CRC64-ECMA, JSON payload); the payload is the full ShardResponse,
// whose own CRC64 stamp is verified again on load, so a corrupt file
// can never re-enter the merge path.

// retainKey identifies one retained shard result.
type retainKey struct {
	fp     uint64
	lo, hi int64
}

// retainEntry is one cached result; resp is immutable once stored.
type retainEntry struct {
	key  retainKey
	resp *ShardResponse
}

// retention is the LRU store.  Callers synchronize externally (the
// worker uses its own mutex); methods never block on the network.
type retention struct {
	dir   string // "" for memory-only
	max   int
	ll    *list.List // front = most recently used, values *retainEntry
	byKey map[retainKey]*list.Element
}

var retainCRCTable = crc64.MakeTable(crc64.ECMA)

// newRetention builds the store and, when dir is set, loads every valid
// retained result from a previous life (corrupt files are quarantined).
func newRetention(dir string, max int) (*retention, error) {
	rt := &retention{dir: dir, max: max, ll: list.New(), byKey: make(map[retainKey]*list.Element)}
	if dir == "" {
		return rt, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: retention dir: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.shard"))
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		resp, ok := readRetained(name)
		if !ok {
			durable.Quarantine(name)
			continue
		}
		rt.put(retainKey{resp.Fingerprint, resp.Lo, resp.Hi}, resp)
	}
	return rt, nil
}

// readRetained parses and verifies one retained-result file.
func readRetained(path string) (*ShardResponse, bool) {
	data, err := durable.ReadFile(path, "retain.read")
	if err != nil || len(data) < 12 {
		return nil, false
	}
	n := int(binary.LittleEndian.Uint32(data))
	sum := binary.LittleEndian.Uint64(data[4:])
	if n < 2 || 12+n != len(data) {
		return nil, false
	}
	payload := data[12:]
	if crc64.Checksum(payload, retainCRCTable) != sum {
		return nil, false
	}
	var resp ShardResponse
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, false
	}
	// The response must be internally consistent and carry a verified
	// end-to-end stamp, exactly as if it had just been computed.
	if resp.Fingerprint == 0 || resp.Next <= resp.Lo || resp.Next > resp.Hi ||
		resp.B != resp.Next-resp.Lo || len(resp.Raw) != len(resp.Adj) ||
		resp.CRC64 == 0 || resp.CRC64 != resp.CRC() {
		return nil, false
	}
	return &resp, true
}

// fileName is the on-disk name for a key.
func (rt *retention) fileName(k retainKey) string {
	return filepath.Join(rt.dir, fmt.Sprintf("%016x-%d-%d.shard", k.fp, k.lo, k.hi))
}

// get returns the retained result for k (nil on miss) and marks it
// most recently used.
func (rt *retention) get(k retainKey) *ShardResponse {
	el, ok := rt.byKey[k]
	if !ok {
		return nil
	}
	rt.ll.MoveToFront(el)
	return el.Value.(*retainEntry).resp
}

// put stores (or replaces) the result for k and evicts LRU entries past
// the bound.  Disk errors degrade to memory-only retention: the entry
// still serves this life, it just will not survive the next one.
func (rt *retention) put(k retainKey, resp *ShardResponse) {
	if rt.max == 0 {
		return
	}
	if el, ok := rt.byKey[k]; ok {
		el.Value.(*retainEntry).resp = resp
		rt.ll.MoveToFront(el)
	} else {
		rt.byKey[k] = rt.ll.PushFront(&retainEntry{key: k, resp: resp})
	}
	if rt.dir != "" {
		payload, err := json.Marshal(resp)
		if err == nil {
			buf := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
			buf = binary.LittleEndian.AppendUint64(buf, crc64.Checksum(payload, retainCRCTable))
			buf = append(buf, payload...)
			durable.WriteFileAtomic(rt.fileName(k), buf, "retain.write")
		}
	}
	for rt.max > 0 && rt.ll.Len() > rt.max {
		el := rt.ll.Back()
		e := el.Value.(*retainEntry)
		rt.ll.Remove(el)
		delete(rt.byKey, e.key)
		if rt.dir != "" {
			os.Remove(rt.fileName(e.key))
		}
	}
}

// size reports the number of retained results.
func (rt *retention) size() int {
	if rt == nil {
		return 0
	}
	return rt.ll.Len()
}
