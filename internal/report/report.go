// Package report renders the paper's tables and figures as text: fixed
// width profile tables in the layout of Tables I–V, the Table VI elapsed
// time comparison, and an ASCII rendition of Figure 3's log-log speedup
// plot.  Everything writes to an io.Writer so the same code serves the
// CLI, the benchmarks and golden tests.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ProfileRow is one line of a profile table.
type ProfileRow struct {
	Procs                          int
	Pre, Bcast, Data, Kernel, PVal float64
	Speedup, SpeedupKernel         float64
}

// Table writes a profile table in the paper's column layout.
func Table(w io.Writer, title string, rows []ProfileRow) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	header := fmt.Sprintf("%8s %12s %12s %10s %12s %12s %9s %9s",
		"Procs", "Pre (s)", "Bcast (s)", "Data (s)", "Kernel (s)", "PValues (s)", "Speedup", "Spd(krn)")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%8d %12.3f %12.3f %10.3f %12.3f %12.3f %9.2f %9.2f\n",
			r.Procs, r.Pre, r.Bcast, r.Data, r.Kernel, r.PVal, r.Speedup, r.SpeedupKernel); err != nil {
			return err
		}
	}
	return nil
}

// ComparisonRow pairs a modelled (or measured) value with the paper's.
type ComparisonRow struct {
	Procs        int
	PaperKernel  float64
	ModelKernel  float64
	PaperTotal   float64
	ModelTotal   float64
	PaperSpeedup float64
	ModelSpeedup float64
}

// DeltaPct returns the relative error of model vs paper total in percent.
func (r ComparisonRow) DeltaPct() float64 {
	if r.PaperTotal == 0 {
		return 0
	}
	return 100 * (r.ModelTotal - r.PaperTotal) / r.PaperTotal
}

// Comparison writes a paper-vs-model table.
func Comparison(w io.Writer, title string, rows []ComparisonRow) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	header := fmt.Sprintf("%8s %14s %14s %13s %13s %11s %11s %8s",
		"Procs", "kernel(paper)", "kernel(model)", "total(paper)", "total(model)",
		"spd(paper)", "spd(model)", "Δtot%")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%8d %14.3f %14.3f %13.2f %13.2f %11.2f %11.2f %+7.1f%%\n",
			r.Procs, r.PaperKernel, r.ModelKernel, r.PaperTotal, r.ModelTotal,
			r.PaperSpeedup, r.ModelSpeedup, r.DeltaPct()); err != nil {
			return err
		}
	}
	return nil
}

// Series is one curve of the speedup figure.
type Series struct {
	Name   string
	Procs  []int
	Values []float64
}

// Figure renders a log-log speedup plot as ASCII art, one marker letter per
// series, with the optimal (linear) speedup drawn as '*'.  It mirrors
// Figure 3: x = process count, y = speedup, both on log2 scales.
func Figure(w io.Writer, title string, series []Series, maxProcs int) error {
	const width, height = 66, 22
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	maxLog := math.Log2(float64(maxProcs))
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	put := func(p int, v float64, marker byte) {
		if v <= 0 {
			return
		}
		x := int(math.Round(math.Log2(float64(p)) / maxLog * float64(width-1)))
		y := int(math.Round(math.Log2(v) / maxLog * float64(height-1)))
		if x < 0 || x >= width || y < 0 || y >= height {
			return
		}
		row := height - 1 - y
		if grid[row][x] == ' ' || grid[row][x] == '*' {
			grid[row][x] = marker
		}
	}
	// Optimal speedup: y = x.
	for p := 1; p <= maxProcs; p *= 2 {
		put(p, float64(p), '*')
	}
	markers := []byte{'H', 'E', 'A', 'N', 'Q', 'h', 'e', 'a', 'n', 'q'}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, p := range s.Procs {
			put(p, s.Values[i], m)
		}
	}
	for i, row := range grid {
		label := "         "
		// y-axis labels at the top, middle and bottom.
		switch i {
		case 0:
			label = fmt.Sprintf("%8d ", maxProcs)
		case height / 2:
			label = fmt.Sprintf("%8.0f ", math.Pow(2, maxLog/2))
		case height - 1:
			label = fmt.Sprintf("%8d ", 1)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s1%s%d (process count, log scale)\n", "",
		strings.Repeat(" ", width-2-len(fmt.Sprint(maxProcs))), maxProcs); err != nil {
		return err
	}
	var legend []string
	legend = append(legend, "* optimal")
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	_, err := fmt.Fprintf(w, "  legend: %s\n", strings.Join(legend, " | "))
	return err
}

// TableVIRow is one line of the Table VI reproduction.
type TableVIRow struct {
	Genes, Samples int
	SizeMB         float64
	Perms          int64
	PaperTotal     float64
	ModelTotal     float64
	PaperSerial    float64
	ModelSerial    float64
}

// TableVI writes the large-dataset elapsed-time comparison.
func TableVI(w io.Writer, title string, rows []TableVIRow) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	header := fmt.Sprintf("%18s %9s %10s %12s %12s %14s %14s",
		"Dataset", "Size MB", "Perms", "total(paper)", "total(model)", "serial(paper)", "serial(model)")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, r := range rows {
		name := fmt.Sprintf("%d x %d", r.Genes, r.Samples)
		if _, err := fmt.Fprintf(w, "%18s %9.2f %10d %12.2f %12.2f %14.0f %14.0f\n",
			name, r.SizeMB, r.Perms, r.PaperTotal, r.ModelTotal, r.PaperSerial, r.ModelSerial); err != nil {
			return err
		}
	}
	return nil
}

// TableCSV writes profile rows as CSV for downstream plotting, one line
// per process count with a leading platform column.
func TableCSV(w io.Writer, platform string, rows []ProfileRow) error {
	if _, err := fmt.Fprintln(w, "platform,procs,pre_s,bcast_s,data_s,kernel_s,pvalues_s,speedup,speedup_kernel"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%g,%g,%g,%g,%g,%g,%g\n",
			platform, r.Procs, r.Pre, r.Bcast, r.Data, r.Kernel, r.PVal, r.Speedup, r.SpeedupKernel); err != nil {
			return err
		}
	}
	return nil
}

// PValueTable writes the top-k most significant rows of an analysis result
// for human consumption.
func PValueTable(w io.Writer, names []string, stat, rawp, adjp []float64, order []int, k int) error {
	if k > len(order) {
		k = len(order)
	}
	header := fmt.Sprintf("%4s %-16s %12s %12s %12s", "#", "gene", "statistic", "raw p", "adj p")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for i := 0; i < k; i++ {
		r := order[i]
		name := fmt.Sprintf("row%d", r)
		if names != nil {
			name = names[r]
		}
		if _, err := fmt.Fprintf(w, "%4d %-16s %12.4f %12.6f %12.6f\n",
			i+1, name, stat[r], rawp[r], adjp[r]); err != nil {
			return err
		}
	}
	return nil
}
