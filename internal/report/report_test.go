package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableLayout(t *testing.T) {
	var buf bytes.Buffer
	rows := []ProfileRow{
		{Procs: 1, Pre: 0.26, Kernel: 795.6, Speedup: 1, SpeedupKernel: 1},
		{Procs: 512, Pre: 0.26, Bcast: 0.028, Data: 0.013, Kernel: 1.633, PVal: 0.606, Speedup: 313.09, SpeedupKernel: 487.2},
	}
	if err := Table(&buf, "Table I (HECToR)", rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I (HECToR)", "Kernel (s)", "795.600", "487.20", "512"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("table has %d lines, want 5", len(lines))
	}
}

func TestComparisonDelta(t *testing.T) {
	r := ComparisonRow{PaperTotal: 100, ModelTotal: 110}
	if r.DeltaPct() != 10 {
		t.Errorf("DeltaPct = %v, want 10", r.DeltaPct())
	}
	zero := ComparisonRow{}
	if zero.DeltaPct() != 0 {
		t.Errorf("zero DeltaPct = %v", zero.DeltaPct())
	}
	var buf bytes.Buffer
	if err := Comparison(&buf, "cmp", []ComparisonRow{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "+10.0%") {
		t.Errorf("comparison output missing delta:\n%s", buf.String())
	}
}

func TestFigureContainsSeriesAndLegend(t *testing.T) {
	var buf bytes.Buffer
	series := []Series{
		{Name: "HECToR", Procs: []int{1, 2, 4, 8}, Values: []float64{1, 1.95, 3.82, 7.58}},
		{Name: "ECDF", Procs: []int{1, 2, 4, 8}, Values: []float64{1, 1.99, 3.79, 5.77}},
	}
	if err := Figure(&buf, "Figure 3", series, 512); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 3", "legend:", "H HECToR", "E ECDF", "* optimal", "process count"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "H") || !strings.Contains(out, "E") {
		t.Error("figure has no data markers")
	}
}

func TestFigureMonotoneCurveRendersDiagonally(t *testing.T) {
	// Optimal speedup should mark the diagonal: the '*' for p=1 sits in
	// the bottom-left, for maxProcs in the top-right.
	var buf bytes.Buffer
	if err := Figure(&buf, "fig", nil, 64); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	var first, last int
	for i, l := range lines {
		if strings.Contains(l, "*") {
			if first == 0 {
				first = i
			}
			last = i
		}
	}
	if first >= last {
		t.Errorf("optimal markers not spread vertically (first %d, last %d)", first, last)
	}
	topIdx := strings.Index(lines[first], "*")
	botIdx := strings.Index(lines[last], "*")
	if topIdx <= botIdx {
		t.Errorf("diagonal not ascending: top marker col %d, bottom %d", topIdx, botIdx)
	}
}

func TestTableVILayout(t *testing.T) {
	var buf bytes.Buffer
	rows := []TableVIRow{
		{Genes: 36612, Samples: 76, SizeMB: 21.22, Perms: 500000,
			PaperTotal: 73.18, ModelTotal: 70.1, PaperSerial: 20750, ModelSerial: 19094},
	}
	if err := TableVI(&buf, "Table VI", rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"36612 x 76", "21.22", "500000", "73.18", "20750"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableVI missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	var buf bytes.Buffer
	rows := []ProfileRow{{Procs: 2, Pre: 0.1, Kernel: 10.5, Speedup: 1.9, SpeedupKernel: 1.95}}
	if err := TableCSV(&buf, "HECToR", rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "platform,procs,") {
		t.Errorf("missing CSV header: %s", out)
	}
	if !strings.Contains(out, "HECToR,2,0.1,0,0,10.5,0,1.9,1.95") {
		t.Errorf("bad CSV row: %s", out)
	}
}

func TestPValueTable(t *testing.T) {
	var buf bytes.Buffer
	stat := []float64{5.5, 0.2, -3.3}
	rawp := []float64{0.001, 0.8, 0.01}
	adjp := []float64{0.002, 0.9, 0.02}
	order := []int{0, 2, 1}
	names := []string{"geneA", "geneB", "geneC"}
	if err := PValueTable(&buf, names, stat, rawp, adjp, order, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "geneA") || !strings.Contains(out, "geneC") {
		t.Errorf("pvalue table missing ordered genes:\n%s", out)
	}
	if strings.Contains(out, "geneB") {
		t.Errorf("pvalue table shows rank 3 gene with k=2:\n%s", out)
	}
	// Without names, fall back to row indices; k beyond length clamps.
	buf.Reset()
	if err := PValueTable(&buf, nil, stat, rawp, adjp, order, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "row0") {
		t.Errorf("fallback names missing:\n%s", buf.String())
	}
}
