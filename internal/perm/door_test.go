package perm

import (
	"fmt"
	"testing"

	"sprint/internal/stat"
)

// doorDesign builds a two-sample design with n0 zeros then n1 ones.
func doorDesign(t *testing.T, test stat.Test, n0, n1 int) *stat.Design {
	t.Helper()
	lab := make([]int, n0+n1)
	for i := n0; i < n0+n1; i++ {
		lab[i] = 1
	}
	d, err := stat.NewDesign(test, lab)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func combKey(lab []int) string { return fmt.Sprint(lab) }

// TestRevolvingDoorEnumeratesCompleteSet asserts the property the delta
// engine's correctness rests on: RevolvingDoor enumerates EXACTLY the
// labelling set Complete does (every distinct labelling once, observed
// first), in an order where every consecutive pair — including the wrap
// from the last index back to 0 — differs by a single exchange.
func TestRevolvingDoorEnumeratesCompleteSet(t *testing.T) {
	cases := []struct{ n0, n1 int }{
		{2, 2}, {3, 2}, {2, 3}, {4, 4}, {5, 3}, {3, 5}, {6, 2}, {2, 6}, {5, 5},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dv%d", tc.n0, tc.n1), func(t *testing.T) {
			d := doorDesign(t, stat.Welch, tc.n0, tc.n1)
			door, err := NewRevolvingDoor(d)
			if err != nil {
				t.Fatal(err)
			}
			comp, err := NewComplete(d)
			if err != nil {
				t.Fatal(err)
			}
			if door.Total() != comp.Total() {
				t.Fatalf("door total %d, complete total %d", door.Total(), comp.Total())
			}
			total := int(door.Total())
			lab := make([]int, d.N)
			seenDoor := make(map[string]bool, total)
			labsDoor := make([][]int, total)
			for idx := 0; idx < total; idx++ {
				door.Label(int64(idx), lab)
				key := combKey(lab)
				if seenDoor[key] {
					t.Fatalf("door repeats labelling %s at index %d", key, idx)
				}
				seenDoor[key] = true
				labsDoor[idx] = append([]int(nil), lab...)
			}
			for idx := 0; idx < total; idx++ {
				comp.Label(int64(idx), lab)
				if !seenDoor[combKey(lab)] {
					t.Fatalf("door misses complete labelling %v (complete index %d)", lab, idx)
				}
			}
			// Observed first.
			if combKey(labsDoor[0]) != combKey(d.Labels) {
				t.Fatalf("door index 0 = %v, want observed %v", labsDoor[0], d.Labels)
			}
			// Gray property, cyclically.
			for idx := 0; idx < total; idx++ {
				a, b := labsDoor[idx], labsDoor[(idx+1)%total]
				diff := 0
				for j := range a {
					if a[j] != b[j] {
						diff++
					}
				}
				if diff != 2 {
					t.Fatalf("step %d -> %d changes %d positions (want 2): %v -> %v",
						idx, (idx+1)%total, diff, a, b)
				}
			}
		})
	}
}

// TestRevolvingDoorRankUnrank asserts rank/unrank are inverse over the
// whole Gray sequence.
func TestRevolvingDoorRankUnrank(t *testing.T) {
	d := doorDesign(t, stat.Welch, 4, 3)
	door, err := NewRevolvingDoor(d)
	if err != nil {
		t.Fatal(err)
	}
	comb := make([]int, 3)
	for r := int64(0); r < door.Total(); r++ {
		door.unrank(r, comb)
		if got := door.rank(comb); got != r {
			t.Fatalf("rank(unrank(%d)) = %d (comb %v)", r, got, comb)
		}
	}
}

// TestRevolvingDoorLabelsDelta asserts the delta form reproduces Labels:
// applying the move chain to lab0 yields each labelling, at every offset.
func TestRevolvingDoorLabelsDelta(t *testing.T) {
	d := doorDesign(t, stat.Wilcoxon, 4, 4)
	door, err := NewRevolvingDoor(d)
	if err != nil {
		t.Fatal(err)
	}
	total := door.Total()
	for _, start := range []int64{0, 1, 17, total - 5} {
		n := int64(9)
		if start+n > total {
			n = total - start
		}
		flat := make([]int, n*int64(d.N))
		door.Labels(start, n, flat)
		lab0 := make([]int, d.N)
		moves := make([]stat.Exchange, n-1)
		door.LabelsDelta(start, n, lab0, moves)
		cur := append([]int(nil), lab0...)
		for i := int64(0); i < n; i++ {
			if i > 0 {
				mv := moves[i-1]
				if cur[mv.Out] != 1 || cur[mv.In] != 0 {
					t.Fatalf("start %d move %d = %+v invalid on %v", start, i-1, mv, cur)
				}
				cur[mv.Out], cur[mv.In] = 0, 1
			}
			want := flat[i*int64(d.N) : (i+1)*int64(d.N)]
			for j := range cur {
				if cur[j] != want[j] {
					t.Fatalf("start %d perm %d: delta %v, labels %v", start, i, cur, want)
				}
			}
		}
	}
}

// TestRevolvingDoorOK pins the applicability rule: two-class shuffles
// qualify, pair-flip and block designs do not.
func TestRevolvingDoorOK(t *testing.T) {
	if d := doorDesign(t, stat.Welch, 3, 4); !RevolvingDoorOK(d) {
		t.Error("two-sample Welch design should admit the revolving-door order")
	}
	pair, err := stat.NewDesign(stat.PairT, []int{0, 1, 0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if RevolvingDoorOK(pair) {
		t.Error("pairt design must not admit the revolving-door order")
	}
	if _, err := NewRevolvingDoor(pair); err == nil {
		t.Error("NewRevolvingDoor on a pairt design should error")
	}
	blockLab := []int{0, 1, 2, 0, 1, 2}
	block, err := stat.NewDesign(stat.BlockF, blockLab)
	if err != nil {
		t.Fatal(err)
	}
	if RevolvingDoorOK(block) {
		t.Error("blockf design must not admit the revolving-door order")
	}
}
