package perm

import (
	"fmt"
	"math"
	"sync"

	"sprint/internal/stat"
)

// RevolvingDoor enumerates the complete labelling set of a two-sample
// design in the Nijenhuis–Wilf revolving-door Gray order: consecutive
// labellings differ by exactly one element exchange — one column leaves
// class 1 and one enters.  The enumerated SET is identical to Complete's
// (every distinct labelling exactly once, the observed labelling at index
// 0), only the order differs, so exceedance counts, p-values, cache keys
// — anything summed over the whole sequence — are unchanged.  What the
// order buys is the delta fast path: stat.DeltaKernel updates each row's
// class sums with one subtract and one add per permutation instead of
// re-accumulating O(n1) elements (exact on integer rank data, hence
// bitwise identical to full re-evaluation).
//
// Index mapping.  The underlying Gray sequence R(n,k) is CYCLIC — its
// last combination {0..k-2, n-1} and first {0..k-1} also differ by one
// exchange — so the generator rotates it to start at the observed
// labelling: sequence index idx denotes Gray rank (obsRank + idx) mod
// total.  Every consecutive index pair, including the wrap, is a single
// exchange, and unranking is O(n) at ANY index, so chunked windows and
// checkpoints seed at arbitrary offsets exactly as with Complete
// ("rank-aligned unranking").
//
// Like every generator, RevolvingDoor is safe for concurrent use; batch
// scratch is pooled internally so steady-state LabelsDelta calls allocate
// nothing.
type RevolvingDoor struct {
	design  *stat.Design
	n, k    int
	total   int64
	obsRank int64
	binom   []int64 // (n+1)×(k+1) Pascal table: binom[i*(k+1)+j] = C(i,j)
	pool    sync.Pool
}

type doorScratch struct {
	prev, cur []int
}

// RevolvingDoorOK reports whether the design admits the revolving-door
// order: a free two-class shuffle (t, t.equalvar, wilcoxon — and the
// two-class F) whose complete count fits in int64.
func RevolvingDoorOK(d *stat.Design) bool {
	if designKind(d) != kindShuffle || d.K != 2 {
		return false
	}
	_, ok := Binomial(d.N, d.Counts[1])
	return ok
}

// NewRevolvingDoor builds the revolving-door generator for the design, or
// an error when the design is not a two-sample shuffle or the labelling
// count overflows (ErrTooManyPermutations).
func NewRevolvingDoor(d *stat.Design) (*RevolvingDoor, error) {
	if designKind(d) != kindShuffle || d.K != 2 {
		return nil, fmt.Errorf("perm: revolving-door order requires a two-class shuffle design, have %v with %d classes", d.Test, d.K)
	}
	total, ok := Binomial(d.N, d.Counts[1])
	if !ok {
		return nil, fmt.Errorf("%w (design %v with %d columns)", ErrTooManyPermutations, d.Test, d.N)
	}
	g := &RevolvingDoor{design: d, n: d.N, k: d.Counts[1], total: total}
	g.binom = make([]int64, (g.n+1)*(g.k+1))
	for i := 0; i <= g.n; i++ {
		for j := 0; j <= g.k; j++ {
			// Entries actually read by rank/unrank are the subproblem
			// sizes of the recursion, and those only shrink from the root
			// C(n, k) = total, so every read entry fits.  Other cells of
			// the rectangle can exceed total (k > n/2 designs) or even
			// int64; saturate them — a saturated C(i-1, k) still compares
			// correctly against any rank r < total (r >= c is false,
			// exactly as for the true oversized value), so even an
			// out-of-invariant read would not misroute the unranking.
			c, ok := Binomial(i, j)
			if !ok {
				c = math.MaxInt64
			}
			g.binom[i*(g.k+1)+j] = c
		}
	}
	g.pool.New = func() any {
		return &doorScratch{prev: make([]int, g.k), cur: make([]int, g.k)}
	}
	obs := labelPositions(d.Labels, 1)
	g.obsRank = g.rank(obs)
	return g, nil
}

// c returns C(i, j) from the precomputed table.
func (g *RevolvingDoor) c(i, j int) int64 {
	if j < 0 || j > g.k || i < 0 {
		return 0
	}
	return g.binom[i*(g.k+1)+j]
}

// unrank writes the Gray-rank-r k-combination of 0..n-1 into comb
// (ascending).  The recursion mirrors the list structure
// R(i,k) = R(i-1,k) ++ reverse(R(i-1,k-1))·(i-1): a rank past C(i-1,k)
// selects element i-1 and continues at the REVERSED position within the
// (i-1, k-1) sublist — the direction flip that makes the order a Gray
// code.
func (g *RevolvingDoor) unrank(r int64, comb []int) {
	k := g.k
	for i := g.n; k > 0; i-- {
		if k == i {
			// R(i,i) is the single combination {0..i-1}.
			for j := 0; j < i; j++ {
				comb[j] = j
			}
			return
		}
		if ci := g.c(i-1, k); r >= ci {
			comb[k-1] = i - 1
			r = ci + g.c(i-1, k-1) - 1 - r
			k--
		}
	}
}

// rank is the inverse of unrank: the Gray rank of the ascending
// k-combination comb.  The alternating sign tracks the direction
// reversals down the recursion.
func (g *RevolvingDoor) rank(comb []int) int64 {
	var r int64
	neg := false
	k := g.k
	for i := g.n; k > 0; i-- {
		if comb[k-1] == i-1 {
			term := g.c(i-1, k) + g.c(i-1, k-1) - 1
			if neg {
				r -= term
			} else {
				r += term
			}
			neg = !neg
			k--
		}
	}
	return r
}

// grayRank maps a sequence index to its Gray rank: the rotation that puts
// the observed labelling at index 0.
func (g *RevolvingDoor) grayRank(idx int64) int64 {
	r := g.obsRank + idx
	if r >= g.total {
		r -= g.total
	}
	return r
}

// fill writes the labelling of a class-1 combination into dst.
func fillLabelling(dst []int, comb []int) {
	for i := range dst {
		dst[i] = 0
	}
	for _, c := range comb {
		dst[c] = 1
	}
}

// Total implements Generator.
func (g *RevolvingDoor) Total() int64 { return g.total }

// Label implements Generator.
func (g *RevolvingDoor) Label(idx int64, dst []int) {
	if idx < 0 || idx >= g.total {
		panic(fmt.Sprintf("perm: revolving-door index %d out of range [0,%d)", idx, g.total))
	}
	sc := g.pool.Get().(*doorScratch)
	g.unrank(g.grayRank(idx), sc.cur)
	fillLabelling(dst, sc.cur)
	g.pool.Put(sc)
}

// Labels implements Generator: n successive labellings from start, each
// unranked at its own Gray rank (the Pascal table makes one unrank an
// O(columns) integer walk).
func (g *RevolvingDoor) Labels(start, n int64, dst []int) {
	g.checkRange(start, n)
	sc := g.pool.Get().(*doorScratch)
	w := int64(g.design.N)
	for i := int64(0); i < n; i++ {
		g.unrank(g.grayRank(start+i), sc.cur)
		fillLabelling(dst[i*w:(i+1)*w], sc.cur)
	}
	g.pool.Put(sc)
}

// LabelsDelta implements DeltaGenerator: lab0 receives the labelling of
// permutation start and moves[0:n-1] the single exchanges leading to
// start+1 .. start+n-1, in order.  Equivalent to n Label calls with each
// consecutive pair diffed; the Gray property guarantees every diff is
// exactly one element out, one in (enforced — a violation panics, since
// the delta kernels' correctness depends on it).
func (g *RevolvingDoor) LabelsDelta(start, n int64, lab0 []int, moves []stat.Exchange) {
	g.checkRange(start, n)
	if n == 0 {
		return
	}
	if int64(len(moves)) < n-1 {
		panic(fmt.Sprintf("perm: revolving-door delta batch of %d needs %d moves, have %d", n, n-1, len(moves)))
	}
	sc := g.pool.Get().(*doorScratch)
	prev, cur := sc.prev, sc.cur
	g.unrank(g.grayRank(start), prev)
	fillLabelling(lab0, prev)
	for i := int64(1); i < n; i++ {
		g.unrank(g.grayRank(start+i), cur)
		moves[i-1] = diffComb(prev, cur)
		prev, cur = cur, prev
	}
	sc.prev, sc.cur = prev, cur
	g.pool.Put(sc)
}

func (g *RevolvingDoor) checkRange(start, n int64) {
	if start < 0 || n < 0 || start+n > g.total {
		panic(fmt.Sprintf("perm: revolving-door batch [%d,%d) out of range [0,%d)", start, start+n, g.total))
	}
}

// diffComb returns the single exchange turning sorted combination a into
// sorted combination b, panicking if they differ by more than one element
// on either side (which would break the Gray invariant).
func diffComb(a, b []int) stat.Exchange {
	out, in := -1, -1
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			if out >= 0 {
				panic("perm: revolving-door step removed two elements")
			}
			out = a[i]
			i++
		default:
			if in >= 0 {
				panic("perm: revolving-door step added two elements")
			}
			in = b[j]
			j++
		}
	}
	if i < len(a) {
		if out >= 0 {
			panic("perm: revolving-door step removed two elements")
		}
		out = a[i]
	}
	if j < len(b) {
		if in >= 0 {
			panic("perm: revolving-door step added two elements")
		}
		in = b[j]
	}
	if out < 0 || in < 0 {
		panic("perm: revolving-door step is not a single exchange")
	}
	return stat.Exchange{Out: int32(out), In: int32(in)}
}
