package perm

import (
	"testing"

	"sprint/internal/stat"
)

func mustDesign(t *testing.T, test stat.Test, labels []int) *stat.Design {
	t.Helper()
	d, err := stat.NewDesign(test, labels)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func labelsEqual(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCompleteCountPerDesign(t *testing.T) {
	cases := []struct {
		test   stat.Test
		labels []int
		want   int64
	}{
		{stat.Welch, []int{0, 0, 1, 1}, 6},         // C(4,2)
		{stat.Welch, []int{0, 0, 0, 1, 1}, 10},     // C(5,2)
		{stat.F, []int{0, 0, 1, 1, 2, 2}, 90},      // 6!/(2!2!2!)
		{stat.PairT, []int{0, 1, 0, 1, 0, 1}, 8},   // 2^3
		{stat.BlockF, []int{0, 1, 0, 1, 0, 1}, 8},  // (2!)^3
		{stat.BlockF, []int{0, 1, 2, 1, 2, 0}, 36}, // (3!)^2
	}
	for _, tc := range cases {
		d := mustDesign(t, tc.test, tc.labels)
		got, ok := CompleteCount(d)
		if !ok || got != tc.want {
			t.Errorf("CompleteCount(%v, %v) = %d (ok=%v), want %d", tc.test, tc.labels, got, ok, tc.want)
		}
	}
}

func TestCompleteCountOverflow(t *testing.T) {
	// 76 columns, 38 per class: C(76,38) overflows int64, exactly the
	// situation where mt.maxT asks the user for an explicit B.
	labels := make([]int, 76)
	for i := 38; i < 76; i++ {
		labels[i] = 1
	}
	d := mustDesign(t, stat.Welch, labels)
	if _, ok := CompleteCount(d); ok {
		t.Error("CompleteCount for C(76,38) did not report overflow")
	}
	if _, err := NewComplete(d); err == nil {
		t.Error("NewComplete for C(76,38) succeeded, want ErrTooManyPermutations")
	}
}

// checkCompleteGenerator verifies the three paper-mandated properties of a
// complete generator: the observed labelling sits at index 0, every
// labelling is distinct, and the enumeration covers exactly Total()
// labellings that all preserve the design's structure.
func checkCompleteGenerator(t *testing.T, d *stat.Design) {
	t.Helper()
	g, err := NewComplete(d)
	if err != nil {
		t.Fatal(err)
	}
	lab := make([]int, d.N)
	g.Label(0, lab)
	if !labelsEqual(lab, d.Labels) {
		t.Fatalf("Label(0) = %v, want observed %v", lab, d.Labels)
	}
	seen := map[string]bool{}
	counts := make([]int, d.K)
	for idx := int64(0); idx < g.Total(); idx++ {
		g.Label(idx, lab)
		for i := range counts {
			counts[i] = 0
		}
		for _, l := range lab {
			counts[l]++
		}
		for c := range counts {
			if counts[c] != d.Counts[c] {
				t.Fatalf("idx %d: labelling %v changes class counts", idx, lab)
			}
		}
		key := fmtInts(lab)
		if seen[key] {
			t.Fatalf("idx %d: duplicate labelling %v", idx, lab)
		}
		seen[key] = true
	}
	if int64(len(seen)) != g.Total() {
		t.Fatalf("enumerated %d labellings, want %d", len(seen), g.Total())
	}
}

func TestCompleteTwoSample(t *testing.T) {
	// Observed labelling deliberately not the lexicographically first
	// combination, so the observed-first reordering is exercised.
	checkCompleteGenerator(t, mustDesign(t, stat.Welch, []int{1, 0, 1, 0, 0, 1}))
}

func TestCompleteTwoSampleObservedFirstCombination(t *testing.T) {
	// Observed = lexicographically first combination (obsRank = 0).
	checkCompleteGenerator(t, mustDesign(t, stat.Welch, []int{1, 1, 0, 0, 0}))
}

func TestCompleteTwoSampleObservedLastCombination(t *testing.T) {
	checkCompleteGenerator(t, mustDesign(t, stat.Welch, []int{0, 0, 0, 1, 1}))
}

func TestCompleteMultiClass(t *testing.T) {
	checkCompleteGenerator(t, mustDesign(t, stat.F, []int{2, 0, 1, 0, 1, 2}))
}

func TestCompletePairT(t *testing.T) {
	d := mustDesign(t, stat.PairT, []int{0, 1, 1, 0, 0, 1})
	g, err := NewComplete(d)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total() != 8 {
		t.Fatalf("pairt Total = %d, want 8", g.Total())
	}
	// Pair structure must be preserved: each pair holds one 0 and one 1.
	lab := make([]int, d.N)
	for idx := int64(0); idx < 8; idx++ {
		g.Label(idx, lab)
		for j := 0; j < d.Pairs; j++ {
			if lab[2*j]+lab[2*j+1] != 1 {
				t.Fatalf("idx %d: pair %d broken in %v", idx, j, lab)
			}
		}
	}
	checkCompleteGenerator(t, d)
}

func TestCompleteBlockF(t *testing.T) {
	d := mustDesign(t, stat.BlockF, []int{0, 1, 2, 2, 0, 1})
	g, err := NewComplete(d)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total() != 36 {
		t.Fatalf("blockf Total = %d, want 36", g.Total())
	}
	// Every block must remain a permutation of 0..k-1.
	lab := make([]int, d.N)
	for idx := int64(0); idx < g.Total(); idx++ {
		g.Label(idx, lab)
		for b := 0; b < d.Blocks; b++ {
			mask := 0
			for j := 0; j < d.BlockSize; j++ {
				mask |= 1 << uint(lab[b*d.BlockSize+j])
			}
			if mask != 1<<uint(d.BlockSize)-1 {
				t.Fatalf("idx %d: block %d invalid in %v", idx, b, lab)
			}
		}
	}
	checkCompleteGenerator(t, d)
}

func TestCompleteIndexOutOfRangePanics(t *testing.T) {
	d := mustDesign(t, stat.Welch, []int{0, 0, 1, 1})
	g, _ := NewComplete(d)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Label did not panic")
		}
	}()
	g.Label(6, make([]int, 4))
}

func TestRandomReproducibleAndSkippable(t *testing.T) {
	d := mustDesign(t, stat.Welch, []int{0, 0, 0, 0, 1, 1, 1, 1})
	g1 := NewRandom(d, 42, 100)
	g2 := NewRandom(d, 42, 100)
	a, b := make([]int, d.N), make([]int, d.N)
	// Indexed access means "skipping" is just starting later: reading
	// permutation 57 first must give the same labels as reading it after
	// 0..56.
	for idx := int64(0); idx < 100; idx++ {
		g1.Label(idx, a)
	}
	g1.Label(57, a)
	g2.Label(57, b)
	if !labelsEqual(a, b) {
		t.Error("random generator not index-stable: Label(57) differs between access orders")
	}
}

func TestRandomIdentityAtZero(t *testing.T) {
	for _, tc := range []struct {
		test   stat.Test
		labels []int
	}{
		{stat.Welch, []int{0, 1, 0, 1}},
		{stat.F, []int{0, 0, 1, 1, 2, 2}},
		{stat.PairT, []int{0, 1, 0, 1}},
		{stat.BlockF, []int{0, 1, 0, 1}},
	} {
		d := mustDesign(t, tc.test, tc.labels)
		g := NewRandom(d, 7, 10)
		lab := make([]int, d.N)
		g.Label(0, lab)
		if !labelsEqual(lab, d.Labels) {
			t.Errorf("%v: Label(0) = %v, want %v", tc.test, lab, d.Labels)
		}
	}
}

func TestRandomPreservesDesignStructure(t *testing.T) {
	d := mustDesign(t, stat.BlockF, []int{0, 1, 2, 0, 1, 2, 0, 1, 2})
	g := NewRandom(d, 99, 200)
	lab := make([]int, d.N)
	for idx := int64(0); idx < 200; idx++ {
		g.Label(idx, lab)
		for b := 0; b < d.Blocks; b++ {
			mask := 0
			for j := 0; j < d.BlockSize; j++ {
				mask |= 1 << uint(lab[b*d.BlockSize+j])
			}
			if mask != 1<<uint(d.BlockSize)-1 {
				t.Fatalf("idx %d: block %d invalid in %v", idx, b, lab)
			}
		}
	}
}

func TestRandomSeedsDiffer(t *testing.T) {
	d := mustDesign(t, stat.Welch, []int{0, 0, 0, 0, 1, 1, 1, 1})
	g1 := NewRandom(d, 1, 50)
	g2 := NewRandom(d, 2, 50)
	a, b := make([]int, d.N), make([]int, d.N)
	diff := 0
	for idx := int64(1); idx < 50; idx++ {
		g1.Label(idx, a)
		g2.Label(idx, b)
		if !labelsEqual(a, b) {
			diff++
		}
	}
	if diff < 25 {
		t.Errorf("different seeds agree on %d/49 permutations", 49-diff)
	}
}

func TestStoredChunkMatchesFullSequence(t *testing.T) {
	// The defining property of the stored generator (Figure 2): a rank
	// that materialises [lo,hi) by skipping the prefix sees exactly the
	// same labellings as the serial run that materialises everything.
	d := mustDesign(t, stat.Welch, []int{0, 0, 0, 1, 1, 1})
	const B = 40
	full := NewStored(d, 5, B, 0, B)
	a, b := make([]int, d.N), make([]int, d.N)
	for _, chunk := range [][2]int64{{1, 14}, {14, 27}, {27, 40}} {
		part := NewStored(d, 5, B, chunk[0], chunk[1])
		for idx := chunk[0]; idx < chunk[1]; idx++ {
			full.Label(idx, a)
			part.Label(idx, b)
			if !labelsEqual(a, b) {
				t.Fatalf("chunk %v idx %d: %v != full %v", chunk, idx, b, a)
			}
		}
	}
}

func TestStoredIdentityAlwaysAvailable(t *testing.T) {
	d := mustDesign(t, stat.PairT, []int{0, 1, 0, 1, 0, 1})
	g := NewStored(d, 9, 20, 10, 15)
	lab := make([]int, d.N)
	g.Label(0, lab)
	if !labelsEqual(lab, d.Labels) {
		t.Errorf("stored Label(0) = %v, want observed", lab)
	}
}

func TestStoredOutsideChunkPanics(t *testing.T) {
	d := mustDesign(t, stat.Welch, []int{0, 0, 1, 1})
	g := NewStored(d, 1, 20, 5, 10)
	defer func() {
		if recover() == nil {
			t.Error("Label outside chunk did not panic")
		}
	}()
	g.Label(4, make([]int, 4))
}

func TestStoredInvalidChunkPanics(t *testing.T) {
	d := mustDesign(t, stat.Welch, []int{0, 0, 1, 1})
	defer func() {
		if recover() == nil {
			t.Error("invalid chunk did not panic")
		}
	}()
	NewStored(d, 1, 20, 15, 25)
}

func TestStoredEmptyChunk(t *testing.T) {
	d := mustDesign(t, stat.Welch, []int{0, 0, 1, 1})
	g := NewStored(d, 1, 20, 7, 7)
	if g.Total() != 20 || g.Lo() != 7 || g.Hi() != 7 {
		t.Errorf("empty chunk: Total=%d Lo=%d Hi=%d", g.Total(), g.Lo(), g.Hi())
	}
}

func TestStoredPreservesStructureAllKinds(t *testing.T) {
	for _, tc := range []struct {
		test   stat.Test
		labels []int
	}{
		{stat.Welch, []int{0, 0, 0, 1, 1, 1}},
		{stat.F, []int{0, 0, 1, 1, 2, 2}},
		{stat.PairT, []int{0, 1, 1, 0, 0, 1}},
		{stat.BlockF, []int{0, 1, 1, 0, 0, 1}},
	} {
		d := mustDesign(t, tc.test, tc.labels)
		g := NewStored(d, 3, 30, 0, 30)
		lab := make([]int, d.N)
		counts := make([]int, d.K)
		for idx := int64(0); idx < 30; idx++ {
			g.Label(idx, lab)
			for i := range counts {
				counts[i] = 0
			}
			for _, l := range lab {
				counts[l]++
			}
			for c := range counts {
				if counts[c] != d.Counts[c] {
					t.Fatalf("%v idx %d: class counts broken in %v", tc.test, idx, lab)
				}
			}
		}
	}
}

func TestCompleteLargeDesignSampledBijectivity(t *testing.T) {
	// C(20,10) = 184756 — too many to enumerate into a map cheaply, so
	// sample indices and check injectivity via rank round-trips.
	labels := make([]int, 20)
	for i := 10; i < 20; i++ {
		labels[i] = 1
	}
	d := mustDesign(t, stat.Welch, labels)
	g, err := NewComplete(d)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total() != 184756 {
		t.Fatalf("Total = %d, want 184756", g.Total())
	}
	lab := make([]int, 20)
	seen := map[string]int64{}
	for _, idx := range []int64{0, 1, 2, 92377, 92378, 184754, 184755, 1000, 50000, 150000} {
		g.Label(idx, lab)
		key := fmtInts(lab)
		if prev, dup := seen[key]; dup {
			t.Fatalf("indices %d and %d produce the same labelling", prev, idx)
		}
		seen[key] = idx
	}
}

func TestStoredMemoryScalesWithChunkNotB(t *testing.T) {
	// Section 4.4: "When the permutations are generated on the fly, the
	// implementation demands no extra memory in order to perform a
	// higher permutation count."  The stored generator's footprint is
	// proportional to its chunk, not the global B — which is what lets a
	// rank of a large run stay small.
	d := mustDesign(t, stat.Welch, []int{0, 0, 0, 1, 1, 1})
	big := NewStored(d, 1, 100000, 50000, 50100)
	small := NewStored(d, 1, 200, 100, 200)
	if len(big.labels) != 100*d.N {
		t.Errorf("chunk of 100 permutations stores %d bytes, want %d", len(big.labels), 100*d.N)
	}
	if len(small.labels) != 100*d.N {
		t.Errorf("small-B chunk stores %d bytes", len(small.labels))
	}
}

func BenchmarkRandomLabel76(b *testing.B) {
	labels := make([]int, 76)
	for i := 38; i < 76; i++ {
		labels[i] = 1
	}
	d, _ := stat.NewDesign(stat.Welch, labels)
	g := NewRandom(d, 42, int64(b.N)+1)
	dst := make([]int, 76)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Label(int64(i%int(g.Total()-1))+1, dst)
	}
}

func BenchmarkCompleteUnrank20(b *testing.B) {
	labels := make([]int, 20)
	for i := 10; i < 20; i++ {
		labels[i] = 1
	}
	d, _ := stat.NewDesign(stat.Welch, labels)
	g, _ := NewComplete(d)
	dst := make([]int, 20)
	total := g.Total()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Label(int64(i)%total, dst)
	}
}
