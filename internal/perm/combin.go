package perm

import (
	"fmt"
	"math"
	"math/bits"
)

// Overflow-safe combinatorics used by the complete-permutation generators.
// All counting is done in int64 with explicit overflow detection: the paper
// specifies that when the complete permutation count "exceeds the maximum
// allowed limit, the user is asked to explicitly request a smaller number of
// permutations", so an overflowing count is an expected, reportable
// condition rather than a programming error.

// ErrTooManyPermutations is wrapped by errors reporting that a complete
// enumeration is too large to index.
var ErrTooManyPermutations = fmt.Errorf("perm: complete permutation count exceeds the maximum allowed limit")

// mulOK returns a*b and whether the product fits in int64.  a, b >= 0.
func mulOK(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi != 0 || lo > math.MaxInt64 {
		return 0, false
	}
	return int64(lo), true
}

// Binomial returns C(n, k) and whether it fits in int64.
func Binomial(n, k int) (int64, bool) {
	if k < 0 || k > n {
		return 0, true
	}
	if k > n-k {
		k = n - k
	}
	// Multiply/divide incrementally; the intermediate product uses a full
	// 128-bit value so the result overflows only if the binomial itself
	// does.  Each quotient is integral because C(n-k+i, i) is.
	result := uint64(1)
	for i := 1; i <= k; i++ {
		hi, lo := bits.Mul64(result, uint64(n-k+i))
		d := uint64(i)
		if hi >= d {
			return 0, false // quotient would not fit in 64 bits
		}
		q, _ := bits.Div64(hi, lo, d)
		if q > math.MaxInt64 {
			return 0, false
		}
		result = q
	}
	return int64(result), true
}

// Factorial returns n! and whether it fits in int64 (n <= 20).
func Factorial(n int) (int64, bool) {
	if n < 0 {
		return 0, true
	}
	result := int64(1)
	for i := 2; i <= n; i++ {
		v, ok := mulOK(result, int64(i))
		if !ok {
			return 0, false
		}
		result = v
	}
	return result, true
}

// Multinomial returns n! / (counts[0]! * ... * counts[k-1]!) where n is the
// sum of counts, and whether it fits in int64.  It is the number of distinct
// arrangements of a multiset — the complete permutation count for the
// F-test's label vector.
func Multinomial(counts []int) (int64, bool) {
	// Build incrementally as a product of binomials:
	// multinomial = prod_i C(partialSum_i, counts_i).
	result := int64(1)
	partial := 0
	for _, c := range counts {
		partial += c
		b, ok := Binomial(partial, c)
		if !ok {
			return 0, false
		}
		result, ok = mulOK(result, b)
		if !ok {
			return 0, false
		}
	}
	return result, true
}

// Pow returns base^exp and whether it fits in int64.
func Pow(base int64, exp int) (int64, bool) {
	result := int64(1)
	for i := 0; i < exp; i++ {
		v, ok := mulOK(result, base)
		if !ok {
			return 0, false
		}
		result = v
	}
	return result, true
}

// CombinationUnrank writes into dst the rank-th k-combination of 0..n-1 in
// colexicographic-compatible lexicographic order (the combinadic ordering:
// rank 0 is {0,1,..,k-1}, the last rank is {n-k,..,n-1}).  dst must have
// length k and rank must lie in [0, C(n,k)).
func CombinationUnrank(n, k int, rank int64, dst []int) {
	// Lexicographic unranking: choose the smallest first element whose
	// suffix count covers the remaining rank.
	elem := 0
	for i := 0; i < k; i++ {
		for {
			c, _ := Binomial(n-elem-1, k-i-1)
			if rank < c {
				break
			}
			rank -= c
			elem++
		}
		dst[i] = elem
		elem++
	}
}

// CombinationRank is the inverse of CombinationUnrank: it returns the
// lexicographic rank of the strictly increasing k-combination comb of
// 0..n-1.
func CombinationRank(n int, comb []int) int64 {
	k := len(comb)
	rank := int64(0)
	prev := -1
	for i, c := range comb {
		for e := prev + 1; e < c; e++ {
			cnt, _ := Binomial(n-e-1, k-i-1)
			rank += cnt
		}
		prev = c
	}
	return rank
}

// PermutationUnrank writes into dst the rank-th permutation of 0..k-1 in
// lexicographic order using the factorial number system.  dst must have
// length k and rank must lie in [0, k!).
func PermutationUnrank(k int, rank int64, dst []int) {
	// Factoradic digits.
	var digits [21]int64 // k <= 20 because k! must fit in int64
	for i := 1; i <= k; i++ {
		digits[k-i] = rank % int64(i)
		rank /= int64(i)
	}
	// Convert digits to a permutation by selecting from the remaining
	// elements.
	var pool [21]int
	for i := 0; i < k; i++ {
		pool[i] = i
	}
	remaining := k
	for i := 0; i < k; i++ {
		d := int(digits[i])
		dst[i] = pool[d]
		copy(pool[d:], pool[d+1:remaining])
		remaining--
	}
}

// PermutationRank is the inverse of PermutationUnrank.
func PermutationRank(p []int) int64 {
	k := len(p)
	var pool [21]int
	for i := 0; i < k; i++ {
		pool[i] = i
	}
	remaining := k
	rank := int64(0)
	for i := 0; i < k; i++ {
		d := 0
		for pool[d] != p[i] {
			d++
		}
		f, _ := Factorial(remaining - 1)
		rank += int64(d) * f
		copy(pool[d:], pool[d+1:remaining])
		remaining--
	}
	return rank
}

// MultisetUnrank writes into dst the rank-th arrangement (in lexicographic
// order by class value) of a multiset with the given per-class counts.
// counts is not modified.  rank must lie in [0, Multinomial(counts)).
func MultisetUnrank(counts []int, rank int64, dst []int) {
	k := len(counts)
	remaining := make([]int, k)
	copy(remaining, counts)
	n := 0
	for _, c := range counts {
		n += c
	}
	for pos := 0; pos < n; pos++ {
		for c := 0; c < k; c++ {
			if remaining[c] == 0 {
				continue
			}
			remaining[c]--
			sub, _ := Multinomial(remaining)
			if rank < sub {
				dst[pos] = c
				break
			}
			rank -= sub
			remaining[c]++
		}
	}
}

// MultisetRank is the inverse of MultisetUnrank: the lexicographic rank of
// arrangement arr among all arrangements of its multiset.
func MultisetRank(arr []int) int64 {
	k := 0
	for _, v := range arr {
		if v+1 > k {
			k = v + 1
		}
	}
	remaining := make([]int, k)
	for _, v := range arr {
		remaining[v]++
	}
	rank := int64(0)
	for _, v := range arr {
		for c := 0; c < v; c++ {
			if remaining[c] == 0 {
				continue
			}
			remaining[c]--
			sub, _ := Multinomial(remaining)
			rank += sub
			remaining[c]++
		}
		remaining[v]--
	}
	return rank
}
