package perm

import (
	"testing"

	"sprint/internal/stat"
)

// TestLabelsMatchesLabel: for every generator kind, the batch unranker must
// produce exactly the labellings of the equivalent Label loop, for batches
// starting at 0 (including the observed labelling), mid-sequence, and
// crossing the end of a stored chunk's prefix.
func TestLabelsMatchesLabel(t *testing.T) {
	mk := func(test stat.Test, labels []int) *stat.Design {
		d, err := stat.NewDesign(test, labels)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	designs := []*stat.Design{
		mk(stat.Welch, []int{0, 0, 0, 1, 1, 1, 1}),    // two-sample shuffle
		mk(stat.F, []int{0, 0, 1, 1, 2, 2}),           // multiset shuffle
		mk(stat.PairT, []int{0, 1, 1, 0, 0, 1}),       // pair flips
		mk(stat.BlockF, []int{0, 1, 2, 2, 0, 1}),      // block shuffle
		mk(stat.Welch, []int{0, 0, 1, 1, 1, 1, 1, 1}), // unbalanced
	}
	for _, d := range designs {
		gens := map[string]Generator{}
		if c, err := NewComplete(d); err == nil {
			gens["complete"] = c
		} else {
			t.Fatal(err)
		}
		gens["random"] = NewRandom(d, 99, 40)
		gens["stored"] = NewStored(d, 99, 40, 0, 40)

		for name, g := range gens {
			total := g.Total()
			for _, span := range [][2]int64{{0, 7}, {1, 5}, {3, 1}, {0, 1}} {
				start, n := span[0], span[1]
				if start+n > total {
					continue
				}
				w := int64(d.N)
				batch := make([]int, n*w)
				g.Labels(start, n, batch)
				one := make([]int, d.N)
				for i := int64(0); i < n; i++ {
					g.Label(start+i, one)
					got := batch[i*w : (i+1)*w]
					for j := range one {
						if got[j] != one[j] {
							t.Fatalf("%v/%s: Labels(%d,%d) perm %d = %v, Label = %v",
								d.Test, name, start, n, start+i, got, one)
						}
					}
				}
			}
		}
	}
}

// TestLabelsBatchAllocs: the batch unranker must not allocate per
// permutation — at most the one per-call scratch (complete) or none at all
// (random, stored).
func TestLabelsBatchAllocs(t *testing.T) {
	d, err := stat.NewDesign(stat.Welch, []int{0, 0, 0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	dst := make([]int, n*d.N)
	comp, err := NewComplete(d)
	if err != nil {
		t.Fatal(err)
	}
	rand := NewRandom(d, 7, 1000)
	if a := testing.AllocsPerRun(20, func() { comp.Labels(1, n, dst) }); a > 1 {
		t.Errorf("Complete.Labels allocates %.1f objects per %d-permutation batch, want <= 1", a, n)
	}
	if a := testing.AllocsPerRun(20, func() { rand.Labels(1, n, dst) }); a != 0 {
		t.Errorf("Random.Labels allocates %.1f objects per %d-permutation batch, want 0", a, n)
	}
}
