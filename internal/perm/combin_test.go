package perm

import (
	"testing"
	"testing/quick"
)

func TestBinomialKnownValues(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{76, 2, 2850}, {52, 5, 2598960}, {4, 7, 0}, {4, -1, 0},
		{38, 19, 35345263800},
	}
	for _, tc := range cases {
		got, ok := Binomial(tc.n, tc.k)
		if !ok {
			t.Errorf("Binomial(%d,%d) overflowed", tc.n, tc.k)
			continue
		}
		if got != tc.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestBinomialOverflow(t *testing.T) {
	// C(76, 38) ~ 9.0e21 exceeds int64.
	if _, ok := Binomial(76, 38); ok {
		t.Error("Binomial(76,38) did not report overflow")
	}
	// C(66, 33) ~ 7.2e18 still fits.
	if v, ok := Binomial(66, 33); !ok || v <= 0 {
		t.Errorf("Binomial(66,33) = %d, ok=%v; want positive, true", v, ok)
	}
}

func TestFactorialKnownValues(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		got, ok := Factorial(n)
		if !ok || got != w {
			t.Errorf("Factorial(%d) = %d (ok=%v), want %d", n, got, ok, w)
		}
	}
	if v, ok := Factorial(20); !ok || v != 2432902008176640000 {
		t.Errorf("Factorial(20) = %d, ok=%v", v, ok)
	}
	if _, ok := Factorial(21); ok {
		t.Error("Factorial(21) did not report overflow")
	}
}

func TestMultinomialKnownValues(t *testing.T) {
	cases := []struct {
		counts []int
		want   int64
	}{
		{[]int{2, 2}, 6},
		{[]int{3, 3}, 20},
		{[]int{1, 1, 1}, 6},
		{[]int{2, 2, 2}, 90},
		{[]int{38, 38}, 0}, // overflow case checked below
	}
	for _, tc := range cases[:4] {
		got, ok := Multinomial(tc.counts)
		if !ok || got != tc.want {
			t.Errorf("Multinomial(%v) = %d (ok=%v), want %d", tc.counts, got, ok, tc.want)
		}
	}
	if _, ok := Multinomial([]int{38, 38}); ok {
		t.Error("Multinomial(38,38) did not report overflow")
	}
}

func TestPowOverflow(t *testing.T) {
	if v, ok := Pow(2, 62); !ok || v != 1<<62 {
		t.Errorf("Pow(2,62) = %d, ok=%v", v, ok)
	}
	if _, ok := Pow(2, 63); ok {
		t.Error("Pow(2,63) did not report overflow")
	}
	if v, ok := Pow(720, 2); !ok || v != 518400 {
		t.Errorf("Pow(720,2) = %d, ok=%v", v, ok)
	}
}

func TestCombinationUnrankEnumeratesLexicographically(t *testing.T) {
	const n, k = 6, 3
	total, _ := Binomial(n, k)
	prev := make([]int, k)
	cur := make([]int, k)
	seen := map[[3]int]bool{}
	for r := int64(0); r < total; r++ {
		CombinationUnrank(n, k, r, cur)
		for i := 0; i < k; i++ {
			if cur[i] < 0 || cur[i] >= n || (i > 0 && cur[i] <= cur[i-1]) {
				t.Fatalf("rank %d: invalid combination %v", r, cur)
			}
		}
		var key [3]int
		copy(key[:], cur)
		if seen[key] {
			t.Fatalf("rank %d: duplicate combination %v", r, cur)
		}
		seen[key] = true
		if r > 0 && !lexLess(prev, cur) {
			t.Fatalf("rank %d: %v not after %v", r, cur, prev)
		}
		copy(prev, cur)
	}
	if int64(len(seen)) != total {
		t.Fatalf("enumerated %d combinations, want %d", len(seen), total)
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestCombinationRankRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{5, 2}, {8, 4}, {10, 1}, {10, 10}, {12, 5}} {
		total, _ := Binomial(tc.n, tc.k)
		comb := make([]int, tc.k)
		for r := int64(0); r < total; r++ {
			CombinationUnrank(tc.n, tc.k, r, comb)
			if got := CombinationRank(tc.n, comb); got != r {
				t.Fatalf("n=%d k=%d: rank(unrank(%d)) = %d", tc.n, tc.k, r, got)
			}
		}
	}
}

func TestPermutationRankRoundTrip(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5} {
		total, _ := Factorial(k)
		p := make([]int, k)
		seen := map[string]bool{}
		for r := int64(0); r < total; r++ {
			PermutationUnrank(k, r, p)
			// Validate it is a permutation.
			mask := 0
			for _, v := range p {
				mask |= 1 << uint(v)
			}
			if mask != 1<<uint(k)-1 {
				t.Fatalf("k=%d rank=%d: not a permutation: %v", k, r, p)
			}
			key := fmtInts(p)
			if seen[key] {
				t.Fatalf("k=%d rank=%d: duplicate %v", k, r, p)
			}
			seen[key] = true
			if got := PermutationRank(p); got != r {
				t.Fatalf("k=%d: rank(unrank(%d)) = %d", k, r, got)
			}
		}
	}
}

func fmtInts(p []int) string {
	b := make([]byte, len(p))
	for i, v := range p {
		b[i] = byte('0' + v)
	}
	return string(b)
}

func TestPermutationUnrankIdentityAtZero(t *testing.T) {
	p := make([]int, 6)
	PermutationUnrank(6, 0, p)
	for i, v := range p {
		if v != i {
			t.Fatalf("PermutationUnrank(6, 0) = %v, want identity", p)
		}
	}
}

func TestMultisetRankRoundTrip(t *testing.T) {
	for _, counts := range [][]int{{2, 2}, {3, 2}, {2, 2, 2}, {1, 2, 3}} {
		total, _ := Multinomial(counts)
		n := 0
		for _, c := range counts {
			n += c
		}
		arr := make([]int, n)
		seen := map[string]bool{}
		for r := int64(0); r < total; r++ {
			MultisetUnrank(counts, r, arr)
			// Validate multiset content.
			have := make([]int, len(counts))
			for _, v := range arr {
				have[v]++
			}
			for c := range counts {
				if have[c] != counts[c] {
					t.Fatalf("counts %v rank %d: arrangement %v has wrong class counts", counts, r, arr)
				}
			}
			key := fmtInts(arr)
			if seen[key] {
				t.Fatalf("counts %v rank %d: duplicate arrangement %v", counts, r, arr)
			}
			seen[key] = true
			if got := MultisetRank(arr); got != r {
				t.Fatalf("counts %v: rank(unrank(%d)) = %d", counts, r, got)
			}
		}
		if int64(len(seen)) != total {
			t.Fatalf("counts %v: enumerated %d, want %d", counts, len(seen), total)
		}
	}
}

func TestQuickCombinationRoundTrip(t *testing.T) {
	f := func(rankSeed uint16) bool {
		const n, k = 14, 6
		total, _ := Binomial(n, k) // 3003
		r := int64(rankSeed) % total
		comb := make([]int, k)
		CombinationUnrank(n, k, r, comb)
		return CombinationRank(n, comb) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
