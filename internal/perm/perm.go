// Package perm implements the permutation generators of mt.maxT / pmaxT.
//
// The paper's parallelisation distributes the permutation *count*: each MPI
// rank owns a contiguous chunk of the global permutation sequence and must
// be able to "forward" its generator to the first permutation of the chunk
// (Figure 2).  We expose every generator through an indexed interface —
// Label(idx, dst) produces the labelling of permutation idx — which makes
// the skip a starting index rather than a stateful fast-forward:
//
//   - index 0 is always the observed labelling (the paper's "first
//     permutation [that] depends on the initial labelling of the columns"),
//     processed only by the master;
//   - the random on-the-fly generator (fixed.seed.sampling = "y") derives
//     permutation idx from an independent counter-based stream, so indexing
//     is O(1) — this matches multtest's fixed-seed sampling, where the
//     labelling of permutation b is a pure function of (seed, b);
//   - the stored generator (fixed.seed.sampling = "n") draws shuffles from
//     one sequential stream; a rank materialises its chunk by drawing and
//     discarding the prefix, exactly the paper's "skip a number of cycles
//     and forward to the appropriate permutation";
//   - the complete generators enumerate every distinct labelling via
//     combinatorial unranking (combinadic, factoradic, multiset, bitmask),
//     reordered so the observed labelling comes first.
//
// All generators are safe for concurrent use by multiple goroutines, with
// the caveat that each caller must pass its own dst slice.
package perm

import (
	"fmt"
	"math"

	"sprint/internal/rng"
	"sprint/internal/stat"
)

// Generator produces column labellings for permutation indices.
type Generator interface {
	// Total returns the number of permutations in the sequence,
	// including the observed labelling at index 0.
	Total() int64
	// Label fills dst (length = number of columns) with the labelling of
	// permutation idx, which must lie in [0, Total()) — and additionally
	// within the constructed chunk for stored generators.
	Label(idx int64, dst []int)
	// Labels is the batch unranker: it fills dst (n × columns, row-major)
	// with the labellings of permutations start..start+n-1, equivalent to
	// n successive Label calls but amortising per-call unrank setup
	// (combinadic scratch, RNG stream seeding) across the batch.  The
	// range obeys the same bounds as Label.
	Labels(start, n int64, dst []int)
}

// DeltaGenerator is implemented by generators whose consecutive labellings
// differ by a single element exchange (perm.RevolvingDoor).  The delta
// form feeds stat.DeltaKernel's O(1)-per-permutation update path; callers
// that cannot use it fall back to Labels.
type DeltaGenerator interface {
	Generator
	// LabelsDelta fills lab0 with the labelling of permutation start and
	// moves[0:n-1] with the exchanges leading to permutations start+1 ..
	// start+n-1.  The range obeys the same bounds as Label.
	LabelsDelta(start, n int64, lab0 []int, moves []stat.Exchange)
}

// kind discriminates the four permutation actions.
type kind int

const (
	kindShuffle      kind = iota // shuffle the whole label vector (two-sample, F)
	kindPairFlip                 // flip labels within pairs (paired t)
	kindBlockShuffle             // shuffle labels within each block (block F)
)

func designKind(d *stat.Design) kind {
	switch d.Test {
	case stat.PairT:
		return kindPairFlip
	case stat.BlockF:
		return kindBlockShuffle
	default:
		return kindShuffle
	}
}

// CompleteCount returns the number of distinct labellings for the design
// and whether that count fits in int64.  It is what mt.maxT compares
// against the "maximum allowed limit" when the user passes B = 0.
func CompleteCount(d *stat.Design) (int64, bool) {
	switch designKind(d) {
	case kindPairFlip:
		return Pow(2, d.Pairs)
	case kindBlockShuffle:
		f, ok := Factorial(d.BlockSize)
		if !ok {
			return 0, false
		}
		return Pow(f, d.Blocks)
	default:
		return Multinomial(d.Counts)
	}
}

// Complete is the complete-enumeration generator.  Index 0 is the observed
// labelling; indices 1..Total()-1 enumerate every other distinct labelling
// exactly once, in combinatorial order with the observed labelling's slot
// skipped.
type Complete struct {
	design     *stat.Design
	k          kind
	total      int64
	obsRank    int64 // enumeration rank of the observed labelling
	blockPerms int64 // k! for block designs
}

// NewComplete builds a complete generator for the design, or an error
// wrapping ErrTooManyPermutations if the labelling count does not fit in
// int64.  Callers typically impose a far smaller practical limit on top.
func NewComplete(d *stat.Design) (*Complete, error) {
	total, ok := CompleteCount(d)
	if !ok {
		return nil, fmt.Errorf("%w (design %v with %d columns)", ErrTooManyPermutations, d.Test, d.N)
	}
	g := &Complete{design: d, k: designKind(d), total: total}
	switch g.k {
	case kindShuffle:
		if d.K == 2 {
			comb := labelPositions(d.Labels, 1)
			g.obsRank = CombinationRank(d.N, comb)
		} else {
			g.obsRank = MultisetRank(d.Labels)
		}
	case kindPairFlip:
		g.obsRank = 0 // mask 0 = no flips = observed
	case kindBlockShuffle:
		g.obsRank = 0 // all-identity digits = observed
		g.blockPerms, _ = Factorial(d.BlockSize)
	}
	return g, nil
}

// Total implements Generator.
func (g *Complete) Total() int64 { return g.total }

// Label implements Generator.
func (g *Complete) Label(idx int64, dst []int) {
	g.labelInto(idx, dst, nil)
}

// Labels implements Generator: the unrank scratch (combinadic buffer or
// per-block permutation) is allocated once for the whole batch instead of
// once per permutation.
func (g *Complete) Labels(start, n int64, dst []int) {
	scratch := g.newUnrankScratch()
	w := int64(g.design.N)
	for i := int64(0); i < n; i++ {
		g.labelInto(start+i, dst[i*w:(i+1)*w], scratch)
	}
}

// newUnrankScratch sizes the per-call working storage labelInto needs.
func (g *Complete) newUnrankScratch() []int {
	switch {
	case g.k == kindShuffle && g.design.K == 2:
		return make([]int, g.design.Counts[1])
	case g.k == kindBlockShuffle:
		return make([]int, g.design.BlockSize)
	default:
		return nil
	}
}

// labelInto unranks permutation idx into dst, using scratch when non-nil
// (allocating otherwise).
func (g *Complete) labelInto(idx int64, dst []int, scratch []int) {
	if idx < 0 || idx >= g.total {
		panic(fmt.Sprintf("perm: complete index %d out of range [0,%d)", idx, g.total))
	}
	d := g.design
	if idx == 0 {
		copy(dst, d.Labels)
		return
	}
	// Map the sequence index to an enumeration rank, skipping the
	// observed labelling's own slot so it appears exactly once (at 0).
	enum := idx - 1
	if enum >= g.obsRank {
		enum = idx
	}
	switch g.k {
	case kindShuffle:
		if d.K == 2 {
			comb := scratch
			if comb == nil {
				comb = make([]int, d.Counts[1])
			}
			CombinationUnrank(d.N, d.Counts[1], enum, comb)
			for i := range dst {
				dst[i] = 0
			}
			for _, c := range comb {
				dst[c] = 1
			}
		} else {
			MultisetUnrank(d.Counts, enum, dst)
		}
	case kindPairFlip:
		copy(dst, d.Labels)
		for j := 0; j < d.Pairs; j++ {
			if enum&(1<<uint(j)) != 0 {
				dst[2*j], dst[2*j+1] = dst[2*j+1], dst[2*j]
			}
		}
	case kindBlockShuffle:
		k := d.BlockSize
		p := scratch
		if p == nil {
			p = make([]int, k)
		}
		for b := 0; b < d.Blocks; b++ {
			digit := enum % g.blockPerms
			enum /= g.blockPerms
			PermutationUnrank(k, digit, p)
			for j := 0; j < k; j++ {
				dst[b*k+j] = d.Labels[b*k+p[j]]
			}
		}
	}
}

// labelPositions returns the sorted positions carrying label want.
func labelPositions(labels []int, want int) []int {
	var pos []int
	for i, l := range labels {
		if l == want {
			pos = append(pos, i)
		}
	}
	return pos
}

// Random is the on-the-fly Monte-Carlo generator (fixed.seed.sampling="y").
// Permutation idx is drawn from rng.Stream(seed, idx), so any rank can jump
// directly to its chunk: the skip of Figure 2 costs nothing.
type Random struct {
	design *stat.Design
	k      kind
	seed   uint64
	total  int64
}

// NewRandom returns a random generator producing B permutations in total
// (the observed labelling plus B-1 Monte-Carlo draws).
func NewRandom(d *stat.Design, seed uint64, B int64) *Random {
	return &Random{design: d, k: designKind(d), seed: seed, total: B}
}

// Total implements Generator.
func (g *Random) Total() int64 { return g.total }

// Label implements Generator.
func (g *Random) Label(idx int64, dst []int) {
	if idx < 0 || idx >= g.total {
		panic(fmt.Sprintf("perm: random index %d out of range [0,%d)", idx, g.total))
	}
	copy(dst, g.design.Labels)
	if idx == 0 {
		return
	}
	src := rng.Stream(g.seed, uint64(idx))
	drawInto(g.k, g.design, src, dst)
}

// Labels implements Generator: one stack Source is re-seeded per
// permutation instead of allocating a fresh generator for each stream.
func (g *Random) Labels(start, n int64, dst []int) {
	if start < 0 || n < 0 || start+n > g.total {
		panic(fmt.Sprintf("perm: random batch [%d,%d) out of range [0,%d)", start, start+n, g.total))
	}
	w := int64(g.design.N)
	var src rng.Source
	for i := int64(0); i < n; i++ {
		idx := start + i
		out := dst[i*w : (i+1)*w]
		copy(out, g.design.Labels)
		if idx == 0 {
			continue
		}
		src.SeedStream(g.seed, uint64(idx))
		drawInto(g.k, g.design, &src, out)
	}
}

// drawInto applies one random permutation action to dst in place.
func drawInto(k kind, d *stat.Design, src *rng.Source, dst []int) {
	switch k {
	case kindShuffle:
		src.Shuffle(d.N, func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
	case kindPairFlip:
		for j := 0; j < d.Pairs; j++ {
			if src.Uint64n(2) == 1 {
				dst[2*j], dst[2*j+1] = dst[2*j+1], dst[2*j]
			}
		}
	case kindBlockShuffle:
		bs := d.BlockSize
		for b := 0; b < d.Blocks; b++ {
			off := b * bs
			src.Shuffle(bs, func(i, j int) {
				dst[off+i], dst[off+j] = dst[off+j], dst[off+i]
			})
		}
	}
}

// Stored is the in-memory generator (fixed.seed.sampling="n").  All draws
// come from a single sequential stream; a rank materialises only its chunk
// [lo, hi) by drawing and discarding the first lo-1 permutations, which is
// precisely the generator forwarding the paper describes.  Index 0 (the
// observed labelling) is always available regardless of the chunk.
type Stored struct {
	design *stat.Design
	total  int64
	lo, hi int64
	labels []int8 // (hi-lo) labellings, flattened row-major
}

// NewStored materialises permutations [lo, hi) of a B-permutation run
// drawn from the sequential stream identified by seed.  lo must be >= 1
// (index 0 is the observed labelling, never stored) unless lo == hi (an
// empty chunk).  Memory use is (hi-lo) * columns bytes.
func NewStored(d *stat.Design, seed uint64, B, lo, hi int64) *Stored {
	if lo < 0 || hi < lo || hi > B {
		panic(fmt.Sprintf("perm: stored chunk [%d,%d) out of range for B=%d", lo, hi, B))
	}
	g := &Stored{design: d, total: B, lo: lo, hi: hi}
	if lo == 0 {
		lo = 1 // index 0 is implicit; storage starts at permutation 1
		g.lo = 0
	}
	if hi <= lo {
		return g
	}
	if d.N > math.MaxInt8 {
		panic("perm: stored generator supports at most 127 columns per label byte")
	}
	src := rng.New(seed)
	k := designKind(d)
	work := make([]int, d.N)
	// Draw and discard the prefix [1, lo): the sequential stream must be
	// advanced exactly as the serial run would have advanced it.
	for b := int64(1); b < lo; b++ {
		copy(work, d.Labels)
		drawInto(k, d, src, work)
	}
	g.labels = make([]int8, (hi-lo)*int64(d.N))
	for b := lo; b < hi; b++ {
		copy(work, d.Labels)
		drawInto(k, d, src, work)
		off := (b - lo) * int64(d.N)
		for i, v := range work {
			g.labels[off+int64(i)] = int8(v)
		}
	}
	return g
}

// Total implements Generator.
func (g *Stored) Total() int64 { return g.total }

// Lo and Hi report the materialised chunk bounds.
func (g *Stored) Lo() int64 { return g.lo }

// Hi reports the exclusive upper bound of the materialised chunk.
func (g *Stored) Hi() int64 { return g.hi }

// Labels implements Generator: a straight copy out of the materialised
// chunk.  Every index in [start, start+n) must be 0 or lie within the
// chunk, as for Label.
func (g *Stored) Labels(start, n int64, dst []int) {
	w := int64(g.design.N)
	for i := int64(0); i < n; i++ {
		g.Label(start+i, dst[i*w:(i+1)*w])
	}
}

// Label implements Generator.  idx must be 0 or lie within the chunk.
func (g *Stored) Label(idx int64, dst []int) {
	if idx == 0 {
		copy(dst, g.design.Labels)
		return
	}
	start := g.lo
	if start == 0 {
		start = 1
	}
	if idx < start || idx >= g.hi {
		panic(fmt.Sprintf("perm: stored index %d outside chunk [%d,%d)", idx, start, g.hi))
	}
	off := (idx - start) * int64(g.design.N)
	for i := 0; i < g.design.N; i++ {
		dst[i] = int(g.labels[off+int64(i)])
	}
}
