package papply

import (
	"errors"
	"fmt"
	"testing"
)

func TestApplyPartitionsAndReduces(t *testing.T) {
	// Sum of squares 0..99 computed in partitions.
	task := Task{
		N: 100,
		Apply: func(lo, hi int) (any, error) {
			s := 0
			for i := lo; i < hi; i++ {
				s += i * i
			}
			return s, nil
		},
		Reduce: func(partials []any) (any, error) {
			total := 0
			for _, p := range partials {
				total += p.(int)
			}
			return total, nil
		},
	}
	want := 0
	for i := 0; i < 100; i++ {
		want += i * i
	}
	for _, np := range []int{1, 2, 3, 7, 16} {
		got, err := Apply(np, task)
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		if got.(int) != want {
			t.Errorf("np=%d: sum = %v, want %d", np, got, want)
		}
	}
}

func TestApplyNilReduceReturnsPartials(t *testing.T) {
	task := Task{
		N:     10,
		Apply: func(lo, hi int) (any, error) { return hi - lo, nil },
	}
	got, err := Apply(4, task)
	if err != nil {
		t.Fatal(err)
	}
	parts := got.([]any)
	if len(parts) != 4 {
		t.Fatalf("partials = %v", parts)
	}
	total := 0
	for _, p := range parts {
		total += p.(int)
	}
	if total != 10 {
		t.Errorf("partition sizes sum to %d, want 10", total)
	}
}

func TestApplyPartitionsAreContiguousAndOrdered(t *testing.T) {
	task := Task{
		N:     23,
		Apply: func(lo, hi int) (any, error) { return [2]int{lo, hi}, nil },
	}
	got, err := Apply(5, task)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for rank, p := range got.([]any) {
		b := p.([2]int)
		if b[0] != prev {
			t.Fatalf("rank %d starts at %d, want %d", rank, b[0], prev)
		}
		prev = b[1]
	}
	if prev != 23 {
		t.Fatalf("partitions end at %d, want 23", prev)
	}
}

func TestApplyWorkerErrorPropagates(t *testing.T) {
	sentinel := errors.New("partition 2 failed")
	task := Task{
		N: 10,
		Apply: func(lo, hi int) (any, error) {
			if lo >= 4 && lo < 6 {
				return nil, sentinel
			}
			return nil, nil
		},
	}
	_, err := Apply(5, task)
	if err == nil {
		t.Fatal("worker error did not propagate")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want wrapped sentinel", err)
	}
}

func TestApplyReduceErrorPropagates(t *testing.T) {
	task := Task{
		N:      4,
		Apply:  func(lo, hi int) (any, error) { return nil, nil },
		Reduce: func(partials []any) (any, error) { return nil, fmt.Errorf("reduce failed") },
	}
	if _, err := Apply(2, task); err == nil {
		t.Fatal("reduce error did not propagate")
	}
}

func TestApplyValidation(t *testing.T) {
	if _, err := Apply(0, Task{N: 1, Apply: func(lo, hi int) (any, error) { return nil, nil }}); err == nil {
		t.Error("nprocs=0 accepted")
	}
	if _, err := Apply(2, Task{N: 1}); err == nil {
		t.Error("nil Apply accepted")
	}
	if _, err := Apply(2, Task{N: -1, Apply: func(lo, hi int) (any, error) { return nil, nil }}); err == nil {
		t.Error("negative N accepted")
	}
}

func TestApplyMoreRanksThanItems(t *testing.T) {
	// Ranks beyond the work receive empty partitions and must not break.
	// (Apply runs concurrently on every rank: closures must not share
	// mutable state without synchronisation.)
	task := Task{
		N: 3,
		Apply: func(lo, hi int) (any, error) {
			return hi - lo, nil
		},
		Reduce: func(partials []any) (any, error) {
			s := 0
			for _, p := range partials {
				s += p.(int)
			}
			return s, nil
		},
	}
	got, err := Apply(8, task)
	if err != nil {
		t.Fatal(err)
	}
	if got.(int) != 3 {
		t.Errorf("total = %v, want 3", got)
	}
}
