// Package papply implements the SPRINT architecture extension described in
// Section 2 of the paper: "Allowing SPRINT workers to also exploit existing
// serial R functionality means that when appropriate, the data, iteration
// count or both can be partitioned by SPRINT across the workers, processed
// by the serial R functionality with the results collected and reduced by
// the master, and the final result returned to R.  From a user perspective
// ... there is no need to perform the additional steps associated with
// manual partitioning of data or iterations and the subsequent manual
// collection and reduction of results."
//
// Here the "serial R function" is any Go closure.  Apply partitions a row
// range, runs the closure on each rank's partition, and gathers+reduces on
// the master — the mechanism Mitchell et al. used for the SPRINT Random
// Forest classifier.
package papply

import (
	"fmt"

	"sprint/internal/mpi"
	"sprint/internal/sprintfw"
)

// FunctionName is the registry name.
const FunctionName = "papply"

// Task describes one partitioned application.  Both function fields run on
// every rank and must therefore be registered identically everywhere (the
// SPRINT analogue: all R runtimes load the same script).
type Task struct {
	// N is the number of work items (rows, trees, iterations ...).
	N int
	// Apply processes items [lo, hi) and returns a partial result.
	Apply func(lo, hi int) (any, error)
	// Reduce combines partial results in rank order on the master.  For
	// nil Reduce the master receives the slice of partials as-is.
	Reduce func(partials []any) (any, error)
}

// Apply runs the task over nprocs ranks and returns the reduced result.
func Apply(nprocs int, task Task) (any, error) {
	if nprocs <= 0 {
		return nil, fmt.Errorf("papply: nprocs = %d must be positive", nprocs)
	}
	reg := sprintfw.NewRegistry()
	reg.MustRegister(NewFunction())
	var res any
	err := sprintfw.Run(nprocs, reg, func(s *sprintfw.Session) error {
		out, err := s.Call(FunctionName, &task)
		if err != nil {
			return err
		}
		res = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// NewFunction returns the sprintfw registration of papply.
func NewFunction() sprintfw.Function {
	return sprintfw.FuncOf(FunctionName, eval)
}

// Register adds papply to an existing SPRINT registry.
func Register(reg *sprintfw.Registry) { reg.MustRegister(NewFunction()) }

func eval(c *mpi.Comm, args any) (any, error) {
	task, ok := args.(*Task)
	if !ok {
		return nil, fmt.Errorf("papply: called with %T, want *Task", args)
	}
	if task.N < 0 || task.Apply == nil {
		return nil, fmt.Errorf("papply: invalid task (N=%d, Apply nil=%v)", task.N, task.Apply == nil)
	}
	lo := task.N * c.Rank() / c.Size()
	hi := task.N * (c.Rank() + 1) / c.Size()
	partial, err := task.Apply(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("papply: rank %d items [%d,%d): %w", c.Rank(), lo, hi, err)
	}
	partials := mpi.Gather(c, 0, partial)
	if c.Rank() != 0 {
		return nil, nil
	}
	if task.Reduce == nil {
		return partials, nil
	}
	return task.Reduce(partials)
}
