package matrix

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// spbTestMatrix builds a deterministic rows×cols matrix with a sprinkle of
// NaN cells (every 7th element) and distinct values everywhere else.
func spbTestMatrix(rows, cols int) Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		if i%7 == 3 {
			m.Data[i] = math.NaN()
		} else {
			m.Data[i] = float64(i)*1.25 - 3
		}
	}
	return m
}

func sameMatrixBits(t *testing.T, got, want Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		g, w := got.Data[i], want.Data[i]
		if math.IsNaN(w) {
			// NaNs are canonicalised by the codec: any input NaN decodes
			// to the one bit pattern math.NaN() produces.
			if !math.IsNaN(g) {
				t.Fatalf("cell %d: got %v, want NaN", i, g)
			}
			continue
		}
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("cell %d: got %x, want %x", i, math.Float64bits(g), math.Float64bits(w))
		}
	}
}

// TestSPBRoundTrip: encode → decode must reproduce the matrix bitwise
// (modulo NaN canonicalisation), along with labels and names.
func TestSPBRoundTrip(t *testing.T) {
	m := spbTestMatrix(23, 11)
	labels := make([]int, 11)
	names := make([]string, 23)
	for j := range labels {
		labels[j] = j % 3
	}
	labels[2] = -1 // labels are signed on the wire
	for i := range names {
		names[i] = string(rune('a'+i%26)) + "gene"
	}
	names[5] = "" // empty names survive

	for _, layout := range []Layout{RowMajor, ColMajor} {
		var buf bytes.Buffer
		if err := Encode(&buf, m, labels, names, layout); err != nil {
			t.Fatal(err)
		}
		f, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		sameMatrixBits(t, f.M, m)
		if len(f.Labels) != len(labels) {
			t.Fatalf("labels %v, want %v", f.Labels, labels)
		}
		for j := range labels {
			if f.Labels[j] != labels[j] {
				t.Fatalf("layout %d label %d: got %d, want %d", layout, j, f.Labels[j], labels[j])
			}
		}
		for i := range names {
			if f.Names[i] != names[i] {
				t.Fatalf("layout %d name %d: got %q, want %q", layout, i, f.Names[i], names[i])
			}
		}
	}
}

// TestSPBRoundTripBare: a matrix-only file (no labels, no names, no NaN)
// round-trips and omits every optional section.
func TestSPBRoundTripBare(t *testing.T) {
	m := New(5, 4)
	for i := range m.Data {
		m.Data[i] = float64(i) + 0.5
	}
	enc, err := EncodeBytes(m, nil, nil, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	if want := spbHeaderSize + 8*20 + 8; len(enc) != want {
		t.Fatalf("bare encoding is %d bytes, want %d (no optional sections)", len(enc), want)
	}
	f, err := DecodeBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	sameMatrixBits(t, f.M, m)
	if f.Labels != nil || f.Names != nil {
		t.Fatalf("bare file decoded metadata: labels %v names %v", f.Labels, f.Names)
	}
}

// TestSPBZeroCopy: on an aligned buffer the decoded matrix must alias the
// input bytes — the zero-copy contract the dataset plane is built on.
func TestSPBZeroCopy(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("zero-copy aliasing requires a little-endian host")
	}
	m := spbTestMatrix(16, 8)
	enc, err := EncodeBytes(m, nil, nil, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !f.ZeroCopy {
		t.Fatal("aligned decode did not alias the buffer")
	}
	// Writing through the matrix must be visible in the raw buffer: proof
	// of aliasing without poking at pointers.
	f.M.Data[0] = 42.0
	payload, ok := aliasFloat64(enc[spbHeaderSize : spbHeaderSize+8*len(f.M.Data)])
	if !ok {
		t.Fatal("payload no longer aliasable")
	}
	found := false
	for _, v := range payload {
		if v == 42.0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("write through decoded matrix not visible in source buffer: not zero-copy")
	}
}

// TestSPBUnalignedFallback: a deliberately misaligned buffer must still
// decode correctly, just without aliasing.
func TestSPBUnalignedFallback(t *testing.T) {
	m := spbTestMatrix(9, 5)
	enc, err := EncodeBytes(m, nil, nil, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([]byte, len(enc)+1)
	copy(shifted[1:], enc)
	f, err := DecodeBytes(shifted[1:])
	if err != nil {
		t.Fatal(err)
	}
	if f.ZeroCopy {
		t.Fatal("misaligned decode claimed zero-copy")
	}
	sameMatrixBits(t, f.M, m)
}

// TestSPBCorruption: every class of damage must be rejected, not decoded.
func TestSPBCorruption(t *testing.T) {
	m := spbTestMatrix(7, 6)
	labels := []int{0, 0, 0, 1, 1, 1}
	good, err := EncodeBytes(m, labels, nil, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, mutate func(b []byte) []byte) {
		t.Helper()
		b := append([]byte(nil), good...)
		if _, err := DecodeBytes(mutate(b)); err == nil {
			t.Errorf("%s: corrupt stream decoded without error", name)
		}
	}
	check("flipped payload bit", func(b []byte) []byte { b[spbHeaderSize+11] ^= 0x40; return b })
	check("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	check("future version", func(b []byte) []byte { b[4] = 99; return b })
	check("unknown flag", func(b []byte) []byte { b[8] |= 0x80; return b })
	check("nonzero reserved", func(b []byte) []byte { b[12] = 1; return b })
	check("truncated", func(b []byte) []byte { return b[:len(b)-9] })
	check("oversized rows", func(b []byte) []byte { b[22] = 0xff; return b })
	check("trailing garbage", func(b []byte) []byte { return append(b, 0) })
	if _, err := DecodeBytes(nil); err == nil {
		t.Error("empty stream decoded")
	}
}

// TestSPBDigest64Stability pins the digest function: changing it would
// silently orphan every .spb file on disk, so the vectors are frozen here.
func TestSPBDigest64Stability(t *testing.T) {
	long := strings.Repeat("sprint-paper!", 11) // >32 bytes: exercises the lanes
	vectors := []struct {
		in   string
		want uint64
	}{
		{"", 0x26030f5b1bde63ca},
		{"a", 0x62466878f2e47aa6},
		{"sprint", 0xb13f23681093918e},
		{"0123456789abcdef", 0x812dbe0af6f69eaf},
		{long, 0xf0e5bd6f92808118},
	}
	for _, v := range vectors {
		if got := Digest64([]byte(v.in)); got != v.want {
			t.Errorf("Digest64(%q) = %#x, want %#x", v.in, got, v.want)
		}
	}
}

func BenchmarkSPBDecode(b *testing.B) {
	m := spbTestMatrix(6102, 76)
	enc, err := EncodeBytes(m, nil, nil, RowMajor)
	if err != nil {
		b.Fatal(err)
	}
	work := make([]byte, len(enc))
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The decode consumes its buffer (in-place transpose), so each
		// iteration pays one memcpy to refresh it — still part of what a
		// real server pays per request body.
		copy(work, enc)
		if _, err := DecodeBytes(work); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSPBHeaderOverflowRejected: a crafted header whose dimension product
// wraps 64-bit arithmetic must be rejected cleanly — the historical bug
// was a negative slice bound panic, remotely reachable via dataset upload.
func TestSPBHeaderOverflowRejected(t *testing.T) {
	m := spbTestMatrix(2, 2)
	enc, err := EncodeBytes(m, nil, nil, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	// rows = cols = 2^31-1: each passes the per-dimension bound, the
	// product wraps 8*n.  Digest recomputed so only the dimension check
	// can reject.
	for _, dims := range [][2]uint64{
		{1<<31 - 1, 1<<31 - 1},
		{1<<31 - 1, 3},
		{1 << 20, 1 << 20},
	} {
		b := append([]byte(nil), enc...)
		binary.LittleEndian.PutUint64(b[16:24], dims[0])
		binary.LittleEndian.PutUint64(b[24:32], dims[1])
		binary.LittleEndian.PutUint64(b[len(b)-8:], Digest64(b[:len(b)-8]))
		if _, err := DecodeBytes(b); err == nil {
			t.Errorf("dims %dx%d decoded without error", dims[0], dims[1])
		}
	}
}

// TestReadSPBHeader: the metadata peek returns the shape without touching
// the payload, and rejects junk.
func TestReadSPBHeader(t *testing.T) {
	m := spbTestMatrix(37, 5)
	enc, err := EncodeBytes(m, nil, nil, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols, err := ReadSPBHeader(bytes.NewReader(enc))
	if err != nil || rows != 37 || cols != 5 {
		t.Fatalf("header peek: %dx%d, %v", rows, cols, err)
	}
	if _, _, err := ReadSPBHeader(bytes.NewReader([]byte("not an spb stream at all..........."))); err == nil {
		t.Error("junk header accepted")
	}
}
