// Package matrix provides the dense-matrix plumbing around pmaxT's input
// handling, including the paper's future-work item 2: "The current
// implementation performs an array transposition on the input dataset.
// For this transformation, a new array is allocated.  Algorithms for
// in-place non-square array transposition exist that are able to perform
// this step without the need for additional memory."
//
// R stores matrices column-major; the C kernel wants gene rows contiguous.
// TransposeInPlace implements the cycle-following algorithm for in-place
// transposition of a rows×cols matrix stored flat, using O(1) extra memory
// beyond a visited bitmap of ceil(n/8) bytes (the textbook compromise; a
// truly bitmap-free variant exists but is dramatically slower for no
// benefit here).
package matrix

import "fmt"

// Transpose returns a new flat array holding the transpose of src, where
// src is rows×cols in row-major order.  This is the allocating baseline
// the paper's current implementation uses.
func Transpose(src []float64, rows, cols int) []float64 {
	if len(src) != rows*cols {
		panic(fmt.Sprintf("matrix: %d elements for %dx%d", len(src), rows, cols))
	}
	dst := make([]float64, len(src))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			dst[c*rows+r] = src[r*cols+c]
		}
	}
	return dst
}

// TransposeInPlace transposes a rows×cols row-major flat matrix in place
// using cycle following: every element belongs to a permutation cycle of
// the index mapping i -> (i*rows) mod (rows*cols-1); each cycle is rotated
// once.  After the call the array is cols×rows row-major (equivalently,
// the original matrix in column-major order).  Memory overhead is one bit
// per element.
func TransposeInPlace(a []float64, rows, cols int) {
	n := rows * cols
	if len(a) != n {
		panic(fmt.Sprintf("matrix: %d elements for %dx%d", len(a), rows, cols))
	}
	if n <= 1 || rows == 1 || cols == 1 {
		return // vector shapes are their own transpose in flat storage
	}
	m := n - 1
	visited := make([]byte, (n+7)/8)
	seen := func(i int) bool { return visited[i/8]&(1<<uint(i%8)) != 0 }
	mark := func(i int) { visited[i/8] |= 1 << uint(i%8) }
	// Index 0 and n-1 are fixed points.
	mark(0)
	mark(n - 1)
	for start := 1; start < m; start++ {
		if seen(start) {
			continue
		}
		// Rotate the cycle beginning at start.  The element at position
		// i must move to position (i*rows) mod m.
		carry := a[start]
		i := start
		for {
			next := (i * rows) % m
			a[next], carry = carry, a[next]
			mark(next)
			i = next
			if i == start {
				break
			}
		}
	}
}

// FromColumnMajor converts a column-major flat matrix (R's layout: rows
// genes × cols samples, stored column by column) into the [][]float64
// row-major form the analysis consumes, transposing in place first so that
// peak extra memory is the row-header slice rather than a second matrix.
// The input slice is consumed: it backs the returned rows.
func FromColumnMajor(flat []float64, rows, cols int) [][]float64 {
	if len(flat) != rows*cols {
		panic(fmt.Sprintf("matrix: %d elements for %dx%d", len(flat), rows, cols))
	}
	// Column-major rows×cols is identical to row-major cols×rows; an
	// in-place transpose of that yields row-major rows×cols.
	TransposeInPlace(flat, cols, rows)
	out := make([][]float64, rows)
	for r := 0; r < rows; r++ {
		out[r] = flat[r*cols : (r+1)*cols : (r+1)*cols]
	}
	return out
}
