// Package matrix provides the dense-matrix plumbing around pmaxT's input
// handling: the flat row-major Matrix type the whole statistics engine
// computes on, and the paper's future-work item 2: "The current
// implementation performs an array transposition on the input dataset.
// For this transformation, a new array is allocated.  Algorithms for
// in-place non-square array transposition exist that are able to perform
// this step without the need for additional memory."
//
// R stores matrices column-major; the C kernel wants gene rows contiguous.
// TransposeInPlace implements the cycle-following algorithm for in-place
// transposition of a rows×cols matrix stored flat, using O(1) extra memory
// beyond a visited bitmap of ceil(n/8) bytes (the textbook compromise; a
// truly bitmap-free variant exists but is dramatically slower for no
// benefit here).
package matrix

import "fmt"

// Matrix is a dense rows×cols matrix stored flat in row-major order: one
// contiguous allocation, gene rows adjacent in memory, exactly the layout
// the paper's C kernel iterates over.  The zero value is an empty matrix.
//
// Data is exported so that transport layers (broadcast, hashing, wire
// encoding) can treat the matrix as a single contiguous buffer; all
// element access in compute code should go through Row for clarity.
type Matrix struct {
	Data []float64 // len == Rows*Cols, row-major
	Rows int
	Cols int
}

// New returns a zeroed rows×cols matrix in one allocation.
func New(rows, cols int) Matrix {
	return Matrix{Data: make([]float64, rows*cols), Rows: rows, Cols: cols}
}

// FromRows flattens a row-per-slice matrix into contiguous storage.  It is
// the bridge from the legacy [][]float64 surface into the flat engine and
// fails on ragged or empty input rather than guessing a shape.
func FromRows(x [][]float64) (Matrix, error) {
	if len(x) == 0 {
		return Matrix{}, fmt.Errorf("matrix: empty matrix")
	}
	cols := len(x[0])
	if cols == 0 {
		return Matrix{}, fmt.Errorf("matrix: row 0 has no columns")
	}
	m := New(len(x), cols)
	for i, row := range x {
		if len(row) != cols {
			return Matrix{}, fmt.Errorf("matrix: row %d has %d columns, row 0 has %d", i, len(row), cols)
		}
		copy(m.Data[i*cols:], row)
	}
	return m, nil
}

// Row returns row i as a slice view into the flat storage.  The view's
// capacity is clipped to the row, so an append cannot silently overwrite
// the next row.
func (m Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// At returns the element at row i, column j.
func (m Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// IsEmpty reports whether the matrix has no elements.
func (m Matrix) IsEmpty() bool { return m.Rows == 0 || m.Cols == 0 }

// Clone returns a deep copy sharing no storage with m.
func (m Matrix) Clone() Matrix {
	return Matrix{Data: append([]float64(nil), m.Data...), Rows: m.Rows, Cols: m.Cols}
}

// RowsView returns the legacy [][]float64 form as views into the flat
// storage: the row headers are newly allocated, the cells are shared.
func (m Matrix) RowsView() [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// Transpose returns a new flat array holding the transpose of src, where
// src is rows×cols in row-major order.  This is the allocating baseline
// the paper's current implementation uses.
func Transpose(src []float64, rows, cols int) []float64 {
	if len(src) != rows*cols {
		panic(fmt.Sprintf("matrix: %d elements for %dx%d", len(src), rows, cols))
	}
	dst := make([]float64, len(src))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			dst[c*rows+r] = src[r*cols+c]
		}
	}
	return dst
}

// TransposeInPlace transposes a rows×cols row-major flat matrix in place
// using cycle following: every element belongs to a permutation cycle of
// the index mapping i -> (i*rows) mod (rows*cols-1); each cycle is rotated
// once.  After the call the array is cols×rows row-major (equivalently,
// the original matrix in column-major order).  Memory overhead is one bit
// per element.
func TransposeInPlace(a []float64, rows, cols int) {
	n := rows * cols
	if len(a) != n {
		panic(fmt.Sprintf("matrix: %d elements for %dx%d", len(a), rows, cols))
	}
	if n <= 1 || rows == 1 || cols == 1 {
		return // vector shapes are their own transpose in flat storage
	}
	m := n - 1
	visited := make([]byte, (n+7)/8)
	seen := func(i int) bool { return visited[i/8]&(1<<uint(i%8)) != 0 }
	mark := func(i int) { visited[i/8] |= 1 << uint(i%8) }
	// Index 0 and n-1 are fixed points.
	mark(0)
	mark(n - 1)
	for start := 1; start < m; start++ {
		if seen(start) {
			continue
		}
		// Rotate the cycle beginning at start.  The element at position
		// i must move to position (i*rows) mod m.
		carry := a[start]
		i := start
		for {
			next := (i * rows) % m
			a[next], carry = carry, a[next]
			mark(next)
			i = next
			if i == start {
				break
			}
		}
	}
}

// FromColumnMajor converts a column-major flat matrix (R's layout: rows
// genes × cols samples, stored column by column) into the row-major Matrix
// the analysis consumes, transposing in place so that no second matrix is
// allocated.  The input slice is consumed: it backs the returned Matrix.
func FromColumnMajor(flat []float64, rows, cols int) Matrix {
	if len(flat) != rows*cols {
		panic(fmt.Sprintf("matrix: %d elements for %dx%d", len(flat), rows, cols))
	}
	// Column-major rows×cols is identical to row-major cols×rows; an
	// in-place transpose of that yields row-major rows×cols.
	TransposeInPlace(flat, cols, rows)
	return Matrix{Data: flat, Rows: rows, Cols: cols}
}
