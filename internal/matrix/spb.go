// spb.go implements the SPRINT binary matrix format (".spb"): the compact
// columnar interchange encoding of an expression matrix, built so that the
// serving path never re-parses text.  A file is one header, one contiguous
// float64 payload in either cell order — row-major (the engine's layout;
// what every Go-side producer writes) or column-major (R's native memory
// layout, so an R client can dump its matrix verbatim) — an optional
// missing-value bitmap, optional per-column class labels and per-row
// names, and a trailing content digest:
//
//	offset  size            field
//	0       4               magic "SPB1"
//	4       4               version (little-endian u32, currently 1)
//	8       4               section flags (u32): 1 = NA bitmap,
//	                        2 = labels, 4 = row names,
//	                        8 = payload is row-major (absent = column-major)
//	12      4               reserved, must be zero (pads the payload to an
//	                        8-byte file offset for zero-copy aliasing)
//	16      8               rows (u64)
//	24      8               cols (u64)
//	32      8*rows*cols     payload: float64 LE, in the flagged cell order
//	...     ceil(n/8)       NA bitmap, bit k = payload cell k missing
//	...     4*cols          class labels (i32 LE)
//	...     variable        row names: per row a u16 LE length + bytes
//	end-8   8               Digest64 of every preceding byte (u64 LE)
//
// Decoding is zero-copy where the platform allows it: on little-endian
// hosts, when the caller's buffer is 8-byte aligned, the float64 payload
// is aliased directly (no element copy); a column-major payload is then
// converted to the engine's row-major layout by the in-place
// transposition this package already provides, and a row-major payload
// IS the matrix with no further work.  Missing cells are encoded as a
// zero payload plus a bitmap bit, so the payload hashes identically
// however the producer spelled its NaNs.
package matrix

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"unsafe"
)

// Magic identifies an spb stream; the trailing byte versions the layout
// generation, the header version field the revision.
var spbMagic = [4]byte{'S', 'P', 'B', '1'}

const (
	spbVersion    = 1
	spbHeaderSize = 32

	flagNABitmap = 1 << 0
	flagLabels   = 1 << 1
	flagNames    = 1 << 2
	flagRowMajor = 1 << 3
	flagKnown    = flagNABitmap | flagLabels | flagNames | flagRowMajor

	// spbMaxDim bounds each dimension and spbMaxCells their product.
	// The cell bound is derived from the PLATFORM's int: every byte-size
	// computation a decode performs is at most 12.125 bytes per cell
	// (8 payload + 1/8 bitmap + 4 labels when cols == cells) plus the
	// fixed header, so capping cells at (MaxInt-64)/13 keeps all of that
	// arithmetic — and the slice bounds derived from it — overflow-free
	// on 32-bit builds too, where a naive 2^31-cell cap would let 8*n
	// wrap negative and bypass the length check.
	spbMaxDim   = 1 << 31
	spbMaxCells = (math.MaxInt - 64) / 13
)

// File is a decoded spb stream: the matrix in the engine's row-major
// layout, plus the optional design metadata the file carried.
type File struct {
	// M is the rows×cols matrix, row-major.  When ZeroCopy is true its
	// Data aliases (a transposed-in-place view of) the decode buffer.
	M Matrix
	// Labels holds the per-column class labels, nil when the file carried
	// none.
	Labels []int
	// Names holds the per-row names, nil when the file carried none.
	Names []string
	// ZeroCopy reports that M.Data aliases the caller's buffer rather
	// than a fresh allocation (little-endian host, 8-byte-aligned buffer).
	ZeroCopy bool
}

// hostLittleEndian reports whether float64 payloads can be aliased without
// byte swapping.  Big-endian hosts fall back to an element-wise decode.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Digest64 is the format's integrity hash: an xxhash-style 64-bit
// multiply-rotate hash.  Four independent lanes consume 32-byte blocks —
// breaking the serial multiply dependency so the hash keeps up with
// memory bandwidth on multi-megabyte payloads — then the lanes fold into
// one accumulator that absorbs the tail and a finalising avalanche.  It
// guards against torn writes and bit rot, not adversaries — content
// addressing in the dataset registry uses SHA-256 on top.
func Digest64(b []byte) uint64 {
	const (
		prime1 = 0x9e3779b185ebca87
		prime2 = 0xc2b2ae3d27d4eb4f
		prime3 = 0x165667b19e3779f9
	)
	n := uint64(len(b))
	l0 := uint64(prime3)
	l1 := uint64(prime3) ^ prime1
	l2 := uint64(prime3) ^ prime2
	l3 := uint64(prime3) ^ 0x27d4eb2f165667c5
	for len(b) >= 32 {
		l0 = bits.RotateLeft64(l0^binary.LittleEndian.Uint64(b)*prime2, 31) * prime1
		l1 = bits.RotateLeft64(l1^binary.LittleEndian.Uint64(b[8:])*prime2, 31) * prime1
		l2 = bits.RotateLeft64(l2^binary.LittleEndian.Uint64(b[16:])*prime2, 31) * prime1
		l3 = bits.RotateLeft64(l3^binary.LittleEndian.Uint64(b[24:])*prime2, 31) * prime1
		b = b[32:]
	}
	h := bits.RotateLeft64(l0, 1) ^ bits.RotateLeft64(l1, 7) ^
		bits.RotateLeft64(l2, 12) ^ bits.RotateLeft64(l3, 18) ^ n*prime3
	for len(b) >= 8 {
		h = bits.RotateLeft64(h^binary.LittleEndian.Uint64(b)*prime2, 31) * prime1
		b = b[8:]
	}
	for _, c := range b {
		h = bits.RotateLeft64(h^uint64(c)*prime1, 11) * prime2
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// EncodedSize returns the byte size of the spb encoding of an
// rows×cols matrix with the given optional sections.
func encodedSize(rows, cols int, hasNA bool, labels []int, names []string) int {
	n := rows * cols
	size := spbHeaderSize + 8*n + 8 // header + payload + digest
	if hasNA {
		size += (n + 7) / 8
	}
	if labels != nil {
		size += 4 * cols
	}
	for _, name := range names {
		size += 2 + len(name)
	}
	return size
}

// Layout selects the payload cell order of an spb encoding.
type Layout int

const (
	// RowMajor stores the payload in the engine's native layout: decode
	// is digest check + alias, no element ever moves.  The layout every
	// Go-side producer (datagen, the registry's disk mirror) writes.
	RowMajor Layout = iota
	// ColMajor stores the payload column by column — R's native memory
	// layout, so an R client can dump its matrix verbatim.  Decode
	// transposes in place (no extra allocation, but a full pass).
	ColMajor
)

// EncodeBytes serialises m (row-major, the engine layout) with optional
// labels (len == m.Cols) and names (len == m.Rows) into one spb buffer,
// with the payload in the requested cell order.  NaN cells are written as
// bitmap bits over a zero payload, so the encoded bytes are independent
// of the producer's NaN bit patterns.
func EncodeBytes(m Matrix, labels []int, names []string, layout Layout) ([]byte, error) {
	if m.IsEmpty() {
		return nil, fmt.Errorf("matrix: spb: empty matrix")
	}
	if len(m.Data) != m.Rows*m.Cols {
		return nil, fmt.Errorf("matrix: spb: %d elements for %dx%d", len(m.Data), m.Rows, m.Cols)
	}
	if m.Rows >= spbMaxDim || m.Cols >= spbMaxDim || int64(m.Rows)*int64(m.Cols) > spbMaxCells {
		return nil, fmt.Errorf("matrix: spb: dimensions %dx%d exceed the format limit", m.Rows, m.Cols)
	}
	if labels != nil && len(labels) != m.Cols {
		return nil, fmt.Errorf("matrix: spb: %d labels for %d columns", len(labels), m.Cols)
	}
	if names != nil && len(names) != m.Rows {
		return nil, fmt.Errorf("matrix: spb: %d names for %d rows", len(names), m.Rows)
	}
	for i, name := range names {
		if len(name) > math.MaxUint16 {
			return nil, fmt.Errorf("matrix: spb: name %d is %d bytes, limit %d", i, len(name), math.MaxUint16)
		}
	}
	hasNA := false
	for _, v := range m.Data {
		if math.IsNaN(v) {
			hasNA = true
			break
		}
	}

	buf := make([]byte, 0, encodedSize(m.Rows, m.Cols, hasNA, labels, names))
	var flags uint32
	if hasNA {
		flags |= flagNABitmap
	}
	if labels != nil {
		flags |= flagLabels
	}
	if names != nil {
		flags |= flagNames
	}
	if layout == RowMajor {
		flags |= flagRowMajor
	}
	buf = append(buf, spbMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, spbVersion)
	buf = binary.LittleEndian.AppendUint32(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // reserved / payload padding
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Rows))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Cols))

	// Payload in the chosen cell order; NaN cells write zero here and a
	// bitmap bit below (bit k = payload cell k, same order).
	n := m.Rows * m.Cols
	var bitmap []byte
	if hasNA {
		bitmap = make([]byte, (n+7)/8)
	}
	writeCell := func(k int, v float64) {
		if math.IsNaN(v) {
			bitmap[k/8] |= 1 << uint(k%8)
			v = 0
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	if layout == RowMajor {
		for k, v := range m.Data {
			writeCell(k, v)
		}
	} else {
		k := 0
		for j := 0; j < m.Cols; j++ {
			for i := 0; i < m.Rows; i++ {
				writeCell(k, m.At(i, j))
				k++
			}
		}
	}
	buf = append(buf, bitmap...)
	for _, l := range labels {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(l)))
	}
	for _, name := range names {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
	}
	return binary.LittleEndian.AppendUint64(buf, Digest64(buf)), nil
}

// Encode writes the spb encoding of m to w.
func Encode(w io.Writer, m Matrix, labels []int, names []string, layout Layout) error {
	buf, err := EncodeBytes(m, labels, names, layout)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Decode reads one complete spb stream from r.  The whole stream is read
// into memory and decoded with DecodeBytes, so the matrix aliases the read
// buffer — one allocation for the file, zero for the payload.
func Decode(r io.Reader) (*File, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("matrix: spb: reading: %w", err)
	}
	return DecodeBytes(buf)
}

// DecodeBytes decodes an spb buffer.  The buffer is CONSUMED: on aligned
// little-endian decodes the returned matrix aliases buf's payload bytes
// (transposed in place to row-major), so the caller must not reuse buf.
// Unaligned or big-endian buffers fall back to an element-wise copy.
func DecodeBytes(buf []byte) (*File, error) {
	if len(buf) < spbHeaderSize+8 {
		return nil, fmt.Errorf("matrix: spb: %d bytes is shorter than any valid stream", len(buf))
	}
	if [4]byte(buf[0:4]) != spbMagic {
		return nil, fmt.Errorf("matrix: spb: bad magic %q", buf[0:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != spbVersion {
		return nil, fmt.Errorf("matrix: spb: unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint32(buf[8:12])
	if flags&^uint32(flagKnown) != 0 {
		return nil, fmt.Errorf("matrix: spb: unknown section flags %#x", flags&^uint32(flagKnown))
	}
	if rsv := binary.LittleEndian.Uint32(buf[12:16]); rsv != 0 {
		return nil, fmt.Errorf("matrix: spb: reserved field is %#x, want 0", rsv)
	}
	rows64 := binary.LittleEndian.Uint64(buf[16:24])
	cols64 := binary.LittleEndian.Uint64(buf[24:32])
	if rows64 == 0 || cols64 == 0 || rows64 >= spbMaxDim || cols64 >= spbMaxDim {
		return nil, fmt.Errorf("matrix: spb: dimensions %dx%d out of range", rows64, cols64)
	}
	// The per-dimension guards make the uint64 product exact (< 2^62);
	// the cell bound keeps every later int computation (8*n, offsets)
	// far from overflow on any architecture.
	if rows64*cols64 > spbMaxCells {
		return nil, fmt.Errorf("matrix: spb: %dx%d exceeds the %d-cell format limit", rows64, cols64, spbMaxCells)
	}
	rows, cols := int(rows64), int(cols64)
	n := rows * cols

	// Fixed-size sections must fit before any of them is touched.
	need := spbHeaderSize + 8*n
	if flags&flagNABitmap != 0 {
		need += (n + 7) / 8
	}
	if flags&flagLabels != 0 {
		need += 4 * cols
	}
	if need+8 > len(buf) {
		return nil, fmt.Errorf("matrix: spb: %d bytes, need at least %d for a %dx%d matrix", len(buf), need+8, rows, cols)
	}
	body, tail := buf[:len(buf)-8], buf[len(buf)-8:]
	if got, want := Digest64(body), binary.LittleEndian.Uint64(tail); got != want {
		return nil, fmt.Errorf("matrix: spb: digest mismatch (stream corrupt): got %#x, want %#x", got, want)
	}

	f := &File{}
	payloadBytes := buf[spbHeaderSize : spbHeaderSize+8*n]
	payload, aliased := aliasFloat64(payloadBytes)
	if !aliased {
		payload = make([]float64, n)
		for k := range payload {
			payload[k] = math.Float64frombits(binary.LittleEndian.Uint64(payloadBytes[8*k:]))
		}
	}
	f.ZeroCopy = aliased
	off := spbHeaderSize + 8*n

	if flags&flagNABitmap != 0 {
		bitmap := buf[off : off+(n+7)/8]
		for k := 0; k < n; k++ {
			if bitmap[k/8]&(1<<uint(k%8)) != 0 {
				payload[k] = math.NaN()
			}
		}
		off += (n + 7) / 8
	}
	if flags&flagRowMajor != 0 {
		// Native layout: the aliased payload IS the matrix.
		f.M = Matrix{Data: payload, Rows: rows, Cols: cols}
	} else {
		// Column-major payload: the in-place transpose turns it into the
		// engine's row-major layout without a second allocation.
		f.M = FromColumnMajor(payload, rows, cols)
	}

	if flags&flagLabels != 0 {
		f.Labels = make([]int, cols)
		for j := range f.Labels {
			f.Labels[j] = int(int32(binary.LittleEndian.Uint32(buf[off+4*j:])))
		}
		off += 4 * cols
	}
	if flags&flagNames != 0 {
		f.Names = make([]string, rows)
		for i := range f.Names {
			if off+2 > len(body) {
				return nil, fmt.Errorf("matrix: spb: truncated name section at row %d", i)
			}
			l := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			if off+l > len(body) {
				return nil, fmt.Errorf("matrix: spb: truncated name at row %d", i)
			}
			f.Names[i] = string(buf[off : off+l])
			off += l
		}
	}
	if off != len(body) {
		return nil, fmt.Errorf("matrix: spb: %d trailing bytes after the last section", len(body)-off)
	}
	return f, nil
}

// ReadSPBHeader reads only the 32-byte header of an spb stream and
// returns its dimensions — the cheap metadata peek for registry info
// requests, which must not decode (or digest) a multi-megabyte payload.
// It validates the header fields but, by construction, not the digest.
func ReadSPBHeader(r io.Reader) (rows, cols int, err error) {
	var hdr [spbHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("matrix: spb: reading header: %w", err)
	}
	if [4]byte(hdr[0:4]) != spbMagic {
		return 0, 0, fmt.Errorf("matrix: spb: bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != spbVersion {
		return 0, 0, fmt.Errorf("matrix: spb: unsupported version %d", v)
	}
	rows64 := binary.LittleEndian.Uint64(hdr[16:24])
	cols64 := binary.LittleEndian.Uint64(hdr[24:32])
	if rows64 == 0 || cols64 == 0 || rows64 >= spbMaxDim || cols64 >= spbMaxDim || rows64*cols64 > spbMaxCells {
		return 0, 0, fmt.Errorf("matrix: spb: dimensions %dx%d out of range", rows64, cols64)
	}
	return int(rows64), int(cols64), nil
}

// aliasFloat64 reinterprets b as a []float64 without copying when the host
// is little-endian and b is 8-byte aligned.
func aliasFloat64(b []byte) ([]float64, bool) {
	if !hostLittleEndian || len(b) == 0 {
		return nil, false
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8), true
}
