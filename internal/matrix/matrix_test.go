package matrix

import (
	"testing"
	"testing/quick"
)

func seqMatrix(rows, cols int) []float64 {
	a := make([]float64, rows*cols)
	for i := range a {
		a[i] = float64(i)
	}
	return a
}

func TestTransposeSmall(t *testing.T) {
	// 2x3 row-major: [0 1 2; 3 4 5] -> 3x2: [0 3; 1 4; 2 5].
	src := seqMatrix(2, 3)
	got := Transpose(src, 2, 3)
	want := []float64{0, 3, 1, 4, 2, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Transpose = %v, want %v", got, want)
		}
	}
}

func TestTransposeInPlaceMatchesAllocating(t *testing.T) {
	shapes := []struct{ r, c int }{
		{1, 1}, {1, 7}, {7, 1}, {2, 2}, {2, 3}, {3, 2}, {4, 4},
		{5, 3}, {3, 5}, {16, 9}, {76, 61}, {100, 100},
	}
	for _, s := range shapes {
		src := seqMatrix(s.r, s.c)
		want := Transpose(src, s.r, s.c)
		got := seqMatrix(s.r, s.c)
		TransposeInPlace(got, s.r, s.c)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%dx%d: in-place[%d] = %v, want %v", s.r, s.c, i, got[i], want[i])
			}
		}
	}
}

func TestTransposeInPlaceInvolution(t *testing.T) {
	// Transposing twice (with swapped dims) restores the original.
	orig := seqMatrix(6, 13)
	a := append([]float64(nil), orig...)
	TransposeInPlace(a, 6, 13)
	TransposeInPlace(a, 13, 6)
	for i := range orig {
		if a[i] != orig[i] {
			t.Fatalf("double transpose differs at %d", i)
		}
	}
}

func TestTransposePanicsOnBadShape(t *testing.T) {
	for _, f := range []func(){
		func() { Transpose(make([]float64, 5), 2, 3) },
		func() { TransposeInPlace(make([]float64, 5), 2, 3) },
		func() { FromColumnMajor(make([]float64, 5), 2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad shape did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFromColumnMajor(t *testing.T) {
	// Column-major 2x3 (2 genes, 3 samples): columns are (g0s0,g1s0),
	// (g0s1,g1s1), (g0s2,g1s2).
	flat := []float64{
		10, 20, // sample 0
		11, 21, // sample 1
		12, 22, // sample 2
	}
	m := FromColumnMajor(flat, 2, 3)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	want := [][]float64{{10, 11, 12}, {20, 21, 22}}
	for r := range want {
		for c := range want[r] {
			if m.At(r, c) != want[r][c] {
				t.Fatalf("matrix = %v, want %v", m.Data, want)
			}
		}
	}
	if &m.Data[0] != &flat[0] {
		t.Error("FromColumnMajor allocated a second matrix")
	}
}

func TestFromRows(t *testing.T) {
	x := [][]float64{{1, 2, 3}, {4, 5, 6}}
	m, err := FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	for i := range x {
		for j := range x[i] {
			if m.At(i, j) != x[i][j] {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, j, m.At(i, j), x[i][j])
			}
		}
	}
	// Storage is a copy, not a view.
	x[0][0] = 99
	if m.At(0, 0) == 99 {
		t.Error("FromRows shares storage with its input")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows accepted an empty matrix")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("FromRows accepted a ragged matrix")
	}
}

func TestRowsViewSharesStorage(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	rows := m.RowsView()
	rows[1][0] = 42
	if m.At(1, 0) != 42 {
		t.Error("RowsView did not alias the flat storage")
	}
	// Appending to a row view must not clobber the next row.
	_ = append(rows[0], 99)
	if m.At(1, 0) != 42 {
		t.Error("append through a row view overwrote the next row")
	}
}

func TestCloneIndependent(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Data[0] = 77
	if m.Data[0] == 77 {
		t.Error("Clone shares storage")
	}
}

func TestQuickInPlaceEqualsAllocating(t *testing.T) {
	f := func(r8, c8 uint8) bool {
		r := int(r8%40) + 1
		c := int(c8%40) + 1
		src := seqMatrix(r, c)
		want := Transpose(src, r, c)
		got := seqMatrix(r, c)
		TransposeInPlace(got, r, c)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTransposeAllocating6102x76(b *testing.B) {
	src := seqMatrix(6102, 76)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Transpose(src, 6102, 76)
	}
}

func BenchmarkTransposeInPlace6102x76(b *testing.B) {
	src := seqMatrix(6102, 76)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TransposeInPlace(src, 6102, 76)
		TransposeInPlace(src, 76, 6102)
	}
}
