// Package seqstop implements the sequential (early-stopping) Monte Carlo
// rules of the engine's "sequential" run mode: Besag–Clifford
// negative-binomial stopping per row and anytime-valid confidence-sequence
// bounds on the whole job's p-values.
//
// The exact engine estimates every p-value with the same number of
// permutations B.  Sequential mode instead stops each row at its own
// b_eff ≤ B, chosen so that the reported estimate count/b_eff is within an
// absolute tolerance of the true permutation p-value with high probability
// — simultaneously over every row and every stopping time.  Two rules
// compose:
//
//  1. Besag & Clifford (1991): once a row has accumulated h exceedances of
//     its observed statistic, the negative-binomial estimator count/b is
//     reliable in relative terms; h is the classic sequential Monte Carlo
//     knob.  Rows that could still be significant (too few exceedances)
//     keep running unless rule 2 certifies them.
//  2. An anytime-valid confidence sequence: the empirical-Bernstein bound
//     of Maurer & Pontil (2009), made valid at every sample size by a
//     union bound over doubling epochs and across rows.  A row may stop
//     only when its radius is within the configured tolerance; a row whose
//     upper confidence bound is below the target significance level is
//     certified significant and may stop without h exceedances.
//
// Validity is the reason deactivation must respect the step-down
// structure: the adjusted count of the row at ordered position j depends
// only on rows at positions >= j, so rows may leave the computation only
// as a frozen PREFIX of the significance order.  The Tracker enforces
// exactly that: rows freeze individually (their counts stop accumulating,
// pinning count/b_eff), but the kernel may drop only the maximal
// all-frozen prefix — every still-active row's successive maxima remain
// exact, never approximated.
package seqstop

import (
	"fmt"
	"math"
)

// Defaults for the sequential rule's knobs.  DefaultAlpha and
// DefaultTolerance fill the zero values of the public options; the
// remaining constants are engine policy, deliberately not exposed through
// the API.
const (
	// DefaultAlpha is the significance threshold of interest: rows whose
	// upper confidence bound falls below it are certified significant and
	// may stop before reaching h exceedances.
	DefaultAlpha = 0.05
	// DefaultTolerance is the absolute p-value error budget |p̂ − p| the
	// confidence sequence enforces at stopping time.
	DefaultTolerance = 0.02
	// DefaultH is the Besag–Clifford exceedance requirement: a row with at
	// least this many exceedances has a stable negative-binomial estimate.
	DefaultH = 20
	// DefaultMinPerms is the smallest permutation count at which any row
	// may stop; it keeps the asymptotic bound honest at tiny b.
	DefaultMinPerms = 128
	// DefaultDelta is the confidence budget of the whole job: with
	// probability at least 1−DefaultDelta, EVERY row's reported p-value is
	// within the tolerance of its exact value, at every stopping time.
	// The budget is split uniformly across rows and doubling epochs.
	DefaultDelta = 0.05
)

// Config carries the validated sequential-rule parameters for one job.
type Config struct {
	// Alpha is the significance threshold of interest (target_alpha).
	Alpha float64
	// Tolerance is the absolute p-value error budget (p_tolerance).
	Tolerance float64
	// H is the Besag–Clifford exceedance requirement.
	H int64
	// MinPerms floors the permutation count of any stopping decision.
	MinPerms int64
	// Delta is the whole-job confidence budget; rows divides it so the
	// tolerance holds simultaneously over all rows.
	Delta float64
	// Rows is the number of hypotheses sharing the Delta budget.
	Rows int
}

// New returns the rule configuration for a job of rows hypotheses, filling
// engine defaults for zero-valued alpha and tolerance.
func New(alpha, tolerance float64, rows int) (Config, error) {
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if tolerance == 0 {
		tolerance = DefaultTolerance
	}
	if alpha <= 0 || alpha >= 1 {
		return Config{}, fmt.Errorf("seqstop: target alpha %v outside (0, 1)", alpha)
	}
	if tolerance <= 0 || tolerance > 0.5 {
		return Config{}, fmt.Errorf("seqstop: p tolerance %v outside (0, 0.5]", tolerance)
	}
	if rows < 1 {
		rows = 1
	}
	return Config{
		Alpha:     alpha,
		Tolerance: tolerance,
		H:         DefaultH,
		MinPerms:  DefaultMinPerms,
		Delta:     DefaultDelta,
		Rows:      rows,
	}, nil
}

// Radius returns the anytime-valid confidence radius around the estimate
// count/b: with probability at least 1−Delta, |count/b − p| <= Radius for
// EVERY b simultaneously and every row sharing the budget.  The bound is
// the empirical-Bernstein inequality of Maurer & Pontil applied with
// failure probability Delta/(Rows·k(k+1)) in the k-th doubling epoch
// (k = ⌊log2 b⌋ + 1); summing Delta/(k(k+1)) over all epochs telescopes
// to Delta/Rows, and the union over rows spends exactly Delta.
func (c Config) Radius(count, b int64) float64 {
	if b < 2 {
		return 1
	}
	bf := float64(b)
	p := float64(count) / bf
	v := p * (1 - p)
	k := math.Floor(math.Log2(bf)) + 1
	l := math.Log(3 * k * (k + 1) * float64(c.Rows) / c.Delta)
	return math.Sqrt(2*v*l/bf) + 3*l/bf
}

// Settled reports whether one exceedance count is pinned tightly enough to
// stop: the confidence radius is within the tolerance AND either the
// Besag–Clifford requirement holds (count >= H, the estimate is stable)
// or the row is certified significant (upper confidence bound <= Alpha —
// such rows never accumulate H exceedances, but their p-value is already
// known to absolute tolerance and their verdict at Alpha is decided).
func (c Config) Settled(count, b int64) bool {
	if b < c.MinPerms {
		return false
	}
	r := c.Radius(count, b)
	if r > c.Tolerance {
		return false
	}
	if count >= c.H {
		return true
	}
	return float64(count)/float64(b)+r <= c.Alpha
}

// Tracker drives per-row freezing for one sequential run.  It observes the
// accumulated raw and step-down exceedance counts at window boundaries,
// freezes rows whose raw AND adjusted counts are both settled, and
// maintains the maximal frozen prefix of the significance order — the rows
// the kernel may stop computing.  All decisions are pure functions of the
// (deterministic) counts, so a resumed run freezes exactly the rows an
// uninterrupted run would.
type Tracker struct {
	cfg   Config
	order []int // row indices by decreasing significance (shared, read-only)
	valid int   // leading positions of order with computable statistics

	bEff   []int64 // by row index: permutations covered when frozen; 0 = active
	prefix int     // positions [0, prefix) of order are all frozen
	frozen int     // frozen rows among the valid positions
}

// NewTracker starts tracking a run over the given significance order, of
// which the first valid positions carry computable statistics.  bEff has
// one slot per matrix row.
func NewTracker(cfg Config, order []int, valid int) *Tracker {
	return &Tracker{
		cfg:   cfg,
		order: order,
		valid: valid,
		bEff:  make([]int64, len(order)),
	}
}

// Restore re-establishes frozen state from a checkpoint's b_eff vector
// (nil means nothing was frozen).
func (t *Tracker) Restore(bEff []int64) error {
	if bEff == nil {
		return nil
	}
	if len(bEff) != len(t.bEff) {
		return fmt.Errorf("seqstop: restoring %d b_eff entries into a %d-row tracker", len(bEff), len(t.bEff))
	}
	copy(t.bEff, bEff)
	t.frozen = 0
	for j := 0; j < t.valid; j++ {
		if t.bEff[t.order[j]] > 0 {
			t.frozen++
		}
	}
	t.advancePrefix()
	return nil
}

// Observe applies the stopping rule at a window boundary: raw and adj are
// the accumulated exceedance counts by matrix row, covering b permutations
// for every still-active row.  Newly settled rows freeze with b_eff = b.
// It returns how many rows froze on this call.
func (t *Tracker) Observe(raw, adj []int64, b int64) int {
	newly := 0
	for j := 0; j < t.valid; j++ {
		r := t.order[j]
		if t.bEff[r] != 0 {
			continue
		}
		if t.cfg.Settled(raw[r], b) && t.cfg.Settled(adj[r], b) {
			t.bEff[r] = b
			t.frozen++
			newly++
		}
	}
	if newly > 0 {
		t.advancePrefix()
	}
	return newly
}

// advancePrefix extends the maximal all-frozen prefix of the order.
func (t *Tracker) advancePrefix() {
	for t.prefix < t.valid && t.bEff[t.order[t.prefix]] > 0 {
		t.prefix++
	}
}

// Active reports whether the given matrix row still accumulates counts.
func (t *Tracker) Active(row int) bool { return t.bEff[row] == 0 }

// FrozenPrefix returns how many leading positions of the order are frozen
// — the rows the kernel may drop without touching any active row's
// successive maxima.
func (t *Tracker) FrozenPrefix() int { return t.prefix }

// FrozenRows returns how many valid rows are frozen.
func (t *Tracker) FrozenRows() int { return t.frozen }

// AllFrozen reports whole-job termination: every valid row is frozen, so
// every p-value is pinned within tolerance and the run may stop.
func (t *Tracker) AllFrozen() bool { return t.frozen == t.valid }

// BEff returns the per-row effective permutation counts (0 = still
// active, and permanently 0 for rows with no computable statistic).  The
// slice is the tracker's own; callers snapshot it before mutating state.
func (t *Tracker) BEff() []int64 { return t.bEff }

// Fill assigns b_eff = b to every still-active valid row — the final
// bookkeeping of a run that reached its planned B (or stopped as a whole)
// with rows still accumulating.
func (t *Tracker) Fill(b int64) {
	for j := 0; j < t.valid; j++ {
		r := t.order[j]
		if t.bEff[r] == 0 {
			t.bEff[r] = b
			t.frozen++
		}
	}
	t.advancePrefix()
}

// PermsSaved returns the permutations already committed as saved against a
// planned total: the sum over frozen rows of totalB − b_eff.  It grows
// monotonically as rows freeze and equals the job's final row-permutation
// saving once every row is frozen.
func (t *Tracker) PermsSaved(totalB int64) int64 {
	var saved int64
	for j := 0; j < t.valid; j++ {
		if be := t.bEff[t.order[j]]; be > 0 && be < totalB {
			saved += totalB - be
		}
	}
	return saved
}
