package seqstop

import "testing"

func TestNewDefaults(t *testing.T) {
	c, err := New(0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Alpha != DefaultAlpha || c.Tolerance != DefaultTolerance {
		t.Fatalf("zero knobs want defaults, got alpha=%v tol=%v", c.Alpha, c.Tolerance)
	}
	if c.H != DefaultH || c.MinPerms != DefaultMinPerms || c.Delta != DefaultDelta {
		t.Fatalf("engine policy constants not applied: %+v", c)
	}
	if c.Rows != 100 {
		t.Fatalf("rows = %d, want 100", c.Rows)
	}
	if c2, err := New(0.01, 0.005, 0); err != nil || c2.Alpha != 0.01 || c2.Tolerance != 0.005 || c2.Rows != 1 {
		t.Fatalf("explicit knobs: %+v, %v", c2, err)
	}
}

func TestNewRejectsBadKnobs(t *testing.T) {
	for _, tc := range []struct{ alpha, tol float64 }{
		{-0.1, 0}, {1, 0}, {1.5, 0},
		{0, -0.01}, {0, 0.6}, {0, 2},
	} {
		if _, err := New(tc.alpha, tc.tol, 10); err == nil {
			t.Errorf("New(%v, %v) accepted, want error", tc.alpha, tc.tol)
		}
	}
}

func TestRadiusShrinksWithB(t *testing.T) {
	c, _ := New(0, 0, 6102)
	// At matched p̂ the bound tightens as b grows: the epoch log factor
	// grows like log log b, far slower than the √b in the denominator.
	prev := c.Radius(10, 1024)
	for _, b := range []int64{4096, 16384, 65536, 1 << 20} {
		r := c.Radius(10*b/1024, b)
		if r >= prev {
			t.Fatalf("radius grew from %v to %v at b=%d", prev, r, b)
		}
		prev = r
	}
	if r := c.Radius(0, 1); r != 1 {
		t.Fatalf("radius at b<2 = %v, want the vacuous bound 1", r)
	}
}

func TestRadiusVarianceSensitive(t *testing.T) {
	c, _ := New(0, 0, 1000)
	// p̂ = 0 has zero empirical variance, p̂ = 1/2 maximises it; the
	// empirical-Bernstein bound must be far tighter at the extreme — that
	// asymmetry is what lets near-zero p-values certify early.
	const b = 1 << 16
	lo := c.Radius(0, b)
	hi := c.Radius(b/2, b)
	if lo >= hi/4 {
		t.Fatalf("radius(p̂=0)=%v not ≪ radius(p̂=.5)=%v", lo, hi)
	}
}

func TestSettledGates(t *testing.T) {
	c, _ := New(0, 0, 100)
	if c.Settled(0, c.MinPerms-1) {
		t.Fatal("settled below MinPerms")
	}
	// Small b: the radius still exceeds the tolerance even at count 0.
	if c.Settled(0, 128) {
		t.Fatalf("settled at b=128 with radius %v > tolerance", c.Radius(0, 128))
	}
	// Large b, count 0: certified significant (UCB ≤ alpha) without ever
	// reaching H exceedances.
	const big = int64(1 << 20)
	if !c.Settled(0, big) {
		t.Fatalf("count 0 at b=%d not settled (radius %v)", big, c.Radius(0, big))
	}
	// Besag–Clifford path: count ≥ H with a tight radius.
	if !c.Settled(c.H, big) {
		t.Fatal("count=H with tight radius not settled")
	}
	// p̂ = 1/2 at b=16384: count ≫ H but the max-variance radius is still
	// above the 0.02 tolerance — the row keeps running...
	if c.Settled(8192, 16384) {
		t.Fatalf("p̂=0.5 settled at b=16384 (radius %v)", c.Radius(8192, 16384))
	}
	// ...and settles once b pins even the worst-case variance.
	if !c.Settled(32768, 65536) {
		t.Fatalf("p̂=0.5 not settled at b=65536 (radius %v)", c.Radius(32768, 65536))
	}
}

func TestTrackerPrefixInvariant(t *testing.T) {
	c, _ := New(0, 0, 4)
	order := []int{2, 0, 3, 1} // row indices by decreasing significance
	tr := NewTracker(c, order, 4)

	// First window, b=4096: the two count-0 rows (0 and 3) certify
	// significant and freeze; rows 2 (p̂≈0.24) and 1 (p̂≈0.10) stay active.
	raw := []int64{0, 400, 1000, 0}
	adj := []int64{0, 400, 1000, 0}
	n := tr.Observe(raw, adj, 4096)
	if n != 2 || tr.FrozenRows() != 2 {
		t.Fatalf("first window froze %d rows (total %d), want 2", n, tr.FrozenRows())
	}
	if tr.Active(2) == false || tr.Active(1) == false {
		t.Fatal("a wide-variance row froze early")
	}
	// Row 2 sits at order position 0: frozen rows exist but no prefix may
	// be dropped while the most significant row still accumulates.
	if tr.FrozenPrefix() != 0 {
		t.Fatalf("prefix = %d with position 0 active", tr.FrozenPrefix())
	}
	if tr.AllFrozen() {
		t.Fatal("AllFrozen with active rows")
	}

	// Second window, b=16384: row 2's counts turn out tiny (p̂≈0.002,
	// count ≥ H) and it settles; row 1 at p̂=0.5 still cannot.  The prefix
	// must advance across ALL frozen positions, not just the new one.
	raw = []int64{0, 8192, 30, 0}
	adj = []int64{0, 8192, 30, 0}
	tr.Observe(raw, adj, 16384)
	if tr.Active(2) {
		t.Fatal("row 2 did not settle")
	}
	if tr.Active(1) == false {
		t.Fatal("p̂=0.5 row settled too early")
	}
	if tr.FrozenPrefix() != 3 {
		t.Fatalf("prefix = %d, want 3 (positions 0-2 frozen, position 3 active)", tr.FrozenPrefix())
	}
	for j := 0; j < tr.FrozenPrefix(); j++ {
		if tr.Active(order[j]) {
			t.Fatalf("position %d inside the frozen prefix is active", j)
		}
	}
	// Frozen rows keep the b at which they froze.
	be := tr.BEff()
	if be[0] != 4096 || be[3] != 4096 || be[2] != 16384 || be[1] != 0 {
		t.Fatalf("b_eff = %v, want [4096 0 16384 4096]", be)
	}
}

func TestTrackerFillAndPermsSaved(t *testing.T) {
	c, _ := New(0, 0, 3)
	order := []int{0, 1, 2}
	tr := NewTracker(c, order, 3)
	tr.Observe([]int64{0, 0, 500}, []int64{0, 0, 500}, 4096)
	if tr.FrozenRows() != 2 || tr.AllFrozen() {
		t.Fatalf("setup: frozen %d, allFrozen %v", tr.FrozenRows(), tr.AllFrozen())
	}
	const total = int64(100000)
	if got, want := tr.PermsSaved(total), 2*(total-4096); got != want {
		t.Fatalf("PermsSaved = %d, want %d", got, want)
	}
	savedBefore := tr.PermsSaved(total)
	tr.Fill(total)
	if !tr.AllFrozen() || tr.FrozenPrefix() != 3 {
		t.Fatal("Fill left active rows")
	}
	// A row filled at the planned total saves nothing; earlier freezes
	// keep their committed saving.
	if got := tr.PermsSaved(total); got != savedBefore {
		t.Fatalf("PermsSaved changed across Fill: %d -> %d", savedBefore, got)
	}
}

func TestTrackerRestoreRoundTrip(t *testing.T) {
	c, _ := New(0, 0, 4)
	order := []int{3, 1, 0, 2}
	tr := NewTracker(c, order, 4)
	tr.Observe([]int64{0, 0, 2000, 0}, []int64{0, 0, 2000, 0}, 8192)
	if tr.FrozenRows() != 3 || tr.FrozenPrefix() != 3 {
		t.Fatalf("setup: frozen %d prefix %d, want 3/3", tr.FrozenRows(), tr.FrozenPrefix())
	}

	snap := append([]int64(nil), tr.BEff()...)
	tr2 := NewTracker(c, order, 4)
	if err := tr2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if tr2.FrozenRows() != tr.FrozenRows() || tr2.FrozenPrefix() != tr.FrozenPrefix() {
		t.Fatalf("restore mismatch: frozen %d/%d prefix %d/%d",
			tr2.FrozenRows(), tr.FrozenRows(), tr2.FrozenPrefix(), tr.FrozenPrefix())
	}
	if err := tr2.Restore(make([]int64, 3)); err == nil {
		t.Fatal("restore accepted a wrong-length b_eff vector")
	}
	tr3 := NewTracker(c, order, 4)
	if err := tr3.Restore(nil); err != nil || tr3.FrozenRows() != 0 {
		t.Fatalf("nil restore: err %v frozen %d", err, tr3.FrozenRows())
	}
}

func TestObserveSkipsInvalidTail(t *testing.T) {
	c, _ := New(0, 0, 2)
	order := []int{1, 0, 2} // position 2: no computable statistic
	tr := NewTracker(c, order, 2)
	tr.Observe([]int64{0, 0, 0}, []int64{0, 0, 0}, 1<<20)
	if !tr.AllFrozen() {
		t.Fatal("valid rows not all frozen")
	}
	if tr.BEff()[2] != 0 {
		t.Fatal("invalid row acquired a b_eff")
	}
	tr.Fill(1 << 20)
	if tr.BEff()[2] != 0 {
		t.Fatal("Fill touched the invalid tail")
	}
}
