package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sprint/internal/matrix"
	"sprint/internal/maxt"
	"sprint/internal/perm"
	"sprint/internal/stat"
)

// This file generalises the permutation loop for long-lived callers (the
// pmaxtd job server): the same bit-exact computation as MaxT / PMaxT, but
// driven in windows so that a supervisor can observe progress, cancel the
// run between windows, and persist resumable checkpoints.  The kernel of
// each window is still chunked over ranks exactly as Figure 2 of the paper
// chunks the whole sequence — counts merge by int64 addition, so the result
// is bit-identical to the serial run for every rank count, window size and
// resume point.

// RunControl carries the service hooks of a supervised run.  The zero value
// is an uncheckpointed run equivalent to MaxT, parallel over every CPU.
type RunControl struct {
	// Ctx cancels the run between windows; nil means never.  A cancelled
	// run returns the context's error: the last saved checkpoint is the
	// resume point.
	Ctx context.Context
	// NProcs is the number of goroutine ranks the kernel of each window is
	// chunked over; values < 1 select runtime.GOMAXPROCS(0), i.e. every
	// available CPU.  Results are bit-identical at any rank count.
	NProcs int
	// Resume continues a previous run from its checkpoint.  The checkpoint
	// must match the analysis (ErrCheckpointMismatch otherwise).
	Resume *Checkpoint
	// Every is the window length in permutations — the granularity of
	// progress, cancellation and checkpoints.  Values < 1 select the whole
	// remaining run as one window.
	Every int64
	// Save, when non-nil, receives a snapshot after every window.  An
	// error from Save aborts the run.
	Save func(*Checkpoint) error
	// OnProgress, when non-nil, is called after every window with the
	// number of permutations processed so far (including resumed ones) and
	// the planned total.
	OnProgress func(done, total int64)
	// Scratch, when non-nil, supplies reusable per-rank working state.  A
	// long-lived caller (the jobs worker pool) passes one RunScratch per
	// worker so that consecutive jobs reuse kernel scratch, batch buffers
	// and partial-count vectors instead of reallocating them.
	Scratch *RunScratch
}

// RunScratch owns the per-rank mutable state of supervised runs: maxt
// scratch (including the permutation-batch buffers) and partial counts.
// It is resized on demand, may be reused across analyses of any shape or
// test, and must not be shared by concurrent runs.
type RunScratch struct {
	scratches []*maxt.Scratch
	partials  []*maxt.Counts
}

// ensure sizes the scratch for a run of prep over nprocs ranks.
func (rs *RunScratch) ensure(prep *maxt.Prep, nprocs int) {
	for len(rs.scratches) < nprocs {
		rs.scratches = append(rs.scratches, nil)
		rs.partials = append(rs.partials, nil)
	}
	for r := 0; r < nprocs; r++ {
		rs.scratches[r] = prep.ScratchFrom(rs.scratches[r])
		if rs.partials[r] == nil {
			rs.partials[r] = maxt.NewCounts(prep.Rows())
		} else {
			rs.partials[r].Reset(prep.Rows())
		}
	}
}

// Run executes the permutation testing function under the given control.
// Results are bit-identical to MaxT with the same options, regardless of
// NProcs, Every and any cancel/resume history.
func Run(x [][]float64, classlabel []int, opt Options, ctl RunControl) (*Result, error) {
	m, err := rowsInput(x)
	if err != nil {
		return nil, err
	}
	return RunMatrix(m, classlabel, opt, ctl)
}

// RunMatrix is Run on the flat matrix the engine computes on; x is not
// modified.  Large callers (the job server) use it directly so the only
// full-matrix copies left are the NA scrub (skipped when clean) and the
// prep's private transform copy.
func RunMatrix(x matrix.Matrix, classlabel []int, opt Options, ctl RunControl) (*Result, error) {
	// Observe cancellation before the expensive setup too (preparation
	// and the stored generator materialise the whole remaining run), so
	// a drained shutdown queue costs nothing per job.
	if ctl.Ctx != nil {
		if err := ctl.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: run not started: %w", err)
		}
	}
	var prof Profile
	start := time.Now()
	cfg, err := parseOptions(opt)
	if err != nil {
		return nil, err
	}
	if x.IsEmpty() {
		return nil, fmt.Errorf("core: empty input matrix")
	}
	clean := scrubNA(x, cfg.na)
	prof.PreProcessing = time.Since(start)

	start = time.Now()
	design, err := stat.NewDesign(cfg.test, classlabel)
	if err != nil {
		return nil, err
	}
	prep, err := maxt.NewPrepMatrix(clean, design, cfg.side, cfg.nonpara)
	if err != nil {
		return nil, err
	}
	useComplete, totalB, err := planPermutations(cfg, design)
	if err != nil {
		return nil, err
	}
	door := useComplete && cfg.doorOrder(design)
	fp := fingerprint(cfg, clean, classlabel, door)

	nprocs := ctl.NProcs
	if nprocs < 1 {
		nprocs = runtime.GOMAXPROCS(0)
	}
	batch := cfg.effectiveBatch()
	every := ctl.Every
	if every < 1 {
		every = totalB
	} else if every < totalB {
		// Align the window (and therefore every checkpoint boundary) to a
		// whole number of kernel batches, so no window ends on a ragged
		// tail batch.  Checkpoint semantics are unchanged: a checkpoint
		// taken at ANY boundary — including one saved by an earlier,
		// unaligned engine — remains a valid resume point, because counts
		// are a pure prefix sum over the permutation sequence.
		eb := int64(batch)
		every = (every + eb - 1) / eb * eb
	}

	counts := maxt.NewCounts(prep.Rows())
	first := int64(0)
	if ctl.Resume != nil {
		r := ctl.Resume
		if r.Fingerprint != fp || r.TotalB != totalB || r.Complete != useComplete {
			return nil, ErrCheckpointMismatch
		}
		if len(r.Raw) != prep.Rows() || len(r.Adj) != prep.Rows() {
			return nil, ErrCheckpointMismatch
		}
		copy(counts.Raw, r.Raw)
		copy(counts.Adj, r.Adj)
		counts.B = r.Done
		first = r.Next
	}

	var gen perm.Generator
	switch {
	case useComplete:
		gen, err = cfg.completeGen(design)
		if err != nil {
			return nil, err
		}
	case cfg.fixedSeed:
		gen = perm.NewRandom(design, cfg.seed, totalB)
	default:
		// One materialisation covering every remaining permutation; the
		// window workers index into their sub-chunks of it.
		gen = perm.NewStored(design, cfg.seed, totalB, first, totalB)
	}
	prof.CreateData = time.Since(start)

	// Per-rank reusable state: generators are concurrency-safe, so ranks
	// share gen but own their scratch and partial counts.  The state lives
	// in a RunScratch so a long-lived worker can carry it across jobs.
	rs := ctl.Scratch
	if rs == nil {
		rs = &RunScratch{}
	}
	rs.ensure(prep, nprocs)
	scratches, partials := rs.scratches, rs.partials

	kernelStart := time.Now()
	for lo := first; lo < totalB; lo += every {
		if ctl.Ctx != nil {
			if err := ctl.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: run stopped at permutation %d of %d: %w", lo, totalB, err)
			}
		}
		hi := lo + every
		if hi > totalB {
			hi = totalB
		}
		span := hi - lo
		if nprocs == 1 {
			maxt.ProcessBatched(prep, gen, lo, hi, counts, scratches[0], batch)
		} else {
			var wg sync.WaitGroup
			for r := 0; r < nprocs; r++ {
				// Rank boundaries inside the window align to batch
				// multiples (relative to the window start), so only the
				// window's last rank can see a ragged tail batch.
				clo := lo + alignBoundary(span*int64(r)/int64(nprocs), span, batch)
				chi := lo + alignBoundary(span*int64(r+1)/int64(nprocs), span, batch)
				if clo == chi {
					continue
				}
				wg.Add(1)
				go func(r int, clo, chi int64) {
					defer wg.Done()
					maxt.ProcessBatched(prep, gen, clo, chi, partials[r], scratches[r], batch)
				}(r, clo, chi)
			}
			wg.Wait()
			for r := 0; r < nprocs; r++ {
				if partials[r].B > 0 {
					counts.Merge(partials[r])
					clear(partials[r].Raw)
					clear(partials[r].Adj)
					partials[r].B = 0
				}
			}
		}
		if ctl.Save != nil {
			snap := &Checkpoint{
				Fingerprint: fp,
				TotalB:      totalB,
				Complete:    useComplete,
				Next:        hi,
				Raw:         append([]int64(nil), counts.Raw...),
				Adj:         append([]int64(nil), counts.Adj...),
				Done:        counts.B,
			}
			if err := ctl.Save(snap); err != nil {
				return nil, fmt.Errorf("core: checkpoint save at permutation %d: %w", hi, err)
			}
		}
		if ctl.OnProgress != nil {
			ctl.OnProgress(counts.B, totalB)
		}
	}
	prof.MainKernel = time.Since(kernelStart)

	start = time.Now()
	if counts.B != totalB {
		return nil, fmt.Errorf("core: accumulated permutation count %d, want %d", counts.B, totalB)
	}
	final := maxt.Finalize(prep, counts)
	prof.ComputePValues = time.Since(start)

	return &Result{
		Stat:      final.Stat,
		RawP:      final.RawP,
		AdjP:      final.AdjP,
		Order:     final.Order,
		B:         final.B,
		Complete:  useComplete,
		NProcs:    nprocs,
		Profile:   prof,
		KernelMax: prof.MainKernel,
	}, nil
}

// CanonicalOptions validates opt and returns it with the documented
// defaults filled in — the form under which two option sets describe the
// same analysis iff they are equal.  A job server uses it both to reject
// bad submissions early and to build content-addressed cache keys.
func CanonicalOptions(opt Options) (Options, error) {
	cfg, err := parseOptions(opt)
	if err != nil {
		return opt, err
	}
	return Options{
		Test:              cfg.test.String(),
		Side:              cfg.side.String(),
		FixedSeedSampling: boolToYN(cfg.fixedSeed),
		B:                 cfg.b,
		NA:                cfg.na,
		Nonpara:           boolToYN(cfg.nonpara),
		Seed:              cfg.seed,
		MaxComplete:       cfg.maxComplete,
		ScalarParams:      cfg.scalarParams,
		// Like ScalarParams, BatchSize and PermOrder are preserved (they
		// still select the execution strategy) but never hashed into
		// content keys: results are bitwise identical at every batch size
		// and under every enumeration order.
		BatchSize: cfg.batch,
		PermOrder: cfg.order.String(),
	}, nil
}
