package core

import (
	"context"
	"fmt"
	"time"

	"sprint/internal/matrix"
	"sprint/internal/maxt"
)

// This file generalises the permutation loop for long-lived callers (the
// pmaxtd job server): the same bit-exact computation as MaxT / PMaxT, but
// driven in windows so that a supervisor can observe progress, cancel the
// run between windows, and persist resumable checkpoints.  The kernel of
// each window is still chunked over ranks exactly as Figure 2 of the paper
// chunks the whole sequence — counts merge by int64 addition, so the result
// is bit-identical to the serial run for every rank count, window size and
// resume point.

// RunControl carries the service hooks of a supervised run.  The zero value
// is an uncheckpointed run equivalent to MaxT, parallel over every CPU.
type RunControl struct {
	// Ctx cancels the run between windows; nil means never.  A cancelled
	// run returns the context's error: the last saved checkpoint is the
	// resume point.
	Ctx context.Context
	// NProcs is the number of goroutine ranks the kernel of each window is
	// chunked over; values < 1 select runtime.GOMAXPROCS(0), i.e. every
	// available CPU.  Results are bit-identical at any rank count.
	NProcs int
	// Resume continues a previous run from its checkpoint.  The checkpoint
	// must match the analysis (ErrCheckpointMismatch otherwise).
	Resume *Checkpoint
	// Every is the window length in permutations — the granularity of
	// progress, cancellation and checkpoints.  Values < 1 select the whole
	// remaining run as one window.
	Every int64
	// Save, when non-nil, receives a snapshot after every window.  An
	// error from Save aborts the run.
	Save func(*Checkpoint) error
	// OnProgress, when non-nil, is called after every window with the
	// number of permutations processed so far (including resumed ones) and
	// the planned total.
	OnProgress func(done, total int64)
	// OnWindow, when non-nil, receives each kernel window's permutation
	// count and wall time right after the window's counts merge — the
	// timing hook the serving layer feeds its per-stage histograms from.
	// It runs on the run's supervising goroutine and must be cheap and
	// allocation-free: it sits inside the hot loop.
	OnWindow func(perms int64, elapsed time.Duration)
	// OnSeq, when non-nil, is called after every sequential-mode window
	// with the number of rows still accumulating and the per-row
	// permutation evaluations already saved relative to the planned total.
	// Never called in exact mode.
	OnSeq func(activeRows int, permsSaved int64)
	// Scratch, when non-nil, supplies reusable per-rank working state.  A
	// long-lived caller (the jobs worker pool) passes one RunScratch per
	// worker so that consecutive jobs reuse kernel scratch, batch buffers
	// and partial-count vectors instead of reallocating them.
	Scratch *RunScratch
}

// RunScratch owns the per-rank mutable state of supervised runs: maxt
// scratch (including the permutation-batch buffers) and partial counts.
// It is resized on demand, may be reused across analyses of any shape or
// test, and must not be shared by concurrent runs.
type RunScratch struct {
	scratches []*maxt.Scratch
	partials  []*maxt.Counts
}

// ensure sizes the scratch for a run of prep over nprocs ranks.
func (rs *RunScratch) ensure(prep *maxt.Prep, nprocs int) {
	for len(rs.scratches) < nprocs {
		rs.scratches = append(rs.scratches, nil)
		rs.partials = append(rs.partials, nil)
	}
	for r := 0; r < nprocs; r++ {
		rs.scratches[r] = prep.ScratchFrom(rs.scratches[r])
		if rs.partials[r] == nil {
			rs.partials[r] = maxt.NewCounts(prep.Rows())
		} else {
			rs.partials[r].Reset(prep.Rows())
		}
	}
}

// Run executes the permutation testing function under the given control.
// Results are bit-identical to MaxT with the same options, regardless of
// NProcs, Every and any cancel/resume history.
func Run(x [][]float64, classlabel []int, opt Options, ctl RunControl) (*Result, error) {
	m, err := rowsInput(x)
	if err != nil {
		return nil, err
	}
	return RunMatrix(m, classlabel, opt, ctl)
}

// RunMatrix is Run on the flat matrix the engine computes on; x is not
// modified.  Large callers (the job server) use it directly so the only
// full-matrix copies left are the NA scrub (skipped when clean) and the
// prep's private transform copy.  It is Prepare + RunPrepared in one call;
// callers that run many analyses over one dataset should hold the
// Prepared themselves (or submit by dataset id to the job server) so the
// preparation is paid once, not per run.
func RunMatrix(x matrix.Matrix, classlabel []int, opt Options, ctl RunControl) (*Result, error) {
	// Observe cancellation before the expensive setup too (preparation
	// and the stored generator materialise the whole remaining run), so
	// a drained shutdown queue costs nothing per job.
	if ctl.Ctx != nil {
		if err := ctl.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: run not started: %w", err)
		}
	}
	p, err := Prepare(x, classlabel, opt)
	if err != nil {
		return nil, err
	}
	res, err := RunPrepared(p, opt, ctl)
	if err != nil {
		return nil, err
	}
	// The preparation happened inline on this call: charge its cost to
	// the historical profile sections (scrub is pre-processing, design +
	// prep build is data creation), exactly as the pre-split code timed
	// them.
	res.Profile.PreProcessing += p.scrubTime
	res.Profile.CreateData += p.buildTime
	return res, nil
}

// CanonicalOptions validates opt and returns it with the documented
// defaults filled in — the form under which two option sets describe the
// same analysis iff they are equal.  A job server uses it both to reject
// bad submissions early and to build content-addressed cache keys.
func CanonicalOptions(opt Options) (Options, error) {
	cfg, err := parseOptions(opt)
	if err != nil {
		return opt, err
	}
	return Options{
		Test:              cfg.test.String(),
		Side:              cfg.side.String(),
		FixedSeedSampling: boolToYN(cfg.fixedSeed),
		B:                 cfg.b,
		NA:                cfg.na,
		Nonpara:           boolToYN(cfg.nonpara),
		Seed:              cfg.seed,
		MaxComplete:       cfg.maxComplete,
		ScalarParams:      cfg.scalarParams,
		// Like ScalarParams, BatchSize and PermOrder are preserved (they
		// still select the execution strategy) but never hashed into
		// content keys: results are bitwise identical at every batch size
		// and under every enumeration order.
		BatchSize: cfg.batch,
		PermOrder: cfg.order.String(),
		// Mode names the engine; the sequential knobs canonicalise to
		// their resolved values in sequential mode and to zero in exact
		// mode, where they cannot affect anything.  Content keys hash the
		// three fields only for sequential jobs, so every exact-mode key
		// is byte-identical to the keys earlier engines produced.
		Mode:         cfg.mode.String(),
		SeqAlpha:     cfg.seqAlpha,
		SeqTolerance: cfg.seqTol,
	}, nil
}
