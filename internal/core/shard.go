package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"sprint/internal/maxt"
	"sprint/internal/perm"
)

// This file is the distribution surface of the engine: the paper's Step
// 4a/4b split — partition the permutation range [0, B) across ranks,
// compute local exceedance counts, merge — lifted from goroutine ranks
// inside one process (RunPrepared) to shards computed on separate nodes.
// The contract that makes that lift bitwise-safe is narrow and worth
// stating once:
//
//   - Every generator enumerates ONE deterministic permutation sequence
//     fixed by (options, design); any [lo, hi) slice of it can be
//     produced on any node (Random indexes in O(1), Complete and
//     RevolvingDoor unrank, Stored materialises exactly the chunk).
//   - Exceedance counts are int64 sums over disjoint index ranges, so
//     merging shard counts is commutative and associative: ANY partition
//     merged in ANY order yields the same vectors, provided each index
//     is counted exactly once.
//   - Finalize is a pure function of (Prep, merged counts).
//
// Plan captures the shared identity every node must agree on; RunShard
// computes one range; FinalizeCounts turns fully merged counts into the
// Result.  RunPrepared is now the single-node composition of the same
// pieces.

// Plan is the resolved permutation plan of an analysis: everything a
// set of nodes must agree on before splitting the range.  Two nodes
// with equal fingerprints enumerate the same permutation sequence over
// the same prepared data, so their shard counts may be merged.
type Plan struct {
	// TotalB is the planned permutation count, observed labelling
	// included; shards partition [0, TotalB).
	TotalB int64
	// Complete records the generator choice and Door the resolved
	// enumeration order of complete two-sample runs.
	Complete bool
	Door     bool
	// Rows is the per-shard count vector length.
	Rows int
	// Fingerprint ties shard results to the analysis identity, exactly
	// as it ties checkpoints: engine version, validated options,
	// enumeration order, labels and a data sample.
	Fingerprint uint64
}

// PlanRun resolves opt against the preparation without running anything.
func PlanRun(p *Prepared, opt Options) (Plan, error) {
	_, plan, err := p.planFor(opt)
	return plan, err
}

// planFor validates opt, checks prep compatibility and resolves the
// permutation plan.
func (p *Prepared) planFor(opt Options) (config, Plan, error) {
	cfg, err := parseOptions(opt)
	if err != nil {
		return cfg, Plan{}, err
	}
	if err := p.compatible(cfg); err != nil {
		return cfg, Plan{}, err
	}
	useComplete, totalB, err := planPermutations(cfg, p.design)
	if err != nil {
		return cfg, Plan{}, err
	}
	if cfg.mode == modeSequential && useComplete {
		return cfg, Plan{}, fmt.Errorf("core: mode \"sequential\" requires sampled permutations, but the plan resolved to the complete enumeration (%d labellings, which is exact by definition); run exact mode instead", totalB)
	}
	door := useComplete && cfg.doorOrder(p.design)
	return cfg, Plan{
		TotalB:      totalB,
		Complete:    useComplete,
		Door:        door,
		Rows:        p.prep.Rows(),
		Fingerprint: fingerprint(cfg, p.clean, p.labels, door),
	}, nil
}

// checkResume validates the analysis-identity half of a resume checkpoint
// against the plan, naming the field that drifted so mismatches are
// debuggable; range/progress semantics stay with the caller.
func (pl Plan) checkResume(r *Checkpoint, rows int) error {
	switch {
	case r.Fingerprint != pl.Fingerprint:
		return ckptMismatch("fingerprint", fmt.Sprintf("%016x", r.Fingerprint), fmt.Sprintf("%016x", pl.Fingerprint))
	case r.TotalB != pl.TotalB:
		return ckptMismatch("TotalB", r.TotalB, pl.TotalB)
	case r.Complete != pl.Complete:
		return ckptMismatch("Complete", r.Complete, pl.Complete)
	case len(r.Raw) != rows || len(r.Adj) != rows:
		return ckptMismatch("rows", fmt.Sprintf("%d raw / %d adj counts", len(r.Raw), len(r.Adj)), rows)
	}
	return nil
}

// generatorFor builds the permutation generator serving indices
// [lo, hi) of the plan's sequence.  Complete and fixed-seed generators
// index the whole sequence in O(1) per draw; the stored generator
// materialises exactly the requested chunk (paying one pass of discards
// over [1, lo), the paper's "cycle the stream forward" cost).
func (p *Prepared) generatorFor(cfg config, plan Plan, lo, hi int64) (perm.Generator, error) {
	switch {
	case plan.Complete:
		return cfg.completeGen(p.design)
	case cfg.fixedSeed:
		return perm.NewRandom(p.design, cfg.seed, plan.TotalB), nil
	default:
		return perm.NewStored(p.design, cfg.seed, plan.TotalB, lo, hi), nil
	}
}

// processRange drives the windowed multi-rank kernel loop over
// permutation indices [first, limit), merging exceedance counts into
// counts.  It returns the first unprocessed index: limit on success, the
// boundary of the last completed window when ctl.Ctx cancels — counts
// then hold a valid partial covering everything below that boundary,
// which is what lets a draining worker hand its progress back instead
// of discarding it.
func processRange(p *Prepared, cfg config, plan Plan, gen perm.Generator, counts *maxt.Counts, first, limit int64, ctl RunControl) (int64, error) {
	prep := p.prep
	nprocs := ctl.NProcs
	if nprocs < 1 {
		nprocs = runtime.GOMAXPROCS(0)
	}
	batch := cfg.effectiveBatch()
	every := ctl.Every
	if every < 1 {
		every = limit - first
		if every < 1 {
			every = 1
		}
	} else {
		// Align the window (and therefore every checkpoint boundary) to a
		// whole number of kernel batches, so no window ends on a ragged
		// tail batch.  Checkpoint semantics are unchanged: a checkpoint
		// taken at ANY boundary — including one saved by an earlier,
		// unaligned engine — remains a valid resume point, because counts
		// are a pure prefix sum over the permutation sequence.
		eb := int64(batch)
		every = (every + eb - 1) / eb * eb
	}

	rs := ctl.Scratch
	if rs == nil {
		rs = &RunScratch{}
	}
	rs.ensure(prep, nprocs)
	scratches, partials := rs.scratches, rs.partials

	for lo := first; lo < limit; lo += every {
		if ctl.Ctx != nil {
			if err := ctl.Ctx.Err(); err != nil {
				return lo, fmt.Errorf("core: run stopped at permutation %d of %d: %w", lo, plan.TotalB, err)
			}
		}
		hi := lo + every
		if hi > limit {
			hi = limit
		}
		span := hi - lo
		var windowStart time.Time
		if ctl.OnWindow != nil {
			windowStart = time.Now()
		}
		if nprocs == 1 {
			maxt.ProcessBatched(prep, gen, lo, hi, counts, scratches[0], batch)
		} else {
			var wg sync.WaitGroup
			for r := 0; r < nprocs; r++ {
				// Rank boundaries inside the window align to batch
				// multiples (relative to the window start), so only the
				// window's last rank can see a ragged tail batch.
				clo := lo + alignBoundary(span*int64(r)/int64(nprocs), span, batch)
				chi := lo + alignBoundary(span*int64(r+1)/int64(nprocs), span, batch)
				if clo == chi {
					continue
				}
				wg.Add(1)
				go func(r int, clo, chi int64) {
					defer wg.Done()
					maxt.ProcessBatched(prep, gen, clo, chi, partials[r], scratches[r], batch)
				}(r, clo, chi)
			}
			wg.Wait()
			for r := 0; r < nprocs; r++ {
				if partials[r].B > 0 {
					counts.Merge(partials[r])
					clear(partials[r].Raw)
					clear(partials[r].Adj)
					partials[r].B = 0
				}
			}
		}
		if ctl.OnWindow != nil {
			ctl.OnWindow(span, time.Since(windowStart))
		}
		if ctl.Save != nil {
			snap := &Checkpoint{
				Fingerprint: plan.Fingerprint,
				TotalB:      plan.TotalB,
				Complete:    plan.Complete,
				Next:        hi,
				Raw:         append([]int64(nil), counts.Raw...),
				Adj:         append([]int64(nil), counts.Adj...),
				Done:        counts.B,
			}
			if err := ctl.Save(snap); err != nil {
				return hi, fmt.Errorf("core: checkpoint save at permutation %d: %w", hi, err)
			}
		}
		if ctl.OnProgress != nil {
			ctl.OnProgress(counts.B, plan.TotalB)
		}
	}
	return limit, nil
}

// ShardCounts is the partial result of one shard: exceedance counts
// over the contiguous global index range [Lo, Next) of the plan's
// permutation sequence.  Next < Hi of the requested range marks a
// partial shard (the node drained or was cancelled mid-range); the
// unprocessed remainder [Next, Hi) must be computed elsewhere.
type ShardCounts struct {
	Plan     Plan
	Lo, Next int64
	Counts   *maxt.Counts
}

// RunShard computes exceedance counts for the global permutation index
// range [lo, hi) of the plan opt resolves to over p.  It is the worker
// half of the distributed Step 4b: bit-for-bit the counts a single-node
// run accumulates over the same indices, for every test, kernel and
// enumeration order, because the generator slice and the kernel are the
// single-node ones.
//
// ctl.Resume may carry a shard checkpoint previously saved through
// ctl.Save during a run of the SAME range: it is accepted when the
// fingerprint, plan and range agree (Next-Done == lo places its counts
// at this shard's origin) and rejected with ErrCheckpointMismatch
// otherwise.  On context cancellation RunShard returns the error AND a
// ShardCounts whose Next marks the last completed window boundary —
// counts below it are valid and mergeable, so a draining worker ships
// them instead of wasting the work.
func RunShard(p *Prepared, opt Options, lo, hi int64, ctl RunControl) (*ShardCounts, error) {
	cfg, plan, err := p.planFor(opt)
	if err != nil {
		return nil, err
	}
	if cfg.mode == modeSequential {
		// Per-row freezing needs the global prefix counts, which one shard
		// never holds: sequential stopping is coordinated ABOVE the shard
		// level (the coordinator evaluates merged counts and cancels
		// in-flight shards), so shards themselves always run exact.
		return nil, fmt.Errorf("core: RunShard rejects mode \"sequential\": shards compute exact counts; the coordinator applies the stopping rule to the merge")
	}
	if lo < 0 || hi > plan.TotalB || lo >= hi {
		return nil, fmt.Errorf("core: shard range [%d, %d) outside plan [0, %d)", lo, hi, plan.TotalB)
	}
	counts := maxt.NewCounts(plan.Rows)
	start := lo
	if ctl.Resume != nil {
		r := ctl.Resume
		if err := plan.checkResume(r, plan.Rows); err != nil {
			return nil, err
		}
		// A shard checkpoint's counts cover [Next-Done, Next); they only
		// belong to this shard when that range starts at lo and ends
		// inside [lo, hi].
		if r.Next-r.Done != lo || r.Next < lo || r.Next > hi {
			return nil, ckptMismatch("range", fmt.Sprintf("counts over [%d, %d)", r.Next-r.Done, r.Next), fmt.Sprintf("a prefix of shard [%d, %d)", lo, hi))
		}
		copy(counts.Raw, r.Raw)
		copy(counts.Adj, r.Adj)
		counts.B = r.Done
		start = r.Next
	}
	sc := &ShardCounts{Plan: plan, Lo: lo, Next: start, Counts: counts}
	if start == hi {
		return sc, nil
	}
	gen, err := p.generatorFor(cfg, plan, start, hi)
	if err != nil {
		return nil, err
	}
	next, runErr := processRange(p, cfg, plan, gen, counts, start, hi, ctl)
	sc.Next = next
	return sc, runErr
}

// FinalizeCounts converts fully merged exceedance counts into the final
// Result: the deterministic Step 5 a coordinator applies after merging
// every shard.  counts must cover the whole plan (counts.B == TotalB);
// the Result is then bitwise identical to a single-node run, no matter
// how the range was partitioned or in which order shards merged.
func FinalizeCounts(p *Prepared, opt Options, counts *maxt.Counts) (*Result, error) {
	_, plan, err := p.planFor(opt)
	if err != nil {
		return nil, err
	}
	if counts.B != plan.TotalB {
		return nil, fmt.Errorf("core: merged permutation count %d, want %d", counts.B, plan.TotalB)
	}
	if len(counts.Raw) != plan.Rows || len(counts.Adj) != plan.Rows {
		return nil, fmt.Errorf("core: merged count vectors have %d rows, want %d", len(counts.Raw), plan.Rows)
	}
	start := time.Now()
	final := maxt.Finalize(p.prep, counts)
	return &Result{
		Stat:     final.Stat,
		RawP:     final.RawP,
		AdjP:     final.AdjP,
		Order:    final.Order,
		B:        final.B,
		Complete: plan.Complete,
		Profile:  Profile{ComputePValues: time.Since(start)},
	}, nil
}

// PartitionShards splits [0, totalB) into n contiguous, deterministic
// windows following the paper's Figure-2 rank partitioning (Chunk):
// equal spans up to remainder, observed labelling in the first window.
// Empty windows (n > totalB) are dropped.
func PartitionShards(totalB int64, n int) [][2]int64 {
	if n < 1 {
		n = 1
	}
	out := make([][2]int64, 0, n)
	for r := 0; r < n; r++ {
		lo, hi := Chunk(totalB, n, r)
		if lo < hi {
			out = append(out, [2]int64{lo, hi})
		}
	}
	return out
}
