package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"sprint/internal/matrix"
	"sprint/internal/rng"
)

// prepTestMatrix builds a deterministic genes×samples matrix with NA codes
// and NaN cells sprinkled in, plus balanced two-class labels.
func prepTestMatrix(genes, samples int) (matrix.Matrix, []int) {
	m := matrix.New(genes, samples)
	src := rng.New(4242)
	for i := range m.Data {
		switch {
		case i%37 == 5:
			m.Data[i] = DefaultNA // the multtest missing code
		case i%53 == 7:
			m.Data[i] = math.NaN()
		default:
			m.Data[i] = src.NormFloat64()
		}
	}
	labels := make([]int, samples)
	for j := samples / 2; j < samples; j++ {
		labels[j] = 1
	}
	return m, labels
}

func sameResultBits(t *testing.T, name string, got, want *Result) {
	t.Helper()
	check := func(field string, g, w []float64) {
		t.Helper()
		if len(g) != len(w) {
			t.Fatalf("%s %s: length %d, want %d", name, field, len(g), len(w))
		}
		for i := range g {
			if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
				t.Fatalf("%s %s[%d]: %v != %v", name, field, i, g[i], w[i])
			}
		}
	}
	check("Stat", got.Stat, want.Stat)
	check("RawP", got.RawP, want.RawP)
	check("AdjP", got.AdjP, want.AdjP)
	if got.B != want.B || got.Complete != want.Complete {
		t.Fatalf("%s: B/Complete %d/%v, want %d/%v", name, got.B, got.Complete, want.B, want.Complete)
	}
	for i := range want.Order {
		if got.Order[i] != want.Order[i] {
			t.Fatalf("%s Order[%d]: %d != %d", name, i, got.Order[i], want.Order[i])
		}
	}
}

// TestRunPreparedMatchesRunMatrix: one Prepared reused across runs with
// different per-run options must reproduce RunMatrix bitwise for each.
func TestRunPreparedMatchesRunMatrix(t *testing.T) {
	x, labels := prepTestMatrix(60, 10)
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"welch", Options{Test: "t", B: 400, Seed: 11}},
		{"wilcoxon-upper", Options{Test: "wilcoxon", Side: "upper", B: 300, Seed: 5}},
		{"nonpara-complete", Options{Test: "t", Nonpara: "y", B: 0, MaxComplete: 1 << 20}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Prepare(x, labels, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := RunMatrix(x, labels, tc.opt, RunControl{NProcs: 2, Every: 64})
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunPrepared(p, tc.opt, RunControl{NProcs: 2, Every: 64})
			if err != nil {
				t.Fatal(err)
			}
			sameResultBits(t, tc.name, got, want)

			// A second run over the same Prepared with a different seed
			// and B must also match its from-scratch twin: the Prepared
			// is not consumed by a run.
			opt2 := tc.opt
			if opt2.B > 0 {
				opt2.Seed += 100
				opt2.B += 50
			}
			want2, err := RunMatrix(x, labels, opt2, RunControl{NProcs: 1})
			if err != nil {
				t.Fatal(err)
			}
			got2, err := RunPrepared(p, opt2, RunControl{NProcs: 1})
			if err != nil {
				t.Fatal(err)
			}
			sameResultBits(t, tc.name+"/reuse", got2, want2)
		})
	}
}

// TestRunPreparedConcurrent: many goroutines sharing one Prepared (the
// job-server pattern: one dataset, many seeds) must each get the result
// their own RunMatrix would have produced.
func TestRunPreparedConcurrent(t *testing.T) {
	x, labels := prepTestMatrix(40, 8)
	opt := Options{Test: "t", B: 200}
	p, err := Prepare(x, labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 8
	results := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := opt
			o.Seed = uint64(i)
			results[i], errs[i] = RunPrepared(p, o, RunControl{NProcs: 2, Every: 32})
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		o := opt
		o.Seed = uint64(i)
		want, err := RunMatrix(x, labels, o, RunControl{NProcs: 1})
		if err != nil {
			t.Fatal(err)
		}
		sameResultBits(t, "concurrent", results[i], want)
	}
}

// TestRunPreparedMismatch: options that change the preparation itself must
// be refused, not silently recomputed with the wrong prep.
func TestRunPreparedMismatch(t *testing.T) {
	x, labels := prepTestMatrix(30, 8)
	p, err := Prepare(x, labels, Options{Test: "t", B: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Options{
		{Test: "t.equalvar", B: 100},
		{Test: "t", Side: "upper", B: 100},
		{Test: "t", Nonpara: "y", B: 100},
		{Test: "t", NA: -1.5, B: 100},
	} {
		if _, err := RunPrepared(p, bad, RunControl{}); !errors.Is(err, ErrPrepMismatch) {
			t.Errorf("options %+v: error %v, want ErrPrepMismatch", bad, err)
		}
	}
	// Per-run knobs must NOT be refused.
	for _, ok := range []Options{
		{Test: "t", B: 50, Seed: 9},
		{Test: "t", B: 100, FixedSeedSampling: "n"},
		{Test: "t", B: 100, BatchSize: 16},
		{Test: "t", B: 100, PermOrder: "lex"},
	} {
		if _, err := RunPrepared(p, ok, RunControl{}); err != nil {
			t.Errorf("options %+v: unexpected error %v", ok, err)
		}
	}
}

// TestPrepBuildsCounter: the process-wide counter must tick once per
// Prepare and not at all for RunPrepared.
func TestPrepBuildsCounter(t *testing.T) {
	x, labels := prepTestMatrix(20, 8)
	opt := Options{Test: "t", B: 60}
	before := PrepBuilds()
	p, err := Prepare(x, labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := PrepBuilds() - before; got != 1 {
		t.Fatalf("Prepare ticked the counter by %d, want 1", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := RunPrepared(p, opt, RunControl{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := PrepBuilds() - before; got != 1 {
		t.Fatalf("3 RunPrepared calls moved the counter to +%d, want +1", got)
	}
}

// TestRunPreparedProfileSkipsPrep: a run over a shared preparation must
// not charge pre-processing (the scrub) — proof at the profile level that
// cache hits skip the work, not merely the accounting.
func TestRunPreparedProfileSkipsPrep(t *testing.T) {
	x, labels := prepTestMatrix(30, 8)
	opt := Options{Test: "t", B: 100}
	p, err := Prepare(x, labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPrepared(p, opt, RunControl{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.PreProcessing != 0 {
		t.Errorf("RunPrepared charged %v pre-processing, want 0", res.Profile.PreProcessing)
	}
}
