package core

import (
	"context"
	"testing"

	"sprint/internal/matrix"
	"sprint/internal/maxt"
)

// fromRowsT adapts the [][]float64 test fixtures to the matrix layout
// Prepare takes.
func fromRowsT(t *testing.T, x [][]float64) matrix.Matrix {
	t.Helper()
	m, err := matrix.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// shardCases is the distribution test matrix: all six statistics, both
// generators, sampled and complete enumeration, default and door order —
// every path a cluster shard can take.
func shardCases() []struct {
	name string
	lab  []int
	opt  Options
} {
	lab := twoClass(6, 6)
	flab := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	plab := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	blab := []int{0, 1, 2, 1, 2, 0, 2, 0, 1, 0, 1, 2}
	return []struct {
		name string
		lab  []int
		opt  Options
	}{
		{"welch/otf", lab, Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 200, Seed: 1}},
		{"welch/stored", lab, Options{Test: "t", Side: "upper", FixedSeedSampling: "n", B: 200, Seed: 2}},
		{"equalvar/stored", lab, Options{Test: "t.equalvar", Side: "abs", FixedSeedSampling: "n", B: 150, Seed: 4}},
		{"wilcoxon/otf", lab, Options{Test: "wilcoxon", Side: "abs", FixedSeedSampling: "y", B: 150, Seed: 5}},
		{"wilcoxon/complete/lex", lab, Options{Test: "wilcoxon", Side: "abs", B: 0, PermOrder: "lex"}},
		{"wilcoxon/complete/door", lab, Options{Test: "wilcoxon", Side: "abs", B: 0, PermOrder: "door"}},
		{"f/otf", flab, Options{Test: "f", Side: "abs", FixedSeedSampling: "y", B: 150, Seed: 6}},
		{"pairt/complete", plab, Options{Test: "pairt", Side: "abs", B: 0, Seed: 7}},
		{"blockf/otf", blab, Options{Test: "blockf", Side: "abs", FixedSeedSampling: "y", B: 100, Seed: 9}},
	}
}

// unevenSpans carves [0, total) into deliberately unequal windows —
// the shape of a heterogeneous cluster's partition.
func unevenSpans(total int64) [][2]int64 {
	cuts := []int64{0, total / 7, total / 3, total/3 + 1, 2 * total / 3, total}
	var spans [][2]int64
	for i := 0; i+1 < len(cuts); i++ {
		if cuts[i] < cuts[i+1] {
			spans = append(spans, [2]int64{cuts[i], cuts[i+1]})
		}
	}
	return spans
}

// TestShardMergeAssociativity is the cluster's correctness foundation:
// computing disjoint permutation windows with RunShard and merging the
// exceedance counts — in ANY arrival order — finalizes bitwise identical
// to the single-node run, for every statistic, generator and enumeration
// order.
func TestShardMergeAssociativity(t *testing.T) {
	x := synthMatrix(30, 12, 5, 2024)
	for _, tc := range shardCases() {
		p, err := Prepare(fromRowsT(t, x), tc.lab, tc.opt)
		if err != nil {
			t.Fatalf("%s: prepare: %v", tc.name, err)
		}
		want, err := RunPrepared(p, tc.opt, RunControl{NProcs: 2, Every: 64})
		if err != nil {
			t.Fatalf("%s: full run: %v", tc.name, err)
		}
		plan, err := PlanRun(p, tc.opt)
		if err != nil {
			t.Fatalf("%s: plan: %v", tc.name, err)
		}
		if plan.TotalB != int64(want.B) {
			t.Fatalf("%s: plan B %d, result B %d", tc.name, plan.TotalB, want.B)
		}
		spans := unevenSpans(plan.TotalB)
		parts := make([]*ShardCounts, len(spans))
		for i, sp := range spans {
			sc, err := RunShard(p, tc.opt, sp[0], sp[1], RunControl{NProcs: 1, Every: 33})
			if err != nil {
				t.Fatalf("%s shard %v: %v", tc.name, sp, err)
			}
			if sc.Lo != sp[0] || sc.Next != sp[1] {
				t.Fatalf("%s shard %v: covered [%d,%d)", tc.name, sp, sc.Lo, sc.Next)
			}
			if sc.Plan.Fingerprint != plan.Fingerprint {
				t.Fatalf("%s shard %v: fingerprint drift", tc.name, sp)
			}
			parts[i] = sc
		}
		// Merge under several arrival orders: index order, reversed, and
		// a shuffle — associativity means all finalize identically.
		if len(parts) != 5 {
			t.Fatalf("%s: %d spans, want 5", tc.name, len(parts))
		}
		orders := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 4, 0, 3, 1}}
		for _, order := range orders {
			merged := maxt.NewCounts(plan.Rows)
			for _, i := range order {
				merged.Merge(parts[i].Counts)
			}
			got, err := FinalizeCounts(p, tc.opt, merged)
			if err != nil {
				t.Fatalf("%s: finalize: %v", tc.name, err)
			}
			sameResultBits(t, tc.name, got, want)
		}
	}
}

// TestRunShardResumeAndCancel pins the shard checkpoint contract: a
// cancelled shard hands back its prefix counts plus a checkpoint whose
// (Next, Done) place it inside the shard window, and resuming from that
// checkpoint completes the window with no permutation recounted.
func TestRunShardResumeAndCancel(t *testing.T) {
	x := synthMatrix(20, 12, 3, 77)
	lab := twoClass(6, 6)
	opt := Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 400, Seed: 11}
	p, err := Prepare(fromRowsT(t, x), lab, opt)
	if err != nil {
		t.Fatal(err)
	}
	const lo, hi = 100, 300

	whole, err := RunShard(p, opt, lo, hi, RunControl{NProcs: 1, Every: 50})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel after the first window; keep the last checkpoint.
	ctx, cancel := context.WithCancel(context.Background())
	var ckpt *Checkpoint
	part, err := RunShard(p, opt, lo, hi, RunControl{
		Ctx: ctx, NProcs: 1, Every: 50,
		Save: func(c *Checkpoint) error { ckpt = c; cancel(); return nil },
	})
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if part == nil || part.Next <= lo || part.Next >= hi {
		t.Fatalf("partial shard should stop inside the window, got %+v", part)
	}
	if ckpt == nil || ckpt.Next != part.Next || ckpt.Next-ckpt.Done != lo {
		t.Fatalf("checkpoint (Next=%d Done=%d) does not mark shard [%d,%d) prefix",
			ckpt.Next, ckpt.Done, lo, hi)
	}

	rest, err := RunShard(p, opt, lo, hi, RunControl{NProcs: 1, Every: 50, Resume: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if rest.Next != hi || rest.Counts.B != hi-lo {
		t.Fatalf("resumed shard covered B=%d next=%d, want B=%d next=%d",
			rest.Counts.B, rest.Next, hi-lo, hi)
	}
	if rest.Counts.B != whole.Counts.B {
		t.Fatalf("resumed B %d != whole B %d", rest.Counts.B, whole.Counts.B)
	}
	for i := range whole.Counts.Raw {
		if rest.Counts.Raw[i] != whole.Counts.Raw[i] || rest.Counts.Adj[i] != whole.Counts.Adj[i] {
			t.Fatalf("row %d: resumed counts (%d,%d) != whole (%d,%d)", i,
				rest.Counts.Raw[i], rest.Counts.Adj[i], whole.Counts.Raw[i], whole.Counts.Adj[i])
		}
	}

	// A checkpoint from a different window must be rejected.
	if _, err := RunShard(p, opt, lo+1, hi, RunControl{NProcs: 1, Resume: ckpt}); err == nil {
		t.Fatal("foreign-window checkpoint accepted")
	}
}

// TestRunShardBounds pins the window validation.
func TestRunShardBounds(t *testing.T) {
	x := synthMatrix(5, 12, 0, 3)
	lab := twoClass(6, 6)
	opt := Options{Test: "t", B: 50, Seed: 1}
	p, err := Prepare(fromRowsT(t, x), lab, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range [][2]int64{{-1, 10}, {10, 10}, {20, 10}, {0, 51}} {
		if _, err := RunShard(p, opt, w[0], w[1], RunControl{}); err == nil {
			t.Errorf("window %v accepted", w)
		}
	}
}
