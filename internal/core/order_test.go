package core

import (
	"errors"
	"strings"
	"testing"

	"sprint/internal/microarray"
)

// orderTestData builds a dataset small enough for complete enumeration
// (12 choose 6 = 924 labellings).
func orderTestData(t *testing.T, test string) (*microarray.Dataset, Options) {
	t.Helper()
	data, err := microarray.Generate(microarray.GenOptions{
		Genes: 40, Samples: 12, Classes: 2,
		DiffFraction: 0.1, EffectSize: 2.0, MissingRate: 0.02, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Test = test
	opt.B = 0 // complete enumeration
	return data, opt
}

// TestPermOrderResultsIdentical asserts every enumeration order produces
// bitwise identical results — the order changes the sequence, never the
// set — serial and parallel, parametric and rank-based.
func TestPermOrderResultsIdentical(t *testing.T) {
	for _, test := range []string{"t", "wilcoxon"} {
		for _, nonpara := range []string{"n", "y"} {
			data, opt := orderTestData(t, test)
			opt.Nonpara = nonpara
			opt.PermOrder = "lex"
			want, err := MaxT(data.X, data.Labels, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !want.Complete {
				t.Fatal("expected a complete enumeration")
			}
			for _, order := range []string{"auto", "door", ""} {
				opt.PermOrder = order
				got, err := MaxT(data.X, data.Labels, opt)
				if err != nil {
					t.Fatalf("order %q: %v", order, err)
				}
				sameResult(t, got, want)
				par, err := PMaxT(data.X, data.Labels, 3, opt)
				if err != nil {
					t.Fatalf("order %q parallel: %v", order, err)
				}
				sameResult(t, par, want)
			}
		}
	}
}

// TestPermOrderDoorRequiresTwoSample pins the explicit-door error on
// designs without a revolving-door enumeration.
func TestPermOrderDoorRequiresTwoSample(t *testing.T) {
	data, err := microarray.Generate(microarray.GenOptions{
		Genes: 10, Samples: 8, Classes: 2, DiffFraction: 0.2,
		EffectSize: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairLabels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	opt := DefaultOptions()
	opt.Test = "pairt"
	opt.B = 0
	opt.PermOrder = "door"
	if _, err := MaxT(data.X, pairLabels, opt); err == nil || !strings.Contains(err.Error(), "door") {
		t.Fatalf("pairt + door: err = %v, want a door-order error", err)
	}
	opt.PermOrder = "bogus"
	if _, err := MaxT(data.X, pairLabels, opt); err == nil {
		t.Fatal("bogus order accepted")
	}
}

// TestPermOrderCheckpointFingerprint asserts checkpoints are tied to the
// enumeration order: a prefix of counts accumulated in one order is not a
// valid resume point for another, so resuming across orders fails loudly.
func TestPermOrderCheckpointFingerprint(t *testing.T) {
	data, opt := orderTestData(t, "wilcoxon")
	var last *Checkpoint
	save := func(c *Checkpoint) error { last = c; return nil }
	opt.PermOrder = "door"
	if _, err := Run(data.X, data.Labels, opt, RunControl{Every: 100, Save: save}); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint saved")
	}
	opt.PermOrder = "lex"
	if _, err := Run(data.X, data.Labels, opt, RunControl{Resume: last}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("lex run resumed a door checkpoint: %v", err)
	}
	// "auto" resolves to door on this design, so the checkpoint IS valid.
	opt.PermOrder = "auto"
	res, err := Run(data.X, data.Labels, opt, RunControl{Resume: last})
	if err != nil {
		t.Fatalf("auto run rejected a door checkpoint: %v", err)
	}
	opt.PermOrder = "door"
	want, err := MaxT(data.X, data.Labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, want)
}

// TestPermOrderExcludedFromCanonicalIdentity asserts the knob survives
// canonicalisation (it still selects the execution strategy) while two
// option sets differing only in PermOrder stay equivalent analyses —
// the property jobs.KeyMatrix relies on to share cache entries.
func TestPermOrderExcludedFromCanonicalIdentity(t *testing.T) {
	a, err := CanonicalOptions(Options{B: 100, PermOrder: "lex"})
	if err != nil {
		t.Fatal(err)
	}
	if a.PermOrder != "lex" {
		t.Fatalf("canonical PermOrder = %q, want lex", a.PermOrder)
	}
	b, err := CanonicalOptions(Options{B: 100, PermOrder: "door"})
	if err != nil {
		t.Fatal(err)
	}
	a.PermOrder, b.PermOrder = "", ""
	if a != b {
		t.Fatalf("options differing only in PermOrder canonicalise differently: %+v vs %+v", a, b)
	}
}
