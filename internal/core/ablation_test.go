package core

import (
	"fmt"
	"testing"
)

// Ablation benchmarks for the design choices called out in DESIGN.md:
//
//   - string-parameter broadcast (the paper's Step 2 wire protocol) versus
//     scalar codes (future-work item 3);
//   - the on-the-fly generator versus storing permutations in memory
//     (fixed.seed.sampling = "y" vs "n");
//   - the step-down kernel across process counts on a fixed workload.
//
// Run with: go test -bench=Ablation ./internal/core -benchmem

func ablationWorkload() ([][]float64, []int) {
	return synthMatrix(120, 76, 6, 99), twoClass(38, 38)
}

// BenchmarkAblationBroadcastProtocol isolates Step 2: parameter validation
// plus broadcast with a minimal kernel, so the protocol cost difference is
// visible rather than drowned by permutations.
func BenchmarkAblationBroadcastProtocol(b *testing.B) {
	x, lab := ablationWorkload()
	for _, scalar := range []bool{false, true} {
		name := "strings"
		if scalar {
			name = "scalars"
		}
		b.Run(name, func(b *testing.B) {
			opt := Options{B: 2, Seed: 1, ScalarParams: scalar}
			for i := 0; i < b.N; i++ {
				if _, err := PMaxT(x, lab, 8, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGenerator compares the two sampling modes end to end.
// The stored generator pays materialisation (draw-and-discard forwarding
// plus memory) where the on-the-fly generator pays per-permutation stream
// setup; the paper keeps "y" as the default.
func BenchmarkAblationGenerator(b *testing.B) {
	x, lab := ablationWorkload()
	for _, fss := range []string{"y", "n"} {
		name := "on-the-fly"
		if fss == "n" {
			name = "stored"
		}
		b.Run(name, func(b *testing.B) {
			opt := Options{B: 500, Seed: 1, FixedSeedSampling: fss}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MaxT(x, lab, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationProcessCount sweeps goroutine ranks on a fixed
// workload: the in-repo analogue of one column of the paper's speedup
// tables.
func BenchmarkAblationProcessCount(b *testing.B) {
	x, lab := ablationWorkload()
	for _, np := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("procs=%d", np), func(b *testing.B) {
			opt := Options{B: 1000, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := PMaxT(x, lab, np, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCheckpointOverhead quantifies future-work item 1: the
// cost of periodic checkpointing relative to an uninterrupted run.
func BenchmarkAblationCheckpointOverhead(b *testing.B) {
	x, lab := ablationWorkload()
	opt := Options{B: 500, Seed: 1}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MaxT(x, lab, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, every := range []int64{50, 250} {
		b.Run(fmt.Sprintf("every=%d", every), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MaxTCheckpointed(x, lab, opt, nil, every,
					func(c *Checkpoint) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
