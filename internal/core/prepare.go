package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sprint/internal/matrix"
	"sprint/internal/maxt"
	"sprint/internal/perm"
	"sprint/internal/stat"
)

// This file splits the expensive, input-only half of a permutation run —
// NA scrub, design validation, rank transform, per-row moment precompute,
// observed statistics, step-down order — out of the per-run path, so that
// a job server running a thousand analyses over one dataset (different
// seeds, different B) builds that state ONCE and shares it read-only
// across jobs and workers.  A Prepared depends only on (matrix, labels,
// test, side, nonpara, NA code); everything per-run (B, seed, order,
// batch, rank count, checkpoints) stays in RunPrepared.

// Prepared is the immutable, shareable preparation of analyses over one
// (dataset, labels, test, side, nonpara, NA) tuple.  It is safe for
// concurrent use by any number of RunPrepared calls: maxt.Prep is
// read-only after construction and all per-run mutable state lives in
// RunControl scratch.
type Prepared struct {
	clean  matrix.Matrix
	labels []int
	design *stat.Design
	prep   *maxt.Prep

	// The prep-relevant option subset, recorded so RunPrepared can refuse
	// an options mismatch instead of silently computing the wrong test.
	test    stat.Test
	side    maxt.Side
	nonpara bool
	na      float64

	// scrubTime and buildTime record what Prepare spent, so wrappers that
	// prepare and run in one call (RunMatrix) can report the historical
	// profile sections.  Cached reuse deliberately does NOT charge them:
	// a cache hit really does skip that work.
	scrubTime time.Duration
	buildTime time.Duration
}

// prepBuilds counts Prepare calls process-wide.  The jobs layer asserts
// prep reuse against it: N jobs on one cached dataset must add exactly 1.
var prepBuilds atomic.Int64

// PrepBuilds reports how many full preparations (scrub + rank transform +
// moment precompute + observed statistics) this process has built.
func PrepBuilds() int64 { return prepBuilds.Load() }

// Rows returns the number of matrix rows (genes) the preparation covers.
func (p *Prepared) Rows() int { return p.prep.Rows() }

// Labels returns the class labels the preparation was built under.  The
// slice is shared; callers must not modify it.
func (p *Prepared) Labels() []int { return p.labels }

// Prepare builds the shareable preparation of x under opt's prep-relevant
// options (Test, Side, Nonpara, NA).  x is not modified.  The returned
// value may be cached and shared by any number of concurrent RunPrepared
// calls whose options agree on that subset — B, Seed, FixedSeedSampling,
// PermOrder, BatchSize and MaxComplete are free to vary per run.
func Prepare(x matrix.Matrix, classlabel []int, opt Options) (*Prepared, error) {
	cfg, err := parseOptions(opt)
	if err != nil {
		return nil, err
	}
	if x.IsEmpty() {
		return nil, fmt.Errorf("core: empty input matrix")
	}
	start := time.Now()
	clean := scrubNA(x, cfg.na)
	scrubTime := time.Since(start)

	start = time.Now()
	design, err := stat.NewDesign(cfg.test, classlabel)
	if err != nil {
		return nil, err
	}
	prep, err := maxt.NewPrepMatrix(clean, design, cfg.side, cfg.nonpara)
	if err != nil {
		return nil, err
	}
	prepBuilds.Add(1)
	return &Prepared{
		clean:  clean,
		labels: append([]int(nil), classlabel...),
		design: design,
		prep:   prep,
		test:   cfg.test, side: cfg.side, nonpara: cfg.nonpara, na: cfg.na,
		scrubTime: scrubTime,
		buildTime: time.Since(start),
	}, nil
}

// ErrPrepMismatch reports a RunPrepared call whose options disagree with
// the preparation on a prep-relevant field.
var ErrPrepMismatch = fmt.Errorf("core: options do not match the prepared state (test, side, nonpara or NA changed)")

// compatible checks that opt's prep-relevant subset matches p.
func (p *Prepared) compatible(cfg config) error {
	if cfg.test != p.test || cfg.side != p.side || cfg.nonpara != p.nonpara || cfg.na != p.na {
		return ErrPrepMismatch
	}
	return nil
}

// RunPrepared executes the permutation testing function over a shared
// preparation: the same bit-exact computation as RunMatrix with the same
// inputs, minus every cost Prepare already paid.  opt must agree with the
// preparation on Test, Side, Nonpara and NA (ErrPrepMismatch otherwise);
// all other options select this run's permutation plan.  The returned
// profile charges only work this call performed — a served-from-cache
// preparation reports (near-)zero pre-processing and data-creation time,
// which is the point.
func RunPrepared(p *Prepared, opt Options, ctl RunControl) (*Result, error) {
	if ctl.Ctx != nil {
		if err := ctl.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: run not started: %w", err)
		}
	}
	cfg, err := parseOptions(opt)
	if err != nil {
		return nil, err
	}
	if err := p.compatible(cfg); err != nil {
		return nil, err
	}
	var prof Profile

	start := time.Now()
	prep, design := p.prep, p.design
	useComplete, totalB, err := planPermutations(cfg, design)
	if err != nil {
		return nil, err
	}
	door := useComplete && cfg.doorOrder(design)
	fp := fingerprint(cfg, p.clean, p.labels, door)

	nprocs := ctl.NProcs
	if nprocs < 1 {
		nprocs = runtime.GOMAXPROCS(0)
	}
	batch := cfg.effectiveBatch()
	every := ctl.Every
	if every < 1 {
		every = totalB
	} else if every < totalB {
		// Align the window (and therefore every checkpoint boundary) to a
		// whole number of kernel batches, so no window ends on a ragged
		// tail batch.  Checkpoint semantics are unchanged: a checkpoint
		// taken at ANY boundary — including one saved by an earlier,
		// unaligned engine — remains a valid resume point, because counts
		// are a pure prefix sum over the permutation sequence.
		eb := int64(batch)
		every = (every + eb - 1) / eb * eb
	}

	counts := maxt.NewCounts(prep.Rows())
	first := int64(0)
	if ctl.Resume != nil {
		r := ctl.Resume
		if r.Fingerprint != fp || r.TotalB != totalB || r.Complete != useComplete {
			return nil, ErrCheckpointMismatch
		}
		if len(r.Raw) != prep.Rows() || len(r.Adj) != prep.Rows() {
			return nil, ErrCheckpointMismatch
		}
		copy(counts.Raw, r.Raw)
		copy(counts.Adj, r.Adj)
		counts.B = r.Done
		first = r.Next
	}

	var gen perm.Generator
	switch {
	case useComplete:
		gen, err = cfg.completeGen(design)
		if err != nil {
			return nil, err
		}
	case cfg.fixedSeed:
		gen = perm.NewRandom(design, cfg.seed, totalB)
	default:
		// One materialisation covering every remaining permutation; the
		// window workers index into their sub-chunks of it.
		gen = perm.NewStored(design, cfg.seed, totalB, first, totalB)
	}
	prof.CreateData = time.Since(start)

	// Per-rank reusable state: generators are concurrency-safe, so ranks
	// share gen but own their scratch and partial counts.  The state lives
	// in a RunScratch so a long-lived worker can carry it across jobs.
	rs := ctl.Scratch
	if rs == nil {
		rs = &RunScratch{}
	}
	rs.ensure(prep, nprocs)
	scratches, partials := rs.scratches, rs.partials

	kernelStart := time.Now()
	for lo := first; lo < totalB; lo += every {
		if ctl.Ctx != nil {
			if err := ctl.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: run stopped at permutation %d of %d: %w", lo, totalB, err)
			}
		}
		hi := lo + every
		if hi > totalB {
			hi = totalB
		}
		span := hi - lo
		var windowStart time.Time
		if ctl.OnWindow != nil {
			windowStart = time.Now()
		}
		if nprocs == 1 {
			maxt.ProcessBatched(prep, gen, lo, hi, counts, scratches[0], batch)
		} else {
			var wg sync.WaitGroup
			for r := 0; r < nprocs; r++ {
				// Rank boundaries inside the window align to batch
				// multiples (relative to the window start), so only the
				// window's last rank can see a ragged tail batch.
				clo := lo + alignBoundary(span*int64(r)/int64(nprocs), span, batch)
				chi := lo + alignBoundary(span*int64(r+1)/int64(nprocs), span, batch)
				if clo == chi {
					continue
				}
				wg.Add(1)
				go func(r int, clo, chi int64) {
					defer wg.Done()
					maxt.ProcessBatched(prep, gen, clo, chi, partials[r], scratches[r], batch)
				}(r, clo, chi)
			}
			wg.Wait()
			for r := 0; r < nprocs; r++ {
				if partials[r].B > 0 {
					counts.Merge(partials[r])
					clear(partials[r].Raw)
					clear(partials[r].Adj)
					partials[r].B = 0
				}
			}
		}
		if ctl.OnWindow != nil {
			ctl.OnWindow(span, time.Since(windowStart))
		}
		if ctl.Save != nil {
			snap := &Checkpoint{
				Fingerprint: fp,
				TotalB:      totalB,
				Complete:    useComplete,
				Next:        hi,
				Raw:         append([]int64(nil), counts.Raw...),
				Adj:         append([]int64(nil), counts.Adj...),
				Done:        counts.B,
			}
			if err := ctl.Save(snap); err != nil {
				return nil, fmt.Errorf("core: checkpoint save at permutation %d: %w", hi, err)
			}
		}
		if ctl.OnProgress != nil {
			ctl.OnProgress(counts.B, totalB)
		}
	}
	prof.MainKernel = time.Since(kernelStart)

	start = time.Now()
	if counts.B != totalB {
		return nil, fmt.Errorf("core: accumulated permutation count %d, want %d", counts.B, totalB)
	}
	final := maxt.Finalize(prep, counts)
	prof.ComputePValues = time.Since(start)

	return &Result{
		Stat:      final.Stat,
		RawP:      final.RawP,
		AdjP:      final.AdjP,
		Order:     final.Order,
		B:         final.B,
		Complete:  useComplete,
		NProcs:    nprocs,
		Profile:   prof,
		KernelMax: prof.MainKernel,
	}, nil
}
