package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"sprint/internal/matrix"
	"sprint/internal/maxt"
	"sprint/internal/stat"
)

// This file splits the expensive, input-only half of a permutation run —
// NA scrub, design validation, rank transform, per-row moment precompute,
// observed statistics, step-down order — out of the per-run path, so that
// a job server running a thousand analyses over one dataset (different
// seeds, different B) builds that state ONCE and shares it read-only
// across jobs and workers.  A Prepared depends only on (matrix, labels,
// test, side, nonpara, NA code); everything per-run (B, seed, order,
// batch, rank count, checkpoints) stays in RunPrepared.

// Prepared is the immutable, shareable preparation of analyses over one
// (dataset, labels, test, side, nonpara, NA) tuple.  It is safe for
// concurrent use by any number of RunPrepared calls: maxt.Prep is
// read-only after construction and all per-run mutable state lives in
// RunControl scratch.
type Prepared struct {
	clean  matrix.Matrix
	labels []int
	design *stat.Design
	prep   *maxt.Prep

	// The prep-relevant option subset, recorded so RunPrepared can refuse
	// an options mismatch instead of silently computing the wrong test.
	test    stat.Test
	side    maxt.Side
	nonpara bool
	na      float64

	// scrubTime and buildTime record what Prepare spent, so wrappers that
	// prepare and run in one call (RunMatrix) can report the historical
	// profile sections.  Cached reuse deliberately does NOT charge them:
	// a cache hit really does skip that work.
	scrubTime time.Duration
	buildTime time.Duration
}

// prepBuilds counts Prepare calls process-wide.  The jobs layer asserts
// prep reuse against it: N jobs on one cached dataset must add exactly 1.
var prepBuilds atomic.Int64

// PrepBuilds reports how many full preparations (scrub + rank transform +
// moment precompute + observed statistics) this process has built.
func PrepBuilds() int64 { return prepBuilds.Load() }

// Rows returns the number of matrix rows (genes) the preparation covers.
func (p *Prepared) Rows() int { return p.prep.Rows() }

// Labels returns the class labels the preparation was built under.  The
// slice is shared; callers must not modify it.
func (p *Prepared) Labels() []int { return p.labels }

// Prepare builds the shareable preparation of x under opt's prep-relevant
// options (Test, Side, Nonpara, NA).  x is not modified.  The returned
// value may be cached and shared by any number of concurrent RunPrepared
// calls whose options agree on that subset — B, Seed, FixedSeedSampling,
// PermOrder, BatchSize and MaxComplete are free to vary per run.
func Prepare(x matrix.Matrix, classlabel []int, opt Options) (*Prepared, error) {
	cfg, err := parseOptions(opt)
	if err != nil {
		return nil, err
	}
	if x.IsEmpty() {
		return nil, fmt.Errorf("core: empty input matrix")
	}
	start := time.Now()
	clean := scrubNA(x, cfg.na)
	scrubTime := time.Since(start)

	start = time.Now()
	design, err := stat.NewDesign(cfg.test, classlabel)
	if err != nil {
		return nil, err
	}
	prep, err := maxt.NewPrepMatrix(clean, design, cfg.side, cfg.nonpara)
	if err != nil {
		return nil, err
	}
	prepBuilds.Add(1)
	return &Prepared{
		clean:  clean,
		labels: append([]int(nil), classlabel...),
		design: design,
		prep:   prep,
		test:   cfg.test, side: cfg.side, nonpara: cfg.nonpara, na: cfg.na,
		scrubTime: scrubTime,
		buildTime: time.Since(start),
	}, nil
}

// ErrPrepMismatch reports a RunPrepared call whose options disagree with
// the preparation on a prep-relevant field.
var ErrPrepMismatch = fmt.Errorf("core: options do not match the prepared state (test, side, nonpara or NA changed)")

// compatible checks that opt's prep-relevant subset matches p, naming the
// field that drifted — a cluster fingerprint mismatch is debuggable only
// if the error says WHICH option disagreed.  errors.Is(err,
// ErrPrepMismatch) holds for every branch.
func (p *Prepared) compatible(cfg config) error {
	switch {
	case cfg.test != p.test:
		return fmt.Errorf("%w: test drifted (options have %q, prepared state has %q)", ErrPrepMismatch, cfg.test, p.test)
	case cfg.side != p.side:
		return fmt.Errorf("%w: side drifted (options have %q, prepared state has %q)", ErrPrepMismatch, cfg.side, p.side)
	case cfg.nonpara != p.nonpara:
		return fmt.Errorf("%w: nonpara drifted (options have %v, prepared state has %v)", ErrPrepMismatch, cfg.nonpara, p.nonpara)
	case cfg.na != p.na:
		return fmt.Errorf("%w: NA code drifted (options have %v, prepared state has %v)", ErrPrepMismatch, cfg.na, p.na)
	}
	return nil
}

// RunPrepared executes the permutation testing function over a shared
// preparation: the same bit-exact computation as RunMatrix with the same
// inputs, minus every cost Prepare already paid.  opt must agree with the
// preparation on Test, Side, Nonpara and NA (ErrPrepMismatch otherwise);
// all other options select this run's permutation plan.  The returned
// profile charges only work this call performed — a served-from-cache
// preparation reports (near-)zero pre-processing and data-creation time,
// which is the point.
func RunPrepared(p *Prepared, opt Options, ctl RunControl) (*Result, error) {
	if ctl.Ctx != nil {
		if err := ctl.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: run not started: %w", err)
		}
	}
	var prof Profile

	start := time.Now()
	cfg, plan, err := p.planFor(opt)
	if err != nil {
		return nil, err
	}
	if cfg.mode == modeSequential {
		return runSequential(p, cfg, plan, ctl)
	}
	prep, totalB := p.prep, plan.TotalB

	nprocs := ctl.NProcs
	if nprocs < 1 {
		nprocs = runtime.GOMAXPROCS(0)
	}

	counts := maxt.NewCounts(prep.Rows())
	first := int64(0)
	if ctl.Resume != nil {
		r := ctl.Resume
		if err := plan.checkResume(r, prep.Rows()); err != nil {
			return nil, err
		}
		// A full-run checkpoint is a pure prefix: counts cover [0, Next).
		if r.Next != r.Done {
			return nil, ckptMismatch("progress", fmt.Sprintf("counts for %d of %d permutations (a shard partial)", r.Done, r.Next), "a pure prefix (Next == Done)")
		}
		if r.BEff != nil {
			return nil, ckptMismatch("mode", "sequential freeze state", "an exact-mode checkpoint")
		}
		copy(counts.Raw, r.Raw)
		copy(counts.Adj, r.Adj)
		counts.B = r.Done
		first = r.Next
	}

	// One generator covering every remaining permutation; the window
	// ranks index into their sub-chunks of it.
	gen, err := p.generatorFor(cfg, plan, first, totalB)
	if err != nil {
		return nil, err
	}
	prof.CreateData = time.Since(start)

	kernelStart := time.Now()
	if _, err := processRange(p, cfg, plan, gen, counts, first, totalB, ctl); err != nil {
		return nil, err
	}
	prof.MainKernel = time.Since(kernelStart)

	start = time.Now()
	if counts.B != totalB {
		return nil, fmt.Errorf("core: accumulated permutation count %d, want %d", counts.B, totalB)
	}
	final := maxt.Finalize(prep, counts)
	prof.ComputePValues = time.Since(start)

	return &Result{
		Stat:      final.Stat,
		RawP:      final.RawP,
		AdjP:      final.AdjP,
		Order:     final.Order,
		B:         final.B,
		Complete:  plan.Complete,
		NProcs:    nprocs,
		Profile:   prof,
		KernelMax: prof.MainKernel,
	}, nil
}
