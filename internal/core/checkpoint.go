package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"sprint/internal/matrix"
	"sprint/internal/rng"
)

// This file implements the paper's future-work item 1: "Better support for
// fault tolerance and checkpointing ... this may be of increasing
// importance as life scientists wish to perform even more tests on ever
// larger datasets."
//
// The permutation loop is embarrassingly restartable: the entire mutable
// state is the pair of exceedance-count vectors plus the index of the next
// permutation.  A Checkpoint captures exactly that, together with a
// fingerprint of the inputs so that a checkpoint cannot silently resume a
// different analysis.

// Checkpoint is a resumable snapshot of a permutation run.
type Checkpoint struct {
	// Fingerprint ties the checkpoint to (options, labels, data shape,
	// data sample); resuming with a different analysis fails loudly.
	Fingerprint uint64
	// TotalB is the planned permutation count and Complete records the
	// generator choice.
	TotalB   int64
	Complete bool
	// Next is the first unprocessed permutation index.
	Next int64
	// Raw, Adj and Done are the accumulated exceedance counts and the
	// number of permutations they cover.
	Raw, Adj []int64
	Done     int64
}

// Encode serialises the checkpoint.
func (c *Checkpoint) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(c)
}

// DecodeCheckpoint reads a checkpoint written by Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	return &c, nil
}

// engineVersion tags the statistics engine whose counts a checkpoint
// accumulates.  Version 2 was the flat-matrix batched-kernel engine;
// version 3 the permutation-batched engine whose two-sample and paired-t
// tails evaluate on scaled central moments; version 4 is the
// delta-evaluation engine, whose complete two-sample enumerations run in
// revolving-door order by default.  Version 4's statistic bit patterns
// are IDENTICAL to version 3's (the integer rank path and the hoisted
// Wilcoxon tail are exact-by-construction rewrites), but the enumeration
// ORDER of complete two-sample runs changed, and a checkpoint's counts
// are a prefix over one specific order — resuming a v3 prefix under the
// v4 order would process the wrong remainder, so old checkpoints must
// fail loudly with ErrCheckpointMismatch.  BatchSize and the kernel ISA
// are deliberately NOT part of the fingerprint: both are bitwise neutral
// AND order-neutral, so checkpoints are interchangeable across them.
// The resolved enumeration order (doorOrder) IS part of it, for the same
// prefix-semantics reason the version bump exists.
const engineVersion = 4

// fingerprint summarises the analysis identity: the engine version,
// validated options, the resolved enumeration order, the class labels
// and a sample of the data.  Any change that could alter the permutation
// stream — its membership or its order — or the statistics changes the
// fingerprint.
func fingerprint(cfg config, x matrix.Matrix, classlabel []int, doorOrder bool) uint64 {
	h := rng.Mix64(uint64(engineVersion)<<44 ^ uint64(boolToInt64(doorOrder))<<40 ^ uint64(cfg.test)<<32 ^ uint64(cfg.side)<<24 ^ uint64(boolToInt64(cfg.fixedSeed))<<16 ^ uint64(boolToInt64(cfg.nonpara)))
	h = rng.Mix64(h ^ uint64(cfg.b) ^ cfg.seed<<1)
	h = rng.Mix64(h ^ uint64(x.Rows)<<32 ^ uint64(x.Cols))
	for _, l := range classlabel {
		h = rng.Mix64(h ^ uint64(l+1))
	}
	// Sample up to 64 cells spread across the matrix (the same cells the
	// [][]float64-era code sampled; only the engine-version tag above
	// separates the two eras' fingerprints).
	rows, cols := x.Rows, x.Cols
	for i := 0; i < 64; i++ {
		r := (i * 2654435761) % rows
		c := (i * 40503) % cols
		v := x.At(r, c)
		if math.IsNaN(v) {
			h = rng.Mix64(h ^ 0x7ff8dead)
		} else {
			h = rng.Mix64(h ^ math.Float64bits(v))
		}
	}
	return h
}

// ErrCheckpointMismatch reports a checkpoint that does not belong to the
// requested analysis.
var ErrCheckpointMismatch = fmt.Errorf("core: checkpoint does not match this analysis (options, labels or data changed)")

// MaxTCheckpointed runs the serial permutation loop with periodic
// checkpoints.  Every `every` permutations (and once at the end) it calls
// save with a snapshot; if save returns an error the run stops and returns
// that error, leaving the caller free to retry later from the last saved
// state.  Pass resume = nil for a fresh run, or a previously saved
// checkpoint to continue one.  The final result is bit-identical to an
// uninterrupted MaxT with the same options.
//
// It is the serial special case of Run, kept as the stable historical
// entry point.
func MaxTCheckpointed(x [][]float64, classlabel []int, opt Options, resume *Checkpoint, every int64, save func(*Checkpoint) error) (*Result, error) {
	if every <= 0 {
		return nil, fmt.Errorf("core: checkpoint interval %d must be positive", every)
	}
	return Run(x, classlabel, opt, RunControl{Resume: resume, Every: every, Save: save})
}
