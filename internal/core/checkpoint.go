package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"sprint/internal/matrix"
	"sprint/internal/rng"
)

// This file implements the paper's future-work item 1: "Better support for
// fault tolerance and checkpointing ... this may be of increasing
// importance as life scientists wish to perform even more tests on ever
// larger datasets."
//
// The permutation loop is embarrassingly restartable: the entire mutable
// state is the pair of exceedance-count vectors plus the index of the next
// permutation.  A Checkpoint captures exactly that, together with a
// fingerprint of the inputs so that a checkpoint cannot silently resume a
// different analysis.

// Checkpoint is a resumable snapshot of a permutation run.
type Checkpoint struct {
	// Fingerprint ties the checkpoint to (options, labels, data shape,
	// data sample); resuming with a different analysis fails loudly.
	Fingerprint uint64
	// TotalB is the planned permutation count and Complete records the
	// generator choice.
	TotalB   int64
	Complete bool
	// Next is the first unprocessed permutation index.
	Next int64
	// Raw, Adj and Done are the accumulated exceedance counts and the
	// number of permutations they cover.
	Raw, Adj []int64
	Done     int64
	// BEff is the sequential-mode freeze state: per matrix row, the
	// permutation count at which the row's counts were frozen (0 = still
	// accumulating).  Nil on exact-mode checkpoints.  A frozen row's Raw
	// and Adj entries cover [0, BEff[i]) rather than [0, Done).
	BEff []int64
}

// Encode serialises the checkpoint.
func (c *Checkpoint) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(c)
}

// DecodeCheckpoint reads a checkpoint written by Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	return &c, nil
}

// ---- integrity-framed serialisation (crash-safe disk mirrors) ----------

// Framed checkpoint layout: an 8-byte magic, the little-endian body
// length, the CRC64 (ECMA) of the body, then the gob body.  The frame
// turns any torn write, short read or flipped bit into a loud
// ErrCheckpointCorrupt instead of silently resuming from damaged counts.
var (
	ckptMagic    = [8]byte{'S', 'P', 'C', 'K', 'P', 'T', '0', '1'}
	ckptCRCTable = crc64.MakeTable(crc64.ECMA)
)

// ErrCheckpointCorrupt reports a checkpoint whose integrity frame fails
// to verify: a torn write, truncation or bit flip.  Callers quarantine
// the file and fall back to an older prefix or a fresh run.
var ErrCheckpointCorrupt = fmt.Errorf("core: checkpoint corrupt (bad frame or CRC)")

// EncodeFramed serialises the checkpoint inside a CRC64 integrity
// frame and returns the bytes, ready for an atomic file write.
func (c *Checkpoint) EncodeFramed() ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(c); err != nil {
		return nil, err
	}
	out := make([]byte, 0, 24+body.Len())
	out = append(out, ckptMagic[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(body.Len()))
	out = binary.LittleEndian.AppendUint64(out, crc64.Checksum(body.Bytes(), ckptCRCTable))
	return append(out, body.Bytes()...), nil
}

// DecodeCheckpointBytes reads a checkpoint from data, verifying the
// integrity frame when present.  Bytes written before the frame existed
// (a bare gob stream) still decode — the legacy path has no CRC, but a
// truncated gob fails its own internal checks and is reported as
// corrupt too.
func DecodeCheckpointBytes(data []byte) (*Checkpoint, error) {
	if len(data) < 24 || !bytes.Equal(data[:8], ckptMagic[:]) {
		// Legacy unframed gob: decode errors mean damage we cannot
		// distinguish from truncation — treat as corrupt.
		ck, err := DecodeCheckpoint(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
		}
		return ck, nil
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	sum := binary.LittleEndian.Uint64(data[16:24])
	body := data[24:]
	if uint64(len(body)) != n {
		return nil, fmt.Errorf("%w: frame claims %d body bytes, file holds %d", ErrCheckpointCorrupt, n, len(body))
	}
	if crc64.Checksum(body, ckptCRCTable) != sum {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCheckpointCorrupt)
	}
	ck, err := DecodeCheckpoint(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	return ck, nil
}

// engineVersion tags the statistics engine whose counts a checkpoint
// accumulates.  Version 2 was the flat-matrix batched-kernel engine;
// version 3 the permutation-batched engine whose two-sample and paired-t
// tails evaluate on scaled central moments; version 4 the
// delta-evaluation engine, whose complete two-sample enumerations run in
// revolving-door order by default.  Version 5 is the sequential-capable
// engine: exact-mode statistic bit patterns and enumeration orders are
// IDENTICAL to version 4's, but checkpoints gained the BEff freeze-state
// vector and the fingerprint gained the run mode, so a v4 checkpoint —
// which cannot carry freeze state — must fail loudly with
// ErrCheckpointMismatch rather than resume under rules it never ran.
// BatchSize and the kernel ISA are deliberately NOT part of the
// fingerprint: both are bitwise neutral AND order-neutral, so
// checkpoints are interchangeable across them.  The resolved enumeration
// order (doorOrder) IS part of it: a checkpoint's counts are a prefix
// over one specific order, so resuming under a different order would
// process the wrong remainder.
const engineVersion = 5

// fingerprint summarises the analysis identity: the engine version,
// validated options, the resolved enumeration order, the class labels
// and a sample of the data.  Any change that could alter the permutation
// stream — its membership or its order — or the statistics changes the
// fingerprint.  Sequential mode additionally mixes in its stopping
// parameters: a sequential checkpoint's frozen rows embody stopping
// decisions taken under one specific (alpha, tolerance), so resuming
// under different parameters would freeze the wrong rows.
func fingerprint(cfg config, x matrix.Matrix, classlabel []int, doorOrder bool) uint64 {
	h := rng.Mix64(uint64(engineVersion)<<44 ^ uint64(boolToInt64(doorOrder))<<40 ^ uint64(cfg.test)<<32 ^ uint64(cfg.side)<<24 ^ uint64(boolToInt64(cfg.fixedSeed))<<16 ^ uint64(boolToInt64(cfg.nonpara)))
	h = rng.Mix64(h ^ uint64(cfg.b) ^ cfg.seed<<1)
	if cfg.mode == modeSequential {
		h = rng.Mix64(h ^ 0x5e9)
		h = rng.Mix64(h ^ math.Float64bits(cfg.seqAlpha))
		h = rng.Mix64(h ^ math.Float64bits(cfg.seqTol))
	}
	h = rng.Mix64(h ^ uint64(x.Rows)<<32 ^ uint64(x.Cols))
	for _, l := range classlabel {
		h = rng.Mix64(h ^ uint64(l+1))
	}
	// Sample up to 64 cells spread across the matrix (the same cells the
	// [][]float64-era code sampled; only the engine-version tag above
	// separates the two eras' fingerprints).
	rows, cols := x.Rows, x.Cols
	for i := 0; i < 64; i++ {
		r := (i * 2654435761) % rows
		c := (i * 40503) % cols
		v := x.At(r, c)
		if math.IsNaN(v) {
			h = rng.Mix64(h ^ 0x7ff8dead)
		} else {
			h = rng.Mix64(h ^ math.Float64bits(v))
		}
	}
	return h
}

// ErrCheckpointMismatch reports a checkpoint that does not belong to the
// requested analysis.
var ErrCheckpointMismatch = fmt.Errorf("core: checkpoint does not match this analysis (options, labels or data changed)")

// ckptMismatch wraps ErrCheckpointMismatch naming the field that drifted,
// so a cluster or resume mismatch reports WHAT disagreed instead of only
// that something did.  errors.Is(err, ErrCheckpointMismatch) still holds.
func ckptMismatch(field string, got, want any) error {
	return fmt.Errorf("%w: %s drifted (checkpoint has %v, analysis wants %v)", ErrCheckpointMismatch, field, got, want)
}

// MaxTCheckpointed runs the serial permutation loop with periodic
// checkpoints.  Every `every` permutations (and once at the end) it calls
// save with a snapshot; if save returns an error the run stops and returns
// that error, leaving the caller free to retry later from the last saved
// state.  Pass resume = nil for a fresh run, or a previously saved
// checkpoint to continue one.  The final result is bit-identical to an
// uninterrupted MaxT with the same options.
//
// It is the serial special case of Run, kept as the stable historical
// entry point.
func MaxTCheckpointed(x [][]float64, classlabel []int, opt Options, resume *Checkpoint, every int64, save func(*Checkpoint) error) (*Result, error) {
	if every <= 0 {
		return nil, fmt.Errorf("core: checkpoint interval %d must be positive", every)
	}
	return Run(x, classlabel, opt, RunControl{Resume: resume, Every: every, Save: save})
}
