// Package core implements pmaxT, the SPRINT parallel permutation testing
// function, and MaxT, its serial mt.maxT-equivalent baseline.  The parallel
// path follows the six execution steps of Section 3.2 of the paper and
// reports the five timed sections of Tables I–V (pre-processing, broadcast
// parameters, create data, main kernel, compute p-values).
package core

import (
	"fmt"
	"math"

	"sprint/internal/matrix"
	"sprint/internal/maxt"
	"sprint/internal/perm"
	"sprint/internal/seqstop"
	"sprint/internal/stat"
)

// DefaultNA is the missing-value code of the multtest package (R's
// .mt.naNUM).  Input cells equal to the configured NA code — or NaN — are
// treated as missing and excluded from the computations.
const DefaultNA = -93074815.62

// DefaultMaxComplete caps the size of a complete enumeration requested with
// B = 0.  When the exact count exceeds the cap, the run fails with an error
// asking for an explicit smaller B, matching mt.maxT's behaviour ("the user
// is asked to explicitly request a smaller number of permutations").
const DefaultMaxComplete = 1 << 22

// DefaultBatchSize is the permutation batch the main kernel evaluates per
// matrix pass when Options.BatchSize is 0 (auto).  Batching is bitwise
// neutral — any batch size produces exactly the scalar path's statistics,
// counts, cache keys and checkpoints — so the default is purely a
// performance choice: large enough to amortise each row load over many
// permutations, small enough that the per-batch label and output buffers
// stay cache-resident.
const DefaultBatchSize = 64

// Options mirrors the R signature
//
//	pmaxT(X, classlabel, test="t", side="abs", fixed.seed.sampling="y",
//	      B=10000, na=.mt.naNUM, nonpara="n")
//
// String-typed fields take the same values as their R counterparts so that
// existing mt.maxT call sites translate one-to-one.  Zero values select the
// documented defaults.
type Options struct {
	// Test selects the statistic: "t" (Welch, default), "t.equalvar",
	// "wilcoxon", "f", "pairt" or "blockf".
	Test string
	// Side selects the rejection region: "abs" (default), "upper" or
	// "lower".
	Side string
	// FixedSeedSampling chooses between the on-the-fly generator ("y",
	// default) and storing the permutations in memory ("n").  Complete
	// enumerations always run on the fly, as in the original code.
	FixedSeedSampling string
	// B is the permutation count, including the observed labelling.
	// B = 0 requests the complete enumeration.  Defaults to 10000 when
	// left at -1; an explicit 0 means complete.
	B int64
	// NA is the missing-value code.  Cells equal to NA (or NaN) are
	// excluded.  Defaults to DefaultNA.
	NA float64
	// Nonpara enables rank-based nonparametric statistics: "n" (default)
	// or "y".
	Nonpara string
	// Seed initialises the permutation RNG.  Runs with equal seeds and
	// equal B produce identical results at any process count.
	Seed uint64
	// MaxComplete overrides DefaultMaxComplete when positive.
	MaxComplete int64
	// ScalarParams, when true, broadcasts the string options as
	// pre-encoded scalar codes instead of length-prefixed strings — the
	// paper's future-work item 3.  Results are identical; only the
	// "Broadcast parameters" section changes.
	ScalarParams bool
	// BatchSize is the number of permutations the main kernel evaluates
	// per pass over the matrix: 0 selects DefaultBatchSize, 1 forces the
	// scalar path, larger values trade scratch memory for fewer matrix
	// sweeps.  The batched path is bitwise identical to the scalar path,
	// so BatchSize never changes results — it is excluded from job cache
	// keys and checkpoint fingerprints.
	BatchSize int
	// Mode selects the permutation engine: "exact" (the default) runs
	// every planned permutation and is bitwise-unchanged from earlier
	// engines; "sequential" stops rows — and whole jobs — early, as soon
	// as a Besag–Clifford rule plus an anytime-valid confidence sequence
	// pin their p-values within SeqTolerance (see internal/seqstop).
	// Sequential results report a per-row effective permutation count and
	// are NOT bitwise reproductions of the exact result; they are the
	// same estimator over a row-specific prefix of the same permutation
	// sequence.  Sequential mode requires sampled permutations: complete
	// enumerations (B = 0, or a complete count at most B) are exact by
	// definition and are rejected.
	Mode string
	// SeqAlpha is sequential mode's significance threshold of interest
	// (the API's target_alpha): rows certified below it may stop before
	// accumulating the Besag–Clifford exceedance count.  0 selects the
	// default (0.05).  Ignored — and canonicalised away — in exact mode.
	SeqAlpha float64
	// SeqTolerance is sequential mode's absolute p-value error budget
	// (the API's p_tolerance): every reported p-value is within this of
	// its exact value with high probability, simultaneously across rows.
	// 0 selects the default (0.02).  Ignored in exact mode.
	SeqTolerance float64
	// PermOrder selects the enumeration order of complete permutation
	// runs: "auto" (default) uses the revolving-door Gray order on
	// two-sample designs — enabling the O(1) delta kernel on rank data —
	// and the combinadic order otherwise; "lex" forces the combinadic
	// order everywhere; "door" demands the revolving-door order and fails
	// on designs that do not admit it.  Every order enumerates the same
	// labelling set, so results and job cache keys are identical — like
	// BatchSize, PermOrder is excluded from cache keys.  It IS part of
	// the checkpoint fingerprint: a checkpoint's counts are a prefix over
	// one specific enumeration order, so resuming under a different order
	// would process the wrong remainder.
	PermOrder string
}

// DefaultOptions returns the documented mt.maxT defaults.
func DefaultOptions() Options {
	return Options{
		Test:              "t",
		Side:              "abs",
		FixedSeedSampling: "y",
		B:                 10000,
		NA:                DefaultNA,
		Nonpara:           "n",
	}
}

// ModeExact and ModeSequential are the canonical Options.Mode values.
const (
	ModeExact      = "exact"
	ModeSequential = "sequential"
)

// runMode is the validated engine-mode knob.
type runMode int

const (
	// modeExact runs every planned permutation (the historical engine).
	modeExact runMode = iota
	// modeSequential early-stops rows and jobs under the seqstop rules.
	modeSequential
)

var modeNames = map[runMode]string{
	modeExact:      ModeExact,
	modeSequential: ModeSequential,
}

func (m runMode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("runMode(%d)", int(m))
}

func parseRunMode(s string) (runMode, error) {
	if s == "" {
		return modeExact, nil
	}
	for m, name := range modeNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mode %q (want exact or sequential)", s)
}

// permOrder is the validated enumeration-order knob.
type permOrder int

const (
	// orderAuto picks the revolving-door order where it applies.
	orderAuto permOrder = iota
	// orderLex forces the combinadic (lexicographic-rank) order.
	orderLex
	// orderDoor demands the revolving-door order.
	orderDoor
)

var orderNames = map[permOrder]string{
	orderAuto: "auto",
	orderLex:  "lex",
	orderDoor: "door",
}

func (o permOrder) String() string {
	if s, ok := orderNames[o]; ok {
		return s
	}
	return fmt.Sprintf("permOrder(%d)", int(o))
}

func parsePermOrder(s string) (permOrder, error) {
	if s == "" {
		return orderAuto, nil
	}
	for o, name := range orderNames {
		if name == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("core: unknown perm order %q (want auto, lex or door)", s)
}

// config is the validated, enum-typed form of Options.
type config struct {
	test         stat.Test
	side         maxt.Side
	fixedSeed    bool
	b            int64
	na           float64
	nonpara      bool
	seed         uint64
	maxComplete  int64
	scalarParams bool
	batch        int
	order        permOrder
	mode         runMode
	seqAlpha     float64
	seqTol       float64
}

// effectiveBatch resolves the BatchSize knob: 0 means auto.
func (cfg config) effectiveBatch() int {
	if cfg.batch > 0 {
		return cfg.batch
	}
	return DefaultBatchSize
}

// completeGen builds the complete-enumeration generator under the order
// knob: the revolving-door Gray order when it applies (enabling the delta
// kernel), the combinadic order otherwise.  An explicit "door" on a design
// that cannot run it is an error rather than a silent fallback.
func (cfg config) completeGen(d *stat.Design) (perm.Generator, error) {
	if cfg.doorOrder(d) {
		return perm.NewRevolvingDoor(d)
	}
	if cfg.order == orderDoor {
		return nil, fmt.Errorf("core: perm order \"door\" requires a two-sample design (test %v does not admit a revolving-door enumeration)", d.Test)
	}
	return perm.NewComplete(d)
}

// doorOrder reports whether a complete enumeration for this design runs
// in revolving-door order — the resolved form of the PermOrder knob that
// the checkpoint fingerprint records.
func (cfg config) doorOrder(d *stat.Design) bool {
	return cfg.order != orderLex && perm.RevolvingDoorOK(d)
}

// parseOptions validates opt and fills defaults, mirroring the parameter
// checking of the pre-processing step (Step 1).
func parseOptions(opt Options) (config, error) {
	var cfg config
	if opt.Test == "" {
		opt.Test = "t"
	}
	if opt.Side == "" {
		opt.Side = "abs"
	}
	if opt.FixedSeedSampling == "" {
		opt.FixedSeedSampling = "y"
	}
	if opt.Nonpara == "" {
		opt.Nonpara = "n"
	}
	if opt.NA == 0 {
		opt.NA = DefaultNA
	}
	if opt.MaxComplete == 0 {
		opt.MaxComplete = DefaultMaxComplete
	}
	var err error
	if cfg.test, err = stat.ParseTest(opt.Test); err != nil {
		return cfg, err
	}
	if cfg.side, err = maxt.ParseSide(opt.Side); err != nil {
		return cfg, err
	}
	switch opt.FixedSeedSampling {
	case "y":
		cfg.fixedSeed = true
	case "n":
		cfg.fixedSeed = false
	default:
		return cfg, fmt.Errorf("core: fixed.seed.sampling must be \"y\" or \"n\", got %q", opt.FixedSeedSampling)
	}
	switch opt.Nonpara {
	case "y":
		cfg.nonpara = true
	case "n":
		cfg.nonpara = false
	default:
		return cfg, fmt.Errorf("core: nonpara must be \"y\" or \"n\", got %q", opt.Nonpara)
	}
	if opt.B < 0 {
		return cfg, fmt.Errorf("core: B = %d must be >= 0 (0 requests complete permutations)", opt.B)
	}
	if opt.MaxComplete < 0 {
		return cfg, fmt.Errorf("core: MaxComplete must be positive")
	}
	if opt.BatchSize < 0 {
		return cfg, fmt.Errorf("core: BatchSize = %d must be >= 0 (0 selects the default)", opt.BatchSize)
	}
	if cfg.order, err = parsePermOrder(opt.PermOrder); err != nil {
		return cfg, err
	}
	if cfg.mode, err = parseRunMode(opt.Mode); err != nil {
		return cfg, err
	}
	if cfg.mode == modeSequential {
		if cfg.order == orderDoor {
			return cfg, fmt.Errorf("core: mode \"sequential\" cannot run under perm order \"door\": a complete enumeration is exact by definition, so early stopping would only destroy that exactness")
		}
		if opt.B == 0 {
			// Catch the explicit request here so services reject it at
			// submission; the auto case (a complete count at most B) is
			// only decidable once the design is known and fails in planFor.
			return cfg, fmt.Errorf("core: mode \"sequential\" requires sampled permutations (B > 0); B = 0 requests the complete enumeration, which is exact by definition")
		}
		sc, err := seqstop.New(opt.SeqAlpha, opt.SeqTolerance, 1)
		if err != nil {
			return cfg, fmt.Errorf("core: %w", err)
		}
		cfg.seqAlpha, cfg.seqTol = sc.Alpha, sc.Tolerance
	}
	cfg.b = opt.B
	cfg.na = opt.NA
	cfg.seed = opt.Seed
	cfg.maxComplete = opt.MaxComplete
	cfg.scalarParams = opt.ScalarParams
	cfg.batch = opt.BatchSize
	return cfg, nil
}

// planPermutations decides between complete enumeration and random
// sampling, following mt.maxT: B = 0 demands the complete enumeration (and
// fails loudly if it exceeds the limit); B > 0 uses random sampling unless
// the complete enumeration is smaller, in which case exact enumeration is
// both cheaper and statistically stronger.
func planPermutations(cfg config, d *stat.Design) (useComplete bool, total int64, err error) {
	count, fits := perm.CompleteCount(d)
	if cfg.b == 0 {
		if !fits || count > cfg.maxComplete {
			countStr := "more than 2^63"
			if fits {
				countStr = fmt.Sprintf("%d", count)
			}
			return false, 0, fmt.Errorf(
				"core: complete permutations (%s) exceed the maximum allowed limit (%d); please request a smaller number of permutations explicitly via B",
				countStr, cfg.maxComplete)
		}
		return true, count, nil
	}
	if fits && count <= cfg.b {
		return true, count, nil
	}
	return false, cfg.b, nil
}

// SetKernel selects the two-sample accumulation kernel by name — "auto"
// (the best the CPU supports), "generic", "sse2" or "avx2" — returning the
// name now active.  The choice is process-wide, meant for startup (CLI
// flags); it never changes results, only wall time, because every kernel
// performs the identical per-(row, permutation) IEEE-754 chains.
func SetKernel(name string) (string, error) {
	isa, err := stat.SetKernelISA(name)
	return isa.String(), err
}

// KernelName reports the active accumulation kernel ("avx2", "sse2" or
// "generic").
func KernelName() string { return stat.ActiveKernelISA().String() }

// PermOrderPolicy describes the default (PermOrder = "auto") enumeration
// order, surfaced by the pmaxtd /stats endpoint.
const PermOrderPolicy = "auto: revolving-door (delta kernel) for complete two-sample enumerations, combinadic otherwise"

// scrubNA returns m with the NA code replaced by NaN.  A pure scan runs
// first: when no cell matches the NA code the input is returned
// unchanged — no copy at all.  NaN cells are already in their scrubbed
// form (NaN never equals the code), so only code-bearing matrices pay
// the single flat copy.  The scrub happens once on the master (part of
// pre-processing); workers receive the cleaned matrix.
func scrubNA(m matrix.Matrix, na float64) matrix.Matrix {
	dirty := false
	for _, v := range m.Data {
		if v == na {
			dirty = true
			break
		}
	}
	if !dirty {
		return m
	}
	out := matrix.Matrix{Data: make([]float64, len(m.Data)), Rows: m.Rows, Cols: m.Cols}
	for i, v := range m.Data {
		if v == na {
			out.Data[i] = math.NaN()
		} else {
			out.Data[i] = v
		}
	}
	return out
}

// rowsInput adapts the legacy [][]float64 surface to the flat engine,
// preserving the historical empty-matrix error.
func rowsInput(x [][]float64) (matrix.Matrix, error) {
	if len(x) == 0 {
		return matrix.Matrix{}, fmt.Errorf("core: empty input matrix")
	}
	return matrix.FromRows(x)
}
