package core

import (
	"math"
	"testing"

	"sprint/internal/matrix"
)

// TestScrubNASkipsCopyWhenClean: the scan-first fast path must return the
// input matrix itself — same backing array, zero allocation — when no
// cell carries the NA code or a NaN.
func TestScrubNASkipsCopyWhenClean(t *testing.T) {
	m, err := matrix.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	out := scrubNA(m, DefaultNA)
	if &out.Data[0] != &m.Data[0] {
		t.Error("clean matrix was copied")
	}
	// NaN cells are already scrubbed, so they alone must not force a copy.
	m.Data[1] = math.NaN()
	out = scrubNA(m, DefaultNA)
	if &out.Data[0] != &m.Data[0] {
		t.Error("NaN-bearing, code-free matrix was copied")
	}
}

func TestScrubNAReplacesCode(t *testing.T) {
	m, err := matrix.FromRows([][]float64{{1, DefaultNA, 3}, {4, 5, math.NaN()}})
	if err != nil {
		t.Fatal(err)
	}
	out := scrubNA(m, DefaultNA)
	if &out.Data[0] == &m.Data[0] {
		t.Error("dirty matrix was not copied")
	}
	if m.At(0, 1) != DefaultNA {
		t.Error("scrubNA modified its input")
	}
	if !math.IsNaN(out.At(0, 1)) {
		t.Errorf("NA code not replaced: %v", out.At(0, 1))
	}
	if !math.IsNaN(out.At(1, 2)) {
		t.Error("NaN cell not preserved")
	}
	if out.At(0, 0) != 1 || out.At(1, 1) != 5 {
		t.Error("clean cells changed")
	}
}

// TestMatrixEntryPointsBitIdentical: the flat MaxTMatrix / PMaxTMatrix /
// RunMatrix entry points must reproduce the row-based facade bit for bit,
// and must not modify the caller's matrix.
func TestMatrixEntryPointsBitIdentical(t *testing.T) {
	x := synthMatrix(15, 12, 4, 17)
	lab := twoClass(6, 6)
	m, err := matrix.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]float64(nil), m.Data...)
	opt := Options{B: 200, Seed: 11}

	rows, err := MaxT(x, lab, opt)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := MaxTMatrix(m, lab, opt)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "maxt-matrix", rows, flat)

	pflat, err := PMaxTMatrix(m, lab, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "pmaxt-matrix", rows, pflat)

	rflat, err := RunMatrix(m, lab, opt, RunControl{NProcs: 2, Every: 50})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "run-matrix", rows, rflat)

	for i, v := range m.Data {
		if math.Float64bits(v) != math.Float64bits(orig[i]) {
			t.Fatalf("matrix entry point modified the caller's data at %d", i)
		}
	}
}
