package core

import (
	"math"
	"testing"
)

// Edge-case coverage: minimum designs, degenerate data, extreme process
// counts, and boundary permutation counts.

func TestSingleGeneMatrix(t *testing.T) {
	x := [][]float64{{1.3, 2.7, 1.9, 6.1, 7.3, 6.8}}
	lab := twoClass(3, 3)
	serial, err := MaxT(x, lab, Options{B: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := PMaxT(x, lab, 4, Options{B: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "single-gene", serial, par)
	// With one gene, raw and adjusted p-values coincide (the successive
	// maximum of one statistic is the statistic).
	if serial.RawP[0] != serial.AdjP[0] {
		t.Errorf("single gene: rawp %v != adjp %v", serial.RawP[0], serial.AdjP[0])
	}
}

func TestMinimumDesignFourColumns(t *testing.T) {
	// Smallest valid two-sample design: 2 vs 2 columns, C(4,2) = 6.
	x := synthMatrix(8, 4, 2, 3)
	res, err := MaxT(x, twoClass(2, 2), Options{B: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.B != 6 {
		t.Errorf("Complete=%v B=%d, want complete 6", res.Complete, res.B)
	}
	for i, p := range res.RawP {
		if p < 1.0/6-1e-12 || p > 1 {
			t.Errorf("row %d: p = %v out of range", i, p)
		}
	}
}

func TestBOfOne(t *testing.T) {
	// B = 1 means only the observed labelling: every p-value is 1.
	x := synthMatrix(5, 12, 1, 4)
	res, err := MaxT(x, twoClass(6, 6), Options{B: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.RawP {
		if res.RawP[i] != 1 || res.AdjP[i] != 1 {
			t.Errorf("row %d: (%v, %v), want (1, 1)", i, res.RawP[i], res.AdjP[i])
		}
	}
}

func TestMoreProcsThanPermutations(t *testing.T) {
	// 16 ranks for 10 permutations: some ranks get empty chunks; results
	// must still match the serial run exactly.
	x := synthMatrix(10, 12, 2, 9)
	lab := twoClass(6, 6)
	serial, err := MaxT(x, lab, Options{B: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, fss := range []string{"y", "n"} {
		opt := Options{B: 10, Seed: 2, FixedSeedSampling: fss}
		s2, err := MaxT(x, lab, opt)
		if err != nil {
			t.Fatal(err)
		}
		par, err := PMaxT(x, lab, 16, opt)
		if err != nil {
			t.Fatalf("fss=%s: %v", fss, err)
		}
		if fss == "y" {
			resultsEqual(t, "tiny-B-many-procs", serial, par)
		}
		resultsEqual(t, "tiny-B-many-procs-"+fss, s2, par)
	}
}

func TestManyRanksStress(t *testing.T) {
	// 64 goroutine ranks — far oversubscribed, exercising the collective
	// trees at depth 6.
	x := synthMatrix(12, 12, 2, 11)
	lab := twoClass(6, 6)
	serial, err := MaxT(x, lab, Options{B: 256, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	par, err := PMaxT(x, lab, 64, Options{B: 256, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "64-ranks", serial, par)
}

func TestAllRowsDegenerate(t *testing.T) {
	// Constant rows: every statistic is NaN, every p-value NaN, and the
	// run must complete without dividing by zero anywhere.
	x := [][]float64{
		{5, 5, 5, 5, 5, 5},
		{2, 2, 2, 2, 2, 2},
	}
	res, err := PMaxT(x, twoClass(3, 3), 2, Options{B: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !math.IsNaN(res.RawP[i]) || !math.IsNaN(res.AdjP[i]) {
			t.Errorf("row %d: p-values (%v, %v), want NaN", i, res.RawP[i], res.AdjP[i])
		}
	}
}

func TestMostlyMissingColumnStillRuns(t *testing.T) {
	x := synthMatrix(10, 12, 2, 7)
	// Knock out one entire column: per-gene group sizes drop by one but
	// stay >= 2, so statistics remain defined.
	for i := range x {
		x[i][3] = math.NaN()
	}
	serial, err := MaxT(x, twoClass(6, 6), Options{B: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	par, err := PMaxT(x, twoClass(6, 6), 3, Options{B: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "missing-column", serial, par)
}

func TestTiesInObservedStatisticsDeterministicOrder(t *testing.T) {
	// Duplicate rows produce exactly tied observed statistics; the order
	// must break ties by row index, identically in serial and parallel.
	row := []float64{1.1, 2.2, 0.9, 5.1, 6.2, 5.4}
	x := [][]float64{row, append([]float64(nil), row...), append([]float64(nil), row...)}
	serial, err := MaxT(x, twoClass(3, 3), Options{B: 60, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range serial.Order {
		if r != i {
			t.Errorf("tied rows not in index order: %v", serial.Order)
			break
		}
	}
	par, err := PMaxT(x, twoClass(3, 3), 3, Options{B: 60, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "tied-rows", serial, par)
}

func TestWideMatrixManyColumns(t *testing.T) {
	// The paper's 76-column shape with both generators and a non-power-
	// of-two rank count.
	x := synthMatrix(20, 76, 2, 12)
	lab := twoClass(38, 38)
	for _, fss := range []string{"y", "n"} {
		opt := Options{B: 64, Seed: 4, FixedSeedSampling: fss}
		serial, err := MaxT(x, lab, opt)
		if err != nil {
			t.Fatal(err)
		}
		par, err := PMaxT(x, lab, 5, opt)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, "wide-"+fss, serial, par)
	}
}

func TestKernelMaxAtLeastMasterKernel(t *testing.T) {
	x := synthMatrix(30, 12, 3, 13)
	res, err := PMaxT(x, twoClass(6, 6), 6, Options{B: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelMax < res.Profile.MainKernel {
		t.Errorf("KernelMax %v < master kernel %v", res.KernelMax, res.Profile.MainKernel)
	}
}
