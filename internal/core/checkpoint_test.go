package core

import (
	"bytes"
	"errors"
	"testing"
)

func TestCheckpointedMatchesPlainRun(t *testing.T) {
	x := synthMatrix(25, 12, 3, 17)
	lab := twoClass(6, 6)
	for _, fss := range []string{"y", "n"} {
		// BatchSize 1 pins the scalar engine so the requested window length
		// is used verbatim (batched runs round it up; see run_test.go).
		opt := Options{B: 200, Seed: 3, FixedSeedSampling: fss, BatchSize: 1}
		plain, err := MaxT(x, lab, opt)
		if err != nil {
			t.Fatal(err)
		}
		var saves int
		ck, err := MaxTCheckpointed(x, lab, opt, nil, 37, func(c *Checkpoint) error {
			saves++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if saves != (200+36)/37 {
			t.Errorf("fss=%s: %d saves, want %d", fss, saves, (200+36)/37)
		}
		resultsEqual(t, "checkpointed-vs-plain/"+fss, plain, ck)
	}
}

func TestCheckpointResumeAfterInterruption(t *testing.T) {
	x := synthMatrix(20, 12, 2, 23)
	lab := twoClass(6, 6)
	for _, fss := range []string{"y", "n"} {
		opt := Options{B: 150, Seed: 9, FixedSeedSampling: fss, BatchSize: 1}
		plain, err := MaxT(x, lab, opt)
		if err != nil {
			t.Fatal(err)
		}

		// First run "crashes" after the second save: the save callback
		// persists the snapshot and then errors out.
		boom := errors.New("simulated node failure")
		var persisted *Checkpoint
		var calls int
		_, err = MaxTCheckpointed(x, lab, opt, nil, 40, func(c *Checkpoint) error {
			calls++
			persisted = c
			if calls == 2 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("fss=%s: interruption error = %v", fss, err)
		}
		if persisted == nil || persisted.Next != 80 {
			t.Fatalf("fss=%s: persisted checkpoint at %v, want Next=80", fss, persisted)
		}

		// Serialise and deserialise, as a real deployment would.
		var buf bytes.Buffer
		if err := persisted.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := DecodeCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}

		resumed, err := MaxTCheckpointed(x, lab, opt, restored, 40, nil)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, "resumed-vs-plain/"+fss, plain, resumed)
	}
}

func TestCheckpointMismatchRejected(t *testing.T) {
	x := synthMatrix(10, 12, 1, 5)
	lab := twoClass(6, 6)
	opt := Options{B: 100, Seed: 1}
	var saved *Checkpoint
	if _, err := MaxTCheckpointed(x, lab, opt, nil, 50, func(c *Checkpoint) error {
		saved = c
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Different seed -> different permutation stream -> must refuse.
	optSeed := opt
	optSeed.Seed = 2
	if _, err := MaxTCheckpointed(x, lab, optSeed, saved, 50, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("seed change accepted: %v", err)
	}
	// Different data -> must refuse.
	x2 := synthMatrix(10, 12, 1, 6)
	if _, err := MaxTCheckpointed(x2, lab, opt, saved, 50, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("data change accepted: %v", err)
	}
	// Different B -> must refuse.
	optB := opt
	optB.B = 400
	if _, err := MaxTCheckpointed(x, lab, optB, saved, 50, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("B change accepted: %v", err)
	}
}

func TestCheckpointValidation(t *testing.T) {
	x := synthMatrix(5, 12, 1, 5)
	lab := twoClass(6, 6)
	if _, err := MaxTCheckpointed(x, lab, Options{B: 10}, nil, 0, nil); err == nil {
		t.Error("interval 0 accepted")
	}
	if _, err := MaxTCheckpointed(nil, lab, Options{B: 10}, nil, 5, nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := MaxTCheckpointed(x, lab, Options{Test: "bogus"}, nil, 5, nil); err == nil {
		t.Error("bad options accepted")
	}
}

func TestDecodeCheckpointGarbage(t *testing.T) {
	if _, err := DecodeCheckpoint(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage checkpoint decoded")
	}
}

// TestFramedRoundtrip pins the integrity-frame encoding: EncodeFramed →
// DecodeCheckpointBytes is lossless, and every single-byte flip anywhere
// in the frame is reported as ErrCheckpointCorrupt — never decoded.
func TestFramedRoundtrip(t *testing.T) {
	ck := &Checkpoint{
		Fingerprint: 0xdeadbeefcafef00d,
		TotalB:      1000, Complete: true, Next: 400, Done: 400,
		Raw: []int64{1, 2, 3, 4}, Adj: []int64{4, 3, 2, 1},
	}
	data, err := ck.EncodeFramed()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpointBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != ck.Fingerprint || got.Next != ck.Next || got.Done != ck.Done ||
		len(got.Raw) != 4 || got.Raw[2] != 3 || got.Adj[0] != 4 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}

	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x01
		if _, err := DecodeCheckpointBytes(mut); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("flip@%d: err=%v, want ErrCheckpointCorrupt", off, err)
		}
	}
	// Every truncation is corrupt too (torn write at the final path).
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeCheckpointBytes(data[:cut]); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("cut@%d: err=%v, want ErrCheckpointCorrupt", cut, err)
		}
	}
}

// TestFramedLegacyFallback: bytes written before the frame existed (bare
// gob, no magic) must still decode, so an upgrade resumes old disk state.
func TestFramedLegacyFallback(t *testing.T) {
	ck := &Checkpoint{TotalB: 77, Next: 33, Raw: []int64{9}, Adj: []int64{8}}
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpointBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if got.TotalB != 77 || got.Next != 33 || got.Raw[0] != 9 {
		t.Fatalf("legacy roundtrip mismatch: %+v", got)
	}
	// A truncated legacy stream is corrupt, not a zero-value checkpoint.
	if _, err := DecodeCheckpointBytes(buf.Bytes()[:buf.Len()/2]); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("truncated legacy: err=%v, want ErrCheckpointCorrupt", err)
	}
}
