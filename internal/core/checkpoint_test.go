package core

import (
	"bytes"
	"errors"
	"testing"
)

func TestCheckpointedMatchesPlainRun(t *testing.T) {
	x := synthMatrix(25, 12, 3, 17)
	lab := twoClass(6, 6)
	for _, fss := range []string{"y", "n"} {
		// BatchSize 1 pins the scalar engine so the requested window length
		// is used verbatim (batched runs round it up; see run_test.go).
		opt := Options{B: 200, Seed: 3, FixedSeedSampling: fss, BatchSize: 1}
		plain, err := MaxT(x, lab, opt)
		if err != nil {
			t.Fatal(err)
		}
		var saves int
		ck, err := MaxTCheckpointed(x, lab, opt, nil, 37, func(c *Checkpoint) error {
			saves++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if saves != (200+36)/37 {
			t.Errorf("fss=%s: %d saves, want %d", fss, saves, (200+36)/37)
		}
		resultsEqual(t, "checkpointed-vs-plain/"+fss, plain, ck)
	}
}

func TestCheckpointResumeAfterInterruption(t *testing.T) {
	x := synthMatrix(20, 12, 2, 23)
	lab := twoClass(6, 6)
	for _, fss := range []string{"y", "n"} {
		opt := Options{B: 150, Seed: 9, FixedSeedSampling: fss, BatchSize: 1}
		plain, err := MaxT(x, lab, opt)
		if err != nil {
			t.Fatal(err)
		}

		// First run "crashes" after the second save: the save callback
		// persists the snapshot and then errors out.
		boom := errors.New("simulated node failure")
		var persisted *Checkpoint
		var calls int
		_, err = MaxTCheckpointed(x, lab, opt, nil, 40, func(c *Checkpoint) error {
			calls++
			persisted = c
			if calls == 2 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("fss=%s: interruption error = %v", fss, err)
		}
		if persisted == nil || persisted.Next != 80 {
			t.Fatalf("fss=%s: persisted checkpoint at %v, want Next=80", fss, persisted)
		}

		// Serialise and deserialise, as a real deployment would.
		var buf bytes.Buffer
		if err := persisted.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := DecodeCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}

		resumed, err := MaxTCheckpointed(x, lab, opt, restored, 40, nil)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, "resumed-vs-plain/"+fss, plain, resumed)
	}
}

func TestCheckpointMismatchRejected(t *testing.T) {
	x := synthMatrix(10, 12, 1, 5)
	lab := twoClass(6, 6)
	opt := Options{B: 100, Seed: 1}
	var saved *Checkpoint
	if _, err := MaxTCheckpointed(x, lab, opt, nil, 50, func(c *Checkpoint) error {
		saved = c
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Different seed -> different permutation stream -> must refuse.
	optSeed := opt
	optSeed.Seed = 2
	if _, err := MaxTCheckpointed(x, lab, optSeed, saved, 50, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("seed change accepted: %v", err)
	}
	// Different data -> must refuse.
	x2 := synthMatrix(10, 12, 1, 6)
	if _, err := MaxTCheckpointed(x2, lab, opt, saved, 50, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("data change accepted: %v", err)
	}
	// Different B -> must refuse.
	optB := opt
	optB.B = 400
	if _, err := MaxTCheckpointed(x, lab, optB, saved, 50, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("B change accepted: %v", err)
	}
}

func TestCheckpointValidation(t *testing.T) {
	x := synthMatrix(5, 12, 1, 5)
	lab := twoClass(6, 6)
	if _, err := MaxTCheckpointed(x, lab, Options{B: 10}, nil, 0, nil); err == nil {
		t.Error("interval 0 accepted")
	}
	if _, err := MaxTCheckpointed(nil, lab, Options{B: 10}, nil, 5, nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := MaxTCheckpointed(x, lab, Options{Test: "bogus"}, nil, 5, nil); err == nil {
		t.Error("bad options accepted")
	}
}

func TestDecodeCheckpointGarbage(t *testing.T) {
	if _, err := DecodeCheckpoint(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage checkpoint decoded")
	}
}
