package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"sprint/internal/microarray"
)

// runTestData builds a small two-class dataset with missing values, so the
// NaN paths are exercised too.
func runTestData(t *testing.T) (*microarray.Dataset, Options) {
	t.Helper()
	data, err := microarray.Generate(microarray.GenOptions{
		Genes: 60, Samples: 14, Classes: 2,
		DiffFraction: 0.1, EffectSize: 2.5, MissingRate: 0.02, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.B = 400
	opt.Seed = 17
	return data, opt
}

// sameResult compares two results bit for bit (NaN equals NaN).
func sameResult(t *testing.T, got, want *Result) {
	t.Helper()
	if got.B != want.B || got.Complete != want.Complete {
		t.Fatalf("B/Complete: got %d/%v, want %d/%v", got.B, got.Complete, want.B, want.Complete)
	}
	cmp := func(name string, g, w []float64) {
		if len(g) != len(w) {
			t.Fatalf("%s: length %d, want %d", name, len(g), len(w))
		}
		for i := range g {
			if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
				t.Fatalf("%s[%d]: got %v, want %v", name, i, g[i], w[i])
			}
		}
	}
	cmp("Stat", got.Stat, want.Stat)
	cmp("RawP", got.RawP, want.RawP)
	cmp("AdjP", got.AdjP, want.AdjP)
	for i := range want.Order {
		if got.Order[i] != want.Order[i] {
			t.Fatalf("Order[%d]: got %d, want %d", i, got.Order[i], want.Order[i])
		}
	}
}

func TestRunMatchesMaxT(t *testing.T) {
	data, opt := runTestData(t)
	want, err := MaxT(data.X, data.Labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, fss := range []string{"y", "n"} {
		opt := opt
		opt.FixedSeedSampling = fss
		want := want
		if fss == "n" {
			if want, err = MaxT(data.X, data.Labels, opt); err != nil {
				t.Fatal(err)
			}
		}
		for _, nprocs := range []int{1, 3, 4} {
			for _, every := range []int64{0, 1, 64, 1000} {
				got, err := Run(data.X, data.Labels, opt, RunControl{NProcs: nprocs, Every: every})
				if err != nil {
					t.Fatalf("fss=%s nprocs=%d every=%d: %v", fss, nprocs, every, err)
				}
				sameResult(t, got, want)
			}
		}
	}
}

func TestRunProgressAndCheckpoints(t *testing.T) {
	data, opt := runTestData(t)
	var progress []int64
	var snaps []*Checkpoint
	_, err := Run(data.X, data.Labels, opt, RunControl{
		NProcs: 2,
		Every:  100,
		Save:   func(c *Checkpoint) error { snaps = append(snaps, c); return nil },
		OnProgress: func(done, total int64) {
			if total != opt.B {
				t.Fatalf("total = %d, want %d", total, opt.B)
			}
			progress = append(progress, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every=100 is rounded up to the kernel batch multiple (the default
	// batch is 64, so windows end at 128, 256, 384 and the sequence end).
	wantDone := []int64{128, 256, 384, 400}
	if len(progress) != len(wantDone) {
		t.Fatalf("progress calls %v, want %v", progress, wantDone)
	}
	for i, d := range wantDone {
		if progress[i] != d || snaps[i].Done != d || snaps[i].Next != d {
			t.Fatalf("window %d: progress %d, snap done %d next %d, want %d",
				i, progress[i], snaps[i].Done, snaps[i].Next, d)
		}
	}

	// With the scalar path forced, the requested window is used verbatim.
	progress = progress[:0]
	optScalar := opt
	optScalar.BatchSize = 1
	if _, err := Run(data.X, data.Labels, optScalar, RunControl{
		NProcs:     2,
		Every:      100,
		OnProgress: func(done, total int64) { progress = append(progress, done) },
	}); err != nil {
		t.Fatal(err)
	}
	wantDone = []int64{100, 200, 300, 400}
	for i, d := range wantDone {
		if progress[i] != d {
			t.Fatalf("scalar window %d: progress %v, want %v", i, progress, wantDone)
		}
	}
}

func TestRunCancelAndResume(t *testing.T) {
	data, opt := runTestData(t)
	for _, fss := range []string{"y", "n"} {
		opt := opt
		opt.FixedSeedSampling = fss
		want, err := MaxT(data.X, data.Labels, opt)
		if err != nil {
			t.Fatal(err)
		}

		// Cancel mid-run; keep the last checkpoint.  The checkpoint is
		// written by the SCALAR engine (BatchSize 1), so its boundary is
		// not a batch multiple.
		ctx, cancel := context.WithCancel(context.Background())
		scalar := opt
		scalar.BatchSize = 1
		var last *Checkpoint
		_, err = Run(data.X, data.Labels, scalar, RunControl{
			Ctx:   ctx,
			Every: 100,
			Save: func(c *Checkpoint) error {
				last = c
				if c.Done >= 200 {
					cancel()
				}
				return nil
			},
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("fss=%s: cancelled run returned %v, want context.Canceled", fss, err)
		}
		if last == nil || last.Done != 200 {
			t.Fatalf("fss=%s: last checkpoint %+v, want Done=200", fss, last)
		}

		// Resume from it on a different rank count AND a different batch
		// size — batching is excluded from the fingerprint because the
		// batched path is bitwise identical — and match MaxT bit for bit.
		for _, bs := range []int{0, 1, 16} {
			resumeOpt := opt
			resumeOpt.BatchSize = bs
			got, err := Run(data.X, data.Labels, resumeOpt, RunControl{NProcs: 3, Every: 100, Resume: last})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, got, want)
		}
	}
}

func TestRunRejectsForeignCheckpoint(t *testing.T) {
	data, opt := runTestData(t)
	var last *Checkpoint
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Run(data.X, data.Labels, opt, RunControl{
		Ctx: ctx, Every: 100,
		Save: func(c *Checkpoint) error { last = c; cancel(); return nil },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	other := opt
	other.Seed++
	if _, err := Run(data.X, data.Labels, other, RunControl{Resume: last}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("foreign checkpoint accepted: %v", err)
	}
}

func TestCanonicalOptions(t *testing.T) {
	canon, err := CanonicalOptions(Options{B: 500})
	if err != nil {
		t.Fatal(err)
	}
	want := Options{
		Test: "t", Side: "abs", FixedSeedSampling: "y", B: 500,
		NA: DefaultNA, Nonpara: "n", MaxComplete: DefaultMaxComplete,
		PermOrder: "auto", Mode: ModeExact,
	}
	if canon != want {
		t.Fatalf("canonical = %+v, want %+v", canon, want)
	}
	if _, err := CanonicalOptions(Options{Test: "bogus"}); err == nil {
		t.Fatal("bogus test accepted")
	}
}
