package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"sprint/internal/maxt"
	"sprint/internal/seqstop"
)

// This file is the sequential (early-stopping) engine: the windowed run
// loop of processRange with the seqstop rules folded in at every window
// boundary.  The design invariant that keeps it honest:
//
//   - A row's RAW count is independent of every other row, and its
//     step-down ADJUSTED count depends only on rows at or below its
//     position in the significance order (the successive maximum at
//     position j is taken over positions >= j).
//   - Therefore rows may stop CONTRIBUTING (freeze) individually — their
//     counts simply stop accumulating, pinning the estimate count/b_eff —
//     but may leave the COMPUTATION only as a frozen prefix of the order.
//     Dropping that prefix (maxt.Prep.Subset) leaves every still-active
//     row's statistics, maxima and counts bit-for-bit what the full
//     computation would produce: sequential mode never approximates an
//     active row, it only truncates each row's permutation prefix.
//
// Every stopping decision is a pure function of the deterministic counts
// at a window boundary, so a cancelled-and-resumed sequential run (same
// window length) reproduces an uninterrupted one exactly — the same
// checkpoint/resume guarantee the exact engine has.

// DefaultSeqWindow is the stopping-rule evaluation window, in
// permutations, used when RunControl.Every asks for "one window" (< 1).
// Exact mode treats that as the whole remaining run; sequential mode
// must still evaluate the rule periodically or it could never stop
// early, so it falls back to this.
const DefaultSeqWindow = 4096

// runSequential executes the sequential engine over a resolved plan.
func runSequential(p *Prepared, cfg config, plan Plan, ctl RunControl) (*Result, error) {
	var prof Profile
	start := time.Now()
	prep, totalB := p.prep, plan.TotalB

	nprocs := ctl.NProcs
	if nprocs < 1 {
		nprocs = runtime.GOMAXPROCS(0)
	}
	batch := cfg.effectiveBatch()
	every := ctl.Every
	if every < 1 {
		every = DefaultSeqWindow
	}
	eb := int64(batch)
	every = (every + eb - 1) / eb * eb

	sc, err := seqstop.New(cfg.seqAlpha, cfg.seqTol, prep.Valid)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tracker := seqstop.NewTracker(sc, prep.Order, prep.Valid)

	counts := maxt.NewCounts(prep.Rows())
	first := int64(0)
	if ctl.Resume != nil {
		r := ctl.Resume
		if err := plan.checkResume(r, prep.Rows()); err != nil {
			return nil, err
		}
		if r.Next != r.Done {
			return nil, ckptMismatch("progress", fmt.Sprintf("counts for %d of %d permutations (a shard partial)", r.Done, r.Next), "a pure prefix (Next == Done)")
		}
		if r.BEff != nil && len(r.BEff) != prep.Rows() {
			return nil, ckptMismatch("BEff rows", len(r.BEff), prep.Rows())
		}
		copy(counts.Raw, r.Raw)
		copy(counts.Adj, r.Adj)
		counts.B = r.Done
		first = r.Next
		if err := tracker.Restore(r.BEff); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCheckpointMismatch, err)
		}
	}

	gen, err := p.generatorFor(cfg, plan, first, totalB)
	if err != nil {
		return nil, err
	}
	prof.CreateData = time.Since(start)

	kernelStart := time.Now()

	// The kernel computes sub — initially the full prep, later the
	// compacted suffix of still-needed rows; subRows maps a sub row index
	// back to its matrix row (nil = identity).
	sub := prep
	var subRows []int
	removed := 0
	compact := func(prefix int) error {
		rows := make([]int, prep.Valid-prefix)
		for i := range rows {
			rows[i] = prep.Order[prefix+i]
		}
		s, err := prep.Subset(rows)
		if err != nil {
			return err
		}
		sub, subRows, removed = s, rows, prefix
		return nil
	}
	if pfx := tracker.FrozenPrefix(); pfx > 0 && pfx < prep.Valid {
		// A resumed run re-drops everything already frozen as a prefix;
		// compaction timing never changes any count (frozen rows' counts
		// are skipped at merge either way), so this is purely physical.
		if err := compact(pfx); err != nil {
			return nil, err
		}
	}

	rs := ctl.Scratch
	if rs == nil {
		rs = &RunScratch{}
	}
	rs.ensure(sub, nprocs)

	bEff := tracker.BEff()
	for lo := first; lo < totalB && !tracker.AllFrozen(); lo += every {
		if ctl.Ctx != nil {
			if err := ctl.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: run stopped at permutation %d of %d: %w", lo, totalB, err)
			}
		}
		hi := lo + every
		if hi > totalB {
			hi = totalB
		}
		span := hi - lo
		var windowStart time.Time
		if ctl.OnWindow != nil {
			windowStart = time.Now()
		}
		if nprocs == 1 {
			maxt.ProcessBatched(sub, gen, lo, hi, rs.partials[0], rs.scratches[0], batch)
		} else {
			var wg sync.WaitGroup
			for r := 0; r < nprocs; r++ {
				clo := lo + alignBoundary(span*int64(r)/int64(nprocs), span, batch)
				chi := lo + alignBoundary(span*int64(r+1)/int64(nprocs), span, batch)
				if clo == chi {
					continue
				}
				wg.Add(1)
				go func(r int, clo, chi int64) {
					defer wg.Done()
					maxt.ProcessBatched(sub, gen, clo, chi, rs.partials[r], rs.scratches[r], batch)
				}(r, clo, chi)
			}
			wg.Wait()
		}
		// Merge, skipping frozen rows: their counts are pinned at their
		// freeze boundary even while the kernel still computes them
		// (between freezing and the next compaction).
		for r := 0; r < nprocs; r++ {
			pc := rs.partials[r]
			if pc.B == 0 {
				continue
			}
			if subRows == nil {
				for i := range pc.Raw {
					if bEff[i] == 0 {
						counts.Raw[i] += pc.Raw[i]
						counts.Adj[i] += pc.Adj[i]
					}
				}
			} else {
				for si, row := range subRows {
					if bEff[row] == 0 {
						counts.Raw[row] += pc.Raw[si]
						counts.Adj[row] += pc.Adj[si]
					}
				}
			}
			counts.B += pc.B
			clear(pc.Raw)
			clear(pc.Adj)
			pc.B = 0
		}
		if ctl.OnWindow != nil {
			ctl.OnWindow(span, time.Since(windowStart))
		}

		tracker.Observe(counts.Raw, counts.Adj, counts.B)

		if ctl.Save != nil {
			snap := &Checkpoint{
				Fingerprint: plan.Fingerprint,
				TotalB:      plan.TotalB,
				Complete:    plan.Complete,
				Next:        hi,
				Raw:         append([]int64(nil), counts.Raw...),
				Adj:         append([]int64(nil), counts.Adj...),
				Done:        counts.B,
				BEff:        append([]int64(nil), bEff...),
			}
			if err := ctl.Save(snap); err != nil {
				return nil, fmt.Errorf("core: checkpoint save at permutation %d: %w", hi, err)
			}
		}
		if ctl.OnProgress != nil {
			ctl.OnProgress(counts.B, totalB)
		}
		if ctl.OnSeq != nil {
			ctl.OnSeq(prep.Valid-tracker.FrozenRows(), tracker.PermsSaved(totalB))
		}

		// Physical compaction: rebuild the kernel's prep once the
		// droppable prefix is a worthwhile fraction of what it still
		// computes.  The first compaction also sheds rows with no
		// computable statistic (positions >= Valid), which contribute
		// nothing to any count.
		if pfx := tracker.FrozenPrefix(); pfx > removed && pfx < prep.Valid {
			droppable := pfx - removed
			computing := sub.Rows()
			if droppable >= 32 && droppable*4 >= computing {
				if err := compact(pfx); err != nil {
					return nil, err
				}
				rs.ensure(sub, nprocs)
			}
		}
	}
	prof.MainKernel = time.Since(kernelStart)

	start = time.Now()
	tracker.Fill(counts.B)
	final := maxt.FinalizeEffective(prep, counts, tracker.BEff())
	prof.ComputePValues = time.Since(start)

	return &Result{
		Stat:      final.Stat,
		RawP:      final.RawP,
		AdjP:      final.AdjP,
		Order:     final.Order,
		B:         counts.B,
		Complete:  false,
		NProcs:    nprocs,
		Profile:   prof,
		KernelMax: prof.MainKernel,
		Mode:      ModeSequential,
		PlannedB:  totalB,
		BEff:      append([]int64(nil), tracker.BEff()...),
	}, nil
}

// SeqAllSettled reports whether merged exceedance counts covering
// counts.B sampled permutations satisfy the sequential stopping rule for
// EVERY valid row — the whole-job termination test a cluster coordinator
// applies to its merge ledger before broadcasting a stop.  Per-row
// freezing does not apply across shards (a shard never holds the global
// prefix), so distribution uses this all-rows rule only.
func SeqAllSettled(p *Prepared, opt Options, counts *maxt.Counts) (bool, error) {
	return SeqAllSettledFrozen(p, opt, counts, nil)
}

// SeqAllSettledFrozen is SeqAllSettled for a merge that resumed from a
// checkpoint with already-frozen rows: frozen[i] != 0 marks row i's
// counts as pinned at that effective permutation count, and the row is
// treated as settled by construction — it satisfied the per-row rule
// before the handoff, and its merged counts no longer track counts.B.
// A nil frozen slice is the plain all-rows rule.
func SeqAllSettledFrozen(p *Prepared, opt Options, counts *maxt.Counts, frozen []int64) (bool, error) {
	cfg, _, err := p.planFor(opt)
	if err != nil {
		return false, err
	}
	if cfg.mode != modeSequential {
		return false, fmt.Errorf("core: SeqAllSettled requires mode \"sequential\"")
	}
	prep := p.prep
	if len(counts.Raw) != prep.Rows() || len(counts.Adj) != prep.Rows() {
		return false, fmt.Errorf("core: count vectors have %d/%d rows, prep has %d", len(counts.Raw), len(counts.Adj), prep.Rows())
	}
	if frozen != nil && len(frozen) != prep.Rows() {
		return false, fmt.Errorf("core: frozen vector has %d rows, prep has %d", len(frozen), prep.Rows())
	}
	sc, err := seqstop.New(cfg.seqAlpha, cfg.seqTol, prep.Valid)
	if err != nil {
		return false, fmt.Errorf("core: %w", err)
	}
	for j := 0; j < prep.Valid; j++ {
		r := prep.Order[j]
		if frozen != nil && frozen[r] != 0 {
			continue
		}
		if !sc.Settled(counts.Raw[r], counts.B) || !sc.Settled(counts.Adj[r], counts.B) {
			return false, nil
		}
	}
	return true, nil
}

// FinalizeCountsSequential is FinalizeCounts for a sequentially stopped
// merge: counts cover counts.B <= TotalB sampled permutations (every row
// uniformly — a fresh distributed run has no per-row freezing), and the
// Result reports the planned total and the shared effective count.
func FinalizeCountsSequential(p *Prepared, opt Options, counts *maxt.Counts) (*Result, error) {
	return FinalizeCountsSequentialFrozen(p, opt, counts, nil)
}

// FinalizeCountsSequentialFrozen finalizes a sequential merge that
// resumed from a checkpoint with frozen rows: frozen[i] != 0 pins row
// i's effective permutation count at the value local per-row stopping
// froze it at, while unfrozen valid rows take the uniform merged count.
// The caller must have masked frozen rows out of every merge so that
// counts.Raw/Adj for those rows still hold exactly the checkpoint's
// values over [0, frozen[i]).  A nil frozen slice is the uniform rule.
func FinalizeCountsSequentialFrozen(p *Prepared, opt Options, counts *maxt.Counts, frozen []int64) (*Result, error) {
	cfg, plan, err := p.planFor(opt)
	if err != nil {
		return nil, err
	}
	if cfg.mode != modeSequential {
		return nil, fmt.Errorf("core: FinalizeCountsSequential requires mode \"sequential\"")
	}
	if counts.B < 1 || counts.B > plan.TotalB {
		return nil, fmt.Errorf("core: merged permutation count %d outside (0, %d]", counts.B, plan.TotalB)
	}
	if len(counts.Raw) != plan.Rows || len(counts.Adj) != plan.Rows {
		return nil, fmt.Errorf("core: merged count vectors have %d rows, want %d", len(counts.Raw), plan.Rows)
	}
	if frozen != nil && len(frozen) != plan.Rows {
		return nil, fmt.Errorf("core: frozen vector has %d rows, want %d", len(frozen), plan.Rows)
	}
	start := time.Now()
	prep := p.prep
	bEff := make([]int64, prep.Rows())
	for j := 0; j < prep.Valid; j++ {
		r := prep.Order[j]
		if frozen != nil && frozen[r] != 0 {
			bEff[r] = frozen[r]
			continue
		}
		bEff[r] = counts.B
	}
	final := maxt.FinalizeEffective(prep, counts, bEff)
	return &Result{
		Stat:     final.Stat,
		RawP:     final.RawP,
		AdjP:     final.AdjP,
		Order:    final.Order,
		B:        counts.B,
		Complete: false,
		Profile:  Profile{ComputePValues: time.Since(start)},
		Mode:     ModeSequential,
		PlannedB: plan.TotalB,
		BEff:     bEff,
	}, nil
}
