package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"sprint/internal/matrix"
	"sprint/internal/maxt"
	"sprint/internal/microarray"
)

// seqTestData builds a dataset large enough that the stopping rule has
// room to act (most rows are null, a few are strongly differential).
func seqTestData(t *testing.T, seed uint64) (*microarray.Dataset, Options) {
	t.Helper()
	data, err := microarray.Generate(microarray.GenOptions{
		Genes: 200, Samples: 30, Classes: 2,
		DiffFraction: 0.05, EffectSize: 2.5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.B = 50000
	opt.Seed = 99
	opt.Mode = ModeSequential
	return data, opt
}

// TestExactModeBitwiseInvariant pins the tentpole's compatibility claim:
// an explicit Mode "exact" is byte-for-byte the legacy no-mode engine, for
// every test statistic, sampling mode and entry point.
func TestExactModeBitwiseInvariant(t *testing.T) {
	data, opt := runTestData(t)
	for _, test := range []string{"t", "t.equalvar", "wilcoxon", "f"} {
		for _, fss := range []string{"y", "n"} {
			legacy := opt
			legacy.Test, legacy.FixedSeedSampling = test, fss
			legacy.Mode = ""
			want, err := MaxT(data.X, data.Labels, legacy)
			if err != nil {
				t.Fatal(err)
			}
			explicit := legacy
			explicit.Mode = ModeExact
			got, err := MaxT(data.X, data.Labels, explicit)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, got, want)
			if got.Sequential() || got.BEff != nil || got.SeqPermsSaved() != 0 {
				t.Fatalf("exact result carries sequential metadata: mode=%q bEff=%v", got.Mode, got.BEff)
			}
			got, err = Run(data.X, data.Labels, explicit, RunControl{NProcs: 3, Every: 128})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, got, want)
		}
	}
}

// TestSequentialMatchesExactWithinTolerance checks the engine's accuracy
// contract over three independent datasets: every reported p-value (raw
// and adjusted) is within the confidence-sequence tolerance of the exact
// engine's estimate at the full planned B.
func TestSequentialMatchesExactWithinTolerance(t *testing.T) {
	for _, seed := range []uint64{3, 41, 77} {
		data, opt := seqTestData(t, seed)
		exactOpt := opt
		exactOpt.Mode = ModeExact
		exact, err := Run(data.X, data.Labels, exactOpt, RunControl{NProcs: 2})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Run(data.X, data.Labels, opt, RunControl{NProcs: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Sequential() || seq.PlannedB != opt.B {
			t.Fatalf("seed %d: not a sequential result: mode=%q plannedB=%d", seed, seq.Mode, seq.PlannedB)
		}
		// Both estimates individually sit within the 0.02 tolerance of the
		// truth with high probability; their gap is bounded by the sum.
		// The runs are fully deterministic, so this cannot flake.
		const bound = 2 * 0.02
		var maxRaw, maxAdj float64
		for i := range exact.RawP {
			if math.IsNaN(exact.RawP[i]) || math.IsNaN(seq.RawP[i]) {
				continue
			}
			if d := math.Abs(exact.RawP[i] - seq.RawP[i]); d > maxRaw {
				maxRaw = d
			}
			if d := math.Abs(exact.AdjP[i] - seq.AdjP[i]); d > maxAdj {
				maxAdj = d
			}
		}
		if maxRaw > bound || maxAdj > bound {
			t.Fatalf("seed %d: sequential drifted beyond tolerance: max|Δraw|=%v max|Δadj|=%v", seed, maxRaw, maxAdj)
		}
		// The point of the mode: it must actually run fewer permutations.
		if seq.B >= exact.B {
			t.Fatalf("seed %d: sequential ran %d of %d planned permutations — no saving", seed, seq.B, exact.B)
		}
		if seq.SeqPermsSaved() <= 0 || seq.SeqRowsStopped() == 0 {
			t.Fatalf("seed %d: savings metadata empty: saved=%d stopped=%d", seed, seq.SeqPermsSaved(), seq.SeqRowsStopped())
		}
		// Order and statistics never depend on the mode.
		for i := range exact.Order {
			if exact.Order[i] != seq.Order[i] {
				t.Fatalf("seed %d: significance order diverged at %d", seed, i)
			}
		}
	}
}

// TestSequentialResumeDeterministic pins the checkpoint contract: a
// sequential run cancelled mid-flight and resumed with the same window
// length finishes bit-identical to an uninterrupted run.
func TestSequentialResumeDeterministic(t *testing.T) {
	data, opt := seqTestData(t, 11)
	const every = 2048

	want, err := Run(data.X, data.Labels, opt, RunControl{NProcs: 2, Every: every})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var last *Checkpoint
	_, err = Run(data.X, data.Labels, opt, RunControl{
		Ctx: ctx, NProcs: 2, Every: every,
		Save: func(c *Checkpoint) error {
			last = c
			if c.Done >= 2*every {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if last == nil || last.BEff == nil {
		t.Fatal("sequential checkpoint lacks freeze state")
	}

	got, err := Run(data.X, data.Labels, opt, RunControl{NProcs: 3, Every: every, Resume: last})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want)
	if got.B != want.B || got.SeqPermsSaved() != want.SeqPermsSaved() {
		t.Fatalf("resumed run: B=%d saved=%d, uninterrupted: B=%d saved=%d",
			got.B, got.SeqPermsSaved(), want.B, want.SeqPermsSaved())
	}
	for i, be := range want.BEff {
		if got.BEff[i] != be {
			t.Fatalf("b_eff[%d] = %d after resume, want %d", i, got.BEff[i], be)
		}
	}
}

// TestSequentialRejections pins every entry point that must refuse the
// sequential mode, and that the refusals name what went wrong.
func TestSequentialRejections(t *testing.T) {
	data, opt := seqTestData(t, 5)

	// Complete enumeration needs a column count whose label permutations
	// fit under MaxComplete, so the sequential rejection (not the size
	// cap) is what fires.
	small, smallOpt := runTestData(t)
	complete := smallOpt
	complete.Mode = ModeSequential
	complete.B = 0
	if _, err := MaxT(small.X, small.Labels, complete); err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Fatalf("complete enumeration accepted sequential mode: %v", err)
	}

	door := opt
	door.PermOrder = "door"
	if _, err := MaxT(data.X, data.Labels, door); err == nil || !strings.Contains(err.Error(), "door") {
		t.Fatalf("door order accepted sequential mode: %v", err)
	}

	if _, err := PMaxT(data.X, data.Labels, 2, opt); err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Fatalf("PMaxT collective accepted sequential mode: %v", err)
	}

	p, err := Prepare(rowsInputT(t, data.X), data.Labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunShard(p, opt, 0, 1024, RunControl{}); err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Fatalf("RunShard accepted sequential mode: %v", err)
	}

	bogus := opt
	bogus.Mode = "adaptive"
	if _, err := MaxT(data.X, data.Labels, bogus); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestExactResumeRejectsSequentialCheckpoint: an exact run handed a
// checkpoint carrying freeze state must refuse it naming the mode, even
// if every other identity field happens to line up.
func TestExactResumeRejectsSequentialCheckpoint(t *testing.T) {
	data, opt := runTestData(t)
	var last *Checkpoint
	_, err := Run(data.X, data.Labels, opt, RunControl{
		Every: 100,
		Save:  func(c *Checkpoint) error { last = c; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	forged := *last
	forged.BEff = make([]int64, len(last.Raw))
	_, err = Run(data.X, data.Labels, opt, RunControl{Resume: &forged})
	if !errors.Is(err, ErrCheckpointMismatch) || !strings.Contains(err.Error(), "mode") {
		t.Fatalf("exact resume of sequential freeze state: %v, want mode mismatch", err)
	}

	// And the symmetric direction: a sequential run never accepts an
	// exact checkpoint — the fingerprints differ by construction.
	seqOpt := opt
	seqOpt.Mode = ModeSequential
	if _, err := Run(data.X, data.Labels, seqOpt, RunControl{Resume: last}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("sequential resume of exact checkpoint: %v", err)
	}
}

// TestSeqAllSettledAndFinalize exercises the coordinator-facing helpers on
// hand-built merge ledgers.
func TestSeqAllSettledAndFinalize(t *testing.T) {
	data, opt := seqTestData(t, 13)
	p, err := Prepare(rowsInputT(t, data.X), data.Labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	rows := len(data.X)

	counts := maxt.NewCounts(rows)
	counts.B = 256
	// Wide-open counts at a tiny b: nothing settles.
	for i := range counts.Raw {
		counts.Raw[i] = 128
		counts.Adj[i] = 128
	}
	settled, err := SeqAllSettled(p, opt, counts)
	if err != nil {
		t.Fatal(err)
	}
	if settled {
		t.Fatal("p̂=0.5 at b=256 reported settled")
	}
	// All-zero counts at a large b: every row certifies significant.
	clear(counts.Raw)
	clear(counts.Adj)
	counts.B = 1 << 20
	if counts.B > opt.B {
		counts.B = opt.B
	}
	settled, err = SeqAllSettled(p, opt, counts)
	if err != nil {
		t.Fatal(err)
	}
	if !settled {
		t.Fatal("all-zero counts at large b not settled")
	}

	res, err := FinalizeCountsSequential(p, opt, counts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sequential() || res.PlannedB != opt.B || res.B != counts.B {
		t.Fatalf("finalized metadata: mode=%q plannedB=%d B=%d", res.Mode, res.PlannedB, res.B)
	}
	for i, bp := range res.RawP {
		if math.IsNaN(res.Stat[i]) {
			continue
		}
		if bp != 0 {
			t.Fatalf("RawP[%d] = %v for a zero count", i, bp)
		}
	}

	exactOpt := opt
	exactOpt.Mode = ModeExact
	pExact, err := Prepare(rowsInputT(t, data.X), data.Labels, exactOpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SeqAllSettled(pExact, exactOpt, counts); err == nil {
		t.Fatal("SeqAllSettled accepted exact mode")
	}
	if _, err := FinalizeCountsSequential(pExact, exactOpt, counts); err == nil {
		t.Fatal("FinalizeCountsSequential accepted exact mode")
	}
	bad := maxt.NewCounts(rows)
	bad.B = opt.B + 1
	if _, err := FinalizeCountsSequential(p, opt, bad); err == nil {
		t.Fatal("merged B beyond the plan accepted")
	}
}

// rowsInputT adapts [][]float64 test data to the engine's flat matrix.
func rowsInputT(t *testing.T, x [][]float64) matrix.Matrix {
	t.Helper()
	m, err := rowsInput(x)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
