package core

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"sprint/internal/rng"
)

// synthMatrix builds a deterministic rows×cols matrix with the first
// nDiff rows differentially expressed between the two halves of columns.
func synthMatrix(rows, cols, nDiff int, seed uint64) [][]float64 {
	src := rng.New(seed)
	x := make([][]float64, rows)
	for i := range x {
		row := make([]float64, cols)
		for j := range row {
			row[j] = src.NormFloat64()
			if i < nDiff && j >= cols/2 {
				row[j] += 2.5
			}
		}
		x[i] = row
	}
	return x
}

func twoClass(n0, n1 int) []int {
	lab := make([]int, n0+n1)
	for i := n0; i < n0+n1; i++ {
		lab[i] = 1
	}
	return lab
}

func resultsEqual(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if a.B != b.B || a.Complete != b.Complete {
		t.Fatalf("%s: B/Complete mismatch: (%d,%v) vs (%d,%v)", name, a.B, a.Complete, b.B, b.Complete)
	}
	for i := range a.RawP {
		switch {
		case math.IsNaN(a.RawP[i]) != math.IsNaN(b.RawP[i]):
			t.Fatalf("%s row %d: NaN mismatch", name, i)
		case !math.IsNaN(a.RawP[i]) && (a.RawP[i] != b.RawP[i] || a.AdjP[i] != b.AdjP[i]):
			t.Fatalf("%s row %d: serial (raw=%v adj=%v) != parallel (raw=%v adj=%v)",
				name, i, a.RawP[i], a.AdjP[i], b.RawP[i], b.AdjP[i])
		}
		if a.Order[i] != b.Order[i] {
			t.Fatalf("%s: order mismatch at %d", name, i)
		}
	}
}

// TestParallelIdenticalToSerial is the paper's central correctness claim:
// "To be able to reproduce the same results as the serial version" —
// pmaxT output must be bit-identical to mt.maxT for every statistic,
// generator and process count.
func TestParallelIdenticalToSerial(t *testing.T) {
	x := synthMatrix(30, 12, 5, 2024)
	lab := twoClass(6, 6)
	flab := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	plab := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	blab := []int{0, 1, 2, 1, 2, 0, 2, 0, 1, 0, 1, 2}

	cases := []struct {
		name string
		lab  []int
		opt  Options
	}{
		{"welch/abs/otf", lab, Options{Test: "t", Side: "abs", FixedSeedSampling: "y", B: 200, Seed: 1}},
		{"welch/upper/stored", lab, Options{Test: "t", Side: "upper", FixedSeedSampling: "n", B: 200, Seed: 2}},
		{"welch/lower/otf", lab, Options{Test: "t", Side: "lower", FixedSeedSampling: "y", B: 150, Seed: 3}},
		{"equalvar/abs/stored", lab, Options{Test: "t.equalvar", Side: "abs", FixedSeedSampling: "n", B: 150, Seed: 4}},
		{"wilcoxon/abs/otf", lab, Options{Test: "wilcoxon", Side: "abs", FixedSeedSampling: "y", B: 150, Seed: 5}},
		{"f/abs/otf", flab, Options{Test: "f", Side: "abs", FixedSeedSampling: "y", B: 150, Seed: 6}},
		{"pairt/abs/complete", plab, Options{Test: "pairt", Side: "abs", B: 0, Seed: 7}},
		{"pairt/abs/otf", plab, Options{Test: "pairt", Side: "abs", FixedSeedSampling: "y", B: 40, Seed: 8}},
		{"blockf/abs/otf", blab, Options{Test: "blockf", Side: "abs", FixedSeedSampling: "y", B: 100, Seed: 9}},
		{"welch/nonpara", lab, Options{Test: "t", Nonpara: "y", B: 100, Seed: 10}},
		{"welch/scalarparams", lab, Options{Test: "t", B: 100, Seed: 11, ScalarParams: true}},
	}
	for _, tc := range cases {
		serial, err := MaxT(x, tc.lab, tc.opt)
		if err != nil {
			t.Fatalf("%s: serial: %v", tc.name, err)
		}
		for _, nprocs := range []int{1, 2, 3, 4, 7} {
			par, err := PMaxT(x, tc.lab, nprocs, tc.opt)
			if err != nil {
				t.Fatalf("%s nprocs=%d: %v", tc.name, nprocs, err)
			}
			if par.NProcs != nprocs {
				t.Errorf("%s: NProcs = %d, want %d", tc.name, par.NProcs, nprocs)
			}
			resultsEqual(t, tc.name, serial, par)
		}
	}
}

func TestChunkDistribution(t *testing.T) {
	// Figure 2: contiguous equal chunks covering [0, B), identity (index
	// 0) only in rank 0's chunk.
	for _, tc := range []struct{ B, size int64 }{{23, 3}, {150000, 512}, {10, 16}, {1, 1}, {7, 7}} {
		var covered int64
		for r := int64(0); r < tc.size; r++ {
			lo, hi := Chunk(tc.B, int(tc.size), int(r))
			if lo > hi {
				t.Fatalf("B=%d size=%d rank=%d: lo %d > hi %d", tc.B, tc.size, r, lo, hi)
			}
			if r == 0 && tc.B > 0 && lo != 0 {
				t.Fatalf("rank 0 chunk does not start at the observed permutation")
			}
			if r > 0 {
				_, prevHi := Chunk(tc.B, int(tc.size), int(r-1))
				if lo != prevHi {
					t.Fatalf("B=%d size=%d: gap between ranks %d and %d", tc.B, tc.size, r-1, r)
				}
			}
			covered += hi - lo
			// Equal chunks: sizes differ by at most 1.
			if hi-lo > tc.B/tc.size+1 || hi-lo < tc.B/tc.size {
				t.Fatalf("B=%d size=%d rank=%d: chunk size %d not balanced", tc.B, tc.size, r, hi-lo)
			}
		}
		if covered != tc.B {
			t.Fatalf("B=%d size=%d: chunks cover %d", tc.B, tc.size, covered)
		}
	}
}

// TestFigure2Distribution pins the concrete example drawn in Figure 2 of
// the paper: 23 permutations over 3 processes — the master takes the
// observed permutation plus its chunk, the others skip it.
func TestFigure2Distribution(t *testing.T) {
	bounds := [][2]int64{}
	for r := 0; r < 3; r++ {
		lo, hi := Chunk(23, 3, r)
		bounds = append(bounds, [2]int64{lo, hi})
	}
	if bounds[0][0] != 0 {
		t.Error("master does not own the observed permutation")
	}
	for r := 1; r < 3; r++ {
		if bounds[r][0] == 0 {
			t.Errorf("rank %d owns the observed permutation too", r)
		}
	}
	if bounds[2][1] != 23 {
		t.Error("last rank does not end at B")
	}
}

func TestCompleteEnumerationChosenWhenSmall(t *testing.T) {
	// C(8,4) = 70 < B = 1000, so exact enumeration replaces sampling.
	x := synthMatrix(5, 8, 1, 3)
	res, err := MaxT(x, twoClass(4, 4), Options{B: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.B != 70 {
		t.Errorf("Complete=%v B=%d, want complete with 70", res.Complete, res.B)
	}
}

func TestCompleteRequestedExplicitly(t *testing.T) {
	x := synthMatrix(5, 8, 1, 3)
	res, err := MaxT(x, twoClass(4, 4), Options{B: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.B != 70 {
		t.Errorf("Complete=%v B=%d, want complete with 70", res.Complete, res.B)
	}
}

func TestCompleteTooLargeAsksForExplicitB(t *testing.T) {
	x := synthMatrix(3, 20, 1, 3)
	_, err := MaxT(x, twoClass(10, 10), Options{B: 0, MaxComplete: 1000})
	if err == nil || !strings.Contains(err.Error(), "request a smaller number") {
		t.Fatalf("error = %v, want limit message", err)
	}
}

func TestCompleteOverflowAsksForExplicitB(t *testing.T) {
	x := synthMatrix(3, 76, 1, 3)
	_, err := MaxT(x, twoClass(38, 38), Options{B: 0})
	if err == nil {
		t.Fatal("overflowing complete count accepted")
	}
}

func TestNAValuesExcluded(t *testing.T) {
	x := synthMatrix(10, 12, 2, 5)
	// Plant the NA code; the run must treat those cells as missing, and
	// the result must match a run on a NaN-planted copy.
	xna := make([][]float64, len(x))
	xnan := make([][]float64, len(x))
	for i := range x {
		xna[i] = append([]float64(nil), x[i]...)
		xnan[i] = append([]float64(nil), x[i]...)
	}
	xna[3][4] = DefaultNA
	xnan[3][4] = math.NaN()
	lab := twoClass(6, 6)
	opt := Options{B: 100, Seed: 1}
	a, err := MaxT(xna, lab, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaxT(xnan, lab, opt)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "na-vs-nan", a, b)
}

func TestCustomNACode(t *testing.T) {
	x := synthMatrix(6, 12, 2, 5)
	x[0][0] = -999
	res, err := MaxT(x, twoClass(6, 6), Options{B: 50, NA: -999, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.RawP[0]) {
		t.Error("row with one NA became uncomputable")
	}
}

func TestOptionValidationErrors(t *testing.T) {
	x := synthMatrix(4, 12, 1, 1)
	lab := twoClass(6, 6)
	cases := []Options{
		{Test: "bogus"},
		{Side: "both"},
		{FixedSeedSampling: "maybe"},
		{Nonpara: "perhaps"},
		{B: -5},
	}
	for i, opt := range cases {
		if _, err := MaxT(x, lab, opt); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, opt)
		}
	}
	if _, err := MaxT(nil, lab, Options{B: 10}); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := MaxT(x, lab, Options{B: 10, BatchSize: -1}); err == nil {
		t.Error("negative BatchSize accepted")
	}
	if _, err := PMaxT(x, lab, 2, Options{Test: "bogus"}); err == nil {
		t.Error("parallel run with invalid options succeeded")
	}
}

// TestPMaxTDefaultNProcs: nprocs <= 0 selects every available CPU instead
// of failing, matching the jobs manager and the CLIs.
func TestPMaxTDefaultNProcs(t *testing.T) {
	x := synthMatrix(4, 12, 1, 1)
	lab := twoClass(6, 6)
	res, err := PMaxT(x, lab, 0, Options{B: 20})
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); res.NProcs != want {
		t.Errorf("NProcs = %d, want GOMAXPROCS %d", res.NProcs, want)
	}
}

func TestDefaultOptionsAreValid(t *testing.T) {
	opt := DefaultOptions()
	cfg, err := parseOptions(opt)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.b != 10000 || !cfg.fixedSeed || cfg.nonpara {
		t.Errorf("default config = %+v", cfg)
	}
}

func TestProfileSectionsPopulated(t *testing.T) {
	x := synthMatrix(50, 12, 5, 6)
	res, err := PMaxT(x, twoClass(6, 6), 3, Options{B: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.MainKernel <= 0 {
		t.Error("MainKernel not timed")
	}
	if p.Total() < p.MainKernel {
		t.Error("Total() less than a component")
	}
	if res.KernelMax < p.MainKernel {
		t.Errorf("KernelMax %v < master kernel %v", res.KernelMax, p.MainKernel)
	}
}

func TestSpikedGenesMostSignificant(t *testing.T) {
	x := synthMatrix(40, 16, 4, 7)
	res, err := PMaxT(x, twoClass(8, 8), 4, Options{B: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The four spiked rows must occupy the top four order slots.
	top := map[int]bool{}
	for _, r := range res.Order[:4] {
		top[r] = true
	}
	for i := 0; i < 4; i++ {
		if !top[i] {
			t.Errorf("spiked row %d not in top 4 (order %v)", i, res.Order[:8])
		}
	}
	// And their adjusted p-values must be small while null genes stay big.
	if res.AdjP[0] > 0.05 {
		t.Errorf("spiked gene adjp = %v, want < 0.05", res.AdjP[0])
	}
}

func TestSeedChangesRandomisedResults(t *testing.T) {
	x := synthMatrix(20, 12, 2, 8)
	lab := twoClass(6, 6)
	a, _ := MaxT(x, lab, Options{B: 100, Seed: 1})
	b, _ := MaxT(x, lab, Options{B: 100, Seed: 99})
	same := true
	for i := range a.RawP {
		if a.RawP[i] != b.RawP[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical raw p-values")
	}
}

func TestStoredAndOnTheFlyBothValid(t *testing.T) {
	// The two generators draw different permutations, but both must give
	// statistically consistent answers: the spiked gene lands at the top
	// with minimum p in both.
	x := synthMatrix(10, 12, 1, 9)
	lab := twoClass(6, 6)
	for _, fss := range []string{"y", "n"} {
		res, err := MaxT(x, lab, Options{B: 500, Seed: 4, FixedSeedSampling: fss})
		if err != nil {
			t.Fatalf("fss=%s: %v", fss, err)
		}
		if res.Order[0] != 0 {
			t.Errorf("fss=%s: spiked gene not first", fss)
		}
	}
}
