package core

import (
	"fmt"
	"runtime"
	"time"

	"sprint/internal/matrix"
	"sprint/internal/maxt"
	"sprint/internal/mpi"
	"sprint/internal/perm"
	"sprint/internal/sprintfw"
	"sprint/internal/stat"
)

// Profile records the five timed sections of the pmaxT implementation, the
// row layout of Tables I–V in the paper.
type Profile struct {
	PreProcessing   time.Duration // Step 1: master-side option checking and NA scrub
	BroadcastParams time.Duration // Step 2: parameter broadcast + Step 3 sync
	CreateData      time.Duration // Step 4a: data broadcast and per-rank preparation
	MainKernel      time.Duration // Step 4b: local permutations
	ComputePValues  time.Duration // Step 5: count reduction and p-value computation
}

// Total returns the summed wall time of all sections.
func (p Profile) Total() time.Duration {
	return p.PreProcessing + p.BroadcastParams + p.CreateData + p.MainKernel + p.ComputePValues
}

// Result is the outcome of a MaxT or PMaxT run.
type Result struct {
	// Stat holds the observed (untransformed) statistic per row.
	Stat []float64
	// RawP holds unadjusted permutation p-values per row.
	RawP []float64
	// AdjP holds Westfall–Young step-down maxT adjusted p-values per row.
	AdjP []float64
	// Order lists row indices by decreasing significance.
	Order []int
	// B is the number of permutations actually performed, including the
	// observed labelling.
	B int64
	// Complete reports whether the run enumerated all permutations.
	Complete bool
	// NProcs is the process (goroutine rank) count used.
	NProcs int
	// Profile holds the master's per-section timings.
	Profile Profile
	// KernelMax is the slowest rank's kernel time; with balanced chunks
	// it tracks Profile.MainKernel closely.
	KernelMax time.Duration
	// Mode names the engine that produced the result: "" or ModeExact for
	// the exact engine, ModeSequential for the early-stopping engine.
	Mode string
	// PlannedB is the permutation count the run would have performed
	// without early stopping; zero on exact results (where it equals B).
	PlannedB int64
	// BEff, on sequential results, holds per matrix row the effective
	// permutation count its p-values are estimated over (RawP[i] =
	// Raw[i]/BEff[i]); zero for rows with no computable statistic.  Nil on
	// exact results, where every row's count is B.
	BEff []int64
}

// Sequential reports whether the result came from the early-stopping
// engine.
func (r *Result) Sequential() bool { return r.Mode == ModeSequential }

// SeqPermsSaved returns the number of per-row permutation evaluations the
// sequential engine avoided relative to running every row to PlannedB:
// the sum over rows of PlannedB - BEff[i].  Zero on exact results.
func (r *Result) SeqPermsSaved() int64 {
	if !r.Sequential() {
		return 0
	}
	var saved int64
	for _, b := range r.BEff {
		if b > 0 && b < r.PlannedB {
			saved += r.PlannedB - b
		}
	}
	return saved
}

// SeqRowsStopped returns how many rows the sequential engine froze before
// PlannedB permutations.  Zero on exact results.
func (r *Result) SeqRowsStopped() int {
	if !r.Sequential() {
		return 0
	}
	n := 0
	for _, b := range r.BEff {
		if b > 0 && b < r.PlannedB {
			n++
		}
	}
	return n
}

// Chunk returns the permutation index range [lo, hi) owned by rank within
// a B-permutation sequence split across size ranks, following Figure 2 of
// the paper: contiguous, equal chunks, with the observed labelling (index
// 0) falling into the master's chunk only.
func Chunk(B int64, size, rank int) (lo, hi int64) {
	s, r := int64(size), int64(rank)
	return B * r / s, B * (r + 1) / s
}

// ChunkAligned is Chunk with interior boundaries rounded up to multiples
// of batch, so every rank's chunk (except possibly the last) is a whole
// number of kernel batches and no rank pays a ragged tail batch.  The
// boundaries remain monotone and cover [0, B) exactly; counts merge by
// addition, so alignment never changes results — it only changes which
// rank evaluates which permutations.  batch <= 1 degenerates to Chunk.
func ChunkAligned(B int64, size, rank int, batch int) (lo, hi int64) {
	lo, hi = Chunk(B, size, rank)
	return alignBoundary(lo, B, batch), alignBoundary(hi, B, batch)
}

// alignBoundary rounds an interior chunk boundary up to a batch multiple,
// clamped to the sequence end.
func alignBoundary(b, B int64, batch int) int64 {
	if batch <= 1 || b == 0 || b >= B {
		return b
	}
	bb := int64(batch)
	a := (b + bb - 1) / bb * bb
	if a > B {
		a = B
	}
	return a
}

// job carries the master's inputs into the collective evaluation.  In real
// SPRINT the workers receive everything over MPI; here the struct rides the
// command broadcast by reference and the explicit broadcasts below mirror
// the wire protocol (and are what the profile sections time).
type job struct {
	x          matrix.Matrix
	classlabel []int
	opt        Options
}

// FunctionName is the registry name of the parallel permutation testing
// function.
const FunctionName = "pmaxt"

// NewFunction returns the sprintfw registration of pmaxT.
func NewFunction() sprintfw.Function {
	return sprintfw.FuncOf(FunctionName, evalPMaxT)
}

// Registry returns a SPRINT function library with pmaxT registered, ready
// for sprintfw.Run.
func Registry() *sprintfw.Registry {
	reg := sprintfw.NewRegistry()
	reg.MustRegister(NewFunction())
	return reg
}

// paramsMsg is the Step 2 payload: string option lengths first, then the
// string bytes, then the scalar options — the order described in the paper.
type paramsMsg struct {
	strLens []int
	strs    []byte
	scalars []int64
}

// evalPMaxT is the collective body of pmaxT: Steps 1–6 of Section 3.2.
// The master (rank 0) returns a *Result; workers return nil.
func evalPMaxT(c *mpi.Comm, args any) (any, error) {
	master := c.Rank() == 0
	var prof Profile

	// ---- Step 1: pre-processing (master only) -------------------------
	// Validate parameters, transform them to the internal format, and
	// scrub the NA code (a scan, and a copy only when something needs
	// replacing).  Workers wait in Step 2's broadcast.
	var cfg config
	var x matrix.Matrix
	var classlabel []int
	if master {
		j, ok := args.(*job)
		if !ok {
			return nil, fmt.Errorf("core: pmaxt called with %T, want *job", args)
		}
		start := time.Now()
		var err error
		cfg, err = parseOptions(j.opt)
		if err != nil {
			return nil, err
		}
		if cfg.mode == modeSequential {
			// The sprintfw collective is a fixed-work protocol: every rank
			// must process its whole chunk.  The supervised Run path owns
			// sequential execution.
			return nil, fmt.Errorf("core: pmaxt (MPI-style collective) supports mode \"exact\" only; run mode \"sequential\" through Run or RunPrepared")
		}
		if j.x.IsEmpty() {
			return nil, fmt.Errorf("core: empty input matrix")
		}
		x = scrubNA(j.x, cfg.na)
		classlabel = j.classlabel
		prof.PreProcessing = time.Since(start)
	}

	// ---- Step 2: broadcast parameters ---------------------------------
	// The paper broadcasts the string parameter lengths first, then the
	// strings, then the scalar options into a statically allocated
	// buffer.  The ScalarParams ablation (future-work item 3) sends one
	// scalar vector instead.
	start := time.Now()
	cfg = broadcastParams(c, cfg)
	// ---- Step 3: global sum to synchronise allocation -----------------
	ready := mpi.Allreduce(c, []int64{1}, mpi.SumInt64)
	if ready[0] != int64(c.Size()) {
		return nil, fmt.Errorf("core: allocation sync saw %d of %d ranks", ready[0], c.Size())
	}
	if master {
		prof.BroadcastParams = time.Since(start)
	}

	// ---- Step 4a: create data ------------------------------------------
	// Broadcast class labels and the cleaned matrix, then build the
	// per-rank preparation (rank transforms, observed statistics, order).
	// The matrix travels as ONE contiguous buffer plus its dimensions —
	// a single broadcast where the slice-of-slices form needed a payload
	// per row header on a real interconnect.  This is the allocation the
	// paper's "create data" section times.
	start = time.Now()
	classlabel = mpi.Bcast(c, 0, classlabel)
	x = mpi.Bcast(c, 0, x)
	design, err := stat.NewDesign(cfg.test, classlabel)
	if err != nil {
		return nil, err
	}
	prep, err := maxt.NewPrepMatrix(x, design, cfg.side, cfg.nonpara)
	if err != nil {
		return nil, err
	}
	useComplete, totalB, err := planPermutations(cfg, design)
	if err != nil {
		return nil, err
	}
	if master {
		prof.CreateData = time.Since(start)
	}

	// ---- Step 4b: main kernel ------------------------------------------
	// Each rank derives its chunk (boundaries aligned to whole kernel
	// batches), forwards its generator to the chunk's first permutation
	// (Figure 2) and accumulates local counts in permutation batches.
	start = time.Now()
	batch := cfg.effectiveBatch()
	lo, hi := ChunkAligned(totalB, c.Size(), c.Rank(), batch)
	var gen perm.Generator
	switch {
	case useComplete:
		// Every rank builds the same generator, so the order knob (and
		// with it the delta fast path) applies identically across ranks.
		gen, err = cfg.completeGen(design)
		if err != nil {
			return nil, err
		}
	case cfg.fixedSeed:
		gen = perm.NewRandom(design, cfg.seed, totalB)
	default:
		gen = perm.NewStored(design, cfg.seed, totalB, lo, hi)
	}
	counts := maxt.NewCounts(prep.Rows())
	maxt.ProcessBatched(prep, gen, lo, hi, counts, nil, batch)
	kernel := time.Since(start)
	if master {
		prof.MainKernel = kernel
	}
	kernelMax := mpi.Allreduce(c, []int64{int64(kernel)}, maxInt64Op)

	// ---- Step 5: gather observations, compute p-values ------------------
	start = time.Now()
	raw, _ := mpi.Reduce(c, 0, counts.Raw, mpi.SumInt64)
	adj, _ := mpi.Reduce(c, 0, counts.Adj, mpi.SumInt64)
	bTot, _ := mpi.Reduce(c, 0, []int64{counts.B}, mpi.SumInt64)
	if !master {
		// ---- Step 6: free ----
		// Dynamically allocated memory is garbage collected; nothing to
		// return on workers.
		return nil, nil
	}
	merged := &maxt.Counts{Raw: raw, Adj: adj, B: bTot[0]}
	if merged.B != totalB {
		return nil, fmt.Errorf("core: reduced permutation count %d, want %d", merged.B, totalB)
	}
	final := maxt.Finalize(prep, merged)
	prof.ComputePValues = time.Since(start)

	return &Result{
		Stat:      final.Stat,
		RawP:      final.RawP,
		AdjP:      final.AdjP,
		Order:     final.Order,
		B:         final.B,
		Complete:  useComplete,
		NProcs:    c.Size(),
		Profile:   prof,
		KernelMax: time.Duration(kernelMax[0]),
	}, nil
}

// broadcastParams performs the Step 2 wire protocol and returns the
// resulting config on every rank.  Only the master knows the options at
// entry, so the protocol choice itself travels first.
func broadcastParams(c *mpi.Comm, cfg config) config {
	scalarProto := mpi.Bcast(c, 0, cfg.scalarParams)
	if scalarProto {
		// Ablation (future-work item 3): one scalar vector carries
		// everything.
		scal := mpi.Bcast(c, 0, cfg.toScalars())
		return configFromScalars(scal)
	}
	// Paper protocol: string lengths first, then concatenated strings,
	// then the scalar options.
	var msg paramsMsg
	if c.Rank() == 0 {
		test := cfg.test.String()
		side := cfg.side.String()
		fss := boolToYN(cfg.fixedSeed)
		np := boolToYN(cfg.nonpara)
		ord := cfg.order.String()
		msg.strLens = []int{len(test), len(side), len(fss), len(np), len(ord)}
		msg.strs = []byte(test + side + fss + np + ord)
		msg.scalars = []int64{cfg.b, int64(cfg.seed), cfg.maxComplete, int64(cfg.batch)}
	}
	lens := mpi.Bcast(c, 0, msg.strLens)
	strs := mpi.Bcast(c, 0, msg.strs)
	scal := mpi.Bcast(c, 0, msg.scalars)
	// Decode on every rank (the master decodes its own broadcast too,
	// which keeps all ranks on the identical code path).
	pos := 0
	next := func(n int) string { s := string(strs[pos : pos+n]); pos += n; return s }
	test, _ := stat.ParseTest(next(lens[0]))
	side, _ := maxt.ParseSide(next(lens[1]))
	fixed := next(lens[2]) == "y"
	nonpara := next(lens[3]) == "y"
	order, _ := parsePermOrder(next(lens[4]))
	return config{
		test: test, side: side, fixedSeed: fixed, nonpara: nonpara,
		b: scal[0], seed: uint64(scal[1]), maxComplete: scal[2],
		batch: int(scal[3]), order: order,
	}
}

// toScalars encodes the config as the scalar vector of the future-work
// ablation.
func (cfg config) toScalars() []int64 {
	return []int64{
		int64(cfg.test), int64(cfg.side), boolToInt64(cfg.fixedSeed),
		boolToInt64(cfg.nonpara), cfg.b, int64(cfg.seed), cfg.maxComplete,
		boolToInt64(cfg.scalarParams), int64(cfg.batch), int64(cfg.order),
	}
}

func configFromScalars(s []int64) config {
	return config{
		test:         stat.Test(s[0]),
		side:         maxt.Side(s[1]),
		fixedSeed:    s[2] != 0,
		nonpara:      s[3] != 0,
		b:            s[4],
		seed:         uint64(s[5]),
		maxComplete:  s[6],
		scalarParams: s[7] != 0,
		batch:        int(s[8]),
		order:        permOrder(s[9]),
	}
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func boolToYN(b bool) string {
	if b {
		return "y"
	}
	return "n"
}

func maxInt64Op(acc, in []int64) []int64 {
	for i := range acc {
		if in[i] > acc[i] {
			acc[i] = in[i]
		}
	}
	return acc
}

// PMaxT runs the parallel permutation testing function on nprocs goroutine
// ranks: the Go counterpart of
//
//	mpiexec -n nprocs R -f script_using_pmaxT.R
//
// The interface is identical to MaxT, which mirrors the paper's design goal
// of identical mt.maxT/pmaxT signatures.  Results are bit-identical to the
// serial run for every option combination and any nprocs.  nprocs <= 0
// selects runtime.GOMAXPROCS(0): every available CPU.
func PMaxT(x [][]float64, classlabel []int, nprocs int, opt Options) (*Result, error) {
	m, err := rowsInput(x)
	if err != nil {
		return nil, err
	}
	return PMaxTMatrix(m, classlabel, nprocs, opt)
}

// PMaxTMatrix is PMaxT on the flat matrix the engine computes on; x is not
// modified.
func PMaxTMatrix(x matrix.Matrix, classlabel []int, nprocs int, opt Options) (*Result, error) {
	if nprocs <= 0 {
		nprocs = runtime.GOMAXPROCS(0)
	}
	var res *Result
	err := sprintfw.Run(nprocs, Registry(), func(s *sprintfw.Session) error {
		out, err := s.Call(FunctionName, &job{x: x, classlabel: classlabel, opt: opt})
		if err != nil {
			return err
		}
		res = out.(*Result)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// MaxT is the serial baseline, equivalent to the original mt.maxT: the same
// computation without any communication steps.  Its profile reports zero
// broadcast time and the whole permutation loop as the main kernel.
func MaxT(x [][]float64, classlabel []int, opt Options) (*Result, error) {
	m, err := rowsInput(x)
	if err != nil {
		return nil, err
	}
	return MaxTMatrix(m, classlabel, opt)
}

// MaxTMatrix is MaxT on the flat matrix the engine computes on; x is not
// modified.
func MaxTMatrix(x matrix.Matrix, classlabel []int, opt Options) (*Result, error) {
	var prof Profile
	start := time.Now()
	cfg, err := parseOptions(opt)
	if err != nil {
		return nil, err
	}
	if cfg.mode == modeSequential {
		// Sequential runs need the supervised window loop (per-window
		// stopping decisions); delegate rather than silently running a
		// mode this fixed-work loop cannot honour.  Serial, like MaxT.
		return RunMatrix(x, classlabel, opt, RunControl{NProcs: 1})
	}
	if x.IsEmpty() {
		return nil, fmt.Errorf("core: empty input matrix")
	}
	clean := scrubNA(x, cfg.na)
	prof.PreProcessing = time.Since(start)

	start = time.Now()
	design, err := stat.NewDesign(cfg.test, classlabel)
	if err != nil {
		return nil, err
	}
	prep, err := maxt.NewPrepMatrix(clean, design, cfg.side, cfg.nonpara)
	if err != nil {
		return nil, err
	}
	useComplete, totalB, err := planPermutations(cfg, design)
	if err != nil {
		return nil, err
	}
	prof.CreateData = time.Since(start)

	start = time.Now()
	var gen perm.Generator
	switch {
	case useComplete:
		gen, err = cfg.completeGen(design)
		if err != nil {
			return nil, err
		}
	case cfg.fixedSeed:
		gen = perm.NewRandom(design, cfg.seed, totalB)
	default:
		gen = perm.NewStored(design, cfg.seed, totalB, 0, totalB)
	}
	counts := maxt.NewCounts(prep.Rows())
	maxt.ProcessBatched(prep, gen, 0, totalB, counts, nil, cfg.effectiveBatch())
	prof.MainKernel = time.Since(start)

	start = time.Now()
	final := maxt.Finalize(prep, counts)
	prof.ComputePValues = time.Since(start)

	return &Result{
		Stat:      final.Stat,
		RawP:      final.RawP,
		AdjP:      final.AdjP,
		Order:     final.Order,
		B:         final.B,
		Complete:  useComplete,
		NProcs:    1,
		Profile:   prof,
		KernelMax: prof.MainKernel,
	}, nil
}
