package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Transport wraps an http.RoundTripper with the fault schedule's
// cluster-RPC sites: "rpc.shard" (shard dispatch), "rpc.push" (dataset
// push), "rpc.ping" and "rpc.join" (membership), "rpc.lease" (shard
// lease heartbeats).  An error fault on the
// call site fails the round trip before it leaves (a partitioned
// worker); a delay fault stalls it; a corrupt or shortread fault on the
// "<site>.resp" sub-site (so "rpc.shard.resp:corrupt", or "rpc.shard*"
// covering both) mutates the RESPONSE body, which the coordinator's CRC
// check must catch.  With no injector installed the wrapper adds one
// atomic load per request.
type Transport struct {
	// Base performs the real round trips; nil uses
	// http.DefaultTransport.
	Base http.RoundTripper
}

// rpcSite classifies a request path into a fault site.
func rpcSite(req *http.Request) string {
	p := req.URL.Path
	switch {
	case strings.HasSuffix(p, "/cluster/v1/shards"):
		return "rpc.shard"
	case strings.HasSuffix(p, "/cluster/v1/ping"):
		return "rpc.ping"
	case strings.HasSuffix(p, "/cluster/v1/workers"):
		return "rpc.join"
	case strings.HasSuffix(p, "/cluster/v1/leases"):
		return "rpc.lease"
	case strings.HasSuffix(p, "/v1/datasets") && (req.Method == "PUT" || req.Method == "POST"):
		return "rpc.push"
	}
	return "rpc.other"
}

// RoundTrip implements http.RoundTripper.
func (t Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if current.Load() == nil {
		return base.RoundTrip(req)
	}
	site := rpcSite(req)
	if err := Before(site, req.URL.Host); err != nil {
		return nil, fmt.Errorf("faultinject: %s to %s: %w", site, req.URL.Host, err)
	}
	resp, err := base.RoundTrip(req)
	if err != nil || resp == nil || resp.Body == nil {
		return resp, err
	}
	// MutateRead decides AFTER the round trip whether this response's
	// body is corrupted; reading the body here is acceptable because the
	// hook only runs with an injector installed (tests).
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	mutated := MutateRead(site+".resp", body)
	resp.Body = io.NopCloser(bytes.NewReader(mutated))
	resp.ContentLength = int64(len(mutated))
	return resp, nil
}
