// Package faultinject is a seeded, deterministic fault plane for crash
// and corruption testing.  Production code consults it at two choke
// points — the durable file I/O layer (checkpoints, journal, dataset
// mirrors) and the cluster HTTP transport — through package-level hooks
// that compile to a nil-check when no injector is installed: the
// disabled hot path performs zero allocations (guarded by
// TestDisabledHooksZeroAlloc).
//
// An injector is configured from a compact spec string, typically via
// the pmaxtd -faults flag or the SPRINT_FAULTS environment variable:
//
//	seed=7;ckpt.write:corrupt:n=2;rpc.shard:error:p=0.3,count=5
//
// Each clause is site:mode[:param,param...].  Sites name the choke
// points ("ckpt.write", "ckpt.read", "journal.append",
// "journal.compact", "dataset.write", "dataset.read", "rpc.shard",
// "rpc.push", "rpc.ping", "rpc.join"); a trailing '*' matches a prefix
// ("rpc.*" partitions every cluster call).  Modes:
//
//	error     the operation fails with ErrInjected
//	diskfull  the operation fails with ErrDiskFull (wraps ErrInjected)
//	torn      a file write leaves a truncated body at the final path,
//	          then fails — the crash-mid-write a rename never allows
//	corrupt   one payload byte is flipped and the operation SUCCEEDS —
//	          silent corruption for the CRC read path to catch
//	shortread a file read returns a truncated payload
//	delay     the operation sleeps ms milliseconds, then proceeds
//
// Parameters: n=K fires on the Kth matching operation only; p=F fires
// each operation with probability F from the injector's seeded RNG;
// count=K caps total fires; ms=K sets the delay.  Without n or p a rule
// fires on every operation.  The same seed always yields the same fault
// schedule, which is what lets the chaos suite assert byte-identical
// results run after run.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every injected failure.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrDiskFull is the injected out-of-space failure (wraps ErrInjected).
var ErrDiskFull = fmt.Errorf("%w: no space left on device", ErrInjected)

// WriteFault classifies how a file write should be mutated.
type WriteFault int

const (
	// WriteOK leaves the write untouched.
	WriteOK WriteFault = iota
	// WriteTorn instructs the writer to leave the (already truncated)
	// payload at the FINAL path and fail — simulating a crash mid-write
	// on a pre-atomic-rename code path or a lying filesystem.
	WriteTorn
	// WriteCorrupt means a byte was flipped; the write should proceed
	// and succeed, leaving silent corruption for the read path.
	WriteCorrupt
)

type mode int

const (
	modeError mode = iota
	modeDiskFull
	modeTorn
	modeCorrupt
	modeShortRead
	modeDelay
)

var modeNames = map[string]mode{
	"error":     modeError,
	"diskfull":  modeDiskFull,
	"torn":      modeTorn,
	"corrupt":   modeCorrupt,
	"shortread": modeShortRead,
	"delay":     modeDelay,
}

func (m mode) String() string {
	for name, v := range modeNames {
		if v == m {
			return name
		}
	}
	return "?"
}

// rule is one parsed clause plus its firing state.
type rule struct {
	site   string // exact site, or prefix when star
	star   bool
	mode   mode
	n      int64 // fire on the Nth matching op only (0 = every op / p)
	p      float64
	count  int64 // max fires, 0 = unlimited
	ms     int64
	ops    int64 // matching operations seen
	fired  int64
	lastOp string
}

func (r *rule) matches(site string) bool {
	if r.star {
		return strings.HasPrefix(site, r.site)
	}
	return r.site == site
}

// Injector is a parsed fault schedule.  All methods are safe for
// concurrent use; firing decisions are serialised under one mutex so a
// given seed replays the same schedule regardless of goroutine count
// (per-site op ordering is what callers control for determinism).
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	seed  int64
	rules []*rule
	stats map[string]int64 // "site:mode" → fires
}

// Parse builds an injector from a spec string (see the package comment
// for the grammar).  An empty spec returns (nil, nil): no injector.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	inj := &Injector{seed: 1, stats: make(map[string]int64)}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q", v)
			}
			inj.seed = seed
			continue
		}
		parts := strings.SplitN(clause, ":", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("faultinject: clause %q wants site:mode[:params]", clause)
		}
		m, ok := modeNames[parts[1]]
		if !ok {
			return nil, fmt.Errorf("faultinject: unknown mode %q in %q", parts[1], clause)
		}
		r := &rule{site: parts[0], mode: m}
		if strings.HasSuffix(r.site, "*") {
			r.site, r.star = strings.TrimSuffix(r.site, "*"), true
		}
		if len(parts) == 3 {
			for _, kv := range strings.Split(parts[2], ",") {
				k, v, found := strings.Cut(kv, "=")
				if !found {
					return nil, fmt.Errorf("faultinject: parameter %q wants k=v", kv)
				}
				switch k {
				case "n":
					n, err := strconv.ParseInt(v, 10, 64)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("faultinject: bad n=%q", v)
					}
					r.n = n
				case "p":
					p, err := strconv.ParseFloat(v, 64)
					if err != nil || p < 0 || p > 1 {
						return nil, fmt.Errorf("faultinject: bad p=%q", v)
					}
					r.p = p
				case "count":
					c, err := strconv.ParseInt(v, 10, 64)
					if err != nil || c < 1 {
						return nil, fmt.Errorf("faultinject: bad count=%q", v)
					}
					r.count = c
				case "ms":
					ms, err := strconv.ParseInt(v, 10, 64)
					if err != nil || ms < 0 {
						return nil, fmt.Errorf("faultinject: bad ms=%q", v)
					}
					r.ms = ms
				default:
					return nil, fmt.Errorf("faultinject: unknown parameter %q", k)
				}
			}
		}
		inj.rules = append(inj.rules, r)
	}
	if len(inj.rules) == 0 {
		return nil, nil
	}
	inj.rng = rand.New(rand.NewSource(inj.seed))
	return inj, nil
}

// fire reports whether r triggers for this operation, updating its
// counters.  Callers hold inj.mu.
func (inj *Injector) fire(r *rule, site, detail string) bool {
	r.ops++
	if r.count > 0 && r.fired >= r.count {
		return false
	}
	switch {
	case r.n > 0:
		if r.ops != r.n {
			return false
		}
	case r.p > 0:
		if inj.rng.Float64() >= r.p {
			return false
		}
	}
	r.fired++
	r.lastOp = detail
	inj.stats[r.site+":"+r.mode.String()]++
	return true
}

// match returns the first firing rule for site whose mode the calling
// hook implements, or nil.  The mode filter keeps the hooks from
// consuming each other's rules: one durable write runs both Before and
// MutateWrite, and without the filter Before would burn a torn rule's
// n-th trigger while being unable to act on it.  Each rule therefore
// counts an operation exactly once, in the one hook that can fire it.
func (inj *Injector) match(site, detail string, want func(mode) bool) *rule {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, r := range inj.rules {
		if !want(r.mode) || !r.matches(site) {
			continue
		}
		if inj.fire(r, site, detail) {
			return r
		}
	}
	return nil
}

func beforeMode(m mode) bool { return m == modeError || m == modeDiskFull || m == modeDelay }
func writeMode(m mode) bool  { return m == modeTorn || m == modeCorrupt }
func readMode(m mode) bool   { return m == modeShortRead || m == modeCorrupt }

// Stats snapshots fires by "site:mode".
func (inj *Injector) Stats() map[string]int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[string]int64, len(inj.stats))
	for k, v := range inj.stats {
		out[k] = v
	}
	return out
}

// ---- global installation ------------------------------------------------

// current holds the installed injector; nil (the default) disables every
// hook at the cost of one atomic load.
var current atomic.Pointer[Injector]

// Setup parses spec and installs the result globally.  An empty spec
// uninstalls (equivalent to Disable).
func Setup(spec string) (*Injector, error) {
	inj, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	current.Store(inj)
	return inj, nil
}

// Install makes inj the active injector (nil disables).
func Install(inj *Injector) { current.Store(inj) }

// Disable uninstalls any active injector.
func Disable() { current.Store(nil) }

// Active reports whether an injector is installed.
func Active() bool { return current.Load() != nil }

// ---- hooks --------------------------------------------------------------

// Before consults the fault schedule ahead of an operation at site.
// It returns a non-nil error for error/diskfull faults, sleeps for
// delay faults, and returns nil otherwise.  With no injector installed
// it is a single atomic load.
func Before(site, detail string) error {
	inj := current.Load()
	if inj == nil {
		return nil
	}
	r := inj.match(site, detail, beforeMode)
	if r == nil {
		return nil
	}
	switch r.mode {
	case modeError:
		return fmt.Errorf("%w: %s %s", ErrInjected, site, detail)
	case modeDiskFull:
		return fmt.Errorf("%s %s: %w", site, detail, ErrDiskFull)
	case modeDelay:
		time.Sleep(time.Duration(r.ms) * time.Millisecond)
	}
	return nil
}

// MutateWrite consults the schedule for a file write at site.  Torn
// faults return a truncated copy plus WriteTorn; corrupt faults return
// a copy with one byte flipped plus WriteCorrupt; otherwise data is
// returned untouched.  The input slice is never modified.
func MutateWrite(site string, data []byte) ([]byte, WriteFault) {
	inj := current.Load()
	if inj == nil {
		return data, WriteOK
	}
	r := inj.match(site, "", writeMode)
	if r == nil {
		return data, WriteOK
	}
	switch r.mode {
	case modeTorn:
		return append([]byte(nil), data[:len(data)/2]...), WriteTorn
	case modeCorrupt:
		out := append([]byte(nil), data...)
		if len(out) > 0 {
			out[len(out)*2/3] ^= 0x40
		}
		return out, WriteCorrupt
	}
	return data, WriteOK
}

// MutateRead consults the schedule for a completed file read at site,
// returning a truncated copy for shortread faults and a byte-flipped
// copy for corrupt faults.  The input slice is never modified.
func MutateRead(site string, data []byte) []byte {
	inj := current.Load()
	if inj == nil {
		return data
	}
	r := inj.match(site, "", readMode)
	if r == nil {
		return data
	}
	switch r.mode {
	case modeShortRead:
		return data[:len(data)/2]
	case modeCorrupt:
		out := append([]byte(nil), data...)
		if len(out) > 0 {
			out[len(out)/3] ^= 0x40
		}
		return out
	}
	return data
}
