package faultinject

import (
	"errors"
	"testing"
)

func TestParseGrammar(t *testing.T) {
	inj, err := Parse("seed=7;ckpt.write:corrupt:n=2;rpc.*:error:p=0.3,count=5")
	if err != nil {
		t.Fatal(err)
	}
	if inj == nil || len(inj.rules) != 2 {
		t.Fatalf("injector %+v", inj)
	}
	if inj.seed != 7 {
		t.Fatalf("seed %d, want 7", inj.seed)
	}
	r := inj.rules[1]
	if !r.star || r.site != "rpc." || r.p != 0.3 || r.count != 5 {
		t.Fatalf("rule %+v", r)
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if inj, err := Parse(""); inj != nil || err != nil {
		t.Fatalf("empty spec: %v %v", inj, err)
	}
	if inj, err := Parse("seed=3"); inj != nil || err != nil {
		t.Fatalf("rule-less spec: %v %v", inj, err)
	}
	for _, bad := range []string{
		"ckpt.write",             // no mode
		"ckpt.write:explode",     // unknown mode
		"ckpt.write:error:n=0",   // n out of range
		"ckpt.write:error:p=1.5", // p out of range
		"ckpt.write:error:zz=1",  // unknown parameter
		"seed=x;a:error",         // bad seed
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
}

func TestNthOpAndCount(t *testing.T) {
	inj, err := Parse("ckpt.write:error:n=3")
	if err != nil {
		t.Fatal(err)
	}
	Install(inj)
	defer Disable()
	for i := 1; i <= 5; i++ {
		err := Before("ckpt.write", "")
		if (i == 3) != (err != nil) {
			t.Fatalf("op %d: err=%v", i, err)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: error %v does not wrap ErrInjected", i, err)
		}
	}
}

func TestProbabilisticScheduleIsDeterministic(t *testing.T) {
	schedule := func() []bool {
		inj, err := Parse("seed=42;rpc.shard:error:p=0.5")
		if err != nil {
			t.Fatal(err)
		}
		Install(inj)
		defer Disable()
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, Before("rpc.shard", "") != nil)
		}
		return out
	}
	a, b := schedule(), schedule()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times", fires, len(a))
	}
}

func TestMutateWriteTornAndCorrupt(t *testing.T) {
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}

	inj, _ := Parse("f:torn")
	Install(inj)
	out, fault := MutateWrite("f", data)
	if fault != WriteTorn || len(out) != 50 {
		t.Fatalf("torn: fault=%v len=%d", fault, len(out))
	}

	inj, _ = Parse("f:corrupt")
	Install(inj)
	out, fault = MutateWrite("f", data)
	Disable()
	if fault != WriteCorrupt || len(out) != len(data) {
		t.Fatalf("corrupt: fault=%v len=%d", fault, len(out))
	}
	diff := 0
	for i := range out {
		if out[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bytes, want 1", diff)
	}
	if data[66] != 66 {
		t.Fatal("MutateWrite modified the input slice")
	}
}

// TestHooksDoNotConsumeEachOthersRules pins the mode filter: one durable
// write runs Before and then MutateWrite, and a torn rule's n=1 trigger
// must fire in MutateWrite — not be burned by Before, which cannot act
// on it.
func TestHooksDoNotConsumeEachOthersRules(t *testing.T) {
	inj, err := Parse("f:torn:n=1")
	if err != nil {
		t.Fatal(err)
	}
	Install(inj)
	defer Disable()
	if err := Before("f", ""); err != nil {
		t.Fatalf("Before fired a torn rule: %v", err)
	}
	if _, fault := MutateWrite("f", []byte("abcdef")); fault != WriteTorn {
		t.Fatalf("torn rule did not reach MutateWrite (fault %v)", fault)
	}
}

// TestDisabledHooksZeroAlloc is the acceptance guard for the disabled
// fast path: with no injector installed every hook must be a nil check,
// free of allocation, so production binaries pay nothing for the fault
// plane.
func TestDisabledHooksZeroAlloc(t *testing.T) {
	Disable()
	buf := []byte("payload")
	if n := testing.AllocsPerRun(1000, func() {
		_ = Before("ckpt.write", "x")
		_, _ = MutateWrite("ckpt.write", buf)
		_ = MutateRead("ckpt.read", buf)
	}); n != 0 {
		t.Fatalf("disabled hooks allocate %.1f per op, want 0", n)
	}
}

func TestStats(t *testing.T) {
	inj, err := Parse("a:error;b:delay:ms=0")
	if err != nil {
		t.Fatal(err)
	}
	Install(inj)
	defer Disable()
	Before("a", "")
	Before("a", "")
	Before("b", "")
	st := inj.Stats()
	if st["a:error"] != 2 || st["b:delay"] != 1 {
		t.Fatalf("stats %v", st)
	}
}
