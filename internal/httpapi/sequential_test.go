package httpapi

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"sprint/internal/core"
	"sprint/internal/jobs"
	"sprint/internal/microarray"
)

func seqDataset(t *testing.T) *microarray.Dataset {
	t.Helper()
	data, err := microarray.Generate(microarray.GenOptions{
		Genes: 120, Samples: 24, Classes: 2,
		DiffFraction: 0.05, EffectSize: 2.5, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSequentialOverHTTP drives the mode end to end through the API:
// submit with mode/target_alpha/p_tolerance, watch the status expose the
// mode and savings, and read back a result whose metadata and p-values
// match a direct engine run bit for bit.
func TestSequentialOverHTTP(t *testing.T) {
	data := seqDataset(t)
	_, ts := newTestServer(t, jobs.Config{})
	const (
		b     = int64(40000)
		every = int64(2048)
		alpha = 0.05
		tol   = 0.02
	)

	body, err := json.Marshal(map[string]any{
		"dataset": map[string]any{"x": data.X, "labels": data.Labels},
		"options": map[string]any{
			"b": b, "seed": 13,
			"mode":         "sequential",
			"target_alpha": alpha,
			"p_tolerance":  tol,
		},
		"nprocs":           2,
		"checkpoint_every": every,
	})
	if err != nil {
		t.Fatal(err)
	}
	var st StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &st); code != http.StatusAccepted {
		t.Fatalf("submit code %d (%+v)", code, st)
	}
	if st.Mode != core.ModeSequential {
		t.Fatalf("submit status mode %q, want sequential", st.Mode)
	}
	fin := pollTerminal(t, ts.URL, st.ID)
	if fin.State != "done" {
		t.Fatalf("final status %+v", fin)
	}
	if fin.Mode != core.ModeSequential || fin.SeqPermsSaved <= 0 || fin.SeqActiveRows != 0 {
		t.Fatalf("final sequential status: mode=%q saved=%d active=%d",
			fin.Mode, fin.SeqPermsSaved, fin.SeqActiveRows)
	}
	// An early-stopped job deliberately reads as done < total — the
	// savings are visible, not silently renormalised away.
	if fin.Total != b || fin.Done <= 0 || fin.Done > b {
		t.Fatalf("finished sequential job reports done=%d total=%d, want done in (0,%d] of total %d",
			fin.Done, fin.Total, b, b)
	}

	var res struct {
		RawP       []*float64 `json:"raw_p"`
		AdjP       []*float64 `json:"adj_p"`
		B          int64      `json:"b"`
		Mode       string     `json:"mode"`
		PlannedB   int64      `json:"planned_b"`
		BEffective []int64    `json:"b_effective"`
		PermsSaved int64      `json:"perms_saved"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result code %d", code)
	}

	opt := core.DefaultOptions()
	opt.B = b
	opt.Seed = 13
	opt.Mode = core.ModeSequential
	opt.SeqAlpha = alpha
	opt.SeqTolerance = tol
	want, err := core.Run(data.X, data.Labels, opt, core.RunControl{NProcs: 2, Every: every})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != core.ModeSequential || res.PlannedB != b || res.B != want.B {
		t.Fatalf("result metadata: mode=%q plannedB=%d B=%d, want sequential %d %d",
			res.Mode, res.PlannedB, res.B, b, want.B)
	}
	if res.PermsSaved != want.SeqPermsSaved() {
		t.Fatalf("perms_saved = %d, want %d", res.PermsSaved, want.SeqPermsSaved())
	}
	if len(res.BEffective) != len(want.BEff) {
		t.Fatalf("b_effective has %d rows, want %d", len(res.BEffective), len(want.BEff))
	}
	for i, be := range want.BEff {
		if res.BEffective[i] != be {
			t.Fatalf("b_effective[%d] = %d, want %d", i, res.BEffective[i], be)
		}
	}
	for i := range want.RawP {
		if math.IsNaN(want.RawP[i]) {
			continue
		}
		if res.RawP[i] == nil || math.Float64bits(*res.RawP[i]) != math.Float64bits(want.RawP[i]) {
			t.Fatalf("raw_p[%d] not bit-identical to the engine run", i)
		}
		if res.AdjP[i] == nil || math.Float64bits(*res.AdjP[i]) != math.Float64bits(want.AdjP[i]) {
			t.Fatalf("adj_p[%d] not bit-identical to the engine run", i)
		}
	}
}

// TestExactStatusOmitsSequentialFields: exact jobs must not grow new JSON
// fields — the wire format stays byte-compatible with pre-mode clients.
func TestExactStatusOmitsSequentialFields(t *testing.T) {
	data := testDataset(t)
	_, ts := newTestServer(t, jobs.Config{})
	var st StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, data, 400, 1, 100), &st); code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	pollTerminal(t, ts.URL, st.ID)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"mode", "seq_active_rows", "seq_perms_saved"} {
		if _, ok := raw[field]; ok {
			t.Fatalf("exact job status leaks %q", field)
		}
	}

	resp2, err := http.DefaultClient.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var rawRes map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&rawRes); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"mode", "planned_b", "b_effective", "perms_saved"} {
		if _, ok := rawRes[field]; ok {
			t.Fatalf("exact job result leaks %q", field)
		}
	}
}

// TestSequentialSubmitValidation: broken stopping knobs are a 400 at
// submission, not a failed job later.
func TestSequentialSubmitValidation(t *testing.T) {
	data := seqDataset(t)
	_, ts := newTestServer(t, jobs.Config{})
	for _, opts := range []map[string]any{
		{"b": 1000, "mode": "adaptive"},
		{"b": 1000, "mode": "sequential", "target_alpha": 1.5},
		{"b": 1000, "mode": "sequential", "p_tolerance": 0.9},
		{"b": 0, "mode": "sequential"}, // complete enumeration
	} {
		body, err := json.Marshal(map[string]any{
			"dataset": map[string]any{"x": data.X, "labels": data.Labels},
			"options": opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &e); code != http.StatusBadRequest {
			t.Fatalf("options %v: code %d (%+v), want 400", opts, code, e)
		}
	}
}
