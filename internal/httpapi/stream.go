package httpapi

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"unsafe"
)

// This file owns how request bodies enter the server: optional gzip
// transport compression (with the decompressed size bounded, so a tiny
// compressed body cannot balloon past MaxBodyBytes), and a streaming JSON
// decoder for submissions.  The streaming decoder exists to bound peak
// memory: encoding/json's Decode buffers the ENTIRE value being decoded,
// so a 120 MB x_flat submission used to hold the body text AND the float
// slice in memory at once.  Here the envelope is walked token by token,
// matrix rows decode one row at a time, and the x_flat array — the bulk
// of a large body — is consumed by a byte-level scanner that parses
// numbers straight off the wire: peak memory is the decoded values plus a
// fixed read buffer, whatever the body size.

// errUnsupportedEncoding rejects Content-Encoding values other than
// identity and gzip.
var errUnsupportedEncoding = errors.New("httpapi: unsupported content encoding (want identity or gzip)")

// errDecompressedTooLarge rejects gzip bodies whose decompressed size
// exceeds the configured body limit.
var errDecompressedTooLarge = errors.New("httpapi: decompressed body exceeds the size limit")

// boundedReader errors once more than limit bytes have been read — the
// decompressed-side counterpart of http.MaxBytesReader.
type boundedReader struct {
	r    io.Reader
	left int64
}

func (b *boundedReader) Read(p []byte) (int, error) {
	if b.left < 0 {
		return 0, errDecompressedTooLarge
	}
	if int64(len(p)) > b.left+1 {
		p = p[:b.left+1] // allow one byte over to distinguish EOF from overflow
	}
	n, err := b.r.Read(p)
	b.left -= int64(n)
	if b.left < 0 {
		return n, errDecompressedTooLarge
	}
	return n, err
}

// requestBody wraps a request body with the server's size bound and the
// transport decoding the client chose.  The returned ReadCloser must be
// closed by the caller.
func (s *Server) requestBody(w http.ResponseWriter, r *http.Request) (io.ReadCloser, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	switch r.Header.Get("Content-Encoding") {
	case "", "identity":
		return r.Body, nil
	case "gzip":
		zr, err := gzip.NewReader(r.Body)
		if err != nil {
			return nil, fmt.Errorf("httpapi: gzip body: %w", err)
		}
		return struct {
			io.Reader
			io.Closer
		}{&boundedReader{r: zr, left: s.maxBody}, zr}, nil
	default:
		return nil, errUnsupportedEncoding
	}
}

// writeBodyError maps body-layer failures onto their status codes.
func writeBodyError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
	case errors.Is(err, errDecompressedTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, err)
	case errors.Is(err, errUnsupportedEncoding):
		writeError(w, http.StatusUnsupportedMediaType, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// submitDecoder walks a submission body.  It is a json.Decoder for the
// envelope, with one twist: when it reaches the x_flat array it takes the
// raw byte stream over from the decoder, scans the floats directly, and
// then REBUILDS the decoder positioned where it left off — json.Decoder
// cannot resume mid-object, so the remainder is re-entered through a tiny
// synthetic prefix that reopens the two enclosing objects.
type submitDecoder struct {
	raw   io.Reader // the reader the CURRENT dec was constructed over
	dec   *json.Decoder
	depth int // open objects enclosing the current value
}

func newSubmitDecoder(r io.Reader) *submitDecoder {
	sd := &submitDecoder{raw: r, dec: json.NewDecoder(r)}
	sd.dec.DisallowUnknownFields()
	return sd
}

// takeover returns the raw unconsumed byte stream: whatever the decoder
// read ahead, then the rest of the body.  The current decoder must not be
// used after this.
func (sd *submitDecoder) takeover() io.Reader {
	return io.MultiReader(sd.dec.Buffered(), sd.raw)
}

// resume rebuilds the decoder over rem, which must sit just after a
// value at the current object depth with any following ',' already
// consumed.  A synthetic prefix re-enters the enclosing objects (`{"r":{`
// for an x_flat inside a submission, `{` inside a bare dataset upload),
// so the fresh decoder's token state matches where the scan stopped —
// whatever the key order around x_flat was.
func (sd *submitDecoder) resume(rem io.Reader) error {
	prefix := strings.Repeat(`{"r":`, sd.depth-1) + "{"
	raw := io.MultiReader(strings.NewReader(prefix), rem)
	dec := json.NewDecoder(raw)
	dec.DisallowUnknownFields()
	for i := 0; i < 2*(sd.depth-1)+1; i++ { // consume '{' ("r" '{')...
		if _, err := dec.Token(); err != nil {
			return fmt.Errorf("resuming after x_flat: %w", err)
		}
	}
	sd.raw, sd.dec = raw, dec
	return nil
}

// DecodeSubmit decodes a POST /v1/jobs body from the stream.  It accepts
// exactly what a buffered decoder accepts — unknown fields are errors,
// null matrix fields mean absent — but never materialises the body text.
// Exported for the ingest benchmarks, which compare it against the binary
// codec.
func DecodeSubmit(r io.Reader) (*SubmitRequest, error) {
	sd := newSubmitDecoder(r)
	req := &SubmitRequest{}
	err := sd.decodeObject(func(key string) error {
		switch key {
		case "dataset":
			return sd.decodeDataset(&req.Dataset)
		case "options":
			return sd.dec.Decode(&req.Options)
		case "nprocs":
			return sd.dec.Decode(&req.NProcs)
		case "checkpoint_every":
			return sd.dec.Decode(&req.CheckpointEvery)
		case "class":
			return sd.dec.Decode(&req.Class)
		default:
			return fmt.Errorf("unknown field %q", key)
		}
	})
	if err != nil {
		return nil, err
	}
	return req, nil
}

// decodeDataset streams one DatasetJSON object (or null).
func (sd *submitDecoder) decodeDataset(d *DatasetJSON) error {
	return sd.decodeObject(func(key string) error {
		switch key {
		case "x":
			return sd.decodeRows(&d.X)
		case "x_flat":
			return sd.decodeFlat(d, &d.XFlat)
		case "genes":
			return sd.dec.Decode(&d.Genes)
		case "samples":
			return sd.dec.Decode(&d.Samples)
		case "dataset_id":
			return sd.dec.Decode(&d.DatasetID)
		case "labels":
			return sd.dec.Decode(&d.Labels)
		default:
			return fmt.Errorf("unknown dataset field %q", key)
		}
	})
}

// decodeObject consumes one JSON object (or null), dispatching each key
// to field.  The callback must consume exactly the key's value; it may
// swap sd.dec (the x_flat takeover), which is why the loop re-reads
// sd.dec every iteration.
func (sd *submitDecoder) decodeObject(field func(key string) error) error {
	tok, err := sd.dec.Token()
	if err != nil {
		return err
	}
	if tok == nil {
		return nil // null: conventional absent-object behaviour
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("expected a JSON object, got %v", tok)
	}
	sd.depth++
	defer func() { sd.depth-- }()
	for sd.dec.More() {
		keyTok, err := sd.dec.Token()
		if err != nil {
			return err
		}
		key, ok := keyTok.(string)
		if !ok {
			return fmt.Errorf("expected an object key, got %v", keyTok)
		}
		if err := field(key); err != nil {
			return err
		}
	}
	_, err = sd.dec.Token() // consume '}'
	return err
}

// decodeRows streams an array of matrix rows, decoding one row at a time:
// the decoder's internal buffer holds a single row's text, not the
// matrix's.
func (sd *submitDecoder) decodeRows(out *Matrix) error {
	tok, err := sd.dec.Token()
	if err != nil {
		return err
	}
	if tok == nil {
		return nil // "x": null means absent
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("x: expected an array of rows, got %v", tok)
	}
	rows := make([][]float64, 0, 64)
	for sd.dec.More() {
		var row Floats
		if err := sd.dec.Decode(&row); err != nil {
			return fmt.Errorf("x: row %d: %w", len(rows), err)
		}
		rows = append(rows, row)
	}
	if _, err := sd.dec.Token(); err != nil { // consume ']'
		return err
	}
	*out = rows
	return nil
}

// decodeFlat consumes the x_flat value through the raw-stream scanner:
// numbers (and null cells) parse straight off the wire into the slice,
// allocating nothing per cell.  When the shape fields arrived before the
// array (the common key order), the slice is sized once up front.
func (sd *submitDecoder) decodeFlat(d *DatasetJSON, out *Floats) error {
	br := bufio.NewReader(sd.takeover())
	// The hint comes from client-controlled fields, so it bounds nothing
	// by itself: a 60-byte body claiming genes=samples=4e6 must not make
	// the server attempt a 140 TB allocation.  Cap the preallocation at
	// maxFlatHint cells (32 MB) — larger matrices just take the amortised
	// append-growth path — and compute the product in 64 bits so it
	// cannot wrap.
	const maxFlatHint = 1 << 22
	hint := 0
	if d.Genes > 0 && d.Samples > 0 && d.Genes <= maxFlatHint && d.Samples <= maxFlatHint {
		// Both factors are bounded, so the 64-bit product cannot wrap.
		if cells := int64(d.Genes) * int64(d.Samples); cells <= maxFlatHint {
			hint = int(cells)
		} else {
			hint = maxFlatHint
		}
	}
	vals, absent, err := scanFlat(br, hint)
	if err != nil {
		return fmt.Errorf("x_flat: %w", err)
	}
	if !absent {
		*out = vals
	}
	return sd.resume(br)
}

// flatWindow is the Peek window of the x_flat scanner.  It bounds both
// the scan granularity and the longest single number token accepted.
const flatWindow = 4096

// isJSONSpace reports JSON's four whitespace bytes.
func isJSONSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// flatScanner walks br through windowed Peek/Discard so the hot loop
// runs over a plain byte slice instead of per-byte reader calls.
type flatScanner struct {
	br  *bufio.Reader
	win []byte // current Peek window
	i   int    // cursor within win
	err error  // sticky underlying read error (nil for plain EOF)
}

// slide discards the consumed prefix and re-peeks.  Returns false at the
// true end of stream.
func (fs *flatScanner) slide() bool {
	fs.br.Discard(fs.i)
	fs.i = 0
	var err error
	fs.win, err = fs.br.Peek(flatWindow) // short windows are fine; len decides
	if err != nil && err != io.EOF {
		fs.err = err // e.g. the decompressed-size bound: must not become EOF
	}
	return len(fs.win) > 0
}

// eof converts exhaustion into the underlying cause when there is one.
func (fs *flatScanner) eof() error {
	if fs.err != nil {
		return fs.err
	}
	return io.ErrUnexpectedEOF
}

// next returns the first non-whitespace byte at or after the cursor
// without consuming it.
func (fs *flatScanner) next() (byte, error) {
	for {
		for fs.i < len(fs.win) {
			if c := fs.win[fs.i]; !isJSONSpace(c) {
				return c, nil
			}
			fs.i++
		}
		if !fs.slide() {
			return 0, fs.eof()
		}
	}
}

// lit consumes an exact literal.
func (fs *flatScanner) lit(s string) error {
	for fs.i+len(s) > len(fs.win) {
		if !fs.slide() {
			return fs.eof()
		}
		if len(fs.win) < len(s) && fs.i == 0 {
			return fmt.Errorf("expected %q", s)
		}
	}
	if string(fs.win[fs.i:fs.i+len(s)]) != s {
		return fmt.Errorf("expected %q", s)
	}
	fs.i += len(s)
	return nil
}

// isJSONNumber validates b against RFC 8259's number grammar.  The guard
// matters because the token is handed to strconv.ParseFloat, which also
// accepts "NaN", "Infinity", hex floats and digit underscores — inputs
// the buffered json decoder (and this decoder's documented contract)
// must reject.
func isJSONNumber(b []byte) bool {
	i := 0
	if i < len(b) && b[i] == '-' {
		i++
	}
	digit := func(c byte) bool { return c >= '0' && c <= '9' }
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && digit(b[i]):
		for i < len(b) && digit(b[i]) {
			i++
		}
	default:
		return false
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || !digit(b[i]) {
			return false
		}
		for i < len(b) && digit(b[i]) {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || !digit(b[i]) {
			return false
		}
		for i < len(b) && digit(b[i]) {
			i++
		}
	}
	return i == len(b)
}

// number consumes one number token (cursor on its first byte) and parses
// it.  The token view is handed to ParseFloat without a string copy;
// ParseFloat does not retain it past the call.
func (fs *flatScanner) number() (float64, error) {
	j := fs.i
	for {
		for j < len(fs.win) {
			if c := fs.win[j]; c == ',' || c == ']' || isJSONSpace(c) {
				tok := fs.win[fs.i:j]
				if !isJSONNumber(tok) {
					return 0, fmt.Errorf("invalid JSON number %q", tok)
				}
				v, err := strconv.ParseFloat(unsafe.String(&fs.win[fs.i], j-fs.i), 64)
				fs.i = j
				return v, err
			}
			j++
		}
		// The token reaches the window edge: slide it to the window start
		// and extend.  A token the size of the whole window is rejected —
		// no real float64 is 4 KB of text.
		if fs.i == 0 && len(fs.win) == flatWindow {
			return 0, fmt.Errorf("number token exceeds %d bytes", flatWindow)
		}
		j -= fs.i
		if !fs.slide() {
			return 0, fs.eof()
		}
		if j >= len(fs.win) { // EOF inside the token: unterminated array
			return 0, fs.eof()
		}
	}
}

// finish positions br for resume: the consumed prefix is discarded, and
// one following ',' (if the enclosing object continues) is swallowed so
// the resume prefix concatenates cleanly.
func (fs *flatScanner) finish() error {
	c, err := fs.next()
	if err != nil {
		return err
	}
	if c == ',' {
		fs.i++
	}
	fs.br.Discard(fs.i)
	fs.i = 0
	fs.win = nil
	return nil
}

// scanFlat reads one JSON array of numbers/nulls (or the literal null,
// reported via absent) from br — positioned at the ':' after the x_flat
// key, which the takeover leaves unconsumed — then consumes a trailing
// ',' if one follows, leaving br exactly where resume needs it.  sizeHint
// (0 = unknown) pre-sizes the slice so the usual genes×samples payload
// costs one allocation.
func scanFlat(br *bufio.Reader, sizeHint int) (vals Floats, absent bool, err error) {
	fs := &flatScanner{br: br}
	c, err := fs.next()
	if err != nil {
		return nil, false, err
	}
	if c != ':' {
		return nil, false, fmt.Errorf("expected ':' after the key, got %q", c)
	}
	fs.i++
	c, err = fs.next()
	if err != nil {
		return nil, false, err
	}
	if c == 'n' {
		if err := fs.lit("null"); err != nil {
			return nil, false, err
		}
		return nil, true, fs.finish()
	}
	if c != '[' {
		return nil, false, fmt.Errorf("expected an array of numbers")
	}
	fs.i++
	if sizeHint > 0 {
		vals = make(Floats, 0, sizeHint)
	} else {
		vals = make(Floats, 0, 1024)
	}
	c, err = fs.next()
	if err != nil {
		return nil, false, err
	}
	if c == ']' {
		fs.i++
		return vals, false, fs.finish()
	}
	for {
		c, err = fs.next()
		if err != nil {
			return nil, false, err
		}
		if c == 'n' {
			if err := fs.lit("null"); err != nil {
				return nil, false, err
			}
			vals = append(vals, math.NaN())
		} else {
			v, err := fs.number()
			if err != nil {
				return nil, false, fmt.Errorf("cell %d: %w", len(vals), err)
			}
			vals = append(vals, v)
		}
		c, err = fs.next()
		if err != nil {
			return nil, false, err
		}
		fs.i++
		switch c {
		case ',':
		case ']':
			return vals, false, fs.finish()
		default:
			return nil, false, fmt.Errorf("cell %d: expected ',' or ']', got %q", len(vals), c)
		}
	}
}

// decodeDatasetUpload streams a PUT /v1/datasets JSON body: a bare
// DatasetJSON object, with the same row- and flat-streaming behaviour as
// a submission's dataset block.
func decodeDatasetUpload(r io.Reader) (DatasetJSON, error) {
	sd := newSubmitDecoder(r)
	var d DatasetJSON
	if err := sd.decodeDataset(&d); err != nil {
		return DatasetJSON{}, err
	}
	return d, nil
}
