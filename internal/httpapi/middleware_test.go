package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sprint/internal/jobs"
	"sprint/internal/metrics"
)

func TestRequestIDMiddleware(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{})

	// A client-supplied id is propagated back verbatim.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "cafebabe00000001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "cafebabe00000001" {
		t.Fatalf("echoed request id %q", got)
	}

	// Without one, the server mints a 16-hex-char id.
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rid := resp.Header.Get("X-Request-Id")
	if len(rid) != 16 {
		t.Fatalf("generated request id %q, want 16 hex chars", rid)
	}
	if _, err := strconv.ParseUint(rid, 16, 64); err != nil {
		t.Fatalf("generated request id %q is not hex", rid)
	}
}

// TestStructuredRequestLog asserts the slog line carries the fields the
// operators grep by: request id, tenant, route, status, duration.
func TestStructuredRequestLog(t *testing.T) {
	var buf bytes.Buffer
	srv, err := New(Config{
		Jobs:   jobs.Config{Workers: 1},
		Logger: slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "feedface00000002")
	req.Header.Set("X-Tenant", "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var line map[string]any
	dec := json.NewDecoder(&buf)
	found := false
	for dec.More() {
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line["msg"] == "http_request" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no http_request log line")
	}
	if line["request_id"] != "feedface00000002" || line["tenant"] != "acme" ||
		line["route"] != "/v1/healthz" || line["status"] != float64(200) {
		t.Fatalf("log line %v", line)
	}
	if _, ok := line["duration"]; !ok {
		t.Fatalf("log line misses duration: %v", line)
	}
}

// TestMetricsEndpoint scrapes /metrics after traffic and lints the
// exposition: the serving-plane families must be present and valid.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{})

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// One 404 feeds the 4xx counter of the jobs route.
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	if problems := metrics.Lint(strings.NewReader(text)); len(problems) != 0 {
		t.Fatalf("exposition lint: %v", problems)
	}
	for _, want := range []string{
		`http_requests_total{code="2xx",route="/v1/healthz"} 3`,
		`http_requests_total{code="4xx",route="/v1/jobs/{id}"} 1`,
		`# TYPE http_request_seconds histogram`,
		`# TYPE queue_depth gauge`,
		`# TYPE jobs_submitted_total counter`,
		`# TYPE jobs_shed_total counter`,
		`# TYPE kernel_window_seconds histogram`,
		`# TYPE dataset_hits_total counter`,
		`workers 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMiddlewareLatencyBuckets: every served request lands in the route's
// histogram, cumulative buckets terminating at +Inf == count.
func TestMiddlewareLatencyBuckets(t *testing.T) {
	srv, ts := newTestServer(t, jobs.Config{})
	const hits = 5
	for i := 0; i < hits; i++ {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	h := srv.Metrics().Histogram("http_request_seconds", nil, "route", "/v1/healthz")
	if got := h.Count(); got != hits {
		t.Fatalf("histogram count = %d, want %d", got, hits)
	}
	// A healthz round-trip is far under the top finite bucket, so the
	// quantile estimate must stay inside the bucket range.
	if q := h.Quantile(0.99); q <= 0 || q > 60 {
		t.Fatalf("p99 = %v", q)
	}

	// Scrape view agrees: +Inf bucket == _count for the route.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	wantInf := fmt.Sprintf(`http_request_seconds_bucket{route="/v1/healthz",le="+Inf"} %d`, hits)
	wantCount := fmt.Sprintf(`http_request_seconds_count{route="/v1/healthz"} %d`, hits)
	for _, want := range []string{wantInf, wantCount} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestRateLimitedSubmission: a throttled tenant gets 429 with a
// Retry-After header and the shed shows up in /v1/stats.
func TestRateLimitedSubmission(t *testing.T) {
	data := testDataset(t)
	_, ts := newTestServer(t, jobs.Config{
		TenantLimits: jobs.TenantLimits{Default: jobs.TenantLimit{Rate: 0.001, Burst: 1}},
	})

	submit := func(b int64) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
			bytes.NewReader(submitBody(t, data, b, 1, 0)))
		req.Header.Set("X-Tenant", "hammer")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := submit(50)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission code %d", resp.StatusCode)
	}
	resp = submit(60)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submission code %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q", ra)
	}
	var e map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e["reason"] != "rate_limited" {
		t.Fatalf("shed body %v", e)
	}

	var st jobs.Stats
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats code %d", code)
	}
	if st.ShedRateLimited != 1 || st.TenantsActive != 1 {
		t.Fatalf("stats %+v", st)
	}
	found := false
	for _, ten := range st.Tenants {
		if ten.Tenant == "hammer" && ten.Admitted == 1 && ten.Throttled == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("tenant stats %v", st.Tenants)
	}
}

// TestStatsSchemaStable: the pre-observability field names survive, the
// new plane appears, both through the public JSON surface.
func TestStatsSchemaStable(t *testing.T) {
	data := testDataset(t)
	_, ts := newTestServer(t, jobs.Config{})

	var st StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, data, 200, 1, 0), &st); code != http.StatusAccepted {
		t.Fatalf("submit code %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var s StatusJSON
		doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, nil, &s)
		if s.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", s.State)
		}
		time.Sleep(time.Millisecond)
	}

	var raw map[string]any
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &raw); code != http.StatusOK {
		t.Fatalf("stats code %d", code)
	}
	// The original schema, by exact name.
	for _, key := range []string{
		"submitted", "completed", "failed", "cancelled", "cache_hits",
		"resumed", "queued", "running", "queue_cap", "workers", "jobs",
		"cached_results", "checkpoints", "datasets_added", "datasets",
		"dataset_bytes", "prep_builds", "prep_hits", "kernel", "perm_order",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("stats lost field %q", key)
		}
	}
	// The admission/observability plane.
	for _, key := range []string{
		"queue_policy", "queued_interactive", "queued_bulk",
		"shed_queue_full", "shed_queue_wait", "shed_rate_limited",
		"queue_wait_interactive", "queue_wait_bulk", "drain_rate_per_sec",
		"cache_hit_rate", "prep_hit_rate", "dataset_hits",
		"dataset_reloads", "dataset_evictions", "tenants_active",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("stats missing new field %q", key)
		}
	}
	if raw["queue_policy"] != "fair" {
		t.Errorf("queue_policy = %v", raw["queue_policy"])
	}
	if raw["submitted"] != float64(1) || raw["completed"] != float64(1) {
		t.Errorf("counters %v / %v", raw["submitted"], raw["completed"])
	}
	qw, ok := raw["queue_wait_interactive"].(map[string]any)
	if !ok || qw["count"] != float64(1) {
		t.Errorf("queue_wait_interactive = %v", raw["queue_wait_interactive"])
	}
}

// TestJobStatusCarriesTenantAndClass: the submit response reports the
// admission identity.
func TestJobStatusCarriesTenantAndClass(t *testing.T) {
	data := testDataset(t)
	_, ts := newTestServer(t, jobs.Config{})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		bytes.NewReader(submitBody(t, data, 100, 1, 0)))
	req.Header.Set("X-Tenant", "team-a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "team-a" || st.Class != "interactive" {
		t.Fatalf("status tenant/class = %q/%q", st.Tenant, st.Class)
	}
}
