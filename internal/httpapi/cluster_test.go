package httpapi

import (
	"encoding/json"
	"net/http"
	"testing"

	"sprint/internal/cluster"
	"sprint/internal/jobs"
)

// statsPinnedFields is every /v1/stats field name shipped before the
// cluster extension.  Renaming or dropping any of these breaks
// dashboards; this test pins them.
var statsPinnedFields = []string{
	"submitted", "completed", "failed", "cancelled", "cache_hits",
	"resumed", "queued", "running", "queue_cap", "workers", "jobs",
	"cached_results", "checkpoints", "datasets_added", "datasets",
	"dataset_bytes", "prep_builds", "prep_hits", "kernel", "perm_order",
	"queue_policy", "queued_interactive", "queued_bulk",
	"shed_queue_full", "shed_queue_wait", "shed_rate_limited",
	"queue_wait_interactive", "queue_wait_bulk", "drain_rate_per_sec",
	"cache_hit_rate", "prep_hit_rate", "dataset_hits", "dataset_reloads",
	"dataset_evictions", "tenants_active",
}

func getDoc(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestStatsFieldNamesPinned: the cluster extension of /v1/stats is
// strictly additive — every pre-cluster field name survives, and a
// standalone daemon reports role "standalone" with no cluster object.
func TestStatsFieldNamesPinned(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{})
	doc := getDoc(t, ts.URL+"/v1/stats")
	for _, f := range statsPinnedFields {
		if _, ok := doc[f]; !ok {
			t.Errorf("/v1/stats lost pinned field %q", f)
		}
	}
	if doc["role"] != "standalone" {
		t.Errorf("standalone role = %v", doc["role"])
	}
	if _, ok := doc["cluster"]; ok {
		t.Error("standalone /v1/stats carries a cluster object")
	}

	hz := getDoc(t, ts.URL+"/v1/healthz")
	for _, f := range []string{"status", "uptime_s"} {
		if _, ok := hz[f]; !ok {
			t.Errorf("/v1/healthz lost pinned field %q", f)
		}
	}
	if hz["role"] != "standalone" || hz["status"] != "ok" {
		t.Errorf("healthz role/status = %v/%v", hz["role"], hz["status"])
	}
}

// TestStatsClusterFields: a daemon with a mounted worker node reports
// its role, shard counters and membership through /v1/stats and
// /v1/healthz, and serves the cluster ping route through the same mux.
func TestStatsClusterFields(t *testing.T) {
	srv, ts := newTestServer(t, jobs.Config{})
	w := cluster.NewWorker(cluster.WorkerConfig{Source: srv.Manager()})
	srv.AttachCluster(w)

	doc := getDoc(t, ts.URL+"/v1/stats")
	if doc["role"] != "worker" {
		t.Fatalf("role = %v, want worker", doc["role"])
	}
	cl, ok := doc["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("no cluster object in /v1/stats: %v", doc["cluster"])
	}
	wk, ok := cl["worker"].(map[string]any)
	if !ok {
		t.Fatalf("no worker object in cluster stats: %v", cl)
	}
	for _, f := range []string{"draining", "shards_active", "shards_served", "shards_partial", "shards_refused"} {
		if _, ok := wk[f]; !ok {
			t.Errorf("cluster.worker missing %q", f)
		}
	}
	for _, f := range statsPinnedFields {
		if _, ok := doc[f]; !ok {
			t.Errorf("worker /v1/stats lost pinned field %q", f)
		}
	}

	hz := getDoc(t, ts.URL+"/v1/healthz")
	if hz["role"] != "worker" || hz["status"] != "ok" {
		t.Errorf("healthz role/status = %v/%v", hz["role"], hz["status"])
	}
	if _, ok := hz["cluster"]; !ok {
		t.Error("worker healthz has no cluster summary")
	}

	// The node's internal routes ride the instrumented mux.
	ping := getDoc(t, ts.URL+cluster.PingPath)
	if ping["ok"] != true {
		t.Errorf("ping = %v", ping)
	}

	// A draining worker reports through healthz.
	w.Drain()
	hz = getDoc(t, ts.URL+"/v1/healthz")
	if hz["status"] != "draining" {
		t.Errorf("draining healthz status = %v", hz["status"])
	}
}

// TestStatsCoordinatorFields: same for a coordinator node.
func TestStatsCoordinatorFields(t *testing.T) {
	srv, ts := newTestServer(t, jobs.Config{})
	c := cluster.NewCoordinator(cluster.CoordinatorConfig{Workers: []string{"http://w1:1"}})
	srv.AttachCluster(c)

	doc := getDoc(t, ts.URL+"/v1/stats")
	if doc["role"] != "coordinator" {
		t.Fatalf("role = %v, want coordinator", doc["role"])
	}
	cl := doc["cluster"].(map[string]any)
	co, ok := cl["coordinator"].(map[string]any)
	if !ok {
		t.Fatalf("no coordinator object in cluster stats: %v", cl)
	}
	for _, f := range []string{"workers", "workers_live", "shards_in_flight", "shards_dispatched",
		"shard_retries", "dataset_pushes", "jobs_distributed", "jobs_declined", "local_shards"} {
		if _, ok := co[f]; !ok {
			t.Errorf("cluster.coordinator missing %q", f)
		}
	}
	hz := getDoc(t, ts.URL+"/v1/healthz")
	if hz["role"] != "coordinator" {
		t.Errorf("healthz role = %v", hz["role"])
	}
	if cl, ok := hz["cluster"].(map[string]any); !ok || cl["workers_live"] != float64(1) {
		t.Errorf("healthz cluster summary = %v", hz["cluster"])
	}
}
