package httpapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"

	"sprint/internal/metrics"
)

// This file is the observability middleware of the API: every route is
// wrapped with request-id propagation, structured request logging and
// pre-registered per-route metrics (request counts by status class and a
// latency histogram), and the registry itself is served on GET /metrics
// in the Prometheus text exposition format.

type ctxKey int

const ridKey ctxKey = 0

// RequestID returns the request id the middleware assigned (or accepted
// from the client's X-Request-Id header); "" outside a request context.
func RequestID(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey).(string)
	return rid
}

// newRequestID mints a 16-hex-char random id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000deranged" // crypto/rand failure: still serve the request
	}
	return hex.EncodeToString(b[:])
}

// routeMetrics are one route's pre-resolved handles: a latency histogram
// and a counter per status class.  Resolving them at New() keeps the
// per-request path free of registry lookups and allocations.
type routeMetrics struct {
	latency *metrics.Histogram
	byClass [5]*metrics.Counter // index status/100 - 1: 1xx..5xx
}

func newRouteMetrics(reg *metrics.Registry, route string) *routeMetrics {
	rm := &routeMetrics{
		latency: reg.Histogram("http_request_seconds", nil, "route", route),
	}
	classes := [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}
	for i, c := range classes {
		rm.byClass[i] = reg.Counter("http_requests_total", "route", route, "code", c)
	}
	return rm
}

// statusWriter records the response code and size as they pass through.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// instrument wraps h with the route's request-id, logging and metrics
// envelope.  route is the label value (the pattern without the method),
// shared by all methods on that pattern.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := s.routeMet[route]
	if rm == nil {
		rm = newRouteMetrics(s.reg, route)
		s.routeMet[route] = rm
	}
	return func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set("X-Request-Id", rid)
		r = r.WithContext(context.WithValue(r.Context(), ridKey, rid))

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)

		if sw.code == 0 { // handler wrote nothing: net/http sends 200
			sw.code = http.StatusOK
		}
		rm.latency.ObserveDuration(elapsed)
		if i := sw.code/100 - 1; i >= 0 && i < len(rm.byClass) {
			rm.byClass[i].Inc()
		}
		lvl := slog.LevelInfo
		if sw.code >= 500 {
			lvl = slog.LevelError
		} else if sw.code >= 400 {
			lvl = slog.LevelWarn
		}
		s.log.LogAttrs(r.Context(), lvl, "http_request",
			slog.String("request_id", rid),
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.String("path", r.URL.Path),
			slog.String("tenant", r.Header.Get("X-Tenant")),
			slog.Int("status", sw.code),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("duration", elapsed),
		)
	}
}

// PrometheusContentType is the Content-Type of the /metrics exposition.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", PrometheusContentType)
	_ = s.reg.WritePrometheus(w)
}
