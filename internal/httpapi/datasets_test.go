package httpapi

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"sprint/internal/jobs"
	"sprint/internal/matrix"
	"sprint/internal/microarray"
)

// datasetMatrixOf flattens a test dataset into the engine layout.
func datasetMatrixOf(t *testing.T, data *microarray.Dataset) matrix.Matrix {
	t.Helper()
	m, err := matrix.FromRows(data.X)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// doRaw performs a request with explicit headers and returns the response
// code and decoded JSON body.
func doRaw(t *testing.T, method, url string, body []byte, hdr map[string]string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.StatusCode != http.StatusNoContent {
			t.Fatalf("%s %s: decoding: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestDatasetWorkflowOverHTTP walks the whole dataset plane end to end:
// binary upload, dedup re-upload, dataset-id submission whose result is
// bitwise identical to an x_flat submission of the same cells, list /
// info / delete.
func TestDatasetWorkflowOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 1, DefaultNProcs: 1})
	data := testDataset(t)
	const B = 300

	// Baseline: the x_flat path.
	var flatSt StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", flatSubmitBody(t, data, B, 1), &flatSt); code != http.StatusAccepted {
		t.Fatalf("flat submit code %d", code)
	}
	pollTerminal(t, ts.URL, flatSt.ID)
	var flatRes ResultJSON
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+flatSt.ID+"/result", nil, &flatRes); code != http.StatusOK {
		t.Fatalf("flat result code %d", code)
	}

	// Binary upload.
	enc, err := matrix.EncodeBytes(datasetMatrixOf(t, data), nil, nil, matrix.RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	var info jobs.DatasetInfo
	if code := doRaw(t, http.MethodPut, ts.URL+"/v1/datasets", enc,
		map[string]string{"Content-Type": SPBContentType}, &info); code != http.StatusCreated {
		t.Fatalf("binary upload code %d", code)
	}
	// Re-upload dedups: 200, same id.
	var info2 jobs.DatasetInfo
	if code := doRaw(t, http.MethodPut, ts.URL+"/v1/datasets", enc,
		map[string]string{"Content-Type": SPBContentType}, &info2); code != http.StatusOK {
		t.Fatalf("re-upload code %d", code)
	}
	if info2.ID != info.ID {
		t.Fatalf("re-upload id %s != %s", info2.ID, info.ID)
	}

	// Submit by dataset id with a different seed (same seed would be a
	// result-cache hit and prove nothing about the compute path).
	body, err := json.Marshal(map[string]any{
		"dataset": map[string]any{"dataset_id": info.ID, "labels": data.Labels},
		"options": map[string]any{"b": B, "seed": 14},
	})
	if err != nil {
		t.Fatal(err)
	}
	var dsSt StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &dsSt); code != http.StatusAccepted {
		t.Fatalf("dataset submit code %d", code)
	}
	if fin := pollTerminal(t, ts.URL, dsSt.ID); fin.State != "done" {
		t.Fatalf("dataset job finished %+v", fin)
	}

	// And the key-sharing check: same options as the flat job must share
	// its content key (and therefore hit its cached result).
	sameBody, err := json.Marshal(map[string]any{
		"dataset": map[string]any{"dataset_id": info.ID, "labels": data.Labels},
		"options": map[string]any{"b": B, "seed": 13},
		"nprocs":  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sameSt StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", sameBody, &sameSt); code != http.StatusAccepted {
		t.Fatalf("same-options dataset submit code %d", code)
	}
	if sameSt.Key != flatSt.Key {
		t.Fatalf("dataset-id key %s != x_flat key %s", sameSt.Key, flatSt.Key)
	}
	if sameSt.State != "done" || !sameSt.CacheHit {
		t.Fatalf("same-options dataset submission not a cache hit: %+v", sameSt)
	}
	var sameRes ResultJSON
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+sameSt.ID+"/result", nil, &sameRes); code != http.StatusOK {
		t.Fatalf("dataset result code %d", code)
	}
	for i := range flatRes.AdjP {
		if math.Float64bits(sameRes.AdjP[i]) != math.Float64bits(flatRes.AdjP[i]) {
			t.Fatalf("AdjP[%d]: dataset %v != flat %v", i, sameRes.AdjP[i], flatRes.AdjP[i])
		}
	}

	// List and info.
	var list DatasetListJSON
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets", nil, &list); code != http.StatusOK {
		t.Fatalf("list code %d", code)
	}
	if len(list.Datasets) != 1 || list.Datasets[0].ID != info.ID {
		t.Fatalf("list %+v, want the one uploaded dataset", list)
	}
	var one jobs.DatasetInfo
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/"+info.ID, nil, &one); code != http.StatusOK {
		t.Fatalf("info code %d", code)
	}
	if one.Genes != len(data.X) || one.Samples != len(data.X[0]) {
		t.Fatalf("info shape %dx%d, want %dx%d", one.Genes, one.Samples, len(data.X), len(data.X[0]))
	}

	// Delete, then the id is gone for info and submissions.
	if code := doRaw(t, http.MethodDelete, ts.URL+"/v1/datasets/"+info.ID, nil, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete code %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/"+info.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("info after delete code %d", code)
	}
	freshBody, _ := json.Marshal(map[string]any{
		"dataset": map[string]any{"dataset_id": info.ID, "labels": data.Labels},
		"options": map[string]any{"b": B, "seed": 7777},
	})
	var e map[string]string
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", freshBody, &e); code != http.StatusNotFound {
		t.Fatalf("submit after delete code %d (%v)", code, e)
	}
}

// TestDatasetUploadJSONSharesID: a JSON x_flat upload must produce the
// same content id as the binary upload of the same cells.
func TestDatasetUploadJSONSharesID(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 1})
	data := testDataset(t)
	m := datasetMatrixOf(t, data)

	enc, err := matrix.EncodeBytes(m, nil, nil, matrix.RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	var binInfo jobs.DatasetInfo
	if code := doRaw(t, http.MethodPut, ts.URL+"/v1/datasets", enc,
		map[string]string{"Content-Type": SPBContentType}, &binInfo); code != http.StatusCreated {
		t.Fatalf("binary upload code %d", code)
	}

	genes, samples := m.Rows, m.Cols
	flat := make([]*float64, genes*samples)
	for j := 0; j < samples; j++ {
		for i := 0; i < genes; i++ {
			if v := m.At(i, j); !math.IsNaN(v) {
				vv := v
				flat[j*genes+i] = &vv
			}
		}
	}
	jsonBody, err := json.Marshal(map[string]any{"x_flat": flat, "genes": genes, "samples": samples})
	if err != nil {
		t.Fatal(err)
	}
	var jsonInfo jobs.DatasetInfo
	if code := doJSON(t, http.MethodPut, ts.URL+"/v1/datasets", jsonBody, &jsonInfo); code != http.StatusOK {
		t.Fatalf("json re-upload code %d (want 200: same content already registered)", code)
	}
	if jsonInfo.ID != binInfo.ID {
		t.Fatalf("json upload id %s != binary id %s", jsonInfo.ID, binInfo.ID)
	}
}

// TestGzipSubmission: a gzip-compressed submission body must decode and
// run exactly like its identity-encoded twin.
func TestGzipSubmission(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 1, DefaultNProcs: 1})
	data := testDataset(t)
	body := submitBody(t, data, 200, 1, 100)

	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(body); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	var st StatusJSON
	if code := doRaw(t, http.MethodPost, ts.URL+"/v1/jobs", zbuf.Bytes(),
		map[string]string{"Content-Encoding": "gzip"}, &st); code != http.StatusAccepted {
		t.Fatalf("gzip submit code %d", code)
	}
	if fin := pollTerminal(t, ts.URL, st.ID); fin.State != "done" {
		t.Fatalf("gzip job finished %+v", fin)
	}

	// The identity twin must share the content key (identical analysis).
	var plain StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &plain); code != http.StatusAccepted {
		t.Fatalf("plain submit code %d", code)
	}
	if plain.Key != st.Key {
		t.Fatalf("gzip key %s != plain key %s", st.Key, plain.Key)
	}
	if !plain.CacheHit {
		t.Fatalf("identity twin of gzip submission missed the cache: %+v", plain)
	}
}

// TestGzipBodyBounds: the decompressed size is bounded by MaxBodyBytes,
// so a small compressed body cannot balloon past the limit; and unknown
// encodings are rejected up front.
func TestGzipBodyBounds(t *testing.T) {
	srv, err := New(Config{Jobs: jobs.Config{Workers: 1}, MaxBodyBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerFor(t, srv)

	// A ~1 MB valid JSON submission compresses under the 4 KB compressed
	// bound (the cells are repetitive): it must still be rejected on the
	// decompressed side, not decoded to completion.
	var big bytes.Buffer
	big.WriteString(`{"dataset":{"genes":16000,"samples":8,"x_flat":[0.123456`)
	for i := 1; i < 16000*8; i++ {
		big.WriteString(",0.123456")
	}
	big.WriteString(`],"labels":[0,0,0,0,1,1,1,1]}}`)
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(big.Bytes()); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	if zbuf.Len() >= 4096 {
		t.Fatalf("test premise broken: compressed body is %d bytes", zbuf.Len())
	}
	var e map[string]string
	if code := doRaw(t, http.MethodPost, ts.URL+"/v1/jobs", zbuf.Bytes(),
		map[string]string{"Content-Encoding": "gzip"}, &e); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("ballooning gzip body code %d, want 413 (%v)", code, e)
	}

	if code := doRaw(t, http.MethodPost, ts.URL+"/v1/jobs", []byte("{}"),
		map[string]string{"Content-Encoding": "br"}, &e); code != http.StatusUnsupportedMediaType {
		t.Fatalf("unknown encoding code %d, want 415", code)
	}
}

// newTestServerFor wraps an existing Server in an httptest listener.
func newTestServerFor(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts
}

// TestStreamingDecodeBoundsMemory is the regression guard for the
// streaming submit decoder: decoding a large x_flat body must allocate
// far less than the buffered json.Unmarshal path, which materialises the
// whole body text inside the decoder on top of the float slice.
func TestStreamingDecodeBoundsMemory(t *testing.T) {
	// ~200k cells ≈ 3.6 MB of JSON: big enough that the body-text buffer
	// dominates the buffered path's allocations.
	const genes, samples = 5000, 40
	flat := make(Floats, genes*samples)
	for i := range flat {
		flat[i] = float64(i%997) / 7
	}
	body, err := json.Marshal(map[string]any{
		"dataset": map[string]any{"x_flat": flat, "genes": genes, "samples": samples,
			"labels": make([]int, samples)},
		"options": map[string]any{"b": 100},
	})
	if err != nil {
		t.Fatal(err)
	}

	measure := func(f func()) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		f()
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}
	var streamed *SubmitRequest
	streamAlloc := measure(func() {
		var err error
		streamed, err = DecodeSubmit(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
	})
	var buffered SubmitRequest
	bufferedAlloc := measure(func() {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&buffered); err != nil {
			t.Fatal(err)
		}
	})

	// Semantics first: the streaming decoder must produce exactly the
	// buffered decoder's request.
	if len(streamed.Dataset.XFlat) != len(buffered.Dataset.XFlat) {
		t.Fatalf("streamed %d cells, buffered %d", len(streamed.Dataset.XFlat), len(buffered.Dataset.XFlat))
	}
	for i := range flat {
		if math.Float64bits(streamed.Dataset.XFlat[i]) != math.Float64bits(buffered.Dataset.XFlat[i]) {
			t.Fatalf("cell %d: streamed %v buffered %v", i, streamed.Dataset.XFlat[i], buffered.Dataset.XFlat[i])
		}
	}
	if streamed.Dataset.Genes != genes || streamed.Dataset.Samples != samples || streamed.Options.B != 100 {
		t.Fatalf("streamed request fields diverged: %+v", streamed)
	}

	// Memory second: TotalAlloc is cumulative (GC-independent), so the
	// comparison is stable.  The buffered path allocates the body text
	// (~3.6 MB) on top of everything the streaming path allocates; a
	// 40%-of-buffered bound leaves a wide margin while still failing if
	// someone reintroduces whole-value buffering.
	if streamAlloc > bufferedAlloc*2/5 {
		t.Errorf("streaming decode allocated %d bytes vs buffered %d — whole-body buffering is back?",
			streamAlloc, bufferedAlloc)
	}
}

// TestBinaryIngestFasterThanJSON guards the headline acceptance criterion
// at a very safe margin: the binary decode of the paper-shaped matrix
// must beat the streaming JSON decode of the same cells by at least 2×
// (EXPERIMENTS.md records the real ratio, which is far higher).
func TestBinaryIngestFasterThanJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	const genes, samples = 6102, 76
	m := matrix.New(genes, samples)
	for i := range m.Data {
		m.Data[i] = float64(i%1009)/3 - 100
	}
	enc, err := matrix.EncodeBytes(m, nil, nil, matrix.RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	flat := make(Floats, genes*samples)
	for j := 0; j < samples; j++ {
		for i := 0; i < genes; i++ {
			flat[j*genes+i] = m.At(i, j)
		}
	}
	body, err := json.Marshal(map[string]any{
		"dataset": map[string]any{"x_flat": flat, "genes": genes, "samples": samples,
			"labels": make([]int, samples)},
	})
	if err != nil {
		t.Fatal(err)
	}

	work := make([]byte, len(enc))
	binNs := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(work, enc)
			if _, err := matrix.DecodeBytes(work); err != nil {
				b.Fatal(err)
			}
		}
	}).NsPerOp()
	jsonNs := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DecodeSubmit(bytes.NewReader(body)); err != nil {
				b.Fatal(err)
			}
		}
	}).NsPerOp()
	if binNs*2 > jsonNs {
		t.Errorf("binary ingest %d ns vs JSON %d ns: less than 2× faster", binNs, jsonNs)
	}
	t.Logf("ingest 6102×76: binary %d ns, streaming JSON %d ns (%.1f×)", binNs, jsonNs, float64(jsonNs)/float64(binNs))
}

// TestFlatScannerRejectsNonJSONNumbers: the byte-level x_flat scanner
// must hold the line of the JSON number grammar — strconv.ParseFloat
// alone would admit NaN, Infinity, hex floats and digit underscores that
// the buffered decoder rejects.
func TestFlatScannerRejectsNonJSONNumbers(t *testing.T) {
	for _, bad := range []string{"NaN", "Infinity", "-Infinity", "0x1p4", "1_000", "+1", ".5", "1.", "1e", "01", "-", "nulL"} {
		body := []byte(`{"dataset":{"x_flat":[` + bad + `]}}`)
		if _, err := DecodeSubmit(bytes.NewReader(body)); err == nil {
			t.Errorf("x_flat cell %q accepted by the streaming decoder", bad)
		}
	}
	for _, good := range []string{"0", "-0", "1.5", "-2e10", "3E-7", "0.25", "6102e2"} {
		body := []byte(`{"dataset":{"x_flat":[` + good + `]}}`)
		if _, err := DecodeSubmit(bytes.NewReader(body)); err != nil {
			t.Errorf("x_flat cell %q rejected: %v", good, err)
		}
	}
}

// TestFlatHintBounded: a tiny body claiming an enormous genes×samples
// shape must not make the decoder attempt a matching allocation (the
// historical bug was a fatal out-of-memory runtime.throw on a 60-byte
// request).
func TestFlatHintBounded(t *testing.T) {
	body := []byte(`{"dataset":{"genes":4194303,"samples":4194303,"x_flat":[1]}}`)
	req, err := DecodeSubmit(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Dataset.XFlat) != 1 {
		t.Fatalf("decoded %d cells, want 1", len(req.Dataset.XFlat))
	}
	// The shape lie is caught by submission validation, not the decoder.
	_, err = jobs.NewManager(jobs.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDatasetsDisabledConsistent403: with the registry disabled, every
// dataset-touching route — including a dataset_id submission — reports
// 403, not a mix of statuses.
func TestDatasetsDisabledConsistent403(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 1, DatasetCacheSize: -1})
	var e map[string]string
	if code := doJSON(t, http.MethodPut, ts.URL+"/v1/datasets",
		[]byte(`{"x":[[1,2],[3,4]]}`), &e); code != http.StatusForbidden {
		t.Fatalf("disabled PUT code %d, want 403 (%v)", code, e)
	}
	body := []byte(`{"dataset":{"dataset_id":"` + strings.Repeat("ab", 32) + `","labels":[0,1]}}`)
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &e); code != http.StatusForbidden {
		t.Fatalf("disabled dataset_id submit code %d, want 403 (%v)", code, e)
	}
	if code := doRaw(t, http.MethodDelete, ts.URL+"/v1/datasets/"+strings.Repeat("ab", 32), nil, nil, &e); code != http.StatusForbidden {
		t.Fatalf("disabled DELETE code %d, want 403 (%v)", code, e)
	}
}
