package httpapi

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"sprint/internal/jobs"
	"sprint/internal/microarray"
)

// flatSubmitBody encodes the dataset as the x_flat column-major payload
// (R's native layout), with NaN cells as JSON null.
func flatSubmitBody(t *testing.T, data *microarray.Dataset, b int64, nprocs int) []byte {
	t.Helper()
	genes, samples := len(data.X), len(data.X[0])
	flat := make([]*float64, genes*samples)
	for j := 0; j < samples; j++ {
		for i := 0; i < genes; i++ {
			if v := data.X[i][j]; !math.IsNaN(v) {
				vv := v
				flat[j*genes+i] = &vv
			}
		}
	}
	body, err := json.Marshal(map[string]any{
		"dataset": map[string]any{
			"x_flat": flat, "genes": genes, "samples": samples,
			"labels": data.Labels,
		},
		"options": map[string]any{"b": b, "seed": 13},
		"nprocs":  nprocs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestFlatSubmissionOverHTTP: an x_flat submission must compute the same
// result as the row-form submission of the same data, share its content
// key, and be answered from the cache when the row form ran first.
func TestFlatSubmissionOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 1, DefaultNProcs: 1})
	data := testDataset(t)
	const B = 300

	var rowSt StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, data, B, 1, 100), &rowSt); code != http.StatusAccepted {
		t.Fatalf("row submit code %d", code)
	}
	pollTerminal(t, ts.URL, rowSt.ID)
	var rowRes ResultJSON
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+rowSt.ID+"/result", nil, &rowRes); code != http.StatusOK {
		t.Fatalf("row result code %d", code)
	}

	var flatSt StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", flatSubmitBody(t, data, B, 1), &flatSt); code != http.StatusAccepted {
		t.Fatalf("flat submit code %d", code)
	}
	if flatSt.Key != rowSt.Key {
		t.Fatalf("flat key %s != row key %s", flatSt.Key, rowSt.Key)
	}
	if flatSt.State != "done" || !flatSt.CacheHit {
		t.Fatalf("flat submission not a cache hit: %+v", flatSt)
	}
	var flatRes ResultJSON
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+flatSt.ID+"/result", nil, &flatRes); code != http.StatusOK {
		t.Fatalf("flat result code %d", code)
	}
	for i := range rowRes.AdjP {
		if math.Float64bits(flatRes.AdjP[i]) != math.Float64bits(rowRes.AdjP[i]) {
			t.Fatalf("AdjP[%d]: flat %v != rows %v", i, flatRes.AdjP[i], rowRes.AdjP[i])
		}
	}
}

// TestExplicitNullXFlat: serializers that emit every field send
// "x_flat": null alongside a row-form matrix; null must mean absent.
func TestExplicitNullXFlat(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 1, DefaultNProcs: 1})
	data := testDataset(t)
	var body map[string]any
	if err := json.Unmarshal(submitBody(t, data, 200, 1, 100), &body); err != nil {
		t.Fatal(err)
	}
	body["dataset"].(map[string]any)["x_flat"] = nil
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	var st StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", b, &st); code != http.StatusAccepted {
		t.Fatalf("submission with explicit null x_flat rejected with %d", code)
	}
	if fin := pollTerminal(t, ts.URL, st.ID); fin.State != "done" {
		t.Fatalf("job finished %+v", fin)
	}
}

// TestFlatSubmissionBadShape: malformed flat payloads are client errors.
func TestFlatSubmissionBadShape(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 1})
	body, err := json.Marshal(map[string]any{
		"dataset": map[string]any{
			"x_flat": []float64{1, 2, 3}, "genes": 2, "samples": 2,
			"labels": []int{0, 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]string
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &e); code != http.StatusBadRequest {
		t.Fatalf("bad flat shape code %d, want 400 (%v)", code, e)
	}
}
