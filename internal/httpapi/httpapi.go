// Package httpapi exposes the jobs manager as a JSON-over-HTTP service:
// the wire surface of the pmaxtd daemon.
//
//	POST   /v1/jobs             submit a dataset + options; 202 + job status
//	GET    /v1/jobs/{id}        job status with live permutation progress
//	GET    /v1/jobs/{id}/result adjusted p-values of a finished job
//	DELETE /v1/jobs/{id}        cancel (checkpoint retained for resume)
//	PUT    /v1/datasets         register a matrix; returns its content id
//	GET    /v1/datasets         list registered datasets
//	GET    /v1/datasets/{id}    one dataset's registry entry
//	DELETE /v1/datasets/{id}    evict a dataset (409 while jobs pin it)
//	GET    /v1/healthz          combined health document (status + ready)
//	GET    /v1/livez            liveness: 200 whenever the process serves
//	GET    /v1/readyz           readiness: 503 while recovering/draining
//	GET    /v1/stats            queue / cache / worker counters (JSON)
//	GET    /metrics             Prometheus text exposition of the same plane
//
// Every route runs under the observability middleware: an X-Request-Id is
// accepted or minted and echoed back, each request is logged structured
// (slog) with id, tenant, route, status and duration, and per-route
// request counts and latency histograms feed /metrics.  Submissions are
// attributed to the tenant named by the X-Tenant header (anonymous when
// absent); an admission refusal — rate limit, full queue, or predicted
// queue wait over the bound — answers 429 with a Retry-After header
// derived from the observed queue drain rate.
//
// The body formats are defined by the *JSON types in this file.  Matrix
// cells may be JSON null for missing values (NaN), and NaN/±Inf outputs
// serialise as null, since bare JSON has no tokens for them.  Datasets may
// be submitted row per gene ("x"), as one flat column-major buffer
// ("x_flat" + "genes" + "samples", R's native layout), or — the zero-copy
// path — by "dataset_id" against a matrix previously registered on
// /v1/datasets; all three forms hash to the same cache key.  Dataset
// uploads accept JSON (the same "x"/"x_flat" shapes) or the binary spb
// codec (Content-Type application/x-sprint-spb).  JSON request bodies are
// decoded with a streaming decoder (peak memory tracks the decoded matrix,
// not the body text), and any request body may be sent with
// Content-Encoding: gzip.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sprint/internal/cluster"
	"sprint/internal/core"
	"sprint/internal/jobs"
	"sprint/internal/matrix"
	"sprint/internal/metrics"
)

// Config configures a Server.
type Config struct {
	// Jobs sizes the underlying manager (workers, queue, cache,
	// checkpoint directory ...).
	Jobs jobs.Config
	// MaxBodyBytes bounds a submission body.  Defaults to 256 MiB, which
	// admits the paper's largest exon-array matrix (73224×76 ≈ 42.45 MB
	// binary) with JSON overhead to spare.
	MaxBodyBytes int64
	// Logger receives the structured request log.  Nil discards it (tests
	// and embedders that log elsewhere); pmaxtd passes its JSON logger.
	Logger *slog.Logger
}

// Server is the HTTP facade over a jobs.Manager.
type Server struct {
	mgr      *jobs.Manager
	mux      *http.ServeMux
	maxBody  int64
	started  time.Time
	reg      *metrics.Registry
	log      *slog.Logger
	routeMet map[string]*routeMetrics
	cluster  cluster.Node
}

// New starts the manager and builds the route table.  Call Close to stop.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 256 << 20
	}
	if cfg.Jobs.Metrics == nil {
		cfg.Jobs.Metrics = metrics.New()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	mgr, err := jobs.NewManager(cfg.Jobs)
	if err != nil {
		return nil, err
	}
	s := &Server{
		mgr:      mgr,
		mux:      http.NewServeMux(),
		maxBody:  cfg.MaxBodyBytes,
		started:  time.Now(),
		reg:      cfg.Jobs.Metrics,
		log:      cfg.Logger,
		routeMet: make(map[string]*routeMetrics),
	}
	s.reg.Help("http_requests_total", "HTTP requests served, by route and status class.")
	s.reg.Help("http_request_seconds", "HTTP request latency, by route.")
	handle := func(method, route string, h http.HandlerFunc) {
		s.mux.HandleFunc(method+" "+route, s.instrument(route, h))
	}
	handle("POST", "/v1/jobs", s.handleSubmit)
	handle("GET", "/v1/jobs/{id}", s.handleStatus)
	handle("GET", "/v1/jobs/{id}/result", s.handleResult)
	handle("DELETE", "/v1/jobs/{id}", s.handleCancel)
	handle("PUT", "/v1/datasets", s.handlePutDataset)
	handle("GET", "/v1/datasets", s.handleListDatasets)
	handle("GET", "/v1/datasets/{id}", s.handleDatasetInfo)
	handle("DELETE", "/v1/datasets/{id}", s.handleDeleteDataset)
	handle("GET", "/v1/healthz", s.handleHealthz)
	handle("GET", "/v1/livez", s.handleLivez)
	handle("GET", "/v1/readyz", s.handleReadyz)
	handle("GET", "/v1/stats", s.handleStats)
	handle("GET", "/metrics", s.handleMetrics)
	return s, nil
}

// Metrics returns the registry the server and its manager report into.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Handler returns the route table, ready for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the underlying jobs manager (used by embedding callers
// and tests).
func (s *Server) Manager() *jobs.Manager { return s.mgr }

// Close drains and stops the job manager.  In-flight analyses stop at
// their next checkpoint window; their checkpoints survive for resume.
func (s *Server) Close() { s.mgr.Close() }

// Matrix is a [][]float64 that accepts JSON null cells as NaN, the wire
// form of missing expression values.
type Matrix [][]float64

// UnmarshalJSON implements json.Unmarshaler; each row decodes through
// Floats, sharing its null-to-NaN handling and boxing-free number scan.
func (m *Matrix) UnmarshalJSON(b []byte) error {
	var rows []Floats
	if err := json.Unmarshal(b, &rows); err != nil {
		return err
	}
	out := make([][]float64, len(rows))
	for i, row := range rows {
		out[i] = row
	}
	*m = out
	return nil
}

// Floats is a []float64 whose NaN and ±Inf entries serialise as JSON null,
// and which accepts JSON null entries as NaN on the way in.
type Floats []float64

var jsonNull = []byte("null")

// UnmarshalJSON implements json.Unmarshaler: null cells decode to NaN, the
// wire form of missing expression values.  The array is scanned directly —
// one append per cell, no per-cell pointer or interface boxing — because
// x_flat payloads carry hundreds of thousands of cells.  The outer decoder
// has already validated JSON syntax, so tokens between commas are numbers
// or null (neither can contain ',' or ']').
func (f *Floats) UnmarshalJSON(b []byte) error {
	if bytes.Equal(bytes.TrimSpace(b), jsonNull) {
		return nil // conventional Unmarshaler behaviour: null is a no-op
	}
	i, n := 0, len(b)
	skipWS := func() {
		for i < n && (b[i] == ' ' || b[i] == '\t' || b[i] == '\n' || b[i] == '\r') {
			i++
		}
	}
	skipWS()
	if i >= n || b[i] != '[' {
		return fmt.Errorf("httpapi: expected a JSON array of numbers")
	}
	i++
	out := make(Floats, 0, 16)
	skipWS()
	if i < n && b[i] == ']' {
		*f = out
		return nil
	}
	for {
		skipWS()
		start := i
		for i < n && b[i] != ',' && b[i] != ']' {
			i++
		}
		if i >= n {
			return fmt.Errorf("httpapi: unterminated JSON array")
		}
		tok := bytes.TrimSpace(b[start:i])
		if bytes.Equal(tok, jsonNull) {
			out = append(out, math.NaN())
		} else {
			v, err := strconv.ParseFloat(string(tok), 64)
			if err != nil {
				return fmt.Errorf("httpapi: array cell %d: %w", len(out), err)
			}
			out = append(out, v)
		}
		if b[i] == ']' {
			*f = out
			return nil
		}
		i++ // consume ','
	}
}

// MarshalJSON implements json.Marshaler.
func (f Floats) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 1+len(f)*8)
	buf = append(buf, '[')
	for i, v := range f {
		if i > 0 {
			buf = append(buf, ',')
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			buf = append(buf, "null"...)
		} else {
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
	}
	return append(buf, ']'), nil
}

// DatasetJSON is the submission payload's data block.  The matrix arrives
// either as x (row per gene) or as x_flat (one flat column-major buffer,
// R's native layout, with genes and samples giving the shape) — the flat
// form skips the per-row JSON array overhead and decodes straight into
// one contiguous buffer.
type DatasetJSON struct {
	// X is the expression matrix, rows = genes, columns = samples; null
	// cells are missing values.
	X Matrix `json:"x,omitempty"`
	// XFlat is the flat column-major alternative to X: genes*samples
	// values, column by column; null cells are missing values.
	XFlat Floats `json:"x_flat,omitempty"`
	// Genes and Samples give XFlat's shape; ignored with X.
	Genes   int `json:"genes,omitempty"`
	Samples int `json:"samples,omitempty"`
	// DatasetID submits against a matrix previously registered on
	// /v1/datasets instead of carrying one: the request body shrinks to
	// a few hundred bytes, the server hashes nothing, and the run reuses
	// the registry's cached preparation.
	DatasetID string `json:"dataset_id,omitempty"`
	// Labels assigns each sample column a class.
	Labels []int `json:"labels"`
}

// OptionsJSON mirrors core.Options field for field; zero values select the
// same defaults, except that b = 0 (or omitted) requests the complete
// enumeration exactly as in mt.maxT.
type OptionsJSON struct {
	Test              string  `json:"test,omitempty"`
	Side              string  `json:"side,omitempty"`
	FixedSeedSampling string  `json:"fixed_seed_sampling,omitempty"`
	B                 int64   `json:"b,omitempty"`
	NA                float64 `json:"na,omitempty"`
	Nonpara           string  `json:"nonpara,omitempty"`
	Seed              uint64  `json:"seed,omitempty"`
	MaxComplete       int64   `json:"max_complete,omitempty"`
	ScalarParams      bool    `json:"scalar_params,omitempty"`
	// BatchSize selects the kernel's permutation batch (0 = server
	// default).  It never changes results or cache keys — the batched
	// path is bitwise identical to the scalar path.
	BatchSize int `json:"batch_size,omitempty"`
	// PermOrder selects the complete-enumeration order: "auto" (default,
	// revolving-door where the delta kernel applies), "lex" or "door".
	// Like BatchSize it never changes results or cache keys.
	PermOrder string `json:"perm_order,omitempty"`
	// Mode selects the engine: "exact" (default) or "sequential", which
	// stops rows — and the whole job — as soon as every p-value is pinned
	// within p_tolerance (see target_alpha / p_tolerance below).
	Mode string `json:"mode,omitempty"`
	// TargetAlpha is sequential mode's significance threshold of
	// interest (core.Options.SeqAlpha); 0 selects the default (0.05).
	TargetAlpha float64 `json:"target_alpha,omitempty"`
	// PTolerance is sequential mode's absolute p-value error budget
	// (core.Options.SeqTolerance); 0 selects the default (0.02).
	PTolerance float64 `json:"p_tolerance,omitempty"`
}

func (o OptionsJSON) options() core.Options {
	return core.Options{
		Test:              o.Test,
		Side:              o.Side,
		FixedSeedSampling: o.FixedSeedSampling,
		B:                 o.B,
		NA:                o.NA,
		Nonpara:           o.Nonpara,
		Seed:              o.Seed,
		MaxComplete:       o.MaxComplete,
		ScalarParams:      o.ScalarParams,
		BatchSize:         o.BatchSize,
		PermOrder:         o.PermOrder,
		Mode:              o.Mode,
		SeqAlpha:          o.TargetAlpha,
		SeqTolerance:      o.PTolerance,
	}
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Dataset DatasetJSON `json:"dataset"`
	Options OptionsJSON `json:"options"`
	// NProcs is the rank count for this job (0 = server default).
	NProcs int `json:"nprocs,omitempty"`
	// CheckpointEvery is the checkpoint/progress window in permutations
	// (0 = server default).
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
	// Class optionally forces the fairness class ("interactive" or
	// "bulk"); empty classifies by size.  The tenant is NOT in the body:
	// it travels in the X-Tenant header.
	Class string `json:"class,omitempty"`
}

// ProfileJSON reports the paper's five timed sections in seconds, the row
// layout of Tables I–V.
type ProfileJSON struct {
	PreProcessingS   float64 `json:"pre_processing_s"`
	BroadcastParamsS float64 `json:"broadcast_params_s"`
	CreateDataS      float64 `json:"create_data_s"`
	MainKernelS      float64 `json:"main_kernel_s"`
	ComputePValuesS  float64 `json:"compute_p_values_s"`
	TotalS           float64 `json:"total_s"`
}

func profileJSON(p core.Profile) *ProfileJSON {
	return &ProfileJSON{
		PreProcessingS:   p.PreProcessing.Seconds(),
		BroadcastParamsS: p.BroadcastParams.Seconds(),
		CreateDataS:      p.CreateData.Seconds(),
		MainKernelS:      p.MainKernel.Seconds(),
		ComputePValuesS:  p.ComputePValues.Seconds(),
		TotalS:           p.Total().Seconds(),
	}
}

// StatusJSON is the wire form of a job status.
type StatusJSON struct {
	ID          string  `json:"id"`
	Key         string  `json:"key"`
	State       string  `json:"state"`
	Error       string  `json:"error,omitempty"`
	Done        int64   `json:"done"`
	Total       int64   `json:"total"`
	Progress    float64 `json:"progress"` // Done/Total in [0,1]; 0 while Total unknown
	ResumedFrom int64   `json:"resumed_from,omitempty"`
	CacheHit    bool    `json:"cache_hit,omitempty"`
	NProcs      int     `json:"nprocs"`
	Tenant      string  `json:"tenant,omitempty"`
	Class       string  `json:"class,omitempty"`
	// Mode names the engine the job runs under; the seq_* fields track
	// sequential progress (rows still accumulating, per-row permutation
	// evaluations already saved against the planned total).
	Mode          string       `json:"mode,omitempty"`
	SeqActiveRows int          `json:"seq_active_rows,omitempty"`
	SeqPermsSaved int64        `json:"seq_perms_saved,omitempty"`
	Profile       *ProfileJSON `json:"profile,omitempty"`
	SubmittedAt   string       `json:"submitted_at,omitempty"`
	StartedAt     string       `json:"started_at,omitempty"`
	FinishedAt    string       `json:"finished_at,omitempty"`
}

func statusJSON(st jobs.Status) StatusJSON {
	out := StatusJSON{
		ID:          st.ID,
		Key:         st.Key,
		State:       string(st.State),
		Error:       st.Error,
		Done:        st.Done,
		Total:       st.Total,
		ResumedFrom: st.ResumedFrom,
		CacheHit:    st.CacheHit,
		NProcs:      st.NProcs,
		Tenant:      st.Tenant,
		Class:       st.Class,
	}
	if st.Mode == core.ModeSequential {
		out.Mode = st.Mode
		out.SeqActiveRows = st.SeqActiveRows
		out.SeqPermsSaved = st.SeqPermsSaved
	}
	if st.Total > 0 {
		out.Progress = float64(st.Done) / float64(st.Total)
	}
	if st.State == jobs.Done && !st.CacheHit {
		out.Profile = profileJSON(st.Profile)
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	out.SubmittedAt = stamp(st.SubmittedAt)
	out.StartedAt = stamp(st.StartedAt)
	out.FinishedAt = stamp(st.FinishedAt)
	return out
}

// ResultJSON is the GET /v1/jobs/{id}/result body.
type ResultJSON struct {
	ID       string `json:"id"`
	Key      string `json:"key"`
	Stat     Floats `json:"stat"`
	RawP     Floats `json:"raw_p"`
	AdjP     Floats `json:"adj_p"`
	Order    []int  `json:"order"`
	B        int64  `json:"b"`
	Complete bool   `json:"complete"`
	NProcs   int    `json:"nprocs"`
	CacheHit bool   `json:"cache_hit"`
	// Sequential-mode fields: the engine mode, the permutation count the
	// run would have performed without early stopping, the per-row
	// effective permutation counts the p-values are estimated over, and
	// the total evaluations saved.  Omitted on exact results.
	Mode       string  `json:"mode,omitempty"`
	PlannedB   int64   `json:"planned_b,omitempty"`
	BEffective []int64 `json:"b_effective,omitempty"`
	PermsSaved int64   `json:"perms_saved,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := s.requestBody(w, r)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	defer body.Close()
	req, err := DecodeSubmit(body)
	if err != nil {
		writeBodyError(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	st, err := s.mgr.Submit(jobs.Spec{
		X:         req.Dataset.X,
		XFlat:     req.Dataset.XFlat,
		Genes:     req.Dataset.Genes,
		Samples:   req.Dataset.Samples,
		DatasetID: req.Dataset.DatasetID,
		Labels:    req.Dataset.Labels,
		Opt:       req.Options.options(),
		NProcs:    req.NProcs,
		Every:     req.CheckpointEvery,
		Tenant:    r.Header.Get("X-Tenant"),
		Class:     req.Class,
	})
	var shed *jobs.OverloadError
	switch {
	case errors.As(err, &shed):
		// Load shed: the Retry-After guidance comes from the observed
		// queue drain rate (or the token bucket's refill time), so a
		// well-behaved client that honours it usually succeeds next try.
		w.Header().Set("Retry-After", strconv.FormatInt(retryAfterSeconds(shed.RetryAfter), 10))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":         err.Error(),
			"reason":        shed.Reason,
			"retry_after_s": shed.RetryAfter.Seconds(),
		})
	case errors.Is(err, jobs.ErrQueueFull) || errors.Is(err, jobs.ErrRateLimited):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, jobs.ErrUnknownDataset):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrDatasetsDisabled):
		writeError(w, http.StatusForbidden, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "job_submitted",
			slog.String("request_id", RequestID(r.Context())),
			slog.String("job_id", st.ID),
			slog.String("tenant", st.Tenant),
			slog.String("class", st.Class),
			slog.String("state", string(st.State)),
			slog.Bool("cache_hit", st.CacheHit),
		)
		writeJSON(w, http.StatusAccepted, statusJSON(st))
	}
}

// retryAfterSeconds renders a shed's wait as whole seconds for the
// Retry-After header, rounding up so the client never retries early.
func retryAfterSeconds(d time.Duration) int64 {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// SPBContentType is the Content-Type of binary spb dataset uploads.
const SPBContentType = "application/x-sprint-spb"

// DatasetListJSON is the GET /v1/datasets body.
type DatasetListJSON struct {
	Datasets []jobs.DatasetInfo `json:"datasets"`
}

// handlePutDataset registers a matrix in the content-addressed registry:
// binary spb bodies decode zero-copy, JSON bodies carry the same
// "x"/"x_flat" shapes as a submission's dataset block (labels, if
// present, are ignored — a dataset is just the matrix; the labels travel
// with each job).  Responds 201 on first registration, 200 on a
// content-identical re-upload, both with the registry entry.
func (s *Server) handlePutDataset(w http.ResponseWriter, r *http.Request) {
	body, err := s.requestBody(w, r)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	defer body.Close()

	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	var m matrix.Matrix
	switch ct {
	case SPBContentType, "application/octet-stream":
		f, err := matrix.Decode(body)
		if err != nil {
			writeBodyError(w, err)
			return
		}
		m = f.M
	case "", "application/json":
		d, err := decodeDatasetUpload(body)
		if err != nil {
			writeBodyError(w, fmt.Errorf("decoding dataset: %w", err))
			return
		}
		m, err = datasetMatrix(d)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeError(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("unsupported content type %q (want %s or application/json)", ct, SPBContentType))
		return
	}

	info, created, err := s.mgr.PutDataset(m)
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	switch {
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil && info.ID != "":
		// Registered but the disk mirror failed: the id IS usable (the
		// in-memory entry serves it), so the client must still receive
		// it — with the durability warning, not a rejection that blames
		// the client for a server-side disk fault.
		writeJSON(w, code, DatasetUploadJSON{DatasetInfo: info, MirrorError: err.Error()})
	case errors.Is(err, jobs.ErrDatasetsDisabled):
		writeError(w, http.StatusForbidden, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, code, DatasetUploadJSON{DatasetInfo: info})
	}
}

// DatasetUploadJSON is the PUT /v1/datasets response: the registry entry
// plus, when the configured disk mirror could not be written, the error —
// the dataset is registered and usable either way, the warning is about
// restart durability only.
type DatasetUploadJSON struct {
	jobs.DatasetInfo
	MirrorError string `json:"mirror_error,omitempty"`
}

// datasetMatrix resolves an uploaded DatasetJSON into the engine's
// row-major matrix.  The decoded buffers are fresh (they came off the
// wire), so the flat form is consumed in place — the only full pass is
// the in-place transpose.
func datasetMatrix(d DatasetJSON) (matrix.Matrix, error) {
	switch {
	case d.DatasetID != "":
		return matrix.Matrix{}, fmt.Errorf("dataset upload cannot itself reference a dataset_id")
	case d.X != nil && d.XFlat != nil:
		return matrix.Matrix{}, fmt.Errorf("dataset upload carries both x and x_flat")
	case d.XFlat != nil:
		if d.Genes < 1 || d.Samples < 1 {
			return matrix.Matrix{}, fmt.Errorf("x_flat upload needs positive genes and samples, got %dx%d", d.Genes, d.Samples)
		}
		if len(d.XFlat) != d.Genes*d.Samples {
			return matrix.Matrix{}, fmt.Errorf("x_flat upload has %d values for %d genes × %d samples", len(d.XFlat), d.Genes, d.Samples)
		}
		return matrix.FromColumnMajor(d.XFlat, d.Genes, d.Samples), nil
	case d.X != nil:
		m, err := matrix.FromRows(d.X)
		if err != nil {
			return matrix.Matrix{}, err
		}
		return m, nil
	default:
		return matrix.Matrix{}, fmt.Errorf("dataset upload carries no matrix (want x or x_flat)")
	}
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, DatasetListJSON{Datasets: s.mgr.Datasets()})
}

func (s *Server) handleDatasetInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.mgr.DatasetInfoByID(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrUnknownDataset):
		writeError(w, http.StatusNotFound, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, info)
	}
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	err := s.mgr.DeleteDataset(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrUnknownDataset):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrDatasetBusy):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, jobs.ErrDatasetsDisabled):
		writeError(w, http.StatusForbidden, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, statusJSON(st))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, st, err := s.mgr.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrNotDone):
		writeJSON(w, http.StatusConflict, statusJSON(st))
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		out := ResultJSON{
			ID:       st.ID,
			Key:      st.Key,
			Stat:     res.Stat,
			RawP:     res.RawP,
			AdjP:     res.AdjP,
			Order:    res.Order,
			B:        res.B,
			Complete: res.Complete,
			NProcs:   res.NProcs,
			CacheHit: st.CacheHit,
		}
		if res.Sequential() {
			out.Mode = res.Mode
			out.PlannedB = res.PlannedB
			out.BEffective = res.BEff
			out.PermsSaved = res.SeqPermsSaved()
		}
		writeJSON(w, http.StatusOK, out)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, statusJSON(st))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthzDoc())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsDoc())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
