package httpapi

import (
	"net/http"
	"time"

	"sprint/internal/cluster"
	"sprint/internal/jobs"
)

// This file mounts a cluster node (coordinator or worker) on the
// daemon's instrumented mux and extends /v1/stats and /v1/healthz with
// the node's role and membership.  Both extensions are strictly
// additive: every pre-cluster field keeps its name and meaning (pinned
// by TestStatsFieldNamesPinned), and a standalone daemon reports
// role "standalone" with no cluster object at all.

// AttachCluster mounts the node's internal API routes (shard compute,
// membership, ping) under the same request-id/logging/latency
// middleware as the public routes, and makes /v1/stats and /v1/healthz
// report the node's role and cluster state.  Call it after New and
// before serving.
func (s *Server) AttachCluster(n cluster.Node) {
	s.cluster = n
	for _, rt := range n.Routes() {
		s.mux.HandleFunc(rt.Method+" "+rt.Pattern, s.instrument(rt.Pattern, rt.Handler))
	}
}

// statsJSON is the /v1/stats document: the manager's counters plus the
// additive cluster fields.
type statsJSON struct {
	jobs.Stats
	// Role is "standalone", "coordinator" or "worker".
	Role string `json:"role"`
	// Cluster carries the node's membership and shard traffic; absent
	// on a standalone daemon.
	Cluster *cluster.Info `json:"cluster,omitempty"`
}

func (s *Server) statsDoc() statsJSON {
	doc := statsJSON{Stats: s.mgr.StatsSnapshot(), Role: "standalone"}
	if s.cluster != nil {
		info := s.cluster.Info()
		doc.Role = info.Role
		doc.Cluster = &info
	}
	return doc
}

// healthzDoc builds the /v1/healthz document: the original status and
// uptime keys, plus role and — on cluster nodes — a membership summary.
func (s *Server) healthzDoc() map[string]any {
	doc := map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.started).Seconds(),
		"role":     "standalone",
	}
	if s.cluster == nil {
		return doc
	}
	info := s.cluster.Info()
	doc["role"] = info.Role
	switch {
	case info.Coordinator != nil:
		workers := make([]map[string]any, 0, len(info.Coordinator.Workers))
		for _, m := range info.Coordinator.Workers {
			workers = append(workers, map[string]any{"addr": m.Addr, "live": m.Live, "static": m.Static})
		}
		doc["cluster"] = map[string]any{
			"workers":          workers,
			"workers_live":     info.Coordinator.WorkersLive,
			"shards_in_flight": info.Coordinator.ShardsInFlight,
		}
	case info.Worker != nil:
		cl := map[string]any{
			"draining":      info.Worker.Draining,
			"shards_active": info.Worker.ShardsActive,
		}
		if info.Worker.Coordinator != "" {
			cl["coordinator"] = info.Worker.Coordinator
		}
		doc["cluster"] = cl
		if info.Worker.Draining {
			doc["status"] = "draining"
		}
	}
	return doc
}

var _ = http.StatusOK // keep net/http imported alongside the mux use above
