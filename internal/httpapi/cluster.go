package httpapi

import (
	"net/http"
	"time"

	"sprint/internal/cluster"
	"sprint/internal/jobs"
)

// This file mounts a cluster node (coordinator or worker) on the
// daemon's instrumented mux and extends /v1/stats and /v1/healthz with
// the node's role and membership.  Both extensions are strictly
// additive: every pre-cluster field keeps its name and meaning (pinned
// by TestStatsFieldNamesPinned), and a standalone daemon reports
// role "standalone" with no cluster object at all.

// AttachCluster mounts the node's internal API routes (shard compute,
// membership, ping) under the same request-id/logging/latency
// middleware as the public routes, and makes /v1/stats and /v1/healthz
// report the node's role and cluster state.  Call it after New and
// before serving.
func (s *Server) AttachCluster(n cluster.Node) {
	s.cluster = n
	for _, rt := range n.Routes() {
		s.mux.HandleFunc(rt.Method+" "+rt.Pattern, s.instrument(rt.Pattern, rt.Handler))
	}
}

// statsJSON is the /v1/stats document: the manager's counters plus the
// additive cluster fields.
type statsJSON struct {
	jobs.Stats
	// Role is "standalone", "coordinator" or "worker".
	Role string `json:"role"`
	// Cluster carries the node's membership and shard traffic; absent
	// on a standalone daemon.
	Cluster *cluster.Info `json:"cluster,omitempty"`
}

func (s *Server) statsDoc() statsJSON {
	doc := statsJSON{Stats: s.mgr.StatsSnapshot(), Role: "standalone"}
	if s.cluster != nil {
		info := s.cluster.Info()
		doc.Role = info.Role
		doc.Cluster = &info
	}
	return doc
}

// healthzDoc builds the /v1/healthz document: the original status and
// uptime keys, plus role, the additive "ready" flag, and — on cluster
// nodes — a membership summary.  While the manager replays its journal
// status reads "recovering" (and ready is false): the process is alive
// and serving, but jobs admitted before the crash are still being
// re-admitted, so load balancers should hold traffic (see /v1/readyz).
func (s *Server) healthzDoc() map[string]any {
	ready, _ := s.readiness()
	doc := map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.started).Seconds(),
		"role":     "standalone",
		"ready":    ready,
	}
	if s.mgr.Recovering() {
		doc["status"] = "recovering"
	}
	if s.cluster == nil {
		return doc
	}
	info := s.cluster.Info()
	doc["role"] = info.Role
	switch {
	case info.Coordinator != nil:
		workers := make([]map[string]any, 0, len(info.Coordinator.Workers))
		for _, m := range info.Coordinator.Workers {
			workers = append(workers, map[string]any{"addr": m.Addr, "live": m.Live, "static": m.Static})
		}
		doc["cluster"] = map[string]any{
			"workers":          workers,
			"workers_live":     info.Coordinator.WorkersLive,
			"shards_in_flight": info.Coordinator.ShardsInFlight,
		}
	case info.Worker != nil:
		cl := map[string]any{
			"draining":      info.Worker.Draining,
			"shards_active": info.Worker.ShardsActive,
		}
		if info.Worker.Coordinator != "" {
			cl["coordinator"] = info.Worker.Coordinator
		}
		doc["cluster"] = cl
		if info.Worker.Draining {
			doc["status"] = "draining"
		}
	}
	return doc
}

// readiness reports whether the daemon should receive traffic, with a
// machine-readable reason when it should not.  Liveness and readiness
// are distinct signals: a recovering or draining daemon is perfectly
// alive (restarting it would only lose more work) but should not be
// handed new load until replay finishes or the drain completes.
func (s *Server) readiness() (bool, string) {
	if s.mgr.Recovering() {
		return false, "recovering"
	}
	if s.cluster != nil {
		if info := s.cluster.Info(); info.Worker != nil && info.Worker.Draining {
			return false, "draining"
		}
	}
	return true, ""
}

// handleLivez is the liveness probe: 200 whenever the process can run a
// handler.  Restart-worthy conditions only — recovery and drain are NOT
// liveness failures.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz is the readiness probe: 503 while the manager replays
// its journal after a crash (or a cluster worker drains), 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, reason := s.readiness()
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": reason, "ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "ready": true})
}
