package httpapi

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprint/internal/cluster"
	"sprint/internal/core"
	"sprint/internal/jobs"
	"sprint/internal/microarray"
)

// newTestServer builds a server + httptest listener over one worker.
func newTestServer(t *testing.T, jcfg jobs.Config) (*Server, *httptest.Server) {
	t.Helper()
	if jcfg.Workers == 0 {
		jcfg.Workers = 1
	}
	srv, err := New(Config{Jobs: jcfg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func testDataset(t *testing.T) *microarray.Dataset {
	t.Helper()
	data, err := microarray.Generate(microarray.GenOptions{
		Genes: 40, Samples: 12, Classes: 2,
		DiffFraction: 0.1, EffectSize: 2.5, MissingRate: 0.05, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// doJSON performs a request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url string, body []byte, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func submitBody(t *testing.T, data *microarray.Dataset, b int64, nprocs int, every int64) []byte {
	t.Helper()
	// Marshal the matrix by hand so NaN cells become JSON null, as a real
	// client would send missing values.
	rows := make([][]*float64, len(data.X))
	for i, row := range data.X {
		rows[i] = make([]*float64, len(row))
		for j := range row {
			if !math.IsNaN(row[j]) {
				v := row[j]
				rows[i][j] = &v
			}
		}
	}
	body, err := json.Marshal(map[string]any{
		"dataset":          map[string]any{"x": rows, "labels": data.Labels},
		"options":          map[string]any{"b": b, "seed": 13},
		"nprocs":           nprocs,
		"checkpoint_every": every,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// pollTerminal polls the status endpoint until the job finishes.
func pollTerminal(t *testing.T, base, id string) StatusJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st StatusJSON
		if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("status code %d", code)
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return StatusJSON{}
}

func TestEndToEndBitIdentity(t *testing.T) {
	data := testDataset(t)
	_, ts := newTestServer(t, jobs.Config{})
	const B = 500

	var st StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, data, B, 2, 100), &st); code != http.StatusAccepted {
		t.Fatalf("submit code %d (%+v)", code, st)
	}
	if st.ID == "" || st.State != "queued" {
		t.Fatalf("submit status %+v", st)
	}

	fin := pollTerminal(t, ts.URL, st.ID)
	if fin.State != "done" || fin.Done != B || fin.Progress != 1 {
		t.Fatalf("final status %+v", fin)
	}
	if fin.Profile == nil || fin.Profile.TotalS <= 0 {
		t.Fatalf("missing profile in %+v", fin)
	}

	var res struct {
		Stat  []*float64 `json:"stat"`
		RawP  []*float64 `json:"raw_p"`
		AdjP  []*float64 `json:"adj_p"`
		Order []int      `json:"order"`
		B     int64      `json:"b"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result code %d", code)
	}

	opt := core.DefaultOptions()
	opt.B = B
	opt.Seed = 13
	want, err := core.MaxT(data.X, data.Labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.B != want.B || len(res.AdjP) != len(want.AdjP) {
		t.Fatalf("result shape B=%d len=%d, want B=%d len=%d", res.B, len(res.AdjP), want.B, len(want.AdjP))
	}
	check := func(name string, got []*float64, want []float64) {
		for i := range want {
			switch {
			case math.IsNaN(want[i]):
				if got[i] != nil {
					t.Fatalf("%s[%d] = %v, want null (NaN)", name, i, *got[i])
				}
			case got[i] == nil:
				t.Fatalf("%s[%d] = null, want %v", name, i, want[i])
			case math.Float64bits(*got[i]) != math.Float64bits(want[i]):
				t.Fatalf("%s[%d] = %v, want %v bit-identically", name, i, *got[i], want[i])
			}
		}
	}
	check("adj_p", res.AdjP, want.AdjP)
	check("raw_p", res.RawP, want.RawP)
	check("stat", res.Stat, want.Stat)
	for i := range want.Order {
		if res.Order[i] != want.Order[i] {
			t.Fatalf("order[%d] = %d, want %d", i, res.Order[i], want.Order[i])
		}
	}
}

func TestCachedResubmission(t *testing.T) {
	data := testDataset(t)
	_, ts := newTestServer(t, jobs.Config{})
	body := submitBody(t, data, 300, 1, 100)

	var st1 StatusJSON
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &st1)
	pollTerminal(t, ts.URL, st1.ID)

	var st2 StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &st2); code != http.StatusAccepted {
		t.Fatalf("resubmit code %d", code)
	}
	if st2.State != "done" || !st2.CacheHit || st2.Key != st1.Key {
		t.Fatalf("resubmission %+v, want cached done with key %s", st2, st1.Key)
	}
	var stats jobs.Stats
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &stats)
	if stats.CacheHits != 1 || stats.Completed != 1 {
		t.Fatalf("stats %+v, want one completion and one cache hit", stats)
	}
}

func TestCancelOverHTTPThenResume(t *testing.T) {
	data := testDataset(t)
	var url atomic.Value // string; the hook fires only after submission
	var once atomic.Bool
	jcfg := jobs.Config{
		Workers: 1,
		OnCheckpoint: func(id string, done, total int64) {
			if done >= 200 && once.CompareAndSwap(false, true) {
				req, _ := http.NewRequest(http.MethodDelete, url.Load().(string)+"/v1/jobs/"+id, nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("cancel: %v", err)
					return
				}
				resp.Body.Close()
			}
		},
	}
	_, ts := newTestServer(t, jcfg)
	url.Store(ts.URL)
	body := submitBody(t, data, 600, 1, 100)

	var st1 StatusJSON
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &st1)
	fin1 := pollTerminal(t, ts.URL, st1.ID)
	if fin1.State != "cancelled" {
		t.Fatalf("first job %+v, want cancelled", fin1)
	}
	var notDone StatusJSON
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st1.ID+"/result", nil, &notDone); code != http.StatusConflict {
		t.Fatalf("result of cancelled job: code %d", code)
	}

	var st2 StatusJSON
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &st2)
	fin2 := pollTerminal(t, ts.URL, st2.ID)
	if fin2.State != "done" || fin2.ResumedFrom < 200 {
		t.Fatalf("resubmission %+v, want done with resumed_from >= 200", fin2)
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{})
	var e map[string]string

	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/nope", nil, &e); code != http.StatusNotFound {
		t.Fatalf("unknown job code %d", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", []byte(`{"bogus": 1}`), &e); code != http.StatusBadRequest {
		t.Fatalf("unknown field code %d", code)
	}
	bad, _ := json.Marshal(map[string]any{
		"dataset": map[string]any{"x": [][]float64{{1, 2}}, "labels": []int{0, 1}},
		"options": map[string]any{"test": "bogus", "b": 10},
	})
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", bad, &e); code != http.StatusBadRequest {
		t.Fatalf("bad options code %d (%v)", code, e)
	}

	var health map[string]any
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil, &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz code %d body %v", code, health)
	}
}

func TestQueueFullOverHTTP(t *testing.T) {
	data := testDataset(t)
	// Park the single worker inside the first job's first checkpoint, so
	// the depth-1 queue fills deterministically.
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	var first atomic.Bool
	_, ts := newTestServer(t, jobs.Config{
		Workers: 1, QueueDepth: 1,
		OnCheckpoint: func(id string, done, total int64) {
			if first.CompareAndSwap(false, true) {
				<-block
			}
		},
	})
	t.Cleanup(release) // unblock before the server cleanup drains workers

	var running StatusJSON
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, data, 500, 1, 50), &running)
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st StatusJSON
		doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+running.ID, nil, &st)
		if st.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	var st StatusJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, data, 400, 1, 100), &st); code != http.StatusAccepted {
		t.Fatalf("fill code %d", code)
	}
	var e map[string]any
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, data, 401, 1, 100), &e); code != http.StatusTooManyRequests {
		t.Fatalf("overflow code %d (%v)", code, e)
	}
	if e["reason"] != "queue_full" {
		t.Fatalf("shed reason %v, want queue_full", e["reason"])
	}
	release()
	if fin := pollTerminal(t, ts.URL, running.ID); fin.State != "done" {
		t.Fatalf("first job %+v after release", fin)
	}
}

// TestLivenessReadinessSplit pins the health split: /v1/livez is a bare
// process check that never 503s for operational states, /v1/readyz
// reports traffic-worthiness (draining and journal recovery are
// not-ready), and /v1/healthz keeps its historical fields while gaining
// the additive "ready" flag.
func TestLivenessReadinessSplit(t *testing.T) {
	srv, ts := newTestServer(t, jobs.Config{})

	var live map[string]any
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/livez", nil, &live); code != http.StatusOK || live["status"] != "ok" {
		t.Fatalf("livez code %d body %v", code, live)
	}
	var ready map[string]any
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/readyz", nil, &ready); code != http.StatusOK || ready["ready"] != true {
		t.Fatalf("readyz code %d body %v", code, ready)
	}
	var health map[string]any
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz code %d", code)
	}
	// Historical fields stay pinned; "ready" is additive.
	if health["status"] != "ok" || health["ready"] != true {
		t.Fatalf("healthz body %v", health)
	}
	for _, field := range []string{"uptime_s", "role"} {
		if _, ok := health[field]; !ok {
			t.Errorf("healthz lost historical field %q", field)
		}
	}

	// A draining worker is alive but must stop receiving traffic.
	w := cluster.NewWorker(cluster.WorkerConfig{Source: srv.Manager()})
	srv.AttachCluster(w)
	w.Drain()
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/livez", nil, &live); code != http.StatusOK {
		t.Fatalf("livez during drain: code %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/readyz", nil, &ready); code != http.StatusServiceUnavailable || ready["status"] != "draining" || ready["ready"] != false {
		t.Fatalf("readyz during drain: code %d body %v", code, ready)
	}
}
