// Package sprintfw implements the SPRINT framework architecture of Hill et
// al. and Dobrzelecki et al. (Figure 1 of the paper): all participating
// processes start together; the master evaluates the user's script; the
// workers enter a waiting loop until they receive an appropriate command
// message from the master; on a parallel-function call the workers are
// notified, data and computation are distributed, the workers collectively
// evaluate the function, and the master collects and reduces the results
// before handing them back to the script.
//
// In SPRINT proper the script is R code and the functions are C+MPI
// implementations registered in a library.  Here the script is a Go
// closure, the registry maps names to Function values, and the transport is
// the in-process mpi package — the protocol (command broadcast, collective
// evaluation, master-side reduction) is the same.
package sprintfw

import (
	"fmt"
	"sort"
	"sync"

	"sprint/internal/mpi"
)

// Function is a parallel function that all ranks evaluate collectively.
// Eval runs simultaneously on every rank with the same args (delivered by
// the framework's command broadcast); it may use the full mpi API.  The
// framework returns the master's Eval result to the calling script.
type Function interface {
	// Name is the registry key, e.g. "pmaxt", "pcor".
	Name() string
	// Eval computes the function collectively.  An error on any rank
	// aborts the world.
	Eval(c *mpi.Comm, args any) (any, error)
}

// FuncOf adapts a name and closure into a Function.
func FuncOf(name string, eval func(c *mpi.Comm, args any) (any, error)) Function {
	return funcAdapter{name: name, eval: eval}
}

type funcAdapter struct {
	name string
	eval func(c *mpi.Comm, args any) (any, error)
}

func (f funcAdapter) Name() string { return f.name }
func (f funcAdapter) Eval(c *mpi.Comm, args any) (any, error) {
	return f.eval(c, args)
}

// Registry is the library of parallel functions loaded by every rank, the
// analogue of loading the SPRINT library into each R runtime.  Registration
// happens before Run; lookups during a session are read-only and therefore
// safe from all ranks.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]Function
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: make(map[string]Function)}
}

// Register adds a function, rejecting duplicates.
func (r *Registry) Register(f Function) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.funcs[f.Name()]; dup {
		return fmt.Errorf("sprintfw: function %q already registered", f.Name())
	}
	r.funcs[f.Name()] = f
	return nil
}

// MustRegister is Register that panics on error, for package init wiring.
func (r *Registry) MustRegister(f Function) {
	if err := r.Register(f); err != nil {
		panic(err)
	}
}

// Lookup finds a registered function.
func (r *Registry) Lookup(name string) (Function, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.funcs[name]
	return f, ok
}

// Names lists registered function names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Command opcodes broadcast from the master to the waiting workers.
type opcode int

const (
	opCall opcode = iota
	opShutdown
)

// command is the message the workers' waiting loop blocks on.
type command struct {
	op   opcode
	name string
	args any
}

// Session is the master's handle for invoking parallel functions from the
// script.  It exists only on rank 0.
type Session struct {
	comm *mpi.Comm
	reg  *Registry
}

// Comm exposes the master's communicator, e.g. for size queries.
func (s *Session) Comm() *mpi.Comm { return s.comm }

// Call collectively evaluates the named function with args on every rank
// and returns the master's result.  The workers are woken by a command
// broadcast, mirroring the notification step in the SPRINT architecture.
func (s *Session) Call(name string, args any) (any, error) {
	fn, ok := s.reg.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sprintfw: function %q not registered", name)
	}
	mpi.Bcast(s.comm, 0, command{op: opCall, name: name, args: args})
	return fn.Eval(s.comm, args)
}

// Run starts an n-rank SPRINT session: rank 0 evaluates script; all other
// ranks service it from the waiting loop.  When the script returns —
// normally or not — the master broadcasts shutdown so the workers exit
// their loop.  The error from the script (or from any rank's evaluation)
// is returned.
func Run(n int, reg *Registry, script func(s *Session) error) error {
	return mpi.Run(n, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			err := script(&Session{comm: c, reg: reg})
			// Always release the workers, even on script failure, so
			// the world shuts down instead of deadlocking.
			mpi.Bcast(c, 0, command{op: opShutdown})
			return err
		}
		return workerLoop(c, reg)
	})
}

// workerLoop is the waiting loop of Figure 1: block on a command broadcast,
// evaluate collectively, repeat until shutdown.
func workerLoop(c *mpi.Comm, reg *Registry) error {
	for {
		cmd := mpi.Bcast(c, 0, command{})
		switch cmd.op {
		case opShutdown:
			return nil
		case opCall:
			fn, ok := reg.Lookup(cmd.name)
			if !ok {
				// The master verified the name before broadcasting, so
				// divergent registries are a deployment bug.
				return fmt.Errorf("sprintfw: rank %d has no function %q", c.Rank(), cmd.name)
			}
			if _, err := fn.Eval(c, cmd.args); err != nil {
				return err
			}
		default:
			return fmt.Errorf("sprintfw: rank %d received unknown opcode %d", c.Rank(), cmd.op)
		}
	}
}
