package sprintfw

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"sprint/internal/mpi"
)

// sumFunc is a toy parallel function: every rank contributes rank+base and
// the master receives the reduced total — the same notify/evaluate/reduce
// cycle pmaxT uses.
func sumFunc() Function {
	return FuncOf("psum", func(c *mpi.Comm, args any) (any, error) {
		base, ok := args.(int)
		if !ok {
			return nil, fmt.Errorf("psum: bad args %T", args)
		}
		local := []int64{int64(c.Rank() + base)}
		total, isRoot := mpi.Reduce(c, 0, local, mpi.SumInt64)
		if isRoot {
			return total[0], nil
		}
		return nil, nil
	})
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(sumFunc()); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Lookup("psum"); !ok {
		t.Error("registered function not found")
	}
	if _, ok := reg.Lookup("nope"); ok {
		t.Error("unregistered function found")
	}
	if err := reg.Register(sumFunc()); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	reg := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		reg.MustRegister(FuncOf(n, func(c *mpi.Comm, args any) (any, error) { return nil, nil }))
	}
	names := reg.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(sumFunc())
	defer func() {
		if recover() == nil {
			t.Error("MustRegister duplicate did not panic")
		}
	}()
	reg.MustRegister(sumFunc())
}

func TestSessionCallCollectiveEvaluation(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(sumFunc())
	for _, n := range []int{1, 2, 4, 7} {
		var got int64
		err := Run(n, reg, func(s *Session) error {
			res, err := s.Call("psum", 100)
			if err != nil {
				return err
			}
			got = res.(int64)
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := int64(0)
		for r := 0; r < n; r++ {
			want += int64(r + 100)
		}
		if got != want {
			t.Errorf("n=%d: psum = %d, want %d", n, got, want)
		}
	}
}

func TestMultipleSequentialCalls(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(sumFunc())
	err := Run(5, reg, func(s *Session) error {
		for i := 0; i < 20; i++ {
			res, err := s.Call("psum", i)
			if err != nil {
				return err
			}
			want := int64(5*i + 10) // sum of ranks 0..4 plus 5*i
			if res.(int64) != want {
				return fmt.Errorf("call %d: got %d, want %d", i, res, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFunctionErrorsWithoutHanging(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(sumFunc())
	err := Run(4, reg, func(s *Session) error {
		_, err := s.Call("does-not-exist", nil)
		return err
	})
	if err == nil {
		t.Fatal("unknown function call succeeded")
	}
}

func TestScriptErrorReleasesWorkers(t *testing.T) {
	sentinel := errors.New("script failed")
	reg := NewRegistry()
	err := Run(6, reg, func(s *Session) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run error = %v, want sentinel", err)
	}
}

func TestWorkerEvalErrorAborts(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(FuncOf("explode", func(c *mpi.Comm, args any) (any, error) {
		if c.Rank() == 2 {
			return nil, errors.New("worker 2 failed")
		}
		// Other ranks block on a collective that can never complete;
		// the abort must free them.
		mpi.Allreduce(c, []int64{1}, mpi.SumInt64)
		return nil, nil
	}))
	err := Run(4, reg, func(s *Session) error {
		_, err := s.Call("explode", nil)
		return err
	})
	if err == nil {
		t.Fatal("worker error did not propagate")
	}
}

func TestWorkersIdleUntilNotified(t *testing.T) {
	// Workers must perform no function work before the master calls:
	// the counter increments only inside Eval.
	var evals atomic.Int32
	reg := NewRegistry()
	reg.MustRegister(FuncOf("count", func(c *mpi.Comm, args any) (any, error) {
		evals.Add(1)
		c.Barrier()
		return nil, nil
	}))
	err := Run(3, reg, func(s *Session) error {
		if got := evals.Load(); got != 0 {
			return fmt.Errorf("%d evaluations before any call", got)
		}
		if _, err := s.Call("count", nil); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := evals.Load(); got != 3 {
		t.Errorf("evaluations = %d, want 3 (one per rank)", got)
	}
}

// TestFrameworkArchitecture asserts the Figure 1 protocol end to end: the
// master script drives two different registered functions across the same
// waiting workers, with results reduced back to the master between calls.
func TestFrameworkArchitecture(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(sumFunc())
	reg.MustRegister(FuncOf("pmax", func(c *mpi.Comm, args any) (any, error) {
		local := []int64{int64(c.Rank() * c.Rank())}
		total := mpi.Allreduce(c, local, func(acc, in []int64) []int64 {
			if in[0] > acc[0] {
				acc[0] = in[0]
			}
			return acc
		})
		if c.Rank() == 0 {
			return total[0], nil
		}
		return nil, nil
	}))
	err := Run(5, reg, func(s *Session) error {
		sum, err := s.Call("psum", 0)
		if err != nil {
			return err
		}
		if sum.(int64) != 10 {
			return fmt.Errorf("psum = %v, want 10", sum)
		}
		max, err := s.Call("pmax", nil)
		if err != nil {
			return err
		}
		if max.(int64) != 16 {
			return fmt.Errorf("pmax = %v, want 16", max)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
