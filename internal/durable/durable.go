// Package durable is the one place the daemon writes files it must be
// able to trust after a crash: checkpoints, the job journal and dataset
// mirrors all go through WriteFileAtomic, which makes the full
// temp-file → write → fsync(file) → rename → fsync(dir) dance, so a
// kill -9 at any instruction leaves either the complete old file or the
// complete new file — never a torn one.  Every entry point consults
// internal/faultinject first, which is how the chaos suite drives
// torn-write, short-read, disk-full and corrupt-byte schedules through
// the exact code paths production uses.
package durable

import (
	"fmt"
	"os"
	"path/filepath"

	"sprint/internal/faultinject"
)

// WriteFileAtomic writes data to path atomically and durably: a unique
// temp file in path's directory is written, fsynced and renamed over
// path, then the directory is fsynced so the rename itself survives a
// crash.  site names the faultinject choke point ("ckpt.write",
// "journal.compact", "dataset.write", ...).
func WriteFileAtomic(path string, data []byte, site string) error {
	if err := faultinject.Before(site, path); err != nil {
		return err
	}
	data, fault := faultinject.MutateWrite(site, data)
	if fault == faultinject.WriteTorn {
		// Simulate the crash-mid-write no atomic rename allows: the
		// truncated body lands at the FINAL path, then the writer dies.
		// This is what the framed read paths must survive.
		_ = os.WriteFile(path, data, 0o644)
		return fmt.Errorf("durable: %s %s: %w", site, path, faultinject.ErrInjected)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return FsyncDir(dir)
}

// ReadFile reads path whole, applying the fault schedule's read faults
// (short read, corrupt byte) at site before returning.
func ReadFile(path, site string) ([]byte, error) {
	if err := faultinject.Before(site, path); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return faultinject.MutateRead(site, data), nil
}

// Quarantine moves a file detected as corrupt aside to "<path>.corrupt"
// (replacing any previous quarantine of the same path) so it never
// poisons a read again but stays available for inspection.  A missing
// file is not an error.
func Quarantine(path string) error {
	err := os.Rename(path, path+".corrupt")
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// FsyncDir fsyncs a directory so a rename or unlink inside it is
// durable.  Filesystems that refuse directory fsync (some network
// mounts) degrade silently: the rename still happened.
func FsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	// Sync errors on directories are advisory (EINVAL on some
	// filesystems); the atomic rename has already happened.
	_ = d.Sync()
	return nil
}
