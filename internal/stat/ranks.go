package stat

import (
	"math"
	"sort"
)

// Ranks replaces the non-missing entries of dst with their mid-ranks (ties
// receive the average of the ranks they span, the standard treatment for
// rank statistics).  NaN entries remain NaN and do not consume ranks.  The
// transform is applied in place; scratch, if non-nil and large enough, is
// used to avoid allocation in hot loops.
//
// mt.maxT applies this transform once per row: ranks depend only on the
// data values, not on the labelling, so permutations reuse them.  The same
// transform implements the nonpara="y" option for the t- and F-family
// statistics.
func Ranks(dst []float64, scratch []int) {
	n := 0
	for _, v := range dst {
		if !math.IsNaN(v) {
			n++
		}
	}
	if n == 0 {
		return
	}
	if cap(scratch) < n {
		scratch = make([]int, n)
	}
	idx := scratch[:0]
	for j, v := range dst {
		if !math.IsNaN(v) {
			idx = append(idx, j)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return dst[idx[a]] < dst[idx[b]] })
	// Assign mid-ranks over runs of equal values.
	for i := 0; i < n; {
		j := i + 1
		for j < n && dst[idx[j]] == dst[idx[i]] {
			j++
		}
		// Ranks are 1-based: positions i..j-1 share rank (i+1+j)/2.
		mid := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			// Deferred write would clobber comparisons; values in the
			// run are equal so overwriting is safe only after the run
			// is delimited, which it is here.
			dst[idx[k]] = mid
		}
		i = j
	}
}

// RankRows applies Ranks to every row of x in place.
func RankRows(x [][]float64) {
	var scratch []int
	for _, row := range x {
		if cap(scratch) < len(row) {
			scratch = make([]int, len(row))
		}
		Ranks(row, scratch)
	}
}
