package stat

import (
	"fmt"
	"strings"
)

// KernelISA names the instruction set the two-sample batch accumulation
// kernel runs on.  The three implementations are bitwise interchangeable —
// every SIMD lane performs one (row, permutation) chain's scalar IEEE-754
// operations in the same ascending selected-column order — so the choice is
// purely a performance knob, never a correctness one.
type KernelISA int

const (
	// ISAGeneric is the portable pure-Go row-pair kernel.
	ISAGeneric KernelISA = iota
	// ISASSE2 is the 2-lane assembly kernel (amd64): one 16-byte load per
	// interleaved row pair, two rows × two permutations per iteration.
	ISASSE2
	// ISAAVX2 is the 4-lane assembly kernel (amd64 with AVX2): one 32-byte
	// load per interleaved row quad, four rows × two permutations per
	// iteration.
	ISAAVX2
)

var isaNames = map[KernelISA]string{
	ISAGeneric: "generic",
	ISASSE2:    "sse2",
	ISAAVX2:    "avx2",
}

// String returns the flag-level name of the ISA.
func (i KernelISA) String() string {
	if s, ok := isaNames[i]; ok {
		return s
	}
	return fmt.Sprintf("KernelISA(%d)", int(i))
}

// activeISA is the process-wide kernel dispatch choice, initialised to the
// best ISA the CPU supports.  It is read once per kernel construction
// (NewKernel); SetKernelISA is meant for process startup (CLI flags) and
// tests, not for concurrent mutation during runs.
var activeISA = bestISA()

// ActiveKernelISA reports the ISA newly built kernels will use.
func ActiveKernelISA() KernelISA { return activeISA }

// SupportedISAs lists the ISA names this process can run, best last.
func SupportedISAs() []string {
	out := []string{ISAGeneric.String()}
	for isa := ISASSE2; isa <= bestISA(); isa++ {
		out = append(out, isa.String())
	}
	return out
}

// SetKernelISA selects the accumulation kernel by name: "auto" picks the
// best supported ISA, "generic", "sse2" and "avx2" force one.  Requesting
// an ISA the CPU (or GOARCH) cannot run returns an error and leaves the
// active choice unchanged.  The returned value is the ISA now active.
func SetKernelISA(name string) (KernelISA, error) {
	switch strings.ToLower(name) {
	case "", "auto":
		activeISA = bestISA()
		return activeISA, nil
	case "generic":
		activeISA = ISAGeneric
		return activeISA, nil
	case "sse2":
		if bestISA() < ISASSE2 {
			return activeISA, fmt.Errorf("stat: kernel %q not supported on this CPU (have %s)", name, SupportedISAs())
		}
		activeISA = ISASSE2
		return activeISA, nil
	case "avx2":
		if bestISA() < ISAAVX2 {
			return activeISA, fmt.Errorf("stat: kernel %q not supported on this CPU (have %s)", name, SupportedISAs())
		}
		activeISA = ISAAVX2
		return activeISA, nil
	default:
		return activeISA, fmt.Errorf("stat: unknown kernel %q (want auto, generic, sse2 or avx2)", name)
	}
}
