// Permutation-batched kernel evaluation: the cache-blocked path behind the
// maxT main kernel.
//
// The scalar path (Kernel.Stats) streams the entire flat matrix from memory
// once per permutation; on the paper's 6102×76 workload that is ~3.7 MB per
// permutation and the loop is memory-bound, not compute-bound.  StatsBatch
// inverts the loop: each matrix row is loaded ONCE and, while it sits in L1,
// serves every permutation of a batch of B labellings — the matrix is
// streamed once per batch instead of once per permutation.
//
// Per row, the accumulation is column-scatter shaped: selected columns are
// visited in ascending order and each element feeds the accumulators of
// every permutation in the batch using it (the F, block-F and paired-t
// kernels scatter through per-batch transposed label/sign tables; the
// two-sample kernels run per-permutation selected-column lists, two rows ×
// two permutations at a time — an SSE2 kernel on amd64, see
// accum_amd64.s).  For any single permutation p, every variant touches p's
// selected columns in exactly the ascending order the scalar path uses, so
// p's accumulators receive the identical sequence of IEEE-754 operations
// and the batch statistics are BITWISE equal to B scalar Stats calls — the
// property that keeps exceedance counts, content-addressed cache keys and
// checkpoints valid for any batch size.  The batching also breaks the
// add-latency dependency chain that binds the scalar loop: within one
// permutation the accumulation order is fixed by the tie discipline (a
// serial chain), so interleaving independent permutations' chains is the
// only way to fill the FP pipeline.
//
// Every per-row finishing computation is shared with the scalar path
// (tsTail.stat via twoSampleStat, wilcoxonStat, fStat, pairTStat,
// blockFStat): one compiled function serves both, so the operation
// sequences cannot diverge — the same argument PR 2's tie discipline makes
// for mathematically tied labellings, extended here to the two evaluation
// paths.
package stat

import (
	"fmt"
	"math"
	"unsafe"

	"sprint/internal/matrix"
)

// gather loads row[j] without a bounds check.  It is safe only for the
// selected-column indices buildSelLists constructs: they come from a range
// loop over a labelling of exactly the row's length, so 0 <= j < len(row)
// by construction.  The compiler cannot prove that across the slice
// indirection, and the four per-element checks it would otherwise emit are
// measurable in the hot loop below.
func gather(row *float64, j int32) float64 {
	return *(*float64)(unsafe.Add(unsafe.Pointer(row), uintptr(uint32(j))*8))
}

// ptrI32 loads p[e] without a bounds check; e is loop-bounded by the
// caller against the list length.
func ptrI32(p *int32, e int) int32 {
	return *(*int32)(unsafe.Add(unsafe.Pointer(p), uintptr(e)*4))
}

// BatchKernel is the batched evaluation surface implemented by every kernel
// NewKernel builds: Stats for one labelling, StatsBatch for a whole batch.
type BatchKernel interface {
	Kernel
	// StatsBatch evaluates every row under each of the out.Rows labellings
	// packed in labs (flattened batch × columns, row-major) and writes
	// labelling p's statistics into out.Row(p).  The results are bitwise
	// identical to out.Rows successive Stats calls.  scratch may be nil, in
	// which case temporary storage is allocated; a reused scratch grows on
	// demand and makes steady-state calls allocation-free.
	StatsBatch(labs []int, out matrix.Matrix, scratch *BatchScratch)
	// NewBatchScratch sizes a private scratch for batches of up to nb
	// labellings.  Scratch values must not be shared between concurrent
	// StatsBatch calls.
	NewBatchScratch(nb int) *BatchScratch
}

// BatchScratch holds per-goroutine working storage for StatsBatch.  The
// zero value is valid: every field grows on demand and is reusable across
// kernels (of any test type) and batch sizes, which is what lets a job
// worker own one scratch for its whole lifetime.
type BatchScratch struct {
	// Per-permutation selected-column lists for the two-sample kernels:
	// permutation p's selected columns, ascending, at sel[p*L:(p+1)*L]
	// (class sizes are invariant under relabelling, so every list has the
	// same length L).
	sel  []int32
	sign []float64 // per-permutation statistic sign (two-sample t)
	as   []float64 // per-permutation accumulated sum (paired t)
	vab  []float64 // interleaved row pair (two-sample fast path)
	// Per-permutation class bins for F and block F, laid out [perm][class].
	bn []int
	bs []float64
	bq []float64
	// Column-major labels labT[j*nb+p] (F, block F) and pair signs
	// sgnT[j*nb+p] (paired t): the transposed layouts make the perm-inner
	// scatter loops walk contiguous memory.
	labT []int32
	sgnT []float64
	ord  []int   // canonical-order scratch (F, block F)
	seg  []int32 // constant-sign run boundaries (two-sample delta path)
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// checkBatchShape validates the labs/out pair against the kernel's row
// count and label width, returning the batch size.
func checkBatchShape(rows, labCols int, labs []int, out matrix.Matrix) int {
	nb := out.Rows
	if out.Cols != rows {
		panic(fmt.Sprintf("stat: batch out has %d columns for %d matrix rows", out.Cols, rows))
	}
	if len(labs) != nb*labCols {
		panic(fmt.Sprintf("stat: batch labels have %d entries for %d labellings of %d columns", len(labs), nb, labCols))
	}
	return nb
}

// ---- two-sample t / Wilcoxon --------------------------------------------

// buildSelLists fills s.sel with each batch permutation's selected columns
// (ascending, exactly the scalar selectColumns order) and each
// permutation's sign, returning the shared list length L.  Class sizes are
// invariant under relabelling, so every permutation selects the same
// number of columns.  cls follows the scalar rule: the fixed class on
// unbalanced designs, the class containing column 0 otherwise (fixed < 0).
func buildSelLists(s *BatchScratch, labs []int, nb, cols, fixed int, withSign bool) int {
	if nb == 0 {
		return 0 // nothing anchors labs[0] below; an empty batch is a no-op
	}
	L := 0
	for j := 0; j < cols; j++ {
		cls := fixed
		if cls < 0 {
			cls = labs[0]
		}
		if labs[j] == cls {
			L++
		}
	}
	s.sel = growI32(s.sel, nb*L)
	if withSign {
		s.sign = growF(s.sign, nb)
	}
	for p := 0; p < nb; p++ {
		lab := labs[p*cols : (p+1)*cols]
		cls := fixed
		if cls < 0 {
			cls = lab[0]
		}
		if withSign {
			if cls == 0 {
				s.sign[p] = -1
			} else {
				s.sign[p] = 1
			}
		}
		dst := s.sel[p*L : p*L : (p+1)*L]
		for j, l := range lab {
			if l == cls {
				dst = append(dst, int32(j))
			}
		}
	}
	return L
}

func (k *twoSampleKernel) NewBatchScratch(nb int) *BatchScratch {
	return &BatchScratch{
		sel:  make([]int32, nb*k.m.Cols),
		sign: make([]float64, nb),
	}
}

func (k *twoSampleKernel) StatsBatch(labs []int, out matrix.Matrix, s *BatchScratch) {
	nb := checkBatchShape(k.m.Rows, k.m.Cols, labs, out)
	if s == nil {
		s = &BatchScratch{}
	}
	L := buildSelLists(s, labs, nb, k.m.Cols, k.cls, true)
	cols := k.m.Cols
	// On NA-free rows every permutation's accumulated group has exactly L
	// members, so the tail invariants are one batch-level constant.
	tail, tailOK := newTSTail(k.pooled, L, cols-L)
	fast := func(i int) bool { return !k.flat[i] && k.n[i] == cols }
	quad := k.isa == ISAAVX2
	asmPair := k.isa >= ISASSE2
	for i := 0; i < k.m.Rows; {
		if k.flat[i] {
			for p := 0; p < nb; p++ {
				out.Row(p)[i] = math.NaN()
			}
			i++
			continue
		}
		// NA-free row quads (AVX2 dispatch): four rows interleaved so one
		// 32-byte load feeds four accumulation chains — see the pair path
		// below for why cross-row/cross-permutation interleaving is the
		// lever and why lane-wise packed arithmetic stays bitwise equal.
		if tailOK && quad && i+3 < k.m.Rows && fast(i) && fast(i+1) && fast(i+2) && fast(i+3) {
			r4 := [4][]float64{k.m.Row(i), k.m.Row(i + 1), k.m.Row(i + 2), k.m.Row(i + 3)}
			s.vab = growF(s.vab, 4*cols)
			for j := 0; j < cols; j++ {
				s.vab[4*j] = r4[0][j]
				s.vab[4*j+1] = r4[1][j]
				s.vab[4*j+2] = r4[2][j]
				s.vab[4*j+3] = r4[3][j]
			}
			v4 := &s.vab[0]
			S4 := [4]float64{k.sum[i], k.sum[i+1], k.sum[i+2], k.sum[i+3]}
			Q4 := [4]float64{k.sumsq[i], k.sumsq[i+1], k.sumsq[i+2], k.sumsq[i+3]}
			var acc [16]float64
			p := 0
			for ; p+2 <= nb; p += 2 {
				accumQuad(v4, &s.sel[p*L], &s.sel[(p+1)*L], L, &acc)
				r0, r1 := out.Row(p), out.Row(p+1)
				for r := 0; r < 4; r++ {
					r0[i+r] = tail.stat(s.sign[p], S4[r], Q4[r], acc[r], acc[4+r])
					r1[i+r] = tail.stat(s.sign[p+1], S4[r], Q4[r], acc[8+r], acc[12+r])
				}
			}
			for ; p < nb; p++ {
				idx := s.sel[p*L : (p+1)*L]
				outRow := out.Row(p)
				for r := 0; r < 4; r++ {
					row := r4[r]
					var sa, qa float64
					for _, j := range idx {
						v := row[j]
						sa += v
						qa += v * v
					}
					outRow[i+r] = tail.stat(s.sign[p], S4[r], Q4[r], sa, qa)
				}
			}
			i += 4
			continue
		}
		// NA-free rows: every selected cell is present, so the group count
		// is L without tracking it and the per-element NaN test vanishes.
		// The row pair is interleaved into vab so that accumPair (an SSE2
		// kernel on amd64, a pure Go loop elsewhere — bitwise identical by
		// construction) advances two permutations × two rows at once:
		// within one permutation the accumulation order is fixed by the
		// tie discipline (a serial dependency chain), so cross-permutation
		// and cross-row interleaving is what fills the FP pipeline.
		if tailOK && fast(i) && i+1 < k.m.Rows && fast(i+1) {
			rowA, rowB := k.m.Row(i), k.m.Row(i+1)
			s.vab = growF(s.vab, 2*cols)
			for j := 0; j < cols; j++ {
				s.vab[2*j] = rowA[j]
				s.vab[2*j+1] = rowB[j]
			}
			vab := &s.vab[0]
			SA, QA := k.sum[i], k.sumsq[i]
			SB, QB := k.sum[i+1], k.sumsq[i+1]
			var acc [8]float64
			p := 0
			for ; p+2 <= nb; p += 2 {
				if asmPair {
					accumPair(vab, &s.sel[p*L], &s.sel[(p+1)*L], L, &acc)
				} else {
					accumPairGo(vab, &s.sel[p*L], &s.sel[(p+1)*L], L, &acc)
				}
				r0, r1 := out.Row(p), out.Row(p+1)
				r0[i] = tail.stat(s.sign[p], SA, QA, acc[0], acc[2])
				r0[i+1] = tail.stat(s.sign[p], SB, QB, acc[1], acc[3])
				r1[i] = tail.stat(s.sign[p+1], SA, QA, acc[4], acc[6])
				r1[i+1] = tail.stat(s.sign[p+1], SB, QB, acc[5], acc[7])
			}
			for ; p < nb; p++ {
				idx := s.sel[p*L : (p+1)*L]
				var sa, qa, sb, qb float64
				for _, j := range idx {
					vA := rowA[j]
					sa += vA
					qa += vA * vA
					vB := rowB[j]
					sb += vB
					qb += vB * vB
				}
				r := out.Row(p)
				r[i] = tail.stat(s.sign[p], SA, QA, sa, qa)
				r[i+1] = tail.stat(s.sign[p], SB, QB, sb, qb)
			}
			i += 2
			continue
		}
		// General row (missing cells, or an unpaired NA-free row): the
		// scalar accumulation per permutation, row already in L1.
		row := k.m.Row(i)
		n, S, Q := k.n[i], k.sum[i], k.sumsq[i]
		for p := 0; p < nb; p++ {
			idx := s.sel[p*L : (p+1)*L]
			na := 0
			var sa, qa float64
			for _, j := range idx {
				v := row[j]
				if v == v {
					na++
					sa += v
					qa += v * v
				}
			}
			out.Row(p)[i] = twoSampleStat(k.pooled, s.sign[p], n, S, Q, na, sa, qa)
		}
		i++
	}
}

func (k *wilcoxonKernel) NewBatchScratch(nb int) *BatchScratch {
	return &BatchScratch{sel: make([]int32, nb*k.m.Cols)}
}

func (k *wilcoxonKernel) StatsBatch(labs []int, out matrix.Matrix, s *BatchScratch) {
	nb := checkBatchShape(k.m.Rows, k.m.Cols, labs, out)
	if s == nil {
		s = &BatchScratch{}
	}
	L := buildSelLists(s, labs, nb, k.m.Cols, k.cls, false)
	for i := 0; i < k.m.Rows; i++ {
		nn, total, totalSq := k.n[i], k.total[i], k.totalSq[i]
		full := nn == k.m.Cols
		if k.ir != nil && k.ir.ok[i] {
			// Integer fast path: 4 permutations' scaled rank sums advance
			// per gather step in independent int64 lanes (no NaN tests, no
			// rounding — the sums are exact, so the converted floats equal
			// the float accumulation bit for bit).
			ri := k.ir.row(i)
			p := 0
			if full {
				tail := &k.tails[i]
				for ; p+4 <= nb; p += 4 {
					i0 := s.sel[(p+0)*L : (p+1)*L]
					i1 := s.sel[(p+1)*L : (p+2)*L]
					i2 := s.sel[(p+2)*L : (p+3)*L]
					i3 := s.sel[(p+3)*L : (p+4)*L]
					var s0, s1, s2, s3 int64
					for e := 0; e < L; e++ {
						s0 += int64(ri[i0[e]])
						s1 += int64(ri[i1[e]])
						s2 += int64(ri[i2[e]])
						s3 += int64(ri[i3[e]])
					}
					out.Row(p + 0)[i] = tail.stat(float64(s0) * 0.5)
					out.Row(p + 1)[i] = tail.stat(float64(s1) * 0.5)
					out.Row(p + 2)[i] = tail.stat(float64(s2) * 0.5)
					out.Row(p + 3)[i] = tail.stat(float64(s3) * 0.5)
				}
				for ; p < nb; p++ {
					idx := s.sel[p*L : (p+1)*L]
					var isum int64
					for _, j := range idx {
						isum += int64(ri[j])
					}
					out.Row(p)[i] = tail.stat(float64(isum) * 0.5)
				}
			} else {
				for ; p < nb; p++ {
					idx := s.sel[p*L : (p+1)*L]
					nc := 0
					var isum int64
					for _, j := range idx {
						if v := ri[j]; v != 0 {
							nc++
							isum += int64(v)
						}
					}
					out.Row(p)[i] = wilcoxonStat(k.cls, nc, float64(isum)*0.5, nn, total, totalSq)
				}
			}
			continue
		}
		row := k.m.Row(i)
		p := 0
		if full {
			tail := &k.tails[i]
			for ; p+4 <= nb; p += 4 {
				i0 := s.sel[(p+0)*L : (p+1)*L]
				i1 := s.sel[(p+1)*L : (p+2)*L]
				i2 := s.sel[(p+2)*L : (p+3)*L]
				i3 := s.sel[(p+3)*L : (p+4)*L]
				var s0, s1, s2, s3 float64
				for e := 0; e < L; e++ {
					s0 += row[i0[e]]
					s1 += row[i1[e]]
					s2 += row[i2[e]]
					s3 += row[i3[e]]
				}
				out.Row(p + 0)[i] = tail.stat(s0)
				out.Row(p + 1)[i] = tail.stat(s1)
				out.Row(p + 2)[i] = tail.stat(s2)
				out.Row(p + 3)[i] = tail.stat(s3)
			}
		}
		for ; p < nb; p++ {
			idx := s.sel[p*L : (p+1)*L]
			nc := 0
			var sc float64
			for _, j := range idx {
				v := row[j]
				if v == v {
					nc++
					sc += v
				}
			}
			out.Row(p)[i] = wilcoxonStat(k.cls, nc, sc, nn, total, totalSq)
		}
	}
}

// ---- one-way F ----------------------------------------------------------

// transposeLabels fills s.labT[j*nb+p] = labs[p*cols+j] so the perm-inner
// scatter reads labels contiguously.
func transposeLabels(s *BatchScratch, labs []int, nb, cols int) {
	s.labT = growI32(s.labT, cols*nb)
	for p := 0; p < nb; p++ {
		lab := labs[p*cols : (p+1)*cols]
		for j, l := range lab {
			s.labT[j*nb+p] = int32(l)
		}
	}
}

func (k *fKernel) NewBatchScratch(nb int) *BatchScratch {
	return &BatchScratch{
		bn:   make([]int, nb*k.k),
		bs:   make([]float64, nb*k.k),
		bq:   make([]float64, nb*k.k),
		labT: make([]int32, k.m.Cols*nb),
		ord:  make([]int, k.k),
	}
}

func (k *fKernel) StatsBatch(labs []int, out matrix.Matrix, s *BatchScratch) {
	nb := checkBatchShape(k.m.Rows, k.m.Cols, labs, out)
	if s == nil {
		s = &BatchScratch{}
	}
	kk, cols := k.k, k.m.Cols
	transposeLabels(s, labs, nb, cols)
	s.bn, s.bs, s.bq = growI(s.bn, nb*kk), growF(s.bs, nb*kk), growF(s.bq, nb*kk)
	s.ord = growI(s.ord, kk)
	bn, bs, bq := s.bn[:nb*kk], s.bs[:nb*kk], s.bq[:nb*kk]
	for i := 0; i < k.m.Rows; i++ {
		if k.flat[i] {
			for p := 0; p < nb; p++ {
				out.Row(p)[i] = math.NaN()
			}
			continue
		}
		for o := range bn {
			bn[o], bs[o], bq[o] = 0, 0, 0
		}
		for j, v := range k.m.Row(i) {
			if v != v {
				continue
			}
			labCol := s.labT[j*nb : j*nb+nb]
			for p, g32 := range labCol {
				g := int(g32)
				if g < 0 || g >= kk {
					continue
				}
				o := p*kk + g
				bn[o]++
				bs[o] += v
				bq[o] += v * v
			}
		}
		for p := 0; p < nb; p++ {
			o := p * kk
			out.Row(p)[i] = fStat(bn[o:o+kk], bs[o:o+kk], bq[o:o+kk], s.ord, kk)
		}
	}
}

// ---- paired t -----------------------------------------------------------

func (k *pairTKernel) NewBatchScratch(nb int) *BatchScratch {
	return &BatchScratch{sgnT: make([]float64, k.pairs*nb), as: make([]float64, nb)}
}

func (k *pairTKernel) StatsBatch(labs []int, out matrix.Matrix, s *BatchScratch) {
	nb := checkBatchShape(k.diffs.Rows, 2*k.pairs, labs, out)
	if s == nil {
		s = &BatchScratch{}
	}
	cols := 2 * k.pairs
	s.sgnT = growF(s.sgnT, k.pairs*nb)
	s.as = growF(s.as, nb)
	for p := 0; p < nb; p++ {
		lab := labs[p*cols : (p+1)*cols]
		for j := 0; j < k.pairs; j++ {
			// The difference is (value labelled 1) - (value labelled 0); a
			// pair stored (1,0) flips it — the scalar sign rule.
			if lab[2*j] == 1 {
				s.sgnT[j*nb+p] = -1
			} else {
				s.sgnT[j*nb+p] = 1
			}
		}
	}
	sum := s.as[:nb]
	for i := 0; i < k.diffs.Rows; i++ {
		for p := range sum {
			sum[p] = 0
		}
		for j, dv := range k.diffs.Row(i) {
			if dv != dv {
				continue
			}
			sgnCol := s.sgnT[j*nb : j*nb+nb]
			for p, sg := range sgnCol {
				sum[p] += sg * dv
			}
		}
		m, sumsq := k.cnt[i], k.sumsq[i]
		for p := 0; p < nb; p++ {
			out.Row(p)[i] = pairTStat(sum[p], m, sumsq)
		}
	}
}

// ---- block F ------------------------------------------------------------

func (k *blockFKernel) NewBatchScratch(nb int) *BatchScratch {
	return &BatchScratch{
		bs:   make([]float64, nb*k.k),
		labT: make([]int32, k.m.Cols*nb),
		ord:  make([]int, k.k),
	}
}

func (k *blockFKernel) StatsBatch(labs []int, out matrix.Matrix, s *BatchScratch) {
	nb := checkBatchShape(k.m.Rows, k.m.Cols, labs, out)
	if s == nil {
		s = &BatchScratch{}
	}
	kk, blocks, cols := k.k, k.blocks, k.m.Cols
	transposeLabels(s, labs, nb, cols)
	s.bs = growF(s.bs, nb*kk)
	s.ord = growI(s.ord, kk)
	treat := s.bs[:nb*kk]
	for i := 0; i < k.m.Rows; i++ {
		used := k.blockUsed[i]
		if used < 2 {
			for p := 0; p < nb; p++ {
				out.Row(p)[i] = math.NaN()
			}
			continue
		}
		for o := range treat {
			treat[o] = 0
		}
		row := k.m.Row(i)
		comp := k.complete[i*blocks : (i+1)*blocks]
		for b, ok := range comp {
			if !ok {
				continue
			}
			base := b * kk
			for j := 0; j < kk; j++ {
				v := row[base+j]
				labCol := s.labT[(base+j)*nb : (base+j)*nb+nb]
				for p, t := range labCol {
					treat[p*kk+int(t)] += v
				}
			}
		}
		gm, ssTotal, ssBlock := k.grandMean[i], k.ssTotal[i], k.ssBlock[i]
		for p := 0; p < nb; p++ {
			o := p * kk
			out.Row(p)[i] = blockFStat(treat[o:o+kk], s.ord, used, kk, gm, ssTotal, ssBlock)
		}
	}
}
