package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRanksNoTies(t *testing.T) {
	row := []float64{30, 10, 20}
	Ranks(row, nil)
	want := []float64{3, 1, 2}
	for i := range row {
		if row[i] != want[i] {
			t.Errorf("Ranks[%d] = %v, want %v", i, row[i], want[i])
		}
	}
}

func TestRanksWithTies(t *testing.T) {
	row := []float64{5, 1, 5, 3}
	Ranks(row, nil)
	// Sorted: 1, 3, 5, 5 -> ranks 1, 2, 3.5, 3.5.
	want := []float64{3.5, 1, 3.5, 2}
	for i := range row {
		if row[i] != want[i] {
			t.Errorf("Ranks[%d] = %v, want %v", i, row[i], want[i])
		}
	}
}

func TestRanksAllEqual(t *testing.T) {
	row := []float64{7, 7, 7, 7}
	Ranks(row, nil)
	for i, v := range row {
		if v != 2.5 {
			t.Errorf("Ranks[%d] = %v, want 2.5", i, v)
		}
	}
}

func TestRanksPreserveNaN(t *testing.T) {
	nan := math.NaN()
	row := []float64{nan, 4, 2, nan, 6}
	Ranks(row, nil)
	if !math.IsNaN(row[0]) || !math.IsNaN(row[3]) {
		t.Error("Ranks overwrote NaN entries")
	}
	want := []float64{0, 2, 1, 0, 3}
	for _, i := range []int{1, 2, 4} {
		if row[i] != want[i] {
			t.Errorf("Ranks[%d] = %v, want %v", i, row[i], want[i])
		}
	}
}

func TestRanksEmptyAndAllNaN(t *testing.T) {
	Ranks(nil, nil) // must not panic
	nan := math.NaN()
	row := []float64{nan, nan}
	Ranks(row, nil)
	if !math.IsNaN(row[0]) || !math.IsNaN(row[1]) {
		t.Error("all-NaN row modified")
	}
}

func TestRankRows(t *testing.T) {
	x := [][]float64{{3, 1, 2}, {10, 10, 30}}
	RankRows(x)
	if x[0][0] != 3 || x[0][1] != 1 || x[0][2] != 2 {
		t.Errorf("row 0 ranks = %v", x[0])
	}
	if x[1][0] != 1.5 || x[1][1] != 1.5 || x[1][2] != 3 {
		t.Errorf("row 1 ranks = %v", x[1])
	}
}

// Property: ranks of n distinct values are a permutation of 1..n, and the
// rank order matches the value order.
func TestQuickRanksAreConsistent(t *testing.T) {
	f := func(vals []float64) bool {
		row := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				row = append(row, v)
			}
		}
		orig := append([]float64(nil), row...)
		Ranks(row, nil)
		// Sum of mid-ranks over n non-missing values is always n(n+1)/2.
		n := len(row)
		sum := 0.0
		for _, r := range row {
			sum += r
		}
		if math.Abs(sum-float64(n*(n+1))/2) > 1e-9 {
			return false
		}
		// Order consistency: v_i < v_j implies rank_i < rank_j.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if orig[i] < orig[j] && row[i] >= row[j] {
					return false
				}
				if orig[i] == orig[j] && row[i] != row[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRanks76(b *testing.B) {
	row := make([]float64, 76)
	scratch := make([]int, 76)
	for i := range row {
		row[i] = float64((i * 31) % 19)
	}
	work := make([]float64, 76)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, row)
		Ranks(work, scratch)
	}
}
