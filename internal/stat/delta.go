// Delta evaluation: the O(1)-per-permutation fast path for rank-valued
// rows under single-exchange permutation orders.
//
// Rank-based tests (Wilcoxon always, every test under nonpara="y") run on
// mid-ranks — exact half-integers.  Scaling by 2 turns every cell into a
// small integer, so per-row subset sums become EXACT int64 arithmetic, and
// exact arithmetic is order-insensitive: a subset sum maintained by one
// subtract + one add per permutation (when consecutive labellings differ by
// a single element exchange, as in perm.RevolvingDoor's Gray order) is the
// same integer a full re-accumulation produces.  Converting that integer
// back to float64 is exact too (the representability bounds below), so the
// delta path's statistics are bitwise identical to Stats/StatsBatch *by
// construction* — the same argument PR 3 makes for lane-wise SIMD, made
// here for incremental evaluation.
//
// The cost model: the batched column-scatter path pays O(n1) element visits
// per (row, permutation); the delta path pays O(1) — two int32 loads, two
// int64 adds — leaving the per-permutation statistic tail (hoisted into
// per-row state, see wilxTail/tsTail) as the only remaining work.
package stat

import (
	"fmt"
	"math"

	"sprint/internal/matrix"
)

// Exchange is one revolving-door move between consecutive labellings of a
// two-sample design: column Out leaves class 1 and column In enters it
// (all other columns keep their labels).
type Exchange struct {
	Out, In int32
}

// DeltaKernel is implemented by kernels that can evaluate a permutation
// batch described as a start labelling plus a chain of single-element
// exchanges, updating per-row accumulators in O(1) per move.
type DeltaKernel interface {
	BatchKernel
	// DeltaOK is the dispatch predicate: whether the delta path is
	// available (every row exactly representable as scaled integers —
	// true for rank-transformed data) AND expected to outrun StatsBatch
	// for this kernel.  The Wilcoxon kernel always profits — its tail is
	// two flops, so removing the O(n1) gather dominates.  The two-sample
	// t kernels profit only when the accumulated group is large enough
	// that re-accumulation costs more than the scalar move recurrence;
	// with the SIMD batch kernels, the measured breakeven is ~32 columns
	// per group, which feasible complete enumerations (capped at
	// DefaultMaxComplete labellings, hence C(n, k) small) never reach —
	// so in practice the t kernels keep the batch path.  When false,
	// callers fall back to StatsBatch; StatsDelta itself stays callable
	// whenever the rows are representable.
	DeltaOK() bool
	// StatsDelta evaluates lab0 and the labellings reached by successively
	// applying moves, writing labelling p's statistics into out.Row(p)
	// (out.Rows = len(moves)+1).  The results are bitwise identical to
	// StatsBatch over the materialised labellings.  scratch may be nil.
	StatsDelta(lab0 []int, moves []Exchange, out matrix.Matrix, scratch *BatchScratch)
}

// Exactness bounds for the integer view.  Cells are stored as s = 2v (so
// mid-ranks become integers); with |s| ≤ maxScaled = 2^20 and at most
// maxIntCols = 2^11 columns, Σ|s| ≤ 2^31 and Σs² ≤ 2^51 — comfortably
// inside float64's 2^53 exact-integer range.  Every partial float sum the
// scalar/batched kernels form over such cells is therefore exact (each
// partial sum is a half- or quarter-integer with an exactly representable
// value), which is what makes integer accumulation bitwise interchangeable
// with float accumulation in ANY order.
const (
	maxIntCols = 1 << 11
	maxScaled  = 1 << 20
)

// intRank is the exact integer view of a matrix whose rows hold
// half-integer values (mid-ranks, or any quantized data meeting the
// bounds): data[i*cols+j] = 2·m[i][j] as int32, with 0 marking a missing
// cell (valid because mid-ranks are ≥ 1, so 2v ≥ 2; the per-cell gate
// rejects rows containing genuine zeros or negatives).
type intRank struct {
	cols  int
	data  []int32
	ok    []bool  // row passed the representability gate
	all   bool    // every row passed (the DeltaOK gate)
	sum2  []int64 // Σ 2v over the row's non-missing cells
	sumq4 []int64 // Σ (2v)² over the row's non-missing cells
}

// intCell reports whether v is representable in the integer view (NaN
// cells are, as the 0 sentinel).
func intCell(v float64) bool {
	if v != v {
		return true
	}
	sv := v * 2
	return sv == math.Trunc(sv) && sv >= 1 && sv <= maxScaled
}

// newIntRank builds the integer view, or nil when no row qualifies.  Like
// scrubNA, it scans before it allocates: raw continuous data fails the
// gate on each row's first fractional cell, so the common non-rank case
// costs one cheap pass and zero allocations.
func newIntRank(m matrix.Matrix) *intRank {
	if m.Cols == 0 || m.Cols > maxIntCols {
		return nil
	}
	any := false
	for i := 0; i < m.Rows && !any; i++ {
		rowOK := true
		for _, v := range m.Row(i) {
			if !intCell(v) {
				rowOK = false
				break
			}
		}
		any = rowOK
	}
	if !any {
		return nil
	}
	ir := &intRank{
		cols:  m.Cols,
		data:  make([]int32, len(m.Data)),
		ok:    make([]bool, m.Rows),
		sum2:  make([]int64, m.Rows),
		sumq4: make([]int64, m.Rows),
	}
	ir.all = true
	for i := 0; i < m.Rows; i++ {
		dst := ir.data[i*m.Cols : (i+1)*m.Cols]
		rowOK := true
		var s2, q4 int64
		for j, v := range m.Row(i) {
			if v != v { // missing: sentinel 0
				continue
			}
			if !intCell(v) {
				rowOK = false
				break
			}
			iv := int64(v * 2)
			dst[j] = int32(iv)
			s2 += iv
			q4 += iv * iv
		}
		if rowOK {
			ir.ok[i] = true
			ir.sum2[i], ir.sumq4[i] = s2, q4
		} else {
			ir.all = false
		}
	}
	return ir
}

func (ir *intRank) row(i int) []int32 { return ir.data[i*ir.cols : (i+1)*ir.cols] }

// checkDeltaShape validates a StatsDelta call against the kernel shape.
func checkDeltaShape(rows, cols int, lab0 []int, moves []Exchange, out matrix.Matrix) {
	if out.Cols != rows {
		panic(fmt.Sprintf("stat: delta out has %d columns for %d matrix rows", out.Cols, rows))
	}
	if len(lab0) != cols {
		panic(fmt.Sprintf("stat: delta start labelling has %d entries for %d columns", len(lab0), cols))
	}
	if out.Rows != len(moves)+1 {
		panic(fmt.Sprintf("stat: delta out has %d rows for %d moves", out.Rows, len(moves)))
	}
}

// selClass1 fills s.sel with the ascending class-1 columns of lab0 — the
// set the exchanges operate on — and returns it.
func selClass1(s *BatchScratch, lab0 []int) []int32 {
	sel := s.sel[:0]
	for j, l := range lab0 {
		if l == 1 {
			sel = append(sel, int32(j))
		}
	}
	s.sel = sel
	return sel
}

// ---- Wilcoxon delta ------------------------------------------------------

// DeltaOK implements DeltaKernel.  Mid-rank rows always qualify; arbitrary
// data qualifies only when every row meets the exactness gate.  The
// Wilcoxon delta always profits, so capability is the whole predicate.
func (k *wilcoxonKernel) DeltaOK() bool { return k.ir != nil && k.ir.all }

// StatsDelta implements DeltaKernel: per row, the class-1 count and scaled
// rank sum are maintained in int64 across moves — one subtract, one add —
// and each permutation's statistic falls out of the per-row hoisted tail.
func (k *wilcoxonKernel) StatsDelta(lab0 []int, moves []Exchange, out matrix.Matrix, s *BatchScratch) {
	nb := out.Rows
	if nb == 0 {
		return
	}
	checkDeltaShape(k.m.Rows, k.m.Cols, lab0, moves, out)
	if k.ir == nil || !k.ir.all {
		panic("stat: StatsDelta on a kernel whose rows are not integer-representable")
	}
	if s == nil {
		s = &BatchScratch{}
	}
	sel1 := selClass1(s, lab0)
	cls := k.cls
	stride := out.Cols
	for i := 0; i < k.m.Rows; i++ {
		ri := k.ir.row(i)
		n1c := 0
		var s1 int64
		for _, j := range sel1 {
			if v := ri[j]; v != 0 {
				n1c++
				s1 += int64(v)
			}
		}
		nn, total, totalSq := k.n[i], k.total[i], k.totalSq[i]
		full := nn == k.m.Cols
		tail := &k.tails[i]
		// NA-free rows with a computable tail: the steady-state lane.  The
		// class counts never vary, the tie-corrected variance is hoisted
		// per row, and the tracked sum converts exactly — so the loop body
		// is two int32 loads, one int64 update, and the two-flop tail.
		// The expressions below are wilxTail.stat with its (invariant)
		// branches hoisted out of the permutation loop: bitwise identical,
		// since  (total − sc) − mu1  is exactly the op sequence stat forms.
		if full && tail.ok {
			mu1, sd := tail.mu1, tail.sd
			o := i
			if cls == 1 {
				out.Data[o] = (float64(s1)*0.5 - mu1) / sd
				o += stride
				for _, mv := range moves {
					s1 += int64(ri[mv.In]) - int64(ri[mv.Out])
					out.Data[o] = (float64(s1)*0.5 - mu1) / sd
					o += stride
				}
			} else {
				// tail.neg: the accumulated class-0 sum is total − sc, and
				// the tracked class-1 sum already IS sc's complement — the
				// two derivations compose to sc0 = float64(sum2−s1)/2 and
				// s1stat = total − sc0, both exact.
				sum2 := k.ir.sum2[i]
				sc0 := float64(sum2-s1) * 0.5
				out.Data[o] = (total - sc0 - mu1) / sd
				o += stride
				for _, mv := range moves {
					s1 += int64(ri[mv.In]) - int64(ri[mv.Out])
					sc0 = float64(sum2-s1) * 0.5
					out.Data[o] = (total - sc0 - mu1) / sd
					o += stride
				}
			}
			continue
		}
		if full { // tail permanently uncomputable: NaN for every labelling
			o := i
			for p := 0; p < nb; p++ {
				out.Data[o] = math.NaN()
				o += stride
			}
			continue
		}
		// NA-bearing rows: counts shift with the moves; the general tail.
		sum2 := k.ir.sum2[i]
		o := i
		for p := 0; p < nb; p++ {
			if p > 0 {
				mv := moves[p-1]
				vi, vo := ri[mv.In], ri[mv.Out]
				s1 += int64(vi) - int64(vo)
				if vi != 0 {
					n1c++
				}
				if vo != 0 {
					n1c--
				}
			}
			var nc int
			var sc float64
			if cls == 1 {
				nc = n1c
				sc = float64(s1) * 0.5
			} else {
				nc = nn - n1c
				sc = float64(sum2-s1) * 0.5
			}
			out.Data[o] = wilcoxonStat(cls, nc, sc, nn, total, totalSq)
			o += stride
		}
	}
}

// ---- two-sample t delta --------------------------------------------------

// deltaMinGroup is the accumulated-group size below which the two-sample
// batch path (SIMD column scatter + shared tail) measures faster than the
// scalar move recurrence: the delta saves O(group) element visits per
// permutation but pays ~a dozen scalar ops per (row, move), while the
// AVX2 batch kernel amortises the same visits across four rows.  See
// BenchmarkKernelDelta (t-nonpara) and EXPERIMENTS.md.
const deltaMinGroup = 32

// DeltaOK implements DeltaKernel: the rows must be exactly
// integer-representable — rank data under nonpara="y", or naturally
// quantized inputs — and the accumulated group large enough for the move
// recurrence to beat SIMD re-accumulation.
func (k *twoSampleKernel) DeltaOK() bool {
	return k.ir != nil && k.ir.all && k.nsel >= deltaMinGroup
}

// StatsDelta implements DeltaKernel for the Welch and pooled t kernels.
// Per row, the class-1 count, scaled sum and scaled sum of squares are
// maintained in int64 across moves; whichever group the scalar rule
// accumulates (the fixed smaller class, or the class containing column 0)
// is derived exactly from the tracked class-1 sums — by identity when that
// group is class 1, by integer subtraction from the precomputed row totals
// otherwise — reproducing the float accumulation bit for bit.
func (k *twoSampleKernel) StatsDelta(lab0 []int, moves []Exchange, out matrix.Matrix, s *BatchScratch) {
	nb := out.Rows
	if nb == 0 {
		return
	}
	checkDeltaShape(k.m.Rows, k.m.Cols, lab0, moves, out)
	if k.ir == nil || !k.ir.all {
		panic("stat: StatsDelta on a kernel whose rows are not integer-representable")
	}
	if s == nil {
		s = &BatchScratch{}
	}
	cols := k.m.Cols
	sel1 := selClass1(s, lab0)
	n1 := len(sel1)
	// Per-permutation statistic sign, following the scalar rule: the
	// accumulated class is the fixed class on unbalanced designs, column
	// 0's class otherwise.  sign < 0 encodes "accumulated class is 0".
	s.sign = growF(s.sign, nb)
	has0 := lab0[0] == 1
	for p := 0; p < nb; p++ {
		if p > 0 {
			mv := moves[p-1]
			if mv.In == 0 {
				has0 = true
			} else if mv.Out == 0 {
				has0 = false
			}
		}
		cls := k.cls
		if cls < 0 {
			if has0 {
				cls = 1
			} else {
				cls = 0
			}
		}
		if cls == 0 {
			s.sign[p] = -1
		} else {
			s.sign[p] = 1
		}
	}
	// Accumulated-group size for NA-free rows (relabelling-invariant): the
	// class-1 size, or its complement when the fixed class is 0.  On
	// balanced designs both are cols/2.
	L := n1
	if k.cls == 0 {
		L = cols - n1
	}
	tail, tailOK := newTSTail(k.pooled, L, cols-L)
	stride := out.Cols
	sign := s.sign[:nb]
	// Constant-sign run boundaries.  On balanced designs the accumulated
	// class flips only when a move touches column 0; testing the sign per
	// permutation inside the row loop makes that branch data-dependent and
	// mispredict-prone right in front of the tail's divider chain, so the
	// row loops below iterate sign-homogeneous segments instead.
	s.seg = append(s.seg[:0], 0)
	for p := 1; p < nb; p++ {
		if (sign[p] > 0) != (sign[p-1] > 0) {
			s.seg = append(s.seg, int32(p))
		}
	}
	s.seg = append(s.seg, int32(nb))
	seg := s.seg
	s.vab = growF(s.vab, 2*nb) // per-perm (sa, qa) staging for the tail pass
	for i := 0; i < k.m.Rows; i++ {
		if k.flat[i] {
			o := i
			for p := 0; p < nb; p++ {
				out.Data[o] = math.NaN()
				o += stride
			}
			continue
		}
		ri := k.ir.row(i)
		na1 := 0
		var s1, q1 int64
		for _, j := range sel1 {
			if v := int64(ri[j]); v != 0 {
				na1++
				s1 += v
				q1 += v * v
			}
		}
		n, S, Q := k.n[i], k.sum[i], k.sumsq[i]
		sum2, sumq4 := k.ir.sum2[i], k.ir.sumq4[i]
		// NA-free rows with valid tail invariants: the steady-state lane —
		// counts never shift, so per permutation the work is the O(1)
		// integer update, two exact conversions and the one-division tail.
		// The recurrence and the tails are split into two passes (mirroring
		// the batch path's accumulate-then-finish structure): the first is
		// a pure integer chain, the second a run of independent tail
		// evaluations over sign-homogeneous segments.
		if tailOK && n == cols {
			sa := s.vab[:nb]
			qa := s.vab[nb : 2*nb]
			for si := 0; si+1 < len(seg); si++ {
				lo, hi := int(seg[si]), int(seg[si+1])
				if sign[lo] > 0 { // accumulated class is 1
					for p := lo; p < hi; p++ {
						if p > 0 {
							mv := moves[p-1]
							vi, vo := int64(ri[mv.In]), int64(ri[mv.Out])
							s1 += vi - vo
							q1 += vi*vi - vo*vo
						}
						sa[p] = float64(s1) * 0.5
						qa[p] = float64(q1) * 0.25
					}
				} else {
					for p := lo; p < hi; p++ {
						if p > 0 {
							mv := moves[p-1]
							vi, vo := int64(ri[mv.In]), int64(ri[mv.Out])
							s1 += vi - vo
							q1 += vi*vi - vo*vo
						}
						sa[p] = float64(sum2-s1) * 0.5
						qa[p] = float64(sumq4-q1) * 0.25
					}
				}
			}
			o := i
			for p := 0; p < nb; p++ {
				out.Data[o] = tail.stat(sign[p], S, Q, sa[p], qa[p])
				o += stride
			}
			continue
		}
		o := i
		for p := 0; p < nb; p++ {
			if p > 0 {
				mv := moves[p-1]
				vi, vo := int64(ri[mv.In]), int64(ri[mv.Out])
				s1 += vi - vo
				q1 += vi*vi - vo*vo
				if vi != 0 {
					na1++
				}
				if vo != 0 {
					na1--
				}
			}
			var na int
			var sa, qa float64
			if sign[p] > 0 { // accumulated class is 1
				na = na1
				sa = float64(s1) * 0.5
				qa = float64(q1) * 0.25
			} else {
				na = n - na1
				sa = float64(sum2-s1) * 0.5
				qa = float64(sumq4-q1) * 0.25
			}
			out.Data[o] = twoSampleStat(k.pooled, sign[p], n, S, Q, na, sa, qa)
			o += stride
		}
	}
}
