package stat

import (
	"math"
	"testing"

	"sprint/internal/matrix"
)

// lcg is a tiny deterministic generator for test data and labellings.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func (l *lcg) float() float64 { return float64(l.next()%100000)/7000 - 7 }

func (l *lcg) shuffle(lab []int) {
	for i := len(lab) - 1; i > 0; i-- {
		j := int(l.next() % uint64(i+1))
		lab[i], lab[j] = lab[j], lab[i]
	}
}

func testMatrix(rows, cols int, seed uint64, withNA bool) matrix.Matrix {
	m := matrix.New(rows, cols)
	r := lcg(seed)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = r.float()
		}
		if withNA && i%3 == 0 {
			row[(i*5+1)%cols] = math.NaN()
		}
	}
	return m
}

// kernelCases returns a design and matching label permuter per test.
func kernelCases(t *testing.T) []struct {
	name   string
	design *Design
	relab  func(*lcg, []int)
} {
	t.Helper()
	mk := func(test Test, labels []int) *Design {
		d, err := NewDesign(test, labels)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	shuffleAll := func(r *lcg, lab []int) { r.shuffle(lab) }
	flipPairs := func(r *lcg, lab []int) {
		for j := 0; j < len(lab)/2; j++ {
			if r.next()%2 == 1 {
				lab[2*j], lab[2*j+1] = lab[2*j+1], lab[2*j]
			}
		}
	}
	shuffleBlocks := func(k int) func(*lcg, []int) {
		return func(r *lcg, lab []int) {
			for b := 0; b < len(lab)/k; b++ {
				seg := lab[b*k : (b+1)*k]
				r.shuffle(seg)
			}
		}
	}
	return []struct {
		name   string
		design *Design
		relab  func(*lcg, []int)
	}{
		{"t", mk(Welch, []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}), shuffleAll},
		{"t.equalvar", mk(TEqualVar, []int{0, 0, 0, 1, 1, 1, 1, 1, 1, 1}), shuffleAll},
		{"wilcoxon", mk(Wilcoxon, []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}), shuffleAll},
		{"f", mk(F, []int{0, 0, 0, 1, 1, 1, 2, 2, 2}), shuffleAll},
		{"pairt", mk(PairT, []int{0, 1, 1, 0, 0, 1, 1, 0, 0, 1}), flipPairs},
		{"blockf", mk(BlockF, []int{0, 1, 2, 2, 0, 1, 1, 2, 0}), shuffleBlocks(3)},
	}
}

// TestKernelAgreesWithLegacyFunc: the batched kernel and the per-row
// statistic function must agree to rounding (and exactly on NaN-ness) for
// every test and many random labellings, with and without missing values.
func TestKernelAgreesWithLegacyFunc(t *testing.T) {
	for _, tc := range kernelCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d := tc.design
			for _, withNA := range []bool{false, true} {
				m := testMatrix(9, d.N, 0xabcdef^uint64(d.Test), withNA)
				if d.NeedsRanks() {
					scratch := make([]int, d.N)
					for i := 0; i < m.Rows; i++ {
						Ranks(m.Row(i), scratch)
					}
				}
				k, err := NewKernel(d, m)
				if err != nil {
					t.Fatal(err)
				}
				fn := d.Func()
				out := make([]float64, m.Rows)
				lab := append([]int(nil), d.Labels...)
				r := lcg(7)
				s := k.NewScratch()
				for trial := 0; trial < 50; trial++ {
					k.Stats(lab, out, s)
					for i := 0; i < m.Rows; i++ {
						want := fn(m.Row(i), lab)
						if math.IsNaN(want) != math.IsNaN(out[i]) {
							t.Fatalf("NA=%v trial %d row %d: kernel %v, legacy %v", withNA, trial, i, out[i], want)
						}
						if math.IsNaN(want) {
							continue
						}
						diff := math.Abs(out[i] - want)
						if diff > 1e-9*math.Max(math.Abs(want), 1) {
							t.Fatalf("NA=%v trial %d row %d: kernel %v, legacy %v", withNA, trial, i, out[i], want)
						}
					}
					tc.relab(&r, lab)
				}
			}
		})
	}
}

// TestKernelNilScratch: a nil scratch must allocate internally and give
// the same answers.
func TestKernelNilScratch(t *testing.T) {
	for _, tc := range kernelCases(t) {
		d := tc.design
		m := testMatrix(4, d.N, 3, false)
		if d.NeedsRanks() {
			for i := 0; i < m.Rows; i++ {
				Ranks(m.Row(i), nil)
			}
		}
		k, err := NewKernel(d, m)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]float64, m.Rows)
		b := make([]float64, m.Rows)
		k.Stats(d.Labels, a, nil)
		k.Stats(d.Labels, b, k.NewScratch())
		for i := range a {
			if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
				t.Fatalf("%s row %d: nil scratch %v != sized scratch %v", tc.name, i, a[i], b[i])
			}
		}
	}
}

// TestTwoSampleComplementExactNegation pins the tie discipline: the
// complement labelling must produce the bitwise-negated statistic, for
// the NaN-bearing balanced case included.
func TestTwoSampleComplementExactNegation(t *testing.T) {
	labels := []int{0, 1, 0, 1, 1, 0, 1, 0}
	for _, test := range []Test{Welch, TEqualVar, Wilcoxon} {
		d, err := NewDesign(test, labels)
		if err != nil {
			t.Fatal(err)
		}
		m := testMatrix(10, d.N, 0x1234, true)
		if d.NeedsRanks() {
			for i := 0; i < m.Rows; i++ {
				Ranks(m.Row(i), nil)
			}
		}
		k, err := NewKernel(d, m)
		if err != nil {
			t.Fatal(err)
		}
		comp := make([]int, len(labels))
		for i, l := range labels {
			comp[i] = 1 - l
		}
		a := make([]float64, m.Rows)
		b := make([]float64, m.Rows)
		k.Stats(labels, a, nil)
		k.Stats(comp, b, nil)
		for i := range a {
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
				if math.IsNaN(a[i]) != math.IsNaN(b[i]) {
					t.Errorf("%v row %d: NaN asymmetry %v vs %v", test, i, a[i], b[i])
				}
				continue
			}
			if b[i] != -a[i] {
				t.Errorf("%v row %d: complement %v != -%v exactly", test, i, b[i], a[i])
			}
		}
	}
}

// TestFRelabelExactInvariance pins the canonical-order reduction: a
// uniform class relabelling must leave the F statistic bitwise unchanged.
func TestFRelabelExactInvariance(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2, 0, 1, 2}
	d, err := NewDesign(F, labels)
	if err != nil {
		t.Fatal(err)
	}
	m := testMatrix(8, d.N, 0x777, true)
	k, err := NewKernel(d, m)
	if err != nil {
		t.Fatal(err)
	}
	perms := [][3]int{{0, 1, 2}, {1, 2, 0}, {2, 0, 1}, {0, 2, 1}, {1, 0, 2}, {2, 1, 0}}
	base := make([]float64, m.Rows)
	k.Stats(labels, base, nil)
	relab := make([]int, len(labels))
	out := make([]float64, m.Rows)
	for _, p := range perms[1:] {
		for i, l := range labels {
			relab[i] = p[l]
		}
		k.Stats(relab, out, nil)
		for i := range out {
			if !(out[i] == base[i] || (math.IsNaN(out[i]) && math.IsNaN(base[i]))) {
				t.Errorf("relabel %v row %d: F %v != %v exactly", p, i, out[i], base[i])
			}
		}
	}
}

// TestFRelabelInvarianceEqualMoments: two classes can share (sum, sum of
// squares) while differing in size; the canonical order must fall back to
// the count key or a uniform relabelling reassociates the reduction.
func TestFRelabelInvarianceEqualMoments(t *testing.T) {
	labels := []int{0, 0, 1, 1, 1, 2, 2}
	// class 0: {0.1, 0.3} and class 1: {0.3, 0.1, 0.0} have bitwise-equal
	// sums and sums of squares (addition commutes pairwise) but n=2 vs 3.
	row := []float64{0.1, 0.3, 0.3, 0.1, 0.0, 0.2, 0.5}
	d, err := NewDesign(F, labels)
	if err != nil {
		t.Fatal(err)
	}
	m, err := matrix.FromRows([][]float64{row})
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKernel(d, m)
	if err != nil {
		t.Fatal(err)
	}
	base := make([]float64, 1)
	k.Stats(labels, base, nil)
	perms := [][3]int{{1, 2, 0}, {2, 0, 1}, {0, 2, 1}, {1, 0, 2}, {2, 1, 0}}
	relab := make([]int, len(labels))
	out := make([]float64, 1)
	for _, p := range perms {
		for i, l := range labels {
			relab[i] = p[l]
		}
		k.Stats(relab, out, nil)
		if out[0] != base[0] {
			t.Errorf("relabel %v: F %v != %v exactly (equal-moment classes)", p, out[0], base[0])
		}
	}
}

// TestPairTFullFlipExactNegation pins the sign-trick exactness: flipping
// every pair negates the statistic bitwise.
func TestPairTFullFlipExactNegation(t *testing.T) {
	labels := []int{0, 1, 1, 0, 0, 1, 0, 1}
	d, err := NewDesign(PairT, labels)
	if err != nil {
		t.Fatal(err)
	}
	m := testMatrix(6, d.N, 0x5150, true)
	k, err := NewKernel(d, m)
	if err != nil {
		t.Fatal(err)
	}
	flip := make([]int, len(labels))
	for i, l := range labels {
		flip[i] = 1 - l
	}
	a := make([]float64, m.Rows)
	b := make([]float64, m.Rows)
	k.Stats(labels, a, nil)
	k.Stats(flip, b, nil)
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			if math.IsNaN(a[i]) != math.IsNaN(b[i]) {
				t.Errorf("row %d: NaN asymmetry %v vs %v", i, a[i], b[i])
			}
			continue
		}
		if b[i] != -a[i] {
			t.Errorf("row %d: full flip %v != -%v exactly", i, b[i], a[i])
		}
	}
}

// TestKernelQuantizedZeroVarianceNaN: a labelling that makes every group
// constant must yield NaN exactly as the legacy Welford path does, even
// though the subtraction-form moments leave a rounding residual on
// quantized data (the clampM2 tie to legacy semantics).
func TestKernelQuantizedZeroVarianceNaN(t *testing.T) {
	const v = 0.1
	check := func(name string, test Test, labels []int, row []float64) {
		t.Helper()
		d, err := NewDesign(test, labels)
		if err != nil {
			t.Fatal(err)
		}
		if legacy := d.Func()(row, labels); !math.IsNaN(legacy) {
			t.Fatalf("%s: legacy path gave %v, expected NaN test data", name, legacy)
		}
		m, err := matrix.FromRows([][]float64{row})
		if err != nil {
			t.Fatal(err)
		}
		k, err := NewKernel(d, m)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 1)
		k.Stats(labels, out, nil)
		if !math.IsNaN(out[0]) {
			t.Errorf("%s: kernel gave %v for a zero-variance labelling, want NaN", name, out[0])
		}
	}
	check("welch", Welch, []int{0, 0, 0, 1, 1, 1}, []float64{v, v, v, 2 * v, 2 * v, 2 * v})
	check("equalvar", TEqualVar, []int{0, 0, 0, 1, 1, 1}, []float64{v, v, v, 2 * v, 2 * v, 2 * v})
	check("f", F, []int{0, 0, 1, 1, 2, 2}, []float64{v, v, 2 * v, 2 * v, 3 * v, 3 * v})
	// Pairs chosen so every difference is the same bit pattern (0 + 2v is
	// exact), making the pair variance mathematically and legacy-exactly
	// zero while the sum-form mean picks up rounding.
	check("pairt", PairT, []int{0, 1, 0, 1, 0, 1, 0, 1},
		[]float64{0, 2 * v, 0, 2 * v, 0, 2 * v, 0, 2 * v})
}

// TestKernelConstantRowsNaN: rows with no variance must be NaN for every
// labelling (the legacy zero-variance behaviour).
func TestKernelConstantRowsNaN(t *testing.T) {
	labels := []int{0, 0, 0, 1, 1, 1}
	for _, test := range []Test{Welch, TEqualVar} {
		d, _ := NewDesign(test, labels)
		m, err := matrix.FromRows([][]float64{
			{4, 4, 4, 4, 4, 4},
			{4, 4, math.NaN(), 4, 4, 4},
			{1, 2, 3, 4, 5, 6},
		})
		if err != nil {
			t.Fatal(err)
		}
		k, err := NewKernel(d, m)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, m.Rows)
		k.Stats(labels, out, nil)
		if !math.IsNaN(out[0]) || !math.IsNaN(out[1]) {
			t.Errorf("%v: constant rows gave (%v, %v), want NaN", test, out[0], out[1])
		}
		if math.IsNaN(out[2]) {
			t.Errorf("%v: varying row gave NaN", test)
		}
	}
}

// TestNewKernelShapeValidation rejects mismatched matrices.
func TestNewKernelShapeValidation(t *testing.T) {
	d, _ := NewDesign(Welch, []int{0, 0, 1, 1})
	if _, err := NewKernel(d, matrix.New(3, 5)); err == nil {
		t.Error("NewKernel accepted a column-count mismatch")
	}
	bad := matrix.Matrix{Data: make([]float64, 7), Rows: 2, Cols: 4}
	if _, err := NewKernel(d, bad); err == nil {
		t.Error("NewKernel accepted an inconsistent flat buffer")
	}
}
