// Two-sample batch accumulation kernel: 2 permutations × 2 rows per pass.
//
// vab interleaves a row pair as vab[2j] = rowA[j], vab[2j+1] = rowB[j], so
// one 16-byte MOVUPD load yields (rowA[j], rowB[j]) and the lane-wise
// ADDPD/MULPD advance both rows' accumulation chains in a single
// instruction.  Lane-wise packed arithmetic performs exactly the scalar
// IEEE-754 operations — each lane is one row's serial chain in ascending
// selected-column order — so the results are bitwise identical to the pure
// Go path (accum_generic.go), which is also the reference the tests pin.
//
// Accumulator layout on return (see accumPair's doc comment):
//   acc[0]=sa0 acc[1]=sb0 acc[2]=qa0 acc[3]=qb0   (permutation p)
//   acc[4]=sa1 acc[5]=sb1 acc[6]=qa1 acc[7]=qb1   (permutation p+1)

#include "textflag.h"

// func accumPair(vab *float64, i0 *int32, i1 *int32, n int, acc *[8]float64)
TEXT ·accumPair(SB), NOSPLIT, $0-40
	MOVQ vab+0(FP), SI
	MOVQ i0+8(FP), DI
	MOVQ i1+16(FP), R8
	MOVQ n+24(FP), CX
	MOVQ acc+32(FP), DX
	PXOR X0, X0 // (sa0, sb0)
	PXOR X1, X1 // (qa0, qb0)
	PXOR X2, X2 // (sa1, sb1)
	PXOR X3, X3 // (qa1, qb1)
	XORQ AX, AX // e
	JMP  cond

loop:
	MOVL (DI)(AX*4), R9  // j0 = i0[e]
	MOVL (R8)(AX*4), R10 // j1 = i1[e]
	SHLQ $4, R9          // byte offset of vab[2*j0]
	SHLQ $4, R10
	MOVUPD (SI)(R9*1), X4  // (rowA[j0], rowB[j0])
	ADDPD  X4, X0
	MULPD  X4, X4
	ADDPD  X4, X1
	MOVUPD (SI)(R10*1), X5 // (rowA[j1], rowB[j1])
	ADDPD  X5, X2
	MULPD  X5, X5
	ADDPD  X5, X3
	INCQ   AX

cond:
	CMPQ AX, CX
	JLT  loop
	MOVUPD X0, (DX)
	MOVUPD X1, 16(DX)
	MOVUPD X2, 32(DX)
	MOVUPD X3, 48(DX)
	RET
