//go:build !amd64

package stat

// Portable fallbacks: on non-amd64 the dispatch never selects an assembly
// ISA (bestISA reports generic), so these bindings exist only to satisfy
// the shared call sites in batch.go.  The pure-Go kernels in accum_go.go
// are the reference semantics every implementation is pinned to.

func accumPair(vab *float64, i0 *int32, i1 *int32, n int, acc *[8]float64) {
	accumPairGo(vab, i0, i1, n, acc)
}

func accumQuad(v4 *float64, i0 *int32, i1 *int32, n int, acc *[16]float64) {
	accumQuadGo(v4, i0, i1, n, acc)
}

// bestISA reports the only ISA available off amd64: the portable Go kernel.
func bestISA() KernelISA { return ISAGeneric }
