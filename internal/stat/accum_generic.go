//go:build !amd64

package stat

// accumPair is the portable fallback of the SSE2 kernel in accum_amd64.s:
// see accum_amd64.go for the contract.  The loop below is the reference
// semantics — two permutations × two rows, each accumulator advanced in
// ascending selected-column order, one scalar IEEE-754 operation per step —
// and the assembly's lane-wise packed instructions perform exactly these
// operations, so the two implementations are bitwise interchangeable.
func accumPair(vab *float64, i0 *int32, i1 *int32, n int, acc *[8]float64) {
	var sa0, sb0, qa0, qb0, sa1, sb1, qa1, qb1 float64
	for e := 0; e < n; e++ {
		j0 := ptrI32(i0, e)
		j1 := ptrI32(i1, e)
		vA0 := gather(vab, 2*j0)
		vB0 := gather(vab, 2*j0+1)
		sa0 += vA0
		qa0 += vA0 * vA0
		sb0 += vB0
		qb0 += vB0 * vB0
		vA1 := gather(vab, 2*j1)
		vB1 := gather(vab, 2*j1+1)
		sa1 += vA1
		qa1 += vA1 * vA1
		sb1 += vB1
		qb1 += vB1 * vB1
	}
	acc[0], acc[1], acc[2], acc[3] = sa0, sb0, qa0, qb0
	acc[4], acc[5], acc[6], acc[7] = sa1, sb1, qa1, qb1
}
