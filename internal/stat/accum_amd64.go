//go:build amd64

package stat

// accumPair accumulates (sum, sum of squares) of two permutations' selected
// columns over an interleaved row pair — the SSE2 kernel in accum_amd64.s.
//
// vab points at the interleaved pair buffer (vab[2j] = rowA[j], vab[2j+1] =
// rowB[j]); i0 and i1 point at the two permutations' selected-column lists
// (each n ascending indices, all < cols by construction).  On return
// acc[0..3] hold permutation i0's (sa, sb, qa, qb) interleaved as
// (sa0, sb0, qa0, qb0) and acc[4..7] permutation i1's.  Bitwise identical
// to the pure Go accumulation (accumPairGo): each SIMD lane performs one
// row's scalar IEEE-754 chain in the same ascending order.
//
//go:noescape
func accumPair(vab *float64, i0 *int32, i1 *int32, n int, acc *[8]float64)

// accumQuad is the 4-lane AVX2 widening of accumPair (accum_avx2_amd64.s):
// v4 interleaves FOUR rows as v4[4j+r] = row_r[j], one 32-byte VMOVUPD
// yields all four rows' values at a column, and lane-wise VADDPD/VMULPD
// advance four rows × two permutations per iteration.  acc layout matches
// accumQuadGo: [0..3] perm i0 sums, [4..7] perm i0 sums of squares,
// [8..15] the same for perm i1.  Callers must have verified AVX2 support
// (ActiveKernelISA() == ISAAVX2 implies it).
//
//go:noescape
func accumQuad(v4 *float64, i0 *int32, i1 *int32, n int, acc *[16]float64)

// cpuidex executes CPUID with the given leaf and subleaf
// (cpuid_amd64.s).
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0, reporting which vector
// register states the OS saves across context switches (cpuid_amd64.s).
// Only valid when CPUID.1:ECX.OSXSAVE is set.
func xgetbv0() (eax, edx uint32)

// bestISA probes the CPU once at init: AVX2 requires the instruction set
// itself (CPUID.7.0:EBX bit 5) AND OS support for saving YMM state
// (OSXSAVE + XCR0 bits 1 and 2) — the standard detection sequence.  SSE2
// is architectural on amd64.
func bestISA() KernelISA {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return ISASSE2
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return ISASSE2
	}
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 { // XMM and YMM state enabled
		return ISASSE2
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	if ebx7&(1<<5) == 0 { // AVX2
		return ISASSE2
	}
	return ISAAVX2
}
