//go:build amd64

package stat

// accumPair accumulates (sum, sum of squares) of two permutations' selected
// columns over an interleaved row pair — the SSE2 kernel in accum_amd64.s.
//
// vab points at the interleaved pair buffer (vab[2j] = rowA[j], vab[2j+1] =
// rowB[j]); i0 and i1 point at the two permutations' selected-column lists
// (each n ascending indices, all < cols by construction).  On return
// acc[0..3] hold permutation i0's (sa, sb, qa, qb) interleaved as
// (sa0, sb0, qa0, qb0) and acc[4..7] permutation i1's.  Bitwise identical
// to the pure Go accumulation: each SIMD lane performs one row's scalar
// IEEE-754 chain in the same ascending order.
//
//go:noescape
func accumPair(vab *float64, i0 *int32, i1 *int32, n int, acc *[8]float64)
