package stat

import (
	"math"
	"testing"

	"sprint/internal/matrix"
)

// batchCases extends kernelCases with deliberately nasty designs: an
// unbalanced two-sample split, quantized (tied) values and missing cells.
func batchCases(t *testing.T) []struct {
	name   string
	design *Design
	relab  func(*lcg, []int)
} {
	t.Helper()
	cases := kernelCases(t)
	mk := func(test Test, labels []int) *Design {
		d, err := NewDesign(test, labels)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases = append(cases, struct {
		name   string
		design *Design
		relab  func(*lcg, []int)
	}{"t-unbalanced", mk(Welch, []int{0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1}), func(r *lcg, lab []int) { r.shuffle(lab) }})
	return cases
}

// quantize rounds matrix cells to a coarse grid so tied values, tied group
// sums and zero group variances actually occur.
func quantize(m matrix.Matrix) {
	for i, v := range m.Data {
		if v == v {
			m.Data[i] = math.Round(v*4) / 4
		}
	}
}

// TestStatsBatchBitwiseEqualsScalar: for every test, NA setting and batch
// size, StatsBatch must reproduce the scalar Stats bit patterns exactly —
// not approximately — including NaN placement.
func TestStatsBatchBitwiseEqualsScalar(t *testing.T) {
	for _, tc := range batchCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d := tc.design
			for _, withNA := range []bool{false, true} {
				m := testMatrix(11, d.N, 0xfeed^uint64(d.Test), withNA)
				quantize(m)
				if d.NeedsRanks() {
					for i := 0; i < m.Rows; i++ {
						Ranks(m.Row(i), nil)
					}
				}
				k, err := NewKernel(d, m)
				if err != nil {
					t.Fatal(err)
				}
				bk, ok := k.(BatchKernel)
				if !ok {
					t.Fatalf("kernel for %v does not implement BatchKernel", d.Test)
				}
				for _, nb := range []int{1, 2, 3, 7, 16, 64} {
					// Draw nb valid labellings, starting from the observed.
					labs := make([]int, nb*d.N)
					lab := append([]int(nil), d.Labels...)
					r := lcg(uint64(nb) * 13)
					for p := 0; p < nb; p++ {
						copy(labs[p*d.N:(p+1)*d.N], lab)
						tc.relab(&r, lab)
					}
					out := matrix.New(nb, m.Rows)
					bk.StatsBatch(labs, out, bk.NewBatchScratch(nb))
					want := make([]float64, m.Rows)
					ks := k.NewScratch()
					for p := 0; p < nb; p++ {
						k.Stats(labs[p*d.N:(p+1)*d.N], want, ks)
						got := out.Row(p)
						for i := range want {
							if math.Float64bits(got[i]) != math.Float64bits(want[i]) &&
								!(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
								t.Fatalf("NA=%v nb=%d perm %d row %d: batch %v (bits %x) != scalar %v (bits %x)",
									withNA, nb, p, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
							}
						}
					}
				}
			}
		})
	}
}

// TestStatsBatchNilScratch: a nil scratch must allocate internally and give
// the same answers as a sized one.
func TestStatsBatchNilScratch(t *testing.T) {
	for _, tc := range batchCases(t) {
		d := tc.design
		m := testMatrix(5, d.N, 99, true)
		if d.NeedsRanks() {
			for i := 0; i < m.Rows; i++ {
				Ranks(m.Row(i), nil)
			}
		}
		k, err := NewKernel(d, m)
		if err != nil {
			t.Fatal(err)
		}
		bk := k.(BatchKernel)
		labs := append(append([]int(nil), d.Labels...), d.Labels...)
		a := matrix.New(2, m.Rows)
		b := matrix.New(2, m.Rows)
		bk.StatsBatch(labs, a, nil)
		bk.StatsBatch(labs, b, bk.NewBatchScratch(2))
		for i := range a.Data {
			if a.Data[i] != b.Data[i] && !(math.IsNaN(a.Data[i]) && math.IsNaN(b.Data[i])) {
				t.Fatalf("%s: nil scratch diverges at %d: %v vs %v", tc.name, i, a.Data[i], b.Data[i])
			}
		}
	}
}

// TestStatsBatchZeroAllocs: once a scratch has been warmed, steady-state
// StatsBatch calls must not allocate — the property the jobs worker path
// relies on to reuse one scratch across its whole lifetime.
func TestStatsBatchZeroAllocs(t *testing.T) {
	for _, tc := range batchCases(t) {
		d := tc.design
		m := testMatrix(32, d.N, 5, true)
		if d.NeedsRanks() {
			for i := 0; i < m.Rows; i++ {
				Ranks(m.Row(i), nil)
			}
		}
		k, err := NewKernel(d, m)
		if err != nil {
			t.Fatal(err)
		}
		bk := k.(BatchKernel)
		const nb = 8
		labs := make([]int, nb*d.N)
		for p := 0; p < nb; p++ {
			copy(labs[p*d.N:(p+1)*d.N], d.Labels)
		}
		out := matrix.New(nb, m.Rows)
		s := bk.NewBatchScratch(nb)
		bk.StatsBatch(labs, out, s) // warm every grow-on-demand field
		allocs := testing.AllocsPerRun(20, func() {
			bk.StatsBatch(labs, out, s)
		})
		if allocs != 0 {
			t.Errorf("%s: StatsBatch allocates %.1f objects per call in steady state, want 0", tc.name, allocs)
		}
	}
}

// TestStatsBatchScratchReusedAcrossKernels: one BatchScratch value must be
// safely reusable across kernels of different tests and batch sizes (the
// per-worker ownership pattern), growing on demand without corruption.
func TestStatsBatchScratchReusedAcrossKernels(t *testing.T) {
	s := &BatchScratch{}
	for _, tc := range batchCases(t) {
		d := tc.design
		m := testMatrix(6, d.N, 21, true)
		if d.NeedsRanks() {
			for i := 0; i < m.Rows; i++ {
				Ranks(m.Row(i), nil)
			}
		}
		bk := mustKernel(t, d, m).(BatchKernel)
		for _, nb := range []int{4, 1, 9} {
			labs := make([]int, nb*d.N)
			lab := append([]int(nil), d.Labels...)
			r := lcg(77)
			for p := 0; p < nb; p++ {
				copy(labs[p*d.N:(p+1)*d.N], lab)
				tc.relab(&r, lab)
			}
			got := matrix.New(nb, m.Rows)
			bk.StatsBatch(labs, got, s) // shared, reused scratch
			fresh := matrix.New(nb, m.Rows)
			bk.StatsBatch(labs, fresh, bk.NewBatchScratch(nb))
			for i := range got.Data {
				if got.Data[i] != fresh.Data[i] && !(math.IsNaN(got.Data[i]) && math.IsNaN(fresh.Data[i])) {
					t.Fatalf("%s nb=%d: reused scratch diverges at %d", tc.name, nb, i)
				}
			}
		}
	}
}

func mustKernel(t *testing.T, d *Design, m matrix.Matrix) Kernel {
	t.Helper()
	k, err := NewKernel(d, m)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
