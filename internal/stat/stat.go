// Package stat implements the six test statistics supported by mt.maxT and
// its SPRINT parallel counterpart pmaxT (Section 3.1 of the paper):
//
//	t           two-sample Welch t-statistic (unequal variances)
//	t.equalvar  two-sample t-statistic with pooled variance
//	wilcoxon    standardized rank-sum Wilcoxon statistic
//	f           one-way ANOVA F-statistic
//	pairt       paired t-statistic
//	blockf      F-statistic adjusting for block differences
//
// All statistics operate on one row (gene) of the expression matrix at a
// time, under an arbitrary labelling of the columns (samples).  Permutation
// testing re-labels the columns rather than moving the data, so a statistic
// is a pure function of (row values, label vector).
//
// Missing values are represented as NaN and are excluded from the
// computation, mirroring the `na` parameter of mt.maxT ("all missing values
// will be excluded from the computations").  A statistic that cannot be
// computed (e.g. a group with fewer than two observations, or zero variance
// in every group) is reported as NaN; the maxT engine treats such values as
// never exceeding any threshold.
package stat

import (
	"fmt"
	"math"
)

// Test enumerates the statistics methods of mt.maxT / pmaxT.
type Test int

const (
	// Welch is the default two-sample t-test with unequal variances
	// (mt.maxT test="t").
	Welch Test = iota
	// TEqualVar is the two-sample t-test with pooled variance
	// (test="t.equalvar").
	TEqualVar
	// Wilcoxon is the standardized rank-sum test (test="wilcoxon").
	Wilcoxon
	// F is the one-way ANOVA F-test across k>=2 classes (test="f").
	F
	// PairT is the paired t-test (test="pairt").
	PairT
	// BlockF is the F-test adjusting for block differences
	// (test="blockf").
	BlockF
)

var testNames = map[Test]string{
	Welch:     "t",
	TEqualVar: "t.equalvar",
	Wilcoxon:  "wilcoxon",
	F:         "f",
	PairT:     "pairt",
	BlockF:    "blockf",
}

// String returns the mt.maxT name of the test ("t", "t.equalvar",
// "wilcoxon", "f", "pairt", "blockf").
func (t Test) String() string {
	if s, ok := testNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Test(%d)", int(t))
}

// ParseTest converts an mt.maxT test name into a Test value.
func ParseTest(s string) (Test, error) {
	for t, name := range testNames {
		if name == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("stat: unknown test %q (want one of t, t.equalvar, wilcoxon, f, pairt, blockf)", s)
}

// TwoSample reports whether the test compares exactly two classes with a
// free labelling (t, t.equalvar, wilcoxon).  These tests share the
// two-sample permutation generators.
func (t Test) TwoSample() bool {
	return t == Welch || t == TEqualVar || t == Wilcoxon
}

// Design captures the validated experimental design derived from the
// classlabel argument: how many classes there are, how columns group into
// pairs or blocks, and which statistic applies.  A Design is immutable after
// construction and safe for concurrent use.
type Design struct {
	Test   Test
	Labels []int // the observed classlabel, one entry per column
	N      int   // number of columns (samples)
	K      int   // number of classes
	Counts []int // observations per class in the observed labelling

	// Pairs is the number of (0,1) pairs for PairT; columns 2j and 2j+1
	// form pair j.
	Pairs int
	// Blocks and BlockSize describe the BlockF layout: Blocks consecutive
	// groups of BlockSize columns, each labelled with a permutation of
	// 0..BlockSize-1.
	Blocks, BlockSize int
}

// NewDesign validates classlabel against the requirements of the chosen test
// and returns the resulting design.  The validation rules follow mt.maxT:
//
//   - t, t.equalvar, wilcoxon: labels must be 0/1 with at least two columns
//     in each class (variance estimates need two observations).
//   - f: labels must cover 0..k-1 for some k >= 2, each class with at least
//     two columns.
//   - pairt: an even number of columns; columns 2j and 2j+1 form a pair and
//     must carry labels {0,1} in either order.
//   - blockf: the label vector must consist of consecutive blocks, each a
//     permutation of 0..k-1; the block size k is inferred from the maximum
//     label + 1 and must divide the column count.
func NewDesign(test Test, classlabel []int) (*Design, error) {
	n := len(classlabel)
	if n == 0 {
		return nil, fmt.Errorf("stat: empty classlabel")
	}
	d := &Design{
		Test:   test,
		Labels: append([]int(nil), classlabel...),
		N:      n,
	}
	maxLabel := 0
	for i, l := range classlabel {
		if l < 0 {
			return nil, fmt.Errorf("stat: classlabel[%d] = %d is negative", i, l)
		}
		if l > maxLabel {
			maxLabel = l
		}
	}
	d.K = maxLabel + 1
	d.Counts = make([]int, d.K)
	for _, l := range classlabel {
		d.Counts[l]++
	}
	for c, cnt := range d.Counts {
		if cnt == 0 {
			return nil, fmt.Errorf("stat: class %d has no columns (labels must cover 0..k-1)", c)
		}
	}

	switch test {
	case Welch, TEqualVar, Wilcoxon:
		if d.K != 2 {
			return nil, fmt.Errorf("stat: test %q requires exactly 2 classes, classlabel has %d", test, d.K)
		}
		if d.Counts[0] < 2 || d.Counts[1] < 2 {
			return nil, fmt.Errorf("stat: test %q requires at least 2 columns per class (have %d and %d)",
				test, d.Counts[0], d.Counts[1])
		}
	case F:
		if d.K < 2 {
			return nil, fmt.Errorf("stat: test \"f\" requires at least 2 classes")
		}
		for c, cnt := range d.Counts {
			if cnt < 2 {
				return nil, fmt.Errorf("stat: test \"f\" requires at least 2 columns in class %d (have %d)", c, cnt)
			}
		}
	case PairT:
		if d.K != 2 {
			return nil, fmt.Errorf("stat: test \"pairt\" requires 2 classes, classlabel has %d", d.K)
		}
		if n%2 != 0 {
			return nil, fmt.Errorf("stat: test \"pairt\" requires an even number of columns, have %d", n)
		}
		d.Pairs = n / 2
		for j := 0; j < d.Pairs; j++ {
			a, b := classlabel[2*j], classlabel[2*j+1]
			if a+b != 1 {
				return nil, fmt.Errorf("stat: pair %d has labels (%d,%d), want one 0 and one 1", j, a, b)
			}
		}
		if d.Pairs < 2 {
			return nil, fmt.Errorf("stat: test \"pairt\" requires at least 2 pairs")
		}
	case BlockF:
		k := d.K
		if k < 2 {
			return nil, fmt.Errorf("stat: test \"blockf\" requires at least 2 treatments")
		}
		if n%k != 0 {
			return nil, fmt.Errorf("stat: test \"blockf\": %d columns not divisible by block size %d", n, k)
		}
		d.BlockSize = k
		d.Blocks = n / k
		if d.Blocks < 2 {
			return nil, fmt.Errorf("stat: test \"blockf\" requires at least 2 blocks")
		}
		seen := make([]bool, k)
		for b := 0; b < d.Blocks; b++ {
			for i := range seen {
				seen[i] = false
			}
			for j := 0; j < k; j++ {
				l := classlabel[b*k+j]
				if seen[l] {
					return nil, fmt.Errorf("stat: block %d repeats treatment %d", b, l)
				}
				seen[l] = true
			}
		}
	default:
		return nil, fmt.Errorf("stat: unknown test %v", test)
	}
	return d, nil
}

// Func returns the statistic evaluator for the design.  The returned
// function computes the statistic of one row under the supplied label
// vector, which must have the same length and class structure as the
// design's observed labels.  It is safe to call the returned function from
// multiple goroutines concurrently as long as each call uses its own row and
// label slices.
func (d *Design) Func() func(row []float64, lab []int) float64 {
	switch d.Test {
	case Welch:
		return welchT
	case TEqualVar:
		return equalVarT
	case Wilcoxon:
		return wilcoxonZ
	case F:
		k := d.K
		return func(row []float64, lab []int) float64 { return onewayF(row, lab, k) }
	case PairT:
		return pairedT
	case BlockF:
		k, l := d.BlockSize, d.Blocks
		return func(row []float64, lab []int) float64 { return blockF(row, lab, k, l) }
	default:
		panic(fmt.Sprintf("stat: Func on invalid design %v", d.Test))
	}
}

// NeedsRanks reports whether the maxT engine must rank-transform the rows
// before evaluating this design's statistic.  Wilcoxon is defined on ranks.
func (d *Design) NeedsRanks() bool { return d.Test == Wilcoxon }

// groupMoments accumulates per-class count, mean and sum of squared
// deviations for one row, skipping NaN entries.  It returns parallel slices
// indexed by class.  Welford's online algorithm keeps it single-pass and
// numerically stable.
func groupMoments(row []float64, lab []int, k int, n []int, mean, m2 []float64) {
	for i := range n {
		n[i], mean[i], m2[i] = 0, 0, 0
	}
	for j, v := range row {
		if math.IsNaN(v) {
			continue
		}
		g := lab[j]
		if g < 0 || g >= k {
			continue
		}
		n[g]++
		delta := v - mean[g]
		mean[g] += delta / float64(n[g])
		m2[g] += delta * (v - mean[g])
	}
}

// welchT computes the two-sample Welch t-statistic (class 1 mean minus
// class 0 mean, unequal variances).  NaN if either class has fewer than two
// non-missing observations or the standard error is zero.
func welchT(row []float64, lab []int) float64 {
	var n [2]int
	var mean, m2 [2]float64
	groupMoments(row, lab, 2, n[:], mean[:], m2[:])
	if n[0] < 2 || n[1] < 2 {
		return math.NaN()
	}
	v0 := m2[0] / float64(n[0]-1)
	v1 := m2[1] / float64(n[1]-1)
	se := math.Sqrt(v0/float64(n[0]) + v1/float64(n[1]))
	if se == 0 {
		return math.NaN()
	}
	return (mean[1] - mean[0]) / se
}

// equalVarT computes the pooled-variance two-sample t-statistic.
func equalVarT(row []float64, lab []int) float64 {
	var n [2]int
	var mean, m2 [2]float64
	groupMoments(row, lab, 2, n[:], mean[:], m2[:])
	if n[0] < 2 || n[1] < 2 {
		return math.NaN()
	}
	df := float64(n[0] + n[1] - 2)
	pooled := (m2[0] + m2[1]) / df
	se := math.Sqrt(pooled * (1/float64(n[0]) + 1/float64(n[1])))
	if se == 0 {
		return math.NaN()
	}
	return (mean[1] - mean[0]) / se
}

// wilcoxonZ computes the standardized rank-sum statistic.  The caller is
// expected to have rank-transformed the row (see Ranks); the statistic is
// then the standardized sum of class-1 values under sampling without
// replacement:
//
//	z = (S1 - n1*ybar) / sqrt(n0*n1/(n*(n-1)) * sum((y - ybar)^2))
//
// With y equal to mid-ranks this is exactly the tie-corrected Wilcoxon
// z-score.  The formula is valid for arbitrary y, so it degrades gracefully
// if a caller passes raw values.
func wilcoxonZ(row []float64, lab []int) float64 {
	var n [2]int
	var sum [2]float64
	var total, totalSq float64
	for j, v := range row {
		if math.IsNaN(v) {
			continue
		}
		g := lab[j]
		if g < 0 || g > 1 {
			continue
		}
		n[g]++
		sum[g] += v
		total += v
		totalSq += v * v
	}
	nn := n[0] + n[1]
	if n[0] < 2 || n[1] < 2 || nn < 3 {
		return math.NaN()
	}
	ybar := total / float64(nn)
	ssq := totalSq - float64(nn)*ybar*ybar
	variance := float64(n[0]) * float64(n[1]) / (float64(nn) * float64(nn-1)) * ssq
	if variance <= 0 {
		return math.NaN()
	}
	return (sum[1] - float64(n[1])*ybar) / math.Sqrt(variance)
}

// onewayF computes the one-way ANOVA F-statistic across k classes.
func onewayF(row []float64, lab []int, k int) float64 {
	n := make([]int, k)
	mean := make([]float64, k)
	m2 := make([]float64, k)
	groupMoments(row, lab, k, n, mean, m2)
	total := 0
	var grand float64
	for g := 0; g < k; g++ {
		if n[g] < 2 {
			return math.NaN()
		}
		total += n[g]
		grand += mean[g] * float64(n[g])
	}
	grand /= float64(total)
	var ssBetween, ssWithin float64
	for g := 0; g < k; g++ {
		d := mean[g] - grand
		ssBetween += float64(n[g]) * d * d
		ssWithin += m2[g]
	}
	dfBetween := float64(k - 1)
	dfWithin := float64(total - k)
	if dfWithin <= 0 || ssWithin == 0 {
		return math.NaN()
	}
	return (ssBetween / dfBetween) / (ssWithin / dfWithin)
}

// pairedT computes the paired t-statistic.  Columns 2j and 2j+1 form pair
// j; the difference is (value labelled 1) - (value labelled 0).  Pairs with
// a missing member are excluded.
func pairedT(row []float64, lab []int) float64 {
	pairs := len(row) / 2
	var m int
	var mean, m2 float64
	for j := 0; j < pairs; j++ {
		a, b := row[2*j], row[2*j+1]
		if math.IsNaN(a) || math.IsNaN(b) {
			continue
		}
		d := b - a
		if lab[2*j] == 1 { // pair stored (1,0): difference flips sign
			d = -d
		}
		m++
		delta := d - mean
		mean += delta / float64(m)
		m2 += delta * (d - mean)
	}
	if m < 2 {
		return math.NaN()
	}
	sd := math.Sqrt(m2 / float64(m-1))
	if sd == 0 {
		return math.NaN()
	}
	return mean / (sd / math.Sqrt(float64(m)))
}

// blockF computes the randomized-complete-block F-statistic for treatment
// effects: a two-way ANOVA without interaction, with one observation per
// (block, treatment) cell.  Blocks containing a missing value are excluded
// entirely for that row, preserving the balanced layout the decomposition
// requires.
func blockF(row []float64, lab []int, k, blocks int) float64 {
	treatSum := make([]float64, k)
	blockUsed := 0
	var grand float64
	var ssTotal float64
	// First pass: identify complete blocks and accumulate sums.
	complete := make([]bool, blocks)
	for b := 0; b < blocks; b++ {
		ok := true
		for j := 0; j < k; j++ {
			if math.IsNaN(row[b*k+j]) {
				ok = false
				break
			}
		}
		complete[b] = ok
		if ok {
			blockUsed++
		}
	}
	if blockUsed < 2 {
		return math.NaN()
	}
	total := float64(blockUsed * k)
	blockSum := make([]float64, blocks)
	for b := 0; b < blocks; b++ {
		if !complete[b] {
			continue
		}
		for j := 0; j < k; j++ {
			v := row[b*k+j]
			t := lab[b*k+j]
			treatSum[t] += v
			blockSum[b] += v
			grand += v
		}
	}
	grandMean := grand / total
	for b := 0; b < blocks; b++ {
		if !complete[b] {
			continue
		}
		for j := 0; j < k; j++ {
			d := row[b*k+j] - grandMean
			ssTotal += d * d
		}
	}
	var ssTreat, ssBlock float64
	for t := 0; t < k; t++ {
		d := treatSum[t]/float64(blockUsed) - grandMean
		ssTreat += float64(blockUsed) * d * d
	}
	for b := 0; b < blocks; b++ {
		if !complete[b] {
			continue
		}
		d := blockSum[b]/float64(k) - grandMean
		ssBlock += float64(k) * d * d
	}
	ssError := ssTotal - ssTreat - ssBlock
	dfTreat := float64(k - 1)
	dfError := float64((k - 1) * (blockUsed - 1))
	if dfError <= 0 || ssError <= 0 {
		return math.NaN()
	}
	return (ssTreat / dfTreat) / (ssError / dfError)
}
