package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) || (!math.IsNaN(want) && math.Abs(got-want) > tol) {
		t.Errorf("%s = %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestParseTestRoundTrip(t *testing.T) {
	for _, test := range []Test{Welch, TEqualVar, Wilcoxon, F, PairT, BlockF} {
		got, err := ParseTest(test.String())
		if err != nil {
			t.Fatalf("ParseTest(%q): %v", test.String(), err)
		}
		if got != test {
			t.Errorf("ParseTest(%q) = %v, want %v", test.String(), got, test)
		}
	}
}

func TestParseTestUnknown(t *testing.T) {
	if _, err := ParseTest("anova"); err == nil {
		t.Error("ParseTest(\"anova\") succeeded, want error")
	}
}

func TestTestStringUnknown(t *testing.T) {
	if s := Test(99).String(); s != "Test(99)" {
		t.Errorf("Test(99).String() = %q", s)
	}
}

func TestTwoSampleClassification(t *testing.T) {
	for test, want := range map[Test]bool{
		Welch: true, TEqualVar: true, Wilcoxon: true,
		F: false, PairT: false, BlockF: false,
	} {
		if got := test.TwoSample(); got != want {
			t.Errorf("%v.TwoSample() = %v, want %v", test, got, want)
		}
	}
}

func twoClassLabels(n0, n1 int) []int {
	lab := make([]int, n0+n1)
	for i := n0; i < n0+n1; i++ {
		lab[i] = 1
	}
	return lab
}

func TestWelchTKnownValue(t *testing.T) {
	row := []float64{1, 2, 3, 4, 5, 7}
	lab := twoClassLabels(4, 2)
	d, err := NewDesign(Welch, lab)
	if err != nil {
		t.Fatal(err)
	}
	// se = sqrt((5/3)/4 + 2/2) = 1.190238; t = 3.5/se = 2.940588.
	approx(t, d.Func()(row, lab), 2.94059, 1e-4, "welch t")
}

func TestEqualVarTKnownValue(t *testing.T) {
	row := []float64{1, 2, 3, 4, 5, 7}
	lab := twoClassLabels(4, 2)
	d, err := NewDesign(TEqualVar, lab)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d.Func()(row, lab), 3.05506, 1e-4, "equal-var t")
}

func TestWelchVsEqualVarCoincideForBalancedEqualVariance(t *testing.T) {
	// With equal group sizes and equal sample variances the two statistics
	// are identical.
	row := []float64{1, 2, 3, 4, 5, 6}
	lab := twoClassLabels(3, 3)
	dw, _ := NewDesign(Welch, lab)
	de, _ := NewDesign(TEqualVar, lab)
	w, e := dw.Func()(row, lab), de.Func()(row, lab)
	approx(t, w, e, 1e-12, "welch vs pooled on balanced equal-variance data")
}

func TestWilcoxonKnownValue(t *testing.T) {
	row := []float64{1, 2, 3, 4, 5, 6} // already equal to its ranks
	lab := twoClassLabels(3, 3)
	d, err := NewDesign(Wilcoxon, lab)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d.Func()(row, lab), 1.96396, 1e-4, "wilcoxon z")
}

func TestWilcoxonWithTies(t *testing.T) {
	row := []float64{1, 1, 2, 2, 3, 3}
	Ranks(row, nil)
	lab := twoClassLabels(3, 3)
	d, _ := NewDesign(Wilcoxon, lab)
	z := d.Func()(row, lab)
	if math.IsNaN(z) {
		t.Fatal("tie-corrected wilcoxon is NaN")
	}
	// Mid-ranks: 1.5,1.5,3.5,3.5,5.5,5.5. S1 = 3.5+5.5+5.5 = 14.5,
	// ybar = 3.5, ssq = sum(r^2) - 6*3.5^2 = 89.5 - 73.5 = 16,
	// var = 9/30*16 = 4.8, z = (14.5-10.5)/sqrt(4.8) = 1.82574.
	approx(t, z, 1.82574, 1e-4, "tie-corrected wilcoxon z")
}

func TestOnewayFKnownValue(t *testing.T) {
	row := []float64{1, 2, 3, 2, 3, 4, 6, 7, 8}
	lab := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	d, err := NewDesign(F, lab)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d.Func()(row, lab), 21.0, 1e-9, "one-way F")
}

func TestPairedTKnownValue(t *testing.T) {
	row := []float64{1, 3, 2, 5, 4, 4, 3, 7}
	lab := []int{0, 1, 0, 1, 0, 1, 0, 1}
	d, err := NewDesign(PairT, lab)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d.Func()(row, lab), 2.63490, 1e-4, "paired t")
}

func TestPairedTFlippedPairOrder(t *testing.T) {
	// Storing pairs as (1,0) must flip the sign of each difference, giving
	// the same statistic as the (0,1) layout with swapped values.
	rowA := []float64{1, 3, 2, 5, 4, 4, 3, 7}
	labA := []int{0, 1, 0, 1, 0, 1, 0, 1}
	rowB := []float64{3, 1, 5, 2, 4, 4, 7, 3}
	labB := []int{1, 0, 1, 0, 1, 0, 1, 0}
	dA, _ := NewDesign(PairT, labA)
	dB, _ := NewDesign(PairT, labB)
	approx(t, dA.Func()(rowA, labA), dB.Func()(rowB, labB), 1e-12, "pair order invariance")
}

func TestBlockFKnownValue(t *testing.T) {
	row := []float64{1, 2, 3, 5, 4, 6}
	lab := []int{0, 1, 0, 1, 0, 1}
	d, err := NewDesign(BlockF, lab)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d.Func()(row, lab), 25.0, 1e-9, "block F")
}

func TestWelchNaNHandling(t *testing.T) {
	nan := math.NaN()
	d, _ := NewDesign(Welch, twoClassLabels(3, 3))
	f := d.Func()
	// Missing values excluded: statistic equals the reduced-data value.
	full := []float64{1, 2, 3, 4, 5, 7}
	withNA := []float64{1, 2, 3, nan, 4, 5, 7, nan}
	labNA := []int{0, 0, 0, 0, 1, 1, 1, 1}
	want := f(full, twoClassLabels(3, 3))
	got := f(withNA, labNA)
	approx(t, got, want, 1e-12, "welch with NA exclusion")
}

func TestStatisticsReturnNaNWhenGroupTooSmall(t *testing.T) {
	nan := math.NaN()
	lab := twoClassLabels(3, 3)
	row := []float64{1, 2, 3, nan, nan, 4} // class 1 has one observation
	for _, test := range []Test{Welch, TEqualVar, Wilcoxon} {
		d, _ := NewDesign(test, lab)
		if v := d.Func()(row, lab); !math.IsNaN(v) {
			t.Errorf("%v with degenerate group = %v, want NaN", test, v)
		}
	}
}

func TestZeroVarianceGivesNaN(t *testing.T) {
	lab := twoClassLabels(3, 3)
	row := []float64{5, 5, 5, 5, 5, 5}
	for _, test := range []Test{Welch, TEqualVar, Wilcoxon} {
		d, _ := NewDesign(test, lab)
		rowCopy := append([]float64(nil), row...)
		if test == Wilcoxon {
			Ranks(rowCopy, nil)
		}
		if v := d.Func()(rowCopy, lab); !math.IsNaN(v) {
			t.Errorf("%v on constant row = %v, want NaN", test, v)
		}
	}
}

func TestPairedTNaNPairExclusion(t *testing.T) {
	nan := math.NaN()
	lab := []int{0, 1, 0, 1, 0, 1, 0, 1}
	rowFull := []float64{1, 3, 2, 5, 3, 7, 0, 0}
	rowNA := []float64{1, 3, 2, 5, 3, 7, nan, 2}
	d, _ := NewDesign(PairT, lab)
	f := d.Func()
	// Pair 3 excluded in rowNA; compare against the 3-pair dataset.
	row3 := []float64{1, 3, 2, 5, 3, 7}
	lab3 := []int{0, 1, 0, 1, 0, 1}
	d3, _ := NewDesign(PairT, lab3)
	approx(t, f(rowNA, lab), d3.Func()(row3, lab3), 1e-12, "pairt NA pair exclusion")
	_ = rowFull
}

func TestBlockFNaNBlockExclusion(t *testing.T) {
	nan := math.NaN()
	lab := []int{0, 1, 0, 1, 0, 1}
	rowNA := []float64{1, 2, 3, 5, nan, 6}
	d, _ := NewDesign(BlockF, lab)
	got := d.Func()(rowNA, lab)
	// Only blocks 0 and 1 remain; recompute with the 2-block layout.
	row2 := []float64{1, 2, 3, 5}
	lab2 := []int{0, 1, 0, 1}
	d2, _ := NewDesign(BlockF, lab2)
	approx(t, got, d2.Func()(row2, lab2), 1e-12, "blockf NA block exclusion")
}

func TestNewDesignValidation(t *testing.T) {
	cases := []struct {
		name string
		test Test
		lab  []int
	}{
		{"empty", Welch, nil},
		{"negative label", Welch, []int{0, -1, 1, 1}},
		{"three classes for t", Welch, []int{0, 1, 2, 0, 1, 2}},
		{"one per group", Welch, []int{0, 1}},
		{"missing class", F, []int{0, 0, 2, 2}},
		{"single class f", F, []int{0, 0, 0}},
		{"small class f", F, []int{0, 0, 1, 1, 2}},
		{"odd columns pairt", PairT, []int{0, 1, 0}},
		{"bad pair labels", PairT, []int{0, 0, 1, 1}},
		{"single pair", PairT, []int{0, 1}},
		{"blockf indivisible", BlockF, []int{0, 1, 0, 1, 0}},
		{"blockf repeat in block", BlockF, []int{0, 0, 1, 1}},
		{"blockf one block", BlockF, []int{0, 1}},
		{"unknown test", Test(42), []int{0, 1, 0, 1}},
	}
	for _, tc := range cases {
		if _, err := NewDesign(tc.test, tc.lab); err == nil {
			t.Errorf("%s: NewDesign succeeded, want error", tc.name)
		}
	}
}

func TestNewDesignFields(t *testing.T) {
	d, err := NewDesign(BlockF, []int{0, 1, 2, 1, 2, 0, 2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Blocks != 3 || d.BlockSize != 3 || d.K != 3 || d.N != 9 {
		t.Errorf("blockf design = %+v", d)
	}
	dp, err := NewDesign(PairT, []int{0, 1, 1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if dp.Pairs != 3 {
		t.Errorf("pairt Pairs = %d, want 3", dp.Pairs)
	}
	dw, err := NewDesign(Welch, twoClassLabels(40, 36))
	if err != nil {
		t.Fatal(err)
	}
	if dw.Counts[0] != 40 || dw.Counts[1] != 36 {
		t.Errorf("welch counts = %v", dw.Counts)
	}
}

func TestNeedsRanks(t *testing.T) {
	for test, want := range map[Test]bool{Wilcoxon: true, Welch: false, F: false} {
		lab := twoClassLabels(3, 3)
		if test == F {
			lab = []int{0, 0, 0, 1, 1, 1}
		}
		d, err := NewDesign(test, lab)
		if err != nil {
			t.Fatal(err)
		}
		if d.NeedsRanks() != want {
			t.Errorf("%v.NeedsRanks() = %v, want %v", test, !want, want)
		}
	}
}

// Property: two-sample t statistics flip sign when the class labels are
// exchanged, and F statistics are invariant.
func TestQuickLabelSwapSymmetry(t *testing.T) {
	f := func(seed uint8) bool {
		row := make([]float64, 10)
		s := uint64(seed) + 1
		for i := range row {
			s = s*6364136223846793005 + 1442695040888963407
			row[i] = float64(s%1000) / 100
		}
		lab := twoClassLabels(5, 5)
		swapped := make([]int, len(lab))
		for i, l := range lab {
			swapped[i] = 1 - l
		}
		dw, _ := NewDesign(Welch, lab)
		tw := dw.Func()
		a, b := tw(row, lab), tw(row, swapped)
		if math.IsNaN(a) || math.IsNaN(b) {
			return math.IsNaN(a) && math.IsNaN(b)
		}
		return math.Abs(a+b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: statistics are invariant under permutations that keep every
// column in its class (relabelling within classes does not change group
// membership).
func TestQuickWithinClassPermutationInvariance(t *testing.T) {
	f := func(seed uint8) bool {
		row := make([]float64, 8)
		s := uint64(seed)*2654435761 + 1
		for i := range row {
			s = s*6364136223846793005 + 1442695040888963407
			row[i] = float64(s % 97)
		}
		labA := []int{0, 0, 0, 0, 1, 1, 1, 1}
		labB := []int{0, 0, 0, 0, 1, 1, 1, 1} // same classes, same columns
		d, _ := NewDesign(Welch, labA)
		a, b := d.Func()(row, labA), d.Func()(row, labB)
		return (math.IsNaN(a) && math.IsNaN(b)) || a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the F statistic is invariant under any relabelling of class
// identities (classes are exchangeable).
func TestQuickFClassExchangeInvariance(t *testing.T) {
	f := func(seed uint8) bool {
		row := make([]float64, 9)
		s := uint64(seed) + 3
		for i := range row {
			s = s*2862933555777941757 + 3037000493
			row[i] = float64(s % 61)
		}
		lab := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
		relab := make([]int, len(lab))
		for i, l := range lab {
			relab[i] = (l + 1) % 3 // rotate class identities
		}
		d, _ := NewDesign(F, lab)
		a, b := d.Func()(row, lab), d.Func()(row, relab)
		if math.IsNaN(a) || math.IsNaN(b) {
			return math.IsNaN(a) && math.IsNaN(b)
		}
		return math.Abs(a-b) < 1e-9*math.Max(1, math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOnewayFWithNA(t *testing.T) {
	nan := math.NaN()
	lab := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	d, _ := NewDesign(F, lab)
	f := d.Func()
	// Excluding one value must equal computing on the reduced design.
	rowNA := []float64{1, 2, 3, 2, 3, nan, 6, 7, 8}
	redRow := []float64{1, 2, 3, 2, 3, 6, 7, 8}
	redLab := []int{0, 0, 0, 1, 1, 2, 2, 2}
	dRed, _ := NewDesign(F, redLab)
	approx(t, f(rowNA, lab), dRed.Func()(redRow, redLab), 1e-12, "F with NA exclusion")
	// A class reduced below 2 observations makes the statistic NaN.
	rowBad := []float64{1, 2, 3, nan, nan, 4, 6, 7, 8}
	if v := f(rowBad, lab); !math.IsNaN(v) {
		t.Errorf("F with degenerate class = %v, want NaN", v)
	}
}

func TestBlockFInvariantToBlockOrder(t *testing.T) {
	// Swapping whole blocks permutes the block sums but cannot change
	// the F statistic.
	lab := []int{0, 1, 0, 1, 0, 1}
	d, _ := NewDesign(BlockF, lab)
	f := d.Func()
	row := []float64{1, 2, 3, 5, 4, 6}
	swapped := []float64{3, 5, 1, 2, 4, 6} // blocks 0 and 1 exchanged
	approx(t, f(row, lab), f(swapped, lab), 1e-12, "blockF block-order invariance")
}

func TestWilcoxonMirrorSymmetry(t *testing.T) {
	// Exchanging the class labels negates the standardized rank sum.
	row := []float64{3, 1, 4, 1.5, 9, 2.6}
	Ranks(row, nil)
	lab := twoClassLabels(3, 3)
	swapped := make([]int, len(lab))
	for i, l := range lab {
		swapped[i] = 1 - l
	}
	d, _ := NewDesign(Wilcoxon, lab)
	f := d.Func()
	approx(t, f(row, lab), -f(row, swapped), 1e-12, "wilcoxon label-swap antisymmetry")
}

func TestGroupMomentsIgnoresForeignLabels(t *testing.T) {
	// Labels outside [0, k) are skipped rather than crashing; the
	// generators never produce them, but defensive handling keeps a
	// corrupted labelling from panicking deep in the kernel.
	row := []float64{1, 2, 3, 4, 5, 6}
	lab := []int{0, 0, 7, 1, 1, -2}
	var n [2]int
	var mean, m2 [2]float64
	groupMoments(row, lab, 2, n[:], mean[:], m2[:])
	if n[0] != 2 || n[1] != 2 {
		t.Errorf("counts = %v, want [2 2]", n)
	}
}

func BenchmarkWelchT76(b *testing.B) {
	// One row of the paper's benchmark dataset: 76 columns.
	row := make([]float64, 76)
	for i := range row {
		row[i] = float64(i%17) * 1.37
	}
	lab := twoClassLabels(38, 38)
	d, _ := NewDesign(Welch, lab)
	f := d.Func()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f(row, lab)
	}
}

func BenchmarkOnewayF76(b *testing.B) {
	row := make([]float64, 76)
	lab := make([]int, 76)
	for i := range row {
		row[i] = float64(i%13) * 0.7
		lab[i] = i % 4
	}
	d, _ := NewDesign(F, lab)
	f := d.Func()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f(row, lab)
	}
}
