package stat

import (
	"fmt"
	"testing"

	"sprint/internal/matrix"
)

// BenchmarkKernel compares the batched flat-matrix kernels against the
// legacy per-row function-pointer path, one sub-benchmark pair per test.
// Each iteration evaluates ONE permutation over the whole matrix — the
// unit of work the maxT main kernel repeats B times — under a rotating
// set of pre-drawn labellings so branch predictors see realistic label
// churn.  The "t" case is the paper's primary workload: 6102 genes × 76
// samples, 38 vs 38 (Table I's matrix).  Measured speedups are recorded
// in EXPERIMENTS.md.
func BenchmarkKernel(b *testing.B) {
	cases := []struct {
		name   string
		test   Test
		labels []int
		genes  int
	}{
		{"t", Welch, halfLabels(76), 6102},
		{"t.equalvar", TEqualVar, halfLabels(76), 1024},
		{"wilcoxon", Wilcoxon, halfLabels(76), 1024},
		{"f", F, thirdsLabels(75), 1024},
		{"pairt", PairT, pairLabels(76), 1024},
		{"blockf", BlockF, blockLabels(76, 4), 1024},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			d, err := NewDesign(tc.test, tc.labels)
			if err != nil {
				b.Fatal(err)
			}
			m := benchMatrix(tc.genes, d.N, uint64(tc.test)+1)
			if d.NeedsRanks() {
				scratch := make([]int, d.N)
				for i := 0; i < m.Rows; i++ {
					Ranks(m.Row(i), scratch)
				}
			}
			labs := benchLabellings(d, 32)
			out := make([]float64, m.Rows)

			b.Run("batched", func(b *testing.B) {
				k, err := NewKernel(d, m)
				if err != nil {
					b.Fatal(err)
				}
				s := k.NewScratch()
				b.SetBytes(int64(m.Rows * m.Cols * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k.Stats(labs[i%len(labs)], out, s)
				}
			})
			b.Run("legacy", func(b *testing.B) {
				fn := d.Func()
				rows := m.RowsView()
				b.SetBytes(int64(m.Rows * m.Cols * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					lab := labs[i%len(labs)]
					for r, row := range rows {
						out[r] = fn(row, lab)
					}
				}
			})
		})
	}
}

// BenchmarkKernelBatch measures the permutation-batched column-scatter
// path on the same workloads as BenchmarkKernel.  One op is ONE
// permutation (each iteration advances the batch by one slot and flushes
// a StatsBatch whenever a full batch has accumulated), so ns/op is
// directly comparable with BenchmarkKernel's batched/legacy numbers.  The
// acceptance bar of the batching refactor is ≥2× over the scalar kernel
// on the "t" (6102×76) paper workload at B ∈ {64, 128}.
func BenchmarkKernelBatch(b *testing.B) {
	cases := []struct {
		name   string
		test   Test
		labels []int
		genes  int
	}{
		{"t", Welch, halfLabels(76), 6102},
		{"f", F, thirdsLabels(75), 1024},
		{"pairt", PairT, pairLabels(76), 1024},
		{"blockf", BlockF, blockLabels(76, 4), 1024},
	}
	for _, tc := range cases {
		tc := tc
		d, err := NewDesign(tc.test, tc.labels)
		if err != nil {
			b.Fatal(err)
		}
		m := benchMatrix(tc.genes, d.N, uint64(tc.test)+1)
		if d.NeedsRanks() {
			scratch := make([]int, d.N)
			for i := 0; i < m.Rows; i++ {
				Ranks(m.Row(i), scratch)
			}
		}
		labs := benchLabellings(d, 32)
		for _, bs := range []int{16, 64, 128} {
			bs := bs
			b.Run(fmt.Sprintf("%s/B=%d", tc.name, bs), func(b *testing.B) {
				k, err := NewKernel(d, m)
				if err != nil {
					b.Fatal(err)
				}
				bk := k.(BatchKernel)
				flat := make([]int, bs*d.N)
				for p := 0; p < bs; p++ {
					copy(flat[p*d.N:(p+1)*d.N], labs[p%len(labs)])
				}
				out := matrix.New(bs, m.Rows)
				s := bk.NewBatchScratch(bs)
				b.SetBytes(int64(m.Rows * m.Cols * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i += bs {
					nb := bs
					if rem := b.N - i; rem < nb {
						nb = rem
					}
					bk.StatsBatch(flat[:nb*d.N], matrix.Matrix{Data: out.Data[:nb*m.Rows], Rows: nb, Cols: m.Rows}, s)
				}
			})
		}
	}
}

func benchMatrix(rows, cols int, seed uint64) matrix.Matrix {
	m := matrix.New(rows, cols)
	r := lcg(seed)
	for i := range m.Data {
		m.Data[i] = r.float()
	}
	return m
}

// benchLabellings pre-draws n valid labellings for the design, starting
// from the observed one.
func benchLabellings(d *Design, n int) [][]int {
	r := lcg(42)
	labs := make([][]int, n)
	for i := range labs {
		lab := append([]int(nil), d.Labels...)
		switch d.Test {
		case PairT:
			for j := 0; j < d.Pairs; j++ {
				if r.next()%2 == 1 {
					lab[2*j], lab[2*j+1] = lab[2*j+1], lab[2*j]
				}
			}
		case BlockF:
			for bl := 0; bl < d.Blocks; bl++ {
				seg := lab[bl*d.BlockSize : (bl+1)*d.BlockSize]
				r.shuffle(seg)
			}
		default:
			r.shuffle(lab)
		}
		labs[i] = lab
	}
	return labs
}

func halfLabels(n int) []int {
	lab := make([]int, n)
	for i := n / 2; i < n; i++ {
		lab[i] = 1
	}
	return lab
}

func thirdsLabels(n int) []int {
	lab := make([]int, n)
	for i := range lab {
		lab[i] = i * 3 / n
	}
	return lab
}

func pairLabels(n int) []int {
	lab := make([]int, n)
	for i := 1; i < n; i += 2 {
		lab[i] = 1
	}
	return lab
}

func blockLabels(n, k int) []int {
	lab := make([]int, n)
	for i := range lab {
		lab[i] = i % k
	}
	return lab
}
