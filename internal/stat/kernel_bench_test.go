package stat

import (
	"fmt"
	"testing"

	"sprint/internal/matrix"
)

// BenchmarkKernel compares the batched flat-matrix kernels against the
// legacy per-row function-pointer path, one sub-benchmark pair per test.
// Each iteration evaluates ONE permutation over the whole matrix — the
// unit of work the maxT main kernel repeats B times — under a rotating
// set of pre-drawn labellings so branch predictors see realistic label
// churn.  The "t" case is the paper's primary workload: 6102 genes × 76
// samples, 38 vs 38 (Table I's matrix).  Measured speedups are recorded
// in EXPERIMENTS.md.
func BenchmarkKernel(b *testing.B) {
	cases := []struct {
		name   string
		test   Test
		labels []int
		genes  int
	}{
		{"t", Welch, halfLabels(76), 6102},
		{"t.equalvar", TEqualVar, halfLabels(76), 1024},
		{"wilcoxon", Wilcoxon, halfLabels(76), 1024},
		{"f", F, thirdsLabels(75), 1024},
		{"pairt", PairT, pairLabels(76), 1024},
		{"blockf", BlockF, blockLabels(76, 4), 1024},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			d, err := NewDesign(tc.test, tc.labels)
			if err != nil {
				b.Fatal(err)
			}
			m := benchMatrix(tc.genes, d.N, uint64(tc.test)+1)
			if d.NeedsRanks() {
				scratch := make([]int, d.N)
				for i := 0; i < m.Rows; i++ {
					Ranks(m.Row(i), scratch)
				}
			}
			labs := benchLabellings(d, 32)
			out := make([]float64, m.Rows)

			b.Run("batched", func(b *testing.B) {
				k, err := NewKernel(d, m)
				if err != nil {
					b.Fatal(err)
				}
				s := k.NewScratch()
				b.SetBytes(int64(m.Rows * m.Cols * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k.Stats(labs[i%len(labs)], out, s)
				}
			})
			b.Run("legacy", func(b *testing.B) {
				fn := d.Func()
				rows := m.RowsView()
				b.SetBytes(int64(m.Rows * m.Cols * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					lab := labs[i%len(labs)]
					for r, row := range rows {
						out[r] = fn(row, lab)
					}
				}
			})
		})
	}
}

// BenchmarkKernelBatch measures the permutation-batched column-scatter
// path on the same workloads as BenchmarkKernel.  One op is ONE
// permutation (each iteration advances the batch by one slot and flushes
// a StatsBatch whenever a full batch has accumulated), so ns/op is
// directly comparable with BenchmarkKernel's batched/legacy numbers.  The
// acceptance bar of the batching refactor is ≥2× over the scalar kernel
// on the "t" (6102×76) paper workload at B ∈ {64, 128}.
func BenchmarkKernelBatch(b *testing.B) {
	cases := []struct {
		name   string
		test   Test
		labels []int
		genes  int
	}{
		{"t", Welch, halfLabels(76), 6102},
		{"f", F, thirdsLabels(75), 1024},
		{"pairt", PairT, pairLabels(76), 1024},
		{"blockf", BlockF, blockLabels(76, 4), 1024},
	}
	for _, tc := range cases {
		tc := tc
		d, err := NewDesign(tc.test, tc.labels)
		if err != nil {
			b.Fatal(err)
		}
		m := benchMatrix(tc.genes, d.N, uint64(tc.test)+1)
		if d.NeedsRanks() {
			scratch := make([]int, d.N)
			for i := 0; i < m.Rows; i++ {
				Ranks(m.Row(i), scratch)
			}
		}
		labs := benchLabellings(d, 32)
		for _, bs := range []int{16, 64, 128} {
			bs := bs
			b.Run(fmt.Sprintf("%s/B=%d", tc.name, bs), func(b *testing.B) {
				k, err := NewKernel(d, m)
				if err != nil {
					b.Fatal(err)
				}
				bk := k.(BatchKernel)
				flat := make([]int, bs*d.N)
				for p := 0; p < bs; p++ {
					copy(flat[p*d.N:(p+1)*d.N], labs[p%len(labs)])
				}
				out := matrix.New(bs, m.Rows)
				s := bk.NewBatchScratch(bs)
				b.SetBytes(int64(m.Rows * m.Cols * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i += bs {
					nb := bs
					if rem := b.N - i; rem < nb {
						nb = rem
					}
					bk.StatsBatch(flat[:nb*d.N], matrix.Matrix{Data: out.Data[:nb*m.Rows], Rows: nb, Cols: m.Rows}, s)
				}
			})
		}
	}
}

// BenchmarkKernelDelta measures the delta-evaluation path against the
// column-scatter batch path on the nonpara complete-enumeration workload:
// paper-scale gene count (6102) over a 12-vs-12 design — the shape whose
// complete enumeration (C(24,12) ≈ 2.7M labellings) fits the default cap
// and therefore actually runs in revolving-door order in production.  One
// op is ONE permutation, directly comparable with BenchmarkKernelBatch
// and BenchmarkKernel.  The delta acceptance bar is ≥3× over the scalar
// kernel at batch 64.
func BenchmarkKernelDelta(b *testing.B) {
	cases := []struct {
		name string
		test Test
	}{
		{"wilcoxon", Wilcoxon},
		{"t-nonpara", Welch},
	}
	const cols = 24
	const bs = 64
	for _, tc := range cases {
		tc := tc
		d, err := NewDesign(tc.test, halfLabels(cols))
		if err != nil {
			b.Fatal(err)
		}
		m := benchMatrix(6102, cols, uint64(tc.test)+7)
		scratch := make([]int, cols)
		for i := 0; i < m.Rows; i++ {
			Ranks(m.Row(i), scratch) // nonpara / rank transform
		}
		k, err := NewKernel(d, m)
		if err != nil {
			b.Fatal(err)
		}
		bk := k.(BatchKernel)
		dk := k.(DeltaKernel)
		// Wilcoxon dispatches through the delta path in production; the
		// two-sample t case calls StatsDelta directly past its
		// profitability gate (building the integer view the gate skips),
		// to keep the measurement that justifies the gate (see
		// deltaMinGroup) on record.
		if ts, isT := k.(*twoSampleKernel); isT && ts.ir == nil {
			ts.ir = newIntRank(m)
		}
		if tc.test == Wilcoxon && !dk.DeltaOK() {
			b.Fatal("delta path not available on rank data")
		}
		lab0, moves, labs := randomExchangeChain(d, bs, 42)
		out := matrix.New(bs, m.Rows)
		s := bk.NewBatchScratch(bs)
		b.Run(tc.name+"/scalar", func(b *testing.B) {
			ks := k.NewScratch()
			z := make([]float64, m.Rows)
			b.SetBytes(int64(m.Rows * m.Cols * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Stats(labs[(i%bs)*cols:(i%bs+1)*cols], z, ks)
			}
		})
		b.Run(tc.name+"/batch=64", func(b *testing.B) {
			b.SetBytes(int64(m.Rows * m.Cols * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i += bs {
				nb := bs
				if rem := b.N - i; rem < nb {
					nb = rem
				}
				bk.StatsBatch(labs[:nb*cols], matrix.Matrix{Data: out.Data[:nb*m.Rows], Rows: nb, Cols: m.Rows}, s)
			}
		})
		b.Run(tc.name+"/delta=64", func(b *testing.B) {
			b.SetBytes(int64(m.Rows * m.Cols * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i += bs {
				nb := bs
				if rem := b.N - i; rem < nb {
					nb = rem
				}
				dk.StatsDelta(lab0, moves[:nb-1], matrix.Matrix{Data: out.Data[:nb*m.Rows], Rows: nb, Cols: m.Rows}, s)
			}
		})
	}
}

// BenchmarkKernelISA sweeps the two-sample accumulation kernel dispatch —
// generic, SSE2, AVX2 (where supported) — on the paper's Welch-t 6102×76
// workload at batch 64.  One op is one permutation.  All three produce
// bitwise identical statistics (TestStatsBatchISASweep); the bar for the
// AVX2 kernel is beating SSE2 here.
func BenchmarkKernelISA(b *testing.B) {
	d, err := NewDesign(Welch, halfLabels(76))
	if err != nil {
		b.Fatal(err)
	}
	m := benchMatrix(6102, d.N, 2)
	labs := benchLabellings(d, 32)
	const bs = 64
	flat := make([]int, bs*d.N)
	for p := 0; p < bs; p++ {
		copy(flat[p*d.N:(p+1)*d.N], labs[p%len(labs)])
	}
	for isa := ISAGeneric; isa <= bestISA(); isa++ {
		isa := isa
		b.Run(isa.String()+"/B=64", func(b *testing.B) {
			k, err := NewKernel(d, m)
			if err != nil {
				b.Fatal(err)
			}
			ts := k.(*twoSampleKernel)
			ts.isa = isa
			out := matrix.New(bs, m.Rows)
			s := ts.NewBatchScratch(bs)
			b.SetBytes(int64(m.Rows * m.Cols * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i += bs {
				nb := bs
				if rem := b.N - i; rem < nb {
					nb = rem
				}
				ts.StatsBatch(flat[:nb*d.N], matrix.Matrix{Data: out.Data[:nb*m.Rows], Rows: nb, Cols: m.Rows}, s)
			}
		})
	}
}

func benchMatrix(rows, cols int, seed uint64) matrix.Matrix {
	m := matrix.New(rows, cols)
	r := lcg(seed)
	for i := range m.Data {
		m.Data[i] = r.float()
	}
	return m
}

// benchLabellings pre-draws n valid labellings for the design, starting
// from the observed one.
func benchLabellings(d *Design, n int) [][]int {
	r := lcg(42)
	labs := make([][]int, n)
	for i := range labs {
		lab := append([]int(nil), d.Labels...)
		switch d.Test {
		case PairT:
			for j := 0; j < d.Pairs; j++ {
				if r.next()%2 == 1 {
					lab[2*j], lab[2*j+1] = lab[2*j+1], lab[2*j]
				}
			}
		case BlockF:
			for bl := 0; bl < d.Blocks; bl++ {
				seg := lab[bl*d.BlockSize : (bl+1)*d.BlockSize]
				r.shuffle(seg)
			}
		default:
			r.shuffle(lab)
		}
		labs[i] = lab
	}
	return labs
}

func halfLabels(n int) []int {
	lab := make([]int, n)
	for i := n / 2; i < n; i++ {
		lab[i] = 1
	}
	return lab
}

func thirdsLabels(n int) []int {
	lab := make([]int, n)
	for i := range lab {
		lab[i] = i * 3 / n
	}
	return lab
}

func pairLabels(n int) []int {
	lab := make([]int, n)
	for i := 1; i < n; i += 2 {
		lab[i] = 1
	}
	return lab
}

func blockLabels(n, k int) []int {
	lab := make([]int, n)
	for i := range lab {
		lab[i] = i % k
	}
	return lab
}
