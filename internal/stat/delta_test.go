package stat

import (
	"fmt"
	"math"
	"testing"

	"sprint/internal/matrix"
)

// deltaTestMatrix builds a rows×cols matrix of mid-ranks with ties and,
// when withNA, missing cells — the data shape the delta path exists for.
func deltaTestMatrix(rows, cols int, withNA bool, seed uint64) matrix.Matrix {
	m := matrix.New(rows, cols)
	r := lcg(seed)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			// Quantized values force ties; NaN holes force the NA paths.
			row[j] = float64(r.next() % 13)
			if withNA && r.next()%11 == 0 {
				row[j] = math.NaN()
			}
		}
		Ranks(row, nil)
	}
	return m
}

// randomExchangeChain draws a start labelling and a chain of valid
// single-element class-1 exchanges for the design, returning the start,
// the moves, and the materialised labelling batch.
func randomExchangeChain(d *Design, nb int, seed uint64) (lab0 []int, moves []Exchange, labs []int) {
	r := lcg(seed)
	lab0 = append([]int(nil), d.Labels...)
	r.shuffle(lab0)
	cur := append([]int(nil), lab0...)
	labs = make([]int, nb*d.N)
	copy(labs[:d.N], cur)
	moves = make([]Exchange, nb-1)
	for p := 1; p < nb; p++ {
		// Pick one class-1 column to leave and one class-0 column to enter.
		var out, in int
		for {
			out = int(r.next() % uint64(d.N))
			if cur[out] == 1 {
				break
			}
		}
		for {
			in = int(r.next() % uint64(d.N))
			if cur[in] == 0 {
				break
			}
		}
		cur[out], cur[in] = 0, 1
		moves[p-1] = Exchange{Out: int32(out), In: int32(in)}
		copy(labs[p*d.N:(p+1)*d.N], cur)
	}
	return lab0, moves, labs
}

// TestStatsDeltaBitwise pins the tentpole property: StatsDelta over a
// move chain is bitwise identical to StatsBatch over the materialised
// labellings — per test, with ties, with and without NA holes, balanced
// and unbalanced.
func TestStatsDeltaBitwise(t *testing.T) {
	designs := []struct {
		name   string
		labels []int
	}{
		{"balanced", halfLabels(12)},
		{"unbalanced-small1", append(make([]int, 8), 1, 1, 1)},
		{"unbalanced-small0", append([]int{0, 0, 0}, func() []int {
			l := make([]int, 8)
			for i := range l {
				l[i] = 1
			}
			return l
		}()...)},
	}
	tests := []Test{Welch, TEqualVar, Wilcoxon}
	for _, test := range tests {
		for _, dz := range designs {
			for _, withNA := range []bool{false, true} {
				name := fmt.Sprintf("%v/%s/na=%v", test, dz.name, withNA)
				t.Run(name, func(t *testing.T) {
					d, err := NewDesign(test, dz.labels)
					if err != nil {
						t.Fatal(err)
					}
					m := deltaTestMatrix(40, d.N, withNA, uint64(test)*7+3)
					k, err := NewKernel(d, m)
					if err != nil {
						t.Fatal(err)
					}
					dk, ok := k.(DeltaKernel)
					if !ok {
						t.Fatalf("%T does not implement DeltaKernel", k)
					}
					// Capability must hold on rank data (the dispatch
					// predicate DeltaOK additionally weighs profitability,
					// which small two-sample groups fail by design — their
					// integer view is then not even built, so construct it
					// here to exercise StatsDelta below the gate).
					if ts, isT := k.(*twoSampleKernel); isT && ts.ir == nil {
						ts.ir = newIntRank(m)
					}
					if test == Wilcoxon && !dk.DeltaOK() {
						t.Fatal("wilcoxon DeltaOK = false on rank data")
					}
					const nb = 17
					lab0, moves, labs := randomExchangeChain(d, nb, 99)
					outDelta := matrix.New(nb, m.Rows)
					dk.StatsDelta(lab0, moves, outDelta, nil)
					outBatch := matrix.New(nb, m.Rows)
					dk.StatsBatch(labs, outBatch, nil)
					for o := range outDelta.Data {
						a, b := outDelta.Data[o], outBatch.Data[o]
						if math.Float64bits(a) != math.Float64bits(b) {
							t.Fatalf("delta[%d] = %v (%x), batch = %v (%x)",
								o, a, math.Float64bits(a), b, math.Float64bits(b))
						}
					}
					// And both equal nb successive scalar Stats calls.
					z := make([]float64, m.Rows)
					for p := 0; p < nb; p++ {
						k.Stats(labs[p*d.N:(p+1)*d.N], z, nil)
						for i, v := range z {
							if math.Float64bits(v) != math.Float64bits(outDelta.Row(p)[i]) {
								t.Fatalf("perm %d row %d: scalar %v, delta %v", p, i, v, outDelta.Row(p)[i])
							}
						}
					}
				})
			}
		}
	}
}

// TestIntRankBitwiseVsFloat asserts the integer rank fast path produces
// exactly the float accumulation's bits: the same kernel evaluated with
// its integer view disabled must agree bit for bit, across ties, NA holes
// and unbalanced designs.
func TestIntRankBitwiseVsFloat(t *testing.T) {
	for _, test := range []Test{Wilcoxon, Welch, TEqualVar} {
		for _, withNA := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/na=%v", test, withNA), func(t *testing.T) {
				labels := append(make([]int, 7), 1, 1, 1, 1, 1)
				d, err := NewDesign(test, labels)
				if err != nil {
					t.Fatal(err)
				}
				m := deltaTestMatrix(30, d.N, withNA, 5)
				kInt, err := NewKernel(d, m)
				if err != nil {
					t.Fatal(err)
				}
				kFloat, err := NewKernel(d, m)
				if err != nil {
					t.Fatal(err)
				}
				switch k := kFloat.(type) {
				case *wilcoxonKernel:
					if k.ir == nil {
						t.Fatal("rank rows should be integer-representable")
					}
					k.ir = nil
				case *twoSampleKernel:
					k.ir = nil
					// The t kernels build the view only above the
					// profitability gate; force it on the integer-side
					// kernel so the comparison exercises the int path.
					ki := kInt.(*twoSampleKernel)
					ki.ir = newIntRank(m)
					if ki.ir == nil {
						t.Fatal("rank rows should be integer-representable")
					}
				}
				const nb = 9
				_, _, labs := randomExchangeChain(d, nb, 31)
				zi := make([]float64, m.Rows)
				zf := make([]float64, m.Rows)
				for p := 0; p < nb; p++ {
					lab := labs[p*d.N : (p+1)*d.N]
					kInt.Stats(lab, zi, nil)
					kFloat.Stats(lab, zf, nil)
					for i := range zi {
						if math.Float64bits(zi[i]) != math.Float64bits(zf[i]) {
							t.Fatalf("perm %d row %d: int %v, float %v", p, i, zi[i], zf[i])
						}
					}
				}
				// Batch paths agree too.
				oi := matrix.New(nb, m.Rows)
				of := matrix.New(nb, m.Rows)
				kInt.(BatchKernel).StatsBatch(labs, oi, nil)
				kFloat.(BatchKernel).StatsBatch(labs, of, nil)
				for o := range oi.Data {
					if math.Float64bits(oi.Data[o]) != math.Float64bits(of.Data[o]) {
						t.Fatalf("batch cell %d: int %v, float %v", o, oi.Data[o], of.Data[o])
					}
				}
			})
		}
	}
}

// TestIntRankGate pins the representability gate: continuous data falls
// back to the float path (no integer view), and delta evaluation refuses
// to run on it.
func TestIntRankGate(t *testing.T) {
	m := matrix.New(4, 8)
	r := lcg(7)
	for o := range m.Data {
		m.Data[o] = r.float() // continuous: not half-integers
	}
	if ir := newIntRank(m); ir != nil {
		t.Fatalf("continuous data built an integer view: %+v", ir.ok)
	}
	d, err := NewDesign(Welch, halfLabels(8))
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKernel(d, m)
	if err != nil {
		t.Fatal(err)
	}
	if k.(DeltaKernel).DeltaOK() {
		t.Fatal("DeltaOK on continuous data")
	}
	// Zeros and negatives are rejected (0 is the NA sentinel).
	m2 := matrix.New(1, 8)
	if ir := newIntRank(m2); ir != nil {
		t.Fatal("all-zero row accepted by the integer gate")
	}
	// Mixed: one rank row, one continuous row — per-row flags, all=false.
	m3 := matrix.New(2, 8)
	copy(m3.Row(0), []float64{1, 2, 3, 4, 5, 6, 7, 8})
	copy(m3.Row(1), []float64{0.25, 1, 2, 3, 4, 5, 6, 7})
	ir := newIntRank(m3)
	if ir == nil || !ir.ok[0] || ir.ok[1] || ir.all {
		t.Fatalf("mixed matrix gate wrong: %+v", ir)
	}
}

// TestAccumQuadAsmVsGo pins the AVX2 assembly kernel to the pure-Go
// reference, bit for bit, on irregular selected-column lists.
func TestAccumQuadAsmVsGo(t *testing.T) {
	if bestISA() < ISAAVX2 {
		t.Skip("no AVX2 on this CPU")
	}
	const cols = 37
	r := lcg(11)
	v4 := make([]float64, 4*cols)
	for o := range v4 {
		v4[o] = r.float()*2 - 1
	}
	for _, L := range []int{0, 1, 7, 18, cols} {
		i0 := make([]int32, L)
		i1 := make([]int32, L)
		for e := 0; e < L; e++ {
			i0[e] = int32(r.next() % cols)
			i1[e] = int32(r.next() % cols)
		}
		var accAsm, accGo [16]float64
		p0, p1 := unsafePtr(i0), unsafePtr(i1)
		accumQuad(&v4[0], p0, p1, L, &accAsm)
		accumQuadGo(&v4[0], p0, p1, L, &accGo)
		for o := range accAsm {
			if math.Float64bits(accAsm[o]) != math.Float64bits(accGo[o]) {
				t.Fatalf("L=%d acc[%d]: asm %v, go %v", L, o, accAsm[o], accGo[o])
			}
		}
	}
}

// unsafePtr returns a pointer to the first element, or a valid dummy for
// empty lists (the kernels never dereference it when n == 0).
func unsafePtr(s []int32) *int32 {
	if len(s) == 0 {
		var z int32
		return &z
	}
	return &s[0]
}

// TestStatsBatchISASweep asserts the generic, SSE2 and AVX2 dispatches of
// the two-sample batch kernel are bitwise interchangeable on the paper's
// workload shape, including odd row counts (pair/quad remainders) and odd
// batch sizes (scalar permutation remainders).
func TestStatsBatchISASweep(t *testing.T) {
	d, err := NewDesign(Welch, halfLabels(10))
	if err != nil {
		t.Fatal(err)
	}
	m := benchMatrix(23, d.N, 3) // odd row count: quad + pair + single tails
	k, err := NewKernel(d, m)
	if err != nil {
		t.Fatal(err)
	}
	ts := k.(*twoSampleKernel)
	labs := benchLabellings(d, 8)
	const nb = 7 // odd: exercises the scalar permutation remainder
	flat := make([]int, nb*d.N)
	for p := 0; p < nb; p++ {
		copy(flat[p*d.N:(p+1)*d.N], labs[p%len(labs)])
	}
	var ref matrix.Matrix
	for isa := ISAGeneric; isa <= bestISA(); isa++ {
		ts.isa = isa
		out := matrix.New(nb, m.Rows)
		ts.StatsBatch(flat, out, nil)
		if isa == ISAGeneric {
			ref = out
			continue
		}
		for o := range out.Data {
			if math.Float64bits(out.Data[o]) != math.Float64bits(ref.Data[o]) {
				t.Fatalf("isa %v cell %d: %v, generic %v", isa, o, out.Data[o], ref.Data[o])
			}
		}
	}
}
