// Two-sample batch accumulation kernel, AVX2 widening: 2 permutations ×
// 4 rows per pass.
//
// v4 interleaves a row quad as v4[4j+r] = row_r[j], so one 32-byte VMOVUPD
// load yields (row0[j], row1[j], row2[j], row3[j]) and lane-wise
// VADDPD/VMULPD advance all four rows' accumulation chains in a single
// instruction.  As with the SSE2 pair kernel, lane-wise packed arithmetic
// performs exactly the scalar IEEE-754 operations — each lane is one
// (row, permutation) serial chain in ascending selected-column order — so
// the results are bitwise identical to the pure Go path (accumQuadGo),
// which is also the reference the tests pin.
//
// Accumulator layout on return (see accumQuad's doc comment):
//   acc[0..3]  = s  of rows 0..3 under permutation i0
//   acc[4..7]  = q  of rows 0..3 under permutation i0
//   acc[8..11] = s  of rows 0..3 under permutation i1
//   acc[12..15]= q  of rows 0..3 under permutation i1

#include "textflag.h"

// func accumQuad(v4 *float64, i0 *int32, i1 *int32, n int, acc *[16]float64)
TEXT ·accumQuad(SB), NOSPLIT, $0-40
	MOVQ v4+0(FP), SI
	MOVQ i0+8(FP), DI
	MOVQ i1+16(FP), R8
	MOVQ n+24(FP), CX
	MOVQ acc+32(FP), DX
	VXORPD Y0, Y0, Y0 // s rows 0..3, permutation i0
	VXORPD Y1, Y1, Y1 // q rows 0..3, permutation i0
	VXORPD Y2, Y2, Y2 // s rows 0..3, permutation i1
	VXORPD Y3, Y3, Y3 // q rows 0..3, permutation i1
	XORQ AX, AX // e
	JMP  qcond

qloop:
	MOVL (DI)(AX*4), R9  // j0 = i0[e]
	MOVL (R8)(AX*4), R10 // j1 = i1[e]
	SHLQ $5, R9          // byte offset of v4[4*j0]
	SHLQ $5, R10
	VMOVUPD (SI)(R9*1), Y4  // (row0[j0], row1[j0], row2[j0], row3[j0])
	VADDPD  Y4, Y0, Y0
	VMULPD  Y4, Y4, Y4
	VADDPD  Y4, Y1, Y1
	VMOVUPD (SI)(R10*1), Y5 // (row0[j1], row1[j1], row2[j1], row3[j1])
	VADDPD  Y5, Y2, Y2
	VMULPD  Y5, Y5, Y5
	VADDPD  Y5, Y3, Y3
	INCQ    AX

qcond:
	CMPQ AX, CX
	JLT  qloop
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VZEROUPPER
	RET
