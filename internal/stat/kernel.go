// Batched statistics kernels: the flat-matrix engine behind maxT/pmaxT.
//
// The legacy path (Design.Func) evaluates one row at a time through a
// function pointer and recomputes every group moment from scratch for each
// of the B permutations — the dominant cost the paper's Tables I–V time as
// the "main kernel".  The kernels here exploit two facts the per-row path
// cannot:
//
//  1. The matrix never changes across permutations, only the labelling
//     does.  Every label-independent moment — per-row non-missing count,
//     total sum, total sum of squares, paired differences, block sums —
//     is computed ONCE at kernel construction and reused by all B
//     permutations.
//  2. The per-row totals determine either group's moments from the
//     other's, so the two-sample kernels accumulate ONE group's moments
//     per permutation and derive the second group's by subtraction:
//     n0 = n - n1, s0 = S - s1, q0 = Q - q1.  That roughly halves the
//     per-permutation element visits and replaces Welford's
//     division-per-element update with an add and a multiply.  (Which
//     group is accumulated is chosen per kernel: the smaller class where
//     sums are exact, the class containing column 0 where floating-point
//     tie symmetry demands it — see the tie discipline below.)
//
// A Kernel evaluates all rows of its matrix in one call, so the engine
// pays one virtual dispatch per permutation instead of one per row, and
// walks the rows of a single contiguous allocation in order.
package stat

import (
	"fmt"
	"math"

	"sprint/internal/matrix"
)

// Kernel is the batched statistics engine for one (design, matrix) pair.
// Implementations precompute per-row label-independent moments at
// construction; Stats then evaluates every row under one labelling.
//
// Kernels are immutable after construction and safe for concurrent Stats
// calls as long as each goroutine passes its own KernelScratch.
type Kernel interface {
	// Rows returns the number of matrix rows the kernel was built for.
	Rows() int
	// Stats fills out[i] with the statistic of row i under lab.  lab must
	// have the design's column count and class structure; out must have
	// length Rows().  Rows whose statistic is not computable get NaN.
	// scratch may be nil, in which case temporary storage is allocated.
	Stats(lab []int, out []float64, scratch *KernelScratch)
	// NewScratch sizes a private scratch value for concurrent Stats calls.
	NewScratch() *KernelScratch
}

// KernelScratch holds per-goroutine working storage for Kernel.Stats.
// Values must not be shared between concurrent calls.
type KernelScratch struct {
	idx []int     // selected columns (two-sample), canonical bin order (F, block F)
	cn  []int     // per-class counts (F)
	cs  []float64 // per-class sums (F), treatment sums (block F)
	cq  []float64 // per-class sums of squares (F)
	sgn []float64 // per-pair signs (paired t)
}

// NewKernel builds the batched kernel for the design over m, precomputing
// the per-row moments.  m must already be in its final form: NA cells as
// NaN and, for rank-based statistics, rank-transformed rows (maxt.NewPrep
// does both).  The kernel keeps a reference to m.Data; callers must not
// mutate it afterwards.
func NewKernel(d *Design, m matrix.Matrix) (Kernel, error) {
	if m.Cols != d.N {
		return nil, fmt.Errorf("stat: matrix has %d columns, design has %d", m.Cols, d.N)
	}
	if len(m.Data) != m.Rows*m.Cols {
		return nil, fmt.Errorf("stat: matrix data has %d elements for %dx%d", len(m.Data), m.Rows, m.Cols)
	}
	switch d.Test {
	case Welch:
		return newTwoSampleKernel(d, m, false), nil
	case TEqualVar:
		return newTwoSampleKernel(d, m, true), nil
	case Wilcoxon:
		return newWilcoxonKernel(d, m), nil
	case F:
		return newFKernel(d, m), nil
	case PairT:
		return newPairTKernel(d, m), nil
	case BlockF:
		return newBlockFKernel(d, m), nil
	default:
		return nil, fmt.Errorf("stat: no kernel for test %v", d.Test)
	}
}

// smallerClass returns the two-sample class with fewer observed columns —
// the one worth accumulating directly each permutation.  Class sizes are
// invariant under relabelling, so the choice holds for every permutation.
func smallerClass(d *Design) int {
	if d.Counts[0] < d.Counts[1] {
		return 0
	}
	return 1
}

// Floating-point tie discipline
//
// Permutation p-values are exceedance counts, so labellings whose
// statistics are mathematically equal must evaluate to EXACTLY equal (or
// exactly negated) floats, or counts drift by ±1 against a correct
// implementation.  The ties that occur with probability one are the
// symmetry orbits of the observed labelling: the complement labelling
// (two-sample tests on balanced designs), uniform class relabellings (F),
// and the full pair flip (paired t).  Each kernel below states how it
// preserves its orbit exactly; this is why the two-sample t kernels on
// balanced designs accumulate the group CONTAINING COLUMN 0 (the
// complement labelling selects the same column set, so the same floats
// are produced and only the sign flips) rather than a fixed class id,
// and why the F and block-F kernels reduce their per-class aggregates in
// a canonical sorted order (uniform relabellings permute the aggregates
// bitwise-exactly, and a canonical order over every consumed per-bin
// quantity makes the reduction independent of that permutation).

// m2Tol bounds the relative rounding residual of the subtraction-form
// centered second moment m2 = q − s²/n: the computation carries an error
// of order n·ulp(q), so an m2 below q·m2Tol is numerically
// indistinguishable from an exactly zero variance.  Clamping it to zero
// reproduces the legacy Welford path's semantics — a group whose values
// are all equal yields m2 == 0 exactly and hence a NaN statistic (zero
// standard error).  Without the clamp, quantized data (counts, dosages)
// can make a mathematically zero group variance surface as a tiny
// positive residual and a huge finite statistic that would corrupt every
// row's successive maximum.
const m2Tol = 1e-12

// clampM2 zeroes numerically-zero centered second moments (q is the
// group's raw sum of squares, always >= 0 when accumulated directly).
func clampM2(m2, q float64) float64 {
	if m2 < q*m2Tol {
		return 0
	}
	return m2
}

// selectColumns fills s.idx with the columns labelled cls.
func selectColumns(lab []int, cls int, s *KernelScratch) []int {
	idx := s.idx[:0]
	for j, l := range lab {
		if l == cls {
			idx = append(idx, j)
		}
	}
	s.idx = idx
	return idx
}

// ---- two-sample t kernels (Welch, pooled) --------------------------------

// twoSampleKernel implements the Welch and pooled-variance t statistics.
// Precomputed per row: non-missing count n, total sum S, total sum of
// squares Q, and a constant-row flag.  Per permutation it accumulates
// (n, s, q) of ONE group only and derives the other by subtraction from
// the precomputed totals: n0 = n - n1, s0 = S - s1, q0 = Q - q1 — roughly
// halving the per-permutation element visits and replacing Welford's
// division-per-element update with an add and a multiply.
//
// On balanced designs the accumulated group is the one CONTAINING COLUMN
// 0, not a fixed class id: the complement labelling (the balanced-design
// tie partner) assigns column 0's group the identical column set, so both
// labellings accumulate the same floats and the statistic negates exactly
// — the tie discipline above.  On unbalanced designs the complement is
// not a valid relabelling (class sizes are preserved), so the kernel is
// free to accumulate the smaller class, which minimises element visits.
// Constant rows short-circuit to NaN because the subtraction form cannot
// certify an exactly zero variance.
type twoSampleKernel struct {
	m      matrix.Matrix
	pooled bool
	cls    int // fixed accumulated class; -1 anchors on column 0's class
	n      []int
	sum    []float64
	sumsq  []float64
	flat   []bool // row is constant over its non-missing cells
	nsel   int    // accumulated-group size (relabelling-invariant)
	isa    KernelISA
	ir     *intRank // exact integer view of the rows; nil if unrepresentable
}

func newTwoSampleKernel(d *Design, m matrix.Matrix, pooled bool) *twoSampleKernel {
	k := &twoSampleKernel{m: m, pooled: pooled, cls: -1, isa: activeISA}
	k.nsel = d.Counts[smallerClass(d)] // = Counts[0] = Counts[1] when balanced
	if d.Counts[0] != d.Counts[1] {
		k.cls = smallerClass(d)
	}
	k.n, k.sum, k.sumsq = rowTotals(m)
	k.flat = constantRows(m)
	// k.ir (the integer view) is deliberately NOT built here.  Unlike
	// Wilcoxon — whose regular paths use it — the t kernels read it only
	// in StatsDelta, and the profitability gate (DeltaOK, deltaMinGroup)
	// dispatches that path only for accumulated groups so large that
	// their complete enumeration (C(n, k)) could never fit under any
	// sane MaxComplete — so an eager +50% matrix mirror would never be
	// read in production.  Direct StatsDelta callers (tests, the gate's
	// evidence benchmark) build the view themselves.
	return k
}

// constantRows flags rows whose non-missing cells are all equal: no
// labelling can give them a nonzero variance, so their statistic is NaN
// for every permutation (exactly as the legacy per-row path computes).
func constantRows(m matrix.Matrix) []bool {
	flat := make([]bool, m.Rows)
	for i := 0; i < m.Rows; i++ {
		first := math.NaN()
		flat[i] = true
		for _, v := range m.Row(i) {
			if v != v {
				continue
			}
			if first != first {
				first = v
			} else if v != first {
				flat[i] = false
				break
			}
		}
	}
	return flat
}

// rowTotals computes the label-independent per-row moments: non-missing
// count, sum and sum of squares.
func rowTotals(m matrix.Matrix) (n []int, sum, sumsq []float64) {
	n = make([]int, m.Rows)
	sum = make([]float64, m.Rows)
	sumsq = make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		cnt := 0
		var s, q float64
		for _, v := range m.Row(i) {
			if v == v { // !NaN
				cnt++
				s += v
				q += v * v
			}
		}
		n[i], sum[i], sumsq[i] = cnt, s, q
	}
	return n, sum, sumsq
}

func (k *twoSampleKernel) Rows() int { return k.m.Rows }

func (k *twoSampleKernel) NewScratch() *KernelScratch {
	return &KernelScratch{idx: make([]int, 0, k.m.Cols)}
}

func (k *twoSampleKernel) Stats(lab []int, out []float64, s *KernelScratch) {
	if s == nil {
		s = k.NewScratch()
	}
	cls := k.cls
	if cls < 0 {
		cls = lab[0]
	}
	idx := selectColumns(lab, cls, s)
	sign := 1.0 // the statistic is mean(class 1) - mean(class 0)
	if cls == 0 {
		sign = -1.0
	}
	// NA-free rows all share the group sizes (len(idx), cols-len(idx)), so
	// their tail invariants are computed once per call — the same hoisting
	// the batch path applies per batch, keeping the two paths bitwise equal.
	cols := k.m.Cols
	tail, tailOK := newTSTail(k.pooled, len(idx), cols-len(idx))
	for i := 0; i < k.m.Rows; i++ {
		if k.flat[i] {
			out[i] = math.NaN()
			continue
		}
		row := k.m.Row(i)
		na := 0
		var sa, qa float64
		for _, j := range idx {
			v := row[j]
			if v == v {
				na++
				sa += v
				qa += v * v
			}
		}
		if tailOK && k.n[i] == cols {
			out[i] = tail.stat(sign, k.sum[i], k.sumsq[i], sa, qa)
		} else {
			out[i] = twoSampleStat(k.pooled, sign, k.n[i], k.sum[i], k.sumsq[i], na, sa, qa)
		}
	}
}

// tsTail holds the group-size invariants of the two-sample statistic: every
// factor that depends only on (na, nb), precomputed once and reused for
// every permutation sharing those counts.  The statistic is evaluated on
// SCALED central moments m2s = q·f − s·s (= f·m2), which removes every
// division whose numerator varies per permutation:
//
//	Welch:  t = sign · (sa·fb − sb·fa) · rt / sqrt(m2sa·db + m2sb·da)
//	        da = fa²(fa−1), db = fb²(fb−1), rt = sqrt(da·db)/(fa·fb)
//	Pooled: t = sign · (sa·fb − sb·fa) · rt / sqrt((m2sa·fb + m2sb·fa)·(fa+fb))
//	        rt = sqrt(fa + fb − 2)
//
// One division and one square root per permutation; the invariant division
// and square root inside rt are paid once per (na, nb).  Zero-variance
// semantics are unchanged: both scaled moments clamp to zero exactly when
// the unscaled ones did (the clamp threshold scales by the same f), and the
// denominator is zero iff the legacy standard error was.
type tsTail struct {
	fa, fb float64
	da, db float64 // Welch: fa²(fa−1), fb²(fb−1); pooled: fa, fb
	scale  float64 // pooled: fa+fb; Welch: 1
	rt     float64
}

// newTSTail derives the invariants for group sizes (na, nb); ok is false
// when either group is too small for a variance estimate.
func newTSTail(pooled bool, na, nb int) (t tsTail, ok bool) {
	if na < 2 || nb < 2 {
		return t, false
	}
	fa, fb := float64(na), float64(nb)
	t.fa, t.fb = fa, fb
	if pooled {
		t.da, t.db = fa, fb
		t.scale = fa + fb
		t.rt = math.Sqrt(fa + fb - 2)
	} else {
		t.da = fa * fa * (fa - 1)
		t.db = fb * fb * (fb - 1)
		t.scale = 1
		t.rt = math.Sqrt(t.da*t.db) / (fa * fb)
	}
	return t, true
}

// stat forms the statistic from the accumulated group's (sa, qa); the
// complement group is derived by subtraction from the row totals (S, Q).
func (t *tsTail) stat(sign, S, Q, sa, qa float64) float64 {
	sb := S - sa
	qb := Q - qa
	m2a := clampM2(qa*t.fa-sa*sa, qa*t.fa)
	m2b := clampM2(qb*t.fb-sb*sb, qb*t.fb)
	den := (m2a*t.db + m2b*t.da) * t.scale
	if den == 0 {
		return math.NaN()
	}
	return sign * (sa*t.fb - sb*t.fa) * t.rt / math.Sqrt(den)
}

// twoSampleStat is the shared per-row tail of the scalar and batched
// two-sample t paths.  Both paths funnel through tsTail.stat so their
// floating-point operation sequences cannot diverge; the batch fast path
// additionally hoists newTSTail out of its row loop (bitwise neutral: the
// invariants are a pure function of the group sizes).
func twoSampleStat(pooled bool, sign float64, n int, S, Q float64, na int, sa, qa float64) float64 {
	t, ok := newTSTail(pooled, na, n-na)
	if !ok {
		return math.NaN()
	}
	return t.stat(sign, S, Q, sa, qa)
}

// ---- Wilcoxon kernel -----------------------------------------------------

// wilcoxonKernel implements the standardized rank-sum statistic.  The row
// mean and the centered sum of squares are label-independent, so only the
// class-1 count and sum vary per permutation — accumulated via the smaller
// class and derived by subtraction when class 0 is smaller.  On mid-rank
// data (half-integers) the sums are exact, so the derived values are
// bit-identical to direct accumulation.
//
// Two per-row precomputations ride on that exactness.  (1) The integer
// view (intRank): mid-ranks scaled by 2 are small integers, so the
// per-permutation class sum accumulates in int64 — no NaN tests on
// NA-free rows, half the bytes per element — and converts back to the
// identical float.  (2) The hoisted tail (wilxTail): on NA-free rows the
// class counts never vary, so the whole tie-corrected variance — which
// depends only on the row's tie structure through the centered sum of
// squares — moves out of the permutation loop into per-row state, leaving
// one subtraction and one division per (row, permutation).
type wilcoxonKernel struct {
	m       matrix.Matrix
	cls     int
	nsel    int // columns in the accumulated class (relabelling-invariant)
	n       []int
	total   []float64
	totalSq []float64
	ir      *intRank   // exact integer view; nil if no row is representable
	tails   []wilxTail // hoisted per-row tail, valid on NA-free rows
}

func newWilcoxonKernel(d *Design, m matrix.Matrix) *wilcoxonKernel {
	k := &wilcoxonKernel{m: m, cls: smallerClass(d)}
	k.nsel = d.Counts[k.cls]
	k.n, k.total, k.totalSq = rowTotals(m)
	k.ir = newIntRank(m)
	k.tails = make([]wilxTail, m.Rows)
	for i := range k.tails {
		if k.n[i] == m.Cols {
			k.tails[i] = newWilxTail(k.cls, k.nsel, k.n[i], k.total[i], k.totalSq[i])
		}
	}
	return k
}

// wilxTail holds the permutation-invariant part of the Wilcoxon z-score
// for one row with fixed class counts (every NA-free row): the row mean's
// class-1 expectation mu1 = n1·ybar and the tie-corrected standard
// deviation sd = sqrt(n0·n1/(nn·(nn−1))·Σ(y−ybar)²), both pure functions
// of the row totals and the (relabelling-invariant) class sizes.  The
// per-permutation statistic is then (s1 − mu1)/sd — the identical
// IEEE-754 operations wilcoxonStat performs, with the invariant factors
// computed once at kernel construction instead of once per permutation.
type wilxTail struct {
	ok    bool
	neg   bool // accumulated class is 0: s1 = total − sc
	total float64
	mu1   float64
	sd    float64
}

// newWilxTail derives the invariants for a row with nc accumulated-class
// observations out of nn; ok is false when the statistic is never
// computable (small counts or zero tie-corrected variance).
func newWilxTail(cls, nc, nn int, total, totalSq float64) (t wilxTail) {
	var n0, n1 int
	if cls == 1 {
		n1 = nc
		n0 = nn - nc
	} else {
		n0 = nc
		n1 = nn - nc
		t.neg = true
	}
	t.total = total
	if n0 < 2 || n1 < 2 || nn < 3 {
		return t
	}
	ybar := total / float64(nn)
	ssq := totalSq - float64(nn)*ybar*ybar
	variance := float64(n0) * float64(n1) / (float64(nn) * float64(nn-1)) * ssq
	if variance <= 0 {
		return t
	}
	t.ok = true
	t.mu1 = float64(n1) * ybar
	t.sd = math.Sqrt(variance)
	return t
}

// stat forms the statistic from the accumulated class sum sc.
func (t *wilxTail) stat(sc float64) float64 {
	if !t.ok {
		return math.NaN()
	}
	s1 := sc
	if t.neg {
		s1 = t.total - sc
	}
	return (s1 - t.mu1) / t.sd
}

func (k *wilcoxonKernel) Rows() int { return k.m.Rows }

func (k *wilcoxonKernel) NewScratch() *KernelScratch {
	return &KernelScratch{idx: make([]int, 0, k.m.Cols)}
}

func (k *wilcoxonKernel) Stats(lab []int, out []float64, s *KernelScratch) {
	if s == nil {
		s = k.NewScratch()
	}
	idx := selectColumns(lab, k.cls, s)
	for i := 0; i < k.m.Rows; i++ {
		full := k.n[i] == k.m.Cols
		if k.ir != nil && k.ir.ok[i] {
			// Integer fast path: the scaled sum is exact, so converting it
			// back yields the identical float the accumulation below forms.
			ri := k.ir.row(i)
			var isum int64
			if full {
				for _, j := range idx {
					isum += int64(ri[j])
				}
				out[i] = k.tails[i].stat(float64(isum) * 0.5)
			} else {
				nc := 0
				for _, j := range idx {
					if v := ri[j]; v != 0 {
						nc++
						isum += int64(v)
					}
				}
				out[i] = wilcoxonStat(k.cls, nc, float64(isum)*0.5, k.n[i], k.total[i], k.totalSq[i])
			}
			continue
		}
		row := k.m.Row(i)
		nc := 0
		var sc float64
		for _, j := range idx {
			v := row[j]
			if v == v {
				nc++
				sc += v
			}
		}
		if full {
			out[i] = k.tails[i].stat(sc)
		} else {
			out[i] = wilcoxonStat(k.cls, nc, sc, k.n[i], k.total[i], k.totalSq[i])
		}
	}
}

// wilcoxonStat is the shared per-row tail of the scalar and batched
// Wilcoxon paths: cls names the accumulated class, (nc, sc) its count and
// sum, and (nn, total, totalSq) the precomputed row totals.
func wilcoxonStat(cls, nc int, sc float64, nn int, total, totalSq float64) float64 {
	var n0, n1 int
	var s1 float64
	if cls == 1 {
		n1, s1 = nc, sc
		n0 = nn - nc
	} else {
		n0 = nc
		n1 = nn - nc
		s1 = total - sc
	}
	if n0 < 2 || n1 < 2 || nn < 3 {
		return math.NaN()
	}
	ybar := total / float64(nn)
	ssq := totalSq - float64(nn)*ybar*ybar
	variance := float64(n0) * float64(n1) / (float64(nn) * float64(nn-1)) * ssq
	if variance <= 0 {
		return math.NaN()
	}
	return (s1 - float64(n1)*ybar) / math.Sqrt(variance)
}

// ---- one-way F kernel ----------------------------------------------------

// fKernel implements the one-way ANOVA F with per-class count/sum/sum-of-
// squares accumulation — one add and one multiply per element instead of a
// Welford update with a division.  Per the tie discipline, the per-class
// aggregates are reduced in canonical (sorted) order so a uniform class
// relabelling — which permutes the aggregates bitwise-exactly — cannot
// perturb the result by reassociating the reductions.
type fKernel struct {
	m    matrix.Matrix
	k    int
	flat []bool
}

func newFKernel(d *Design, m matrix.Matrix) *fKernel {
	return &fKernel{m: m, k: d.K, flat: constantRows(m)}
}

func (k *fKernel) Rows() int { return k.m.Rows }

func (k *fKernel) NewScratch() *KernelScratch {
	return &KernelScratch{
		idx: make([]int, k.k),
		cn:  make([]int, k.k),
		cs:  make([]float64, k.k),
		cq:  make([]float64, k.k),
	}
}

// canonicalOrder fills ord with 0..len(ord)-1 sorted by (key, tie, cnt)
// via insertion sort (class counts are tiny), index as the last resort.
// Every per-bin quantity a reduction consumes must appear in the sort key:
// bins that compare equal on all keys hold fully identical values, so
// only then is their relative order irrelevant to the reduction.
func canonicalOrder(ord []int, key, tie []float64, cnt []int) {
	less := func(x, y int) bool {
		switch {
		case key[x] != key[y]:
			return key[x] < key[y]
		case tie != nil && tie[x] != tie[y]:
			return tie[x] < tie[y]
		case cnt != nil && cnt[x] != cnt[y]:
			return cnt[x] < cnt[y]
		default:
			return x < y
		}
	}
	for g := range ord {
		ord[g] = g
	}
	for a := 1; a < len(ord); a++ {
		for b := a; b > 0 && less(ord[b], ord[b-1]); b-- {
			ord[b-1], ord[b] = ord[b], ord[b-1]
		}
	}
}

func (k *fKernel) Stats(lab []int, out []float64, s *KernelScratch) {
	if s == nil {
		s = k.NewScratch()
	}
	kk := k.k
	cn, cs, cq, ord := s.cn, s.cs, s.cq, s.idx[:kk]
	for i := 0; i < k.m.Rows; i++ {
		if k.flat[i] {
			out[i] = math.NaN()
			continue
		}
		for g := 0; g < kk; g++ {
			cn[g], cs[g], cq[g] = 0, 0, 0
		}
		for j, v := range k.m.Row(i) {
			if v != v {
				continue
			}
			g := lab[j]
			if g < 0 || g >= kk {
				continue
			}
			cn[g]++
			cs[g] += v
			cq[g] += v * v
		}
		out[i] = fStat(cn, cs, cq, ord, kk)
	}
}

// fStat is the shared per-row tail of the scalar and batched F paths: the
// canonical-order reduction over the accumulated per-class (count, sum,
// sum of squares) bins.  cn is part of the sort key: two classes can share
// (sum, sum of squares) with different sizes, and their m2 and ssBetween
// contributions differ, so the order must still be canonical.
func fStat(cn []int, cs, cq []float64, ord []int, kk int) float64 {
	total := 0
	for g := 0; g < kk; g++ {
		if cn[g] < 2 {
			return math.NaN()
		}
		total += cn[g]
	}
	canonicalOrder(ord, cs, cq, cn)
	var grand float64
	for _, g := range ord {
		grand += cs[g]
	}
	grand /= float64(total)
	var ssBetween, ssWithin float64
	for _, g := range ord {
		fg := float64(cn[g])
		mg := cs[g] / fg
		ssWithin += clampM2(cq[g]-cs[g]*mg, cq[g])
		dg := mg - grand
		ssBetween += fg * dg * dg
	}
	dfWithin := total - kk
	if dfWithin <= 0 || ssWithin <= 0 {
		return math.NaN()
	}
	return (ssBetween / float64(kk-1)) / (ssWithin / float64(dfWithin))
}

// ---- paired t kernel -----------------------------------------------------

// pairTKernel implements the paired t.  Pair differences and their sum of
// squares are sign-invariant, hence label-independent: both are
// precomputed, and a permutation only flips signs in the difference sum —
// one multiply-add per pair.
type pairTKernel struct {
	pairs int
	diffs matrix.Matrix // rows × pairs; NaN marks an incomplete pair
	cnt   []int         // complete pairs per row
	sumsq []float64     // Σ d² per row
}

func newPairTKernel(d *Design, m matrix.Matrix) *pairTKernel {
	k := &pairTKernel{
		pairs: d.Pairs,
		diffs: matrix.New(m.Rows, d.Pairs),
		cnt:   make([]int, m.Rows),
		sumsq: make([]float64, m.Rows),
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		dst := k.diffs.Row(i)
		for j := 0; j < d.Pairs; j++ {
			a, b := row[2*j], row[2*j+1]
			if a != a || b != b {
				dst[j] = math.NaN()
				continue
			}
			dv := b - a
			dst[j] = dv
			k.cnt[i]++
			k.sumsq[i] += dv * dv
		}
	}
	return k
}

func (k *pairTKernel) Rows() int { return k.diffs.Rows }

func (k *pairTKernel) NewScratch() *KernelScratch {
	return &KernelScratch{sgn: make([]float64, k.pairs)}
}

func (k *pairTKernel) Stats(lab []int, out []float64, s *KernelScratch) {
	if s == nil {
		s = k.NewScratch()
	}
	sgn := s.sgn
	for j := 0; j < k.pairs; j++ {
		// The difference is (value labelled 1) - (value labelled 0); a
		// pair stored (1,0) flips it.
		if lab[2*j] == 1 {
			sgn[j] = -1
		} else {
			sgn[j] = 1
		}
	}
	for i := 0; i < k.diffs.Rows; i++ {
		var sum float64
		for j, dv := range k.diffs.Row(i) {
			if dv == dv {
				sum += sgn[j] * dv
			}
		}
		out[i] = pairTStat(sum, k.cnt[i], k.sumsq[i])
	}
}

// pairTStat is the shared per-row tail of the scalar and batched paired-t
// paths: sum is the signed difference sum, m the complete-pair count and
// sumsq the precomputed (sign-invariant) sum of squared differences.  On
// the scaled central moment m2s = sumsq·fm − sum² (= fm·m2) the statistic
// collapses to
//
//	t = mean / (sd/√fm) = sum · √(fm−1) / √m2s
//
// — one division and one data-dependent square root per permutation, with
// the zero-variance NaN exactly when the legacy sd was zero (m2s clamps to
// zero whenever fm·m2 is numerically zero; the threshold scales by fm).
func pairTStat(sum float64, m int, sumsq float64) float64 {
	if m < 2 {
		return math.NaN()
	}
	fm := float64(m)
	m2s := clampM2(sumsq*fm-sum*sum, sumsq*fm)
	if m2s == 0 {
		return math.NaN()
	}
	return sum * math.Sqrt(fm-1) / math.Sqrt(m2s)
}

// ---- block F kernel ------------------------------------------------------

// blockFKernel implements the randomized-complete-block F.  Within-block
// permutations leave the block sums, the grand mean, the total and block
// sums of squares — everything except the treatment sums — unchanged, so
// all of them are precomputed per row and each permutation accumulates
// only the k treatment sums over the complete blocks.
type blockFKernel struct {
	m         matrix.Matrix
	k, blocks int
	complete  []bool // rows × blocks, flattened
	blockUsed []int
	grandMean []float64
	ssTotal   []float64
	ssBlock   []float64
}

func newBlockFKernel(d *Design, m matrix.Matrix) *blockFKernel {
	k := &blockFKernel{
		m: m, k: d.BlockSize, blocks: d.Blocks,
		complete:  make([]bool, m.Rows*d.Blocks),
		blockUsed: make([]int, m.Rows),
		grandMean: make([]float64, m.Rows),
		ssTotal:   make([]float64, m.Rows),
		ssBlock:   make([]float64, m.Rows),
	}
	kk, blocks := d.BlockSize, d.Blocks
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		comp := k.complete[i*blocks : (i+1)*blocks]
		used := 0
		for b := 0; b < blocks; b++ {
			ok := true
			for j := 0; j < kk; j++ {
				if v := row[b*kk+j]; v != v {
					ok = false
					break
				}
			}
			comp[b] = ok
			if ok {
				used++
			}
		}
		k.blockUsed[i] = used
		if used < 2 {
			continue // row permanently uncomputable
		}
		var grand float64
		for b := 0; b < blocks; b++ {
			if !comp[b] {
				continue
			}
			for j := 0; j < kk; j++ {
				grand += row[b*kk+j]
			}
		}
		gm := grand / float64(used*kk)
		k.grandMean[i] = gm
		var ssTotal, ssBlock float64
		for b := 0; b < blocks; b++ {
			if !comp[b] {
				continue
			}
			var bs float64
			for j := 0; j < kk; j++ {
				v := row[b*kk+j]
				dv := v - gm
				ssTotal += dv * dv
				bs += v
			}
			db := bs/float64(kk) - gm
			ssBlock += float64(kk) * db * db
		}
		k.ssTotal[i], k.ssBlock[i] = ssTotal, ssBlock
	}
	return k
}

func (k *blockFKernel) Rows() int { return k.m.Rows }

func (k *blockFKernel) NewScratch() *KernelScratch {
	return &KernelScratch{cs: make([]float64, k.k), idx: make([]int, k.k)}
}

func (k *blockFKernel) Stats(lab []int, out []float64, s *KernelScratch) {
	if s == nil {
		s = k.NewScratch()
	}
	kk, blocks := k.k, k.blocks
	treatSum := s.cs
	for i := 0; i < k.m.Rows; i++ {
		used := k.blockUsed[i]
		if used < 2 {
			out[i] = math.NaN()
			continue
		}
		for t := 0; t < kk; t++ {
			treatSum[t] = 0
		}
		row := k.m.Row(i)
		comp := k.complete[i*blocks : (i+1)*blocks]
		for b, ok := range comp {
			if !ok {
				continue
			}
			base := b * kk
			for j := 0; j < kk; j++ {
				treatSum[lab[base+j]] += row[base+j]
			}
		}
		out[i] = blockFStat(treatSum, s.idx[:kk], used, kk, k.grandMean[i], k.ssTotal[i], k.ssBlock[i])
	}
}

// blockFStat is the shared per-row tail of the scalar and batched block-F
// paths.  Canonical order: a treatment relabelling applied uniformly to
// every block permutes the treatment sums bitwise-exactly; sorting keeps
// the ssTreat reduction independent of that permutation.
func blockFStat(treatSum []float64, ord []int, used, kk int, gm, ssTotal, ssBlock float64) float64 {
	canonicalOrder(ord, treatSum, nil, nil)
	var ssTreat float64
	for _, t := range ord {
		dt := treatSum[t]/float64(used) - gm
		ssTreat += float64(used) * dt * dt
	}
	ssErr := ssTotal - ssTreat - ssBlock
	dfErr := (kk - 1) * (used - 1)
	if dfErr <= 0 || ssErr <= 0 {
		return math.NaN()
	}
	return (ssTreat / float64(kk-1)) / (ssErr / float64(dfErr))
}
