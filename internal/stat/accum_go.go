package stat

// Pure-Go reference implementations of the two-sample batch accumulation
// kernels.  These are the semantics the assembly kernels must reproduce
// bitwise: per iteration each (row, permutation) accumulator pair advances
// by one scalar IEEE-754 add and one multiply-add in ascending
// selected-column order, exactly as the scalar Stats path does, so every
// implementation — generic, SSE2 pair, AVX2 quad — is interchangeable.

// accumPairGo accumulates (sum, sum of squares) of two permutations'
// selected columns over an interleaved row pair (vab[2j] = rowA[j],
// vab[2j+1] = rowB[j]).  On return acc[0..3] hold permutation i0's
// (saA, saB, qaA, qaB) and acc[4..7] permutation i1's.
func accumPairGo(vab *float64, i0 *int32, i1 *int32, n int, acc *[8]float64) {
	var sa0, sb0, qa0, qb0, sa1, sb1, qa1, qb1 float64
	for e := 0; e < n; e++ {
		j0 := ptrI32(i0, e)
		j1 := ptrI32(i1, e)
		vA0 := gather(vab, 2*j0)
		vB0 := gather(vab, 2*j0+1)
		sa0 += vA0
		qa0 += vA0 * vA0
		sb0 += vB0
		qb0 += vB0 * vB0
		vA1 := gather(vab, 2*j1)
		vB1 := gather(vab, 2*j1+1)
		sa1 += vA1
		qa1 += vA1 * vA1
		sb1 += vB1
		qb1 += vB1 * vB1
	}
	acc[0], acc[1], acc[2], acc[3] = sa0, sb0, qa0, qb0
	acc[4], acc[5], acc[6], acc[7] = sa1, sb1, qa1, qb1
}

// accumQuadGo is the 4-row widening of accumPairGo: v4 interleaves four
// rows as v4[4j+r] = row_r[j], and the accumulators of two permutations
// advance over all four rows per iteration.  On return acc[0..3] hold
// permutation i0's sums (rows 0..3), acc[4..7] its sums of squares, and
// acc[8..15] the same for permutation i1.  Each (row, permutation) chain
// is the scalar IEEE-754 sequence in ascending selected-column order —
// the lane layout of the AVX2 kernel in accum_avx2_amd64.s.
func accumQuadGo(v4 *float64, i0 *int32, i1 *int32, n int, acc *[16]float64) {
	var s0 [4]float64
	var q0 [4]float64
	var s1 [4]float64
	var q1 [4]float64
	for e := 0; e < n; e++ {
		j0 := ptrI32(i0, e)
		j1 := ptrI32(i1, e)
		for r := int32(0); r < 4; r++ {
			v := gather(v4, 4*j0+r)
			s0[r] += v
			q0[r] += v * v
		}
		for r := int32(0); r < 4; r++ {
			v := gather(v4, 4*j1+r)
			s1[r] += v
			q1[r] += v * v
		}
	}
	copy(acc[0:4], s0[:])
	copy(acc[4:8], q0[:])
	copy(acc[8:12], s1[:])
	copy(acc[12:16], q1[:])
}
