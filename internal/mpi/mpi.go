// Package mpi is an in-process message-passing substrate with the subset of
// MPI semantics that SPRINT relies on: ranked processes, tagged
// point-to-point messages with non-overtaking delivery, and the collective
// operations pmaxT calls (broadcast, reduce, all-reduce, gather, barrier).
//
// The paper's implementation runs on real MPI over Cray SeaStar2, Gigabit
// Ethernet, virtualised cloud networks and shared memory.  We have none of
// those; goroutines and channels stand in for processes and interconnect
// (see DESIGN.md).  What is preserved is the *algorithmic* structure:
//
//   - one goroutine per rank, no shared mutable state between ranks other
//     than messages (data races across ranks would be as illegal here as
//     across MPI processes);
//   - collectives implemented as binomial trees, so the number of message
//     hops grows as ceil(log2 p) exactly like the interconnect cost the
//     paper measures in its "Broadcast parameters" and "Compute p-values"
//     columns;
//   - deterministic tag matching: each (src, dst) channel is FIFO and a
//     receive asserts the expected tag, catching protocol bugs loudly.
//
// Payloads travel by reference (this is one address space).  Callers must
// follow the MPI ownership discipline: a sender must not mutate a message
// after sending it.  Collectives that combine data (Reduce) copy operands
// before combining where needed.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// chanCap is the per-link buffer.  One slot is enough to make every
// collective in this package deadlock-free; more slots only add slack for
// user-level pipelining.
const chanCap = 4

type message struct {
	tag  int
	data any
}

// world owns the mailboxes shared by all ranks of one Run.
type world struct {
	size int
	mail [][]chan message // mail[src][dst]
	done chan struct{}    // closed on abort
	fail sync.Once
	err  atomic.Value // first abort error

	messages atomic.Int64 // total point-to-point messages delivered
}

func newWorld(n int) *world {
	w := &world{size: n, done: make(chan struct{})}
	w.mail = make([][]chan message, n)
	for s := range w.mail {
		w.mail[s] = make([]chan message, n)
		for d := range w.mail[s] {
			w.mail[s][d] = make(chan message, chanCap)
		}
	}
	return w
}

// abort poisons the world so that blocked ranks unblock and fail instead of
// hanging the process when one rank dies.
func (w *world) abort(err error) {
	w.fail.Do(func() {
		w.err.Store(err)
		close(w.done)
	})
}

// ErrAborted is the panic value observed by ranks whose communication was
// interrupted because another rank failed first.
var ErrAborted = fmt.Errorf("mpi: world aborted by another rank's failure")

// Comm is one rank's handle on the communicator.  A Comm must only be used
// by the goroutine it was handed to, mirroring MPI's process-private state.
type Comm struct {
	rank int
	w    *world
}

// Rank returns the calling rank, 0-based.  Rank 0 is the master in the
// SPRINT framework.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.w.size }

// Messages returns the total point-to-point messages delivered so far in
// this world, across all ranks.  Used by tests and by the performance
// model's calibration hooks.
func (c *Comm) Messages() int64 { return c.w.messages.Load() }

// send delivers a message, aborting if the world has failed.
func (c *Comm) send(dst, tag int, data any) {
	if dst < 0 || dst >= c.w.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d (size %d)", dst, c.w.size))
	}
	select {
	case c.w.mail[c.rank][dst] <- message{tag: tag, data: data}:
		c.w.messages.Add(1)
	case <-c.w.done:
		panic(ErrAborted)
	}
}

// recv blocks for the next message from src and asserts its tag.
func (c *Comm) recv(src, tag int) any {
	if src < 0 || src >= c.w.size {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d (size %d)", src, c.w.size))
	}
	select {
	case m := <-c.w.mail[src][c.rank]:
		if m.tag != tag {
			panic(fmt.Sprintf("mpi: rank %d expected tag %d from rank %d, got %d",
				c.rank, tag, src, m.tag))
		}
		return m.data
	case <-c.w.done:
		panic(ErrAborted)
	}
}

// SendAny sends an untyped payload with a user tag (must be >= 0; negative
// tags are reserved for collectives).
func (c *Comm) SendAny(dst, tag int, data any) {
	if tag < 0 {
		panic("mpi: negative tags are reserved for collectives")
	}
	c.send(dst, tag, data)
}

// RecvAny receives an untyped payload with a user tag.
func (c *Comm) RecvAny(src, tag int) any {
	if tag < 0 {
		panic("mpi: negative tags are reserved for collectives")
	}
	return c.recv(src, tag)
}

// Send sends a typed payload with a user tag (>= 0).
func Send[T any](c *Comm, dst, tag int, v T) {
	if tag < 0 {
		panic("mpi: negative tags are reserved for collectives")
	}
	sendT(c, dst, tag, v)
}

// Recv receives a typed payload with a user tag (>= 0), panicking with a
// descriptive message if the sender's type does not match.
func Recv[T any](c *Comm, src, tag int) T {
	if tag < 0 {
		panic("mpi: negative tags are reserved for collectives")
	}
	return recvT[T](c, src, tag)
}

// sendT and recvT are the internal typed primitives shared by user sends
// and collectives; they accept reserved tags.
func sendT[T any](c *Comm, dst, tag int, v T) {
	c.send(dst, tag, v)
}

func recvT[T any](c *Comm, src, tag int) T {
	data := c.recv(src, tag)
	v, ok := data.(T)
	if !ok {
		if data == nil {
			// A nil payload asserts to no type, including `any`; it
			// decodes to the zero value (e.g. gathering nil partials).
			var zero T
			return zero
		}
		panic(fmt.Sprintf("mpi: rank %d received %T from rank %d, want %T",
			c.rank, data, src, v))
	}
	return v
}

// Reserved collective tags; the per-link FIFO ordering plus identical
// program order across ranks make fixed tags sufficient.
const (
	tagBarrier = -1
	tagBcast   = -2
	tagReduce  = -3
	tagGather  = -4
	tagScatter = -5
)

// Barrier blocks until every rank has entered it.  Implemented as a
// dissemination barrier: ceil(log2 n) rounds of shifted sends, the same
// message count real MPI implementations pay.
func (c *Comm) Barrier() {
	n := c.w.size
	for shift := 1; shift < n; shift <<= 1 {
		dst := (c.rank + shift) % n
		src := (c.rank - shift + n) % n
		c.send(dst, tagBarrier, nil)
		c.recv(src, tagBarrier)
	}
}

// Bcast broadcasts root's value to every rank along a binomial tree and
// returns it.  Non-root callers pass their zero value and use the return.
func Bcast[T any](c *Comm, root int, v T) T {
	n := c.w.size
	if root < 0 || root >= n {
		panic(fmt.Sprintf("mpi: bcast root %d out of range", root))
	}
	vrank := (c.rank - root + n) % n
	// Receive phase: find the bit that connects us to our parent.
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			src := (c.rank - mask + n) % n
			v = recvT[T](c, src, tagBcast)
			break
		}
		mask <<= 1
	}
	// Forward phase: serve the subtree below the receiving bit.
	mask >>= 1
	for mask > 0 {
		if vrank+mask < n {
			dst := (c.rank + mask) % n
			sendT(c, dst, tagBcast, v)
		}
		mask >>= 1
	}
	return v
}

// Reduce combines every rank's value with the commutative, associative op
// along a binomial tree.  The fully combined value is returned on root with
// ok = true; other ranks get their partially combined value with ok =
// false.  op may mutate and return its first argument (the accumulator) but
// must not retain the second.
func Reduce[T any](c *Comm, root int, v T, op func(acc, in T) T) (result T, ok bool) {
	n := c.w.size
	if root < 0 || root >= n {
		panic(fmt.Sprintf("mpi: reduce root %d out of range", root))
	}
	vrank := (c.rank - root + n) % n
	mask := 1
	for mask < n {
		if vrank&mask == 0 {
			partnerV := vrank | mask
			if partnerV < n {
				src := (partnerV + root) % n
				in := recvT[T](c, src, tagReduce)
				v = op(v, in)
			}
		} else {
			dst := (vrank - mask + root) % n
			sendT(c, dst, tagReduce, v)
			return v, false
		}
		mask <<= 1
	}
	return v, true
}

// Allreduce combines every rank's value and distributes the result to all
// ranks: Reduce to rank 0's virtual root followed by a broadcast.
func Allreduce[T any](c *Comm, v T, op func(acc, in T) T) T {
	combined, ok := Reduce(c, 0, v, op)
	if !ok {
		var zero T
		combined = zero
	}
	return Bcast(c, 0, combined)
}

// Gather collects one value from every rank on root, indexed by rank.
// Non-root ranks receive nil.  The gather is linear, matching the master
// collecting partial observations in Step 5 of the paper.
func Gather[T any](c *Comm, root int, v T) []T {
	n := c.w.size
	if root < 0 || root >= n {
		panic(fmt.Sprintf("mpi: gather root %d out of range", root))
	}
	if c.rank != root {
		sendT(c, root, tagGather, v)
		return nil
	}
	out := make([]T, n)
	out[c.rank] = v
	for src := 0; src < n; src++ {
		if src == root {
			continue
		}
		out[src] = recvT[T](c, src, tagGather)
	}
	return out
}

// Scatter distributes vals[i] from root to rank i and returns the local
// element.  len(vals) must equal Size() on root; vals is ignored elsewhere.
func Scatter[T any](c *Comm, root int, vals []T) T {
	n := c.w.size
	if root < 0 || root >= n {
		panic(fmt.Sprintf("mpi: scatter root %d out of range", root))
	}
	if c.rank == root {
		if len(vals) != n {
			panic(fmt.Sprintf("mpi: scatter with %d values for %d ranks", len(vals), n))
		}
		for dst := 0; dst < n; dst++ {
			if dst != root {
				sendT(c, dst, tagScatter, vals[dst])
			}
		}
		return vals[root]
	}
	return recvT[T](c, root, tagScatter)
}

// SumInt64 is the reduction operator for exceedance-count vectors: the
// element-wise global sum of Step 5.  It accumulates in place into acc.
func SumInt64(acc, in []int64) []int64 {
	if len(acc) != len(in) {
		panic("mpi: SumInt64 length mismatch")
	}
	for i := range acc {
		acc[i] += in[i]
	}
	return acc
}

// SumFloat64 is the element-wise float64 sum operator.
func SumFloat64(acc, in []float64) []float64 {
	if len(acc) != len(in) {
		panic("mpi: SumFloat64 length mismatch")
	}
	for i := range acc {
		acc[i] += in[i]
	}
	return acc
}

// RankError reports which rank failed and why when Run returns an error.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %v", e.Rank, e.Err)
}

// Unwrap exposes the underlying failure.
func (e *RankError) Unwrap() error { return e.Err }

// Run executes fn once per rank on n concurrent goroutines, each with its
// own Comm, and waits for all of them.  The first rank failure (returned
// error or panic) aborts the world so no rank blocks forever; Run returns
// that first failure.  Panics carrying ErrAborted are secondary casualties
// and are not reported over the primary error.
func Run(n int, fn func(c *Comm) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: world size %d must be positive", n)
	}
	w := newWorld(n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if err, isErr := r.(error); isErr && err == ErrAborted {
						errs[rank] = ErrAborted
						return
					}
					err := &RankError{Rank: rank, Err: fmt.Errorf("panic: %v", r)}
					errs[rank] = err
					w.abort(err)
				}
			}()
			if err := fn(&Comm{rank: rank, w: w}); err != nil {
				re := &RankError{Rank: rank, Err: err}
				errs[rank] = re
				w.abort(re)
			}
		}(rank)
	}
	wg.Wait()
	if v := w.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}
