package mpi

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// worldSizes covers degenerate, power-of-two and odd sizes; collectives'
// binomial trees behave differently for each shape.
var worldSizes = []int{1, 2, 3, 4, 5, 7, 8, 16}

func TestRunInvalidSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Error("Run(0) succeeded, want error")
	}
	if err := Run(-3, func(c *Comm) error { return nil }); err == nil {
		t.Error("Run(-3) succeeded, want error")
	}
}

func TestRankAndSize(t *testing.T) {
	const n = 6
	var seen [n]atomic.Bool
	err := Run(n, func(c *Comm) error {
		if c.Size() != n {
			return fmt.Errorf("Size() = %d, want %d", c.Size(), n)
		}
		if seen[c.Rank()].Swap(true) {
			return fmt.Errorf("rank %d handed out twice", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range seen {
		if !seen[r].Load() {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestSendRecvPointToPoint(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 1, 5, "hello")
			Send(c, 1, 6, 42)
			return nil
		}
		if got := Recv[string](c, 0, 5); got != "hello" {
			return fmt.Errorf("first message = %q", got)
		}
		if got := Recv[int](c, 0, 6); got != 42 {
			return fmt.Errorf("second message = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessagesAreFIFOPerLink(t *testing.T) {
	const count = 100
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < count; i++ {
				Send(c, 1, 1, i)
			}
			return nil
		}
		for i := 0; i < count; i++ {
			if got := Recv[int](c, 0, 1); got != i {
				return fmt.Errorf("message %d arrived as %d", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNilPayloadsDecodeToZero(t *testing.T) {
	// Workers that have nothing to contribute send nil; a nil interface
	// asserts to no type, so recvT must special-case it (regression test
	// for a bug found by papply's gather of nil partials).
	err := Run(3, func(c *Comm) error {
		var payload any
		if c.Rank() == 1 {
			payload = "real"
		}
		got := Gather(c, 0, payload)
		if c.Rank() == 0 {
			if got[0] != nil || got[2] != nil {
				return fmt.Errorf("nil payloads arrived as %v, %v", got[0], got[2])
			}
			if got[1] != "real" {
				return fmt.Errorf("non-nil payload arrived as %v", got[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTypeMismatchAborts(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 1, 1, "not an int")
			return nil
		}
		_ = Recv[int](c, 0, 1)
		return nil
	})
	if err == nil {
		t.Fatal("type mismatch did not surface as error")
	}
}

func TestTagMismatchAborts(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 1, 1, 7)
			return nil
		}
		_ = Recv[int](c, 0, 2)
		return nil
	})
	if err == nil {
		t.Fatal("tag mismatch did not surface as error")
	}
}

func TestUserTagsMustBeNonNegative(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		c.SendAny(0, -1, nil)
		return nil
	})
	if err == nil {
		t.Fatal("negative user tag accepted")
	}
}

func TestBarrierAllSizes(t *testing.T) {
	for _, n := range worldSizes {
		var entered atomic.Int32
		err := Run(n, func(c *Comm) error {
			entered.Add(1)
			c.Barrier()
			// After the barrier every rank must observe all n entries.
			if got := entered.Load(); int(got) != n {
				return fmt.Errorf("rank %d passed barrier with %d/%d ranks entered", c.Rank(), got, n)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBarrierRepeatable(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, n := range worldSizes {
		for root := 0; root < n; root++ {
			err := Run(n, func(c *Comm) error {
				var v string
				if c.Rank() == root {
					v = fmt.Sprintf("payload-%d", root)
				}
				got := Bcast(c, root, v)
				want := fmt.Sprintf("payload-%d", root)
				if got != want {
					return fmt.Errorf("rank %d got %q, want %q", c.Rank(), got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestBcastMessageCount(t *testing.T) {
	// A broadcast must deliver exactly n-1 point-to-point messages
	// regardless of tree shape.  Each rank records the highest message
	// count it observes after finishing; the rank that performed the
	// globally last send reads the complete total, so the max equals it.
	for _, n := range []int{2, 5, 8, 13} {
		var maxSeen atomic.Int64
		err := Run(n, func(c *Comm) error {
			Bcast(c, 0, 99)
			for {
				cur := maxSeen.Load()
				m := c.Messages()
				if m <= cur || maxSeen.CompareAndSwap(cur, m) {
					break
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := maxSeen.Load(); got != int64(n-1) {
			t.Errorf("n=%d: bcast used %d messages, want %d", n, got, n-1)
		}
	}
}

func TestReduceSumAllSizesAllRoots(t *testing.T) {
	for _, n := range worldSizes {
		for root := 0; root < n; root++ {
			err := Run(n, func(c *Comm) error {
				local := []int64{int64(c.Rank()), 1, int64(c.Rank() * c.Rank())}
				v, ok := Reduce(c, root, append([]int64(nil), local...), SumInt64)
				if c.Rank() != root {
					if ok {
						return fmt.Errorf("non-root rank %d got ok=true", c.Rank())
					}
					return nil
				}
				if !ok {
					return fmt.Errorf("root did not get ok=true")
				}
				var wantSum, wantSq int64
				for r := 0; r < n; r++ {
					wantSum += int64(r)
					wantSq += int64(r * r)
				}
				if v[0] != wantSum || v[1] != int64(n) || v[2] != wantSq {
					return fmt.Errorf("reduce result %v, want [%d %d %d]", v, wantSum, n, wantSq)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestAllreduce(t *testing.T) {
	for _, n := range worldSizes {
		err := Run(n, func(c *Comm) error {
			got := Allreduce(c, []float64{1, float64(c.Rank())}, SumFloat64)
			wantRankSum := float64(n*(n-1)) / 2
			if got[0] != float64(n) || got[1] != wantRankSum {
				return fmt.Errorf("rank %d allreduce = %v, want [%d %v]", c.Rank(), got, n, wantRankSum)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestGather(t *testing.T) {
	for _, n := range worldSizes {
		for root := 0; root < min(n, 3); root++ {
			err := Run(n, func(c *Comm) error {
				out := Gather(c, root, c.Rank()*10)
				if c.Rank() != root {
					if out != nil {
						return fmt.Errorf("non-root got %v", out)
					}
					return nil
				}
				for r := 0; r < n; r++ {
					if out[r] != r*10 {
						return fmt.Errorf("gather[%d] = %d, want %d", r, out[r], r*10)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestScatter(t *testing.T) {
	for _, n := range worldSizes {
		err := Run(n, func(c *Comm) error {
			var vals []string
			if c.Rank() == 0 {
				vals = make([]string, n)
				for i := range vals {
					vals[i] = fmt.Sprintf("chunk-%d", i)
				}
			}
			got := Scatter(c, 0, vals)
			if want := fmt.Sprintf("chunk-%d", c.Rank()); got != want {
				return fmt.Errorf("rank %d scatter = %q, want %q", c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestScatterLengthMismatchAborts(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		var vals []int
		if c.Rank() == 0 {
			vals = []int{1, 2} // wrong length
		}
		Scatter(c, 0, vals)
		return nil
	})
	if err == nil {
		t.Fatal("scatter length mismatch did not abort")
	}
}

func TestRankErrorPropagation(t *testing.T) {
	sentinel := errors.New("worker exploded")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		// Other ranks block on a message that never comes; the abort
		// must unblock them rather than deadlocking the test.
		if c.Rank() == 3 {
			_ = Recv[int](c, 0, 9)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run error = %v, want wrapped sentinel", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 {
		t.Fatalf("Run error = %#v, want RankError{Rank: 2}", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("deliberate")
		}
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("panic did not surface as error")
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("error = %v, want RankError{Rank: 1}", err)
	}
}

func TestSendToInvalidRankAborts(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 5, 1, 0)
		}
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("send to invalid rank did not abort")
	}
}

func TestSumOperatorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SumInt64 length mismatch did not panic")
		}
	}()
	SumInt64([]int64{1}, []int64{1, 2})
}

func TestCollectiveSequenceStress(t *testing.T) {
	// Interleave every collective repeatedly; FIFO links plus fixed tags
	// must keep them from cross-talking.
	err := Run(7, func(c *Comm) error {
		for i := 0; i < 25; i++ {
			v := Bcast(c, i%7, i)
			if v != i {
				return fmt.Errorf("iter %d: bcast = %d", i, v)
			}
			sum := Allreduce(c, []int64{1}, SumInt64)
			if sum[0] != 7 {
				return fmt.Errorf("iter %d: allreduce = %d", i, sum[0])
			}
			out := Gather(c, 0, c.Rank())
			if c.Rank() == 0 && len(out) != 7 {
				return fmt.Errorf("iter %d: gather len = %d", i, len(out))
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesAt512Ranks(t *testing.T) {
	// The paper's largest run uses 512 MPI processes; the substrate must
	// handle that rank count (oversubscribed goroutines) correctly.
	if testing.Short() {
		t.Skip("512-rank stress skipped in -short mode")
	}
	const n = 512
	err := Run(n, func(c *Comm) error {
		v := Bcast(c, 0, 1234)
		if v != 1234 {
			return fmt.Errorf("rank %d bcast got %d", c.Rank(), v)
		}
		sum := Allreduce(c, []int64{1}, SumInt64)
		if sum[0] != n {
			return fmt.Errorf("rank %d allreduce got %d", c.Rank(), sum[0])
		}
		c.Barrier()
		out := Gather(c, 0, int64(c.Rank()))
		if c.Rank() == 0 {
			var total int64
			for _, v := range out {
				total += v
			}
			if total != n*(n-1)/2 {
				return fmt.Errorf("gather sum %d", total)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBcast8(b *testing.B) {
	payload := make([]float64, 1024)
	_ = Run(8, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			Bcast(c, 0, payload)
		}
		return nil
	})
}

func BenchmarkAllreduce8(b *testing.B) {
	_ = Run(8, func(c *Comm) error {
		local := make([]int64, 1024)
		for i := 0; i < b.N; i++ {
			Allreduce(c, local, SumInt64)
		}
		return nil
	})
}
