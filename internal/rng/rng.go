// Package rng provides the deterministic random-number machinery used by the
// permutation generators.
//
// The central requirement, taken from Section 3.2 of the paper, is that the
// parallel implementation must reproduce the serial results exactly: every
// rank fast-forwards its generator to the first permutation of its chunk.
// SPRINT achieves this with multtest's "fixed seed sampling", where the
// random labelling for permutation b is a pure function of (seed, b).  We
// reproduce that design with counter-based streams: Stream(seed, b) derives
// an independent xoshiro256** generator from SplitMix64(seed XOR golden*b),
// so skipping to permutation b is O(1) and independent of how many
// permutations other ranks consume.
package rng

import (
	"math"
	"math/bits"
)

// golden is the 64-bit golden-ratio constant used by SplitMix64.
const golden = 0x9e3779b97f4a7c15

// SplitMix64 advances the state and returns the next value of Sebastiano
// Vigna's splitmix64 sequence.  It is used both as a stand-alone mixer for
// deriving stream seeds and as the seeding procedure for xoshiro.
func SplitMix64(state *uint64) uint64 {
	*state += golden
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns a well-mixed function of x without carrying state.  It is
// the finalizer of SplitMix64 applied once.
func Mix64(x uint64) uint64 {
	x += golden
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Source is a xoshiro256** pseudo-random generator.  The zero value is not a
// valid generator; construct one with New or Stream.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64, as recommended by
// the xoshiro authors.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed re-initialises the generator state from seed.
func (s *Source) Seed(seed uint64) {
	sm := seed
	for i := range s.s {
		s.s[i] = SplitMix64(&sm)
	}
	// xoshiro requires a non-zero state; SplitMix64 of any seed cannot
	// produce four zero words, but guard anyway for safety.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = golden
	}
}

// Stream returns a generator for permutation index b of the run identified
// by seed.  Streams with distinct b values are statistically independent,
// which is what makes the on-the-fly generator skippable: a rank that must
// start at permutation k simply calls Stream(seed, k) and never touches the
// earlier streams.
func Stream(seed uint64, b uint64) *Source {
	var s Source
	s.SeedStream(seed, b)
	return &s
}

// SeedStream re-initialises s in place as the Stream(seed, b) generator.
// It exists so batch consumers (perm.Generator.Labels) can hop across many
// streams without allocating a Source per permutation.
func (s *Source) SeedStream(seed, b uint64) {
	s.Seed(Mix64(seed) ^ Mix64(golden*b+1))
}

// Uint64 returns the next value of the xoshiro256** sequence.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit value, matching the contract of
// math/rand.Source64 so a Source can be dropped into stdlib helpers.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Uint64n returns a uniform value in [0, n).  It uses Lemire's multiply-shift
// rejection method, which is unbiased and needs no division in the common
// case.  n must be positive.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n).  n must be positive.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.  It is used only by the synthetic data generator, not
// by the permutation machinery, so speed matters less than simplicity.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(q)/q)
	}
}

// Shuffle performs a Fisher–Yates shuffle of the first n integers through
// the swap function, identical in structure to math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm fills dst (length n) with a uniform random permutation of 0..n-1.
func (s *Source) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	s.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}

// Sample fills dst with a uniform random k-subset of 0..n-1 in increasing
// order, where k = len(dst), using selection sampling (Knuth 3.4.2 S).  The
// two-class permutation generator uses it to pick which columns receive
// label 1.
func (s *Source) Sample(dst []int, n int) {
	k := len(dst)
	if k > n {
		panic("rng: Sample with k > n")
	}
	chosen := 0
	for i := 0; i < n && chosen < k; i++ {
		if s.Uint64n(uint64(n-i)) < uint64(k-chosen) {
			dst[chosen] = i
			chosen++
		}
	}
}
