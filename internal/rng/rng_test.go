package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the splitmix64 reference implementation
	// seeded with 0: the first three outputs.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Errorf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64MatchesSplitMix(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, math.MaxUint64} {
		state := seed
		want := SplitMix64(&state)
		if got := Mix64(seed); got != want {
			t.Errorf("Mix64(%d) = %#x, want first SplitMix64 output %#x", seed, got, want)
		}
	}
}

func TestSourceDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestStreamIndependence(t *testing.T) {
	// Streams for different permutation indices must differ, and the same
	// (seed, b) pair must always produce the same stream.  This property
	// is what makes the parallel skip rule exact.
	s1 := Stream(7, 10)
	s2 := Stream(7, 10)
	s3 := Stream(7, 11)
	diff := false
	for i := 0; i < 100; i++ {
		v1, v2, v3 := s1.Uint64(), s2.Uint64(), s3.Uint64()
		if v1 != v2 {
			t.Fatalf("Stream(7,10) not reproducible at step %d", i)
		}
		if v1 != v3 {
			diff = true
		}
	}
	if !diff {
		t.Error("Stream(7,10) and Stream(7,11) produced identical sequences")
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(99)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(-1) did not panic")
		}
	}()
	New(1).Intn(-1)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared goodness of fit over 10 buckets; threshold is the 99.9%
	// quantile of chi2 with 9 degrees of freedom (27.88).
	s := New(2024)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Errorf("Uint64n uniformity chi2 = %.2f > 27.88", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(31337)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(77)
	for _, n := range []int{1, 2, 5, 31, 100} {
		dst := make([]int, n)
		s.Perm(dst)
		seen := make([]bool, n)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) produced invalid permutation %v", n, dst)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUniformity(t *testing.T) {
	// All 6 permutations of 3 elements should be roughly equally likely.
	s := New(11)
	counts := map[[3]int]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		p := [3]int{0, 1, 2}
		s.Shuffle(3, func(a, b int) { p[a], p[b] = p[b], p[a] })
		counts[p]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	for p, c := range counts {
		if c < draws/6-draws/30 || c > draws/6+draws/30 {
			t.Errorf("permutation %v count %d deviates from expected %d", p, c, draws/6)
		}
	}
}

func TestSampleProperties(t *testing.T) {
	s := New(123)
	for _, tc := range []struct{ k, n int }{{0, 0}, {1, 1}, {3, 10}, {10, 10}, {38, 76}} {
		dst := make([]int, tc.k)
		s.Sample(dst, tc.n)
		for i, v := range dst {
			if v < 0 || v >= tc.n {
				t.Fatalf("Sample(k=%d,n=%d)[%d] = %d out of range", tc.k, tc.n, i, v)
			}
			if i > 0 && dst[i-1] >= v {
				t.Fatalf("Sample(k=%d,n=%d) not strictly increasing: %v", tc.k, tc.n, dst)
			}
		}
	}
}

func TestSamplePanicsWhenKExceedsN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sample with k > n did not panic")
		}
	}()
	New(1).Sample(make([]int, 5), 3)
}

func TestSampleUniformity(t *testing.T) {
	// Each element of 0..5 should appear in a 3-subset with probability 1/2.
	s := New(808)
	const draws = 60000
	counts := make([]int, 6)
	dst := make([]int, 3)
	for i := 0; i < draws; i++ {
		s.Sample(dst, 6)
		for _, v := range dst {
			counts[v]++
		}
	}
	for v, c := range counts {
		if c < draws/2-draws/25 || c > draws/2+draws/25 {
			t.Errorf("element %d chosen %d times, want ~%d", v, c, draws/2)
		}
	}
}

func TestQuickStreamReproducible(t *testing.T) {
	f := func(seed, b uint64) bool {
		a, c := Stream(seed, b), Stream(seed, b)
		for i := 0; i < 16; i++ {
			if a.Uint64() != c.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		s := New(seed)
		for i := 0; i < 8; i++ {
			if s.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned a negative value")
		}
	}
}

func TestZeroStateGuard(t *testing.T) {
	var s Source
	s.s = [4]uint64{0, 0, 0, 0}
	s.Seed(0)
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		t.Error("Seed left an all-zero state")
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkStreamCreation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Stream(42, uint64(i))
	}
}

func BenchmarkShuffle76(b *testing.B) {
	// 76 columns is the sample count of the paper's benchmark dataset.
	s := New(9)
	p := make([]int, 76)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Perm(p)
	}
}
