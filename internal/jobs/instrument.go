package jobs

import (
	"sprint/internal/metrics"
)

// mgrMetrics holds the Manager's pre-registered metric handles: every
// hot-path update is an atomic on a handle resolved once at startup, so
// the steady-state job path adds zero allocations and zero map lookups.
type mgrMetrics struct {
	submitted  [numClasses]*metrics.Counter
	completed  [numClasses]*metrics.Counter
	failed     *metrics.Counter
	cancelled  *metrics.Counter
	cacheHits  *metrics.Counter
	resumed    *metrics.Counter
	shed       map[string]*metrics.Counter // by reason
	throttled  *metrics.Counter
	prepBuilds *metrics.Counter
	prepHits   *metrics.Counter
	dsAdded    *metrics.Counter
	dsHits     *metrics.Counter
	dsReloads  *metrics.Counter
	dsEvicted  *metrics.Counter

	// Sequential-engine plane.
	seqRowsStopped  *metrics.Counter
	seqPermsSaved   *metrics.Counter
	seqJobEarlyStop *metrics.Counter

	// Durability / integrity plane.
	ckptCorrupt      *metrics.Counter
	dsCorrupt        *metrics.Counter
	journalCorrupt   *metrics.Counter
	journalRecords   *metrics.Counter
	journalReplayed  *metrics.Counter
	journalAppendErr *metrics.Counter

	queueWait      [numClasses]*metrics.Histogram
	jobDuration    [numClasses]*metrics.Histogram
	stageIngest    *metrics.Histogram
	stagePrep      *metrics.Histogram
	kernelWin      *metrics.Histogram
	ckptWrite      *metrics.Histogram
	journalAppendD *metrics.Histogram
}

// newMgrMetrics registers the jobs-layer families on reg and resolves
// every handle.
func newMgrMetrics(reg *metrics.Registry) *mgrMetrics {
	reg.Help("jobs_submitted_total", "Jobs admitted to the queue or answered from cache, by class.")
	reg.Help("jobs_completed_total", "Jobs finished successfully, by class.")
	reg.Help("jobs_failed_total", "Jobs finished with a non-cancellation error.")
	reg.Help("jobs_cancelled_total", "Jobs cancelled by request or shutdown.")
	reg.Help("jobs_cache_hits_total", "Submissions answered from the content-addressed result cache.")
	reg.Help("jobs_resumed_total", "Jobs resumed from a retained checkpoint.")
	reg.Help("jobs_shed_total", "Submissions refused by the admission plane, by reason.")
	reg.Help("jobs_throttled_total", "Submissions refused by a tenant token bucket.")
	reg.Help("prep_builds_total", "Full dataset preparations built (scrub + rank + moment precompute).")
	reg.Help("prep_hits_total", "Dataset jobs that reused a cached preparation.")
	reg.Help("datasets_added_total", "Datasets registered (deduplicated re-uploads excluded).")
	reg.Help("dataset_hits_total", "Dataset references answered from the in-memory registry.")
	reg.Help("dataset_reloads_total", "Dataset references reloaded from the disk mirror.")
	reg.Help("dataset_evictions_total", "Datasets evicted from the in-memory registry.")
	reg.Help("queue_wait_seconds", "Time jobs spent queued before a worker popped them, by class.")
	reg.Help("job_duration_seconds", "Worker wall time per job from pop to terminal state, by class.")
	reg.Help("stage_ingest_seconds", "Submission payload resolve time (matrix copy/transpose).")
	reg.Help("stage_prep_seconds", "Dataset preparation build time (cache misses only).")
	reg.Help("kernel_window_seconds", "Wall time of one kernel permutation window.")
	reg.Help("checkpoint_write_seconds", "Checkpoint store+mirror write latency.")
	reg.Help("integrity_checkpoint_corrupt_total", "Checkpoint files that failed their CRC frame and were quarantined.")
	reg.Help("integrity_dataset_corrupt_total", "Dataset mirrors that failed their content digest and were quarantined.")
	reg.Help("integrity_journal_corrupt_total", "Journal frames dropped for a bad length, CRC or payload.")
	reg.Help("journal_records_total", "Records durably appended to the job journal.")
	reg.Help("journal_replayed_jobs_total", "Jobs re-admitted from the journal after a restart.")
	reg.Help("journal_append_errors_total", "Journal appends or durability mirrors that failed (service continued).")
	reg.Help("journal_append_seconds", "Latency of one fsync'd journal append.")
	reg.Help("seq_rows_stopped_total", "Rows frozen before the planned permutation count by the sequential stopping rule.")
	reg.Help("seq_perms_saved_total", "Per-row permutation evaluations avoided by sequential early stopping.")
	reg.Help("seq_job_early_stop_total", "Sequential jobs whose whole run stopped before the planned permutation count.")

	m := &mgrMetrics{
		failed:           reg.Counter("jobs_failed_total"),
		cancelled:        reg.Counter("jobs_cancelled_total"),
		cacheHits:        reg.Counter("jobs_cache_hits_total"),
		resumed:          reg.Counter("jobs_resumed_total"),
		throttled:        reg.Counter("jobs_throttled_total"),
		prepBuilds:       reg.Counter("prep_builds_total"),
		prepHits:         reg.Counter("prep_hits_total"),
		dsAdded:          reg.Counter("datasets_added_total"),
		dsHits:           reg.Counter("dataset_hits_total"),
		dsReloads:        reg.Counter("dataset_reloads_total"),
		dsEvicted:        reg.Counter("dataset_evictions_total"),
		seqRowsStopped:   reg.Counter("seq_rows_stopped_total"),
		seqPermsSaved:    reg.Counter("seq_perms_saved_total"),
		seqJobEarlyStop:  reg.Counter("seq_job_early_stop_total"),
		ckptCorrupt:      reg.Counter("integrity_checkpoint_corrupt_total"),
		dsCorrupt:        reg.Counter("integrity_dataset_corrupt_total"),
		journalCorrupt:   reg.Counter("integrity_journal_corrupt_total"),
		journalRecords:   reg.Counter("journal_records_total"),
		journalReplayed:  reg.Counter("journal_replayed_jobs_total"),
		journalAppendErr: reg.Counter("journal_append_errors_total"),
		shed: map[string]*metrics.Counter{
			"queue_full":   reg.Counter("jobs_shed_total", "reason", "queue_full"),
			"queue_wait":   reg.Counter("jobs_shed_total", "reason", "queue_wait"),
			"rate_limited": reg.Counter("jobs_shed_total", "reason", "rate_limited"),
		},
		stageIngest:    reg.Histogram("stage_ingest_seconds", nil),
		stagePrep:      reg.Histogram("stage_prep_seconds", nil),
		kernelWin:      reg.Histogram("kernel_window_seconds", nil),
		ckptWrite:      reg.Histogram("checkpoint_write_seconds", nil),
		journalAppendD: reg.Histogram("journal_append_seconds", nil),
	}
	for c := JobClass(0); c < numClasses; c++ {
		m.submitted[c] = reg.Counter("jobs_submitted_total", "class", c.String())
		m.completed[c] = reg.Counter("jobs_completed_total", "class", c.String())
		m.queueWait[c] = reg.Histogram("queue_wait_seconds", nil, "class", c.String())
		m.jobDuration[c] = reg.Histogram("job_duration_seconds", nil, "class", c.String())
	}
	return m
}

// registerGauges exposes the manager's live state as callback gauges.
// They run at scrape/snapshot time and take the manager (or queue)
// locks briefly; the registry never holds its own lock across the
// callback, so there is no lock-order hazard.
func (m *Manager) registerGauges(reg *metrics.Registry) {
	reg.Help("queue_depth", "Jobs waiting for a worker, by class.")
	reg.GaugeFunc("queue_depth", func() float64 {
		i, _ := m.queue.lens()
		return float64(i)
	}, "class", "interactive")
	reg.GaugeFunc("queue_depth", func() float64 {
		_, b := m.queue.lens()
		return float64(b)
	}, "class", "bulk")
	reg.Help("workers", "Configured worker-pool size.")
	reg.GaugeFunc("workers", func() float64 { return float64(m.cfg.Workers) })
	reg.Help("workers_busy", "Workers currently running a job.")
	reg.GaugeFunc("workers_busy", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		running := 0
		for _, j := range m.jobs {
			if j.state == Running {
				running++
			}
		}
		return float64(running)
	})
	reg.Help("datasets_resident", "Datasets in the in-memory registry.")
	reg.GaugeFunc("datasets_resident", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.datasets.entries))
	})
	reg.Help("dataset_resident_bytes", "Payload bytes of in-memory registered datasets.")
	reg.GaugeFunc("dataset_resident_bytes", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		var b int64
		for _, e := range m.datasets.entries {
			b += int64(len(e.m.Data)) * 8
		}
		return float64(b)
	})
	reg.Help("dataset_pins", "Dataset references currently held by queued or running jobs.")
	reg.GaugeFunc("dataset_pins", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		var refs int
		for _, e := range m.datasets.entries {
			refs += e.refs
		}
		return float64(refs)
	})
	reg.Help("tenants_active", "Tenants with admission state resident.")
	reg.GaugeFunc("tenants_active", func() float64 { return float64(m.tenants.active()) })
	reg.Help("queue_drain_rate_per_sec", "Observed job completion rate over the last 30s.")
	reg.GaugeFunc("queue_drain_rate_per_sec", func() float64 {
		return m.drain.ratePerSec(m.cfg.Clock())
	})
}
