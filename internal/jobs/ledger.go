package jobs

// This file is the durable merge ledger of a distributed run: the
// journal-backed record of the coordinator's shard plan, every accepted
// shard delivery (counts + CRC), and re-dispatch decisions.  It is what
// lets a coordinator that was SIGKILLed mid-job restart, replay the
// ledger, merge the already-delivered windows from the journal, and
// re-dispatch only the uncovered remainder — zero recomputation of
// delivered shards, bitwise-identical final results.
//
// Ledger records ride the PR 8 job journal (same CRC64 framing, fsync
// discipline, torn-tail truncation and compaction), as three new record
// kinds keyed by job id:
//
//	plan        the shard plan: fingerprint, planned total, resume
//	            start, span boundaries, and (sequential resume) the
//	            frozen per-row effective counts.  A plan record RESETS
//	            any deliveries journaled under an earlier plan — it is
//	            written exactly when the coordinator decides the replayed
//	            state is unusable and partitions afresh.
//	shard       one accepted delivery: the window, its exceedance count
//	            vectors, and the worker's CRC64 stamp, verified again on
//	            replay before the window is trusted.
//	redispatch  an audit record of a window being re-queued (error,
//	            partial hand-off, corrupt response); replay ignores it,
//	            compaction drops it.
//
// The coordinator appends deliveries OUTSIDE its dispatch lock (fsync
// latency must not serialize the merge).  The crash window this opens
// is bounded and safe: a delivery merged in memory but not yet journaled
// is simply re-dispatched after restart, and worker-side retention
// re-serves it without recomputation.

// LedgerDelivery is one journaled shard delivery: the exact counts the
// coordinator merged for the window [Lo, Next) of the dispatch window
// [Lo, Hi).  Raw/Adj are full-length row vectors; CRC64 is the worker's
// response stamp (0 for coordinator-local shards) and is re-verified on
// replay before the delivery is adopted.
type LedgerDelivery struct {
	Lo     int64   `json:"lo"`
	Next   int64   `json:"next"`
	Hi     int64   `json:"hi"`
	B      int64   `json:"b"`
	Raw    []int64 `json:"raw"`
	Adj    []int64 `json:"adj"`
	CRC64  uint64  `json:"crc,omitempty"`
	Worker string  `json:"worker,omitempty"`
}

// LedgerState is the replayable merge state of one distributed job: the
// plan identity and span layout plus every journaled delivery, in append
// order.  Deliveries never marshal inside a plan record — they are their
// own frames — hence the "-" tag.
type LedgerState struct {
	// Fingerprint is the dispatch plan fingerprint (the exact-mode
	// fingerprint for sequential jobs — shards always run exact).
	Fingerprint uint64 `json:"fp"`
	TotalB      int64  `json:"total_b"`
	Complete    bool   `json:"complete,omitempty"`
	Rows        int    `json:"rows"`
	// Start is the resume checkpoint prefix the plan began after (0 for
	// a fresh run); spans partition [Start, TotalB).
	Start int64 `json:"start,omitempty"`
	// Seq marks a sequential-mode job; BEff, when non-nil, carries the
	// resumed checkpoint's frozen per-row effective counts so a restart
	// can re-validate the frozen mask it must merge under.
	Seq  bool    `json:"seq,omitempty"`
	BEff []int64 `json:"b_eff,omitempty"`
	// Spans are the original dispatch windows [lo, hi), contiguous over
	// [Start, TotalB).
	Spans      [][2]int64       `json:"spans"`
	Deliveries []LedgerDelivery `json:"-"`
}

// ledgerRedispatch is the audit payload of a "redispatch" record.
type ledgerRedispatch struct {
	Lo     int64  `json:"lo"`
	Hi     int64  `json:"hi"`
	Worker string `json:"worker,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// JobLedger is the coordinator's handle on one job's durable ledger: the
// state replayed from the journal (if any) plus append methods bound to
// the job's id and key.  A nil *JobLedger (journaling disabled) is valid
// and turns every method into a no-op, so the coordinator never
// branches on whether durability is configured.
type JobLedger struct {
	id       string
	key      string
	replayed *LedgerState
	appendFn func(rec *journalRecord)
}

// Replayed returns the ledger state recovered from the journal for this
// job, or nil when there is none (fresh job, or journaling disabled).
func (l *JobLedger) Replayed() *LedgerState {
	if l == nil {
		return nil
	}
	return l.replayed
}

// RecordPlan journals a fresh shard plan, superseding any previously
// journaled plan and deliveries for the job.
func (l *JobLedger) RecordPlan(st *LedgerState) {
	if l == nil || st == nil {
		return
	}
	l.appendFn(&journalRecord{T: "plan", ID: l.id, Key: l.key, Plan: st})
}

// RecordDelivery journals one accepted shard delivery.  The delivery's
// slices are retained by the journal's live view until compaction; the
// caller must not mutate them afterwards.
func (l *JobLedger) RecordDelivery(d *LedgerDelivery) {
	if l == nil || d == nil {
		return
	}
	l.appendFn(&journalRecord{T: "shard", ID: l.id, Key: l.key, Shard: d})
}

// RecordRedispatch journals a re-dispatch decision for audit.
func (l *JobLedger) RecordRedispatch(lo, hi int64, worker, reason string) {
	if l == nil {
		return
	}
	l.appendFn(&journalRecord{T: "redispatch", ID: l.id, Key: l.key,
		Redispatch: &ledgerRedispatch{Lo: lo, Hi: hi, Worker: worker, Reason: reason}})
}

// ledgerFor builds the job's ledger handle, claiming any replayed state
// exactly once (a second call for the same id sees no replayed state,
// so a re-run after an in-process retry cannot double-adopt).  Returns
// nil when the manager has no journal.
func (m *Manager) ledgerFor(j *job) *JobLedger {
	if m.journal == nil {
		return nil
	}
	m.mu.Lock()
	rep := m.ledgers[j.id]
	delete(m.ledgers, j.id)
	m.mu.Unlock()
	return &JobLedger{id: j.id, key: j.key, replayed: rep, appendFn: m.journalAppend}
}
