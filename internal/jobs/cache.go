package jobs

import (
	"container/list"

	"sprint/internal/core"
)

// resultCache is a small LRU of finished results, keyed by content address.
// Because results are bit-identical for identical inputs, a hit is exactly
// the answer the submission would have computed; the cached Result carries
// the NProcs and Profile of the run that produced it.
type resultCache struct {
	max     int
	order   *list.List // front = most recent; values are cache entries
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *core.Result
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached result for key and marks it most recently used.
func (c *resultCache) get(key string) (*core.Result, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores res under key, evicting the least recently used entry beyond
// capacity.
func (c *resultCache) put(key string, res *core.Result) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int { return c.order.Len() }
