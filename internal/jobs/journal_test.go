package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sprint/internal/core"
)

func journalPath(dir string) string { return filepath.Join(dir, journalFileName) }

// writeTestJournal appends n submit records (j000001..j00000n) through
// the real append path and returns the directory.
func writeTestJournal(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	jl, _, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.close()
	for i := 1; i <= n; i++ {
		opt := core.DefaultOptions()
		rec := &journalRecord{
			T: "submit", ID: fmt.Sprintf("j%06d", i), Key: fmt.Sprintf("k%d", i),
			Dataset: "sha256:abc", Labels: []int{0, 0, 1, 1}, Opt: &opt,
		}
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestJournalTornTailEveryByte is the crash-mid-append property test: a
// journal cut at ANY byte offset must reopen cleanly, replay exactly the
// records whose frames fit in the prefix, and accept appends afterwards.
func TestJournalTornTailEveryByte(t *testing.T) {
	const n = 4
	dir := writeTestJournal(t, n)
	full, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries, to know how many records each prefix holds.
	var bounds []int
	off := 0
	for off < len(full) {
		sz := int(uint32(full[off]) | uint32(full[off+1])<<8 | uint32(full[off+2])<<16 | uint32(full[off+3])<<24)
		off += 12 + sz
		bounds = append(bounds, off)
	}
	if len(bounds) != n {
		t.Fatalf("found %d frames, want %d", len(bounds), n)
	}
	wantRecords := func(cut int) int {
		k := 0
		for _, b := range bounds {
			if b <= cut {
				k++
			}
		}
		return k
	}

	for cut := 0; cut <= len(full); cut++ {
		dir2 := t.TempDir()
		if err := os.WriteFile(journalPath(dir2), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jl, rep, err := openJournal(dir2, 0)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := wantRecords(cut)
		if len(rep.Pending) != want {
			t.Fatalf("cut %d: %d pending, want %d", cut, len(rep.Pending), want)
		}
		// A mid-frame cut counts as corruption and must have been
		// truncated back to the last valid frame.
		if cut > 0 && want < n && rep.CorruptFrames == 0 && cut != bounds[want-1] {
			t.Fatalf("cut %d: torn tail not flagged", cut)
		}
		// The journal stays appendable after a torn tail.
		opt := core.DefaultOptions()
		if err := jl.append(&journalRecord{T: "submit", ID: "j999999", Key: "kx", Opt: &opt}); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		jl.close()
		_, rep2, err := openJournal(dir2, 0)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(rep2.Pending) != want+1 {
			t.Fatalf("cut %d: %d pending after append, want %d", cut, len(rep2.Pending), want+1)
		}
	}
}

// TestJournalCRCFlip flips each byte of the middle record's payload in
// turn; replay must stop at the damaged frame every time (never crash,
// never deliver the mangled record).
func TestJournalCRCFlip(t *testing.T) {
	dir := writeTestJournal(t, 3)
	full, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Locate frame 2.
	sz0 := int(uint32(full[0]) | uint32(full[1])<<8 | uint32(full[2])<<16 | uint32(full[3])<<24)
	f1 := 12 + sz0
	sz1 := int(uint32(full[f1]) | uint32(full[f1+1])<<8 | uint32(full[f1+2])<<16 | uint32(full[f1+3])<<24)
	for off := f1; off < f1+12+sz1; off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x01
		dir2 := t.TempDir()
		if err := os.WriteFile(journalPath(dir2), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		jl, rep, err := openJournal(dir2, 0)
		if err != nil {
			t.Fatalf("flip@%d: %v", off, err)
		}
		jl.close()
		if rep.CorruptFrames == 0 {
			t.Fatalf("flip@%d: corruption not counted", off)
		}
		// Only the record before the damage survives; the flipped frame
		// and everything after it is dropped whole.
		if len(rep.Pending) != 1 || rep.Pending[0].ID != "j000001" {
			t.Fatalf("flip@%d: pending %v", off, rep.Pending)
		}
	}
}

// TestJournalLastRecordWins pins the idempotent-by-id semantics:
// duplicate submits collapse to one entry, and a terminal record removes
// the job from replay no matter how many earlier records name it.
func TestJournalLastRecordWins(t *testing.T) {
	dir := t.TempDir()
	jl, _, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	sub := func(id string) *journalRecord {
		return &journalRecord{T: "submit", ID: id, Key: "k-" + id, Opt: &opt}
	}
	for _, rec := range []*journalRecord{
		sub("j000001"), sub("j000001"), // duplicate submit
		{T: "start", ID: "j000001", Key: "k-j000001"},
		sub("j000002"),
		{T: "ckpt", ID: "j000002", Key: "k-j000002", Next: 500},
		{T: "ckpt", ID: "j000002", Key: "k-j000002", Next: 300}, // stale hint, must not regress
		sub("j000003"),
		{T: "done", ID: "j000003"},
		sub("j000004"),
		{T: "cancel", ID: "j000004"},
	} {
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jl.close()

	_, rep, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pending) != 2 {
		t.Fatalf("pending %d, want 2 (got %+v)", len(rep.Pending), rep.Pending)
	}
	if rep.Pending[0].ID != "j000001" || rep.Pending[1].ID != "j000002" {
		t.Fatalf("pending order %v", rep.Pending)
	}
	if rep.CkptNext["j000002"] != 500 {
		t.Fatalf("ckpt hint %d, want 500", rep.CkptNext["j000002"])
	}
	if rep.MaxSeq != 4 {
		t.Fatalf("MaxSeq %d, want 4", rep.MaxSeq)
	}
}

// TestJournalCompaction verifies the size bound: terminal churn is
// rewritten away, pending jobs (and their checkpoint hints) survive, and
// the reopened append fd lands on the new inode.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	jl, _, err := openJournal(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	for i := 1; i <= 20; i++ {
		id := fmt.Sprintf("j%06d", i)
		if err := jl.append(&journalRecord{T: "submit", ID: id, Key: "k" + id, Opt: &opt}); err != nil {
			t.Fatal(err)
		}
		if i < 20 { // the last job stays live
			if err := jl.append(&journalRecord{T: "done", ID: id}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := jl.append(&journalRecord{T: "ckpt", ID: "j000020", Key: "kj000020", Next: 700}); err != nil {
		t.Fatal(err)
	}
	if jl.frames >= 8 {
		t.Fatalf("journal not compacted: %d frames", jl.frames)
	}
	// Appends after compaction must reach the NEW file, not the orphaned
	// pre-rename inode.
	if err := jl.append(&journalRecord{T: "start", ID: "j000020", Key: "kj000020"}); err != nil {
		t.Fatal(err)
	}
	jl.close()

	_, rep, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pending) != 1 || rep.Pending[0].ID != "j000020" {
		t.Fatalf("pending after compaction: %+v", rep.Pending)
	}
	if rep.CkptNext["j000020"] != 700 {
		t.Fatalf("ckpt hint lost in compaction: %v", rep.CkptNext)
	}
}
