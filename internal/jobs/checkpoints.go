package jobs

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"sprint/internal/core"
	"sprint/internal/durable"
)

// ckptStore keeps the latest checkpoint per content key, in memory and —
// when dir is non-empty — mirrored to disk, so that resume survives not
// just a cancelled job but a crashed or restarted daemon.  Keys are hex
// digests, hence directly filesystem-safe.
//
// The store is bounded: beyond max entries the least recently updated
// checkpoint is discarded, memory and disk file both — abandoned analyses
// (cancelled and never resubmitted) must not accumulate count vectors
// forever.  Running jobs refresh their key every window, so eviction only
// ever reaches abandoned keys under normal operation.
//
// Locking: the map/list state (put, load, drop, len) is guarded by the
// owning Manager's mutex.  Disk writes are deliberately split out
// (writeDisk, removeDisk) so the manager can perform them WITHOUT holding
// its lock — a checkpoint encode can be megabytes, and API handlers must
// not queue behind it.
type ckptStore struct {
	dir     string
	max     int
	order   *list.List // front = most recently updated
	entries map[string]*list.Element
	// noteCorrupt, when non-nil, observes every quarantined checkpoint
	// file (integrity metric).  Called with the manager lock held.
	noteCorrupt func(key string)
}

type ckptEntry struct {
	key string
	ck  *core.Checkpoint
}

func newCkptStore(dir string, max int) (*ckptStore, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: checkpoint dir: %w", err)
		}
	}
	return &ckptStore{dir: dir, max: max, order: list.New(), entries: make(map[string]*list.Element)}, nil
}

func (s *ckptStore) path(key string) string {
	return filepath.Join(s.dir, key+".ckpt")
}

// put stores ck as the latest checkpoint for key and returns the keys
// evicted by the bound, whose disk files the caller should remove (outside
// its lock) via removeDisk.
func (s *ckptStore) put(key string, ck *core.Checkpoint) (evicted []string) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*ckptEntry).ck = ck
		s.order.MoveToFront(el)
	} else {
		s.entries[key] = s.order.PushFront(&ckptEntry{key: key, ck: ck})
	}
	for s.max > 0 && s.order.Len() > s.max {
		last := s.order.Back()
		s.order.Remove(last)
		k := last.Value.(*ckptEntry).key
		delete(s.entries, k)
		evicted = append(evicted, k)
	}
	return evicted
}

// writeDisk mirrors ck to disk (no-op without a dir).  The bytes carry
// a CRC64 integrity frame and land via the durable temp-file + fsync +
// atomic-rename path, so a crash at any instruction leaves either the
// old checkpoint or the new one, never a torn body.  The previous
// generation is rotated to "<key>.ckpt.prev" first: if the NEW file is
// later found corrupt (bit rot, injected fault), load falls back to the
// older prefix instead of restarting from zero.  Call without holding
// the manager lock.
func (s *ckptStore) writeDisk(key string, ck *core.Checkpoint) error {
	if s.dir == "" {
		return nil
	}
	data, err := ck.EncodeFramed()
	if err != nil {
		return err
	}
	p := s.path(key)
	if _, err := os.Stat(p); err == nil {
		// Rotation is not atomic with the write, but every intermediate
		// state is safe: worst case the .prev generation is one window
		// staler than it could have been.
		_ = os.Rename(p, p+".prev")
	}
	return durable.WriteFileAtomic(p, data, "ckpt.write")
}

// removeDisk deletes key's checkpoint files (all generations), if any.
func (s *ckptStore) removeDisk(key string) {
	if s.dir != "" {
		p := s.path(key)
		os.Remove(p)
		os.Remove(p + ".prev")
		os.Remove(p + ".corrupt")
	}
}

// load returns the latest checkpoint for key, falling back to disk (e.g.
// after a daemon restart).  The integrity frame is verified on every
// disk read: a corrupt current generation is quarantined (renamed to
// "<key>.ckpt.corrupt", surfaced via noteCorrupt) and the ".prev"
// generation — the previous window's prefix — is tried next.  When
// every generation is missing or corrupt the checkpoint is simply
// absent: the job restarts from B=0, it never fails and never resumes
// from damaged counts.
func (s *ckptStore) load(key string) *core.Checkpoint {
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*ckptEntry).ck
	}
	if s.dir == "" {
		return nil
	}
	ck := s.loadGeneration(key, s.path(key))
	if ck == nil {
		ck = s.loadGeneration(key, s.path(key)+".prev")
	}
	if ck == nil {
		return nil
	}
	for _, k := range s.put(key, ck) {
		s.removeDisk(k)
	}
	return ck
}

// loadGeneration reads and verifies one checkpoint file, quarantining
// it on corruption.
func (s *ckptStore) loadGeneration(key, path string) *core.Checkpoint {
	data, err := durable.ReadFile(path, "ckpt.read")
	if err != nil {
		return nil
	}
	ck, err := core.DecodeCheckpointBytes(data)
	if err != nil {
		if errors.Is(err, core.ErrCheckpointCorrupt) {
			_ = durable.Quarantine(path)
			if s.noteCorrupt != nil {
				s.noteCorrupt(key)
			}
		}
		return nil
	}
	return ck
}

// drop removes key's checkpoint, memory and disk (called when its result
// lands in the cache — the checkpoint has nothing left to resume).
func (s *ckptStore) drop(key string) {
	if el, ok := s.entries[key]; ok {
		s.order.Remove(el)
		delete(s.entries, key)
	}
	s.removeDisk(key)
}

// len reports the number of tracked checkpoints.
func (s *ckptStore) len() int { return s.order.Len() }
