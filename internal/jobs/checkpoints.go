package jobs

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"

	"sprint/internal/core"
)

// ckptStore keeps the latest checkpoint per content key, in memory and —
// when dir is non-empty — mirrored to disk, so that resume survives not
// just a cancelled job but a crashed or restarted daemon.  Keys are hex
// digests, hence directly filesystem-safe.
//
// The store is bounded: beyond max entries the least recently updated
// checkpoint is discarded, memory and disk file both — abandoned analyses
// (cancelled and never resubmitted) must not accumulate count vectors
// forever.  Running jobs refresh their key every window, so eviction only
// ever reaches abandoned keys under normal operation.
//
// Locking: the map/list state (put, load, drop, len) is guarded by the
// owning Manager's mutex.  Disk writes are deliberately split out
// (writeDisk, removeDisk) so the manager can perform them WITHOUT holding
// its lock — a checkpoint encode can be megabytes, and API handlers must
// not queue behind it.
type ckptStore struct {
	dir     string
	max     int
	order   *list.List // front = most recently updated
	entries map[string]*list.Element
}

type ckptEntry struct {
	key string
	ck  *core.Checkpoint
}

func newCkptStore(dir string, max int) (*ckptStore, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: checkpoint dir: %w", err)
		}
	}
	return &ckptStore{dir: dir, max: max, order: list.New(), entries: make(map[string]*list.Element)}, nil
}

func (s *ckptStore) path(key string) string {
	return filepath.Join(s.dir, key+".ckpt")
}

// put stores ck as the latest checkpoint for key and returns the keys
// evicted by the bound, whose disk files the caller should remove (outside
// its lock) via removeDisk.
func (s *ckptStore) put(key string, ck *core.Checkpoint) (evicted []string) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*ckptEntry).ck = ck
		s.order.MoveToFront(el)
	} else {
		s.entries[key] = s.order.PushFront(&ckptEntry{key: key, ck: ck})
	}
	for s.max > 0 && s.order.Len() > s.max {
		last := s.order.Back()
		s.order.Remove(last)
		k := last.Value.(*ckptEntry).key
		delete(s.entries, k)
		evicted = append(evicted, k)
	}
	return evicted
}

// writeDisk mirrors ck to disk (no-op without a dir).  The write goes
// through a temp file + rename so a crash never leaves a torn checkpoint.
// Call without holding the manager lock.
func (s *ckptStore) writeDisk(key string, ck *core.Checkpoint) error {
	if s.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if err := ck.Encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.path(key))
}

// removeDisk deletes key's checkpoint file, if any.
func (s *ckptStore) removeDisk(key string) {
	if s.dir != "" {
		os.Remove(s.path(key))
	}
}

// load returns the latest checkpoint for key, falling back to disk (e.g.
// after a daemon restart).  A missing or unreadable checkpoint is simply
// absent: the job restarts from scratch, never fails.
func (s *ckptStore) load(key string) *core.Checkpoint {
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*ckptEntry).ck
	}
	if s.dir == "" {
		return nil
	}
	f, err := os.Open(s.path(key))
	if err != nil {
		return nil
	}
	defer f.Close()
	ck, err := core.DecodeCheckpoint(f)
	if err != nil {
		return nil
	}
	for _, k := range s.put(key, ck) {
		s.removeDisk(k)
	}
	return ck
}

// drop removes key's checkpoint, memory and disk (called when its result
// lands in the cache — the checkpoint has nothing left to resume).
func (s *ckptStore) drop(key string) {
	if el, ok := s.entries[key]; ok {
		s.order.Remove(el)
		delete(s.entries, key)
	}
	s.removeDisk(key)
}

// len reports the number of tracked checkpoints.
func (s *ckptStore) len() int { return s.order.Len() }
