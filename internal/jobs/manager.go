package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sprint/internal/core"
	"sprint/internal/matrix"
)

// Config sizes a Manager.  Zero values select the documented defaults.
type Config struct {
	// Workers is the worker-pool size: how many jobs run concurrently.
	// Defaults to half the CPUs (each job parallelises internally over
	// its own NProcs ranks), minimum 1.
	Workers int
	// QueueDepth bounds the FIFO of jobs waiting for a worker; a full
	// queue rejects submissions with ErrQueueFull.  Defaults to 64.
	QueueDepth int
	// DefaultNProcs is the rank count for jobs that do not choose one.
	// Defaults to runtime.GOMAXPROCS(0): every available CPU.
	DefaultNProcs int
	// DefaultEvery is the checkpoint/progress window for jobs that do not
	// choose one, in permutations.  Defaults to 1000.
	DefaultEvery int64
	// CacheSize bounds the result cache (entries).  Defaults to 128.
	// Negative disables caching.
	CacheSize int
	// CheckpointDir, when non-empty, mirrors checkpoints to disk so
	// resume survives a daemon restart.  Empty keeps them in memory only.
	CheckpointDir string
	// MaxCheckpoints bounds the checkpoint store; the least recently
	// updated checkpoints (i.e. abandoned analyses) are discarded beyond
	// it, memory and disk file both.  Defaults to 512.
	MaxCheckpoints int
	// MaxJobs bounds the job table; the oldest finished jobs are pruned
	// beyond it.  Defaults to 4096.
	MaxJobs int
	// DatasetCacheSize bounds the in-memory dataset registry (entries).
	// Defaults to 32.  Negative disables the registry: PutDataset and
	// dataset-id submissions are rejected.  Entries referenced by queued
	// or running jobs are never evicted, so the bound can be transiently
	// exceeded while every entry is in use.
	DatasetCacheSize int
	// DatasetDir, when non-empty, mirrors registered datasets to disk as
	// "<digest>.spb" files (typically alongside CheckpointDir), so they
	// survive LRU eviction and daemon restarts.  Empty keeps the registry
	// memory-only.
	DatasetDir string
	// MaxPrepsPerDataset bounds the cached preparations (scrub + rank +
	// moment precompute state) kept per dataset, one per distinct
	// (labels, test, side, nonpara, NA) combination.  Defaults to 8.
	MaxPrepsPerDataset int
	// Clock overrides time.Now in tests; nil uses time.Now.
	Clock func() time.Time
	// OnCheckpoint, when non-nil, is called after every saved checkpoint
	// with the job ID and its progress — an observation hook for
	// operators and tests.
	OnCheckpoint func(id string, done, total int64)
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.NumCPU() / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.DefaultNProcs < 1 {
		c.DefaultNProcs = runtime.GOMAXPROCS(0)
	}
	if c.DefaultEvery < 1 {
		c.DefaultEvery = 1000
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.MaxJobs < 1 {
		c.MaxJobs = 4096
	}
	if c.MaxCheckpoints == 0 {
		c.MaxCheckpoints = 512
	}
	if c.DatasetCacheSize == 0 {
		c.DatasetCacheSize = 32
	}
	if c.MaxPrepsPerDataset == 0 {
		c.MaxPrepsPerDataset = 8
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// job is the manager's mutable record of one submission.  All fields are
// guarded by Manager.mu.
type job struct {
	id   string
	key  string
	spec Spec
	// data is the resolved flat matrix the analysis runs on; the spec's
	// X/XFlat payloads are released at submission once data exists.
	// Dataset-id jobs carry no data at all: ds pins the registry entry
	// (one reference, held from submission to the terminal state) and the
	// worker runs over its shared preparation instead.
	data matrix.Matrix
	ds   *dsEntry

	state       State
	err         error
	done, total int64
	resumedFrom int64
	cacheHit    bool
	profile     core.Profile
	result      *core.Result

	submittedAt, startedAt, finishedAt time.Time

	cancel          context.CancelFunc
	cancelRequested bool
}

func (j *job) status() Status {
	s := Status{
		ID:          j.id,
		Key:         j.key,
		State:       j.state,
		Done:        j.done,
		Total:       j.total,
		ResumedFrom: j.resumedFrom,
		CacheHit:    j.cacheHit,
		NProcs:      j.spec.NProcs,
		Profile:     j.profile,
		SubmittedAt: j.submittedAt,
		StartedAt:   j.startedAt,
		FinishedAt:  j.finishedAt,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Stats is the manager-wide counter snapshot served by /v1/stats.
type Stats struct {
	Submitted     int64 `json:"submitted"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	Cancelled     int64 `json:"cancelled"`
	CacheHits     int64 `json:"cache_hits"`
	Resumed       int64 `json:"resumed"`
	Queued        int   `json:"queued"`
	Running       int   `json:"running"`
	QueueCap      int   `json:"queue_cap"`
	Workers       int   `json:"workers"`
	Jobs          int   `json:"jobs"`
	CachedResults int   `json:"cached_results"`
	Checkpoints   int   `json:"checkpoints"`
	// DatasetsAdded counts registrations that created a new entry (dedup
	// re-uploads don't count); Datasets and DatasetBytes snapshot the
	// in-memory registry.  PrepBuilds counts full preparations (scrub +
	// rank + moment precompute) actually built for dataset jobs;
	// PrepHits counts dataset jobs that reused one without building.
	DatasetsAdded int64 `json:"datasets_added"`
	Datasets      int   `json:"datasets"`
	DatasetBytes  int64 `json:"dataset_bytes"`
	PrepBuilds    int64 `json:"prep_builds"`
	PrepHits      int64 `json:"prep_hits"`
	// Kernel is the active two-sample accumulation kernel ISA
	// ("avx2", "sse2" or "generic" — process-wide runtime dispatch).
	Kernel string `json:"kernel"`
	// PermOrder describes the enumeration order jobs run under when they
	// leave Options.PermOrder at its default.
	PermOrder string `json:"perm_order"`
}

// Manager owns the queue, the worker pool, the result cache and the
// checkpoint store.  All methods are safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	closed   bool
	seq      int64
	jobs     map[string]*job
	order    []string // submission order, for pruning
	cache    *resultCache
	ckpts    *ckptStore
	datasets *dsStore
	stats    Stats

	queue     chan *job
	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
}

// NewManager starts a manager with cfg.Workers workers.  Call Close to
// drain and stop it.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	ckpts, err := newCkptStore(cfg.CheckpointDir, cfg.MaxCheckpoints)
	if err != nil {
		return nil, err
	}
	datasets, err := newDSStore(cfg.DatasetDir, cfg.DatasetCacheSize, cfg.MaxPrepsPerDataset)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:       cfg,
		jobs:      make(map[string]*job),
		cache:     newResultCache(cfg.CacheSize),
		ckpts:     ckpts,
		datasets:  datasets,
		queue:     make(chan *job, cfg.QueueDepth),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Submit validates the spec, answers it from the result cache when the
// content key is already computed, and otherwise enqueues it FIFO.  It
// returns the initial status: Done with CacheHit set for a hit, Queued
// otherwise.  A full queue returns ErrQueueFull without side effects.
func (m *Manager) Submit(spec Spec) (Status, error) {
	canon, err := core.CanonicalOptions(spec.Opt)
	if err != nil {
		return Status{}, err
	}
	spec.Opt = canon
	if spec.NProcs < 1 {
		spec.NProcs = m.cfg.DefaultNProcs
	}
	if spec.Every < 1 {
		spec.Every = m.cfg.DefaultEvery
	}
	// The content key is computed in place, whichever payload form was
	// submitted: cache hits and queue-full rejections never pay the
	// matrix copy that resolve makes.
	key, err := spec.contentKey()
	if err != nil {
		return Status{}, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, ErrClosed
	}
	if res, ok := m.cache.get(key); ok {
		now := m.cfg.Clock()
		m.seq++
		j := &job{
			id:          fmt.Sprintf("j%06d", m.seq),
			key:         key,
			spec:        Spec{Opt: spec.Opt, NProcs: spec.NProcs, Every: spec.Every},
			state:       Done,
			cacheHit:    true,
			result:      res,
			done:        res.B,
			total:       res.B,
			submittedAt: now,
			startedAt:   now,
			finishedAt:  now,
		}
		m.stats.Submitted++
		m.stats.CacheHits++
		m.insertLocked(j)
		m.mu.Unlock()
		return j.status(), nil
	}
	if len(m.queue) == cap(m.queue) {
		// Fast-fail before paying the resolve copy; the enqueue below
		// re-checks authoritatively.
		m.mu.Unlock()
		return Status{}, ErrQueueFull
	}
	m.mu.Unlock()

	// Cache miss: attach the payload outside the lock.  Dataset
	// submissions pin their registry entry (one reference held until the
	// job is terminal) and carry no matrix at all; matrix submissions
	// make the engine's private copy (the one copy) — a transpose of the
	// paper's exon-array matrix takes tens of milliseconds and must not
	// stall API handlers.
	var data matrix.Matrix
	var ds *dsEntry
	if spec.DatasetID != "" {
		ds, err = m.datasetRef(spec.DatasetID)
		if err != nil {
			return Status{}, err
		}
	} else {
		data, err = spec.resolve()
		if err != nil {
			return Status{}, err
		}
		spec.X, spec.XFlat = nil, nil // data supersedes the submission payload
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.releaseDatasetLocked(ds)
		return Status{}, ErrClosed
	}
	now := m.cfg.Clock()
	m.seq++
	j := &job{
		id:          fmt.Sprintf("j%06d", m.seq),
		key:         key,
		spec:        spec,
		data:        data,
		ds:          ds,
		state:       Queued,
		total:       canon.B, // 0 for complete enumerations until planned
		submittedAt: now,
	}
	select {
	case m.queue <- j:
	default:
		m.releaseDatasetLocked(ds)
		return Status{}, ErrQueueFull
	}
	m.stats.Submitted++
	m.insertLocked(j)
	return j.status(), nil
}

// releaseJobLocked frees a terminal job's inputs: the (potentially very
// large) matrix, the labels, and — for dataset jobs — the registry
// reference that protected the dataset from eviction while the job was
// alive.  Callers hold m.mu.
func (m *Manager) releaseJobLocked(j *job) {
	j.data, j.spec.Labels = matrix.Matrix{}, nil
	if j.ds != nil {
		m.releaseDatasetLocked(j.ds)
		j.ds = nil
	}
}

// insertLocked records j and prunes the oldest finished jobs beyond
// MaxJobs.  Callers hold m.mu.
func (m *Manager) insertLocked(j *job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if len(m.jobs) <= m.cfg.MaxJobs {
		return
	}
	kept := m.order[:0]
	excess := len(m.jobs) - m.cfg.MaxJobs
	for _, id := range m.order {
		if excess > 0 {
			if old, ok := m.jobs[id]; ok && old.state.Terminal() {
				delete(m.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Get returns the status of a job.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrUnknownJob
	}
	return j.status(), nil
}

// Result returns the finished result of a job, or ErrNotDone while it is
// still queued, running, cancelled or failed.
func (m *Manager) Result(id string) (*core.Result, Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, Status{}, ErrUnknownJob
	}
	if j.state != Done || j.result == nil {
		return nil, j.status(), ErrNotDone
	}
	return j.result, j.status(), nil
}

// Cancel stops a job.  A queued job is marked cancelled and skipped when a
// worker pops it; a running job's context is cancelled, and the job
// transitions once the run stops at its next window boundary (its last
// checkpoint is retained for resumption).  Cancelling a terminal job is a
// no-op.  The returned status reflects the state at return, which for a
// running job is usually still Running.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrUnknownJob
	}
	switch j.state {
	case Queued:
		j.state = Cancelled
		j.finishedAt = m.cfg.Clock()
		m.releaseJobLocked(j)
		m.stats.Cancelled++
	case Running:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.status(), nil
}

// StatsSnapshot returns the current counters.
func (m *Manager) StatsSnapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.QueueCap = m.cfg.QueueDepth
	s.Workers = m.cfg.Workers
	s.Kernel = core.KernelName()
	s.PermOrder = core.PermOrderPolicy
	s.Jobs = len(m.jobs)
	s.CachedResults = m.cache.len()
	s.Checkpoints = m.ckpts.len()
	s.Datasets = len(m.datasets.entries)
	for _, e := range m.datasets.entries {
		s.DatasetBytes += int64(len(e.m.Data)) * 8
	}
	for _, j := range m.jobs {
		switch j.state {
		case Queued:
			s.Queued++
		case Running:
			s.Running++
		}
	}
	return s
}

// Close stops the manager: no new submissions are accepted, running jobs
// are cancelled at their next window boundary (checkpoints retained), and
// Close returns once every worker has exited.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancelAll()
	close(m.queue)
	m.wg.Wait()
}

// execute runs one job's analysis: over the shared preparation for
// dataset jobs, over the job's private matrix otherwise.  Both paths are
// bit-identical for the same inputs.
func (m *Manager) execute(j *job, prepared *core.Prepared, ctl core.RunControl) (*core.Result, error) {
	if prepared != nil {
		return core.RunPrepared(prepared, j.spec.Opt, ctl)
	}
	return core.RunMatrix(j.data, j.spec.Labels, j.spec.Opt, ctl)
}

// worker pops jobs FIFO and runs them to a terminal state.  Each worker
// owns one RunScratch for its whole lifetime: kernel scratch, permutation
// batch buffers and partial-count vectors are reused across jobs instead
// of reallocated, so the steady-state worker path stays allocation-light
// (asserted by BenchmarkWorkerJobReuse).
func (m *Manager) worker() {
	defer m.wg.Done()
	scratch := &core.RunScratch{}
	for j := range m.queue {
		m.run(j, scratch)
	}
}

// run executes one job through core.Run with the manager's hooks.
func (m *Manager) run(j *job, scratch *core.RunScratch) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	m.mu.Lock()
	if j.state != Queued { // cancelled while waiting
		m.mu.Unlock()
		return
	}
	if m.baseCtx.Err() != nil { // shutting down: drain without running
		j.state = Cancelled
		j.finishedAt = m.cfg.Clock()
		m.releaseJobLocked(j)
		m.stats.Cancelled++
		m.mu.Unlock()
		return
	}
	j.state = Running
	j.startedAt = m.cfg.Clock()
	j.cancel = cancel
	resume := m.ckpts.load(j.key)
	if resume != nil {
		j.resumedFrom = resume.Next
		j.done = resume.Done
		m.stats.Resumed++
	}
	m.mu.Unlock()

	ctl := core.RunControl{
		Ctx:     ctx,
		NProcs:  j.spec.NProcs,
		Resume:  resume,
		Every:   j.spec.Every,
		Scratch: scratch,
		Save: func(ck *core.Checkpoint) error {
			m.mu.Lock()
			evicted := m.ckpts.put(j.key, ck)
			m.mu.Unlock()
			// Disk I/O stays outside the lock: a checkpoint encode can
			// be megabytes and must not stall API handlers.
			for _, k := range evicted {
				m.ckpts.removeDisk(k)
			}
			if err := m.ckpts.writeDisk(j.key, ck); err != nil {
				return err
			}
			if m.cfg.OnCheckpoint != nil {
				m.cfg.OnCheckpoint(j.id, ck.Done, ck.TotalB)
			}
			return nil
		},
		OnProgress: func(done, total int64) {
			m.mu.Lock()
			j.done, j.total = done, total
			m.mu.Unlock()
		},
	}
	// Dataset jobs run over the registry's shared preparation — built
	// once per (dataset, labels, prep options) key, reused read-only by
	// every later job on that key — so a cache-hit job goes from queue
	// pop to its first permutation without scrubbing, ranking or
	// precomputing anything.
	var prepared *core.Prepared
	var res *core.Result
	var err error
	if j.spec.DatasetID != "" {
		prepared, err = m.preparedFor(j)
	}
	if err == nil {
		res, err = m.execute(j, prepared, ctl)
		if resume != nil && errors.Is(err, core.ErrCheckpointMismatch) {
			// A stale checkpoint — e.g. one written by an older engine
			// version whose fingerprints no longer validate — must not
			// poison its content key forever: discard it and run fresh
			// instead of failing every future submission of this dataset.
			m.mu.Lock()
			m.ckpts.drop(j.key)
			j.resumedFrom, j.done = 0, 0
			m.mu.Unlock()
			ctl.Resume = nil
			res, err = m.execute(j, prepared, ctl)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	j.finishedAt = m.cfg.Clock()
	// The inputs are no longer needed once the job is terminal; release
	// the (potentially very large) matrix — and the dataset reference —
	// so finished jobs don't pin them.
	m.releaseJobLocked(j)
	switch {
	case err == nil:
		j.state = Done
		j.result = res
		j.profile = res.Profile
		j.done, j.total = res.B, res.B
		m.cache.put(j.key, res)
		m.ckpts.drop(j.key)
		m.stats.Completed++
	case j.cancelRequested || errors.Is(err, context.Canceled):
		// Cancelled (or shut down): the checkpoint store keeps the last
		// window so an identical resubmission resumes from it.
		j.state = Cancelled
		j.err = err
		m.stats.Cancelled++
	default:
		j.state = Failed
		j.err = err
		m.stats.Failed++
	}
}
